// A distributed computation driven on the REAL Chord protocol — the
// ChordReduce model the paper builds on, at protocol fidelity.
//
// The tick simulator (src/sim) assumes maintenance is free and joins are
// instantaneous; this module drops both assumptions.  Tasks are SHA-1
// keys owned by ring arcs; every join (churn arrival or Sybil placement)
// goes through Network::join + stabilization, Sybil IDs are found by
// hash search (counted in SHA-1 evaluations), node failures are abrupt
// and healed by the maintenance protocol, and every RPC is counted.
//
// Purpose: (a) validate that the tick simulator's idealization preserves
// the paper's results (runtime-factor shapes must match), and (b) put
// numbers on the paper's qualitative traffic claims ("neighbor injection
// generates much less churn", "invitation greatly reduces maintenance
// costs").
#pragma once

#include <cstdint>

#include "chord/network.hpp"

namespace dhtlb::chord {

/// Which balancing policy the protocol-level computation uses.  The
/// placement mechanics follow src/lb but are re-expressed in protocol
/// operations so their message costs are real.
enum class ComputePolicy {
  kNone,             // baseline: no churn, no Sybils
  kChurn,            // induced churn at churn_rate
  kRandomInjection,  // idle nodes place Sybils at random hashed IDs
  kNeighborInjection,  // idle nodes place Sybils in their biggest
                       // successor gap (hash search inside the gap)
};

struct ComputeConfig {
  std::size_t nodes = 64;
  std::uint64_t tasks = 6400;
  std::size_t successor_list = 5;
  ComputePolicy policy = ComputePolicy::kNone;
  double churn_rate = 0.02;  // used by kChurn only
  unsigned max_sybils = 5;
  std::uint64_t decision_period = 5;
  std::uint64_t seed = 1;
  /// Maintenance rounds executed per tick (>=1; §V assumes one cycle
  /// fits in a tick).
  int maintenance_per_tick = 1;
};

struct ComputeResult {
  std::uint64_t ticks = 0;
  std::uint64_t ideal_ticks = 0;
  double runtime_factor = 0.0;
  bool completed = false;

  MessageStats messages;              // all protocol traffic of the run
  std::uint64_t maintenance_messages = 0;  // subset spent on upkeep
  std::uint64_t sybils_created = 0;
  std::uint64_t sybil_search_hashes = 0;  // SHA-1 evals spent placing
  std::uint64_t joins = 0;
  std::uint64_t failures = 0;
  std::uint64_t tasks_transferred = 0;  // keys that changed owner
};

/// Runs the computation to completion (or a generous tick cap).
ComputeResult run_compute(const ComputeConfig& config);

}  // namespace dhtlb::chord
