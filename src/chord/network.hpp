// In-memory Chord network: routes RPCs between ChordNodes and counts
// every message, so protocol costs (lookup hops, join cost, maintenance
// traffic, Sybil-placement traffic) are measurable.
//
// The network is single-threaded and deterministic: "RPCs" are direct
// calls, but each one increments a per-category message counter.  Node
// failure is modelled by marking a node dead; subsequent RPCs to it fail
// and the caller repairs its state exactly as the protocol prescribes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chord/node.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"
#include "support/uint160.hpp"

namespace dhtlb::chord {

/// Message-count ledger, one counter per RPC category.
struct MessageStats {
  std::uint64_t find_successor = 0;   // lookup routing steps
  std::uint64_t get_predecessor = 0;  // stabilize probes
  std::uint64_t get_successor_list = 0;
  std::uint64_t notify = 0;
  std::uint64_t ping = 0;  // liveness checks
  std::uint64_t total() const {
    return find_successor + get_predecessor + get_successor_list + notify +
           ping;
  }
  void reset() { *this = MessageStats{}; }
};

/// Result of a lookup: the owner of the key plus the routing cost.
struct LookupResult {
  NodeId owner;
  int hops = 0;  // routing steps taken (0 when the first node owns it)
};

/// Envoy-style fault injection for the message layer.  Every RPC rolls
/// three independent seeded Bernoulli draws:
///   drop      — the request is lost before reaching the callee (no
///               side effect; the caller sees a timeout)
///   delay     — the reply arrives too late to use: the caller treats
///               the RPC as failed.  For read-style RPCs that simply
///               loses the answer; a delayed notify's side effect is
///               deferred — it lands at the callee at the start of the
///               next maintenance round, in the deterministic order the
///               delayed messages were sent (tick, then sequence)
///   duplicate — the message is delivered twice; the extra copy costs
///               one more counted message and is otherwise harmless
/// All probabilities default to 0: no RNG draw happens and behavior is
/// bit-identical to a fault-free network, so existing benches/baselines
/// cannot drift.
struct FaultConfig {
  double drop = 0.0;
  double delay = 0.0;
  double duplicate = 0.0;
  bool any() const { return drop > 0.0 || delay > 0.0 || duplicate > 0.0; }
};

class Network {
 public:
  /// successor_list_size: r in the Chord paper (the tick simulator's
  /// numSuccessors); also used as the predecessor-awareness depth.
  explicit Network(std::size_t successor_list_size = 5)
      : successor_list_size_(successor_list_size) {}

  // --- membership --------------------------------------------------------

  /// Creates the first node of a fresh ring.  Precondition: empty network.
  NodeId create(NodeId id);

  /// Joins a node via `bootstrap` (must be alive): one lookup to find the
  /// successor, then the background stabilization integrates it.
  /// Returns false if `id` is already present.
  bool join(NodeId id, NodeId bootstrap);

  /// Graceful departure: transfers pointers so neighbors heal instantly.
  void leave(NodeId id);

  /// Abrupt failure: the node just stops answering; peers discover the
  /// failure through pings/RPC errors during maintenance.
  void fail(NodeId id);

  bool contains(NodeId id) const { return nodes_.contains(id); }
  std::size_t size() const { return nodes_.size(); }
  std::vector<NodeId> node_ids() const;

  // --- protocol ----------------------------------------------------------

  /// Iterative lookup for `key` starting at `from`.  Counts one
  /// find_successor message per routing step.
  LookupResult lookup(NodeId from, const NodeId& key);

  /// Runs one maintenance round (stabilize + fix one finger +
  /// check predecessor) on every live node, in ring order.
  void maintenance_round();

  /// Runs `rounds` maintenance rounds.
  void stabilize(int rounds);

  /// Fully populates every node's finger table (kFingerCount rounds of
  /// fix_fingers compressed into one call; costs the same messages).
  void build_all_fingers();

  // --- fault injection ----------------------------------------------------

  /// Reseeds the fault injector's RNG stream.  Call once per run before
  /// enabling faults so (config, seed) replays byte-identically.
  void set_fault_seed(std::uint64_t seed) { fault_rng_ = support::Rng(seed); }

  /// Updates the fault probabilities, keeping the injector stream.
  /// Setting everything back to 0 turns injection off again.
  void set_faults(const FaultConfig& config);

  const FaultConfig& faults() const { return fault_config_; }

  /// A delayed notify awaiting delivery: enqueued when the delay fault
  /// fires, applied at the start of the next maintenance round in
  /// (round, seq) order — a total order independent of container
  /// iteration, so traces and goldens are stable.
  struct DelayedNotify {
    std::uint64_t round = 0;  // maintenance round it was sent in
    std::uint64_t seq = 0;    // send order within that round
    NodeId callee;
    NodeId candidate;
  };

  /// In-flight delayed notifies, oldest first (tests and debugging).
  const std::vector<DelayedNotify>& delayed_messages() const {
    return delayed_;
  }

  // --- observability -------------------------------------------------------

  /// Attaches a trace sink (nullable; null detaches).  The network then
  /// emits one instant per RPC plus fault instants (drop/delay/dup and
  /// deferred-notify delivery); the driver owns the sink and its tick
  /// clock.  Disabled cost: one branch per RPC.
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

  // --- inspection ---------------------------------------------------------

  const ChordNode& node(NodeId id) const { return *nodes_.at(id); }
  MessageStats& stats() { return stats_; }
  const MessageStats& stats() const { return stats_; }

  /// True iff successor/predecessor pointers form one consistent cycle
  /// covering every live node — the Chord correctness invariant.
  bool ring_consistent() const;

  /// The live node owning `key` according to ground truth (the sorted
  /// node set), for validating lookups against.
  NodeId true_owner(const NodeId& key) const;

 private:
  ChordNode* find_alive(const NodeId& id);
  const ChordNode* find_alive(const NodeId& id) const;

  // RPC wrappers; each counts a message and returns nullopt if the callee
  // is dead.
  std::optional<NodeId> rpc_get_successor(const NodeId& callee);
  std::optional<std::optional<NodeId>> rpc_get_predecessor(
      const NodeId& callee);
  std::optional<std::vector<NodeId>> rpc_get_successor_list(
      const NodeId& callee);
  bool rpc_notify(const NodeId& callee, const NodeId& candidate);
  bool rpc_ping(const NodeId& callee);
  std::optional<NodeId> rpc_closest_preceding(const NodeId& callee,
                                              const NodeId& key);

  void stabilize_node(ChordNode& n);
  void fix_finger(ChordNode& n);
  void check_predecessor(ChordNode& n);

  /// The notify predecessor rule, shared by the immediate path and the
  /// deferred (delayed) delivery path.
  void apply_notify(ChordNode& n, const NodeId& candidate);

  /// Delivers every queued delayed notify from earlier rounds.
  void deliver_delayed();

  void trace_rpc(const char* kind, const NodeId& callee);
  void trace_fault(const char* what, const char* kind, const NodeId& callee);

  // Fault draws, in the fixed order duplicate → drop → delay per RPC so
  // the stream is a pure function of (seed, RPC sequence).  Each returns
  // false without consuming a draw when its probability is zero.
  bool roll_duplicate() {
    return fault_config_.duplicate > 0.0 &&
           fault_rng_.bernoulli(fault_config_.duplicate);
  }
  bool roll_drop() {
    return fault_config_.drop > 0.0 && fault_rng_.bernoulli(fault_config_.drop);
  }
  bool roll_delay() {
    return fault_config_.delay > 0.0 &&
           fault_rng_.bernoulli(fault_config_.delay);
  }

  std::map<NodeId, std::unique_ptr<ChordNode>> nodes_;
  std::size_t successor_list_size_;
  MessageStats stats_;
  FaultConfig fault_config_;
  support::Rng fault_rng_{0};
  std::uint64_t round_ = 0;        // maintenance rounds completed/started
  std::uint64_t delayed_seq_ = 0;  // send order within the current round
  std::vector<DelayedNotify> delayed_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace dhtlb::chord
