// A single Chord node's protocol state (Stoica et al., SIGCOMM 2001).
//
// This is the real protocol — 160-entry finger table, successor list,
// predecessor pointer, and the periodic stabilize / notify / fix-fingers
// / check-predecessor routines — not the idealized ring the tick
// simulator uses.  The substrate exists to (a) validate the paper's
// assumption that Sybil placement and lookups are cheap (O(log n) hops),
// and (b) measure the *message* cost of each balancing strategy, which
// the paper discusses qualitatively ("neighbor injection requires fewer
// messages", "invitation greatly reduces maintenance costs").
//
// Nodes communicate only through chord::Network, which routes RPCs and
// counts every message.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "support/uint160.hpp"

namespace dhtlb::chord {

using NodeId = support::Uint160;

/// Protocol state of one Chord node.  All mutation goes through
/// chord::Network so message costs are observable; this class is a plain
/// data holder plus local (no-RPC) helpers.
class ChordNode {
 public:
  static constexpr int kFingerCount = support::Uint160::kBits;

  ChordNode(NodeId id, std::size_t successor_list_size)
      : id_(id), successor_list_size_(successor_list_size) {}

  const NodeId& id() const { return id_; }

  const std::optional<NodeId>& predecessor() const { return predecessor_; }
  void set_predecessor(std::optional<NodeId> p) { predecessor_ = std::move(p); }

  /// First live successor; the node itself when it is alone in the ring.
  NodeId successor() const {
    return successors_.empty() ? id_ : successors_.front();
  }

  const std::vector<NodeId>& successor_list() const { return successors_; }
  void set_successor_list(std::vector<NodeId> list);
  std::size_t successor_list_capacity() const { return successor_list_size_; }

  /// Replaces the primary successor, keeping the rest of the list.
  void set_successor(NodeId s);

  /// Drops a failed node from the successor list (no-op if absent).
  void remove_successor(const NodeId& failed);

  const std::array<std::optional<NodeId>, kFingerCount>& fingers() const {
    return fingers_;
  }
  void set_finger(int i, std::optional<NodeId> target) {
    fingers_[static_cast<std::size_t>(i)] = std::move(target);
  }

  /// Start of the i-th finger interval: id + 2^i (mod 2^160).
  NodeId finger_start(int i) const {
    return id_ + support::Uint160::pow2(i);
  }

  /// Index of the finger to refresh next; cycles through the table one
  /// entry per maintenance round, as in the Chord paper's fix_fingers.
  int next_finger_to_fix() {
    const int i = next_finger_;
    next_finger_ = (next_finger_ + 1) % kFingerCount;
    return i;
  }

  /// Local-state-only search for the closest node preceding `key`:
  /// scans fingers (then the successor list) for the highest-known node
  /// in (id, key).  Returns id_ when nothing closer is known.
  NodeId closest_preceding(const NodeId& key) const;

  /// Clears any state that referenced a failed peer.
  void forget(const NodeId& failed);

 private:
  NodeId id_;
  std::optional<NodeId> predecessor_;
  std::vector<NodeId> successors_;  // ordered, nearest first
  std::size_t successor_list_size_;
  std::array<std::optional<NodeId>, kFingerCount> fingers_{};
  int next_finger_ = 0;
};

}  // namespace dhtlb::chord
