#include "chord/network.hpp"

#include <stdexcept>

#include "support/check.hpp"
#include "support/ring_math.hpp"

namespace dhtlb::chord {

using support::in_half_open_arc;
using support::in_open_arc;

NodeId Network::create(NodeId id) {
  if (!nodes_.empty()) {
    throw std::logic_error("Network::create: ring already exists");
  }
  auto node = std::make_unique<ChordNode>(id, successor_list_size_);
  node->set_successor(id);  // alone: own successor
  node->set_predecessor(id);
  nodes_.emplace(id, std::move(node));
  return id;
}

bool Network::join(NodeId id, NodeId bootstrap) {
  if (nodes_.contains(id)) return false;
  ChordNode* boot = find_alive(bootstrap);
  if (boot == nullptr) {
    throw std::invalid_argument("Network::join: dead/unknown bootstrap");
  }
  const LookupResult res = lookup(bootstrap, id);
  auto node = std::make_unique<ChordNode>(id, successor_list_size_);
  node->set_successor(res.owner);
  // Predecessor stays unset; the successor learns about us (and we learn
  // our predecessor) through stabilize/notify, per the protocol.
  nodes_.emplace(id, std::move(node));
  return true;
}

void Network::leave(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return;
  ChordNode& n = *it->second;
  // Graceful handoff: connect predecessor and successor directly.
  const NodeId succ = n.successor();
  const auto pred = n.predecessor();
  if (succ != id) {
    if (ChordNode* s = find_alive(succ); s != nullptr) {
      if (pred && *pred != id) s->set_predecessor(*pred);
    }
  }
  if (pred && *pred != id) {
    if (ChordNode* p = find_alive(*pred); p != nullptr && succ != id) {
      p->set_successor(succ);
    }
  }
  nodes_.erase(it);
  for (auto& [nid, other] : nodes_) other->forget(id);
  // Note: forget() is bookkeeping on our in-memory ground truth, not a
  // broadcast; a real deployment heals lazily, which fail() models.
}

void Network::fail(NodeId id) {
  nodes_.erase(id);
  // Nobody is told: peers still hold dangling references and discover the
  // failure when their RPCs to `id` go unanswered.
}

std::vector<NodeId> Network::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  return ids;
}

LookupResult Network::lookup(NodeId from, const NodeId& key) {
  ChordNode* cur = find_alive(from);
  if (cur == nullptr) {
    throw std::invalid_argument("Network::lookup: dead/unknown origin");
  }
  LookupResult result{from, 0};
  // Iterative routing, bounded by the ring size as a safety net against
  // transiently inconsistent pointers during churn.
  const int hop_limit = static_cast<int>(nodes_.size()) + 2 * 160;
  NodeId cur_id = from;
  for (int hop = 0; hop <= hop_limit; ++hop) {
    auto succ = rpc_get_successor(cur_id);
    if (!succ) {
      // Current hop died mid-lookup; restart from the origin's viewpoint
      // after it repairs (the caller's maintenance will have pruned it).
      result.owner = true_owner(key);
      return result;
    }
    if (in_half_open_arc(key, cur_id, *succ)) {
      result.owner = *succ;
      return result;
    }
    auto next = rpc_closest_preceding(cur_id, key);
    ++result.hops;
    ++stats_.find_successor;
    if (!next || *next == cur_id) {
      // No better route known: hand the key to the successor and let the
      // next iteration route from there (linear fallback).
      cur_id = *succ;
      continue;
    }
    cur_id = *next;
  }
  // Pointers were too inconsistent to route; report ground truth so
  // callers can proceed, but this indicates missing stabilization.
  result.owner = true_owner(key);
  return result;
}

void Network::maintenance_round() {
  // Start of round: deliver notifies whose replies were delayed in
  // earlier rounds, in (round, seq) send order.
  ++round_;
  delayed_seq_ = 0;
  if (!delayed_.empty()) deliver_delayed();
  // Snapshot IDs first: stabilization never adds nodes, but forget()/
  // pruning may not invalidate our iteration this way.
  const std::vector<NodeId> ids = node_ids();
  for (const auto& id : ids) {
    ChordNode* n = find_alive(id);
    if (n == nullptr) continue;
    check_predecessor(*n);
    stabilize_node(*n);
    fix_finger(*n);
  }
}

void Network::stabilize(int rounds) {
  for (int i = 0; i < rounds; ++i) maintenance_round();
}

void Network::build_all_fingers() {
  for (auto& [id, node] : nodes_) {
    for (int f = 0; f < ChordNode::kFingerCount; ++f) {
      fix_finger(*node);
    }
  }
}

bool Network::ring_consistent() const {
  if (nodes_.empty()) return true;
  // Every node's successor must be the next live node clockwise and its
  // predecessor the previous one.
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    auto next = std::next(it);
    const NodeId expected_succ =
        next == nodes_.end() ? nodes_.begin()->first : next->first;
    if (it->second->successor() != expected_succ) return false;
    auto prev = it == nodes_.begin() ? std::prev(nodes_.end()) : std::prev(it);
    if (!it->second->predecessor() ||
        *it->second->predecessor() != prev->first) {
      return false;
    }
  }
  return true;
}

NodeId Network::true_owner(const NodeId& key) const {
  DHTLB_CHECK(!nodes_.empty(), "true_owner(" << key << ") on an empty ring");
  // Owner = first node clockwise at or after the key.
  auto it = nodes_.lower_bound(key);
  if (it == nodes_.end()) it = nodes_.begin();
  return it->first;
}

void Network::set_faults(const FaultConfig& config) {
  DHTLB_CHECK(config.drop >= 0.0 && config.drop <= 1.0 &&
                  config.delay >= 0.0 && config.delay <= 1.0 &&
                  config.duplicate >= 0.0 && config.duplicate <= 1.0,
              "set_faults: probabilities must be in [0, 1]");
  fault_config_ = config;
}

void Network::trace_rpc(const char* kind, const NodeId& callee) {
  if (trace_) {
    trace_->instant("rpc", "rpc",
                    {{"kind", kind}, {"callee", callee.to_short_hex()}});
  }
}

void Network::trace_fault(const char* what, const char* kind,
                          const NodeId& callee) {
  if (trace_) {
    trace_->instant(what, "fault",
                    {{"kind", kind}, {"callee", callee.to_short_hex()}});
  }
}

ChordNode* Network::find_alive(const NodeId& id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const ChordNode* Network::find_alive(const NodeId& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::optional<NodeId> Network::rpc_get_successor(const NodeId& callee) {
  ++stats_.get_successor_list;
  trace_rpc("get_successor", callee);
  if (roll_duplicate()) {
    ++stats_.get_successor_list;
    trace_fault("rpc_dup", "get_successor", callee);
  }
  if (roll_drop()) {
    trace_fault("rpc_drop", "get_successor", callee);
    return std::nullopt;
  }
  const ChordNode* n = find_alive(callee);
  if (n == nullptr) return std::nullopt;
  if (roll_delay()) {
    trace_fault("rpc_delay", "get_successor", callee);
    return std::nullopt;
  }
  return n->successor();
}

std::optional<std::optional<NodeId>> Network::rpc_get_predecessor(
    const NodeId& callee) {
  ++stats_.get_predecessor;
  trace_rpc("get_predecessor", callee);
  if (roll_duplicate()) {
    ++stats_.get_predecessor;
    trace_fault("rpc_dup", "get_predecessor", callee);
  }
  if (roll_drop()) {
    trace_fault("rpc_drop", "get_predecessor", callee);
    return std::nullopt;
  }
  const ChordNode* n = find_alive(callee);
  if (n == nullptr) return std::nullopt;
  if (roll_delay()) {
    trace_fault("rpc_delay", "get_predecessor", callee);
    return std::nullopt;
  }
  return n->predecessor();
}

std::optional<std::vector<NodeId>> Network::rpc_get_successor_list(
    const NodeId& callee) {
  ++stats_.get_successor_list;
  trace_rpc("get_successor_list", callee);
  if (roll_duplicate()) {
    ++stats_.get_successor_list;
    trace_fault("rpc_dup", "get_successor_list", callee);
  }
  if (roll_drop()) {
    trace_fault("rpc_drop", "get_successor_list", callee);
    return std::nullopt;
  }
  const ChordNode* n = find_alive(callee);
  if (n == nullptr) return std::nullopt;
  if (roll_delay()) {
    trace_fault("rpc_delay", "get_successor_list", callee);
    return std::nullopt;
  }
  return n->successor_list();
}

void Network::apply_notify(ChordNode& n, const NodeId& candidate) {
  const auto& pred = n.predecessor();
  if (!pred || in_open_arc(candidate, *pred, n.id()) ||
      find_alive(*pred) == nullptr) {
    n.set_predecessor(candidate);
  }
}

void Network::deliver_delayed() {
  // Entries are appended in (round, seq) order, so the queue is already
  // sorted; everything from a round before the current one is due.
  std::size_t delivered = 0;
  while (delivered < delayed_.size() &&
         delayed_[delivered].round < round_) {
    const DelayedNotify& d = delayed_[delivered];
    ++delivered;
    ChordNode* n = find_alive(d.callee);
    if (n == nullptr) continue;  // callee died while the message aged
    apply_notify(*n, d.candidate);
    if (trace_) {
      trace_->instant("notify_delivered", "fault",
                      {{"callee", d.callee.to_short_hex()},
                       {"candidate", d.candidate.to_short_hex()},
                       {"sent_round", d.round}});
    }
  }
  delayed_.erase(delayed_.begin(),
                 delayed_.begin() + static_cast<std::ptrdiff_t>(delivered));
}

bool Network::rpc_notify(const NodeId& callee, const NodeId& candidate) {
  ++stats_.notify;
  trace_rpc("notify", callee);
  if (roll_duplicate()) {
    ++stats_.notify;
    trace_fault("rpc_dup", "notify", callee);
  }
  // A dropped notify never reaches the callee.  A delayed one DOES take
  // effect, but late: the caller cannot observe the ack in time, and the
  // predecessor update lands at the start of the next maintenance round
  // via the deterministic delayed-delivery queue.
  if (roll_drop()) {
    trace_fault("rpc_drop", "notify", callee);
    return false;
  }
  ChordNode* n = find_alive(callee);
  if (n == nullptr) return false;
  if (roll_delay()) {
    delayed_.push_back({round_, delayed_seq_++, callee, candidate});
    trace_fault("rpc_delay", "notify", callee);
    return false;
  }
  apply_notify(*n, candidate);
  return true;
}

bool Network::rpc_ping(const NodeId& callee) {
  ++stats_.ping;
  trace_rpc("ping", callee);
  if (roll_duplicate()) {
    ++stats_.ping;
    trace_fault("rpc_dup", "ping", callee);
  }
  // A dropped request and a delayed reply are indistinguishable to the
  // pinger: both read as "no answer" and may wrongly condemn a live node.
  if (roll_drop()) {
    trace_fault("rpc_drop", "ping", callee);
    return false;
  }
  if (roll_delay()) {
    trace_fault("rpc_delay", "ping", callee);
    return false;
  }
  return find_alive(callee) != nullptr;
}

std::optional<NodeId> Network::rpc_closest_preceding(const NodeId& callee,
                                                     const NodeId& key) {
  // No counter bump here (lookup() accounts the routing step), but the
  // wire can still lose the exchange.
  trace_rpc("closest_preceding", callee);
  if (roll_drop()) {
    trace_fault("rpc_drop", "closest_preceding", callee);
    return std::nullopt;
  }
  if (roll_delay()) {
    trace_fault("rpc_delay", "closest_preceding", callee);
    return std::nullopt;
  }
  const ChordNode* n = find_alive(callee);
  if (n == nullptr) return std::nullopt;
  // Skip over entries we can locally see are dead — models the callee
  // retrying its next-best pointer after a timeout.
  NodeId candidate = n->closest_preceding(key);
  while (candidate != n->id() && find_alive(candidate) == nullptr) {
    ++stats_.ping;  // the failed attempt costs a message
    ChordNode* mut = find_alive(callee);
    mut->forget(candidate);
    candidate = mut->closest_preceding(key);
  }
  return candidate;
}

void Network::stabilize_node(ChordNode& n) {
  // Find the first live successor, pruning dead ones.
  while (true) {
    const NodeId succ = n.successor();
    if (succ == n.id()) break;
    if (rpc_ping(succ)) break;
    n.remove_successor(succ);
    if (n.successor_list().empty()) {
      // Lost every successor: fall back to self; fingers may still route.
      n.set_successor(n.id());
      break;
    }
  }

  NodeId succ = n.successor();
  if (succ == n.id()) {
    // Pointing at ourselves but maybe not alone: someone who joined
    // behind us announces itself via notify, so the predecessor is the
    // first escape hatch; fingers are the fallback.
    const auto& pred = n.predecessor();
    if (pred && *pred != n.id() && rpc_ping(*pred)) {
      n.set_successor(*pred);
      succ = *pred;
    } else {
      for (const auto& finger : n.fingers()) {
        if (finger && *finger != n.id() && rpc_ping(*finger)) {
          n.set_successor(*finger);
          succ = *finger;
          break;
        }
      }
    }
    if (succ == n.id()) return;  // genuinely alone; leave state untouched
  }

  // stabilize(): adopt successor's predecessor if it sits between us.
  const auto pred_of_succ = rpc_get_predecessor(succ);
  if (pred_of_succ && *pred_of_succ) {
    const NodeId x = **pred_of_succ;
    if (x != n.id() && in_open_arc(x, n.id(), succ) && rpc_ping(x)) {
      n.set_successor(x);
      succ = x;
    }
  }

  rpc_notify(succ, n.id());

  // Successor-list reconciliation: our list = successor + its list[0..r-2].
  if (auto list = rpc_get_successor_list(succ)) {
    std::vector<NodeId> merged;
    merged.push_back(succ);
    for (const auto& s : *list) {
      if (merged.size() >= n.successor_list_capacity()) break;
      if (s != n.id() && s != succ) merged.push_back(s);
    }
    n.set_successor_list(std::move(merged));
  }
}

void Network::fix_finger(ChordNode& n) {
  const int i = n.next_finger_to_fix();
  const LookupResult res = lookup(n.id(), n.finger_start(i));
  n.set_finger(i, res.owner);
}

void Network::check_predecessor(ChordNode& n) {
  const auto& pred = n.predecessor();
  if (pred && *pred != n.id() && !rpc_ping(*pred)) {
    n.set_predecessor(std::nullopt);
  }
}

}  // namespace dhtlb::chord
