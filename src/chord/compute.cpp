#include "chord/compute.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "chord/sybil_placement.hpp"
#include "hashing/sha1.hpp"
#include "support/ring_math.hpp"
#include "support/rng.hpp"

namespace dhtlb::chord {

namespace {

using support::Uint160;

/// Ground-truth data plane: which keys each live vnode currently stores.
/// The control plane (routing, membership) is the chord::Network; this
/// map mirrors the active-backup data movement the paper assumes (§IV-A)
/// so no key is ever lost when nodes fail.
class DataPlane {
 public:
  using Map = std::map<NodeId, std::vector<Uint160>>;

  void add_vnode(const NodeId& id) { stores_[id]; }

  /// Initial placement of one key onto its owner arc.
  void place_key(const Uint160& key) {
    auto it = stores_.lower_bound(key);
    if (it == stores_.end()) it = stores_.begin();
    it->second.push_back(key);
  }

  /// New vnode `id` takes the keys in (pred, id] from its successor.
  /// Returns how many keys moved.
  std::uint64_t split_to(const NodeId& id) {
    auto it = stores_.find(id);
    auto succ = std::next(it) == stores_.end() ? stores_.begin()
                                               : std::next(it);
    auto pred = it == stores_.begin() ? std::prev(stores_.end())
                                      : std::prev(it);
    if (succ == it) return 0;  // alone in the ring
    const NodeId lo = pred->first;
    std::uint64_t moved = 0;
    auto& src = succ->second;
    std::size_t write = 0;
    for (std::size_t read = 0; read < src.size(); ++read) {
      if (support::in_half_open_arc(src[read], lo, id)) {
        it->second.push_back(src[read]);
        ++moved;
      } else {
        src[write++] = src[read];
      }
    }
    src.resize(write);
    return moved;
  }

  /// Removes a vnode; its keys fall to the next vnode clockwise (the
  /// successor's active backup).  Returns keys moved.
  std::uint64_t remove_vnode(const NodeId& id) {
    auto it = stores_.find(id);
    auto succ = std::next(it) == stores_.end() ? stores_.begin()
                                               : std::next(it);
    std::uint64_t moved = 0;
    if (succ != it) {
      moved = it->second.size();
      succ->second.insert(succ->second.end(), it->second.begin(),
                          it->second.end());
    }
    stores_.erase(it);
    return moved;
  }

  std::uint64_t vnode_load(const NodeId& id) const {
    const auto it = stores_.find(id);
    return it == stores_.end() ? 0 : it->second.size();
  }

  /// Consumes up to `budget` keys across the given vnodes, most loaded
  /// first; returns keys consumed.
  std::uint64_t consume(const std::vector<NodeId>& vnodes,
                        std::uint64_t budget, support::Rng& rng) {
    std::uint64_t done = 0;
    while (done < budget) {
      std::vector<Uint160>* busiest = nullptr;
      for (const auto& id : vnodes) {
        auto it = stores_.find(id);
        if (it == stores_.end()) continue;
        if (busiest == nullptr || it->second.size() > busiest->size()) {
          busiest = &it->second;
        }
      }
      if (busiest == nullptr || busiest->empty()) break;
      const std::uint64_t take =
          std::min<std::uint64_t>(budget - done, busiest->size());
      for (std::uint64_t i = 0; i < take; ++i) {
        const std::size_t pick =
            static_cast<std::size_t>(rng.below(busiest->size()));
        (*busiest)[pick] = busiest->back();
        busiest->pop_back();
      }
      done += take;
    }
    return done;
  }

  /// The gap (pred, succ-of-pred) sizes between consecutive entries of
  /// `ids` in ring order; used by neighbor injection's biggest-gap pick.
  std::size_t size() const { return stores_.size(); }

 private:
  Map stores_;
};

struct Owner {
  bool alive = false;
  std::vector<NodeId> vnodes;  // [0] = primary
};

}  // namespace

ComputeResult run_compute(const ComputeConfig& config) {
  support::Rng rng(config.seed);
  Network net(config.successor_list);
  DataPlane data;
  ComputeResult result;

  // --- membership bootstrap (protocol joins, costed) ---------------------
  std::vector<Owner> owners(2 * config.nodes);
  const NodeId bootstrap = hashing::Sha1::hash_u64(rng());
  net.create(bootstrap);
  data.add_vnode(bootstrap);
  owners[0].alive = true;
  owners[0].vnodes.push_back(bootstrap);
  for (std::size_t i = 1; i < config.nodes; ++i) {
    const NodeId id = hashing::Sha1::hash_u64(rng());
    if (!net.join(id, bootstrap)) continue;
    net.stabilize(2);
    owners[i].alive = true;
    owners[i].vnodes.push_back(id);
    data.add_vnode(id);
  }
  net.stabilize(4);
  net.build_all_fingers();

  // --- task placement ------------------------------------------------------
  std::uint64_t remaining = config.tasks;
  for (std::uint64_t t = 0; t < config.tasks; ++t) {
    data.place_key(hashing::Sha1::hash_u64(rng()));
  }
  result.ideal_ticks = (config.tasks + config.nodes - 1) / config.nodes;

  auto owner_load = [&](const Owner& o) {
    std::uint64_t sum = 0;
    for (const auto& v : o.vnodes) sum += data.vnode_load(v);
    return sum;
  };
  auto any_bootstrap = [&]() -> std::optional<NodeId> {
    for (const auto& o : owners) {
      if (o.alive && !o.vnodes.empty()) return o.vnodes.front();
    }
    return std::nullopt;
  };
  auto protocol_join = [&](Owner& owner, const NodeId& id) -> bool {
    const auto boot = any_bootstrap();
    if (!boot || !net.join(id, *boot)) return false;
    net.stabilize(2);  // settle enough for pointers to be usable
    owner.vnodes.push_back(id);
    data.add_vnode(id);
    result.tasks_transferred += data.split_to(id);
    return true;
  };

  const std::uint64_t cap = std::max<std::uint64_t>(
      100 * result.ideal_ticks, 5000);

  for (std::uint64_t tick = 1; tick <= cap && remaining > 0; ++tick) {
    result.ticks = tick;

    // 1. churn: abrupt failures + protocol re-joins.
    if (config.policy == ComputePolicy::kChurn) {
      for (std::size_t i = 0; i < owners.size(); ++i) {
        Owner& o = owners[i];
        if (o.alive) {
          if (net.size() - o.vnodes.size() < 2) continue;  // keep a ring
          if (!rng.bernoulli(config.churn_rate)) continue;
          for (const auto& v : o.vnodes) {
            result.tasks_transferred += data.remove_vnode(v);
            net.fail(v);  // abrupt: peers discover via maintenance
          }
          o.vnodes.clear();
          o.alive = false;
          ++result.failures;
        } else if (rng.bernoulli(config.churn_rate)) {
          const NodeId id = hashing::Sha1::hash_u64(rng());
          if (protocol_join(o, id)) {
            o.alive = true;
            ++result.joins;
          }
        }
      }
    }

    // 2. Sybil decisions (every decision_period ticks).
    const bool sybil_policy =
        config.policy == ComputePolicy::kRandomInjection ||
        config.policy == ComputePolicy::kNeighborInjection;
    if (sybil_policy && tick % config.decision_period == 0) {
      for (auto& o : owners) {
        if (!o.alive) continue;
        // Retire Sybils when idle (graceful protocol departures).
        if (o.vnodes.size() > 1 && owner_load(o) == 0) {
          while (o.vnodes.size() > 1) {
            result.tasks_transferred += data.remove_vnode(o.vnodes.back());
            net.leave(o.vnodes.back());
            o.vnodes.pop_back();
          }
        }
        if (owner_load(o) != 0) continue;
        if (o.vnodes.size() - 1 >= config.max_sybils) continue;

        NodeId placement;
        if (config.policy == ComputePolicy::kRandomInjection) {
          placement = hashing::Sha1::hash_u64(rng());
          ++result.sybil_search_hashes;
        } else {
          // Biggest gap among the node's own successor list — purely
          // local protocol state, then a hash search inside that gap.
          const auto& list = net.node(o.vnodes.front()).successor_list();
          if (list.empty()) continue;
          Uint160 best_lo = o.vnodes.front();
          Uint160 best_hi = list.front();
          Uint160 best_span =
              support::clockwise_distance(best_lo, best_hi);
          for (std::size_t s = 1; s < list.size(); ++s) {
            const Uint160 span =
                support::clockwise_distance(list[s - 1], list[s]);
            if (span > best_span) {
              best_span = span;
              best_lo = list[s - 1];
              best_hi = list[s];
            }
          }
          const auto found =
              place_by_hash_search(best_lo, best_hi, rng, 1 << 16);
          if (!found) continue;
          result.sybil_search_hashes += found->attempts;
          placement = found->id;
        }
        if (net.contains(placement)) continue;
        if (protocol_join(o, placement)) ++result.sybils_created;
      }
    }

    // 3. maintenance (costed separately).
    const std::uint64_t before = net.stats().total();
    for (int round = 0; round < config.maintenance_per_tick; ++round) {
      net.maintenance_round();
    }
    result.maintenance_messages += net.stats().total() - before;

    // 4. consumption: one task per owner per tick.
    for (auto& o : owners) {
      if (!o.alive) continue;
      remaining -= data.consume(o.vnodes, 1, rng);
    }
  }

  result.completed = remaining == 0;
  result.messages = net.stats();
  result.runtime_factor =
      result.ideal_ticks == 0
          ? 0.0
          : static_cast<double>(result.ticks) /
                static_cast<double>(result.ideal_ticks);
  return result;
}

}  // namespace dhtlb::chord
