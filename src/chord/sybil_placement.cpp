#include "chord/sybil_placement.hpp"

#include "support/ring_math.hpp"

namespace dhtlb::chord {

std::optional<PlacementResult> place_by_hash_search(
    const support::Uint160& lo, const support::Uint160& hi,
    support::Rng& rng, std::uint64_t max_attempts) {
  PlacementResult result;
  for (std::uint64_t attempt = 1; attempt <= max_attempts; ++attempt) {
    const support::Uint160 candidate = hashing::Sha1::hash_u64(rng());
    if (support::in_open_arc(candidate, lo, hi)) {
      result.id = candidate;
      result.attempts = attempt;
      return result;
    }
  }
  return std::nullopt;
}

support::Uint160 place_uniform(const support::Uint160& lo,
                               const support::Uint160& hi,
                               support::Rng& rng) {
  return rng.uniform_in_arc(lo, hi);
}

support::Uint160 place_midpoint(const support::Uint160& lo,
                                const support::Uint160& hi) {
  return support::arc_midpoint(lo, hi);
}

}  // namespace dhtlb::chord
