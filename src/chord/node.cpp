#include "chord/node.hpp"

#include <algorithm>

#include "support/ring_math.hpp"

namespace dhtlb::chord {

void ChordNode::set_successor_list(std::vector<NodeId> list) {
  if (list.size() > successor_list_size_) {
    list.resize(successor_list_size_);
  }
  successors_ = std::move(list);
}

void ChordNode::set_successor(NodeId s) {
  if (successors_.empty()) {
    successors_.push_back(s);
    return;
  }
  if (successors_.front() == s) return;
  successors_.insert(successors_.begin(), s);
  // Deduplicate while preserving order, then trim to capacity.
  std::vector<NodeId> unique;
  unique.reserve(successors_.size());
  for (const auto& candidate : successors_) {
    if (std::find(unique.begin(), unique.end(), candidate) == unique.end()) {
      unique.push_back(candidate);
    }
  }
  if (unique.size() > successor_list_size_) {
    unique.resize(successor_list_size_);
  }
  successors_ = std::move(unique);
}

void ChordNode::remove_successor(const NodeId& failed) {
  std::erase(successors_, failed);
}

NodeId ChordNode::closest_preceding(const NodeId& key) const {
  // Walk fingers from farthest to nearest, per the Chord pseudocode; the
  // first finger inside (id, key) is the biggest safe jump.
  for (int i = kFingerCount - 1; i >= 0; --i) {
    const auto& finger = fingers_[static_cast<std::size_t>(i)];
    if (finger && support::in_open_arc(*finger, id_, key)) {
      return *finger;
    }
  }
  // Fall back to the successor list (useful right after join, before the
  // finger table converges).
  for (auto it = successors_.rbegin(); it != successors_.rend(); ++it) {
    if (support::in_open_arc(*it, id_, key)) return *it;
  }
  return id_;
}

void ChordNode::forget(const NodeId& failed) {
  if (predecessor_ == failed) predecessor_.reset();
  remove_successor(failed);
  for (auto& finger : fingers_) {
    if (finger == failed) finger.reset();
  }
}

}  // namespace dhtlb::chord
