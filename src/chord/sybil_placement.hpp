// Sybil ID placement: finding a usable identifier inside a target arc.
//
// The paper assumes nodes cannot pick IDs freely — IDs come from SHA-1 —
// so placing a Sybil "in a range" means searching hash outputs until one
// lands inside the target arc (their ref [21] shows this search is
// cheap).  This module implements that search and reports its cost, and
// also provides the idealized variants (uniform / midpoint) used by the
// tick simulator.
#pragma once

#include <cstdint>
#include <optional>

#include "hashing/sha1.hpp"
#include "support/rng.hpp"
#include "support/uint160.hpp"

namespace dhtlb::chord {

/// Outcome of a hash-search placement.
struct PlacementResult {
  support::Uint160 id;       // the ID found inside the arc
  std::uint64_t attempts = 0;  // SHA-1 evaluations performed
};

/// Searches SHA-1 outputs (of sequential nonces drawn from rng) for an ID
/// strictly inside the open arc (lo, hi).  The expected attempt count is
/// 2^160 / arc_size — for a network of n nodes the biggest gaps are
/// ~ (ln n)/n of the ring, so a few n tries suffice.  `max_attempts`
/// bounds the search; returns nullopt when exhausted.
std::optional<PlacementResult> place_by_hash_search(
    const support::Uint160& lo, const support::Uint160& hi,
    support::Rng& rng, std::uint64_t max_attempts = 1 << 20);

/// Idealized placement: a uniformly random ID inside the open arc.  This
/// is what the tick simulator uses for Random/Neighbor injection — the
/// distribution is identical to hash search conditioned on success.
support::Uint160 place_uniform(const support::Uint160& lo,
                               const support::Uint160& hi,
                               support::Rng& rng);

/// Deterministic split placement: the arc midpoint, used by the smart
/// neighbor and invitation strategies to take (in expectation) half of a
/// target node's keys.
support::Uint160 place_midpoint(const support::Uint160& lo,
                                const support::Uint160& hi);

}  // namespace dhtlb::chord
