// Workload snapshots: the raw material of the paper's Figures 4-14.
//
// A snapshot captures each alive physical node's workload at the end of
// a given tick (equivalently, "the beginning of tick t+1" in the paper's
// phrasing).  Snapshot tick 0 is the initial assignment before any work
// or balancing.
#pragma once

#include <cstdint>
#include <vector>

namespace dhtlb::sim {

struct Snapshot {
  std::uint64_t tick = 0;
  std::vector<std::uint64_t> workloads;  // one entry per alive physical node
  std::uint64_t remaining_tasks = 0;
  std::size_t vnode_count = 0;
  std::size_t alive_count = 0;
};

}  // namespace dhtlb::sim
