#include "sim/params.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace dhtlb::sim {

void Params::validate() const {
  if (initial_nodes == 0) {
    throw std::invalid_argument("Params: initial_nodes must be >= 1");
  }
  if (total_tasks == 0) {
    throw std::invalid_argument("Params: total_tasks must be >= 1");
  }
  if (churn_rate < 0.0 || churn_rate > 1.0) {
    throw std::invalid_argument("Params: churn_rate must be in [0, 1]");
  }
  if (max_sybils == 0) {
    throw std::invalid_argument("Params: max_sybils must be >= 1");
  }
  if (num_successors == 0) {
    throw std::invalid_argument("Params: num_successors must be >= 1");
  }
  if (decision_period == 0) {
    throw std::invalid_argument("Params: decision_period must be >= 1");
  }
  if (arrival_ticks != 0 && provisioning != TaskProvisioning::kStreamed) {
    throw std::invalid_argument(
        "Params: arrival_ticks requires streamed provisioning");
  }
}

std::uint64_t Params::effective_max_ticks(std::uint64_t ideal_ticks) const {
  if (max_ticks != 0) return max_ticks;
  // The worst runtime factor the paper observes is < 10; x200 plus slack
  // is a generous runaway guard, not a result-shaping bound.
  return std::max<std::uint64_t>(200 * ideal_ticks, 10'000);
}

std::string Params::describe() const {
  std::ostringstream out;
  out << initial_nodes << " nodes, " << total_tasks << " tasks, "
      << (heterogeneous ? "heterogeneous" : "homogeneous") << ", "
      << (work_measure == WorkMeasure::kOneTaskPerTick ? "1 task/tick"
                                                       : "strength/tick")
      << ", churn=" << churn_rate << ", maxSybils=" << max_sybils
      << ", sybilThreshold=" << sybil_threshold
      << ", successors=" << num_successors;
  // Appended only in streamed mode so every preallocated describe()
  // string (embedded in goldens/baselines) stays byte-identical.
  if (provisioning == TaskProvisioning::kStreamed) {
    out << ", provisioning=streamed(arrival_ticks=";
    if (arrival_ticks == 0) {
      out << "auto";
    } else {
      out << arrival_ticks;
    }
    out << ")";
  }
  return out.str();
}

}  // namespace dhtlb::sim
