#include "sim/task_store.hpp"

#include <utility>

#include "support/check.hpp"
#include "support/ring_math.hpp"

namespace dhtlb::sim {

TaskKey TaskStore::consume_random(support::Rng& rng) {
  DHTLB_CHECK(!keys_.empty(), "consume_random on an empty task store");
  const std::size_t idx =
      static_cast<std::size_t>(rng.below(keys_.size()));
  const TaskKey taken = keys_[idx];
  keys_[idx] = keys_.back();
  keys_.pop_back();
  return taken;
}

std::uint64_t TaskStore::split_arc_into(const TaskKey& lo, const TaskKey& hi,
                                        TaskStore& out) {
  std::uint64_t moved = 0;
  // Stable single pass: keep non-matching keys compacted in place.
  std::size_t write = 0;
  for (std::size_t read = 0; read < keys_.size(); ++read) {
    if (support::in_half_open_arc(keys_[read], lo, hi)) {
      out.keys_.push_back(keys_[read]);
      ++moved;
    } else {
      keys_[write++] = keys_[read];
    }
  }
  keys_.resize(write);
  return moved;
}

std::uint64_t TaskStore::merge_from(TaskStore& other) {
  const std::uint64_t moved = other.keys_.size();
  keys_.insert(keys_.end(), other.keys_.begin(), other.keys_.end());
  other.keys_.clear();
  return moved;
}

}  // namespace dhtlb::sim
