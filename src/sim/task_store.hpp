// Per-virtual-node task storage and the arc split/merge primitives.
//
// Every task is an explicit 160-bit key, so ownership transfers on
// join/leave/Sybil-injection are *exact*: the keys that move are exactly
// those falling in the new ownership arc, just as in a real DHT with the
// paper's active-backup model.  Keys are stored unsorted; consumption
// removes a uniformly random key (keeping the remaining set a uniform
// sample of the arc), and splits partition in O(n) — cheap because splits
// are rare relative to consumption.
//
// A store never knows *when* its keys were materialized: preallocated
// runs fill every store at world construction, streamed runs
// (sim/task_stream.hpp) add keys tick by tick as they arrive.  Both
// modes meet the same exact-key semantics here — see DESIGN.md §0 for
// the life of a tick and where arrivals land in it.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"
#include "support/uint160.hpp"

namespace dhtlb::sim {

using TaskKey = support::Uint160;

/// Unordered multiset of task keys owned by one virtual node.
class TaskStore {
 public:
  std::uint64_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  void add(TaskKey key) { keys_.push_back(key); }
  void reserve(std::size_t n) { keys_.reserve(n); }

  /// Removes and returns one uniformly random key.  Precondition: not
  /// empty.  (Which task a node works on first is unspecified in the
  /// paper; uniform choice keeps the remaining keys unbiased within the
  /// arc, so later splits stay faithful.)
  TaskKey consume_random(support::Rng& rng);

  /// Moves every key lying in the half-open ring arc (lo, hi] into `out`,
  /// keeping the rest.  Returns the number of keys moved.  This is the
  /// ownership transfer that happens when a node/Sybil with ID `hi`
  /// joins in front of a node whose predecessor was `lo`.
  std::uint64_t split_arc_into(const TaskKey& lo, const TaskKey& hi,
                               TaskStore& out);

  /// Appends all keys from `other`, leaving it empty — the successor
  /// absorbing a departed node's tasks (active backup, §IV-A).
  std::uint64_t merge_from(TaskStore& other);

  const std::vector<TaskKey>& keys() const { return keys_; }

 private:
  std::vector<TaskKey> keys_;
};

}  // namespace dhtlb::sim
