// Streamed task provisioning: the deterministic per-tick arrival source
// behind Params::TaskProvisioning::kStreamed (see DESIGN.md §0).
//
// Preallocated mode materializes the whole job at tick 0 — 2*n*horizon
// exact 160-bit keys, ~10 GiB at 1M nodes — which is what kept the §VI
// all-strategy grid off CI at full scale.  A TaskStream instead fixes the
// *schedule* up front (a closed-form count per tick) and draws the exact
// SHA-1 keys lazily, on the tick they arrive, from per-(tick, shard) RNG
// streams derived exactly like the engine's other phase streams:
//
//   stream_seed(mix_seed(run_seed, tick), kStreamArrive, shard)
//
// The derivation depends only on logical labels, never on thread count or
// execution order, so arrivals are bit-identical at any DHTLB_THREADS —
// the same determinism contract as churn and consumption (engine.cpp's
// TickStream tree; kStreamArrive = 6 is reserved there for this file).
//
// The schedule is closed-form on purpose: cumulative(t) is O(1), so the
// engine's conservation audit can check "arrived-so-far == the schedule's
// prefix sum" every tick without replaying the stream.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/task_store.hpp"

namespace dhtlb::sim {

/// RNG stream label for arrival key draws, a sibling of engine.cpp's
/// TickStream phases (1..5) under the same per-tick seed root.
inline constexpr std::uint64_t kStreamArrive = 6;

/// Deterministic arrival schedule + lazy key source for one run.
///
/// Ticks 1..arrival_ticks each receive total_tasks/arrival_ticks tasks,
/// with the remainder spread one-per-tick over the earliest ticks, so
/// every task has arrived once tick arrival_ticks completes.  Each tick's
/// count is split the same way over kTickShards, and each (tick, shard)
/// cell draws its keys from its own RNG stream — the engine fans the
/// draws across workers and folds the insertions sequentially in shard
/// order.
class TaskStream {
 public:
  /// `arrival_ticks` must be >= 1; `run_seed` is the engine's run seed
  /// (the same value that roots the per-tick phase streams).
  TaskStream(std::uint64_t run_seed, std::uint64_t total_tasks,
             std::uint64_t arrival_ticks);

  std::uint64_t total_tasks() const { return total_tasks_; }
  std::uint64_t arrival_ticks() const { return arrival_ticks_; }

  /// Tasks arriving on 1-based tick `tick` (0 for tick 0 and for ticks
  /// past the arrival window).
  std::uint64_t count_at(std::uint64_t tick) const;

  /// Closed-form prefix sum: tasks arrived on ticks 1..tick.  O(1).
  std::uint64_t cumulative(std::uint64_t tick) const;

  /// True once every task has arrived by the end of `tick`.
  bool exhausted_after(std::uint64_t tick) const {
    return cumulative(tick) == total_tasks_;
  }

  /// `tick`'s arrivals landing in shard `shard` (same balanced split as
  /// the per-tick schedule, over kTickShards cells).
  std::uint64_t shard_count(std::uint64_t tick, std::size_t shard) const;

  /// Appends shard `shard`'s keys for `tick` to `out`, drawn from the
  /// (tick, shard) stream.  Thread-compatible: distinct (tick, shard)
  /// cells share no state.
  void draw_shard(std::uint64_t tick, std::size_t shard,
                  std::vector<TaskKey>& out) const;

 private:
  std::uint64_t run_seed_;
  std::uint64_t total_tasks_;
  std::uint64_t arrival_ticks_;
};

}  // namespace dhtlb::sim
