// Flat ring storage: a sorted (id, slot) index over a stable slot arena.
//
// The simulated ring used to live in a std::map<Uint160, VirtualNode>,
// which costs one heap node and a pointer-chasing tree walk per vnode —
// prohibitive at the 100k..1M vnode scales the roadmap targets.  This
// container keeps the same ordered-ring semantics on two flat pieces:
//
//  * an *index*: a sorted vector of (id, slot) entries, binary-searched
//    for find/cover and walked by position for successor/predecessor
//    (O(1) steps on contiguous memory instead of tree pointer chases);
//  * a *slot arena*: per-vnode payloads split struct-of-arrays — owner,
//    sybil flag, and TaskStore each in their own vector, indexed by a
//    Slot handle.  Slots are stable for a vnode's lifetime (freed slots
//    are recycled), which replaces the old "map value pointers never
//    move" contract: callers cache Slot handles instead of pointers.
//
// Mutations are batched: an insert lands in a small sorted *staging*
// vector and an erase tombstones its index entry in place; every query
// reads the merged view of (index minus tombstones) + staging.  When
// either side outgrows ~sqrt(live) entries, one O(n) merge pass folds
// them into a fresh index — so sustained churn costs amortized O(sqrt n)
// per membership change instead of an O(n) memmove each.
//
// Construction has a separate bulk path (bulk_append + finalize_bulk):
// append unsorted, sort once.
//
// Determinism: this container is purely representational — it stores
// exactly the (id -> payload) ring the std::map stored, iterates in the
// same ascending-id order, and draws no randomness — so replacing the
// map cannot change any simulation result.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/task_store.hpp"
#include "support/check.hpp"
#include "support/uint160.hpp"

namespace dhtlb::sim {

namespace testing {
struct FlatRingCorruptor;  // test-only backdoor, defined under tests/sim/
}

using support::Uint160;

/// Index of a physical node in the world (stable across its lifetime).
using NodeIndex = std::uint32_t;

/// Stable handle of one vnode's arena slot (valid until its erase).
using Slot = std::uint32_t;

class FlatRing {
 public:
  /// Sentinel slot: marks index tombstones; never a valid handle.
  static constexpr Slot kNoSlot = 0xFFFFFFFFu;

  struct Entry {
    Uint160 id;
    Slot slot = kNoSlot;  // kNoSlot in the main index == tombstone
  };

  // --- size & membership --------------------------------------------------

  /// Live vnodes in the ring.
  std::size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }
  bool contains(const Uint160& id) const;

  // --- slot arena (stable handles) ----------------------------------------

  const Uint160& id_of(Slot s) const { return ids_[s]; }
  NodeIndex owner(Slot s) const { return owners_[s]; }
  void set_owner(Slot s, NodeIndex owner) { owners_[s] = owner; }
  bool is_sybil(Slot s) const { return sybils_[s] != 0; }
  TaskStore& tasks(Slot s) { return tasks_[s]; }
  const TaskStore& tasks(Slot s) const { return tasks_[s]; }

  // --- cursors ------------------------------------------------------------

  /// Position in the merged (index + staging) view.  A cursor addresses
  /// one live vnode; next()/prev() walk the ring clockwise and
  /// counterclockwise with wrap-around.  Invalidated by any mutation
  /// (insert/erase/finalize_bulk) — same contract as the old map
  /// iterators.  Slots, by contrast, stay valid.
  struct Cursor {
    // Invariant: every live index entry before `main` (and staging entry
    // before `stage`) has id < the cursor's id; every one at-or-after
    // has id >= it.  The current element is entries_[main] when
    // !on_stage, staging_[stage] otherwise.
    std::size_t main = 0;
    std::size_t stage = 0;
    bool on_stage = false;
  };

  /// Cursor of an id that is in the ring (DHTLB_CHECKs otherwise).
  Cursor find(const Uint160& id) const;

  /// Cursor of the first vnode clockwise at or after `point` (the vnode
  /// whose ownership arc covers it), wrapping past zero.  Ring must be
  /// non-empty.
  Cursor cover(const Uint160& point) const;

  /// Cursor of the smallest id.  Ring must be non-empty.
  Cursor first() const;

  // Neighbor steps are the inner loop of every ring walk; they live at
  // the bottom of this header so they inline into the walk iterators.
  Cursor next(const Cursor& c) const;  // clockwise neighbor, wraps
  Cursor prev(const Cursor& c) const;  // counterclockwise neighbor, wraps

  const Uint160& id_at(const Cursor& c) const {
    return c.on_stage ? staging_[c.stage].id : entries_[c.main].id;
  }
  Slot slot_at(const Cursor& c) const {
    return c.on_stage ? staging_[c.stage].slot : entries_[c.main].slot;
  }

  /// Calls fn(id, slot) for every live vnode in ascending-id order — the
  /// bulk read path (snapshots, audits, task assignment) at O(n) with no
  /// per-element search.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::size_t m = skip_dead(0);
    std::size_t s = 0;
    while (m < entries_.size() || s < staging_.size()) {
      if (s >= staging_.size() ||
          (m < entries_.size() && entries_[m].id < staging_[s].id)) {
        fn(entries_[m].id, entries_[m].slot);
        m = skip_dead(m + 1);
      } else {
        fn(staging_[s].id, staging_[s].slot);
        ++s;
      }
    }
  }

  // --- mutation -----------------------------------------------------------

  /// Inserts a new vnode (id must not be present) into staging and
  /// returns its arena slot.  Amortized O(sqrt n).
  Slot insert(const Uint160& id, NodeIndex owner, bool is_sybil);

  /// Removes a vnode (id must be present), freeing its slot.  Any tasks
  /// still in its store are dropped — callers merge them out first.
  void erase(const Uint160& id);

  /// Pre-sizes the index and arena for n vnodes.
  void reserve(std::size_t n);

  /// Bulk-load path: appends without sorting.  Between the first
  /// bulk_append and finalize_bulk only slot accessors are valid.
  Slot bulk_append(const Uint160& id, NodeIndex owner, bool is_sybil);

  /// Sorts the bulk-loaded index; the ring is fully queryable after.
  void finalize_bulk();

  // --- introspection (audits, tests, telemetry) ---------------------------

  /// Merge passes run so far (each folds staging + tombstones away).
  std::uint64_t merge_passes() const { return merge_passes_; }
  std::size_t staged_count() const { return staging_.size(); }
  std::size_t tombstone_count() const { return dead_; }

  /// Deep structural check: both halves sorted and duplicate-free, live
  /// counts consistent, every live entry's slot valid and unique, every
  /// slot's stored id matching its index entry.  O(n log n); for the
  /// invariant auditor and tests.
  bool index_consistent() const;

 private:
  // Test-only: lets auditor tests seed index corruptions (arena/index id
  // mismatches) that the public API makes impossible by construction.
  friend struct testing::FlatRingCorruptor;

  std::size_t skip_dead(std::size_t m) const {
    while (m < entries_.size() && entries_[m].slot == kNoSlot) ++m;
    return m;
  }

  Slot alloc_slot(const Uint160& id, NodeIndex owner, bool is_sybil);
  void free_slot(Slot s);

  /// First index position with id > `id` / >= `id` (tombstones count:
  /// they keep their ids, so the index stays sorted).
  std::size_t main_upper_bound(const Uint160& id) const;
  std::size_t main_lower_bound(const Uint160& id) const;
  std::size_t stage_upper_bound(const Uint160& id) const;
  std::size_t stage_lower_bound(const Uint160& id) const;

  Cursor last() const;

  std::size_t merge_threshold() const;
  void merge_if_needed();
  void merge_now();

  std::vector<Entry> entries_;  // sorted by id; slot==kNoSlot: tombstone
  std::vector<Entry> staging_;  // sorted by id; all live; small
  std::size_t live_ = 0;        // live vnodes (index live + staging)
  std::size_t dead_ = 0;        // tombstones in entries_
  bool bulk_mode_ = false;

  // Slot arena, struct-of-arrays: the hot membership fields (id, owner,
  // sybil flag) pack densely for the auditor/strategy scans; the cold
  // TaskStore payloads stay out of their cache lines.
  std::vector<Uint160> ids_;
  std::vector<NodeIndex> owners_;
  std::vector<std::uint8_t> sybils_;
  std::vector<TaskStore> tasks_;
  std::vector<Slot> free_slots_;

  std::uint64_t merge_passes_ = 0;
};

inline FlatRing::Cursor FlatRing::next(const Cursor& c) const {
  std::size_t m = c.main;
  std::size_t s = c.stage;
  if (c.on_stage) {
    ++s;
    m = skip_dead(m);
  } else {
    m = skip_dead(m + 1);
  }
  const bool have_m = m < entries_.size();
  const bool have_s = s < staging_.size();
  if (!have_m && !have_s) return first();  // wrap clockwise past the top
  Cursor out;
  out.main = m;
  out.stage = s;
  out.on_stage = have_s && (!have_m || staging_[s].id < entries_[m].id);
  return out;
}

inline FlatRing::Cursor FlatRing::prev(const Cursor& c) const {
  // Last live main entry strictly before c.main, and the staging entry
  // just before c.stage; the counterclockwise neighbor is the larger.
  std::size_t m = c.main;
  while (m > 0 && entries_[m - 1].slot == kNoSlot) --m;
  const bool have_m = m > 0;
  const bool have_s = c.stage > 0;
  if (!have_m && !have_s) return last();  // wrap counterclockwise
  Cursor out;
  if (have_s &&
      (!have_m || entries_[m - 1].id < staging_[c.stage - 1].id)) {
    out.main = c.main;
    out.stage = c.stage - 1;
    out.on_stage = true;
  } else {
    out.main = m - 1;
    out.stage = c.stage;
    out.on_stage = false;
  }
  return out;
}

}  // namespace dhtlb::sim
