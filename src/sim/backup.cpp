#include "sim/backup.hpp"

#include <algorithm>
#include <stdexcept>

namespace dhtlb::sim {

BackupRing::BackupRing(std::vector<Id> nodes, std::size_t replication)
    : replication_(replication) {
  if (nodes.empty()) {
    throw std::invalid_argument("BackupRing: need at least one node");
  }
  if (replication == 0) {
    throw std::invalid_argument("BackupRing: replication must be >= 1");
  }
  for (const auto& id : nodes) {
    if (!nodes_.emplace(id, true).second) {
      throw std::invalid_argument("BackupRing: duplicate node ID");
    }
  }
}

std::vector<BackupRing::Id> BackupRing::target_holders(const Id& key) const {
  std::vector<Id> holders;
  if (nodes_.empty()) return holders;
  auto it = nodes_.lower_bound(key);
  if (it == nodes_.end()) it = nodes_.begin();
  const std::size_t want = std::min(replication_, nodes_.size());
  while (holders.size() < want) {
    holders.push_back(it->first);
    ++it;
    if (it == nodes_.end()) it = nodes_.begin();
  }
  return holders;
}

void BackupRing::add_key(const Id& key) {
  KeyState state;
  state.holders = target_holders(key);
  keys_[key] = std::move(state);
}

std::uint64_t BackupRing::fail_node(const Id& node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) return 0;
  nodes_.erase(it);
  std::uint64_t destroyed = 0;
  for (auto& [key, state] : keys_) {
    if (state.lost) continue;
    const auto pos =
        std::find(state.holders.begin(), state.holders.end(), node);
    if (pos == state.holders.end()) continue;
    state.holders.erase(pos);
    ++destroyed;
    if (state.holders.empty()) {
      state.lost = true;
      ++lost_;
    }
  }
  return destroyed;
}

bool BackupRing::join_node(const Id& id) {
  return nodes_.emplace(id, true).second;
}

std::uint64_t BackupRing::repair() {
  std::uint64_t transfers = 0;
  for (auto& [key, state] : keys_) {
    if (state.lost) continue;
    const std::vector<Id> targets = target_holders(key);
    // Copy to every target that lacks one (each copy is one transfer
    // from a surviving holder), then retire stale copies (free).
    std::vector<Id> next;
    next.reserve(targets.size());
    for (const auto& target : targets) {
      const bool has_copy = std::find(state.holders.begin(),
                                      state.holders.end(),
                                      target) != state.holders.end();
      if (!has_copy) ++transfers;
      next.push_back(target);
    }
    state.holders = std::move(next);
  }
  return transfers;
}

bool BackupRing::key_alive(const Id& key) const {
  const auto it = keys_.find(key);
  return it != keys_.end() && !it->second.lost;
}

std::size_t BackupRing::copies_of(const Id& key) const {
  const auto it = keys_.find(key);
  if (it == keys_.end() || it->second.lost) return 0;
  return it->second.holders.size();
}

std::size_t BackupRing::live_nodes() const { return nodes_.size(); }

}  // namespace dhtlb::sim
