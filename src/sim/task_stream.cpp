#include "sim/task_stream.hpp"

#include "hashing/sha1.hpp"
#include "sim/world.hpp"  // kTickShards
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dhtlb::sim {

namespace {

// Balanced split of `total` over `cells`: cell i gets the quotient plus
// one unit of the remainder iff i < total % cells.  Used twice — ticks
// over the arrival window, then one tick's count over the shards — so
// both levels of the schedule are closed-form.
std::uint64_t cell_share(std::uint64_t total, std::uint64_t cells,
                         std::uint64_t cell) {
  return total / cells + (cell < total % cells ? 1 : 0);
}

}  // namespace

TaskStream::TaskStream(std::uint64_t run_seed, std::uint64_t total_tasks,
                       std::uint64_t arrival_ticks)
    : run_seed_(run_seed), total_tasks_(total_tasks),
      arrival_ticks_(arrival_ticks) {
  DHTLB_CHECK(arrival_ticks_ >= 1,
              "TaskStream: arrival_ticks must be >= 1");
}

std::uint64_t TaskStream::count_at(std::uint64_t tick) const {
  if (tick == 0 || tick > arrival_ticks_) return 0;
  return cell_share(total_tasks_, arrival_ticks_, tick - 1);
}

std::uint64_t TaskStream::cumulative(std::uint64_t tick) const {
  if (tick >= arrival_ticks_) return total_tasks_;
  // Ticks 1..tick: tick quotients plus one remainder unit for each of
  // the first min(tick, total % arrival_ticks) ticks.
  const std::uint64_t q = total_tasks_ / arrival_ticks_;
  const std::uint64_t r = total_tasks_ % arrival_ticks_;
  return tick * q + (tick < r ? tick : r);
}

std::uint64_t TaskStream::shard_count(std::uint64_t tick,
                                      std::size_t shard) const {
  return cell_share(count_at(tick), kTickShards, shard);
}

void TaskStream::draw_shard(std::uint64_t tick, std::size_t shard,
                            std::vector<TaskKey>& out) const {
  const std::uint64_t n = shard_count(tick, shard);
  if (n == 0) return;
  // Same derivation shape as the engine's churn/consume streams: per-tick
  // root, then (phase, shard).  Keys are SHA-1 images of the raw draws,
  // exactly like preallocated construction and scenario injection.
  support::Rng rng(support::stream_seed(support::mix_seed(run_seed_, tick),
                                        kStreamArrive, shard));
  out.reserve(out.size() + n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(hashing::Sha1::hash_u64(rng()));
  }
}

}  // namespace dhtlb::sim
