// Active-backup replication model (§IV-A / §V).
//
// The paper assumes "nodes are active and aggressive in creating and
// monitoring the backups", replicating every key to `replication`
// successors so that "a node suddenly dying is of minimal impact".  The
// tick simulator takes that as given (tasks teleport to the successor);
// this module makes the assumption explicit and falsifiable:
//
//  * keys are replicated on their primary (ring successor) plus the
//    next replication-1 nodes clockwise;
//  * failures destroy a node's copies; a key whose whole replica set is
//    destroyed before a repair cycle runs is LOST;
//  * repair() re-replicates under-replicated keys, counting every copy
//    transferred — the maintenance traffic the §VI-A footnote warns
//    "makes any amount of churn after a certain point prohibitively
//    expensive".
//
// Tests pin the survivability bound (r-1 adjacent simultaneous failures
// survivable, r not) and the bench tableB quantifies repair traffic as
// a function of churn rate.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "support/uint160.hpp"

namespace dhtlb::sim {

class BackupRing {
 public:
  using Id = support::Uint160;

  /// Creates a ring over distinct node IDs with the given replication
  /// factor (total copies per key, >= 1).  Throws std::invalid_argument
  /// on an empty node set, duplicate IDs, or replication == 0.
  BackupRing(std::vector<Id> nodes, std::size_t replication);

  /// Inserts a key: copies go to its primary (first node clockwise at or
  /// after the key) and the following replication-1 live successors.
  void add_key(const Id& key);

  /// Abrupt node failure: all copies it held vanish.  Keys whose last
  /// copy vanished are counted lost (and stay lost — matching a real
  /// system, repair cannot resurrect data).  Returns copies destroyed.
  std::uint64_t fail_node(const Id& node);

  /// A node (re)joins at `id`.  It holds no copies until repair runs —
  /// modelling the window between membership change and backup
  /// convergence.  Returns false if the ID is already present.
  bool join_node(const Id& id);

  /// One active-backup maintenance cycle: every surviving key is
  /// re-replicated onto its current primary + successors, and copies
  /// that now sit on wrong nodes (stale after membership changes) are
  /// dropped.  Returns the number of copies transferred (the traffic).
  std::uint64_t repair();

  std::uint64_t total_keys() const { return keys_.size(); }
  std::uint64_t lost_keys() const { return lost_; }
  /// True iff at least one copy of the key survives.
  bool key_alive(const Id& key) const;
  /// Copies currently held of a key (0 if lost or unknown).
  std::size_t copies_of(const Id& key) const;
  std::size_t live_nodes() const;

 private:
  struct KeyState {
    std::vector<Id> holders;  // nodes currently holding a copy
    bool lost = false;
  };

  /// The replica target set for a key under current membership.
  std::vector<Id> target_holders(const Id& key) const;

  std::map<Id, bool> nodes_;  // id -> alive (dead entries pruned)
  std::size_t replication_;
  std::map<Id, KeyState> keys_;
  std::uint64_t lost_ = 0;
};

}  // namespace dhtlb::sim
