// The simulated DHT: a Chord ring of virtual nodes, the physical nodes
// that own them, the waiting pool, and the exact-key task assignment.
//
// This is the idealized network model the paper simulates on (§V): the
// ring is always consistent (one maintenance cycle fits in a tick),
// leaving nodes' tasks are instantly absorbed by their successor (active
// backup), and joining nodes instantly acquire the keys in their arc.
// The full Chord protocol with explicit messages lives in src/chord and
// is used to validate these assumptions and to cost them in messages.
//
// Vocabulary: a *virtual node* (vnode) is a ring position — either a
// physical node's primary presence or one of its Sybils.  A *physical
// node* owns 1 + #Sybils vnodes, has a strength, and consumes work.
//
// Storage: the ring lives in a FlatRing (sim/flat_ring.hpp) — a sorted
// (id, slot) index over a stable slot arena — rather than a
// std::map<Uint160, VirtualNode>, so 100k..1M-vnode worlds fit in flat
// arrays instead of a pointer-chased tree.  Per-vnode payloads are
// addressed by stable Slot handles; the per-physical-node vnode cache
// stores those handles where it used to store map value pointers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/flat_ring.hpp"
#include "sim/params.hpp"
#include "sim/task_store.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/uint160.hpp"

namespace dhtlb::sim {

namespace testing {
struct WorldCorruptor;  // test-only backdoor, defined under tests/sim/
}

using support::Uint160;

/// Number of contiguous ring arcs the parallel tick engine partitions the
/// alive population into.  Fixed — never derived from the worker-thread
/// count — so per-shard RNG streams, fold order, and therefore every
/// simulation output are identical at DHTLB_THREADS=1 and N.  Sixteen
/// arcs keep all plausible pool sizes busy while the per-tick partition
/// and fold overhead stays negligible.
inline constexpr std::size_t kTickShards = 16;

/// A machine participating (or waiting to participate) in the network.
struct PhysicalNode {
  unsigned strength = 1;  // het: U{1..maxSybils}; hom: 1
  bool alive = false;
  std::vector<Uint160> vnode_ids;  // [0] = primary; rest are Sybils
  std::uint64_t workload = 0;      // cached: Σ tasks over vnode_ids
};

/// Local view of one vnode's ownership arc — what a node can learn about
/// a ring position from its own routing state (strategies' only input).
struct ArcView {
  Uint160 pred;  // predecessor vnode's ID: arc is (pred, id]
  Uint160 id;
  NodeIndex owner = 0;
  bool is_sybil = false;
  std::uint64_t task_count = 0;
};

class World {
 public:
  /// Builds the initial network: `initial_nodes` alive physical nodes
  /// with SHA-1 IDs and an equal-size waiting pool.  Task provisioning
  /// depends on Params::provisioning (DESIGN.md §0): preallocated mode
  /// additionally assigns `total_tasks` SHA-1-keyed tasks to their owner
  /// arcs here; streamed mode starts the ring empty — the engine's
  /// sim::TaskStream delivers each tick's arrivals through inject_task().
  /// Node placement consumes the identical RNG sequence either way.
  World(const Params& params, support::Rng& rng);

  /// Lazy, allocation-free walk over up to k neighbor arcs of a vnode —
  /// the hot-path form of successors_of/predecessors_of + arc_of.  Each
  /// dereference yields the ArcView of the next vnode clockwise (or
  /// counterclockwise) using a cached ring cursor, so a full scan of a
  /// successor list costs one ring lookup total instead of one per
  /// neighbor plus a vector allocation.  The walk stops early when the
  /// ring wraps back to the starting vnode.  Cursors are invalidated
  /// by any ring mutation (join/depart/create_sybil/remove_sybils).
  class ArcWalk {
   public:
    class iterator {
     public:
      using iterator_category = std::input_iterator_tag;
      using value_type = ArcView;
      using difference_type = std::ptrdiff_t;

      ArcView operator*() const;
      iterator& operator++();
      bool operator==(const iterator& other) const {
        return remaining_ == other.remaining_;
      }
      bool operator!=(const iterator& other) const {
        return !(*this == other);
      }

     private:
      friend class ArcWalk;
      const World* world_ = nullptr;
      FlatRing::Cursor cursor_{};
      Uint160 start_{};
      // Forward walks visit each arc right after its predecessor, so the
      // pred id is carried along instead of re-derived with a ring step
      // per dereference.  Backward walks visit pred-first and cannot
      // cache it; they call prev() in operator*.
      Uint160 pred_{};
      std::size_t remaining_ = 0;  // 0 == end
      bool forward_ = true;
    };

    iterator begin() const;
    iterator end() const { return iterator{}; }

   private:
    friend class World;
    ArcWalk(const World* world, FlatRing::Cursor start, std::size_t k,
            bool forward)
        : world_(world), start_(start), k_(k), forward_(forward) {}

    const World* world_;
    FlatRing::Cursor start_;
    std::size_t k_;
    bool forward_;
  };

  // --- global observers ---------------------------------------------------

  const Params& params() const { return params_; }
  std::uint64_t remaining_tasks() const { return remaining_; }

  /// Tasks ever assigned to the ring: the initial job plus every task
  /// injected mid-run (scenario workload events).  Conservation audits
  /// compare completed + remaining against this, not Params::total_tasks.
  std::uint64_t total_tasks() const { return total_tasks_; }
  std::size_t vnode_count() const { return ring_.size(); }
  std::size_t alive_count() const { return alive_.size(); }
  std::size_t waiting_count() const { return waiting_.size(); }
  const std::vector<NodeIndex>& alive_indices() const { return alive_; }
  const std::vector<NodeIndex>& waiting_indices() const { return waiting_; }

  const PhysicalNode& physical(NodeIndex idx) const {
    return physicals_[idx];
  }
  std::size_t physical_count() const { return physicals_.size(); }

  /// Every vnode ID in the ring, in clockwise (ascending) order.  For
  /// the invariant auditor, snapshots and tests — strategies must not
  /// use it (global knowledge).
  std::vector<Uint160> ring_ids() const;

  /// Calls fn(const ArcView&) for every vnode in clockwise (ascending)
  /// order — the bulk form of arc_of over the whole ring, O(ring) total
  /// instead of one ring search per vnode.  Same global-knowledge caveat
  /// as ring_ids(): for the auditor, snapshots and tests only.
  template <typename Fn>
  void for_each_arc(Fn&& fn) const;

  /// Tasks per tick this node completes (1, or strength — §V-B).
  std::uint64_t work_per_tick(NodeIndex idx) const;

  /// Maximum Sybils this node may hold (§V-B: maxSybils, or strength in
  /// a heterogeneous network).
  unsigned sybil_cap(NodeIndex idx) const;

  std::uint64_t workload(NodeIndex idx) const {
    return physicals_[idx].workload;
  }
  std::size_t sybil_count(NodeIndex idx) const {
    DHTLB_ASSERT(!physicals_[idx].vnode_ids.empty(),
                 "sybil_count: node " << idx << " holds no vnodes"
                                      << " (waiting, not in the ring)");
    return physicals_[idx].vnode_ids.size() - 1;
  }

  /// Sum of work_per_tick over the initially alive population — the
  /// denominator of the ideal runtime (§V-C).
  std::uint64_t initial_capacity() const { return initial_capacity_; }

  /// The tick-engine shard (contiguous ring arc, see kTickShards) that
  /// `idx`'s primary vnode lives on.  Cached at primary placement — the
  /// primary ID never changes while a node is alive — so the engine's
  /// per-tick partition is two flat array reads per node.  Only
  /// meaningful for alive nodes.
  std::uint8_t home_shard(NodeIndex idx) const { return home_shard_[idx]; }

  /// Per-alive-physical-node workloads, for histograms and imbalance
  /// metrics (order matches alive_indices()).
  std::vector<std::uint64_t> alive_workloads() const;

  // --- local topology queries (strategy building blocks) -----------------

  /// Arc of a vnode that exists in the ring.
  ArcView arc_of(const Uint160& vnode_id) const;

  /// Up to k vnode IDs clockwise after `vnode_id` (its successor list).
  /// Stops early if the ring wraps back to the starting vnode.
  /// Convenience wrapper over successor_arcs(); allocates the vector.
  std::vector<Uint160> successors_of(const Uint160& vnode_id,
                                     std::size_t k) const;

  /// Up to k vnode IDs counterclockwise before `vnode_id`.
  /// Convenience wrapper over predecessor_arcs(); allocates the vector.
  std::vector<Uint160> predecessors_of(const Uint160& vnode_id,
                                       std::size_t k) const;

  /// Allocation-free walk over the ArcViews of up to k successors of
  /// `vnode_id`, clockwise.  Yields exactly the arcs that
  /// successors_of + arc_of would produce, in the same order.
  ArcWalk successor_arcs(const Uint160& vnode_id, std::size_t k) const;

  /// Allocation-free walk over the ArcViews of up to k predecessors of
  /// `vnode_id`, counterclockwise.
  ArcWalk predecessor_arcs(const Uint160& vnode_id, std::size_t k) const;

  bool ring_contains(const Uint160& id) const { return ring_.contains(id); }

  /// Arc of the vnode whose ownership arc covers `point` (the vnode a
  /// lookup for `point` would land on).
  ArcView arc_covering(const Uint160& point) const;

  /// Median of a vnode's remaining task keys along its arc (the exact
  /// half-split ID used by the chosen-ID future-work strategy), or
  /// nullopt when the vnode holds no tasks.  The median is taken in arc
  /// order (clockwise from the arc's start), not raw numeric order, so
  /// it is correct for arcs that wrap through zero.
  std::optional<Uint160> median_task_key(const Uint160& vnode_id) const;

  /// The n-th (0-based) remaining task key of a vnode in arc order
  /// (clockwise from the arc's start) — the generalized form of
  /// median_task_key used by the item-balance family to pick an exact
  /// split point that keeps a chosen number of keys on one side.
  /// Returns nullopt when the vnode holds fewer than n + 1 tasks.
  std::optional<Uint160> nth_task_key(const Uint160& vnode_id,
                                      std::uint64_t n) const;

  /// Read-only view of a vnode's remaining task keys (unordered).  For
  /// inspection, tests and reference-model comparison — strategies must
  /// not use it (it is more than a node could know about a peer).
  const std::vector<TaskKey>& vnode_keys(const Uint160& vnode_id) const;

  // --- mutation: membership & Sybils --------------------------------------

  /// Inserts a Sybil vnode for `owner` at `id`, splitting the covering
  /// node's arc and transferring the keys in (pred, id].  Returns the
  /// number of tasks acquired, or nullopt if `id` collides with an
  /// existing vnode.  Does NOT check the Sybil cap (strategy's job).
  std::optional<std::uint64_t> create_sybil(NodeIndex owner, Uint160 id);

  /// Removes all of `owner`'s Sybils; their tasks fall to their ring
  /// successors (exactly like graceful departures).
  void remove_sybils(NodeIndex owner);

  /// Relocates the vnode at `old_id` to `new_id` — the neighbor-move
  /// primitive of the item-balance family (Chawachat & Fakcharoenphol:
  /// a node re-joins at a boundary point negotiated with a neighbor
  /// instead of spawning Sybils).  `new_id` must lie strictly inside the
  /// open arc (pred(old), succ(old)) so only the two adjacent arcs are
  /// touched: moving counterclockwise sheds the keys in (new_id, old_id]
  /// to the old successor; moving clockwise acquires (old_id, new_id]
  /// from it.  Returns the number of keys that changed owner, or nullopt
  /// when the move is impossible (collision, new_id outside the
  /// neighbor arcs, or the vnode is alone in the ring).  Ownership,
  /// aliveness and the Sybil flag are preserved.
  std::optional<std::uint64_t> move_vnode(const Uint160& old_id,
                                          const Uint160& new_id);

  /// An alive node (with all its Sybils) leaves the network and enters
  /// the waiting pool; its tasks fall to ring successors.  Refuses (and
  /// returns false) when it owns the only vnodes in the ring.
  bool depart(NodeIndex idx);

  /// Pops one waiting node and joins it at a fresh SHA-1 ID; returns its
  /// index, or nullopt if the pool is empty.  The joiner immediately
  /// acquires the keys in its arc (§IV-A).  The no-argument form draws
  /// the ID from the world's construction RNG; the overload draws from
  /// the caller's stream instead, so engine churn and scripted scenario
  /// joins each own their placement randomness.
  std::optional<NodeIndex> join_from_pool();
  std::optional<NodeIndex> join_from_pool(support::Rng& id_rng);

  // --- mutation: work -----------------------------------------------------

  /// Consumes up to `budget` tasks from `idx`'s vnodes (most-loaded vnode
  /// first).  Returns tasks actually consumed.
  std::uint64_t consume(NodeIndex idx, std::uint64_t budget);

  /// The shard-parallel form of consume(): identical task selection, but
  /// the uniform picks come from the caller's per-shard RNG stream and
  /// the global remaining-task counter is NOT debited — the tick engine
  /// folds per-shard consumed totals and settles the counter once at the
  /// barrier via debit_remaining().  Thread-compatible: safe to call
  /// concurrently for nodes on different shards, because every mutation
  /// (TaskStores, workload cache) is local to `idx`'s own vnodes.
  std::uint64_t consume_local(NodeIndex idx, std::uint64_t budget,
                              support::Rng& rng);

  /// Settles the global remaining-task counter after a parallel
  /// consumption phase: subtracts the folded per-shard total.
  void debit_remaining(std::uint64_t consumed);

  /// Adds one task with `key` to the vnode whose arc covers it — the
  /// mid-run workload entry point shared by scenario injection events
  /// and streamed provisioning (the engine folds each tick's TaskStream
  /// arrivals through here; DESIGN.md §0).  Raises total_tasks()
  /// alongside remaining_tasks() so conservation stays exact.
  void inject_task(const Uint160& key);

  // --- mutation: scenario re-parameterization -----------------------------

  /// Changes the per-tick churn probability mid-run (must stay in
  /// [0, 1]).  The engine mirrors this into its own Params copy.
  void set_churn_rate(double rate);

  /// Changes sybilThreshold mid-run; strategies read it through params()
  /// on their next decision tick.
  void set_sybil_threshold(std::uint64_t threshold);

  /// Runs the full InvariantAuditor (see sim/audit.hpp) and reports
  /// whether every check passed.  O(ring + tasks).  Used by tests and
  /// audit builds; prefer InvariantAuditor directly when the failure
  /// details matter.
  bool check_invariants() const;

  /// True iff the per-physical-node cached arena slots agree with
  /// vnode_ids and the ring (the consume() fast path relies on them).
  /// O(ring log ring); for the auditor and tests.
  bool vnode_cache_consistent() const;

  /// True iff the alive-position index (the O(1) swap-pop depart
  /// bookkeeping) and the cached home shards agree with alive_ and the
  /// primary vnode IDs.  O(alive); for the auditor and tests.
  bool alive_index_consistent() const;

  /// Deep structural check of the flat ring index itself (sortedness,
  /// tombstone/staging bookkeeping, slot-arena cross-references).  For
  /// the auditor and tests.
  bool ring_index_consistent() const { return ring_.index_consistent(); }

 private:
  // Test-only: lets auditor tests seed deliberate corruptions (orphaned
  // keys, duplicated arcs, dangling Sybil owners) that the public API
  // makes impossible by construction.
  friend struct testing::WorldCorruptor;

  /// Builds the ArcView of the vnode a cursor points at.
  ArcView view_at(const FlatRing::Cursor& cursor) const;

  /// Generates a fresh SHA-1 node/task ID not colliding with the ring,
  /// drawing from the given stream (or the world's construction RNG).
  Uint160 fresh_ring_id() { return fresh_ring_id(rng_); }
  Uint160 fresh_ring_id(support::Rng& rng);

  /// Removes one vnode, merging its tasks into its successor.  The vnode
  /// must not be the last one in the ring.
  void remove_vnode(const Uint160& id);

  /// Shared join logic: splits the arc covering `id` and inserts a new
  /// vnode there for `owner`.  Returns the tasks acquired.
  std::uint64_t insert_vnode(NodeIndex owner, const Uint160& id,
                             bool is_sybil);

  Params params_;
  support::Rng& rng_;
  FlatRing ring_;
  std::vector<PhysicalNode> physicals_;
  // Cached ring slot for each entry of physicals_[i].vnode_ids, same
  // order.  FlatRing slots stay stable across other vnodes'
  // insert/erase (the arena recycles but never moves live slots), so
  // consume() can reach a node's TaskStores without an O(log ring)
  // search per vnode per tick.  Maintained at every vnode_ids mutation
  // site; audited by vnode_cache_consistent().
  std::vector<std::vector<Slot>> vnode_cache_;
  std::vector<NodeIndex> alive_;
  std::vector<NodeIndex> waiting_;
  // alive_pos_[idx] = position of idx within alive_, or kNotAlive.  Lets
  // depart() swap-pop in O(1) instead of std::erase's O(alive) scan —
  // the difference between O(alive) and O(alive^2 * churn) per tick at
  // 1M vnodes.  Audited by alive_index_consistent().
  static constexpr std::uint32_t kNotAlive = 0xFFFFFFFFu;
  std::vector<std::uint32_t> alive_pos_;
  // home_shard_[idx] = arc_shard(primary vnode id, kTickShards), cached
  // at primary placement for the engine's per-tick shard partition.
  std::vector<std::uint8_t> home_shard_;
  std::uint64_t remaining_ = 0;
  std::uint64_t total_tasks_ = 0;  // initial job + injected tasks
  std::uint64_t initial_capacity_ = 0;
};

// The walk iterator ops live here (not in world.cpp) so the per-arc ring
// steps inline into strategy loops — they are the hot path of every
// successor-list scan.
inline ArcView World::ArcWalk::iterator::operator*() const {
  if (!forward_) return world_->view_at(cursor_);
  const Slot slot = world_->ring_.slot_at(cursor_);
  ArcView view;
  view.pred = pred_;
  view.id = world_->ring_.id_at(cursor_);
  view.owner = world_->ring_.owner(slot);
  view.is_sybil = world_->ring_.is_sybil(slot);
  view.task_count = world_->ring_.tasks(slot).size();
  return view;
}

inline World::ArcWalk::iterator& World::ArcWalk::iterator::operator++() {
  if (forward_) {
    pred_ = world_->ring_.id_at(cursor_);
    cursor_ = world_->ring_.next(cursor_);
  } else {
    cursor_ = world_->ring_.prev(cursor_);
  }
  --remaining_;
  if (remaining_ != 0 && world_->ring_.id_at(cursor_) == start_) {
    remaining_ = 0;
  }
  return *this;
}

inline World::ArcWalk::iterator World::ArcWalk::begin() const {
  iterator it;
  it.world_ = world_;
  it.forward_ = forward_;
  it.start_ = world_->ring_.id_at(start_);
  if (forward_) {
    it.pred_ = it.start_;  // the first visited arc succeeds the start
    it.cursor_ = world_->ring_.next(start_);
  } else {
    it.cursor_ = world_->ring_.prev(start_);
  }
  // A walk is empty when k is zero or the starting vnode is alone in the
  // ring (its only neighbor is itself).
  it.remaining_ =
      (k_ == 0 || world_->ring_.id_at(it.cursor_) == it.start_) ? 0 : k_;
  return it;
}

template <typename Fn>
void World::for_each_arc(Fn&& fn) const {
  if (ring_.empty()) return;
  // The predecessor of the first (smallest) id is the ring's largest id;
  // after that each vnode's predecessor is simply the previous one in
  // ascending order.
  Uint160 pred = ring_.id_at(ring_.prev(ring_.first()));
  ring_.for_each([&](const Uint160& id, Slot slot) {
    ArcView view;
    view.pred = pred;
    view.id = id;
    view.owner = ring_.owner(slot);
    view.is_sybil = ring_.is_sybil(slot);
    view.task_count = ring_.tasks(slot).size();
    fn(static_cast<const ArcView&>(view));
    pred = id;
  });
}

}  // namespace dhtlb::sim
