// Runtime invariant auditor for the simulated Chord ring.
//
// The paper's results are only as trustworthy as the ring they are
// measured on: an overlapping arc, an orphaned key, or a stale Sybil
// owner would silently skew every workload histogram and runtime
// factor.  The auditor re-derives the ring's global invariants from
// scratch (no trust in cached state) and reports every violation with
// enough context to localize it — vnode ID, owner index, task key.
//
// Checks (names are stable; tests match on them):
//   index-integrity  the flat ring's own bookkeeping is sound: sorted
//                    index + staging halves, tombstone/live counts, and
//                    slot-arena cross-references (see FlatRing)
//   ring-order       vnode IDs strictly ascending mod 2^160; each arc's
//                    predecessor edge agrees with ring order; a lookup
//                    for a vnode's own ID lands on that vnode
//   key-partition    every task key lies in its owning vnode's arc
//                    (pred, id] — together with uniqueness of storage
//                    this is exact key-partition coverage
//   successor-lists  successors_of / predecessors_of agree with the
//                    ring order (length num_successors, §V-B)
//   sybil-ownership  every vnode's owner is alive and lists it exactly
//                    once; is_sybil matches list position; Sybil count
//                    respects maxSybils / strength; waiting nodes hold
//                    nothing
//   workload-cache   each physical node's cached workload equals the
//                    sum over its vnodes' task stores
//   membership       alive_ and waiting_ partition the physical
//                    population and agree with the alive flags
//   conservation     tasks stored in the ring == remaining task count
//
// In audit builds (-DDHTLB_AUDIT=ON) sim::Engine runs the full audit
// after every tick and aborts with the offending tick + seed on the
// first violation; World::check_invariants() is a boolean wrapper for
// tests.
#pragma once

#include <string>
#include <vector>

#include "sim/world.hpp"

namespace dhtlb::sim {

/// One violated invariant.
struct AuditFailure {
  std::string check;   // stable check name, e.g. "key-partition"
  std::string detail;  // human-readable context (vnode id, owner, key)
};

/// Everything one audit pass found.
struct AuditReport {
  std::vector<AuditFailure> failures;

  bool ok() const { return failures.empty(); }

  /// "check: detail" per line; empty string when clean.
  std::string to_string() const;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(const World& world) : world_(world) {}

  /// Runs every check and returns the combined report.
  AuditReport run() const;

  // Individual checks append their findings; exposed so tests can pin a
  // seeded corruption to the exact check that must catch it.
  void check_index_integrity(AuditReport& report) const;
  void check_ring_order(AuditReport& report) const;
  void check_key_partition(AuditReport& report) const;
  void check_successor_lists(AuditReport& report) const;
  void check_sybil_ownership(AuditReport& report) const;
  void check_workload_cache(AuditReport& report) const;
  void check_membership(AuditReport& report) const;
  void check_conservation(AuditReport& report) const;

 private:
  const World& world_;
};

}  // namespace dhtlb::sim
