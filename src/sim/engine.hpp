// The tick engine: drives one simulated distributed computation to
// completion and reports the paper's outputs (§V-C): runtime in ticks,
// ideal runtime, runtime factor, average work per tick, plus workload
// snapshots and strategy event counters.
//
// Tick anatomy (1-based tick t; DESIGN.md §0 walks one tick end to end):
//   1. churn       — each alive node leaves w.p. churn_rate; each waiting
//                    node joins w.p. churn_rate (§IV-A)
//   2. arrivals    — streamed provisioning only: this tick's TaskStream
//                    keys are drawn per shard and folded into the ring
//   3. decision    — strategy->decide() when t % decision_period == 0
//   4. consumption — each alive node consumes work_per_tick tasks
//   5. snapshot    — if t was requested (tick 0 = initial state)
// The run ends when no tasks remain and none are still scheduled to
// arrive (or the safety cap trips).
//
// Parallel execution (see DESIGN.md "Parallel tick engine"): the alive
// population is partitioned into kTickShards contiguous ring arcs by
// primary vnode ID.  The embarrassingly parallel phases — churn
// departure draws and task consumption — fan the shards across a
// support::ThreadPool; every cross-shard effect (the departures
// themselves, joins landing anywhere on the ring, the global
// remaining-task counter) is staged per shard and folded sequentially in
// fixed shard order at a barrier.  Each (tick, phase, shard) triple owns
// an Rng stream derived via support::stream_seed, so the simulation's
// outputs are bit-identical at any DHTLB_THREADS setting — the shard
// count is fixed, the fold order is fixed, and no draw ever depends on
// which thread ran it.  Observation, snapshots, and the invariant audit
// all run on the folded post-barrier world.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/params.hpp"
#include "sim/snapshot.hpp"
#include "sim/strategy.hpp"
#include "sim/task_stream.hpp"
#include "sim/world.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace dhtlb::sim {

/// Everything a single run produces.
struct RunResult {
  std::string strategy_name;
  std::uint64_t ticks = 0;
  std::uint64_t ideal_ticks = 0;
  double runtime_factor = 0.0;
  bool completed = false;  // false = safety cap hit before tasks drained
  double avg_work_per_tick = 0.0;

  // Environment event counts.
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;

  StrategyCounters strategy_counters;
  std::vector<Snapshot> snapshots;

  /// Tasks completed on each tick (index 0 = tick 1); only populated
  /// when Engine::record_tick_series(true) was set.  This is the "work
  /// per tick" series of §V-C.
  std::vector<std::uint64_t> work_per_tick;
};

class Engine {
 public:
  /// A null strategy pointer means "no strategy" (the paper's baseline).
  Engine(const Params& params, std::uint64_t seed,
         std::unique_ptr<Strategy> strategy = nullptr);

  /// Requests a snapshot after each listed tick (0 = initial state).
  /// Must be called before run()/step().
  void request_snapshots(std::vector<std::uint64_t> ticks);

  /// Timeline hook (the scenario engine's entry point): invoked at the
  /// start of every tick — before churn, decisions, and consumption —
  /// with the 1-based tick number about to run.  The hook may mutate the
  /// world (joins, departures, task injection) and the engine's
  /// parameters.  Its return value answers "must the engine keep
  /// ticking even though no work remains?": returning true lets a
  /// drained engine run idle ticks (churn still applies) toward
  /// scheduled future events; returning false restores the default
  /// stop-when-drained behavior.  The hook is not called once the
  /// safety cap is reached.
  using TickHook = std::function<bool(std::uint64_t tick)>;
  void set_pre_tick_hook(TickHook hook) { pre_tick_hook_ = std::move(hook); }

  /// Tick-barrier hook (the serving plane's entry point): invoked at the
  /// end of every completed tick — after the consumption fold and the
  /// remaining-task debit, before observation, snapshots, and the audit
  /// — with the 1-based tick number that just ran.  The world is fully
  /// folded and quiescent at that point, so the hook may read it freely
  /// (e.g. to freeze a serve::RingView) but must not mutate it.
  using PostTickHook = std::function<void(std::uint64_t tick)>;
  void set_post_tick_hook(PostTickHook hook) {
    post_tick_hook_ = std::move(hook);
  }

  /// Hot-swaps the balancing strategy mid-run (scenario `strategy`
  /// event).  Counters accumulate across the swap; nullptr reverts to
  /// the paper's no-strategy baseline.
  void set_strategy(std::unique_ptr<Strategy> strategy) {
    strategy_ = std::move(strategy);
  }

  /// Re-parameterizes the per-tick churn probability mid-run, keeping
  /// the world's Params copy in sync (scenario `set churn` event).
  void set_churn_rate(double rate);

  /// Re-parameterizes sybilThreshold mid-run (scenario `set threshold`
  /// event); strategies observe it on their next decision tick.
  void set_sybil_threshold(std::uint64_t threshold);

  /// Enables recording of tasks completed per tick (off by default: the
  /// series is O(runtime) memory).
  void record_tick_series(bool enabled) { record_series_ = enabled; }

  /// Attaches a trace sink (nullable; null detaches).  With a sink
  /// attached the engine emits per-tick spans, churn / decision / sybil
  /// instants, and counter series; without one, the only cost is a
  /// branch on this pointer.  Timestamps come from the tick counter, so
  /// traces are deterministic for a given (params, seed).
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

  /// Attaches a metrics registry (nullable) and registers the engine's
  /// instruments on it (see OBSERVABILITY.md for the catalog).  The
  /// engine samples the registry once at the end of every tick.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Runs the full InvariantAuditor (sim/audit.hpp) after every tick and
  /// aborts with the offending tick + seed on the first violation.
  /// Defaults to on in audit builds (-DDHTLB_AUDIT=ON), off otherwise;
  /// tests may force it on in any build flavor.
  void set_audit(bool enabled) { audit_enabled_ = enabled; }
  bool audit_enabled() const { return audit_enabled_; }

  /// Sizes the worker pool for the parallel tick phases: 0 = hardware
  /// concurrency, 1 (the default) = run every shard inline on the
  /// calling thread.  Purely an execution knob — the sharded algorithm,
  /// RNG streams, and fold order are identical at every setting, so
  /// results never depend on it.  Drivers wire this to DHTLB_THREADS
  /// (support::env_threads); the experiment harness deliberately leaves
  /// engines single-threaded because it parallelizes across trials.
  void set_threads(std::size_t threads);
  std::size_t threads() const { return pool_ ? pool_->thread_count() : 1; }

  /// Runs to completion (or the safety cap) and returns the results.
  RunResult run();

  /// Executes one tick; returns true while work remains and the cap has
  /// not tripped.  Useful for incremental inspection in tests/examples.
  bool step();

  const World& world() const { return world_; }
  World& world() { return world_; }
  std::uint64_t current_tick() const { return tick_; }
  std::uint64_t ideal_ticks() const { return ideal_ticks_; }

  /// Snapshot of the current state (used internally and by examples).
  Snapshot capture(std::uint64_t tick) const;

  /// Streamed provisioning only: the run's arrival source (null in
  /// preallocated mode).  Exposed for tests and drivers that want the
  /// schedule (e.g. to size expectations against cumulative()).
  const TaskStream* task_stream() const { return stream_.get(); }

 private:
  void churn_step(std::uint64_t tick_seed);
  void arrival_step();
  void run_audit() const;
  void finalize(RunResult& result) const;
  void observe_tick(std::uint64_t done_this_tick);

  /// Rebins the alive set into per-shard member lists (reading the
  /// world's cached home shards).  Called before each parallel phase —
  /// membership may have changed since the last one.
  void partition_alive();

  /// Runs fn(shard) for every shard: fanned across the pool when one is
  /// attached, in shard order inline otherwise.  fn must only touch its
  /// own shard's staging state (plus world state local to that shard's
  /// nodes) — all cross-shard effects wait for the sequential fold.
  void for_each_shard(const std::function<void(std::size_t)>& fn);

  Params params_;
  std::uint64_t seed_;
  support::Rng rng_;
  World world_;
  std::unique_ptr<Strategy> strategy_;
  std::uint64_t tick_ = 0;
  std::uint64_t completed_ = 0;

  /// Per-shard staging area: the only state a worker may write during a
  /// parallel phase.  Folded (and cleared) in fixed shard order at the
  /// barrier that ends the phase.
  struct ShardScratch {
    std::vector<NodeIndex> members;     // this tick's shard partition
    std::vector<NodeIndex> departures;  // churn draw results, pre-fold
    std::vector<TaskKey> arrivals;      // streamed task keys, pre-fold
    std::uint64_t consumed = 0;         // consumption total, pre-fold
    std::uint64_t join_draws = 0;       // Binomial successes, pre-fold
  };
  std::array<ShardScratch, kTickShards> shards_;
  // Streamed provisioning state (both unset in preallocated mode):
  // the arrival source and the running count of stream-delivered tasks,
  // audited each tick against the schedule's closed-form prefix sum.
  std::unique_ptr<TaskStream> stream_;
  std::uint64_t stream_arrived_ = 0;
  std::uint64_t tick_arrived_ = 0;  // this tick's arrivals, for metrics
  std::unique_ptr<support::ThreadPool> pool_;  // null = inline execution
#ifdef DHTLB_AUDIT_ENABLED
  bool audit_enabled_ = true;
#else
  bool audit_enabled_ = false;
#endif
  std::uint64_t ideal_ticks_ = 0;
  std::uint64_t cap_ = 0;
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  StrategyCounters strategy_counters_;
  std::vector<std::uint64_t> snapshot_ticks_;  // sorted
  std::vector<Snapshot> snapshots_;
  bool record_series_ = false;
  std::vector<std::uint64_t> series_;
  std::vector<double> obs_loads_;  // reused histogram batch buffer
  TickHook pre_tick_hook_;
  PostTickHook post_tick_hook_;

  // Observability (both sinks nullable; see set_trace/set_metrics).
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct MetricIds {
    obs::MetricsRegistry::Id ring_gini = 0;
    obs::MetricsRegistry::Id workload_stddev = 0;
    obs::MetricsRegistry::Id workload_hist = 0;
    obs::MetricsRegistry::Id sybils_live = 0;
    obs::MetricsRegistry::Id nodes_alive = 0;
    obs::MetricsRegistry::Id tasks_remaining = 0;
    obs::MetricsRegistry::Id work_done = 0;
    obs::MetricsRegistry::Id churn_joins = 0;
    obs::MetricsRegistry::Id churn_leaves = 0;
    obs::MetricsRegistry::Id tasks_migrated = 0;
    obs::MetricsRegistry::Id workload_queries = 0;
    obs::MetricsRegistry::Id tasks_arrived = 0;  // streamed mode only
  };
  MetricIds ids_{};  // valid only while metrics_ != nullptr
  // Previous cumulative values, for per-tick deltas fed to counters and
  // decision instants.
  std::uint64_t obs_prev_joins_ = 0;
  std::uint64_t obs_prev_leaves_ = 0;
  StrategyCounters obs_prev_counters_{};
};

}  // namespace dhtlb::sim
