#include "sim/flat_ring.hpp"

#include <algorithm>

namespace dhtlb::sim {
namespace {

// Integer sqrt (floor) for the merge threshold; n is a vnode count, so
// a few Newton steps from a 64-bit seed always converge.
std::size_t isqrt(std::size_t n) {
  if (n < 2) return n;
  std::size_t x = n;
  std::size_t y = (x + 1) / 2;
  while (y < x) {
    x = y;
    y = (x + n / x) / 2;
  }
  return x;
}

// Below this the staging memmoves are cheaper than any merge pass.
constexpr std::size_t kMinBatch = 32;

bool entry_id_less(const FlatRing::Entry& e, const Uint160& id) {
  return e.id < id;
}
bool id_entry_less(const Uint160& id, const FlatRing::Entry& e) {
  return id < e.id;
}

}  // namespace

// --- membership -----------------------------------------------------------

bool FlatRing::contains(const Uint160& id) const {
  const std::size_t m = main_lower_bound(id);
  if (m < entries_.size() && entries_[m].id == id &&
      entries_[m].slot != kNoSlot) {
    return true;
  }
  const std::size_t s = stage_lower_bound(id);
  return s < staging_.size() && staging_[s].id == id;
}

// --- bounds ---------------------------------------------------------------

std::size_t FlatRing::main_lower_bound(const Uint160& id) const {
  const std::size_t n = entries_.size();
  // Interpolation-guided search: ids are SHA-1 outputs, i.e. uniform on
  // the ring, so the rank of `id` is ≈ high64/2^64 · n with O(√n) error.
  // Gallop out from that estimate, then finish with a binary search over
  // the (cache-resident) bracket.  Tombstones keep their id and stay in
  // sorted position, so the estimate is unaffected by pending erases.
  // Falls back to plain lower_bound when the array is too small for the
  // estimate to beat log2(n) probes.
  if (n < 64) {
    return static_cast<std::size_t>(
        std::lower_bound(entries_.begin(), entries_.end(), id, entry_id_less) -
        entries_.begin());
  }
  // rank/2^32 · n via the top 32 bits — stays in 64-bit arithmetic.
  const std::size_t est = static_cast<std::size_t>(
      ((id.high64() >> 32) * static_cast<std::uint64_t>(n)) >> 32);  // < n
  std::size_t lo, hi;
  std::size_t step = 16;
  if (entries_[est].id < id) {
    lo = est + 1;
    hi = est + 1;
    while (hi < n && entries_[hi].id < id) {
      lo = hi + 1;
      hi += step;
      step *= 2;
    }
    if (hi > n) hi = n;
  } else {
    hi = est;
    lo = hi >= step ? hi - step : 0;
    while (lo > 0 && !(entries_[lo].id < id)) {
      hi = lo;
      step *= 2;
      lo = lo >= step ? lo - step : 0;
    }
  }
  return static_cast<std::size_t>(
      std::lower_bound(entries_.begin() + static_cast<std::ptrdiff_t>(lo),
                       entries_.begin() + static_cast<std::ptrdiff_t>(hi), id,
                       entry_id_less) -
      entries_.begin());
}

std::size_t FlatRing::main_upper_bound(const Uint160& id) const {
  return static_cast<std::size_t>(
      std::upper_bound(entries_.begin(), entries_.end(), id, id_entry_less) -
      entries_.begin());
}

std::size_t FlatRing::stage_lower_bound(const Uint160& id) const {
  return static_cast<std::size_t>(
      std::lower_bound(staging_.begin(), staging_.end(), id, entry_id_less) -
      staging_.begin());
}

std::size_t FlatRing::stage_upper_bound(const Uint160& id) const {
  return static_cast<std::size_t>(
      std::upper_bound(staging_.begin(), staging_.end(), id, id_entry_less) -
      staging_.begin());
}

// --- cursors --------------------------------------------------------------

FlatRing::Cursor FlatRing::find(const Uint160& id) const {
  DHTLB_CHECK(!bulk_mode_, "FlatRing::find during bulk load");
  const std::size_t m = main_lower_bound(id);
  if (m < entries_.size() && entries_[m].id == id &&
      entries_[m].slot != kNoSlot) {
    Cursor c;
    c.main = m;
    c.stage = stage_lower_bound(id);
    c.on_stage = false;
    return c;
  }
  const std::size_t s = stage_lower_bound(id);
  DHTLB_CHECK(s < staging_.size() && staging_[s].id == id,
              "FlatRing::find: id " << id << " not in ring");
  Cursor c;
  c.main = m;
  c.stage = s;
  c.on_stage = true;
  return c;
}

FlatRing::Cursor FlatRing::cover(const Uint160& point) const {
  DHTLB_CHECK(!bulk_mode_, "FlatRing::cover during bulk load");
  DHTLB_CHECK(live_ > 0, "FlatRing::cover on empty ring");
  const std::size_t m = skip_dead(main_lower_bound(point));
  const std::size_t s = stage_lower_bound(point);
  const bool have_m = m < entries_.size();
  const bool have_s = s < staging_.size();
  if (!have_m && !have_s) return first();  // wrapped past the top
  Cursor c;
  if (have_m && (!have_s || entries_[m].id < staging_[s].id)) {
    c.main = m;
    c.stage = s;
    c.on_stage = false;
  } else {
    c.main = m;
    c.stage = s;
    c.on_stage = true;
  }
  return c;
}

FlatRing::Cursor FlatRing::first() const {
  DHTLB_CHECK(live_ > 0, "FlatRing::first on empty ring");
  const std::size_t m = skip_dead(0);
  const bool have_m = m < entries_.size();
  const bool have_s = !staging_.empty();
  Cursor c;
  c.main = m;
  c.stage = 0;
  c.on_stage = have_s && (!have_m || staging_[0].id < entries_[m].id);
  return c;
}

FlatRing::Cursor FlatRing::last() const {
  DHTLB_CHECK(live_ > 0, "FlatRing::last on empty ring");
  // Last live main entry, scanning back over at most dead_ tombstones.
  std::size_t m = entries_.size();
  while (m > 0 && entries_[m - 1].slot == kNoSlot) --m;
  const bool have_m = m > 0;
  const bool have_s = !staging_.empty();
  Cursor c;
  if (have_s && (!have_m || entries_[m - 1].id < staging_.back().id)) {
    c.main = entries_.size();
    c.stage = staging_.size() - 1;
    c.on_stage = true;
  } else {
    c.main = m - 1;
    c.stage = staging_.size();
    c.on_stage = false;
  }
  return c;
}

// --- slot arena -----------------------------------------------------------

Slot FlatRing::alloc_slot(const Uint160& id, NodeIndex owner, bool is_sybil) {
  Slot s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
    ids_[s] = id;
    owners_[s] = owner;
    sybils_[s] = is_sybil ? 1 : 0;
  } else {
    s = static_cast<Slot>(ids_.size());
    DHTLB_CHECK(s != kNoSlot, "FlatRing: slot arena exhausted");
    ids_.push_back(id);
    owners_.push_back(owner);
    sybils_.push_back(is_sybil ? 1 : 0);
    tasks_.emplace_back();
  }
  return s;
}

void FlatRing::free_slot(Slot s) {
  // Drop the bucket's capacity too: under churn a recycled slot's next
  // occupant usually holds far fewer keys than a departed node's peak.
  tasks_[s] = TaskStore{};
  free_slots_.push_back(s);
}

// --- mutation -------------------------------------------------------------

Slot FlatRing::insert(const Uint160& id, NodeIndex owner, bool is_sybil) {
  DHTLB_CHECK(!bulk_mode_, "FlatRing::insert during bulk load");
  DHTLB_ASSERT(!contains(id), "FlatRing::insert: duplicate id " << id);
  const Slot slot = alloc_slot(id, owner, is_sybil);
  const std::size_t s = stage_lower_bound(id);
  staging_.insert(staging_.begin() + static_cast<std::ptrdiff_t>(s),
                  Entry{id, slot});
  ++live_;
  merge_if_needed();
  return slot;
}

void FlatRing::erase(const Uint160& id) {
  DHTLB_CHECK(!bulk_mode_, "FlatRing::erase during bulk load");
  const std::size_t s = stage_lower_bound(id);
  if (s < staging_.size() && staging_[s].id == id) {
    free_slot(staging_[s].slot);
    staging_.erase(staging_.begin() + static_cast<std::ptrdiff_t>(s));
    --live_;
    return;
  }
  const std::size_t m = main_lower_bound(id);
  DHTLB_CHECK(m < entries_.size() && entries_[m].id == id &&
                  entries_[m].slot != kNoSlot,
              "FlatRing::erase: id " << id << " not in ring");
  free_slot(entries_[m].slot);
  entries_[m].slot = kNoSlot;
  ++dead_;
  --live_;
  merge_if_needed();
}

void FlatRing::reserve(std::size_t n) {
  entries_.reserve(n);
  ids_.reserve(n);
  owners_.reserve(n);
  sybils_.reserve(n);
  tasks_.reserve(n);
}

Slot FlatRing::bulk_append(const Uint160& id, NodeIndex owner,
                           bool is_sybil) {
  DHTLB_CHECK(staging_.empty() && dead_ == 0,
              "FlatRing::bulk_append on a churned ring");
  bulk_mode_ = true;
  const Slot slot = alloc_slot(id, owner, is_sybil);
  entries_.push_back(Entry{id, slot});
  ++live_;
  return slot;
}

void FlatRing::finalize_bulk() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  bulk_mode_ = false;
}

// --- merge passes ---------------------------------------------------------

std::size_t FlatRing::merge_threshold() const {
  return kMinBatch + isqrt(live_);
}

void FlatRing::merge_if_needed() {
  const std::size_t threshold = merge_threshold();
  if (staging_.size() > threshold || dead_ > threshold) merge_now();
}

void FlatRing::merge_now() {
  std::vector<Entry> merged;
  merged.reserve(live_);
  std::size_t m = skip_dead(0);
  std::size_t s = 0;
  while (m < entries_.size() || s < staging_.size()) {
    if (s >= staging_.size() ||
        (m < entries_.size() && entries_[m].id < staging_[s].id)) {
      merged.push_back(entries_[m]);
      m = skip_dead(m + 1);
    } else {
      merged.push_back(staging_[s]);
      ++s;
    }
  }
  entries_ = std::move(merged);
  staging_.clear();
  dead_ = 0;
  ++merge_passes_;
}

// --- introspection --------------------------------------------------------

bool FlatRing::index_consistent() const {
  if (bulk_mode_) return false;
  // Both halves strictly sorted; staging all live.
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (!(entries_[i - 1].id < entries_[i].id)) return false;
  }
  for (std::size_t i = 0; i < staging_.size(); ++i) {
    if (staging_[i].slot == kNoSlot) return false;
    if (i > 0 && !(staging_[i - 1].id < staging_[i].id)) return false;
  }
  // Counts line up.
  std::size_t main_live = 0;
  std::size_t main_dead = 0;
  for (const Entry& e : entries_) {
    if (e.slot == kNoSlot) {
      ++main_dead;
    } else {
      ++main_live;
    }
  }
  if (main_dead != dead_) return false;
  if (main_live + staging_.size() != live_) return false;
  // Every live entry's slot is in range, unique, not on the free list,
  // and stores the id the index claims.
  std::vector<std::uint8_t> seen(ids_.size(), 0);
  for (const Slot s : free_slots_) {
    if (s >= ids_.size() || seen[s]) return false;
    seen[s] = 2;
  }
  const auto check_entry = [&](const Entry& e) {
    if (e.slot >= ids_.size() || seen[e.slot]) return false;
    seen[e.slot] = 1;
    return ids_[e.slot] == e.id;
  };
  for (const Entry& e : entries_) {
    if (e.slot != kNoSlot && !check_entry(e)) return false;
  }
  for (const Entry& e : staging_) {
    if (!check_entry(e)) return false;
  }
  // No leaked slots: every slot is live or free.
  for (const std::uint8_t mark : seen) {
    if (mark == 0) return false;
  }
  // A staged id may only collide with a *dead* main entry (the
  // erase-then-reinsert case); a live duplicate would shadow it.
  for (const Entry& e : staging_) {
    const std::size_t m = main_lower_bound(e.id);
    if (m < entries_.size() && entries_[m].id == e.id &&
        entries_[m].slot != kNoSlot) {
      return false;
    }
  }
  return true;
}

}  // namespace dhtlb::sim
