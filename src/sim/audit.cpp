#include "sim/audit.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "support/ring_math.hpp"

namespace dhtlb::sim {

namespace {

// Small helper so each check reads as: fail(report, "check", stream...).
template <typename Fn>
void fail(AuditReport& report, const char* check, Fn&& write_detail) {
  std::ostringstream os;
  write_detail(os);
  report.failures.push_back(AuditFailure{check, os.str()});
}

}  // namespace

std::string AuditReport::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) os << '\n';
    os << failures[i].check << ": " << failures[i].detail;
  }
  return os.str();
}

AuditReport InvariantAuditor::run() const {
  AuditReport report;
  check_index_integrity(report);
  check_ring_order(report);
  check_key_partition(report);
  check_successor_lists(report);
  check_sybil_ownership(report);
  check_workload_cache(report);
  check_membership(report);
  check_conservation(report);
  return report;
}

void InvariantAuditor::check_index_integrity(AuditReport& report) const {
  if (!world_.ring_index_consistent()) {
    fail(report, "index-integrity", [](std::ostream& os) {
      os << "flat ring index inconsistent (sortedness, tombstone/staging "
            "bookkeeping, or slot-arena cross-references)";
    });
  }
}

void InvariantAuditor::check_ring_order(AuditReport& report) const {
  const auto ids = world_.ring_ids();
  const std::size_t n = ids.size();
  if (n == 0) {
    fail(report, "ring-order", [](std::ostream& os) { os << "empty ring"; });
    return;
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!(ids[i] < ids[i + 1])) {
      fail(report, "ring-order", [&](std::ostream& os) {
        os << "ids not strictly ascending at position " << i << ": "
           << ids[i].to_short_hex() << " !< " << ids[i + 1].to_short_hex();
      });
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Uint160 expected_pred = ids[(i + n - 1) % n];
    const ArcView arc = world_.arc_of(ids[i]);
    if (arc.pred != expected_pred) {
      fail(report, "ring-order", [&](std::ostream& os) {
        os << "vnode " << ids[i].to_short_hex() << " reports predecessor "
           << arc.pred.to_short_hex() << ", ring order says "
           << expected_pred.to_short_hex();
      });
    }
    // A lookup for a vnode's own ID must land exactly on that vnode.
    if (world_.arc_covering(ids[i]).id != ids[i]) {
      fail(report, "ring-order", [&](std::ostream& os) {
        os << "lookup for vnode " << ids[i].to_short_hex()
           << " lands on a different vnode";
      });
    }
  }
}

void InvariantAuditor::check_key_partition(AuditReport& report) const {
  if (world_.vnode_count() <= 1) return;  // a single vnode owns everything
  world_.for_each_arc([&](const ArcView& arc) {
    const Uint160& id = arc.id;
    for (const TaskKey& key : world_.vnode_keys(id)) {
      if (!support::in_half_open_arc(key, arc.pred, arc.id)) {
        fail(report, "key-partition", [&](std::ostream& os) {
          os << "key " << key.to_short_hex() << " stored on vnode "
             << id.to_short_hex() << " lies outside its arc ("
             << arc.pred.to_short_hex() << ", " << arc.id.to_short_hex()
             << "]";
        });
        break;  // one offending key per vnode keeps the report readable
      }
    }
  });
}

void InvariantAuditor::check_successor_lists(AuditReport& report) const {
  const auto ids = world_.ring_ids();
  const std::size_t n = ids.size();
  if (n == 0) return;
  const std::size_t k = std::max<std::size_t>(1, world_.params().num_successors);
  const std::size_t expected_len = std::min(k, n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const auto succs = world_.successors_of(ids[i], k);
    const auto preds = world_.predecessors_of(ids[i], k);
    if (succs.size() != expected_len || preds.size() != expected_len) {
      fail(report, "successor-lists", [&](std::ostream& os) {
        os << "vnode " << ids[i].to_short_hex() << " has " << succs.size()
           << " successors / " << preds.size() << " predecessors, expected "
           << expected_len;
      });
      continue;
    }
    for (std::size_t j = 0; j < expected_len; ++j) {
      const Uint160& expected_succ = ids[(i + 1 + j) % n];
      const Uint160& expected_pred = ids[(i + n - 1 - j) % n];
      if (succs[j] != expected_succ || preds[j] != expected_pred) {
        fail(report, "successor-lists", [&](std::ostream& os) {
          os << "vnode " << ids[i].to_short_hex() << " list entry " << j
             << " disagrees with ring order";
        });
        break;
      }
    }
  }
}

void InvariantAuditor::check_sybil_ownership(AuditReport& report) const {
  const std::size_t physicals = world_.physical_count();
  world_.for_each_arc([&](const ArcView& arc) {
    const Uint160& id = arc.id;
    if (arc.owner >= physicals) {
      fail(report, "sybil-ownership", [&](std::ostream& os) {
        os << "vnode " << id.to_short_hex() << " owner index " << arc.owner
           << " out of range (" << physicals << " physical nodes)";
      });
      return;
    }
    const PhysicalNode& owner = world_.physical(arc.owner);
    if (!owner.alive) {
      fail(report, "sybil-ownership", [&](std::ostream& os) {
        os << (arc.is_sybil ? "sybil" : "primary") << " vnode "
           << id.to_short_hex() << " owned by dead node " << arc.owner;
      });
    }
    const auto listed =
        std::count(owner.vnode_ids.begin(), owner.vnode_ids.end(), id);
    if (listed != 1) {
      fail(report, "sybil-ownership", [&](std::ostream& os) {
        os << "vnode " << id.to_short_hex() << " listed " << listed
           << " times by its owner " << arc.owner << " (expected once)";
      });
    } else {
      const bool is_primary = owner.vnode_ids.front() == id;
      if (arc.is_sybil == is_primary) {
        fail(report, "sybil-ownership", [&](std::ostream& os) {
          os << "vnode " << id.to_short_hex() << " is_sybil flag disagrees"
             << " with its position in owner " << arc.owner << "'s list";
        });
      }
    }
  });
  for (const NodeIndex idx : world_.alive_indices()) {
    const PhysicalNode& node = world_.physical(idx);
    if (node.vnode_ids.empty()) {
      fail(report, "sybil-ownership", [&](std::ostream& os) {
        os << "alive node " << idx << " has no primary vnode";
      });
      continue;
    }
    for (const Uint160& id : node.vnode_ids) {
      if (!world_.ring_contains(id)) {
        fail(report, "sybil-ownership", [&](std::ostream& os) {
          os << "node " << idx << " lists vnode " << id.to_short_hex()
             << " that is not in the ring";
        });
      } else if (world_.arc_of(id).owner != idx) {
        fail(report, "sybil-ownership", [&](std::ostream& os) {
          os << "node " << idx << " lists vnode " << id.to_short_hex()
             << " owned by node " << world_.arc_of(id).owner
             << " (duplicated arc)";
        });
      }
    }
    if (world_.sybil_count(idx) > world_.sybil_cap(idx)) {
      fail(report, "sybil-ownership", [&](std::ostream& os) {
        os << "node " << idx << " holds " << world_.sybil_count(idx)
           << " sybils, above its cap of " << world_.sybil_cap(idx);
      });
    }
  }
  for (const NodeIndex idx : world_.waiting_indices()) {
    const PhysicalNode& node = world_.physical(idx);
    if (!node.vnode_ids.empty() || node.workload != 0) {
      fail(report, "sybil-ownership", [&](std::ostream& os) {
        os << "waiting node " << idx << " still holds "
           << node.vnode_ids.size() << " vnodes / " << node.workload
           << " tasks";
      });
    }
  }
}

void InvariantAuditor::check_workload_cache(AuditReport& report) const {
  std::vector<std::uint64_t> per_owner(world_.physical_count(), 0);
  world_.for_each_arc([&](const ArcView& arc) {
    if (arc.owner < per_owner.size()) per_owner[arc.owner] += arc.task_count;
  });
  for (std::size_t i = 0; i < per_owner.size(); ++i) {
    const auto idx = static_cast<NodeIndex>(i);
    if (world_.physical(idx).workload != per_owner[i]) {
      fail(report, "workload-cache", [&](std::ostream& os) {
        os << "node " << i << " caches workload "
           << world_.physical(idx).workload << ", ring holds "
           << per_owner[i];
      });
    }
  }
  // The consume() fast path walks cached arena slots; a stale entry
  // would silently consume from the wrong arc.
  if (!world_.vnode_cache_consistent()) {
    fail(report, "workload-cache", [](std::ostream& os) {
      os << "cached arena slots disagree with vnode_ids/ring";
    });
  }
}

void InvariantAuditor::check_membership(AuditReport& report) const {
  const std::size_t physicals = world_.physical_count();
  if (world_.alive_indices().size() + world_.waiting_indices().size() !=
      physicals) {
    fail(report, "membership", [&](std::ostream& os) {
      os << world_.alive_indices().size() << " alive + "
         << world_.waiting_indices().size() << " waiting != " << physicals
         << " physical nodes";
    });
  }
  // Duplicate-membership probe: insert() results only, never iterated.
  // dhtlb:lint-allow(unordered-iteration)
  std::unordered_set<NodeIndex> seen;
  auto visit = [&](const std::vector<NodeIndex>& list, bool expect_alive,
                   const char* label) {
    for (const NodeIndex idx : list) {
      if (idx >= physicals) {
        fail(report, "membership", [&](std::ostream& os) {
          os << label << " list holds out-of-range index " << idx;
        });
        continue;
      }
      if (!seen.insert(idx).second) {
        fail(report, "membership", [&](std::ostream& os) {
          os << "node " << idx << " appears in both membership lists";
        });
      }
      if (world_.physical(idx).alive != expect_alive) {
        fail(report, "membership", [&](std::ostream& os) {
          os << "node " << idx << " in " << label
             << " list but alive flag says otherwise";
        });
      }
    }
  };
  visit(world_.alive_indices(), true, "alive");
  visit(world_.waiting_indices(), false, "waiting");
  // The parallel tick engine partitions the alive set through the cached
  // position/home-shard indexes; a stale entry would silently reorder or
  // drop nodes from a shard, so the caches are audited like the ring.
  if (!world_.alive_index_consistent()) {
    fail(report, "membership", [](std::ostream& os) {
      os << "alive-position or home-shard cache disagrees with the alive "
            "list (see World::alive_index_consistent)";
    });
  }
}

void InvariantAuditor::check_conservation(AuditReport& report) const {
  std::uint64_t stored = 0;
  world_.for_each_arc(
      [&](const ArcView& arc) { stored += arc.task_count; });
  if (stored != world_.remaining_tasks()) {
    fail(report, "conservation", [&](std::ostream& os) {
      os << "ring stores " << stored << " tasks, world reports "
         << world_.remaining_tasks() << " remaining";
    });
  }
}

}  // namespace dhtlb::sim
