// Strategy interface: the autonomous load-balancing policy plugged into
// the engine.  Implementations live in src/lb.
//
// A strategy is invoked on *decision ticks* (every `decision_period`
// ticks, §IV-B) and may inspect/mutate the world only through operations
// a real node could perform locally: its own workload and Sybil count,
// its successor/predecessor lists, and Sybil creation/retirement.
// Churn is part of the environment (engine), not the strategy — the
// paper's "Induced Churn strategy" is simply no Sybil policy plus a
// nonzero churn rate, which also lets churn be layered under any Sybil
// strategy for the ablations in §VI-B.1.
#pragma once

#include <cstdint>
#include <string_view>

#include "support/rng.hpp"

namespace dhtlb::sim {

class World;

/// Per-run event counters a strategy reports into (message-cost proxies
/// for the qualitative traffic comparisons in §VI-C/D).
struct StrategyCounters {
  std::uint64_t sybils_created = 0;
  std::uint64_t sybils_retired = 0;
  std::uint64_t tasks_acquired_by_sybils = 0;
  std::uint64_t failed_placements = 0;   // Sybil acquired zero tasks
  std::uint64_t workload_queries = 0;    // smart neighbor probes
  std::uint64_t invitations_sent = 0;
  std::uint64_t invitations_accepted = 0;
  std::uint64_t ranges_marked_invalid = 0;
  std::uint64_t boundary_moves = 0;  // item-balance vnode relocations
  std::uint64_t tasks_moved = 0;     // keys shifted by boundary moves
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string_view name() const = 0;

  /// One decision round: called on every tick t with t % decision_period
  /// == 0 (1-based), before work consumption.
  virtual void decide(World& world, support::Rng& rng,
                      StrategyCounters& counters) = 0;
};

}  // namespace dhtlb::sim
