#include "sim/engine.hpp"

#include <algorithm>

#include "sim/audit.hpp"
#include "stats/descriptive.hpp"
#include "stats/load_metrics.hpp"
#include "support/check.hpp"

namespace dhtlb::sim {

Engine::Engine(const Params& params, std::uint64_t seed,
               std::unique_ptr<Strategy> strategy)
    : params_(params), seed_(seed), rng_(seed), world_(params_, rng_),
      strategy_(std::move(strategy)) {
  // Ideal runtime (§V-C): tasks spread perfectly over the initial
  // capacity, no churn, no Sybils.  Ceiling division: a partial final
  // tick still counts as a tick.
  const std::uint64_t capacity = world_.initial_capacity();
  ideal_ticks_ = (params_.total_tasks + capacity - 1) / capacity;
  cap_ = params_.effective_max_ticks(ideal_ticks_);
}

void Engine::request_snapshots(std::vector<std::uint64_t> ticks) {
  snapshot_ticks_ = std::move(ticks);
  std::sort(snapshot_ticks_.begin(), snapshot_ticks_.end());
  snapshot_ticks_.erase(
      std::unique(snapshot_ticks_.begin(), snapshot_ticks_.end()),
      snapshot_ticks_.end());
  if (!snapshot_ticks_.empty() && snapshot_ticks_.front() == 0) {
    snapshots_.push_back(capture(0));
  }
}

Snapshot Engine::capture(std::uint64_t tick) const {
  Snapshot snap;
  snap.tick = tick;
  snap.workloads = world_.alive_workloads();
  snap.remaining_tasks = world_.remaining_tasks();
  snap.vnode_count = world_.vnode_count();
  snap.alive_count = world_.alive_count();
  return snap;
}

void Engine::churn_step() {
  if (params_.churn_rate <= 0.0) return;
  // Departures: per-node Bernoulli over a snapshot of the alive set (the
  // set mutates as nodes leave).  The last remaining node never departs.
  // The snapshot reuses a member buffer: churn runs every tick, and a
  // fresh O(alive) allocation per tick is measurable at scale.
  churn_scratch_ = world_.alive_indices();
  for (const NodeIndex idx : churn_scratch_) {
    if (world_.alive_count() <= 1) break;
    if (rng_.bernoulli(params_.churn_rate) && world_.depart(idx)) {
      ++leaves_;
      if (trace_) trace_->instant("leave", "churn", {{"node", idx}});
    }
  }
  // Arrivals: each waiting node independently decides to join.  Waiting
  // nodes are exchangeable, so drawing a Binomial count and popping that
  // many from the pool is equivalent to per-node draws.
  const std::size_t waiting_now = world_.waiting_count();
  std::size_t joins_this_tick = 0;
  for (std::size_t i = 0; i < waiting_now; ++i) {
    if (rng_.bernoulli(params_.churn_rate)) ++joins_this_tick;
  }
  for (std::size_t i = 0; i < joins_this_tick; ++i) {
    if (world_.join_from_pool()) {
      ++joins_;
      if (trace_) trace_->instant("join", "churn");
    }
  }
}

void Engine::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  ids_.ring_gini = metrics_->gauge("ring_gini", "ratio");
  ids_.workload_stddev = metrics_->gauge("workload_stddev", "tasks");
  ids_.workload_hist = metrics_->histogram(
      "workload", "tasks",
      {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
       1024.0});
  ids_.sybils_live = metrics_->gauge("sybils_live", "sybils");
  ids_.nodes_alive = metrics_->gauge("nodes_alive", "nodes");
  ids_.tasks_remaining = metrics_->gauge("tasks_remaining", "tasks");
  ids_.work_done = metrics_->counter("work_done", "tasks");
  ids_.churn_joins = metrics_->counter("churn_joins", "nodes");
  ids_.churn_leaves = metrics_->counter("churn_leaves", "nodes");
  ids_.tasks_migrated = metrics_->counter("tasks_migrated", "tasks");
  ids_.workload_queries = metrics_->counter("workload_queries", "queries");
}

void Engine::observe_tick(std::uint64_t done_this_tick) {
  // One pass over the alive workloads feeds the gauge trio and the
  // per-tick histogram; everything below is pure observation.
  const std::vector<std::uint64_t> loads = world_.alive_workloads();
  const double ring_gini = stats::gini(loads);
  stats::RunningStats spread;
  for (const std::uint64_t load : loads) {
    spread.add(static_cast<double>(load));
  }
  std::uint64_t live_sybils = 0;
  for (const NodeIndex idx : world_.alive_indices()) {
    live_sybils += world_.sybil_count(idx);
  }

  if (metrics_ != nullptr) {
    metrics_->set(ids_.ring_gini, ring_gini);
    metrics_->set(ids_.workload_stddev, spread.stddev());
    for (const std::uint64_t load : loads) {
      metrics_->observe(ids_.workload_hist, static_cast<double>(load));
    }
    metrics_->set(ids_.sybils_live, static_cast<double>(live_sybils));
    metrics_->set(ids_.nodes_alive, static_cast<double>(loads.size()));
    metrics_->set(ids_.tasks_remaining,
                  static_cast<double>(world_.remaining_tasks()));
    metrics_->add(ids_.work_done, static_cast<double>(done_this_tick));
    metrics_->add(ids_.churn_joins,
                  static_cast<double>(joins_ - obs_prev_joins_));
    metrics_->add(ids_.churn_leaves,
                  static_cast<double>(leaves_ - obs_prev_leaves_));
    metrics_->add(ids_.tasks_migrated,
                  static_cast<double>(
                      strategy_counters_.tasks_acquired_by_sybils -
                      obs_prev_counters_.tasks_acquired_by_sybils));
    metrics_->add(ids_.workload_queries,
                  static_cast<double>(strategy_counters_.workload_queries -
                                      obs_prev_counters_.workload_queries));
    metrics_->sample(tick_);
  }
  if (trace_ != nullptr) {
    trace_->counter("nodes_alive", static_cast<double>(loads.size()));
    trace_->counter("tasks_remaining",
                    static_cast<double>(world_.remaining_tasks()));
    trace_->counter("workload_stddev", spread.stddev());
    trace_->counter("ring_gini", ring_gini);
    trace_->counter("sybils_live", static_cast<double>(live_sybils));
    trace_->complete_tick(
        "tick", {{"work_done", done_this_tick},
                 {"joins", joins_ - obs_prev_joins_},
                 {"leaves", leaves_ - obs_prev_leaves_}});
  }
  obs_prev_joins_ = joins_;
  obs_prev_leaves_ = leaves_;
  obs_prev_counters_ = strategy_counters_;
}

void Engine::set_churn_rate(double rate) {
  DHTLB_CHECK(rate >= 0.0 && rate <= 1.0,
              "set_churn_rate: rate " << rate << " outside [0, 1]");
  params_.churn_rate = rate;
  world_.set_churn_rate(rate);
}

void Engine::set_sybil_threshold(std::uint64_t threshold) {
  params_.sybil_threshold = threshold;
  world_.set_sybil_threshold(threshold);
}

bool Engine::step() {
  if (tick_ >= cap_) return false;
  // The trace clock advances before the pre-tick hook so scripted-event
  // instants emitted by the hook land on the tick they apply to.
  if (trace_) trace_->set_tick(tick_ + 1);
  // Scripted timeline events apply at the start of the tick, before
  // churn; a true return keeps a drained engine ticking (idle) toward
  // events scheduled later.
  bool keep_alive = false;
  if (pre_tick_hook_) keep_alive = pre_tick_hook_(tick_ + 1);
  if (world_.remaining_tasks() == 0 && !keep_alive) return false;
  ++tick_;

  churn_step();

  if (strategy_ && tick_ % params_.decision_period == 0) {
    strategy_->decide(world_, rng_, strategy_counters_);
    if (trace_) {
      // Deltas against the last observed tick = this decision's effect
      // (decisions run at most once per tick).
      const std::uint64_t spawned = strategy_counters_.sybils_created -
                                    obs_prev_counters_.sybils_created;
      const std::uint64_t quit = strategy_counters_.sybils_retired -
                                 obs_prev_counters_.sybils_retired;
      trace_->instant(
          "decision", "strategy",
          {{"strategy", strategy_->name()},
           {"sybils_created", spawned},
           {"sybils_retired", quit},
           {"tasks_acquired", strategy_counters_.tasks_acquired_by_sybils -
                                  obs_prev_counters_.tasks_acquired_by_sybils},
           {"queries", strategy_counters_.workload_queries -
                           obs_prev_counters_.workload_queries}});
      if (spawned > 0) {
        trace_->instant("sybil_spawn", "strategy", {{"count", spawned}});
      }
      if (quit > 0) {
        trace_->instant("sybil_quit", "strategy", {{"count", quit}});
      }
    }
  }

  // Consumption over a snapshot of the alive set: nodes that joined this
  // tick participate (they are in the set by now); the set does not
  // change during consumption.
  std::uint64_t done_this_tick = 0;
  for (const NodeIndex idx : world_.alive_indices()) {
    done_this_tick += world_.consume(idx, world_.work_per_tick(idx));
  }
  completed_ += done_this_tick;
  if (record_series_) series_.push_back(done_this_tick);
  if (trace_ || metrics_) observe_tick(done_this_tick);

  if (!snapshot_ticks_.empty()) {
    const auto it = std::lower_bound(snapshot_ticks_.begin(),
                                     snapshot_ticks_.end(), tick_);
    if (it != snapshot_ticks_.end() && *it == tick_) {
      snapshots_.push_back(capture(tick_));
    }
  }
  if (audit_enabled_) run_audit();
  // With a timeline hook attached, a drained world is not necessarily the
  // end — the next step() consults the hook before giving up.
  if (pre_tick_hook_) return tick_ < cap_;
  return world_.remaining_tasks() > 0 && tick_ < cap_;
}

void Engine::run_audit() const {
  AuditReport report = InvariantAuditor(world_).run();
  // Engine-level conservation: every task is either done or still in the
  // ring, and the Sybil counters can only overstate the live population
  // (departures retire Sybils without touching the strategy counters).
  if (completed_ + world_.remaining_tasks() != world_.total_tasks()) {
    report.failures.push_back(
        {"conservation", "completed + remaining != tasks ever assigned"});
  }
  std::uint64_t live_sybils = 0;
  for (const NodeIndex idx : world_.alive_indices()) {
    live_sybils += world_.sybil_count(idx);
  }
  if (strategy_counters_.sybils_retired > strategy_counters_.sybils_created ||
      live_sybils > strategy_counters_.sybils_created -
                        strategy_counters_.sybils_retired) {
    report.failures.push_back(
        {"conservation", "live Sybil count exceeds created - retired"});
  }
  if (strategy_counters_.invitations_accepted >
      strategy_counters_.invitations_sent) {
    report.failures.push_back(
        {"conservation", "more invitations accepted than sent"});
  }
  DHTLB_CHECK(report.ok(),
              "invariant audit failed at tick "
                  << tick_ << ", seed " << seed_ << ", strategy "
                  << (strategy_ ? strategy_->name() : "none")
                  << " — reproduce with this seed under an audit build\n"
                  << report.to_string());
}

void Engine::finalize(RunResult& result) const {
  result.strategy_name = strategy_ ? std::string(strategy_->name())
                                   : "none";
  result.ticks = tick_;
  result.ideal_ticks = ideal_ticks_;
  result.runtime_factor = ideal_ticks_ == 0
                              ? 0.0
                              : static_cast<double>(tick_) /
                                    static_cast<double>(ideal_ticks_);
  result.completed = world_.remaining_tasks() == 0;
  result.avg_work_per_tick =
      tick_ == 0 ? 0.0
                 : static_cast<double>(world_.total_tasks() -
                                       world_.remaining_tasks()) /
                       static_cast<double>(tick_);
  result.joins = joins_;
  result.leaves = leaves_;
  result.strategy_counters = strategy_counters_;
  result.snapshots = snapshots_;
  result.work_per_tick = series_;
}

RunResult Engine::run() {
  while (step()) {
  }
  // step() returns false both on the final productive tick and when
  // called after completion; loop until it reports no more progress.
  RunResult result;
  finalize(result);
  return result;
}

}  // namespace dhtlb::sim
