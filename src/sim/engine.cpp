#include "sim/engine.hpp"

#include <algorithm>

#include "sim/audit.hpp"
#include "stats/descriptive.hpp"
#include "stats/load_metrics.hpp"
#include "support/check.hpp"

namespace dhtlb::sim {

namespace {

// Labels for the per-tick RNG stream tree (support::stream_seed): every
// stochastic phase of a tick draws from stream_seed(mix_seed(seed, tick),
// phase[, shard]).  Sibling phases and shards are decorrelated by
// construction, and no stream ever depends on thread count or execution
// order — the determinism contract the threads-matrix CI lane enforces.
enum TickStream : std::uint64_t {
  kStreamChurnLeave = 1,  // per-shard departure Bernoullis
  kStreamJoinCount = 2,   // per-shard waiting-pool Bernoullis
  kStreamJoinPlace = 3,   // join placement IDs (sequential)
  kStreamDecide = 4,      // strategy decision draws (sequential)
  kStreamConsume = 5,     // per-shard uniform task picks
  // Label 6 (per-shard streamed-arrival key draws) is owned by
  // sim::kStreamArrive in task_stream.hpp — the TaskStream derives it
  // from the same per-tick root itself.
};

}  // namespace

Engine::Engine(const Params& params, std::uint64_t seed,
               std::unique_ptr<Strategy> strategy)
    : params_(params), seed_(seed), rng_(seed), world_(params_, rng_),
      strategy_(std::move(strategy)) {
  // Ideal runtime (§V-C): tasks spread perfectly over the initial
  // capacity, no churn, no Sybils.  Ceiling division: a partial final
  // tick still counts as a tick.
  const std::uint64_t capacity = world_.initial_capacity();
  ideal_ticks_ = (params_.total_tasks + capacity - 1) / capacity;
  if (params_.provisioning == TaskProvisioning::kStreamed) {
    // Auto arrival window = the ideal runtime, so the arrival rate
    // matches initial capacity and the backlog stays bounded.  An
    // explicit window can stretch the job; the ideal can never beat the
    // last arrival, so the window is a floor on ideal_ticks_.
    const std::uint64_t window =
        params_.arrival_ticks != 0 ? params_.arrival_ticks : ideal_ticks_;
    stream_ = std::make_unique<TaskStream>(seed_, params_.total_tasks,
                                           window);
    ideal_ticks_ = std::max(ideal_ticks_, window);
  }
  cap_ = params_.effective_max_ticks(ideal_ticks_);
}

void Engine::request_snapshots(std::vector<std::uint64_t> ticks) {
  snapshot_ticks_ = std::move(ticks);
  std::sort(snapshot_ticks_.begin(), snapshot_ticks_.end());
  snapshot_ticks_.erase(
      std::unique(snapshot_ticks_.begin(), snapshot_ticks_.end()),
      snapshot_ticks_.end());
  if (!snapshot_ticks_.empty() && snapshot_ticks_.front() == 0) {
    snapshots_.push_back(capture(0));
  }
}

Snapshot Engine::capture(std::uint64_t tick) const {
  Snapshot snap;
  snap.tick = tick;
  snap.workloads = world_.alive_workloads();
  snap.remaining_tasks = world_.remaining_tasks();
  snap.vnode_count = world_.vnode_count();
  snap.alive_count = world_.alive_count();
  return snap;
}

void Engine::set_threads(std::size_t threads) {
  pool_.reset();
  if (threads == 1) return;
  auto pool = std::make_unique<support::ThreadPool>(threads);
  // A one-worker pool would serialize the shards anyway; run inline and
  // skip the queue traffic.
  if (pool->thread_count() > 1) pool_ = std::move(pool);
}

void Engine::partition_alive() {
  for (auto& shard : shards_) shard.members.clear();
  for (const NodeIndex idx : world_.alive_indices()) {
    shards_[world_.home_shard(idx)].members.push_back(idx);
  }
}

void Engine::for_each_shard(const std::function<void(std::size_t)>& fn) {
  if (pool_) {
    pool_->parallel_for(kTickShards, fn);
    return;
  }
  for (std::size_t s = 0; s < kTickShards; ++s) fn(s);
}

void Engine::churn_step(std::uint64_t tick_seed) {
  if (params_.churn_rate <= 0.0) return;
  // Departure draws: per-node Bernoulli over the alive set, partitioned
  // into ring arcs.  Each shard stages its leavers from its own RNG
  // stream; nothing mutates until the fold, so the draw phase is safe to
  // fan across workers and insensitive to the order shards execute in.
  partition_alive();
  const double churn_rate = params_.churn_rate;
  for_each_shard([&](std::size_t s) {
    ShardScratch& shard = shards_[s];
    shard.departures.clear();
    support::Rng rng(support::stream_seed(tick_seed, kStreamChurnLeave, s));
    for (const NodeIndex idx : shard.members) {
      if (rng.bernoulli(churn_rate)) shard.departures.push_back(idx);
    }
  });
  // Fold: apply the staged departures in fixed shard order.  Departures
  // are the canonical cross-arc effect — a leaver's tasks fall to its
  // ring successor, which may live on another shard — so they only ever
  // happen here, sequentially.  The last remaining node never departs.
  for (auto& shard : shards_) {
    for (const NodeIndex idx : shard.departures) {
      if (world_.alive_count() <= 1) break;
      if (world_.depart(idx)) {
        ++leaves_;
        if (trace_) trace_->instant("leave", "churn", {{"node", idx}});
      }
    }
  }
  // Arrivals: each waiting node independently decides to join.  Waiting
  // nodes are exchangeable, so drawing a Binomial count and popping that
  // many from the pool is equivalent to per-node draws.  The count draws
  // are sharded over fixed index ranges of the pool (a pure sum of
  // Bernoullis — order-free), while the joins themselves fold
  // sequentially: a joiner's fresh SHA-1 ID lands anywhere on the ring,
  // splitting an arbitrary shard's arc.
  const std::size_t waiting_now = world_.waiting_count();
  const std::size_t per_shard =
      (waiting_now + kTickShards - 1) / kTickShards;
  for_each_shard([&](std::size_t s) {
    const std::size_t begin = std::min(s * per_shard, waiting_now);
    const std::size_t end = std::min(begin + per_shard, waiting_now);
    support::Rng rng(support::stream_seed(tick_seed, kStreamJoinCount, s));
    std::uint64_t successes = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (rng.bernoulli(churn_rate)) ++successes;
    }
    shards_[s].join_draws = successes;
  });
  std::uint64_t joins_this_tick = 0;
  for (const auto& shard : shards_) joins_this_tick += shard.join_draws;
  support::Rng join_rng(support::stream_seed(tick_seed, kStreamJoinPlace));
  for (std::uint64_t i = 0; i < joins_this_tick; ++i) {
    if (world_.join_from_pool(join_rng)) {
      ++joins_;
      if (trace_) trace_->instant("join", "churn");
    }
  }
}

void Engine::arrival_step() {
  tick_arrived_ = 0;
  if (!stream_ || stream_->count_at(tick_) == 0) return;
  // Key draws are embarrassingly parallel — each (tick, shard) cell owns
  // its RNG stream and its own staging vector.  Insertion splits and
  // workload bumps can land on any arc, so the fold below applies the
  // staged keys sequentially in fixed shard order, exactly like the
  // churn folds.
  for_each_shard([&](std::size_t s) {
    ShardScratch& shard = shards_[s];
    shard.arrivals.clear();
    stream_->draw_shard(tick_, s, shard.arrivals);
  });
  std::uint64_t arrived = 0;
  for (auto& shard : shards_) {
    for (const TaskKey& key : shard.arrivals) {
      world_.inject_task(key);
    }
    arrived += shard.arrivals.size();
  }
  stream_arrived_ += arrived;
  tick_arrived_ = arrived;
  if (trace_) trace_->instant("arrivals", "stream", {{"count", arrived}});
}

void Engine::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  ids_.ring_gini = metrics_->gauge("ring_gini", "ratio");
  ids_.workload_stddev = metrics_->gauge("workload_stddev", "tasks");
  ids_.workload_hist = metrics_->histogram(
      "workload", "tasks",
      {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
       1024.0});
  ids_.sybils_live = metrics_->gauge("sybils_live", "sybils");
  ids_.nodes_alive = metrics_->gauge("nodes_alive", "nodes");
  ids_.tasks_remaining = metrics_->gauge("tasks_remaining", "tasks");
  ids_.work_done = metrics_->counter("work_done", "tasks");
  ids_.churn_joins = metrics_->counter("churn_joins", "nodes");
  ids_.churn_leaves = metrics_->counter("churn_leaves", "nodes");
  ids_.tasks_migrated = metrics_->counter("tasks_migrated", "tasks");
  ids_.workload_queries = metrics_->counter("workload_queries", "queries");
  // Registered only when a stream exists so preallocated metrics files
  // (and their goldens) keep the exact pre-streaming catalog.
  if (stream_) {
    ids_.tasks_arrived = metrics_->counter("tasks_arrived", "tasks");
  }
}

void Engine::observe_tick(std::uint64_t done_this_tick) {
  // One pass over the alive workloads feeds the gauge trio and the
  // per-tick histogram; everything below is pure observation.
  const std::vector<std::uint64_t> loads = world_.alive_workloads();
  const double ring_gini = stats::gini(loads);
  stats::RunningStats spread;
  for (const std::uint64_t load : loads) {
    spread.add(static_cast<double>(load));
  }
  std::uint64_t live_sybils = 0;
  for (const NodeIndex idx : world_.alive_indices()) {
    live_sybils += world_.sybil_count(idx);
  }

  if (metrics_ != nullptr) {
    metrics_->set(ids_.ring_gini, ring_gini);
    metrics_->set(ids_.workload_stddev, spread.stddev());
    obs_loads_.clear();
    obs_loads_.reserve(loads.size());
    for (const std::uint64_t load : loads) {
      obs_loads_.push_back(static_cast<double>(load));
    }
    metrics_->observe_all(ids_.workload_hist, obs_loads_);
    metrics_->set(ids_.sybils_live, static_cast<double>(live_sybils));
    metrics_->set(ids_.nodes_alive, static_cast<double>(loads.size()));
    metrics_->set(ids_.tasks_remaining,
                  static_cast<double>(world_.remaining_tasks()));
    metrics_->add(ids_.work_done, static_cast<double>(done_this_tick));
    metrics_->add(ids_.churn_joins,
                  static_cast<double>(joins_ - obs_prev_joins_));
    metrics_->add(ids_.churn_leaves,
                  static_cast<double>(leaves_ - obs_prev_leaves_));
    metrics_->add(ids_.tasks_migrated,
                  static_cast<double>(
                      strategy_counters_.tasks_acquired_by_sybils -
                      obs_prev_counters_.tasks_acquired_by_sybils));
    metrics_->add(ids_.workload_queries,
                  static_cast<double>(strategy_counters_.workload_queries -
                                      obs_prev_counters_.workload_queries));
    if (stream_) {
      metrics_->add(ids_.tasks_arrived, static_cast<double>(tick_arrived_));
    }
    metrics_->sample(tick_);
  }
  if (trace_ != nullptr) {
    trace_->counter("nodes_alive", static_cast<double>(loads.size()));
    trace_->counter("tasks_remaining",
                    static_cast<double>(world_.remaining_tasks()));
    trace_->counter("workload_stddev", spread.stddev());
    trace_->counter("ring_gini", ring_gini);
    trace_->counter("sybils_live", static_cast<double>(live_sybils));
    trace_->complete_tick(
        "tick", {{"work_done", done_this_tick},
                 {"joins", joins_ - obs_prev_joins_},
                 {"leaves", leaves_ - obs_prev_leaves_}});
  }
  obs_prev_joins_ = joins_;
  obs_prev_leaves_ = leaves_;
  obs_prev_counters_ = strategy_counters_;
}

void Engine::set_churn_rate(double rate) {
  DHTLB_CHECK(rate >= 0.0 && rate <= 1.0,
              "set_churn_rate: rate " << rate << " outside [0, 1]");
  params_.churn_rate = rate;
  world_.set_churn_rate(rate);
}

void Engine::set_sybil_threshold(std::uint64_t threshold) {
  params_.sybil_threshold = threshold;
  world_.set_sybil_threshold(threshold);
}

bool Engine::step() {
  if (tick_ >= cap_) return false;
  // The trace clock advances before the pre-tick hook so scripted-event
  // instants emitted by the hook land on the tick they apply to.
  if (trace_) trace_->set_tick(tick_ + 1);
  // Scripted timeline events apply at the start of the tick, before
  // churn; a true return keeps a drained engine ticking (idle) toward
  // events scheduled later.
  bool keep_alive = false;
  if (pre_tick_hook_) keep_alive = pre_tick_hook_(tick_ + 1);
  // A drained world is still mid-run while the arrival stream has tasks
  // left to deliver (streamed provisioning's analogue of "work remains").
  const bool stream_pending = stream_ && !stream_->exhausted_after(tick_);
  if (world_.remaining_tasks() == 0 && !stream_pending && !keep_alive) {
    return false;
  }
  ++tick_;
  // Root of this tick's RNG stream tree (see TickStream above).
  const std::uint64_t tick_seed = support::mix_seed(seed_, tick_);

  churn_step(tick_seed);
  arrival_step();

  if (strategy_ && tick_ % params_.decision_period == 0) {
    // Decisions mutate the ring globally (Sybil arcs split anywhere), so
    // they stay sequential, on their own per-tick stream.
    support::Rng decide_rng(support::stream_seed(tick_seed, kStreamDecide));
    strategy_->decide(world_, decide_rng, strategy_counters_);
    if (trace_) {
      // Deltas against the last observed tick = this decision's effect
      // (decisions run at most once per tick).
      const std::uint64_t spawned = strategy_counters_.sybils_created -
                                    obs_prev_counters_.sybils_created;
      const std::uint64_t quit = strategy_counters_.sybils_retired -
                                 obs_prev_counters_.sybils_retired;
      trace_->instant(
          "decision", "strategy",
          {{"strategy", strategy_->name()},
           {"sybils_created", spawned},
           {"sybils_retired", quit},
           {"tasks_acquired", strategy_counters_.tasks_acquired_by_sybils -
                                  obs_prev_counters_.tasks_acquired_by_sybils},
           {"queries", strategy_counters_.workload_queries -
                           obs_prev_counters_.workload_queries}});
      if (spawned > 0) {
        trace_->instant("sybil_spawn", "strategy", {{"count", spawned}});
      }
      if (quit > 0) {
        trace_->instant("sybil_quit", "strategy", {{"count", quit}});
      }
    }
  }

  // Consumption: nodes that joined or were split by a decision this tick
  // participate, so the shard partition is rebuilt, then each shard
  // consumes its own nodes' tasks on its own stream.  Every mutation is
  // local to a node's own vnodes (TaskStores, workload cache), so shards
  // never touch each other's state; the one global effect — the
  // remaining-task counter — is staged as a per-shard total and settled
  // at the fold barrier.
  partition_alive();
  for_each_shard([&](std::size_t s) {
    ShardScratch& shard = shards_[s];
    support::Rng rng(support::stream_seed(tick_seed, kStreamConsume, s));
    std::uint64_t consumed = 0;
    for (const NodeIndex idx : shard.members) {
      consumed += world_.consume_local(idx, world_.work_per_tick(idx), rng);
    }
    shard.consumed = consumed;
  });
  std::uint64_t done_this_tick = 0;
  for (const auto& shard : shards_) done_this_tick += shard.consumed;
  world_.debit_remaining(done_this_tick);
  completed_ += done_this_tick;
  if (record_series_) series_.push_back(done_this_tick);
  // Tick barrier: the world is folded and quiescent; hand it to the
  // serving plane (or any other read-side attachment) before this
  // tick's observation and snapshots, so those see any metrics the
  // hook's fold publishes.
  if (post_tick_hook_) post_tick_hook_(tick_);
  if (trace_ || metrics_) observe_tick(done_this_tick);

  if (!snapshot_ticks_.empty()) {
    const auto it = std::lower_bound(snapshot_ticks_.begin(),
                                     snapshot_ticks_.end(), tick_);
    if (it != snapshot_ticks_.end() && *it == tick_) {
      snapshots_.push_back(capture(tick_));
    }
  }
  if (audit_enabled_) run_audit();
  // With a timeline hook attached, a drained world is not necessarily the
  // end — the next step() consults the hook before giving up.  Likewise a
  // still-flowing arrival stream keeps a drained engine ticking.
  if (pre_tick_hook_) return tick_ < cap_;
  const bool more_arrivals = stream_ && !stream_->exhausted_after(tick_);
  return (world_.remaining_tasks() > 0 || more_arrivals) && tick_ < cap_;
}

void Engine::run_audit() const {
  AuditReport report = InvariantAuditor(world_).run();
  // Engine-level conservation: every task is either done or still in the
  // ring, and the Sybil counters can only overstate the live population
  // (departures retire Sybils without touching the strategy counters).
  if (completed_ + world_.remaining_tasks() != world_.total_tasks()) {
    report.failures.push_back(
        {"conservation", "completed + remaining != tasks ever assigned"});
  }
  // Streamed provisioning: the tasks actually delivered must equal the
  // schedule's closed-form prefix sum — the stream can neither drop nor
  // duplicate an arrival without this tripping.
  if (stream_ && stream_arrived_ != stream_->cumulative(tick_)) {
    report.failures.push_back(
        {"conservation",
         "stream arrivals diverge from the schedule's closed-form count"});
  }
  std::uint64_t live_sybils = 0;
  for (const NodeIndex idx : world_.alive_indices()) {
    live_sybils += world_.sybil_count(idx);
  }
  if (strategy_counters_.sybils_retired > strategy_counters_.sybils_created ||
      live_sybils > strategy_counters_.sybils_created -
                        strategy_counters_.sybils_retired) {
    report.failures.push_back(
        {"conservation", "live Sybil count exceeds created - retired"});
  }
  if (strategy_counters_.invitations_accepted >
      strategy_counters_.invitations_sent) {
    report.failures.push_back(
        {"conservation", "more invitations accepted than sent"});
  }
  DHTLB_CHECK(report.ok(),
              "invariant audit failed at tick "
                  << tick_ << ", seed " << seed_ << ", strategy "
                  << (strategy_ ? strategy_->name() : "none")
                  << " — reproduce with this seed under an audit build\n"
                  << report.to_string());
}

void Engine::finalize(RunResult& result) const {
  result.strategy_name = strategy_ ? std::string(strategy_->name())
                                   : "none";
  result.ticks = tick_;
  result.ideal_ticks = ideal_ticks_;
  result.runtime_factor = ideal_ticks_ == 0
                              ? 0.0
                              : static_cast<double>(tick_) /
                                    static_cast<double>(ideal_ticks_);
  // A streamed run that hit the cap mid-delivery is incomplete even if
  // the backlog happens to be empty.
  result.completed = world_.remaining_tasks() == 0 &&
                     (!stream_ || stream_->exhausted_after(tick_));
  result.avg_work_per_tick =
      tick_ == 0 ? 0.0
                 : static_cast<double>(world_.total_tasks() -
                                       world_.remaining_tasks()) /
                       static_cast<double>(tick_);
  result.joins = joins_;
  result.leaves = leaves_;
  result.strategy_counters = strategy_counters_;
  result.snapshots = snapshots_;
  result.work_per_tick = series_;
}

RunResult Engine::run() {
  while (step()) {
  }
  // step() returns false both on the final productive tick and when
  // called after completion; loop until it reports no more progress.
  RunResult result;
  finalize(result);
  return result;
}

}  // namespace dhtlb::sim
