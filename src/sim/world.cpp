#include "sim/world.hpp"

#include <algorithm>
#include <unordered_set>

#include "hashing/sha1.hpp"
#include "sim/audit.hpp"
#include "support/check.hpp"
#include "support/ring_math.hpp"

namespace dhtlb::sim {

namespace {

// Transparent id set for construction-time collision redraws: FlatRing's
// binary search is unusable mid-bulk-load (the index is unsorted until
// finalize_bulk), and a tree set would reintroduce the per-node
// allocations the flat ring removes.  SHA-1 output is uniform, so the
// low 64 bits are already a perfect hash; equality stays full-width.
struct IdHash {
  std::size_t operator()(const Uint160& id) const noexcept {
    return static_cast<std::size_t>(id.low64());
  }
};
// Probed with contains()/insert() only, never iterated, so the
// unordered layout cannot reach outputs.
// dhtlb:lint-allow(unordered-iteration)
using IdSet = std::unordered_set<Uint160, IdHash>;

}  // namespace

World::World(const Params& params, support::Rng& rng)
    : params_(params), rng_(rng) {
  params_.validate();

  // Physical population: N alive + N waiting (§IV-A: the waiting pool
  // "begins at the same initial size as the network").
  const std::size_t n = params_.initial_nodes;
  physicals_.resize(2 * n);
  auto roll_strength = [&]() -> unsigned {
    if (!params_.heterogeneous) return 1;
    return static_cast<unsigned>(rng_.range(1, params_.max_sybils));
  };
  for (std::size_t i = 0; i < physicals_.size(); ++i) {
    physicals_[i].strength = roll_strength();
    physicals_[i].alive = i < n;
  }

  alive_.reserve(n);
  waiting_.reserve(n);
  vnode_cache_.resize(physicals_.size());
  alive_pos_.assign(physicals_.size(), kNotAlive);
  home_shard_.assign(physicals_.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    alive_pos_[i] = static_cast<std::uint32_t>(alive_.size());
    alive_.push_back(static_cast<NodeIndex>(i));
  }
  for (std::size_t i = n; i < 2 * n; ++i) {
    waiting_.push_back(static_cast<NodeIndex>(i));
  }

  // Place the initially alive nodes at SHA-1 IDs through the ring's
  // bulk-load path: unsorted appends plus one sort, instead of n
  // ordered inserts.  Collision redraws (the ~2^-160 case) consult a
  // transient hash set holding exactly the ids placed so far, so the
  // RNG draw sequence matches the incremental construction bit for bit.
  ring_.reserve(n);
  IdSet placed;
  placed.reserve(n);
  for (const NodeIndex idx : alive_) {
    Uint160 id = hashing::Sha1::hash_u64(rng_());
    while (!placed.insert(id).second) {
      id = hashing::Sha1::hash_u64(rng_());
    }
    const Slot slot = ring_.bulk_append(id, idx, /*is_sybil=*/false);
    physicals_[idx].vnode_ids.push_back(id);
    vnode_cache_[idx].push_back(slot);
    home_shard_[idx] =
        static_cast<std::uint8_t>(support::arc_shard(id, kTickShards));
    initial_capacity_ += work_per_tick(idx);
  }
  ring_.finalize_bulk();

  // Streamed provisioning: no tasks exist at tick 0 — the engine's
  // TaskStream injects each tick's arrivals through inject_task(), which
  // raises remaining_/total_tasks_ as they land.  The node-placement RNG
  // sequence above is identical in both modes.
  if (params_.provisioning == TaskProvisioning::kStreamed) return;

  // Assign SHA-1-keyed tasks to their owner arcs: owner of key k is the
  // first vnode clockwise at or after k.  Two passes over the keys —
  // first resolve every owner slot and count its bucket, then reserve
  // each TaskStore exactly and append in draw order — so no bucket ever
  // reallocates mid-fill.  Keys are drawn before any is appended, which
  // consumes the identical RNG sequence (assignment draws nothing), and
  // appending in draw order keeps every TaskStore's contents
  // bit-identical to the incremental construction.
  std::vector<Uint160> keys;
  std::vector<Slot> owners;
  keys.reserve(params_.total_tasks);
  owners.reserve(params_.total_tasks);
  // Bulk-load slots are allocated densely as 0..n-1, so a plain vector
  // indexed by slot serves as the bucket counter.
  std::vector<std::uint32_t> bucket_sizes(n, 0);
  for (std::uint64_t t = 0; t < params_.total_tasks; ++t) {
    const Uint160 key = hashing::Sha1::hash_u64(rng_());
    const Slot slot = ring_.slot_at(ring_.cover(key));
    keys.push_back(key);
    owners.push_back(slot);
    ++bucket_sizes[slot];
  }
  for (Slot slot = 0; slot < bucket_sizes.size(); ++slot) {
    if (bucket_sizes[slot] != 0) ring_.tasks(slot).reserve(bucket_sizes[slot]);
  }
  for (std::size_t t = 0; t < keys.size(); ++t) {
    const Slot slot = owners[t];
    ring_.tasks(slot).add(keys[t]);
    ++physicals_[ring_.owner(slot)].workload;
  }
  remaining_ = params_.total_tasks;
  total_tasks_ = params_.total_tasks;
}

std::uint64_t World::work_per_tick(NodeIndex idx) const {
  if (params_.work_measure == WorkMeasure::kStrengthPerTick) {
    return physicals_[idx].strength;
  }
  return 1;
}

unsigned World::sybil_cap(NodeIndex idx) const {
  return params_.heterogeneous ? physicals_[idx].strength
                               : params_.max_sybils;
}

std::vector<std::uint64_t> World::alive_workloads() const {
  std::vector<std::uint64_t> loads;
  loads.reserve(alive_.size());
  for (const NodeIndex idx : alive_) {
    loads.push_back(physicals_[idx].workload);
  }
  return loads;
}

ArcView World::view_at(const FlatRing::Cursor& cursor) const {
  const Slot slot = ring_.slot_at(cursor);
  ArcView view;
  view.id = ring_.id_at(cursor);
  view.pred = ring_.id_at(ring_.prev(cursor));
  view.owner = ring_.owner(slot);
  view.is_sybil = ring_.is_sybil(slot);
  view.task_count = ring_.tasks(slot).size();
  return view;
}

ArcView World::arc_of(const Uint160& vnode_id) const {
  return view_at(ring_.find(vnode_id));
}

World::ArcWalk World::successor_arcs(const Uint160& vnode_id,
                                     std::size_t k) const {
  return ArcWalk(this, ring_.find(vnode_id), k, /*forward=*/true);
}

World::ArcWalk World::predecessor_arcs(const Uint160& vnode_id,
                                       std::size_t k) const {
  return ArcWalk(this, ring_.find(vnode_id), k, /*forward=*/false);
}

std::vector<Uint160> World::successors_of(const Uint160& vnode_id,
                                          std::size_t k) const {
  std::vector<Uint160> out;
  out.reserve(k);
  for (const ArcView& arc : successor_arcs(vnode_id, k)) {
    out.push_back(arc.id);
  }
  return out;
}

std::vector<Uint160> World::predecessors_of(const Uint160& vnode_id,
                                            std::size_t k) const {
  std::vector<Uint160> out;
  out.reserve(k);
  for (const ArcView& arc : predecessor_arcs(vnode_id, k)) {
    out.push_back(arc.id);
  }
  return out;
}

ArcView World::arc_covering(const Uint160& point) const {
  return view_at(ring_.cover(point));
}

std::optional<Uint160> World::median_task_key(const Uint160& vnode_id) const {
  const FlatRing::Cursor cursor = ring_.find(vnode_id);
  const std::size_t count = ring_.tasks(ring_.slot_at(cursor)).size();
  if (count == 0) return std::nullopt;
  return nth_task_key(vnode_id, (count - 1) / 2);  // lower median
}

std::optional<Uint160> World::nth_task_key(const Uint160& vnode_id,
                                           std::uint64_t n) const {
  const FlatRing::Cursor cursor = ring_.find(vnode_id);
  const auto& keys = ring_.tasks(ring_.slot_at(cursor)).keys();
  if (n >= keys.size()) return std::nullopt;
  // Order keys by clockwise distance from the arc start so wrapping
  // arcs sort correctly, then select the n-th along the arc.
  const Uint160 start = ring_.id_at(ring_.prev(cursor));
  std::vector<Uint160> offsets;
  offsets.reserve(keys.size());
  for (const auto& k : keys) {
    offsets.push_back(support::clockwise_distance(start, k));
  }
  const auto nth = offsets.begin() + static_cast<std::ptrdiff_t>(n);
  std::nth_element(offsets.begin(), nth, offsets.end());
  return start + *nth;
}

const std::vector<TaskKey>& World::vnode_keys(const Uint160& vnode_id) const {
  return ring_.tasks(ring_.slot_at(ring_.find(vnode_id))).keys();
}

Uint160 World::fresh_ring_id(support::Rng& rng) {
  // SHA-1 of a random 64-bit value (§V: "Nodes obtain an ID, drawn from
  // a call to SHA1").  Collisions are ~2^-160 but re-draw regardless.
  for (;;) {
    const Uint160 id = hashing::Sha1::hash_u64(rng());
    if (!ring_.contains(id)) return id;
  }
}

std::uint64_t World::insert_vnode(NodeIndex owner, const Uint160& id,
                                  bool is_sybil) {
  // Find the vnode currently covering `id` (first vnode clockwise at or
  // after it); the new vnode takes the keys in (pred, id] from it.
  const FlatRing::Cursor succ = ring_.cover(id);
  const Slot succ_slot = ring_.slot_at(succ);
  const Uint160 pred_id = ring_.id_at(ring_.prev(succ));

  // Insert before splitting: the insert may grow the arena, so the
  // TaskStore references must be taken afterwards.  Slots are stable,
  // so succ_slot survives the mutation even though the cursor doesn't.
  const Slot slot = ring_.insert(id, owner, is_sybil);
  const std::uint64_t acquired = ring_.tasks(succ_slot).split_arc_into(
      pred_id, id, ring_.tasks(slot));
  physicals_[ring_.owner(succ_slot)].workload -= acquired;
  physicals_[owner].workload += acquired;

  physicals_[owner].vnode_ids.push_back(id);
  vnode_cache_[owner].push_back(slot);
  if (!is_sybil) {
    home_shard_[owner] =
        static_cast<std::uint8_t>(support::arc_shard(id, kTickShards));
  }
  return acquired;
}

std::optional<std::uint64_t> World::create_sybil(NodeIndex owner,
                                                 Uint160 id) {
  if (ring_.contains(id)) return std::nullopt;
  return insert_vnode(owner, id, /*is_sybil=*/true);
}

void World::remove_vnode(const Uint160& id) {
  const FlatRing::Cursor cursor = ring_.find(id);
  DHTLB_CHECK(ring_.size() > 1,
              "remove_vnode: removing " << id << " would empty the ring");
  const Slot dead_slot = ring_.slot_at(cursor);
  const Slot succ_slot = ring_.slot_at(ring_.next(cursor));
  const std::uint64_t moved =
      ring_.tasks(succ_slot).merge_from(ring_.tasks(dead_slot));
  physicals_[ring_.owner(dead_slot)].workload -= moved;
  physicals_[ring_.owner(succ_slot)].workload += moved;
  ring_.erase(id);
}

void World::remove_sybils(NodeIndex owner) {
  auto& ids = physicals_[owner].vnode_ids;
  // vnode_ids[0] is the primary; everything after it is a Sybil.
  while (ids.size() > 1) {
    remove_vnode(ids.back());
    ids.pop_back();
    vnode_cache_[owner].pop_back();
  }
}

std::optional<std::uint64_t> World::move_vnode(const Uint160& old_id,
                                               const Uint160& new_id) {
  if (new_id == old_id || ring_.contains(new_id)) return std::nullopt;
  if (ring_.size() < 2) return std::nullopt;  // alone: a move is a no-op
  const FlatRing::Cursor cursor = ring_.find(old_id);
  const Slot old_slot = ring_.slot_at(cursor);
  const NodeIndex owner = ring_.owner(old_slot);
  const bool is_sybil = ring_.is_sybil(old_slot);
  const Uint160 pred = ring_.id_at(ring_.prev(cursor));
  const Uint160 succ = ring_.id_at(ring_.next(cursor));
  // The new position must sit strictly between the old neighbors so only
  // the two arcs adjacent to old_id change hands.  With exactly two
  // vnodes pred == succ and the eligible region is the whole ring minus
  // that single point — in_open_arc already treats (a, a) that way.
  if (!support::in_open_arc(new_id, pred, succ)) return std::nullopt;
  const bool toward_pred = support::in_open_arc(new_id, pred, old_id);

  // Insert-then-remove reuses the audited split/merge primitives:
  //   shed (new_id counterclockwise of old_id): cover(new_id) is old_id
  //     itself, so the insert splits our own arc at new_id (keys in
  //     (pred, new_id] stay with the owner at the new vnode); removing
  //     old_id then merges the remainder (new_id, old_id] into the old
  //     successor — that remainder is what changed owner.
  //   acquire (clockwise): the insert splits the successor's arc,
  //     pulling (old_id, new_id] over to the owner; removing old_id
  //     merges its untouched keys into the new vnode, a self-transfer.
  const std::uint64_t acquired = insert_vnode(owner, new_id, is_sybil);
  const std::uint64_t shed = ring_.tasks(old_slot).size();
  remove_vnode(old_id);

  // insert_vnode pushed the relocated vnode to the back of the owner's
  // bookkeeping; splice it into old_id's position so a moved primary
  // stays at vnode_ids[0] (sybil_count/home_shard depend on that).
  auto& ids = physicals_[owner].vnode_ids;
  auto& cache = vnode_cache_[owner];
  for (std::size_t j = 0; j + 1 < ids.size(); ++j) {
    if (ids[j] == old_id) {
      ids[j] = ids.back();
      cache[j] = cache.back();
      break;
    }
  }
  ids.pop_back();
  cache.pop_back();
  return toward_pred ? shed : acquired;
}

bool World::depart(NodeIndex idx) {
  PhysicalNode& node = physicals_[idx];
  DHTLB_CHECK(node.alive, "depart: node " << idx << " is not alive");
  if (node.vnode_ids.size() >= ring_.size()) {
    return false;  // would empty the ring — nobody left to inherit tasks
  }
  // Remove Sybils first, then the primary; each merge hands tasks to the
  // ring successor exactly as the active-backup model prescribes.
  while (!node.vnode_ids.empty()) {
    remove_vnode(node.vnode_ids.back());
    node.vnode_ids.pop_back();
    vnode_cache_[idx].pop_back();
  }
  DHTLB_ASSERT(node.workload == 0,
               "depart: node " << idx << " left the ring still holding "
                               << node.workload << " tasks");
  node.alive = false;
  // Swap-pop through the position index: O(1) where std::erase's linear
  // scan made churn ticks quadratic in the alive population.
  const std::uint32_t pos = alive_pos_[idx];
  DHTLB_ASSERT(pos < alive_.size() && alive_[pos] == idx,
               "depart: alive_pos_ stale for node " << idx);
  alive_[pos] = alive_.back();
  alive_pos_[alive_[pos]] = pos;
  alive_.pop_back();
  alive_pos_[idx] = kNotAlive;
  waiting_.push_back(idx);
  return true;
}

std::optional<NodeIndex> World::join_from_pool() {
  return join_from_pool(rng_);
}

std::optional<NodeIndex> World::join_from_pool(support::Rng& id_rng) {
  if (waiting_.empty()) return std::nullopt;
  const NodeIndex idx = waiting_.back();
  waiting_.pop_back();
  PhysicalNode& node = physicals_[idx];
  node.alive = true;
  alive_pos_[idx] = static_cast<std::uint32_t>(alive_.size());
  alive_.push_back(idx);
  insert_vnode(idx, fresh_ring_id(id_rng), /*is_sybil=*/false);
  return idx;
}

std::uint64_t World::consume(NodeIndex idx, std::uint64_t budget) {
  const std::uint64_t consumed = consume_local(idx, budget, rng_);
  remaining_ -= consumed;
  return consumed;
}

std::uint64_t World::consume_local(NodeIndex idx, std::uint64_t budget,
                                   support::Rng& rng) {
  PhysicalNode& node = physicals_[idx];
  std::uint64_t consumed = 0;
  while (consumed < budget && node.workload > 0) {
    // Work on the most-loaded vnode first; within a vnode, task order is
    // immaterial (uniform random pick, see TaskStore::consume_random).
    // The cached slots mirror vnode_ids in order, so the scan picks
    // the same vnode (including on ties) as a ring lookup per id would,
    // without the O(log ring) search per vnode.
    TaskStore* busiest = nullptr;
    for (const Slot slot : vnode_cache_[idx]) {
      TaskStore& tasks = ring_.tasks(slot);
      if (busiest == nullptr || tasks.size() > busiest->size()) {
        busiest = &tasks;
      }
    }
    if (busiest == nullptr || busiest->empty()) break;
    const std::uint64_t take =
        std::min<std::uint64_t>(budget - consumed, busiest->size());
    for (std::uint64_t i = 0; i < take; ++i) {
      busiest->consume_random(rng);
    }
    consumed += take;
    node.workload -= take;
  }
  return consumed;
}

void World::debit_remaining(std::uint64_t consumed) {
  DHTLB_CHECK(consumed <= remaining_,
              "debit_remaining: folded consumption " << consumed
                  << " exceeds remaining " << remaining_);
  remaining_ -= consumed;
}

void World::inject_task(const Uint160& key) {
  const Slot slot = ring_.slot_at(ring_.cover(key));
  ring_.tasks(slot).add(key);
  ++physicals_[ring_.owner(slot)].workload;
  ++remaining_;
  ++total_tasks_;
}

void World::set_churn_rate(double rate) {
  DHTLB_CHECK(rate >= 0.0 && rate <= 1.0,
              "set_churn_rate: rate " << rate << " outside [0, 1]");
  params_.churn_rate = rate;
}

void World::set_sybil_threshold(std::uint64_t threshold) {
  params_.sybil_threshold = threshold;
}

std::vector<Uint160> World::ring_ids() const {
  std::vector<Uint160> ids;
  ids.reserve(ring_.size());
  ring_.for_each([&](const Uint160& id, Slot) { ids.push_back(id); });
  return ids;
}

bool World::check_invariants() const {
  return InvariantAuditor(*this).run().ok();
}

bool World::vnode_cache_consistent() const {
  if (vnode_cache_.size() != physicals_.size()) return false;
  for (std::size_t i = 0; i < physicals_.size(); ++i) {
    const auto& ids = physicals_[i].vnode_ids;
    const auto& cache = vnode_cache_[i];
    if (cache.size() != ids.size()) return false;
    for (std::size_t j = 0; j < ids.size(); ++j) {
      if (!ring_.contains(ids[j])) return false;
      if (ring_.slot_at(ring_.find(ids[j])) != cache[j]) return false;
      if (ring_.id_of(cache[j]) != ids[j]) return false;
    }
  }
  return true;
}

bool World::alive_index_consistent() const {
  if (alive_pos_.size() != physicals_.size() ||
      home_shard_.size() != physicals_.size()) {
    return false;
  }
  for (std::size_t pos = 0; pos < alive_.size(); ++pos) {
    const NodeIndex idx = alive_[pos];
    if (alive_pos_[idx] != pos) return false;
    const auto& ids = physicals_[idx].vnode_ids;
    if (ids.empty()) return false;
    if (home_shard_[idx] != support::arc_shard(ids.front(), kTickShards)) {
      return false;
    }
  }
  std::size_t alive_positions = 0;
  for (std::size_t idx = 0; idx < alive_pos_.size(); ++idx) {
    if (alive_pos_[idx] != kNotAlive) ++alive_positions;
  }
  return alive_positions == alive_.size();
}

}  // namespace dhtlb::sim
