#include "sim/world.hpp"

#include <algorithm>

#include "hashing/sha1.hpp"
#include "sim/audit.hpp"
#include "support/check.hpp"
#include "support/ring_math.hpp"

namespace dhtlb::sim {

World::World(const Params& params, support::Rng& rng)
    : params_(params), rng_(rng) {
  params_.validate();

  // Physical population: N alive + N waiting (§IV-A: the waiting pool
  // "begins at the same initial size as the network").
  const std::size_t n = params_.initial_nodes;
  physicals_.resize(2 * n);
  auto roll_strength = [&]() -> unsigned {
    if (!params_.heterogeneous) return 1;
    return static_cast<unsigned>(rng_.range(1, params_.max_sybils));
  };
  for (std::size_t i = 0; i < physicals_.size(); ++i) {
    physicals_[i].strength = roll_strength();
    physicals_[i].alive = i < n;
  }

  alive_.reserve(n);
  waiting_.reserve(n);
  vnode_cache_.resize(physicals_.size());
  for (std::size_t i = 0; i < n; ++i) {
    alive_.push_back(static_cast<NodeIndex>(i));
  }
  for (std::size_t i = n; i < 2 * n; ++i) {
    waiting_.push_back(static_cast<NodeIndex>(i));
  }

  // Place the initially alive nodes at SHA-1 IDs.
  for (const NodeIndex idx : alive_) {
    const Uint160 id = fresh_ring_id();
    VirtualNode vnode;
    vnode.owner = idx;
    vnode.is_sybil = false;
    const auto [it, inserted] = ring_.emplace(id, std::move(vnode));
    DHTLB_ASSERT(inserted, "World: fresh_ring_id returned a duplicate");
    physicals_[idx].vnode_ids.push_back(id);
    vnode_cache_[idx].push_back(&it->second);
    initial_capacity_ += work_per_tick(idx);
  }

  // Assign SHA-1-keyed tasks to their owner arcs: owner of key k is the
  // first vnode clockwise at or after k.  The ring is fixed for the
  // whole bulk assignment, so resolve owners against a contiguous sorted
  // snapshot of the ring (binary search with cache-friendly accesses)
  // instead of paying a std::map tree walk per task.  Keys are still
  // drawn and appended in draw order, so every TaskStore's contents are
  // bit-identical to the incremental construction.
  std::vector<std::pair<Uint160, VirtualNode*>> arcs;
  arcs.reserve(ring_.size());
  for (auto& [id, vnode] : ring_) arcs.emplace_back(id, &vnode);
  for (std::uint64_t t = 0; t < params_.total_tasks; ++t) {
    const Uint160 key = hashing::Sha1::hash_u64(rng_());
    auto it = std::lower_bound(
        arcs.begin(), arcs.end(), key,
        [](const auto& arc, const Uint160& k) { return arc.first < k; });
    if (it == arcs.end()) it = arcs.begin();
    it->second->tasks.add(key);
    ++physicals_[it->second->owner].workload;
  }
  remaining_ = params_.total_tasks;
  total_tasks_ = params_.total_tasks;
}

std::uint64_t World::work_per_tick(NodeIndex idx) const {
  if (params_.work_measure == WorkMeasure::kStrengthPerTick) {
    return physicals_[idx].strength;
  }
  return 1;
}

unsigned World::sybil_cap(NodeIndex idx) const {
  return params_.heterogeneous ? physicals_[idx].strength
                               : params_.max_sybils;
}

std::vector<std::uint64_t> World::alive_workloads() const {
  std::vector<std::uint64_t> loads;
  loads.reserve(alive_.size());
  for (const NodeIndex idx : alive_) {
    loads.push_back(physicals_[idx].workload);
  }
  return loads;
}

World::RingMap::const_iterator World::ring_successor(
    RingMap::const_iterator it) const {
  ++it;
  return it == ring_.end() ? ring_.begin() : it;
}

World::RingMap::iterator World::ring_successor(RingMap::iterator it) {
  ++it;
  return it == ring_.end() ? ring_.begin() : it;
}

World::RingMap::const_iterator World::ring_predecessor(
    RingMap::const_iterator it) const {
  if (it == ring_.begin()) return std::prev(ring_.end());
  return std::prev(it);
}

ArcView World::arc_of(const Uint160& vnode_id) const {
  const auto it = ring_.find(vnode_id);
  DHTLB_CHECK(it != ring_.end(), "arc_of: vnode " << vnode_id
                                                  << " not in ring");
  ArcView view;
  view.id = vnode_id;
  view.pred = ring_predecessor(it)->first;
  view.owner = it->second.owner;
  view.is_sybil = it->second.is_sybil;
  view.task_count = it->second.tasks.size();
  return view;
}

ArcView World::ArcWalk::iterator::operator*() const {
  ArcView view;
  view.id = cursor_->first;
  view.pred = world_->ring_predecessor(cursor_)->first;
  view.owner = cursor_->second.owner;
  view.is_sybil = cursor_->second.is_sybil;
  view.task_count = cursor_->second.tasks.size();
  return view;
}

World::ArcWalk::iterator& World::ArcWalk::iterator::operator++() {
  cursor_ = forward_ ? world_->ring_successor(cursor_)
                     : world_->ring_predecessor(cursor_);
  --remaining_;
  if (remaining_ != 0 && cursor_->first == start_) remaining_ = 0;
  return *this;
}

World::ArcWalk::iterator World::ArcWalk::begin() const {
  iterator it;
  it.world_ = world_;
  it.forward_ = forward_;
  it.start_ = start_->first;
  it.cursor_ = forward_ ? world_->ring_successor(start_)
                        : world_->ring_predecessor(start_);
  // A walk is empty when k is zero or the starting vnode is alone in the
  // ring (its only neighbor is itself).
  it.remaining_ = (k_ == 0 || it.cursor_->first == it.start_) ? 0 : k_;
  return it;
}

World::ArcWalk World::successor_arcs(const Uint160& vnode_id,
                                     std::size_t k) const {
  const auto it = ring_.find(vnode_id);
  DHTLB_CHECK(it != ring_.end(), "successor_arcs: vnode " << vnode_id
                                                          << " not in ring");
  return ArcWalk(this, it, k, /*forward=*/true);
}

World::ArcWalk World::predecessor_arcs(const Uint160& vnode_id,
                                       std::size_t k) const {
  const auto it = ring_.find(vnode_id);
  DHTLB_CHECK(it != ring_.end(), "predecessor_arcs: vnode "
                                     << vnode_id << " not in ring");
  return ArcWalk(this, it, k, /*forward=*/false);
}

std::vector<Uint160> World::successors_of(const Uint160& vnode_id,
                                          std::size_t k) const {
  std::vector<Uint160> out;
  out.reserve(k);
  for (const ArcView& arc : successor_arcs(vnode_id, k)) {
    out.push_back(arc.id);
  }
  return out;
}

std::vector<Uint160> World::predecessors_of(const Uint160& vnode_id,
                                            std::size_t k) const {
  std::vector<Uint160> out;
  out.reserve(k);
  for (const ArcView& arc : predecessor_arcs(vnode_id, k)) {
    out.push_back(arc.id);
  }
  return out;
}

ArcView World::arc_covering(const Uint160& point) const {
  auto it = ring_.lower_bound(point);
  if (it == ring_.end()) it = ring_.begin();
  // Build the view from the iterator we already hold — arc_of(it->first)
  // would repeat the ring walk just performed by lower_bound.
  ArcView view;
  view.id = it->first;
  view.pred = ring_predecessor(it)->first;
  view.owner = it->second.owner;
  view.is_sybil = it->second.is_sybil;
  view.task_count = it->second.tasks.size();
  return view;
}

std::optional<Uint160> World::median_task_key(const Uint160& vnode_id) const {
  const auto it = ring_.find(vnode_id);
  DHTLB_CHECK(it != ring_.end(), "median_task_key: vnode " << vnode_id
                                                           << " not in ring");
  const auto& keys = it->second.tasks.keys();
  if (keys.empty()) return std::nullopt;
  // Order keys by clockwise distance from the arc start so wrapping
  // arcs sort correctly, then take the lower median.
  const Uint160 start = ring_predecessor(it)->first;
  std::vector<Uint160> offsets;
  offsets.reserve(keys.size());
  for (const auto& k : keys) {
    offsets.push_back(support::clockwise_distance(start, k));
  }
  const auto mid = offsets.begin() +
                   static_cast<std::ptrdiff_t>((offsets.size() - 1) / 2);
  std::nth_element(offsets.begin(), mid, offsets.end());
  return start + *mid;
}

const std::vector<TaskKey>& World::vnode_keys(const Uint160& vnode_id) const {
  const auto it = ring_.find(vnode_id);
  DHTLB_CHECK(it != ring_.end(), "vnode_keys: vnode " << vnode_id
                                                      << " not in ring");
  return it->second.tasks.keys();
}

Uint160 World::fresh_ring_id() {
  // SHA-1 of a random 64-bit value (§V: "Nodes obtain an ID, drawn from
  // a call to SHA1").  Collisions are ~2^-160 but re-draw regardless.
  for (;;) {
    const Uint160 id = hashing::Sha1::hash_u64(rng_());
    if (!ring_.contains(id)) return id;
  }
}

std::optional<std::uint64_t> World::create_sybil(NodeIndex owner,
                                                 Uint160 id) {
  if (ring_.contains(id)) return std::nullopt;
  // Find the vnode currently covering `id` (first vnode clockwise at or
  // after it); the new Sybil takes the keys in (pred, id] from it.
  auto succ = ring_.lower_bound(id);
  if (succ == ring_.end()) succ = ring_.begin();
  auto pred_it = ring_predecessor(succ);
  const Uint160 pred_id = pred_it->first;

  VirtualNode vnode;
  vnode.owner = owner;
  vnode.is_sybil = true;
  const std::uint64_t acquired =
      succ->second.tasks.split_arc_into(pred_id, id, vnode.tasks);
  physicals_[succ->second.owner].workload -= acquired;
  physicals_[owner].workload += acquired;

  const auto [it, inserted] = ring_.emplace(id, std::move(vnode));
  DHTLB_ASSERT(inserted, "create_sybil: duplicate id survived the guard");
  physicals_[owner].vnode_ids.push_back(id);
  vnode_cache_[owner].push_back(&it->second);
  return acquired;
}

void World::remove_vnode(const Uint160& id) {
  auto it = ring_.find(id);
  DHTLB_CHECK(it != ring_.end(), "remove_vnode: vnode " << id
                                                        << " not in ring");
  DHTLB_CHECK(ring_.size() > 1,
              "remove_vnode: removing " << id << " would empty the ring");
  auto succ = ring_successor(it);
  const std::uint64_t moved = succ->second.tasks.merge_from(it->second.tasks);
  physicals_[it->second.owner].workload -= moved;
  physicals_[succ->second.owner].workload += moved;
  ring_.erase(it);
}

void World::remove_sybils(NodeIndex owner) {
  auto& ids = physicals_[owner].vnode_ids;
  // vnode_ids[0] is the primary; everything after it is a Sybil.
  while (ids.size() > 1) {
    remove_vnode(ids.back());
    ids.pop_back();
    vnode_cache_[owner].pop_back();
  }
}

bool World::depart(NodeIndex idx) {
  PhysicalNode& node = physicals_[idx];
  DHTLB_CHECK(node.alive, "depart: node " << idx << " is not alive");
  if (node.vnode_ids.size() >= ring_.size()) {
    return false;  // would empty the ring — nobody left to inherit tasks
  }
  // Remove Sybils first, then the primary; each merge hands tasks to the
  // ring successor exactly as the active-backup model prescribes.
  while (!node.vnode_ids.empty()) {
    remove_vnode(node.vnode_ids.back());
    node.vnode_ids.pop_back();
    vnode_cache_[idx].pop_back();
  }
  DHTLB_ASSERT(node.workload == 0,
               "depart: node " << idx << " left the ring still holding "
                               << node.workload << " tasks");
  node.alive = false;
  std::erase(alive_, idx);
  waiting_.push_back(idx);
  return true;
}

std::optional<NodeIndex> World::join_from_pool() {
  if (waiting_.empty()) return std::nullopt;
  const NodeIndex idx = waiting_.back();
  waiting_.pop_back();
  PhysicalNode& node = physicals_[idx];
  node.alive = true;
  alive_.push_back(idx);

  const Uint160 id = fresh_ring_id();
  auto succ = ring_.lower_bound(id);
  if (succ == ring_.end()) succ = ring_.begin();
  const Uint160 pred_id = ring_predecessor(succ)->first;

  VirtualNode vnode;
  vnode.owner = idx;
  vnode.is_sybil = false;
  const std::uint64_t acquired =
      succ->second.tasks.split_arc_into(pred_id, id, vnode.tasks);
  physicals_[succ->second.owner].workload -= acquired;
  node.workload = acquired;

  const auto [it, inserted] = ring_.emplace(id, std::move(vnode));
  DHTLB_ASSERT(inserted, "join_from_pool: fresh id collided with the ring");
  node.vnode_ids.push_back(id);
  vnode_cache_[idx].push_back(&it->second);
  return idx;
}

std::uint64_t World::consume(NodeIndex idx, std::uint64_t budget) {
  PhysicalNode& node = physicals_[idx];
  std::uint64_t consumed = 0;
  while (consumed < budget && node.workload > 0) {
    // Work on the most-loaded vnode first; within a vnode, task order is
    // immaterial (uniform random pick, see TaskStore::consume_random).
    // The cached pointers mirror vnode_ids in order, so the scan picks
    // the same vnode (including on ties) as a ring lookup per id would,
    // without the O(log ring) find per vnode.
    VirtualNode* busiest = nullptr;
    for (VirtualNode* vnode : vnode_cache_[idx]) {
      if (busiest == nullptr || vnode->tasks.size() > busiest->tasks.size()) {
        busiest = vnode;
      }
    }
    if (busiest == nullptr || busiest->tasks.empty()) break;
    const std::uint64_t take =
        std::min<std::uint64_t>(budget - consumed, busiest->tasks.size());
    for (std::uint64_t i = 0; i < take; ++i) {
      busiest->tasks.consume_random(rng_);
    }
    consumed += take;
    node.workload -= take;
  }
  remaining_ -= consumed;
  return consumed;
}

void World::inject_task(const Uint160& key) {
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();
  it->second.tasks.add(key);
  ++physicals_[it->second.owner].workload;
  ++remaining_;
  ++total_tasks_;
}

void World::set_churn_rate(double rate) {
  DHTLB_CHECK(rate >= 0.0 && rate <= 1.0,
              "set_churn_rate: rate " << rate << " outside [0, 1]");
  params_.churn_rate = rate;
}

void World::set_sybil_threshold(std::uint64_t threshold) {
  params_.sybil_threshold = threshold;
}

std::vector<Uint160> World::ring_ids() const {
  std::vector<Uint160> ids;
  ids.reserve(ring_.size());
  for (const auto& [id, vnode] : ring_) ids.push_back(id);
  return ids;
}

bool World::check_invariants() const {
  return InvariantAuditor(*this).run().ok();
}

bool World::vnode_cache_consistent() const {
  if (vnode_cache_.size() != physicals_.size()) return false;
  for (std::size_t i = 0; i < physicals_.size(); ++i) {
    const auto& ids = physicals_[i].vnode_ids;
    const auto& cache = vnode_cache_[i];
    if (cache.size() != ids.size()) return false;
    for (std::size_t j = 0; j < ids.size(); ++j) {
      const auto it = ring_.find(ids[j]);
      if (it == ring_.end() || cache[j] != &it->second) return false;
    }
  }
  return true;
}

}  // namespace dhtlb::sim
