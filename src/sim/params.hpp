// Simulation parameters — the paper's experimental variables (§V-B).
//
// Field names follow the paper's vocabulary: network size, number of
// tasks, homogeneity, work measurement, churn rate, maxSybils,
// sybilThreshold, successors, plus the 5-tick decision cadence from
// §IV-B and one optional extension flag (§IV-C's "mark failed ranges"
// suggestion).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dhtlb::sim {

/// How much work a node consumes per tick (§V-B "Work Measurement").
enum class WorkMeasure {
  kOneTaskPerTick,   // default: every node completes one task per tick
  kStrengthPerTick,  // a node completes `strength` tasks per tick
};

/// How the job's tasks enter the ring (DESIGN.md §0).
enum class TaskProvisioning {
  /// Legacy default: all total_tasks keys are drawn and assigned to
  /// their owner arcs at tick 0 — O(total_tasks) resident from the
  /// start.  Every pre-streaming golden/baseline was recorded here.
  kPreallocated,
  /// Streamed: a sim::TaskStream fixes a closed-form per-tick arrival
  /// schedule and draws exact keys lazily on the tick they arrive, so
  /// resident tasks track the backlog instead of the horizon.
  kStreamed,
};

struct Params {
  /// Nodes alive at tick zero.  A pool of equally many waiting nodes is
  /// created alongside (§IV-A), so churn joins/leaves roughly balance.
  std::size_t initial_nodes = 1000;

  /// Job size in tasks; each task has a SHA-1 key (§V-A).
  std::uint64_t total_tasks = 100'000;

  /// Heterogeneous networks draw each node's strength uniformly from
  /// {1..max_sybils}; homogeneous networks use strength 1 everywhere.
  bool heterogeneous = false;

  WorkMeasure work_measure = WorkMeasure::kOneTaskPerTick;

  /// Per-tick probability that each alive node leaves and each waiting
  /// node joins (§V-B; joining and leaving rates are equal).
  double churn_rate = 0.0;

  /// Sybil cap for homogeneous nodes, and the upper bound of the
  /// strength distribution for heterogeneous ones (§V-B).
  unsigned max_sybils = 5;

  /// A node may create a Sybil only when its workload is at or below
  /// this many tasks (§V-B; default 0 = must be fully idle).
  std::uint64_t sybil_threshold = 0;

  /// Successor-list length; nodes track equally many predecessors (§V-B).
  std::size_t num_successors = 5;

  /// Sybil strategies run their decision step every this many ticks
  /// (§IV-B: "This check occurs every 5 ticks").
  std::uint64_t decision_period = 5;

  /// §IV-C extension: remember arcs where an injected Sybil acquired no
  /// work and skip them on later decisions.  Off by default (the paper
  /// only suggests it); exercised by the ablation bench.
  bool mark_failed_ranges = false;

  /// Hard tick cap; 0 selects an automatic safety cap well above any
  /// plausible runtime factor.  Runs hitting the cap report
  /// completed == false.
  std::uint64_t max_ticks = 0;

  /// Task provisioning mode; kPreallocated keeps every pre-streaming
  /// output byte-identical.
  TaskProvisioning provisioning = TaskProvisioning::kPreallocated;

  /// Streamed mode only: ticks over which the job arrives.  0 = auto,
  /// which the engine resolves to the ideal runtime so the arrival rate
  /// matches the initial capacity (bounded backlog).  Ignored in
  /// preallocated mode.
  std::uint64_t arrival_ticks = 0;

  /// Throws std::invalid_argument on out-of-domain values.
  void validate() const;

  /// The effective cap used by the engine.
  std::uint64_t effective_max_ticks(std::uint64_t ideal_ticks) const;

  std::string describe() const;
};

}  // namespace dhtlb::sim
