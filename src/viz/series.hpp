// Time-series rendering for per-tick metrics (§V-C: "we also collected
// data on the average work per tick").  Renders a downsampled ASCII area
// chart of a tick series, plus a multi-series comparison layout used by
// the work-per-tick reproduction bench.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dhtlb::viz {

struct SeriesRenderOptions {
  std::size_t width = 72;    // columns (ticks are bucketed to fit)
  std::size_t height = 12;   // rows of the plot area
  std::string title;
  std::string y_label = "work/tick";
};

/// Buckets `series` into `width` columns (mean per bucket) and renders
/// an ASCII area chart with a y-axis scale.  Empty input renders the
/// title only.
std::string render_series(std::span<const std::uint64_t> series,
                          const SeriesRenderOptions& options = {});

/// Renders several series on a shared y-scale, stacked vertically with
/// their labels — the layout used to compare strategies' throughput
/// curves over the same job.
struct LabeledSeries {
  std::string label;
  std::vector<std::uint64_t> values;
};
std::string render_series_comparison(
    const std::vector<LabeledSeries>& series,
    const SeriesRenderOptions& options = {});

/// Mean of each of `buckets` equal slices of the series (the downsample
/// kernel used by render_series; exposed for tests and CSV export).
std::vector<double> bucket_means(std::span<const std::uint64_t> series,
                                 std::size_t buckets);

}  // namespace dhtlb::viz
