#include "viz/ascii_hist.hpp"

#include <algorithm>
#include <sstream>

#include "support/table.hpp"

namespace dhtlb::viz {

namespace {

std::string range_label(const stats::Bin& bin) {
  std::ostringstream out;
  out << '[' << support::format_fixed(bin.lo, 0) << ", "
      << support::format_fixed(bin.hi, 0) << ')';
  return out.str();
}

std::string bar(std::uint64_t count, std::uint64_t max_count,
                std::size_t width) {
  if (max_count == 0) return {};
  const auto cols = static_cast<std::size_t>(
      static_cast<double>(count) / static_cast<double>(max_count) *
      static_cast<double>(width));
  // Nonzero counts always get at least one mark so they stay visible.
  return std::string(count > 0 ? std::max<std::size_t>(cols, 1) : 0, '#');
}

}  // namespace

std::string render_histogram(const std::vector<stats::Bin>& bins,
                             const HistRenderOptions& options) {
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  if (bins.empty()) return out.str();

  std::uint64_t max_count = 0;
  std::uint64_t total = 0;
  std::size_t label_width = 0;
  for (const auto& bin : bins) {
    max_count = std::max(max_count, bin.count);
    total += bin.count;
    label_width = std::max(label_width, range_label(bin).size());
  }
  for (const auto& bin : bins) {
    const std::string label = range_label(bin);
    out << label << std::string(label_width - label.size(), ' ') << ' '
        << bar(bin.count, max_count, options.bar_width) << ' ' << bin.count;
    if (options.show_percent && total > 0) {
      out << " ("
          << support::format_fixed(100.0 * static_cast<double>(bin.count) /
                                       static_cast<double>(total),
                                   1)
          << "%)";
    }
    out << '\n';
  }
  return out.str();
}

std::string render_comparison(const std::vector<stats::Bin>& left,
                              std::string_view left_label,
                              const std::vector<stats::Bin>& right,
                              std::string_view right_label,
                              std::size_t bar_width) {
  std::ostringstream out;
  const std::size_t rows = std::max(left.size(), right.size());
  std::uint64_t max_count = 0;
  for (const auto& bin : left) max_count = std::max(max_count, bin.count);
  for (const auto& bin : right) max_count = std::max(max_count, bin.count);

  std::size_t label_width = 0;
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& src = i < left.size() ? left[i] : right[i];
    label_width = std::max(label_width, range_label(src).size());
  }

  out << std::string(label_width, ' ') << ' ' << left_label
      << std::string(
             bar_width + 8 > left_label.size()
                 ? bar_width + 8 - left_label.size()
                 : 1,
             ' ')
      << "| " << right_label << '\n';
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& bin = i < left.size() ? left[i] : right[i];
    const std::string label = range_label(bin);
    const std::uint64_t lcount = i < left.size() ? left[i].count : 0;
    const std::uint64_t rcount = i < right.size() ? right[i].count : 0;
    const std::string lbar = bar(lcount, max_count, bar_width);
    out << label << std::string(label_width - label.size(), ' ') << ' '
        << lbar << ' ' << lcount;
    const std::size_t used = lbar.size() + 1 + std::to_string(lcount).size();
    out << std::string(used < bar_width + 8 ? bar_width + 8 - used : 1, ' ')
        << "| " << bar(rcount, max_count, bar_width) << ' ' << rcount << '\n';
  }
  return out.str();
}

}  // namespace dhtlb::viz
