#include "viz/ring_layout.hpp"

#include <cmath>
#include <numbers>
#include <sstream>

#include "support/ring_math.hpp"
#include "support/table.hpp"

namespace dhtlb::viz {

RingPoint ring_point(const support::Uint160& id, char kind) {
  RingPoint p;
  p.id = id;
  p.kind = kind;
  const double theta =
      2.0 * std::numbers::pi * support::ring_fraction(id);
  // Paper's convention: x = sin, y = cos — angle measured clockwise from
  // the top of the circle, so ID 0 sits at 12 o'clock.
  p.x = std::sin(theta);
  p.y = std::cos(theta);
  return p;
}

std::string render_ring(const std::vector<RingPoint>& points,
                        std::size_t diameter) {
  const std::size_t size = diameter | 1;  // odd => true center cell
  std::vector<std::string> grid(size, std::string(size, ' '));
  const double radius = static_cast<double>(size - 1) / 2.0;

  auto plot = [&](const RingPoint& p, char mark) {
    const auto col = static_cast<std::size_t>(
        std::lround(radius + p.x * radius));
    const auto row = static_cast<std::size_t>(
        std::lround(radius - p.y * radius));
    grid[row][col] = mark;
  };
  // Tasks first, nodes second: a node overdraws a co-located task.
  for (const auto& p : points) {
    if (p.kind == 't') plot(p, '+');
  }
  for (const auto& p : points) {
    if (p.kind == 'n') plot(p, 'O');
  }

  std::ostringstream out;
  for (const auto& row : grid) out << row << '\n';
  return out.str();
}

std::string ring_csv(const std::vector<RingPoint>& points) {
  std::ostringstream out;
  out << "kind,id,x,y\n";
  for (const auto& p : points) {
    out << (p.kind == 'n' ? "node" : "task") << ',' << p.id.to_hex() << ','
        << support::format_fixed(p.x, 6) << ','
        << support::format_fixed(p.y, 6) << '\n';
  }
  return out.str();
}

}  // namespace dhtlb::viz
