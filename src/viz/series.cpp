#include "viz/series.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/table.hpp"

namespace dhtlb::viz {

std::vector<double> bucket_means(std::span<const std::uint64_t> series,
                                 std::size_t buckets) {
  std::vector<double> means;
  if (series.empty() || buckets == 0) return means;
  buckets = std::min(buckets, series.size());
  means.reserve(buckets);
  // Even slicing by index arithmetic: bucket b covers
  // [b*n/buckets, (b+1)*n/buckets).
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t lo = b * series.size() / buckets;
    const std::size_t hi = (b + 1) * series.size() / buckets;
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      sum += static_cast<double>(series[i]);
    }
    means.push_back(hi > lo ? sum / static_cast<double>(hi - lo) : 0.0);
  }
  return means;
}

namespace {

std::string render_rows(const std::vector<double>& cols, double max_value,
                        std::size_t height) {
  std::ostringstream out;
  for (std::size_t row = height; row >= 1; --row) {
    const double threshold =
        max_value * static_cast<double>(row) / static_cast<double>(height);
    const double prev_threshold = max_value *
                                  static_cast<double>(row - 1) /
                                  static_cast<double>(height);
    // Left gutter: print the scale on the top, middle and bottom rows.
    std::string gutter(10, ' ');
    if (row == height || row == 1 || row == (height + 1) / 2) {
      const std::string value = dhtlb::support::format_fixed(threshold, 1);
      gutter = value + std::string(value.size() < 9 ? 9 - value.size() : 0,
                                   ' ') + '|';
    } else {
      gutter[9] = '|';
    }
    out << gutter;
    for (const double v : cols) {
      if (v >= threshold) {
        out << '#';
      } else if (v > prev_threshold) {
        out << ':';  // partial fill
      } else {
        out << ' ';
      }
    }
    out << '\n';
  }
  out << std::string(9, ' ') << '+' << std::string(cols.size(), '-')
      << '\n';
  return out.str();
}

}  // namespace

std::string render_series(std::span<const std::uint64_t> series,
                          const SeriesRenderOptions& options) {
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  if (series.empty()) return out.str();
  const auto cols = bucket_means(series, options.width);
  const double max_value =
      std::max(1.0, *std::max_element(cols.begin(), cols.end()));
  out << options.y_label << " (x axis: tick 1.."
      << series.size() << ")\n";
  out << render_rows(cols, max_value, options.height);
  return out.str();
}

std::string render_series_comparison(
    const std::vector<LabeledSeries>& series,
    const SeriesRenderOptions& options) {
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';
  // Shared scale: max bucket mean across every series.
  double max_value = 1.0;
  std::size_t longest = 0;
  for (const auto& s : series) {
    longest = std::max(longest, s.values.size());
    for (const double v : bucket_means(s.values, options.width)) {
      max_value = std::max(max_value, v);
    }
  }
  for (const auto& s : series) {
    out << "-- " << s.label << " (" << s.values.size() << " ticks) --\n";
    const auto cols = bucket_means(s.values, options.width);
    out << render_rows(cols, max_value, options.height);
  }
  out << "(shared y scale, max " << support::format_fixed(max_value, 1)
      << "; x axes span each run's own length, longest " << longest
      << " ticks)\n";
  return out.str();
}

}  // namespace dhtlb::viz
