// ASCII rendering of workload histograms — the terminal counterpart of
// the paper's Figures 1 and 4-14.  Each bin is one row: range label,
// count, and a bar scaled to the widest bin.
#pragma once

#include <string>
#include <vector>

#include "stats/histogram.hpp"

namespace dhtlb::viz {

struct HistRenderOptions {
  std::size_t bar_width = 60;   // columns for the widest bar
  bool show_percent = true;     // append percentage of samples
  std::string title;            // optional heading line
};

/// Renders bins (from LinearHistogram/LogHistogram::bins()) as rows of
/// '#' bars.  Empty input renders just the title.
std::string render_histogram(const std::vector<stats::Bin>& bins,
                             const HistRenderOptions& options = {});

/// Renders two distributions side by side (e.g. "no strategy" vs
/// "churn 0.01" at the same tick), sharing bin edges and bar scale —
/// the layout of the paper's comparison figures.
std::string render_comparison(const std::vector<stats::Bin>& left,
                              std::string_view left_label,
                              const std::vector<stats::Bin>& right,
                              std::string_view right_label,
                              std::size_t bar_width = 28);

}  // namespace dhtlb::viz
