// Unit-circle ring layout (the paper's Figures 2-3): maps 160-bit IDs to
// (x, y) on the unit circle via x = sin(2π·id/2^160), y = cos(2π·id/2^160)
// and renders a coarse ASCII plot plus a CSV for external plotting.
#pragma once

#include <string>
#include <vector>

#include "support/uint160.hpp"

namespace dhtlb::viz {

struct RingPoint {
  support::Uint160 id;
  char kind = 'n';  // 'n' = node, 't' = task
  double x = 0.0;
  double y = 0.0;
};

/// Computes the paper's circle coordinates for an ID.
RingPoint ring_point(const support::Uint160& id, char kind);

/// Renders nodes ('O') and tasks ('+') on an ASCII circle of the given
/// diameter (characters).  Nodes are drawn last so they stay visible
/// where a task shares a cell.
std::string render_ring(const std::vector<RingPoint>& points,
                        std::size_t diameter = 41);

/// CSV with columns kind,id,x,y — feedable to any plotting tool to
/// regenerate Figures 2-3 exactly.
std::string ring_csv(const std::vector<RingPoint>& points);

}  // namespace dhtlb::viz
