// Load-imbalance metrics over a vector of per-node workloads.
//
// The paper reports median workload and standard deviation (Table I) and
// reasons informally about "how unbalanced" a network is.  For the test
// suite and the ablation benches we add the standard quantitative
// imbalance measures: Gini coefficient, coefficient of variation, Jain's
// fairness index, and the max/mean imbalance factor (which lower-bounds
// the runtime factor of a no-strategy run when every node consumes one
// task per tick).
#pragma once

#include <cstdint>
#include <span>

namespace dhtlb::stats {

/// Gini coefficient in [0, 1); 0 = perfectly equal.  Empty or all-zero
/// input yields 0.
double gini(std::span<const std::uint64_t> loads);

/// Coefficient of variation: stddev / mean (population stddev).  0 when
/// the mean is 0.
double coefficient_of_variation(std::span<const std::uint64_t> loads);

/// Jain's fairness index: (Σx)^2 / (n·Σx^2), in (0, 1]; 1 = equal.
/// Returns 1 for empty or all-zero input (vacuously fair).
double jain_fairness(std::span<const std::uint64_t> loads);

/// max(load) / mean(load); 1 = perfectly balanced.  Returns 0 when the
/// mean is 0.  For a homogeneous 1-task-per-tick network with no
/// rebalancing, the runtime factor equals exactly this value.
double max_over_mean(std::span<const std::uint64_t> loads);

/// Fraction of nodes with zero work (the "idle fraction" the figures
/// highlight via the leftmost histogram bar).
double idle_fraction(std::span<const std::uint64_t> loads);

}  // namespace dhtlb::stats
