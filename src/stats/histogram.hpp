// Histograms for workload-distribution figures.
//
// The paper's Figures 1 and 4-14 are histograms of per-node workload at a
// given tick.  Figure 1 uses a logarithmic x-axis (workloads span 0 to
// >10,000); the per-tick comparison figures use linear bins.  Both kinds
// are provided, plus normalization to a probability mass per bin.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dhtlb::stats {

/// One rendered histogram bin: [lo, hi) except the last bin, which is
/// closed on both ends.
struct Bin {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

/// Fixed-width linear histogram over [lo, hi].
class LinearHistogram {
 public:
  /// Creates `bins` equal-width bins spanning [lo, hi]; requires
  /// lo < hi and bins >= 1.
  LinearHistogram(double lo, double hi, std::size_t bins);

  /// Adds a sample; values outside [lo, hi] are clamped into the first /
  /// last bin (out-of-range mass stays visible rather than vanishing).
  void add(double x);
  void add_u64(std::uint64_t x) { add(static_cast<double>(x)); }

  std::uint64_t total() const { return total_; }
  std::vector<Bin> bins() const;

  /// Fraction of samples in each bin (empty histogram -> all zeros).
  std::vector<double> probabilities() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Log-spaced histogram for heavy-tailed workload distributions
/// (Figure 1).  A dedicated underflow bin holds zeros and values below
/// `first_edge`, since log bins cannot contain 0.
class LogHistogram {
 public:
  /// Bins: [0, first_edge) then `bins` log-uniform bins from first_edge
  /// to last_edge.  Requires 0 < first_edge < last_edge, bins >= 1.
  LogHistogram(double first_edge, double last_edge, std::size_t bins);

  void add(double x);
  void add_u64(std::uint64_t x) { add(static_cast<double>(x)); }

  std::uint64_t total() const { return total_; }
  /// First returned bin is the underflow bin [0, first_edge).
  std::vector<Bin> bins() const;
  std::vector<double> probabilities() const;

 private:
  double log_lo_;
  double log_hi_;
  double first_edge_;
  double last_edge_;
  std::vector<std::uint64_t> counts_;  // counts_[0] = underflow
  std::uint64_t total_ = 0;
};

/// Builds a linear histogram of a workload vector with bin width chosen
/// so the figure spans [0, max] in `bins` bins — the common case for the
/// tick-by-tick comparison figures.
LinearHistogram workload_histogram(std::span<const std::uint64_t> loads,
                                   std::size_t bins);

}  // namespace dhtlb::stats
