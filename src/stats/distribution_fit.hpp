// Distribution-fit diagnostics for the workload-skew theory in §III.
//
// The paper argues (Table I, Figures 1-3) that SHA-1 placement makes
// per-node workloads heavy-tailed — "better represented by a Zipfian
// distribution" — with the median pinned near ln2 x mean.  The clean
// theoretical statement is that ownership-arc sizes of n uniformly
// placed nodes follow an Exponential(n) law (spacings of a Poisson
// process), which predicts exactly the paper's Table I: median = ln2 x
// mean workload and sigma = mean.  This module provides the tooling to
// TEST that claim rather than assert it: empirical CDF comparison
// (Kolmogorov-Smirnov) against a fitted exponential, a Lorenz curve for
// inequality plots, and the implied theory numbers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dhtlb::stats {

/// One point of a Lorenz curve: the poorest `population_fraction` of
/// nodes hold `load_fraction` of the work.
struct LorenzPoint {
  double population_fraction = 0.0;
  double load_fraction = 0.0;
};

/// Lorenz curve of a load vector, one point per node plus the origin.
/// The Gini coefficient equals twice the area between this curve and
/// the diagonal.
std::vector<LorenzPoint> lorenz_curve(std::span<const std::uint64_t> loads);

/// Kolmogorov-Smirnov statistic of `samples` against an Exponential
/// distribution with the sample mean: sup_x |F_emp(x) - F_exp(x)|.
/// Returns 1.0 for empty input.
double ks_vs_exponential(std::span<const double> samples);

/// KS statistic against a Uniform(0, 2*mean) distribution — the shape
/// workloads would have if arcs were evenly sized with noise; used as
/// the contrast hypothesis in tests (exponential must fit better).
double ks_vs_uniform(std::span<const double> samples);

/// Theory predictions for a network of n nodes and t tasks under the
/// exponential-arc model, matching Table I's columns.
struct ArcTheory {
  double mean_workload = 0.0;    // t / n
  double median_workload = 0.0;  // ln2 * t / n
  double sigma_workload = 0.0;   // ~ t / n (exponential)
};
ArcTheory exponential_arc_theory(std::size_t nodes, std::uint64_t tasks);

}  // namespace dhtlb::stats
