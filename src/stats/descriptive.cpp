#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

namespace dhtlb::stats {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

double percentile_sorted(std::span<const double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<long>(mid),
                   copy.end());
  const double upper = copy[mid];
  if (copy.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(copy.begin(), copy.begin() + static_cast<long>(mid));
  return (lower + upper) / 2.0;
}

double median_u64(std::span<const std::uint64_t> xs) {
  std::vector<double> d(xs.begin(), xs.end());
  return median(d);
}

double percentile(std::span<const double> xs, double p) {
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  RunningStats running;
  for (double x : copy) running.add(x);
  s.mean = running.mean();
  s.stddev = running.stddev();
  s.min = copy.front();
  s.max = copy.back();
  s.p25 = percentile_sorted(copy, 25.0);
  s.median = percentile_sorted(copy, 50.0);
  s.p75 = percentile_sorted(copy, 75.0);
  return s;
}

Summary summarize_u64(std::span<const std::uint64_t> xs) {
  std::vector<double> d(xs.begin(), xs.end());
  return summarize(d);
}

}  // namespace dhtlb::stats
