#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dhtlb::stats {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("LinearHistogram: need lo < hi, bins >= 1");
  }
}

void LinearHistogram::add(double x) {
  const double clamped = std::clamp(x, lo_, hi_);
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((clamped - lo_) / width);
  idx = std::min(idx, counts_.size() - 1);  // x == hi_ lands in last bin
  ++counts_[idx];
  ++total_;
}

std::vector<Bin> LinearHistogram::bins() const {
  std::vector<Bin> out(counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i].lo = lo_ + width * static_cast<double>(i);
    out[i].hi = lo_ + width * static_cast<double>(i + 1);
    out[i].count = counts_[i];
  }
  return out;
}

std::vector<double> LinearHistogram::probabilities() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

LogHistogram::LogHistogram(double first_edge, double last_edge,
                           std::size_t bins)
    : log_lo_(std::log(first_edge)),
      log_hi_(std::log(last_edge)),
      first_edge_(first_edge),
      last_edge_(last_edge),
      counts_(bins + 1, 0) {
  if (!(first_edge > 0.0) || !(first_edge < last_edge) || bins == 0) {
    throw std::invalid_argument(
        "LogHistogram: need 0 < first_edge < last_edge, bins >= 1");
  }
}

void LogHistogram::add(double x) {
  ++total_;
  if (x < first_edge_) {
    ++counts_[0];
    return;
  }
  const double clamped = std::min(x, last_edge_);
  const std::size_t log_bins = counts_.size() - 1;
  const double frac =
      (std::log(clamped) - log_lo_) / (log_hi_ - log_lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(log_bins));
  idx = std::min(idx, log_bins - 1);
  ++counts_[idx + 1];
}

std::vector<Bin> LogHistogram::bins() const {
  std::vector<Bin> out(counts_.size());
  out[0] = Bin{0.0, first_edge_, counts_[0]};
  const std::size_t log_bins = counts_.size() - 1;
  const double step = (log_hi_ - log_lo_) / static_cast<double>(log_bins);
  for (std::size_t i = 0; i < log_bins; ++i) {
    out[i + 1].lo = std::exp(log_lo_ + step * static_cast<double>(i));
    out[i + 1].hi = std::exp(log_lo_ + step * static_cast<double>(i + 1));
    out[i + 1].count = counts_[i + 1];
  }
  return out;
}

std::vector<double> LogHistogram::probabilities() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

LinearHistogram workload_histogram(std::span<const std::uint64_t> loads,
                                   std::size_t bins) {
  std::uint64_t max_load = 0;
  for (auto v : loads) max_load = std::max(max_load, v);
  // A top edge of at least 1 keeps the all-idle network renderable.
  LinearHistogram h(0.0, static_cast<double>(std::max<std::uint64_t>(
                             max_load, 1)) + 1.0,
                    bins);
  for (auto v : loads) h.add_u64(v);
  return h;
}

}  // namespace dhtlb::stats
