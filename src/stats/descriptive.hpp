// Descriptive statistics used throughout the evaluation: running
// mean/variance (Welford), order statistics (median, percentiles), and a
// compact summary record used when aggregating simulation trials.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace dhtlb::stats {

/// Numerically stable running mean / variance accumulator (Welford).
/// Suitable for streaming per-tick metrics without storing samples.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Merges another accumulator (parallel reduction), Chan et al. update.
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Median of a sample (copies and partially sorts; does not modify input).
/// Uses the mean-of-middle-two convention for even sizes.  Returns 0 for
/// an empty sample.
double median(std::span<const double> xs);
double median_u64(std::span<const std::uint64_t> xs);

/// p-th percentile, p in [0, 100], linear interpolation between closest
/// ranks (the "exclusive" variant matching numpy's default).  Returns 0
/// for an empty sample.
double percentile(std::span<const double> xs, double p);

/// Full five-number-style summary of a sample, computed in one pass over
/// a sorted copy.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev, n-1 denominator
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);
Summary summarize_u64(std::span<const std::uint64_t> xs);

}  // namespace dhtlb::stats
