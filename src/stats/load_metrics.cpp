#include "stats/load_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dhtlb::stats {

double gini(std::span<const std::uint64_t> loads) {
  if (loads.empty()) return 0.0;
  std::vector<std::uint64_t> sorted(loads.begin(), loads.end());
  std::sort(sorted.begin(), sorted.end());
  // G = (2 Σ_i i*x_(i) ) / (n Σ x) - (n+1)/n, with 1-based ranks.
  long double weighted = 0.0L;
  long double total = 0.0L;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<long double>(i + 1) * sorted[i];
    total += sorted[i];
  }
  if (total == 0.0L) return 0.0;
  const auto n = static_cast<long double>(sorted.size());
  const long double g = (2.0L * weighted) / (n * total) - (n + 1.0L) / n;
  return static_cast<double>(std::max(g, 0.0L));
}

double coefficient_of_variation(std::span<const std::uint64_t> loads) {
  if (loads.empty()) return 0.0;
  long double sum = 0.0L;
  for (auto v : loads) sum += v;
  const auto n = static_cast<long double>(loads.size());
  const long double mean = sum / n;
  if (mean == 0.0L) return 0.0;
  long double var = 0.0L;
  for (auto v : loads) {
    const long double d = static_cast<long double>(v) - mean;
    var += d * d;
  }
  var /= n;
  return static_cast<double>(std::sqrt(var) / mean);
}

double jain_fairness(std::span<const std::uint64_t> loads) {
  if (loads.empty()) return 1.0;
  long double sum = 0.0L;
  long double sum_sq = 0.0L;
  for (auto v : loads) {
    sum += v;
    sum_sq += static_cast<long double>(v) * static_cast<long double>(v);
  }
  if (sum_sq == 0.0L) return 1.0;
  const auto n = static_cast<long double>(loads.size());
  return static_cast<double>((sum * sum) / (n * sum_sq));
}

double max_over_mean(std::span<const std::uint64_t> loads) {
  if (loads.empty()) return 0.0;
  std::uint64_t max_load = 0;
  long double sum = 0.0L;
  for (auto v : loads) {
    max_load = std::max(max_load, v);
    sum += v;
  }
  if (sum == 0.0L) return 0.0;
  const long double mean = sum / static_cast<long double>(loads.size());
  return static_cast<double>(static_cast<long double>(max_load) / mean);
}

double idle_fraction(std::span<const std::uint64_t> loads) {
  if (loads.empty()) return 0.0;
  std::size_t idle = 0;
  for (auto v : loads) {
    if (v == 0) ++idle;
  }
  return static_cast<double>(idle) / static_cast<double>(loads.size());
}

}  // namespace dhtlb::stats
