#include "stats/distribution_fit.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dhtlb::stats {

std::vector<LorenzPoint> lorenz_curve(std::span<const std::uint64_t> loads) {
  std::vector<LorenzPoint> curve;
  curve.push_back({0.0, 0.0});
  if (loads.empty()) return curve;
  std::vector<std::uint64_t> sorted(loads.begin(), loads.end());
  std::sort(sorted.begin(), sorted.end());
  const long double total = std::accumulate(
      sorted.begin(), sorted.end(), static_cast<long double>(0));
  const auto n = static_cast<double>(sorted.size());
  long double running = 0.0L;
  curve.reserve(sorted.size() + 1);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    running += sorted[i];
    curve.push_back(
        {static_cast<double>(i + 1) / n,
         total == 0.0L ? static_cast<double>(i + 1) / n
                       : static_cast<double>(running / total)});
  }
  return curve;
}

namespace {

/// Generic one-sample KS statistic against a CDF.
template <typename Cdf>
double ks_statistic(std::span<const double> samples, Cdf cdf) {
  if (samples.empty()) return 1.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double model = cdf(sorted[i]);
    const double above = static_cast<double>(i + 1) / n - model;
    const double below = model - static_cast<double>(i) / n;
    worst = std::max({worst, above, below});
  }
  return worst;
}

}  // namespace

double ks_vs_exponential(std::span<const double> samples) {
  if (samples.empty()) return 1.0;
  const double mean =
      std::accumulate(samples.begin(), samples.end(), 0.0) /
      static_cast<double>(samples.size());
  if (mean <= 0.0) return 1.0;
  const double rate = 1.0 / mean;
  return ks_statistic(samples, [rate](double x) {
    return x <= 0.0 ? 0.0 : 1.0 - std::exp(-rate * x);
  });
}

double ks_vs_uniform(std::span<const double> samples) {
  if (samples.empty()) return 1.0;
  const double mean =
      std::accumulate(samples.begin(), samples.end(), 0.0) /
      static_cast<double>(samples.size());
  if (mean <= 0.0) return 1.0;
  const double hi = 2.0 * mean;  // Uniform(0, 2*mean) has the same mean
  return ks_statistic(samples, [hi](double x) {
    if (x <= 0.0) return 0.0;
    if (x >= hi) return 1.0;
    return x / hi;
  });
}

ArcTheory exponential_arc_theory(std::size_t nodes, std::uint64_t tasks) {
  ArcTheory t;
  t.mean_workload =
      static_cast<double>(tasks) / static_cast<double>(nodes);
  t.median_workload = std::log(2.0) * t.mean_workload;
  t.sigma_workload = t.mean_workload;
  return t;
}

}  // namespace dhtlb::stats
