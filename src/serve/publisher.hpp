// ViewPublisher: the RCU swap point between the tick engine (one
// writer) and the serving plane's readers.
//
// Lifecycle (DESIGN.md "Serving plane"):
//   * publish(view)  — writer side, once per tick barrier: the new view
//     becomes current, the previous one moves onto the epoch retire
//     list, and every retired view nobody references anymore is
//     reclaimed.  Runs under the exclusive side of a SharedMutex.
//   * acquire()      — reader side: copies the current shared_ptr under
//     the shared side of the lock.  This is the ONLY synchronized
//     reader operation, paid once per batch, not per lookup — every
//     lookup then runs against the immutable RingView with zero locks.
//
// Reclamation is epoch-style, not deferred-callback RCU: a retired view
// stays on the list while any acquirer still holds its shared_ptr
// (use_count > 1) and is dropped at the next publish once quiescent.
// Because publish holds the lock exclusively, no acquire() can race the
// use_count inspection — a count of 1 proves the list holds the last
// reference.  In the serving plane's barrier pipeline the Service drops
// its batch reference before each publish, so steady-state retirement
// is exact (one retired, one reclaimed per tick) and the stats below
// are deterministic; externally held references just ride the list
// until released.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/ring_view.hpp"
#include "support/sync.hpp"

namespace dhtlb::serve {

class ViewPublisher {
 public:
  ViewPublisher() = default;
  ViewPublisher(const ViewPublisher&) = delete;
  ViewPublisher& operator=(const ViewPublisher&) = delete;

  /// Writer side: swaps `view` in as current, retiring the previous
  /// view and reclaiming every quiescent entry on the retire list.
  void publish(std::shared_ptr<const RingView> view) EXCLUDES(mu_);

  /// Reader side: the current view (null before the first publish).
  /// Hold the returned shared_ptr for the duration of a lookup batch;
  /// release it promptly so retired epochs can be reclaimed.
  std::shared_ptr<const RingView> acquire() const EXCLUDES(mu_);

  struct Stats {
    std::uint64_t published = 0;  // total publish() calls
    std::uint64_t reclaimed = 0;  // retired views fully released
    std::size_t retired_pending = 0;   // on the retire list right now
    std::size_t retire_depth_max = 0;  // worst retire-list depth seen
  };
  Stats stats() const EXCLUDES(mu_);

 private:
  mutable support::SharedMutex mu_;
  std::shared_ptr<const RingView> current_ GUARDED_BY(mu_);
  std::vector<std::shared_ptr<const RingView>> retired_ GUARDED_BY(mu_);
  std::uint64_t published_ GUARDED_BY(mu_) = 0;
  std::uint64_t reclaimed_ GUARDED_BY(mu_) = 0;
  std::size_t retire_depth_max_ GUARDED_BY(mu_) = 0;
};

}  // namespace dhtlb::serve
