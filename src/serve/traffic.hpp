// Key-traffic models for the serving plane: which keys do users look up?
//
// Three streams, selectable per run (dhtlb_serve --traffic):
//   uniform — every draw a uniformly random ring point; the null model.
//   zipf    — draws from a fixed universe of N keys with harmonic
//             (Zipf s=1) popularity: key rank r is drawn with
//             probability proportional to 1/(r+1).  This is the skewed
//             read distribution of real DHT workloads ("Data Load
//             Balancing in Heterogeneous Dynamic Networks", PAPERS.md);
//             the universe keys are SHA-1 hashes of their rank, so the
//             popular keys scatter uniformly around the ring.
//   hotspot — a fraction of the probability mass lands uniformly inside
//             one narrow ring arc (position derived from the run seed),
//             the rest is uniform.  Models a flash crowd parked on one
//             key range — the adversarial case for ring balance.
//
// Determinism: a KeyStream is immutable after construction (shared by
// all serve shards); every draw's randomness comes from the caller's
// per-(tick, shard) Rng stream, and the zipf CDF is built with plain
// IEEE +,/ arithmetic — no libm calls whose rounding could differ
// across toolchains — so the same (config, seed) produces the same key
// sequence on every machine, at any thread or reader count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.hpp"
#include "support/uint160.hpp"

namespace dhtlb::serve {

using support::Uint160;

enum class Traffic { kUniform, kZipf, kHotspot };

/// Parses a --traffic flag value; nullopt on an unknown name.
std::optional<Traffic> parse_traffic(std::string_view name);

/// The canonical CLI / telemetry name of a traffic model.
std::string_view traffic_name(Traffic traffic);

struct TrafficConfig {
  /// Zipf universe size (distinct keys).  Bounded so the precomputed
  /// CDF + key table stay cheap: freeze() DHTLB_CHECKs <= 2^22.
  std::uint64_t key_universe = 100000;
  /// Hotspot: probability a draw lands inside the hot arc.
  double hotspot_fraction = 0.9;
  /// Hotspot: hot-arc width as a fraction of the ring (in (0, 1)).
  double hotspot_arc = 0.015625;  // 1/64 of the key space
};

/// An immutable, shareable key source.  Construction precomputes the
/// zipf tables / hotspot arc; draw() is const and thread-safe (all
/// mutable state lives in the caller's Rng).
class KeyStream {
 public:
  /// `run_seed` anchors the per-run derived constants (the hotspot
  /// arc's position) — not the per-draw randomness, which is the
  /// caller's.
  KeyStream(Traffic traffic, const TrafficConfig& config,
            std::uint64_t run_seed);

  Traffic traffic() const { return traffic_; }

  /// Draws one lookup key using the caller's RNG stream.
  Uint160 draw(support::Rng& rng) const;

  /// Hot-arc bounds (hotspot model only; meaningless otherwise).
  const Uint160& hot_start() const { return hot_start_; }
  const Uint160& hot_end() const { return hot_end_; }

 private:
  Traffic traffic_;
  double hotspot_fraction_ = 0.0;
  // Zipf: cdf_[r] = P(rank <= r); keys_[r] = SHA-1(rank r).
  std::vector<double> cdf_;
  std::vector<Uint160> keys_;
  // Hotspot arc [hot_start_, hot_end_), width = hotspot_arc of the ring.
  Uint160 hot_start_;
  Uint160 hot_end_;
};

}  // namespace dhtlb::serve
