// The serving plane: batched key lookups over published ring snapshots,
// running concurrently with the tick engine.
//
// Pipeline (one writer — the engine thread — plus `readers` workers):
//
//   attach(engine)            publish view 0, dispatch batch 0
//   tick t barrier (post-tick hook):
//     1. wait for batch t-1's shard jobs, fold its per-batch stats
//        (this is where serve metrics for the tick land — one tick of
//        lag by construction, documented in OBSERVABILITY.md)
//     2. freeze the post-tick world into RingView t, publish it
//     3. dispatch batch t across the serve shards
//   ...engine computes tick t+1 while the readers serve batch t...
//   drain()                   wait for + fold the final batch
//
// Determinism contract (the serve twin of the tick engine's): lookups
// are split over kServeShards fixed shards; shard s of batch t draws
// every key and origin from Rng(stream_seed(serve_seed, t, s)); shard
// accumulators fold in fixed shard order on the barrier thread.  The
// reader-thread count is purely an execution knob — any --readers and
// any DHTLB_THREADS produce bit-identical counts, hop statistics and
// owner-load telemetry (check_determinism.sh enforces it).  The only
// intentionally nondeterministic outputs are wall-clock latencies,
// which exist only when measure_latency is on (drivers disable it in
// deterministic mode, zeroing those fields).
//
// Thread-safety model: each ShardAccum is written by exactly one shard
// job per batch and read/zeroed by the barrier thread strictly between
// dispatches; the ThreadPool's submit/wait_idle pair provides the
// happens-before edges, so the accumulators need no locks (and carry no
// capability annotations — they are phase-owned, not lock-guarded).
// The RingView handoff is the annotated part: ViewPublisher under its
// SharedMutex.  Jobs receive a raw pointer to the batch view; the
// Service keeps the owning shared_ptr in batch_view_ until the batch is
// collected, then releases it before the next publish so epoch
// retirement stays exact.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/publisher.hpp"
#include "serve/ring_view.hpp"
#include "serve/traffic.hpp"
#include "sim/engine.hpp"
#include "support/thread_pool.hpp"

namespace dhtlb::serve {

/// Fixed shard count for lookup batches — deliberately NOT the reader
/// count, for exactly the reason sim::kTickShards is not the worker
/// count: per-(tick, shard) RNG streams and a fixed fold order make the
/// results independent of how many threads execute the shards.
inline constexpr std::size_t kServeShards = 16;

struct Config {
  /// Reader worker threads (>= 1).  Execution knob only.
  std::size_t readers = 4;
  Traffic traffic = Traffic::kZipf;
  TrafficConfig traffic_config;
  /// Lookups per batch (one batch per published view; the driver's
  /// --qps, with the tick as the unit of time).
  std::uint64_t lookups_per_tick = 2000;
  /// Record per-lookup wall-clock latency histograms.  Off in
  /// deterministic mode — the clock is the one serve output that
  /// cannot be made reproducible.
  bool measure_latency = false;
};

/// Folded end-of-run serve statistics.  Everything except the latency
/// fields is deterministic in (params, scenario, seed, config).
struct Report {
  std::uint64_t lookups = 0;
  std::uint64_t batches = 0;       // views a batch ran against
  std::uint64_t hops_total = 0;
  std::uint64_t hops_max = 0;
  double hops_mean = 0.0;
  double hops_p50 = 0.0;
  double hops_p99 = 0.0;
  /// Fraction of lookups whose final hop landed on a Sybil vnode — how
  /// much of the traffic the strategy's Sybils actually absorb.
  double sybil_hit_fraction = 0.0;
  /// Load as seen by traffic: per-physical-node lookup-hit totals.
  std::uint64_t owners_hit = 0;    // distinct owners that served >= 1
  double owner_hits_gini = 0.0;    // over owners with >= 1 hit
  double owner_hits_max_over_mean = 0.0;
  ViewPublisher::Stats views;
  /// Wall-clock per-lookup latency (ns), from log2-bucket histograms;
  /// all zero unless Config::measure_latency.
  double latency_p50_ns = 0.0;
  double latency_p99_ns = 0.0;
};

class Service {
 public:
  /// `run_seed` must be the engine's seed: serve streams derive from
  /// stream_seed(mix_seed(run_seed, kServeStream), tick, shard), so
  /// they are decorrelated from every engine and scenario-VM stream.
  Service(const Config& config, std::uint64_t run_seed);
  ~Service();  // drains any in-flight batch

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Optional observability sinks; wire them before attach().  Serve
  /// instruments register on the same registry the engine samples, so
  /// serve series appear in the per-tick metrics JSONL (one tick of
  /// lag — batch t's counts land when batch t is collected, at the
  /// barrier of tick t+1).
  void set_metrics(obs::MetricsRegistry* metrics);
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

  /// Publishes the pre-run view (tick 0), dispatches its batch, and
  /// installs the engine's post-tick hook.  Call once, before run().
  void attach(sim::Engine& engine);

  /// The tick barrier (the engine's post-tick hook target): collect the
  /// in-flight batch, publish the post-tick view, dispatch the next
  /// batch.  Public for tests and custom drivers.
  void on_tick_barrier(const sim::World& world, std::uint64_t tick);

  /// Waits for and folds the final batch.  Idempotent; call after the
  /// run before report().
  void drain();

  /// Folds the per-shard accumulators (fixed shard order) into the
  /// end-of-run report.  Call after drain().
  Report report() const;

  const ViewPublisher& publisher() const { return publisher_; }

 private:
  static constexpr std::size_t kHopBuckets = 64;   // exact counts 0..62, 63+
  static constexpr std::size_t kLatBuckets = 64;   // log2(ns) buckets

  void dispatch(std::shared_ptr<const RingView> view, std::uint64_t tick);
  void collect_batch();
  void serve_shard(std::size_t shard, const RingView& view,
                   std::uint64_t tick);
  std::uint64_t shard_quota(std::size_t shard) const;

  /// Written by one shard job per batch, folded by the barrier thread
  /// between batches (phase-owned; see the header comment).
  struct ShardAccum {
    // Run-long totals.
    std::uint64_t lookups = 0;
    std::uint64_t hops = 0;
    std::uint64_t hops_max = 0;
    std::uint64_t sybil_hits = 0;
    std::array<std::uint64_t, kHopBuckets> hop_hist{};
    std::array<std::uint64_t, kLatBuckets> lat_hist{};
    std::vector<std::uint64_t> owner_hits;  // sized owner_count at attach
    // Per-batch deltas (zeroed at dispatch, read at collect).
    std::uint64_t batch_lookups = 0;
    std::uint64_t batch_hops = 0;
  };

  Config config_;
  std::uint64_t serve_seed_;
  KeyStream stream_;
  ViewPublisher publisher_;
  std::unique_ptr<support::ThreadPool> readers_;
  std::array<ShardAccum, kServeShards> accums_;

  // Barrier-thread state.
  std::shared_ptr<const RingView> batch_view_;  // owns the in-flight view
  std::uint64_t batch_tick_ = 0;
  bool batch_in_flight_ = false;
  std::uint64_t batches_ = 0;

  // Observability (nullable).
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct MetricIds {
    obs::MetricsRegistry::Id lookups = 0;
    obs::MetricsRegistry::Id hops = 0;
    obs::MetricsRegistry::Id view_vnodes = 0;
    obs::MetricsRegistry::Id views_retired = 0;
  };
  MetricIds ids_{};  // valid only while metrics_ != nullptr
};

}  // namespace dhtlb::serve
