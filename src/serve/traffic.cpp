#include "serve/traffic.hpp"

#include <cmath>

#include "hashing/sha1.hpp"
#include "support/check.hpp"

namespace dhtlb::serve {

namespace {

// Stream label for the hotspot arc's position: derived from the run
// seed but decorrelated from the engine's tick streams and the serve
// shards' per-(tick, shard) streams.
constexpr std::uint64_t kHotArcStream = 0x40A2C5E12EULL;  // "hot arc serve"

/// Ring arc width covering `fraction` of the 2^160 key space, in fixed
/// point: max() * round(fraction * 2^32) / 2^32 — the same construction
/// the scenario VM uses for inject-hotspot, so serve hotspots and
/// scripted hotspot floods agree on what "1/64 of the ring" means.
Uint160 arc_width(double fraction) {
  DHTLB_CHECK(fraction > 0.0 && fraction < 1.0,
              "traffic: hotspot_arc " << fraction << " outside (0, 1)");
  const double scaled = std::round(fraction * 4294967296.0);
  auto scale = static_cast<std::uint32_t>(scaled);
  if (scale == 0) scale = 1;
  return Uint160::max().shr(32).mul_small(scale);
}

}  // namespace

std::optional<Traffic> parse_traffic(std::string_view name) {
  if (name == "uniform") return Traffic::kUniform;
  if (name == "zipf") return Traffic::kZipf;
  if (name == "hotspot") return Traffic::kHotspot;
  return std::nullopt;
}

std::string_view traffic_name(Traffic traffic) {
  switch (traffic) {
    case Traffic::kUniform: return "uniform";
    case Traffic::kZipf: return "zipf";
    case Traffic::kHotspot: return "hotspot";
  }
  return "unknown";
}

KeyStream::KeyStream(Traffic traffic, const TrafficConfig& config,
                     std::uint64_t run_seed)
    : traffic_(traffic), hotspot_fraction_(config.hotspot_fraction) {
  switch (traffic_) {
    case Traffic::kUniform:
      break;
    case Traffic::kZipf: {
      const std::uint64_t n = config.key_universe;
      DHTLB_CHECK(n > 0 && n <= (1ULL << 22),
                  "traffic: zipf key_universe " << n
                                                << " outside [1, 2^22]");
      // Harmonic weights 1/(r+1), folded into a normalized CDF with
      // plain additions and divisions only (IEEE-exact everywhere).
      cdf_.resize(n);
      keys_.resize(n);
      double total = 0.0;
      for (std::uint64_t r = 0; r < n; ++r) {
        total += 1.0 / static_cast<double>(r + 1);
        cdf_[r] = total;
        keys_[r] = hashing::Sha1::hash_u64(r);
      }
      for (double& c : cdf_) c /= total;
      cdf_.back() = 1.0;  // guard against accumulated rounding
      break;
    }
    case Traffic::kHotspot: {
      DHTLB_CHECK(
          hotspot_fraction_ >= 0.0 && hotspot_fraction_ <= 1.0,
          "traffic: hotspot_fraction " << hotspot_fraction_
                                       << " outside [0, 1]");
      support::Rng arc_rng(support::stream_seed(run_seed, kHotArcStream));
      hot_start_ = arc_rng.uniform_u160();
      hot_end_ = hot_start_ + arc_width(config.hotspot_arc);
      break;
    }
  }
}

Uint160 KeyStream::draw(support::Rng& rng) const {
  switch (traffic_) {
    case Traffic::kUniform:
      return rng.uniform_u160();
    case Traffic::kZipf: {
      const double u = rng.uniform();
      // First rank whose CDF exceeds u.
      std::size_t lo = 0;
      std::size_t hi = cdf_.size() - 1;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (cdf_[mid] > u) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      return keys_[lo];
    }
    case Traffic::kHotspot:
      if (rng.bernoulli(hotspot_fraction_)) {
        return rng.uniform_in_arc(hot_start_, hot_end_);
      }
      return rng.uniform_u160();
  }
  return rng.uniform_u160();  // unreachable
}

}  // namespace dhtlb::serve
