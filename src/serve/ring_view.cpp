#include "serve/ring_view.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dhtlb::serve {

RingView RingView::freeze(const sim::World& world, std::uint64_t tick) {
  RingView view;
  view.tick_ = tick;
  view.owner_count_ = world.physical_count();
  const std::size_t n = world.vnode_count();
  DHTLB_CHECK(n > 0, "RingView::freeze: ring is empty");
  view.ids_.reserve(n);
  view.owners_.reserve(n);
  view.sybils_.reserve(n);
  world.for_each_arc([&](const sim::ArcView& arc) {
    view.ids_.push_back(arc.id);
    view.owners_.push_back(arc.owner);
    view.sybils_.push_back(arc.is_sybil ? 1 : 0);
  });
  return view;
}

std::size_t RingView::cover(const Uint160& key) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), key);
  if (it == ids_.end()) return 0;  // wrap past zero to the smallest id
  return static_cast<std::size_t>(it - ids_.begin());
}

RingView::Route RingView::route(const Uint160& key,
                                std::size_t origin) const {
  DHTLB_ASSERT(origin < ids_.size(),
               "RingView::route: origin " << origin << " out of range");
  Route r;
  r.index = origin;
  const std::size_t target = cover(key);
  while (r.index != target) {
    // Clockwise distance from the current vnode to the key.  Nonzero
    // here: key == id(cur) would make cur its own cover.
    const Uint160 dist = key - ids_[r.index];
    // Longest finger not overshooting the key: id + 2^b with
    // 2^b <= dist.  The vnode covering that point lies in (cur, key]
    // clockwise, so the remaining distance drops below 2^b — at least a
    // halving per hop.
    const int b = dist.bit_length() - 1;
    r.index = cover(ids_[r.index] + Uint160::pow2(b));
    ++r.hops;
    DHTLB_CHECK(r.hops < kMaxHops,
                "RingView::route: " << r.hops
                                    << " hops without convergence — "
                                       "corrupt snapshot");
  }
  return r;
}

}  // namespace dhtlb::serve
