#include "serve/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>

#include "stats/load_metrics.hpp"
#include "support/check.hpp"

namespace dhtlb::serve {

namespace {

// Root label of the serving plane's RNG stream tree: serve shard
// streams are stream_seed(mix_seed(run_seed, kServeStream), tick,
// shard), decorrelated by construction from the engine's raw-seed tick
// streams and the scenario VM's kVmStream.
constexpr std::uint64_t kServeStream = 0x5E12F1A4EULL;  // "serve plane"

/// Smallest value whose cumulative histogram count reaches the q-th
/// percentile (exclusive-upper integer walk; exact, no interpolation).
template <std::size_t N>
std::uint64_t hist_percentile(const std::array<std::uint64_t, N>& hist,
                              std::uint64_t total, double q) {
  if (total == 0) return 0;
  const auto threshold = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q / 100.0 * static_cast<double>(total))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < N; ++i) {
    cum += hist[i];
    if (cum >= threshold) return i;
  }
  return N - 1;
}

}  // namespace

Service::Service(const Config& config, std::uint64_t run_seed)
    : config_(config),
      serve_seed_(support::mix_seed(run_seed, kServeStream)),
      stream_(config.traffic, config.traffic_config, run_seed),
      readers_(std::make_unique<support::ThreadPool>(
          std::max<std::size_t>(1, config.readers))) {}

Service::~Service() { drain(); }

void Service::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  ids_.lookups = metrics_->counter("serve_lookups", "lookups");
  ids_.hops = metrics_->counter("serve_hops", "hops");
  ids_.view_vnodes = metrics_->gauge("serve_view_vnodes", "vnodes");
  ids_.views_retired = metrics_->gauge("serve_views_retired", "views");
}

std::uint64_t Service::shard_quota(std::size_t shard) const {
  const std::uint64_t base = config_.lookups_per_tick / kServeShards;
  const std::uint64_t rem = config_.lookups_per_tick % kServeShards;
  return base + (shard < rem ? 1 : 0);
}

void Service::attach(sim::Engine& engine) {
  DHTLB_CHECK(!batch_in_flight_,
              "Service::attach: already attached to a run");
  // Owner-hit arrays span the physical population, which is fixed for
  // the whole run (the waiting pool is preallocated at construction).
  const std::size_t owners = engine.world().physical_count();
  for (ShardAccum& acc : accums_) {
    acc.owner_hits.assign(owners, 0);
  }
  // View 0: the pre-run ring, so traffic flows from the first tick on.
  auto view = std::make_shared<const RingView>(
      RingView::freeze(engine.world(), 0));
  publisher_.publish(view);
  if (metrics_) {
    metrics_->set(ids_.view_vnodes, static_cast<double>(view->size()));
  }
  dispatch(std::move(view), 0);
  engine.set_post_tick_hook([this, &engine](std::uint64_t tick) {
    on_tick_barrier(engine.world(), tick);
  });
}

void Service::on_tick_barrier(const sim::World& world, std::uint64_t tick) {
  collect_batch();
  auto view =
      std::make_shared<const RingView>(RingView::freeze(world, tick));
  if (trace_) {
    trace_->instant("view_publish", "serve",
                    {{"vnodes", view->size()}});
  }
  publisher_.publish(view);
  if (metrics_) {
    metrics_->set(ids_.view_vnodes, static_cast<double>(view->size()));
    metrics_->set(ids_.views_retired,
                  static_cast<double>(publisher_.stats().reclaimed));
  }
  dispatch(std::move(view), tick);
}

void Service::dispatch(std::shared_ptr<const RingView> view,
                       std::uint64_t tick) {
  DHTLB_ASSERT(!batch_in_flight_,
               "Service::dispatch: previous batch not collected");
  // The Service owns the batch's view reference; jobs get a raw pointer
  // (valid until collect_batch resets batch_view_ after wait_idle).
  // Keeping ownership here — instead of one shared_ptr copy per job —
  // makes view refcounts a pure barrier-thread affair, so epoch
  // retirement counts are deterministic.
  batch_view_ = std::move(view);
  batch_tick_ = tick;
  batch_in_flight_ = true;
  const RingView* raw = batch_view_.get();
  for (std::size_t s = 0; s < kServeShards; ++s) {
    accums_[s].batch_lookups = 0;
    accums_[s].batch_hops = 0;
    readers_->submit([this, raw, tick, s] { serve_shard(s, *raw, tick); });
  }
}

void Service::serve_shard(std::size_t shard, const RingView& view,
                          std::uint64_t tick) {
  ShardAccum& acc = accums_[shard];
  const std::uint64_t quota = shard_quota(shard);
  support::Rng rng(support::stream_seed(serve_seed_, tick, shard));
  const bool timed = config_.measure_latency;
  for (std::uint64_t i = 0; i < quota; ++i) {
    const Uint160 key = stream_.draw(rng);
    const auto origin = static_cast<std::size_t>(rng.below(view.size()));
    // Latency is the one serve output off the determinism contract:
    // capture is gated on measure_latency, which drivers disable in
    // deterministic mode (see the Config comment).
    std::chrono::steady_clock::time_point t0;
    if (timed) {
      // dhtlb:lint-allow(wall-clock) per-lookup latency stopwatch open.
      t0 = std::chrono::steady_clock::now();
    }
    const RingView::Route route = view.route(key, origin);
    if (timed) {
      // dhtlb:lint-allow(wall-clock) per-lookup latency stopwatch close.
      const auto t1 = std::chrono::steady_clock::now();
      const auto ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count();
      const auto width = static_cast<std::size_t>(
          std::bit_width(static_cast<std::uint64_t>(std::max<long long>(
              0, ns))));
      ++acc.lat_hist[std::min(width, kLatBuckets - 1)];
    }
    ++acc.lookups;
    ++acc.batch_lookups;
    acc.hops += route.hops;
    acc.batch_hops += route.hops;
    acc.hops_max = std::max<std::uint64_t>(acc.hops_max, route.hops);
    ++acc.hop_hist[std::min<std::size_t>(route.hops, kHopBuckets - 1)];
    if (view.sybil_at(route.index)) ++acc.sybil_hits;
    ++acc.owner_hits[view.owner_at(route.index)];
  }
}

void Service::collect_batch() {
  if (!batch_in_flight_) return;
  readers_->wait_idle();
  batch_in_flight_ = false;
  // Release the batch's view reference before the next publish, so a
  // view retired there is provably quiescent and reclaimed on the spot.
  batch_view_.reset();
  ++batches_;
  std::uint64_t lookups = 0;
  std::uint64_t hops = 0;
  for (const ShardAccum& acc : accums_) {
    lookups += acc.batch_lookups;
    hops += acc.batch_hops;
  }
  if (metrics_) {
    metrics_->add(ids_.lookups, static_cast<double>(lookups));
    metrics_->add(ids_.hops, static_cast<double>(hops));
  }
  if (trace_) {
    trace_->counter("serve_lookups", static_cast<double>(lookups));
    trace_->counter("serve_hops", static_cast<double>(hops));
  }
}

void Service::drain() { collect_batch(); }

Report Service::report() const {
  DHTLB_CHECK(!batch_in_flight_,
              "Service::report: drain() the final batch first");
  Report rep;
  rep.batches = batches_;
  std::array<std::uint64_t, kHopBuckets> hop_hist{};
  std::array<std::uint64_t, kLatBuckets> lat_hist{};
  std::uint64_t sybil_hits = 0;
  std::vector<std::uint64_t> owner_hits;
  for (const ShardAccum& acc : accums_) {
    rep.lookups += acc.lookups;
    rep.hops_total += acc.hops;
    rep.hops_max = std::max(rep.hops_max, acc.hops_max);
    sybil_hits += acc.sybil_hits;
    for (std::size_t i = 0; i < kHopBuckets; ++i) {
      hop_hist[i] += acc.hop_hist[i];
    }
    for (std::size_t i = 0; i < kLatBuckets; ++i) {
      lat_hist[i] += acc.lat_hist[i];
    }
    if (owner_hits.size() < acc.owner_hits.size()) {
      owner_hits.resize(acc.owner_hits.size(), 0);
    }
    for (std::size_t i = 0; i < acc.owner_hits.size(); ++i) {
      owner_hits[i] += acc.owner_hits[i];
    }
  }
  if (rep.lookups > 0) {
    rep.hops_mean = static_cast<double>(rep.hops_total) /
                    static_cast<double>(rep.lookups);
    rep.hops_p50 = static_cast<double>(
        hist_percentile(hop_hist, rep.lookups, 50.0));
    rep.hops_p99 = static_cast<double>(
        hist_percentile(hop_hist, rep.lookups, 99.0));
    rep.sybil_hit_fraction = static_cast<double>(sybil_hits) /
                             static_cast<double>(rep.lookups);
  }
  // Load seen by traffic: the hit distribution over owners that served
  // anything (ascending owner index — a fixed, deterministic order).
  std::vector<std::uint64_t> hit;
  for (const std::uint64_t h : owner_hits) {
    if (h > 0) hit.push_back(h);
  }
  rep.owners_hit = hit.size();
  if (!hit.empty()) {
    rep.owner_hits_gini = stats::gini(hit);
    rep.owner_hits_max_over_mean = stats::max_over_mean(hit);
  }
  rep.views = publisher_.stats();
  if (config_.measure_latency && rep.lookups > 0) {
    // Bucket b holds latencies with bit_width(ns) == b; report the
    // bucket's lower bound (2^(b-1) ns) — coarse but monotone.
    const auto bucket_ns = [](std::uint64_t b) {
      return b == 0 ? 0.0 : static_cast<double>(1ULL << (b - 1));
    };
    rep.latency_p50_ns =
        bucket_ns(hist_percentile(lat_hist, rep.lookups, 50.0));
    rep.latency_p99_ns =
        bucket_ns(hist_percentile(lat_hist, rep.lookups, 99.0));
  }
  return rep;
}

}  // namespace dhtlb::serve
