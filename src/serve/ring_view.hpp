// RingView: an immutable snapshot of the simulated ring, built once at a
// tick barrier and consumed lock-free by any number of reader threads.
//
// The serving plane (DESIGN.md "Serving plane") follows the RCU pattern
// Envoy's ring-hash balancer describes — "generate the rings centrally
// and then just RCU them out to each thread": the tick engine freezes
// the flat ring into this struct-of-arrays copy after each tick, the
// ViewPublisher swaps it in atomically, and readers route key lookups
// against whichever view they hold without ever touching a lock or the
// live (mutating) World.
//
// A view answers two questions:
//   * cover(key)  — which vnode owns this key?  Identical semantics to
//     FlatRing::cover ("first vnode clockwise at or after the point,
//     wrapping past zero"); the differential test proves bit-equality
//     against direct flat-ring successor walks.
//   * route(key, origin) — how many hops would a Chord lookup take?
//     A greedy perfect-finger walk: from the current vnode, jump to the
//     vnode covering id + 2^floor(log2(clockwise distance to key)) — the
//     longest finger that does not overshoot.  Every hop at least halves
//     the remaining clockwise distance, so the walk terminates in
//     <= 160 hops and averages ~log2(ring size), the textbook Chord
//     bound.  This prices each lookup in hops as seen by user traffic,
//     which the tick loop never measures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/flat_ring.hpp"
#include "sim/world.hpp"
#include "support/uint160.hpp"

namespace dhtlb::serve {

using sim::NodeIndex;
using support::Uint160;

class RingView {
 public:
  /// Hard ceiling on route() hops.  Unreachable by construction (the
  /// clockwise distance strictly shrinks every hop and has 160 bits),
  /// so hitting it means the view is corrupt; route() DHTLB_CHECKs.
  static constexpr std::uint32_t kMaxHops = 200;

  /// Freezes the world's ring into an immutable snapshot.  O(ring).
  /// `tick` labels the view (0 = pre-run state).  The ring must be
  /// non-empty (a live World always is).
  static RingView freeze(const sim::World& world, std::uint64_t tick);

  std::uint64_t tick() const { return tick_; }
  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// Physical-node count at freeze time.  Fixed for a whole run (the
  /// waiting pool is preallocated), so per-owner hit arrays sized once
  /// stay valid across every view of the run.
  std::size_t owner_count() const { return owner_count_; }

  const Uint160& id_at(std::size_t i) const { return ids_[i]; }
  NodeIndex owner_at(std::size_t i) const { return owners_[i]; }
  bool sybil_at(std::size_t i) const { return sybils_[i] != 0; }

  /// Index of the vnode whose ownership arc covers `key`: the first
  /// vnode clockwise at or after it, wrapping past zero — exactly
  /// FlatRing::cover on the frozen ring.
  std::size_t cover(const Uint160& key) const;

  /// Clockwise neighbor, wrapping — the successor walk on the snapshot.
  std::size_t next(std::size_t i) const {
    return i + 1 == ids_.size() ? 0 : i + 1;
  }

  struct Route {
    std::size_t index = 0;   // the covering vnode (== cover(key))
    std::uint32_t hops = 0;  // finger-table hops from the origin
  };

  /// Simulates a Chord lookup for `key` starting at vnode `origin`
  /// (an index into this view) with a perfect finger table.  Pure and
  /// lock-free: reads only the frozen arrays.
  Route route(const Uint160& key, std::size_t origin) const;

 private:
  RingView() = default;

  // Struct-of-arrays, ascending-id order (the freeze of FlatRing's
  // index): binary searches touch only ids_, owner/Sybil metadata loads
  // only on the final hop.
  std::vector<Uint160> ids_;
  std::vector<NodeIndex> owners_;
  std::vector<std::uint8_t> sybils_;
  std::size_t owner_count_ = 0;
  std::uint64_t tick_ = 0;
};

}  // namespace dhtlb::serve
