#include "serve/publisher.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace dhtlb::serve {

void ViewPublisher::publish(std::shared_ptr<const RingView> view) {
  DHTLB_CHECK(view != nullptr, "ViewPublisher::publish: null view");
  support::WriterLock lock(mu_);
  if (current_) retired_.push_back(std::move(current_));
  current_ = std::move(view);
  ++published_;
  retire_depth_max_ = std::max(retire_depth_max_, retired_.size());
  // Reclaim quiescent epochs: under the exclusive lock no acquire() can
  // copy a retired pointer, so use_count()==1 proves the list holds the
  // last reference and the view can be dropped.
  auto quiescent = [](const std::shared_ptr<const RingView>& v) {
    return v.use_count() == 1;
  };
  reclaimed_ += static_cast<std::uint64_t>(
      std::count_if(retired_.begin(), retired_.end(), quiescent));
  retired_.erase(
      std::remove_if(retired_.begin(), retired_.end(), quiescent),
      retired_.end());
}

std::shared_ptr<const RingView> ViewPublisher::acquire() const {
  support::ReaderLock lock(mu_);
  return current_;
}

ViewPublisher::Stats ViewPublisher::stats() const {
  support::ReaderLock lock(mu_);
  Stats s;
  s.published = published_;
  s.reclaimed = reclaimed_;
  s.retired_pending = retired_.size();
  s.retire_depth_max = retire_depth_max_;
  return s;
}

}  // namespace dhtlb::serve
