// Metrics registry: named counters, gauges, and histograms sampled once
// per simulation tick into a flat time-series JSONL stream.
//
// One line per instrument per sample (histograms: one line per bucket
// plus a _sum line), keys in alphabetical order, doubles as %.17g —
// the same byte-stability conventions as bench::to_json, so equal runs
// produce byte-equal files at any DHTLB_THREADS setting:
//
//   {"metric":"ring_gini","tick":12,"type":"gauge","unit":"ratio","value":0.25}
//   {"le":16,"metric":"workload","tick":12,"type":"histogram","unit":"tasks","value":37}
//
// Instrument semantics per sample(tick):
//   counter   — cumulative since the run started (monotone)
//   gauge     — last value set this tick
//   histogram — distribution of the observations made *this tick*
//               (reset after each sample); bucket rows are cumulative
//               in `le` (Prometheus-style), topped by le "+inf"
//
// Like TraceSink, the registry is only ever touched behind a null-
// pointer branch at the producer, so a run without --metrics pays one
// predictable branch per tick and allocates nothing.
//
// Thread safety: all state is guarded by an internal dhtlb::Mutex
// (compiler-checked via -Wthread-safety; see support/sync.hpp), so
// producers on different shards of the planned parallel tick engine
// can add()/observe() concurrently.  sample() still defines the
// serialization point: callers must sample from one thread at a tick
// boundary for rows to land in deterministic tick order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "support/sync.hpp"

namespace dhtlb::obs {

class MetricsRegistry {
 public:
  using Id = std::size_t;

  /// Streams rows to `out` (non-owning), buffering and flushing every
  /// `flush_every_samples` calls to sample() — "periodic flush" without
  /// per-row syscalls.  Content is identical at any cadence.
  explicit MetricsRegistry(std::ostream& out,
                           std::size_t flush_every_samples = 32);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration is idempotent: re-registering a name returns the
  /// existing instrument (the kind and unit must match — a mismatch is
  /// a contract violation).
  Id counter(std::string_view name, std::string_view unit) EXCLUDES(mu_);
  Id gauge(std::string_view name, std::string_view unit) EXCLUDES(mu_);
  /// `bounds` are the inclusive upper bucket edges, strictly
  /// increasing; a final +inf bucket is implicit.
  Id histogram(std::string_view name, std::string_view unit,
               std::vector<double> bounds) EXCLUDES(mu_);

  void add(Id id, double delta) EXCLUDES(mu_);      // counters
  void set(Id id, double value) EXCLUDES(mu_);      // gauges
  void observe(Id id, double value) EXCLUDES(mu_);  // histograms

  /// Batched observe(): records every value under a single lock
  /// acquisition.  This is how the tick engine publishes the post-barrier
  /// workload distribution — one fold-side call per tick instead of one
  /// lock round-trip per alive node.
  void observe_all(Id id, const std::vector<double>& values) EXCLUDES(mu_);

  /// Emits one row per instrument for `tick` (instruments in name
  /// order), then resets histograms.
  void sample(std::uint64_t tick) EXCLUDES(mu_);

  /// Writes buffered rows through to the stream.
  void flush() EXCLUDES(mu_);

  std::size_t instrument_count() const EXCLUDES(mu_);
  std::uint64_t rows_written() const EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    std::string name;
    std::string unit;
    Kind kind = Kind::kGauge;
    double value = 0.0;               // counter total / gauge value
    std::vector<double> bounds;       // histogram bucket edges
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (+inf)
    double sum = 0.0;                 // histogram per-tick sum
  };

  Id intern(std::string_view name, std::string_view unit, Kind kind)
      REQUIRES(mu_);
  void emit_row(const Instrument& inst, std::uint64_t tick) REQUIRES(mu_);
  void flush_locked() REQUIRES(mu_);

  std::ostream& out_;
  std::size_t flush_every_;
  mutable support::Mutex mu_;
  std::size_t samples_since_flush_ GUARDED_BY(mu_) = 0;
  std::vector<Instrument> instruments_ GUARDED_BY(mu_);
  std::vector<Id> by_name_ GUARDED_BY(mu_);  // ids sorted by name
  std::string buffer_ GUARDED_BY(mu_);
  std::uint64_t rows_ GUARDED_BY(mu_) = 0;
};

}  // namespace dhtlb::obs
