// Metrics registry: named counters, gauges, and histograms sampled once
// per simulation tick into a flat time-series JSONL stream.
//
// One line per instrument per sample (histograms: one line per bucket
// plus a _sum line), keys in alphabetical order, doubles as %.17g —
// the same byte-stability conventions as bench::to_json, so equal runs
// produce byte-equal files at any DHTLB_THREADS setting:
//
//   {"metric":"ring_gini","tick":12,"type":"gauge","unit":"ratio","value":0.25}
//   {"le":16,"metric":"workload","tick":12,"type":"histogram","unit":"tasks","value":37}
//
// Instrument semantics per sample(tick):
//   counter   — cumulative since the run started (monotone)
//   gauge     — last value set this tick
//   histogram — distribution of the observations made *this tick*
//               (reset after each sample); bucket rows are cumulative
//               in `le` (Prometheus-style), topped by le "+inf"
//
// Like TraceSink, the registry is only ever touched behind a null-
// pointer branch at the producer, so a run without --metrics pays one
// predictable branch per tick and allocates nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dhtlb::obs {

class MetricsRegistry {
 public:
  using Id = std::size_t;

  /// Streams rows to `out` (non-owning), buffering and flushing every
  /// `flush_every_samples` calls to sample() — "periodic flush" without
  /// per-row syscalls.  Content is identical at any cadence.
  explicit MetricsRegistry(std::ostream& out,
                           std::size_t flush_every_samples = 32);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration is idempotent: re-registering a name returns the
  /// existing instrument (the kind and unit must match — a mismatch is
  /// a contract violation).
  Id counter(std::string_view name, std::string_view unit);
  Id gauge(std::string_view name, std::string_view unit);
  /// `bounds` are the inclusive upper bucket edges, strictly
  /// increasing; a final +inf bucket is implicit.
  Id histogram(std::string_view name, std::string_view unit,
               std::vector<double> bounds);

  void add(Id id, double delta);      // counters
  void set(Id id, double value);      // gauges
  void observe(Id id, double value);  // histograms

  /// Emits one row per instrument for `tick` (instruments in name
  /// order), then resets histograms.
  void sample(std::uint64_t tick);

  /// Writes buffered rows through to the stream.
  void flush();

  std::size_t instrument_count() const { return instruments_.size(); }
  std::uint64_t rows_written() const { return rows_; }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    std::string name;
    std::string unit;
    Kind kind = Kind::kGauge;
    double value = 0.0;               // counter total / gauge value
    std::vector<double> bounds;       // histogram bucket edges
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (+inf)
    double sum = 0.0;                 // histogram per-tick sum
  };

  Id intern(std::string_view name, std::string_view unit, Kind kind);
  void emit_row(const Instrument& inst, std::uint64_t tick);

  std::ostream& out_;
  std::size_t flush_every_;
  std::size_t samples_since_flush_ = 0;
  std::vector<Instrument> instruments_;
  std::vector<Id> by_name_;  // instrument ids sorted by name
  std::string buffer_;
  std::uint64_t rows_ = 0;
};

}  // namespace dhtlb::obs
