#include "obs/trace.hpp"

#include "support/json.hpp"

namespace dhtlb::obs {

namespace {

// µs per tick: one virtual second, so per-tick sequence numbers can
// never spill into the next tick's timestamp range.
constexpr std::uint64_t kTickUs = 1'000'000;

}  // namespace

void ArgValue::append_to(std::string& out) const {
  switch (kind_) {
    case Kind::kU64: support::json_append_u64(out, u64_); break;
    case Kind::kF64: support::json_append_double(out, f64_); break;
    case Kind::kStr: support::json_append_escaped(out, str_); break;
  }
}

TraceSink::TraceSink(std::ostream& out) : out_(out) {
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

TraceSink::~TraceSink() { close(); }

void TraceSink::set_tick(std::uint64_t tick) {
  support::MutexLock lock(mu_);
  tick_ = tick;
  seq_ = 0;
}

std::uint64_t TraceSink::tick() const {
  support::MutexLock lock(mu_);
  return tick_;
}

std::uint64_t TraceSink::event_count() const {
  support::MutexLock lock(mu_);
  return events_;
}

void TraceSink::begin_event(std::string_view name, std::string_view category,
                            char phase, std::uint64_t ts) {
  line_.clear();
  line_ += events_ == 0 ? "\n" : ",\n";
  line_ += "{\"name\":";
  support::json_append_escaped(line_, name);
  line_ += ",\"cat\":";
  support::json_append_escaped(line_, category);
  line_ += ",\"ph\":\"";
  line_ += phase;
  line_ += "\",\"ts\":";
  support::json_append_u64(line_, ts);
}

void TraceSink::append_args(std::initializer_list<Arg> args) {
  line_ += ",\"args\":{";
  bool first = true;
  for (const Arg& arg : args) {
    if (!first) line_ += ',';
    first = false;
    support::json_append_escaped(line_, arg.first);
    line_ += ':';
    arg.second.append_to(line_);
  }
  line_ += '}';
}

void TraceSink::end_event() {
  line_ += ",\"pid\":1,\"tid\":1}";
  out_ << line_;
  ++events_;
}

void TraceSink::instant(std::string_view name, std::string_view category,
                        std::initializer_list<Arg> args) {
  support::MutexLock lock(mu_);
  if (closed_) return;
  begin_event(name, category, 'i', tick_ * kTickUs + seq_);
  ++seq_;
  line_ += ",\"s\":\"g\"";  // instant scope: global (full-height line)
  append_args(args);
  end_event();
}

void TraceSink::complete_tick(std::string_view name,
                              std::initializer_list<Arg> args) {
  support::MutexLock lock(mu_);
  if (closed_) return;
  begin_event(name, "tick", 'X', tick_ * kTickUs);
  line_ += ",\"dur\":";
  support::json_append_u64(line_, kTickUs);
  append_args(args);
  end_event();
}

void TraceSink::counter(std::string_view name, double value) {
  support::MutexLock lock(mu_);
  if (closed_) return;
  begin_event(name, "metric", 'C', tick_ * kTickUs + seq_);
  ++seq_;
  line_ += ",\"args\":{\"value\":";
  support::json_append_double(line_, value);
  line_ += '}';
  end_event();
}

void TraceSink::close() {
  support::MutexLock lock(mu_);
  if (closed_) return;
  closed_ = true;
  out_ << (events_ == 0 ? "]}\n" : "\n]}\n");
  out_.flush();
}

}  // namespace dhtlb::obs
