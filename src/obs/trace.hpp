// Structured event tracing for simulator and Chord runs, exported as
// Chrome trace_event JSON (load the file in chrome://tracing or
// https://ui.perfetto.dev to get a zoomable timeline of a run).
//
// Design constraints, in order:
//   1. Zero overhead when disabled.  Nothing in this header is touched
//      unless a producer holds a non-null TraceSink*; producers guard
//      every emission with a single branch on that pointer.
//   2. Deterministic bytes.  Timestamps are derived from the simulation
//      tick (1 tick = 1 virtual second of trace time) plus a per-tick
//      emission sequence number — never from wall clocks — so two runs
//      of the same (scenario, seed) produce byte-identical traces at
//      any DHTLB_THREADS setting.
//   3. One event per line.  Trace files diff cleanly and a broken line
//      is locatable.
//
// Event vocabulary (see OBSERVABILITY.md for the full schema):
//   ph "X" complete spans — one per tick ("tick", dur = one tick)
//   ph "i" instants      — churn join/leave, scripted events, strategy
//                          decisions, sybil spawn/quit, RPC send/drop/
//                          delay/duplicate, delayed-notify delivery
//   ph "C" counters      — per-tick series chrome plots as graphs
//
// Thread safety: sink state (the virtual clock, the line buffer, the
// event counter) is guarded by an internal dhtlb::Mutex, checked by
// Clang -Wthread-safety (support/sync.hpp).  Concurrent producers get
// whole events — never interleaved bytes — but within-tick emission
// order is scheduling-dependent, so deterministic traces require the
// per-tick serialization the engine already provides (and the planned
// parallel tick engine will fold shard events at the tick barrier).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>

#include "support/sync.hpp"

namespace dhtlb::obs {

/// One "args" entry of a trace event.  Implicit constructors let call
/// sites write `{{"count", n}, {"kind", "drop"}}`.
class ArgValue {
 public:
  ArgValue(std::uint64_t v) : kind_(Kind::kU64), u64_(v) {}            // NOLINT
  ArgValue(std::uint32_t v) : kind_(Kind::kU64), u64_(v) {}            // NOLINT
  ArgValue(int v) : kind_(Kind::kU64),                                 // NOLINT
                    u64_(static_cast<std::uint64_t>(v < 0 ? 0 : v)) {}
  ArgValue(double v) : kind_(Kind::kF64), f64_(v) {}                   // NOLINT
  ArgValue(const char* v) : kind_(Kind::kStr), str_(v) {}              // NOLINT
  ArgValue(std::string_view v) : kind_(Kind::kStr), str_(v) {}         // NOLINT
  ArgValue(const std::string& v) : kind_(Kind::kStr), str_(v) {}       // NOLINT

  /// Appends this value as a JSON literal.
  void append_to(std::string& out) const;

 private:
  enum class Kind { kU64, kF64, kStr };
  Kind kind_;
  std::uint64_t u64_ = 0;
  double f64_ = 0.0;
  std::string str_;
};

using Arg = std::pair<std::string_view, ArgValue>;

/// Streaming Chrome trace_event writer.  Producers share one sink; the
/// owner (runner or test) controls its lifetime and calls close() (or
/// lets the destructor) to finish the JSON document.
class TraceSink {
 public:
  /// Starts the trace document on `out` (non-owning; must outlive the
  /// sink or its close()).
  explicit TraceSink(std::ostream& out);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Advances the virtual clock to (1-based) `tick` and resets the
  /// within-tick sequence counter.  Every later event is stamped
  /// ts = tick * 1e6 + sequence (µs, so one tick spans one virtual
  /// second), making events sort by (tick, emission order) — the only
  /// clock in the file.
  void set_tick(std::uint64_t tick) EXCLUDES(mu_);
  std::uint64_t tick() const EXCLUDES(mu_);

  /// ph "i" instant event at the current (tick, sequence) position.
  void instant(std::string_view name, std::string_view category,
               std::initializer_list<Arg> args = {}) EXCLUDES(mu_);

  /// ph "X" complete span covering the whole current tick.  Emitted
  /// after the tick's instants; chrome orders by ts, not file order.
  void complete_tick(std::string_view name,
                     std::initializer_list<Arg> args = {}) EXCLUDES(mu_);

  /// ph "C" counter sample; chrome plots each name as a series.
  void counter(std::string_view name, double value) EXCLUDES(mu_);

  /// Writes the document footer.  Idempotent; further events are
  /// silently dropped once closed.
  void close() EXCLUDES(mu_);

  /// Events emitted so far (tests and flush heuristics).
  std::uint64_t event_count() const EXCLUDES(mu_);

 private:
  void begin_event(std::string_view name, std::string_view category,
                   char phase, std::uint64_t ts) REQUIRES(mu_);
  void append_args(std::initializer_list<Arg> args) REQUIRES(mu_);
  void end_event() REQUIRES(mu_);

  std::ostream& out_;
  mutable support::Mutex mu_;
  std::string line_ GUARDED_BY(mu_);  // reused per-event buffer
  std::uint64_t tick_ GUARDED_BY(mu_) = 0;
  std::uint64_t seq_ GUARDED_BY(mu_) = 0;
  std::uint64_t events_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace dhtlb::obs
