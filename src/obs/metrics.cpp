#include "obs/metrics.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/json.hpp"

namespace dhtlb::obs {

MetricsRegistry::MetricsRegistry(std::ostream& out,
                                 std::size_t flush_every_samples)
    : out_(out), flush_every_(flush_every_samples == 0
                                 ? std::size_t{1}
                                 : flush_every_samples) {}

MetricsRegistry::~MetricsRegistry() { flush(); }

MetricsRegistry::Id MetricsRegistry::intern(std::string_view name,
                                            std::string_view unit,
                                            Kind kind) {
  for (Id id = 0; id < instruments_.size(); ++id) {
    if (instruments_[id].name == name) {
      DHTLB_CHECK(instruments_[id].kind == kind,
                    "metric re-registered with a different kind");
      DHTLB_CHECK(instruments_[id].unit == unit,
                    "metric re-registered with a different unit");
      return id;
    }
  }
  Instrument inst;
  inst.name.assign(name);
  inst.unit.assign(unit);
  inst.kind = kind;
  instruments_.push_back(std::move(inst));
  const Id id = instruments_.size() - 1;
  by_name_.push_back(id);
  std::sort(by_name_.begin(), by_name_.end(), [this](Id a, Id b) {
    return instruments_[a].name < instruments_[b].name;
  });
  return id;
}

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name,
                                             std::string_view unit) {
  support::MutexLock lock(mu_);
  return intern(name, unit, Kind::kCounter);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name,
                                           std::string_view unit) {
  support::MutexLock lock(mu_);
  return intern(name, unit, Kind::kGauge);
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name,
                                               std::string_view unit,
                                               std::vector<double> bounds) {
  support::MutexLock lock(mu_);
  DHTLB_CHECK(std::is_sorted(bounds.begin(), bounds.end()) &&
                    std::adjacent_find(bounds.begin(), bounds.end()) ==
                        bounds.end(),
                "histogram bounds must be strictly increasing");
  const Id id = intern(name, unit, Kind::kHistogram);
  Instrument& inst = instruments_[id];
  if (inst.buckets.empty()) {
    inst.bounds = std::move(bounds);
    inst.buckets.assign(inst.bounds.size() + 1, 0);
  } else {
    DHTLB_CHECK(inst.bounds == bounds,
                  "histogram re-registered with different bounds");
  }
  return id;
}

void MetricsRegistry::add(Id id, double delta) {
  support::MutexLock lock(mu_);
  DHTLB_CHECK(id < instruments_.size(), "unknown metric id");
  DHTLB_CHECK(instruments_[id].kind == Kind::kCounter,
                "add() is only valid on counters");
  DHTLB_CHECK(delta >= 0.0, "counters are monotone");
  instruments_[id].value += delta;
}

void MetricsRegistry::set(Id id, double value) {
  support::MutexLock lock(mu_);
  DHTLB_CHECK(id < instruments_.size(), "unknown metric id");
  DHTLB_CHECK(instruments_[id].kind == Kind::kGauge,
                "set() is only valid on gauges");
  instruments_[id].value = value;
}

void MetricsRegistry::observe(Id id, double value) {
  support::MutexLock lock(mu_);
  DHTLB_CHECK(id < instruments_.size(), "unknown metric id");
  Instrument& inst = instruments_[id];
  DHTLB_CHECK(inst.kind == Kind::kHistogram,
                "observe() is only valid on histograms");
  // Cumulative buckets: bump every bucket whose edge admits the value.
  for (std::size_t b = 0; b < inst.bounds.size(); ++b) {
    if (value <= inst.bounds[b]) ++inst.buckets[b];
  }
  ++inst.buckets.back();  // +inf admits everything
  inst.sum += value;
}

void MetricsRegistry::observe_all(Id id, const std::vector<double>& values) {
  support::MutexLock lock(mu_);
  DHTLB_CHECK(id < instruments_.size(), "unknown metric id");
  Instrument& inst = instruments_[id];
  DHTLB_CHECK(inst.kind == Kind::kHistogram,
                "observe_all() is only valid on histograms");
  for (const double value : values) {
    for (std::size_t b = 0; b < inst.bounds.size(); ++b) {
      if (value <= inst.bounds[b]) ++inst.buckets[b];
    }
    ++inst.buckets.back();
    inst.sum += value;
  }
}

void MetricsRegistry::emit_row(const Instrument& inst, std::uint64_t tick) {
  const auto row = [&](std::string_view metric, const double* le,
                       bool le_inf, double value) {
    buffer_ += '{';
    if (le != nullptr || le_inf) {
      buffer_ += "\"le\":";
      if (le_inf) {
        buffer_ += "\"+inf\"";
      } else {
        support::json_append_double(buffer_, *le);
      }
      buffer_ += ',';
    }
    buffer_ += "\"metric\":";
    support::json_append_escaped(buffer_, metric);
    buffer_ += ",\"tick\":";
    support::json_append_u64(buffer_, tick);
    buffer_ += ",\"type\":";
    switch (inst.kind) {
      case Kind::kCounter: buffer_ += "\"counter\""; break;
      case Kind::kGauge: buffer_ += "\"gauge\""; break;
      case Kind::kHistogram: buffer_ += "\"histogram\""; break;
    }
    buffer_ += ",\"unit\":";
    support::json_append_escaped(buffer_, inst.unit);
    buffer_ += ",\"value\":";
    support::json_append_double(buffer_, value);
    buffer_ += "}\n";
    ++rows_;
  };

  switch (inst.kind) {
    case Kind::kCounter:
    case Kind::kGauge:
      row(inst.name, nullptr, false, inst.value);
      break;
    case Kind::kHistogram: {
      for (std::size_t b = 0; b < inst.bounds.size(); ++b) {
        row(inst.name, &inst.bounds[b], false,
            static_cast<double>(inst.buckets[b]));
      }
      row(inst.name, nullptr, true,
          static_cast<double>(inst.buckets.back()));
      row(inst.name + "_sum", nullptr, false, inst.sum);
      break;
    }
  }
}

void MetricsRegistry::sample(std::uint64_t tick) {
  support::MutexLock lock(mu_);
  for (const Id id : by_name_) {
    Instrument& inst = instruments_[id];
    emit_row(inst, tick);
    if (inst.kind == Kind::kHistogram) {
      std::fill(inst.buckets.begin(), inst.buckets.end(), std::uint64_t{0});
      inst.sum = 0.0;
    }
  }
  if (++samples_since_flush_ >= flush_every_) flush_locked();
}

void MetricsRegistry::flush() {
  support::MutexLock lock(mu_);
  flush_locked();
}

void MetricsRegistry::flush_locked() {
  samples_since_flush_ = 0;
  if (buffer_.empty()) return;
  out_ << buffer_;
  out_.flush();
  buffer_.clear();
}

std::size_t MetricsRegistry::instrument_count() const {
  support::MutexLock lock(mu_);
  return instruments_.size();
}

std::uint64_t MetricsRegistry::rows_written() const {
  support::MutexLock lock(mu_);
  return rows_;
}

}  // namespace dhtlb::obs
