// SHA-1 (RFC 3174 / FIPS 180-1), implemented from scratch.
//
// The paper generates every node ID and task key by "feeding random
// numbers into the SHA1 hash function"; the Zipf-like workload skew that
// motivates the whole system (Table I / Figure 1) is a direct consequence
// of hashing onto the 2^160 ring.  We implement the real algorithm rather
// than a stand-in so key distributions match the paper's generating
// process bit for bit.
//
// SHA-1 is cryptographically broken for collision resistance; it is used
// here (as in Chord and the paper) purely as a well-distributed hash onto
// a 160-bit ring, never for security.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "support/uint160.hpp"

namespace dhtlb::hashing {

/// Incremental SHA-1 hasher.
///
/// Usage:
///   Sha1 h;
///   h.update(buf1); h.update(buf2);
///   auto digest = h.finish();   // 20 bytes; h must then be reset()
class Sha1 {
 public:
  using Digest = std::array<std::uint8_t, 20>;

  Sha1() { reset(); }

  /// Restores the initial state so the object can hash another message.
  void reset();

  /// Absorbs more message bytes.  May be called any number of times
  /// before finish().
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  }

  /// Applies padding and returns the digest.  The hasher is left in a
  /// finished state; call reset() before reuse.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);
  static Digest hash(std::string_view data);

  /// Hashes an 8-byte little-endian encoding of `value` — the project's
  /// canonical "feed a random number into SHA-1" primitive for producing
  /// node IDs and task keys, per the paper's setup (§V).
  static support::Uint160 hash_u64(std::uint64_t value);

  /// Hashes arbitrary text to a ring position (e.g. filenames in the
  /// file-sharing example).
  static support::Uint160 hash_to_ring(std::string_view text);

  /// Renders a digest as 40 lowercase hex digits.
  static std::string to_hex(const Digest& digest);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;       // bytes currently in buffer_
  std::uint64_t total_bytes_ = 0;  // message length so far
};

}  // namespace dhtlb::hashing
