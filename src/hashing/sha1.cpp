#include "hashing/sha1.hpp"

#include <bit>
#include <cstring>

namespace dhtlb::hashing {

namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

void Sha1::reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  // Top up a partially filled block first.
  if (buffered_ != 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  // Whole blocks straight from the input.
  while (data.size() - offset >= 64) {
    process_block(data.data() + offset);
    offset += 64;
  }
  // Stash the tail.
  const std::size_t tail = data.size() - offset;
  if (tail != 0) {
    std::memcpy(buffer_.data(), data.data() + offset, tail);
    buffered_ = tail;
  }
}

Sha1::Digest Sha1::finish() {
  // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(std::span(&pad_byte, 1));
  total_bytes_ -= 1;  // padding is not message content
  static constexpr std::uint8_t kZeros[64] = {};
  while (buffered_ != 56) {
    const std::size_t need = buffered_ < 56 ? 56 - buffered_ : 64 - buffered_;
    update(std::span(kZeros, need));
    total_bytes_ -= need;
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span(len_bytes, 8));

  Digest digest{};
  for (int i = 0; i < 5; ++i) {
    const std::uint32_t word = state_[static_cast<std::size_t>(i)];
    digest[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(word >> 24);
    digest[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(word >> 16);
    digest[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(word >> 8);
    digest[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(word);
  }
  return digest;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + w[t] + k;
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

Sha1::Digest Sha1::hash(std::string_view data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

support::Uint160 Sha1::hash_u64(std::uint64_t value) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return support::Uint160::from_bytes(hash(std::span(bytes, 8)));
}

support::Uint160 Sha1::hash_to_ring(std::string_view text) {
  return support::Uint160::from_bytes(hash(text));
}

std::string Sha1::to_hex(const Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(40, '0');
  for (std::size_t i = 0; i < digest.size(); ++i) {
    out[2 * i] = kHex[digest[i] >> 4];
    out[2 * i + 1] = kHex[digest[i] & 0xF];
  }
  return out;
}

}  // namespace dhtlb::hashing
