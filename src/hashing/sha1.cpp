#include "hashing/sha1.hpp"

#include <bit>
#include <cstring>

#include "hashing/sha1_block.hpp"

namespace dhtlb::hashing {

namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

constexpr std::array<std::uint32_t, 5> kInitState = {
    0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};

}  // namespace

namespace detail {

// One SHA-1 compression over a prepared 16-word big-endian block,
// fully unrolled in the classic block-sha1 style: the message schedule
// lives in a 16-word circular buffer expanded in step with the rounds
// (no 80-word array, no store/reload round-trip), and the five working
// variables rotate *roles* between rounds instead of being shuffled
// through a temp.  The boolean forms are the standard 3-op equivalents
// of the spec's choose/majority expressions.  The SHA-NI twin lives in
// sha1_ni.cpp; detail::compress (sha1_block.hpp) picks one per process.
void compress_scalar(std::array<std::uint32_t, 5>& state,
                     const std::uint32_t block_words[16]) {
  std::uint32_t w[16];
  for (int t = 0; t < 16; ++t) w[t] = block_words[t];

  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3],
                e = state[4];

  // Schedule word for round t: the block itself for t < 16, then the
  // rot-xor expansion computed in place.
  const auto sched = [&w](int t) -> std::uint32_t {
    if (t < 16) return w[t];
    const std::uint32_t v = rotl32(w[(t - 3) & 15] ^ w[(t - 8) & 15] ^
                                       w[(t - 14) & 15] ^ w[t & 15],
                                   1);
    w[t & 15] = v;
    return v;
  };
  // One round with explicit variable roles; callers rotate the roles so
  // no data ever moves between the five registers.
  const auto rnd = [&sched](std::uint32_t va, std::uint32_t& vb,
                            [[maybe_unused]] std::uint32_t vc,
                            [[maybe_unused]] std::uint32_t vd,
                            std::uint32_t& ve, std::uint32_t f,
                            std::uint32_t k, int t) {
    ve += rotl32(va, 5) + f + k + sched(t);
    vb = rotl32(vb, 30);
  };
  const auto ch = [](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return z ^ (x & (y ^ z));
  };
  const auto par = [](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return x ^ y ^ z;
  };
  const auto maj = [](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (x & y) | (z & (x | y));
  };

  for (int t = 0; t < 20; t += 5) {
    rnd(a, b, c, d, e, ch(b, c, d), 0x5A827999u, t);
    rnd(e, a, b, c, d, ch(a, b, c), 0x5A827999u, t + 1);
    rnd(d, e, a, b, c, ch(e, a, b), 0x5A827999u, t + 2);
    rnd(c, d, e, a, b, ch(d, e, a), 0x5A827999u, t + 3);
    rnd(b, c, d, e, a, ch(c, d, e), 0x5A827999u, t + 4);
  }
  for (int t = 20; t < 40; t += 5) {
    rnd(a, b, c, d, e, par(b, c, d), 0x6ED9EBA1u, t);
    rnd(e, a, b, c, d, par(a, b, c), 0x6ED9EBA1u, t + 1);
    rnd(d, e, a, b, c, par(e, a, b), 0x6ED9EBA1u, t + 2);
    rnd(c, d, e, a, b, par(d, e, a), 0x6ED9EBA1u, t + 3);
    rnd(b, c, d, e, a, par(c, d, e), 0x6ED9EBA1u, t + 4);
  }
  for (int t = 40; t < 60; t += 5) {
    rnd(a, b, c, d, e, maj(b, c, d), 0x8F1BBCDCu, t);
    rnd(e, a, b, c, d, maj(a, b, c), 0x8F1BBCDCu, t + 1);
    rnd(d, e, a, b, c, maj(e, a, b), 0x8F1BBCDCu, t + 2);
    rnd(c, d, e, a, b, maj(d, e, a), 0x8F1BBCDCu, t + 3);
    rnd(b, c, d, e, a, maj(c, d, e), 0x8F1BBCDCu, t + 4);
  }
  for (int t = 60; t < 80; t += 5) {
    rnd(a, b, c, d, e, par(b, c, d), 0xCA62C1D6u, t);
    rnd(e, a, b, c, d, par(a, b, c), 0xCA62C1D6u, t + 1);
    rnd(d, e, a, b, c, par(e, a, b), 0xCA62C1D6u, t + 2);
    rnd(c, d, e, a, b, par(d, e, a), 0xCA62C1D6u, t + 3);
    rnd(b, c, d, e, a, par(c, d, e), 0xCA62C1D6u, t + 4);
  }

  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
}

}  // namespace detail

void Sha1::reset() {
  state_ = kInitState;
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;
  // Top up a partially filled block first.
  if (buffered_ != 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  // Whole blocks straight from the input.
  while (data.size() - offset >= 64) {
    process_block(data.data() + offset);
    offset += 64;
  }
  // Stash the tail.
  const std::size_t tail = data.size() - offset;
  if (tail != 0) {
    std::memcpy(buffer_.data(), data.data() + offset, tail);
    buffered_ = tail;
  }
}

Sha1::Digest Sha1::finish() {
  // Padding: 0x80, zeros, then the 64-bit big-endian bit length.
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(std::span(&pad_byte, 1));
  total_bytes_ -= 1;  // padding is not message content
  static constexpr std::uint8_t kZeros[64] = {};
  while (buffered_ != 56) {
    const std::size_t need = buffered_ < 56 ? 56 - buffered_ : 64 - buffered_;
    update(std::span(kZeros, need));
    total_bytes_ -= need;
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span(len_bytes, 8));

  Digest digest{};
  for (int i = 0; i < 5; ++i) {
    const std::uint32_t word = state_[static_cast<std::size_t>(i)];
    digest[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(word >> 24);
    digest[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(word >> 16);
    digest[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(word >> 8);
    digest[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(word);
  }
  return digest;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[16];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  detail::compress(state_, w);
}

Sha1::Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

Sha1::Digest Sha1::hash(std::string_view data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

support::Uint160 Sha1::hash_u64(std::uint64_t value) {
  // Single-block fast path: an 8-byte message always pads to exactly one
  // block (8 LE message bytes, 0x80, zeros, 64-bit big-endian bit length),
  // so the schedule can be built in place — no buffering, no incremental
  // padding.  This is the hot primitive of world construction (one call
  // per task key and per node ID); it must stay bit-identical to
  // hash(span_of_le_bytes(value)), which tests/hashing asserts.
  std::uint32_t w[16] = {};
  const auto byte = [value](int i) {
    return static_cast<std::uint32_t>(
        static_cast<std::uint8_t>(value >> (8 * i)));
  };
  w[0] = (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
  w[1] = (byte(4) << 24) | (byte(5) << 16) | (byte(6) << 8) | byte(7);
  w[2] = 0x80000000u;  // terminator bit directly after the message
  w[15] = 64;          // bit length of the 8-byte message

  std::array<std::uint32_t, 5> state = kInitState;
  detail::compress(state, w);

  std::array<std::uint8_t, 20> digest{};
  for (std::size_t i = 0; i < 5; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
  return support::Uint160::from_bytes(digest);
}

support::Uint160 Sha1::hash_to_ring(std::string_view text) {
  return support::Uint160::from_bytes(hash(text));
}

std::string Sha1::to_hex(const Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(40, '0');
  for (std::size_t i = 0; i < digest.size(); ++i) {
    out[2 * i] = kHex[digest[i] >> 4];
    out[2 * i + 1] = kHex[digest[i] & 0xF];
  }
  return out;
}

}  // namespace dhtlb::hashing
