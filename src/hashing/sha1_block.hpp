// Internal: SHA-1 compression kernels and their runtime dispatch.
//
// The compression function is the entire cost of Sha1::hash_u64 — the
// one-call-per-node-ID / per-task-key primitive that dominates world
// construction at large N.  x86 CPUs with the SHA new instructions
// (sha1rnds4/sha1nexte/sha1msg1/sha1msg2) run the 80 rounds several
// times faster than any scalar formulation, and since SHA-1 is a fixed
// function, the digest is bit-identical whichever kernel computes it —
// goldens and baselines cannot tell the difference.
//
// Both kernels take the block as 16 already-assembled big-endian words
// (host byte order), the form Sha1's buffering layer and the hash_u64
// fast path naturally produce.  Dispatch is decided once per process
// via cpuid; non-x86 builds always report the NI kernel unavailable.
#pragma once

#include <array>
#include <cstdint>

namespace dhtlb::hashing::detail {

/// Portable compression (classic block-sha1 formulation).
void compress_scalar(std::array<std::uint32_t, 5>& state,
                     const std::uint32_t block_words[16]);

/// True when this CPU executes the x86 SHA new instructions.
bool sha_ni_supported();

/// SHA-NI compression.  Call only when sha_ni_supported(); elsewhere it
/// falls back to compress_scalar so the symbol always links.
void compress_ni(std::array<std::uint32_t, 5>& state,
                 const std::uint32_t block_words[16]);

/// Dispatches to the fastest available kernel.  Bit-identical output;
/// tests/hashing cross-checks the kernels on random blocks.
inline void compress(std::array<std::uint32_t, 5>& state,
                     const std::uint32_t block_words[16]) {
  static const bool use_ni = sha_ni_supported();
  if (use_ni) {
    compress_ni(state, block_words);
  } else {
    compress_scalar(state, block_words);
  }
}

}  // namespace dhtlb::hashing::detail
