// SHA-1 compression on the x86 SHA new instructions.
//
// Follows the canonical Intel schedule: ABCD live in one vector with
// `a` in the top lane, E rides in the top lane of a second vector, and
// the four message vectors are expanded in-flight with sha1msg1/msg2
// while sha1rnds4 retires four rounds at a time.  The input here is 16
// big-endian words already in host order, so the message vectors are
// built with set_epi32 (w0 in the top lane) instead of the byte-swap
// shuffle the raw-bytes formulation needs.
#include "hashing/sha1_block.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>

namespace dhtlb::hashing::detail {

bool sha_ni_supported() {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("sse4.1") &&
         __builtin_cpu_supports("ssse3");
}

__attribute__((target("sha,sse4.1,ssse3"))) void compress_ni(
    std::array<std::uint32_t, 5>& state, const std::uint32_t w[16]) {
  // a,b,c,d with `a` in the top lane; E in the top lane of E0.
  __m128i abcd = _mm_set_epi32(
      static_cast<int>(state[0]), static_cast<int>(state[1]),
      static_cast<int>(state[2]), static_cast<int>(state[3]));
  __m128i e0 = _mm_set_epi32(static_cast<int>(state[4]), 0, 0, 0);
  const __m128i abcd_save = abcd;
  const __m128i e_save = e0;
  __m128i e1;

  const auto load4 = [&w](int t) {
    // One load plus a lane reversal puts w[t] in the top lane — far
    // cheaper than assembling the vector from four scalar inserts.
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + t));
    return _mm_shuffle_epi32(raw, 0x1B);
  };

  // Rounds 0-15: the block itself, four words per vector.
  __m128i msg0 = load4(0);
  e0 = _mm_add_epi32(e0, msg0);
  e1 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

  __m128i msg1 = load4(4);
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);

  __m128i msg2 = load4(8);
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  __m128i msg3 = load4(12);
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  // Rounds 16-79: schedule expansion interleaved with the rounds; the
  // round constant selector steps 0→3 every twenty rounds.
  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);
  msg3 = _mm_xor_si128(msg3, msg1);

  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);
  msg3 = _mm_xor_si128(msg3, msg1);

  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);
  msg3 = _mm_xor_si128(msg3, msg1);

  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
  msg3 = _mm_xor_si128(msg3, msg1);

  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

  // Fold back into the chaining state.  sha1nexte adds rotl30 of e0's
  // top lane into e_save's top lane — exactly the e update the scalar
  // `state[4] += e` performs after the final role rotation.
  e0 = _mm_sha1nexte_epu32(e0, e_save);
  abcd = _mm_add_epi32(abcd, abcd_save);

  state[0] = static_cast<std::uint32_t>(_mm_extract_epi32(abcd, 3));
  state[1] = static_cast<std::uint32_t>(_mm_extract_epi32(abcd, 2));
  state[2] = static_cast<std::uint32_t>(_mm_extract_epi32(abcd, 1));
  state[3] = static_cast<std::uint32_t>(_mm_extract_epi32(abcd, 0));
  state[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e0, 3));
}

}  // namespace dhtlb::hashing::detail

#else  // non-x86: the NI kernel is never selected; keep the symbols.

namespace dhtlb::hashing::detail {

bool sha_ni_supported() { return false; }

void compress_ni(std::array<std::uint32_t, 5>& state,
                 const std::uint32_t w[16]) {
  compress_scalar(state, w);
}

}  // namespace dhtlb::hashing::detail

#endif
