#include "support/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace dhtlb::support {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line, const std::string& context) noexcept {
  // One fprintf per line: stderr is unbuffered, and the report must stay
  // readable when several threads fail close together.
  std::fprintf(stderr, "dhtlb: %s failed: %s\n", kind, expr);
  std::fprintf(stderr, "dhtlb:   at %s:%d\n", file, line);
  if (!context.empty()) {
    std::fprintf(stderr, "dhtlb:   context: %s\n", context.c_str());
  }
  std::abort();
}

}  // namespace dhtlb::support
