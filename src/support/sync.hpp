// Thread-safety-annotated synchronization primitives.
//
// Every mutex in this repo is a dhtlb::support::Mutex (or SharedMutex),
// and every piece of state it guards is marked GUARDED_BY, so the
// locking contract is part of the type system instead of a comment.
// Under Clang the annotations compile to -Wthread-safety capability
// checks — enabled as -Werror=thread-safety by the top-level
// CMakeLists — which reject unguarded access, unlock-without-lock, and
// REQUIRES violations at compile time (tests/support/
// thread_safety_compile proves it).  Under GCC and other compilers the
// attribute macros expand to nothing and the primitives behave exactly
// like the std types they wrap, so the annotations cost nothing where
// they cannot be checked.
//
// The vocabulary is the Clang thread-safety-analysis standard set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   CAPABILITY(x)        this type is a lockable capability named x
//   SCOPED_CAPABILITY    RAII type that acquires in ctor, releases in dtor
//   GUARDED_BY(mu)       data member readable/writable only under mu
//   PT_GUARDED_BY(mu)    pointee guarded by mu (the pointer itself is not)
//   REQUIRES(mu)         caller must hold mu (exclusive) to call this
//   REQUIRES_SHARED(mu)  caller must hold mu at least shared
//   ACQUIRE(mu)…         function acquires/releases mu itself
//   EXCLUDES(mu)         caller must NOT hold mu (deadlock guard)
//
// Condition variables: MutexLock wraps std::unique_lock, so waiting is
// `lock.wait(cv)` inside an explicit predicate loop.  The analysis
// treats the capability as held across the wait (the same convention
// as abseil's CondVar) — re-check your predicate after every wake.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// Thread-safety attributes are a Clang extension; everywhere else the
// macros vanish.  SWIG and other tools that choke on attributes get the
// empty expansion too.
#if defined(__clang__) && !defined(SWIG)
#define DHTLB_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DHTLB_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

#define CAPABILITY(x) DHTLB_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY DHTLB_THREAD_ANNOTATION__(scoped_lockable)
#define GUARDED_BY(x) DHTLB_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) DHTLB_THREAD_ANNOTATION__(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) \
  DHTLB_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  DHTLB_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  DHTLB_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DHTLB_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) \
  DHTLB_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DHTLB_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  DHTLB_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DHTLB_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  DHTLB_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  DHTLB_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) DHTLB_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) DHTLB_THREAD_ANNOTATION__(assert_capability(x))
#define RETURN_CAPABILITY(x) DHTLB_THREAD_ANNOTATION__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  DHTLB_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace dhtlb::support {

/// std::mutex as a named capability.  Prefer MutexLock over manual
/// lock()/unlock() pairs; the manual API exists for the rare shape RAII
/// cannot express (and stays fully checked either way).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// RAII exclusive lock over a Mutex.  Holds a std::unique_lock inside
/// so condition-variable waits work: `while (!pred()) lock.wait(cv);`.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Atomically releases the mutex, blocks on `cv`, and re-acquires
  /// before returning.  The capability is considered held throughout
  /// (abseil CondVar convention): guarded state may be touched on
  /// either side, but predicates must be re-checked after every wake.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// std::shared_mutex as a capability: one writer or many readers.  The
/// read side is what the planned parallel tick engine and RCU snapshot
/// serving plane will lean on.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }
  void lock_shared() ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { m_.unlock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return m_.try_lock_shared();
  }

 private:
  std::shared_mutex m_;
};

/// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() RELEASE() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~WriterLock() RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace dhtlb::support

namespace dhtlb {
// The primitives are used from every layer; lift them to the project
// namespace so call sites read dhtlb::Mutex, not a support:: mouthful.
using support::Mutex;        // NOLINT(misc-unused-using-decls)
using support::MutexLock;    // NOLINT(misc-unused-using-decls)
using support::ReaderLock;   // NOLINT(misc-unused-using-decls)
using support::SharedMutex;  // NOLINT(misc-unused-using-decls)
using support::WriterLock;   // NOLINT(misc-unused-using-decls)
}  // namespace dhtlb
