// Environment-variable knobs shared by the bench/reproduction binaries.
//
// The paper averages most cells over 100 trials.  Full fidelity is
// reproducible here but takes a while on a laptop, so each reproduction
// binary honours:
//   DHTLB_TRIALS  — override the trial count (0/unset = binary's default)
//   DHTLB_SEED    — override the base RNG seed
//   DHTLB_THREADS — worker threads for the trial fan (0/unset = all cores)
// EXPERIMENTS.md records which settings produced the committed numbers.
#pragma once

#include <cstdint>
#include <string>

namespace dhtlb::support {

/// Reads an unsigned integer env var; returns fallback when unset, empty,
/// or unparseable.
std::uint64_t env_u64(const std::string& name, std::uint64_t fallback);

/// Trial count for a reproduction binary: DHTLB_TRIALS or the default.
std::size_t env_trials(std::size_t fallback);

/// Base seed: DHTLB_SEED or the project-wide default 0x5EEDBA5E.
std::uint64_t env_seed();

/// Thread count for trial fans: DHTLB_THREADS or 0 (= hardware).
std::size_t env_threads();

/// Reads a string env var; returns fallback when unset or empty.
std::string env_string(const std::string& name, const std::string& fallback);

/// Reads a boolean env var: "0"/"false"/"off" → false, anything else
/// non-empty → true, unset/empty → fallback.
bool env_flag(const std::string& name, bool fallback);

}  // namespace dhtlb::support
