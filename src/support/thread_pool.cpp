#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "support/check.hpp"

namespace dhtlb::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) lock.wait(all_done_);
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // A shared atomic cursor gives dynamic scheduling: trials have highly
  // variable runtimes (runtime factor varies ~5x across seeds), so static
  // block partitioning would leave threads idle at the tail.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t workers = std::min(n, thread_count());
  for (std::size_t w = 0; w < workers; ++w) {
    submit([cursor, n, &fn] {
      for (std::size_t i = cursor->fetch_add(1); i < n;
           i = cursor->fetch_add(1)) {
        fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) lock.wait(work_available_);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    // Enforce the submit() contract: tasks must not throw.  Letting an
    // exception unwind through the worker loop would also terminate, but
    // nondeterministically and without saying which task died — report
    // and abort deterministically instead.
    try {
      task();
    } catch (const std::exception& e) {
      contract_failure("DHTLB_TASK", "thread-pool task must not throw",
                       __FILE__, __LINE__,
                       std::string("task threw std::exception: ") + e.what());
    } catch (...) {
      contract_failure("DHTLB_TASK", "thread-pool task must not throw",
                       __FILE__, __LINE__,
                       "task threw a non-std::exception value");
    }
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace dhtlb::support
