// 160-bit unsigned integer for Chord identifier-space arithmetic.
//
// Chord (and the paper under reproduction) place node IDs and task keys on
// a ring of size 2^160 — the output space of SHA-1.  All identifier math
// (comparison, modular add/sub, clockwise distance, midpoints, scaling) is
// done on this type.  The representation is five 32-bit limbs, most
// significant limb first, which makes lexicographic limb comparison equal
// to numeric comparison and keeps hex formatting trivial.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace dhtlb::support {

/// Unsigned 160-bit integer with wrapping (mod 2^160) arithmetic.
///
/// Invariants: none beyond the fixed-width representation; all operations
/// are total and wrap modulo 2^160, matching arithmetic on the Chord ring.
class Uint160 {
 public:
  static constexpr int kBits = 160;
  static constexpr int kLimbs = 5;           // 5 x 32-bit, big-endian limbs
  static constexpr int kHexDigits = 40;

  /// Zero value.
  constexpr Uint160() = default;

  /// Widening construction from a 64-bit value (occupies the low bits).
  constexpr explicit Uint160(std::uint64_t low) {
    limbs_[3] = static_cast<std::uint32_t>(low >> 32);
    limbs_[4] = static_cast<std::uint32_t>(low);
  }

  /// Constructs from explicit limbs, most significant first.
  constexpr explicit Uint160(const std::array<std::uint32_t, kLimbs>& limbs)
      : limbs_(limbs) {}

  /// The additive identity (also the "origin" of the ring).
  static constexpr Uint160 zero() { return Uint160{}; }

  /// The maximum representable value, 2^160 - 1.
  static constexpr Uint160 max() {
    Uint160 v;
    for (auto& limb : v.limbs_) limb = 0xFFFFFFFFu;
    return v;
  }

  /// 2^k for k in [0, 160).  Used to build Chord finger offsets.
  static constexpr Uint160 pow2(int k);

  /// Parses a hex string of up to 40 digits (no 0x prefix required but
  /// accepted).  Returns zero on an empty string.  Throws
  /// std::invalid_argument on non-hex characters or overlong input.
  static Uint160 from_hex(std::string_view hex);

  /// Builds a value from 20 big-endian bytes (e.g. a SHA-1 digest).
  static constexpr Uint160 from_bytes(const std::array<std::uint8_t, 20>& b);

  /// Serializes to 20 big-endian bytes.
  constexpr std::array<std::uint8_t, 20> to_bytes() const;

  /// Lowercase, zero-padded 40-digit hex rendering.
  std::string to_hex() const;

  /// Short human-readable form: first 8 hex digits followed by an ellipsis
  /// marker — handy in logs where full IDs are noise.
  std::string to_short_hex() const;

  constexpr const std::array<std::uint32_t, kLimbs>& limbs() const {
    return limbs_;
  }

  /// Low 64 bits (truncating).  Useful for hashing/bucketing.
  constexpr std::uint64_t low64() const {
    return (static_cast<std::uint64_t>(limbs_[3]) << 32) | limbs_[4];
  }

  /// High 64 bits (bits 159..96).
  constexpr std::uint64_t high64() const {
    return (static_cast<std::uint64_t>(limbs_[0]) << 32) | limbs_[1];
  }

  /// Converts to a double in [0, 1): this / 2^160.  Exact enough for
  /// plotting ring positions (Figures 2-3 of the paper).
  double to_unit_interval() const;

  constexpr bool is_zero() const {
    for (auto limb : limbs_)
      if (limb != 0) return false;
    return true;
  }

  /// Number of bits needed to represent the value: index of the highest
  /// set bit plus one; 0 for zero.  (std::bit_width for 160-bit values.)
  constexpr int bit_length() const {
    for (int i = 0; i < kLimbs; ++i) {
      const std::uint32_t limb = limbs_[static_cast<std::size_t>(i)];
      if (limb != 0) {
        int width = 0;
        for (std::uint32_t v = limb; v != 0; v >>= 1) ++width;
        return (kLimbs - 1 - i) * 32 + width;
      }
    }
    return 0;
  }

  // --- wrapping arithmetic (mod 2^160) ----------------------------------
  constexpr Uint160& operator+=(const Uint160& rhs);
  constexpr Uint160& operator-=(const Uint160& rhs);
  friend constexpr Uint160 operator+(Uint160 lhs, const Uint160& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend constexpr Uint160 operator-(Uint160 lhs, const Uint160& rhs) {
    lhs -= rhs;
    return lhs;
  }

  /// Logical right shift by s bits, s in [0, 160].
  constexpr Uint160 shr(int s) const;
  /// Logical left shift by s bits, s in [0, 160] (wraps high bits away).
  constexpr Uint160 shl(int s) const;

  /// Multiplies by a 32-bit scalar modulo 2^160.
  constexpr Uint160 mul_small(std::uint32_t m) const;

  /// Divides by a 32-bit scalar (truncating); divisor must be nonzero.
  constexpr Uint160 div_small(std::uint32_t d) const;

  friend constexpr bool operator==(const Uint160&, const Uint160&) = default;
  friend constexpr std::strong_ordering operator<=>(const Uint160& a,
                                                    const Uint160& b) {
    for (std::size_t i = 0; i < kLimbs; ++i) {
      if (a.limbs_[i] != b.limbs_[i])
        return a.limbs_[i] <=> b.limbs_[i];
    }
    return std::strong_ordering::equal;
  }

 private:
  std::array<std::uint32_t, kLimbs> limbs_{};  // big-endian limb order
};

std::ostream& operator<<(std::ostream& os, const Uint160& v);

// --- inline definitions ---------------------------------------------------

constexpr Uint160 Uint160::pow2(int k) {
  Uint160 v;
  if (k >= 0 && k < kBits) {
    const int limb = kLimbs - 1 - k / 32;
    v.limbs_[static_cast<std::size_t>(limb)] = 1u << (k % 32);
  }
  return v;
}

constexpr Uint160 Uint160::from_bytes(const std::array<std::uint8_t, 20>& b) {
  Uint160 v;
  for (int i = 0; i < kLimbs; ++i) {
    const std::size_t o = static_cast<std::size_t>(i) * 4;
    v.limbs_[static_cast<std::size_t>(i)] =
        (static_cast<std::uint32_t>(b[o]) << 24) |
        (static_cast<std::uint32_t>(b[o + 1]) << 16) |
        (static_cast<std::uint32_t>(b[o + 2]) << 8) |
        static_cast<std::uint32_t>(b[o + 3]);
  }
  return v;
}

constexpr std::array<std::uint8_t, 20> Uint160::to_bytes() const {
  std::array<std::uint8_t, 20> b{};
  for (int i = 0; i < kLimbs; ++i) {
    const std::uint32_t limb = limbs_[static_cast<std::size_t>(i)];
    const std::size_t o = static_cast<std::size_t>(i) * 4;
    b[o] = static_cast<std::uint8_t>(limb >> 24);
    b[o + 1] = static_cast<std::uint8_t>(limb >> 16);
    b[o + 2] = static_cast<std::uint8_t>(limb >> 8);
    b[o + 3] = static_cast<std::uint8_t>(limb);
  }
  return b;
}

constexpr Uint160& Uint160::operator+=(const Uint160& rhs) {
  std::uint64_t carry = 0;
  for (int i = kLimbs - 1; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t sum =
        static_cast<std::uint64_t>(limbs_[idx]) + rhs.limbs_[idx] + carry;
    limbs_[idx] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  return *this;  // overflow past bit 160 wraps, by design
}

constexpr Uint160& Uint160::operator-=(const Uint160& rhs) {
  std::int64_t borrow = 0;
  for (int i = kLimbs - 1; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    std::int64_t diff = static_cast<std::int64_t>(limbs_[idx]) -
                        static_cast<std::int64_t>(rhs.limbs_[idx]) - borrow;
    borrow = 0;
    if (diff < 0) {
      diff += (std::int64_t{1} << 32);
      borrow = 1;
    }
    limbs_[idx] = static_cast<std::uint32_t>(diff);
  }
  return *this;  // underflow wraps mod 2^160, by design
}

constexpr Uint160 Uint160::shr(int s) const {
  if (s <= 0) return *this;
  if (s >= kBits) return Uint160{};
  Uint160 out;
  const int limb_shift = s / 32;
  const int bit_shift = s % 32;
  for (int i = kLimbs - 1; i >= 0; --i) {
    const int src = i - limb_shift;
    if (src < 0) break;
    std::uint64_t v = static_cast<std::uint64_t>(
        limbs_[static_cast<std::size_t>(src)]);
    if (bit_shift != 0) {
      v >>= bit_shift;
      if (src - 1 >= 0) {
        v |= static_cast<std::uint64_t>(
                 limbs_[static_cast<std::size_t>(src - 1)])
             << (32 - bit_shift);
      }
    }
    out.limbs_[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(v);
  }
  return out;
}

constexpr Uint160 Uint160::shl(int s) const {
  if (s <= 0) return *this;
  if (s >= kBits) return Uint160{};
  Uint160 out;
  const int limb_shift = s / 32;
  const int bit_shift = s % 32;
  for (int i = 0; i < kLimbs; ++i) {
    const int src = i + limb_shift;
    if (src >= kLimbs) break;
    std::uint64_t v =
        static_cast<std::uint64_t>(limbs_[static_cast<std::size_t>(src)])
        << bit_shift;
    if (bit_shift != 0 && src + 1 < kLimbs) {
      v |= limbs_[static_cast<std::size_t>(src + 1)] >> (32 - bit_shift);
    }
    out.limbs_[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(v);
  }
  return out;
}

constexpr Uint160 Uint160::mul_small(std::uint32_t m) const {
  Uint160 out;
  std::uint64_t carry = 0;
  for (int i = kLimbs - 1; i >= 0; --i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t prod =
        static_cast<std::uint64_t>(limbs_[idx]) * m + carry;
    out.limbs_[idx] = static_cast<std::uint32_t>(prod);
    carry = prod >> 32;
  }
  return out;  // carry past the top limb wraps, by design
}

constexpr Uint160 Uint160::div_small(std::uint32_t d) const {
  Uint160 out;
  std::uint64_t rem = 0;
  for (int i = 0; i < kLimbs; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const std::uint64_t cur = (rem << 32) | limbs_[idx];
    out.limbs_[idx] = static_cast<std::uint32_t>(cur / d);
    rem = cur % d;
  }
  return out;
}

}  // namespace dhtlb::support
