#include "support/uint160.hpp"

#include <cctype>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace dhtlb::support {

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kHexDigitsLower[] = "0123456789abcdef";

}  // namespace

Uint160 Uint160::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.size() > kHexDigits) {
    throw std::invalid_argument("Uint160::from_hex: more than 40 hex digits");
  }
  std::array<std::uint8_t, 20> bytes{};
  // Right-align: the last hex digit is the least significant nibble.
  std::size_t nibble = 39;  // nibble index from the most significant end
  for (auto it = hex.rbegin(); it != hex.rend(); ++it, --nibble) {
    const int v = hex_value(*it);
    if (v < 0) {
      throw std::invalid_argument("Uint160::from_hex: non-hex character");
    }
    const std::size_t byte = nibble / 2;
    if (nibble % 2 == 1) {
      bytes[byte] |= static_cast<std::uint8_t>(v);
    } else {
      bytes[byte] |= static_cast<std::uint8_t>(v << 4);
    }
  }
  return from_bytes(bytes);
}

std::string Uint160::to_hex() const {
  std::string out(kHexDigits, '0');
  const auto bytes = to_bytes();
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out[2 * i] = kHexDigitsLower[bytes[i] >> 4];
    out[2 * i + 1] = kHexDigitsLower[bytes[i] & 0xF];
  }
  return out;
}

std::string Uint160::to_short_hex() const {
  return to_hex().substr(0, 8) + "..";
}

double Uint160::to_unit_interval() const {
  // Accumulate limbs most-significant first; each limb contributes
  // limb / 2^(32*(i+1)).  Double precision keeps ~53 significant bits,
  // which is ample for plotting and ratio computations.
  double acc = 0.0;
  double scale = 1.0;
  for (int i = 0; i < kLimbs; ++i) {
    scale /= 4294967296.0;  // 2^32
    acc += static_cast<double>(limbs_[static_cast<std::size_t>(i)]) * scale;
  }
  return acc;
}

std::ostream& operator<<(std::ostream& os, const Uint160& v) {
  return os << v.to_hex();
}

}  // namespace dhtlb::support
