#include "support/table.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dhtlb::support {

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      out << row[c];
      // Pad all but the last column so trailing whitespace never appears.
      if (c + 1 != row.size()) {
        out << std::string(widths[c] - row[c].size(), ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::render_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << quote(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_fixed(double v, int digits) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(digits);
  out << v;
  return out.str();
}

std::string format_count(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  std::size_t lead = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += raw[i];
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

}  // namespace dhtlb::support
