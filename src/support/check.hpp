// Contract-check macros that survive Release audit builds.
//
// The standard `assert()` vanishes under NDEBUG, which is exactly when
// the paper-reproduction runs happen (Release).  A silently corrupted
// ring would invalidate every figure, so the simulator's contracts go
// through these macros instead:
//
//   DHTLB_CHECK(cond)            always on, in every build type.  For
//   DHTLB_CHECK(cond, msg)       cheap API contracts on cold paths.
//
//   DHTLB_ASSERT(cond)           on in Debug builds and in audit builds
//   DHTLB_ASSERT(cond, msg)      (-DDHTLB_AUDIT=ON); compiled out in a
//                                plain Release build.  For hot-path
//                                invariants.
//
//   DHTLB_UNREACHABLE(msg)       always on; marks impossible branches.
//
// `msg` is a single `<<`-chained streamable expression giving the ring
// context (vnode id, tick, owner...), evaluated only on failure:
//
//   DHTLB_CHECK(it != ring_.end(),
//               "arc_of: vnode " << vnode_id << " not in ring");
//
// A failing check prints the expression, location, and context to
// stderr, then aborts — deterministic and sanitizer-friendly (ASan and
// TSan both intercept abort() and dump their reports first).
#pragma once

#include <sstream>
#include <string>

namespace dhtlb::support {

/// Prints a contract-failure report to stderr and aborts.  Never
/// returns.  `kind` is the macro name, `expr` the stringified failing
/// condition, `context` the (possibly empty) formatted message.
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& context) noexcept;

namespace detail {

/// Accumulates the context message; exists so the macros can splice an
/// optional `<<`-chain after it via __VA_OPT__.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace dhtlb::support

// Shared expansion for DHTLB_CHECK / DHTLB_ASSERT.  `condstr` is
// stringized by the caller so the report shows the condition as
// written, not macro-expanded.
#define DHTLB_CONTRACT_IMPL_(kind, cond, condstr, ...)                      \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::dhtlb::support::detail::MessageBuilder dhtlb_msg_;                  \
      (void)(dhtlb_msg_ __VA_OPT__(<< __VA_ARGS__));                        \
      ::dhtlb::support::contract_failure(kind, condstr, __FILE__,           \
                                         __LINE__, dhtlb_msg_.str());       \
    }                                                                       \
  } while (0)

#define DHTLB_CHECK(cond, ...)                                              \
  DHTLB_CONTRACT_IMPL_("DHTLB_CHECK", cond, #cond __VA_OPT__(, ) __VA_ARGS__)

#define DHTLB_UNREACHABLE(...)                                              \
  do {                                                                      \
    ::dhtlb::support::detail::MessageBuilder dhtlb_msg_;                    \
    (void)(dhtlb_msg_ __VA_OPT__(<< __VA_ARGS__));                          \
    ::dhtlb::support::contract_failure("DHTLB_UNREACHABLE",                 \
                                       "reached unreachable code",          \
                                       __FILE__, __LINE__,                  \
                                       dhtlb_msg_.str());                   \
  } while (0)

// DHTLB_ASSERT is live whenever the build keeps debug checks (no NDEBUG)
// or explicitly opts into auditing (DHTLB_AUDIT=ON ⇒ DHTLB_AUDIT_ENABLED).
#if defined(DHTLB_AUDIT_ENABLED) || !defined(NDEBUG)
#define DHTLB_ASSERT_ACTIVE 1
#define DHTLB_ASSERT(cond, ...) \
  DHTLB_CONTRACT_IMPL_("DHTLB_ASSERT", cond, #cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define DHTLB_ASSERT_ACTIVE 0
#define DHTLB_ASSERT(cond, ...) ((void)0)
#endif
