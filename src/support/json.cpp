#include "support/json.hpp"

#include <cinttypes>
#include <cstdio>

namespace dhtlb::support {

void json_append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void json_append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace dhtlb::support
