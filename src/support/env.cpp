#include "support/env.hpp"

#include <cstdlib>

namespace dhtlb::support {

std::uint64_t env_u64(const std::string& name, std::uint64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return v;
}

std::size_t env_trials(std::size_t fallback) {
  const std::uint64_t v = env_u64("DHTLB_TRIALS", 0);
  return v == 0 ? fallback : static_cast<std::size_t>(v);
}

std::uint64_t env_seed() { return env_u64("DHTLB_SEED", 0x5EEDBA5EULL); }

std::size_t env_threads() {
  return static_cast<std::size_t>(env_u64("DHTLB_THREADS", 0));
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  return raw;
}

bool env_flag(const std::string& name, bool fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::string v(raw);
  return !(v == "0" || v == "false" || v == "off");
}

}  // namespace dhtlb::support
