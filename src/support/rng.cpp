#include "support/rng.hpp"

#include "support/check.hpp"
#include "support/ring_math.hpp"

namespace dhtlb::support {

Uint160 Rng::uniform_in_arc(const Uint160& a, const Uint160& b) {
  // Rejection sampling over the whole ring would be hopeless for narrow
  // arcs, so sample an offset in [1, distance) directly.  The arc length
  // of a realistic DHT gap always fits far below 2^160, but we handle the
  // general case by sampling each limb and rejecting the (rare) overshoot.
  if (a == b) {
    // Full ring: any ID except a itself.
    Uint160 candidate = uniform_u160();
    while (candidate == a) candidate = uniform_u160();
    return candidate;
  }
  const Uint160 span = clockwise_distance(a, b);
  DHTLB_CHECK(span > Uint160{1},
              "uniform_in_arc: open arc (" << a << ", " << b
                                           << ") contains no ID");
  // Sample offset uniformly in [1, span - 1] == 1 + uniform in [0, span-1).
  const Uint160 bound = span - Uint160{1};  // number of interior IDs
  // Small bounds go through Lemire's method directly.
  if (bound.high64() == 0 && bound.limbs()[2] == 0) {
    const std::uint64_t off = below(bound.low64());
    return a + Uint160{off + 1};
  }
  // Wide bounds: rejection-sample from the smallest power-of-two window
  // covering the bound (acceptance >= 1/2, so ~2 expected draws).
  // Rejecting from the full 2^160 space instead would need 2^160/bound
  // draws — catastrophic for the narrow arcs Sybil placement works with.
  const int window_shift = Uint160::kBits - bound.bit_length();
  Uint160 draw = uniform_u160().shr(window_shift);
  while (!(draw < bound)) draw = uniform_u160().shr(window_shift);
  return a + draw + Uint160{1};
}

}  // namespace dhtlb::support
