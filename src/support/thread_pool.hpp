// Minimal fixed-size thread pool for embarrassingly parallel trial fans.
//
// The experiment harness runs N independent simulation trials; each trial
// is seeded deterministically, so results are identical regardless of the
// execution order or degree of parallelism.  This pool provides exactly
// what that needs — submit, wait-for-all, and a parallel_for convenience —
// and nothing speculative (no futures-of-futures, no priorities).
//
// Locking discipline is compiler-checked: the queue and its bookkeeping
// are GUARDED_BY(mutex_), so a Clang -Wthread-safety build rejects any
// future code path that touches them unlocked (see support/sync.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "support/sync.hpp"

namespace dhtlb::support {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means hardware concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task.  Tasks must not throw: an exception escaping a
  /// task is caught by the worker, reported to stderr (including the
  /// exception's what(), when it has one), and the process aborts
  /// deterministically (simulation code reports errors through return
  /// values, not exceptions crossing thread boundaries).
  void submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished executing.
  void wait_idle() EXCLUDES(mutex_);

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), distributing across the pool, and blocks
  /// until all iterations complete.  fn must be safe to call concurrently
  /// for distinct i.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn)
      EXCLUDES(mutex_);

 private:
  void worker_loop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
  std::size_t in_flight_ GUARDED_BY(mutex_) = 0;  // queued + executing
  bool stopping_ GUARDED_BY(mutex_) = false;
};

}  // namespace dhtlb::support
