// Plain-text table rendering for paper-style result tables.
//
// Every bench binary that regenerates a table from the paper prints a
// fixed-width ASCII table with the same rows/columns the paper reports,
// so shapes can be compared side by side with the original.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dhtlb::support {

/// Column-aligned text table.  Cells are strings; numeric formatting is
/// the caller's job (keeps this class format-policy free).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule and two-space column gutters.
  std::string render() const;

  /// Renders as RFC-4180-ish CSV (commas, quoted only when needed).
  std::string render_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits (fixed notation).
std::string format_fixed(double v, int digits);

/// Formats counts with thousands separators for readability (1,000,000).
std::string format_count(std::uint64_t v);

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace dhtlb::support
