// Deterministic pseudo-random number generation for simulations.
//
// Reproducibility is load-bearing for this project: every experiment in
// EXPERIMENTS.md must regenerate identically given the same base seed, and
// trials must be independent when run concurrently.  We therefore avoid
// std::random_device / global engines entirely.  Each trial owns an Rng
// seeded by mix(base_seed, trial_index); all stochastic choices flow
// through it.
//
// The engine is xoshiro256** (Blackman & Vigna) seeded via splitmix64 —
// the standard recommendation for seeding-sensitive simulations, far
// better distributed than a raw LCG and much faster than mt19937_64.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "support/uint160.hpp"

namespace dhtlb::support {

/// splitmix64 step: used both as a stand-alone mixer and as the seeding
/// routine for the main engine.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit values into one; used to derive per-trial seeds so
/// that (base_seed, trial) pairs give decorrelated streams.
constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL);
  return splitmix64(s) ^ splitmix64(s);
}

/// Folds a label path into a seed: stream_seed(seed, a, b, c) is
/// mix_seed(mix_seed(mix_seed(seed, a), b), c).  This is how the parallel
/// tick engine derives its per-(tick, phase, shard) RNG streams: every
/// level of the path decorrelates independently, so sibling streams never
/// overlap and the derivation depends only on logical labels — never on
/// thread count or execution order.
template <typename... Salts>
constexpr std::uint64_t stream_seed(std::uint64_t seed, Salts... salts) {
  ((seed = mix_seed(seed, static_cast<std::uint64_t>(salts))), ...);
  return seed;
}

/// xoshiro256** engine.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0, 1]).
  constexpr bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Uniform integer in [0, n) via Lemire's unbiased multiply-shift
  /// rejection method.  n must be nonzero.
  constexpr std::uint64_t below(std::uint64_t n) {
    // 128-bit multiply; __uint128_t is available on all GCC/Clang targets
    // this project supports (__extension__ silences the pedantic warning).
    __extension__ using U128 = unsigned __int128;
    auto mul = [](std::uint64_t a, std::uint64_t b) {
      return static_cast<U128>(a) * b;
    };
    std::uint64_t x = (*this)();
    U128 m = mul(x, n);
    auto low = static_cast<std::uint64_t>(m);
    if (low < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (low < threshold) {
        x = (*this)();
        m = mul(x, n);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform 160-bit value: a uniformly random point on the Chord ring.
  Uint160 uniform_u160() {
    std::array<std::uint8_t, 20> bytes{};
    std::uint64_t words[3] = {(*this)(), (*this)(), (*this)()};
    for (std::size_t i = 0; i < 20; ++i) {
      bytes[i] = static_cast<std::uint8_t>(words[i / 8] >> ((i % 8) * 8));
    }
    return Uint160::from_bytes(bytes);
  }

  /// Uniform ID strictly inside the open ring arc (a, b); requires the
  /// arc to contain at least one ID (distance(a, b) >= 2 or a == b).
  Uint160 uniform_in_arc(const Uint160& a, const Uint160& b);

  /// Forks an independent child stream (e.g. one per simulated entity)
  /// whose sequence is decorrelated from the parent's continuation.
  Rng fork() { return Rng{mix_seed((*this)(), (*this)())}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dhtlb::support
