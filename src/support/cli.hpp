// Minimal command-line flag parser for the driver binaries.
//
// Supports `--flag value`, `--flag=value` and boolean `--flag` forms,
// with typed accessors, defaults, and a generated --help text.  No
// external dependencies, no global state; deliberately small — the
// drivers need a dozen flags, not a framework.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dhtlb::support {

class CliParser {
 public:
  /// Registers a flag before parsing.  `value_name` empty = boolean flag.
  void add_flag(const std::string& name, const std::string& value_name,
                const std::string& default_value,
                const std::string& description);

  /// Parses argv.  Returns false (with a message in error()) on unknown
  /// flags, missing values, or repeated flags.  Positional arguments are
  /// collected in positionals().
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::uint64_t get_u64(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Comma-separated integers, e.g. "--snapshots 0,5,35".
  std::vector<std::uint64_t> get_u64_list(const std::string& name) const;

  const std::vector<std::string>& positionals() const { return positionals_; }
  const std::string& error() const { return error_; }

  /// Usage text generated from the registered flags.
  std::string help(const std::string& program,
                   const std::string& summary) const;

 private:
  struct Flag {
    std::string value_name;  // empty = boolean
    std::string default_value;
    std::string description;
    std::optional<std::string> parsed;
  };

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;  // registration order, for help()
  std::vector<std::string> positionals_;
  std::string error_;
};

}  // namespace dhtlb::support
