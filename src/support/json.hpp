// Byte-stable JSON fragment formatting, shared by every structured
// writer in the repo (bench telemetry, observability metrics/traces).
//
// All three helpers append to a caller-owned string: escaping covers
// exactly what our labels can contain (quotes, backslashes, control
// characters), doubles print with %.17g so equal values always produce
// equal bytes, and integers print in decimal.  Centralizing them keeps
// the "equal inputs => byte-equal files" guarantee in one place.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dhtlb::support {

/// Appends `s` as a quoted, escaped JSON string.
void json_append_escaped(std::string& out, std::string_view s);

/// Appends `v` with %.17g (round-trips every double exactly).
void json_append_double(std::string& out, double v);

/// Appends `v` in decimal.
void json_append_u64(std::string& out, std::uint64_t v);

}  // namespace dhtlb::support
