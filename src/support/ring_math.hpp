// Interval and distance logic on the Chord identifier circle.
//
// Chord's correctness conditions are phrased in terms of membership in
// (half-)open arcs of the ring, e.g. "key k belongs to node n iff
// k ∈ (predecessor(n), n]".  These predicates must handle wrap-around
// (arcs that cross zero) and the degenerate single-node arc where both
// endpoints coincide (which denotes the *full* ring, not the empty set).
#pragma once

#include "support/uint160.hpp"

namespace dhtlb::support {

/// Bit index of the half-ring offset (2^159): adding it to an ID yields
/// the point diametrically opposite on the 2^160 ring.
inline constexpr int kAntipodeBit = Uint160::kBits - 1;

/// True iff x lies in the open arc (a, b) walking clockwise from a to b.
/// When a == b the arc is the whole ring minus the endpoint (Chord's
/// convention for a ring with a single node).
constexpr bool in_open_arc(const Uint160& x, const Uint160& a,
                           const Uint160& b) {
  if (a == b) return x != a;        // full ring minus the single endpoint
  if (a < b) return a < x && x < b;
  return x > a || x < b;            // arc wraps through zero
}

/// True iff x lies in the half-open arc (a, b], clockwise.  This is the
/// ownership arc of a Chord node with ID b and predecessor a.
constexpr bool in_half_open_arc(const Uint160& x, const Uint160& a,
                                const Uint160& b) {
  if (a == b) return true;          // single node owns the entire ring
  if (a < b) return a < x && x <= b;
  return x > a || x <= b;
}

/// True iff x lies in the half-open arc [a, b), clockwise.
constexpr bool in_left_closed_arc(const Uint160& x, const Uint160& a,
                                  const Uint160& b) {
  if (a == b) return true;
  if (a < b) return a <= x && x < b;
  return x >= a || x < b;
}

/// Clockwise distance from a to b: the number of ring steps walking in
/// increasing-ID direction.  Always in [0, 2^160); distance(a, a) == 0.
constexpr Uint160 clockwise_distance(const Uint160& a, const Uint160& b) {
  return b - a;  // wrapping subtraction mod 2^160 is exactly ring distance
}

/// Size of the ownership arc (a, b]; a == b denotes the full ring, whose
/// size 2^160 is not representable, so we return 2^160 - 1 as a saturated
/// stand-in (callers compare arc sizes, never sum them).
constexpr Uint160 arc_size(const Uint160& a, const Uint160& b) {
  if (a == b) return Uint160::max();
  return clockwise_distance(a, b);
}

/// The ID halfway along the clockwise arc from a to b.  For a == b (full
/// ring) this is the antipode of a.  The midpoint is strictly inside the
/// open arc whenever the arc has length >= 2.
constexpr Uint160 arc_midpoint(const Uint160& a, const Uint160& b) {
  if (a == b) return a + Uint160::pow2(kAntipodeBit);  // full ring
  return a + clockwise_distance(a, b).shr(1);
}

/// Maps an ID to an angle fraction in [0, 1) for unit-circle plots, per
/// the paper's Figures 2-3: x = sin(2*pi*f), y = cos(2*pi*f).
inline double ring_fraction(const Uint160& id) {
  return id.to_unit_interval();
}

/// Maps an ID to one of `shards` equal contiguous arcs of the ring:
/// shard s covers [s/shards, (s+1)/shards) of the identifier circle.
/// The top 64 bits decide the arc (a 2^-64 granularity boundary error is
/// impossible for shard counts far below 2^64), via the same
/// multiply-shift trick Rng::below uses.  SHA-1 IDs are uniform, so the
/// arcs are balanced in expectation — this is the partition the parallel
/// tick engine shards the ring by.
constexpr std::size_t arc_shard(const Uint160& id, std::size_t shards) {
  __extension__ using U128 = unsigned __int128;
  return static_cast<std::size_t>(
      static_cast<U128>(id.high64()) * shards >> 64);
}

}  // namespace dhtlb::support
