#include "support/cli.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace dhtlb::support {

void CliParser::add_flag(const std::string& name,
                         const std::string& value_name,
                         const std::string& default_value,
                         const std::string& description) {
  if (flags_.contains(name)) {
    throw std::logic_error("CliParser: duplicate flag --" + name);
  }
  flags_[name] = Flag{value_name, default_value, description, std::nullopt};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (!token.starts_with("--")) {
      positionals_.push_back(std::move(token));
      continue;
    }
    token.erase(0, 2);
    std::optional<std::string> inline_value;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      inline_value = token.substr(eq + 1);
      token.resize(eq);
    }
    auto it = flags_.find(token);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + token;
      return false;
    }
    Flag& flag = it->second;
    if (flag.parsed) {
      error_ = "flag --" + token + " given more than once";
      return false;
    }
    if (flag.value_name.empty()) {
      // Boolean: accepts --flag or --flag=true/false.
      flag.parsed = inline_value.value_or("true");
    } else if (inline_value) {
      flag.parsed = *inline_value;
    } else if (i + 1 < argc) {
      flag.parsed = argv[++i];
    } else {
      error_ = "flag --" + token + " needs a value";
      return false;
    }
  }
  return true;
}

bool CliParser::has(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.parsed.has_value();
}

std::string CliParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::logic_error("CliParser: unregistered flag --" + name);
  }
  return it->second.parsed.value_or(it->second.default_value);
}

std::uint64_t CliParser::get_u64(const std::string& name) const {
  const std::string raw = get(name);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + name + ": not an integer: " + raw);
  }
  return v;
}

double CliParser::get_double(const std::string& name) const {
  const std::string raw = get(name);
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0') {
    throw std::invalid_argument("--" + name + ": not a number: " + raw);
  }
  return v;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string raw = get(name);
  if (raw == "true" || raw == "1" || raw == "yes") return true;
  if (raw == "false" || raw == "0" || raw == "no" || raw.empty())
    return false;
  throw std::invalid_argument("--" + name + ": not a boolean: " + raw);
}

std::vector<std::uint64_t> CliParser::get_u64_list(
    const std::string& name) const {
  std::vector<std::uint64_t> out;
  std::istringstream in(get(name));
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0') {
      throw std::invalid_argument("--" + name + ": bad list item: " + item);
    }
    out.push_back(v);
  }
  return out;
}

std::string CliParser::help(const std::string& program,
                            const std::string& summary) const {
  std::ostringstream out;
  out << summary << "\n\nusage: " << program << " [flags]\n\n";
  for (const auto& name : order_) {
    const Flag& flag = flags_.at(name);
    std::string left = "  --" + name;
    if (!flag.value_name.empty()) left += " <" + flag.value_name + ">";
    out << left;
    if (left.size() < 28) out << std::string(28 - left.size(), ' ');
    out << flag.description;
    if (!flag.default_value.empty()) {
      out << " (default: " << flag.default_value << ")";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace dhtlb::support
