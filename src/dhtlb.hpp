// Umbrella header: the full public API of the dhtlb library.
//
// Fine-grained headers remain the preferred includes for library code;
// this header exists for quick experiments and example snippets.
#pragma once

// 160-bit ring arithmetic, RNG, utilities.
#include "support/cli.hpp"        // IWYU pragma: export
#include "support/env.hpp"        // IWYU pragma: export
#include "support/ring_math.hpp"  // IWYU pragma: export
#include "support/rng.hpp"        // IWYU pragma: export
#include "support/table.hpp"      // IWYU pragma: export
#include "support/thread_pool.hpp"  // IWYU pragma: export
#include "support/uint160.hpp"    // IWYU pragma: export

// SHA-1 and ring key generation.
#include "hashing/sha1.hpp"  // IWYU pragma: export

// Statistics and distribution diagnostics.
#include "stats/descriptive.hpp"       // IWYU pragma: export
#include "stats/distribution_fit.hpp"  // IWYU pragma: export
#include "stats/histogram.hpp"         // IWYU pragma: export
#include "stats/load_metrics.hpp"      // IWYU pragma: export

// Chord protocol substrate.
#include "chord/compute.hpp"          // IWYU pragma: export
#include "chord/network.hpp"          // IWYU pragma: export
#include "chord/node.hpp"             // IWYU pragma: export
#include "chord/sybil_placement.hpp"  // IWYU pragma: export

// Tick simulator.
#include "sim/backup.hpp"    // IWYU pragma: export
#include "sim/engine.hpp"    // IWYU pragma: export
#include "sim/params.hpp"    // IWYU pragma: export
#include "sim/snapshot.hpp"  // IWYU pragma: export
#include "sim/strategy.hpp"  // IWYU pragma: export
#include "sim/world.hpp"     // IWYU pragma: export

// Load-balancing strategies (the paper's four + extensions).
#include "lb/factory.hpp"  // IWYU pragma: export

// Experiments and reporting.
#include "exp/experiment.hpp"  // IWYU pragma: export
#include "exp/report.hpp"      // IWYU pragma: export

// Visualization.
#include "viz/ascii_hist.hpp"   // IWYU pragma: export
#include "viz/ring_layout.hpp"  // IWYU pragma: export
#include "viz/series.hpp"       // IWYU pragma: export
