// Invitation (§IV-D) — the reactive strategy.
//
// Roles are reversed relative to the injection strategies: a node that
// is OVERBURDENED (workload strictly above the sybilThreshold, per §IV-D
// "nodes determine whether or not they are overburdened using the
// sybilThreshold parameter") announces to its predecessor list that it
// needs help.  Among the predecessors whose own workload is at or below
// the sybilThreshold and who still have Sybil capacity, the least loaded
// one accepts, creating a Sybil at the midpoint of the announcer's
// most-loaded arc — taking about half its keys.  The invitation is
// refused (counted, no Sybil) when no predecessor qualifies.
//
// Because queries and injections happen only on demand, this strategy
// generates far less traffic than the proactive ones — the trade-off the
// paper highlights.
#pragma once

#include "lb/common.hpp"
#include "sim/strategy.hpp"

namespace dhtlb::lb {

class Invitation final : public sim::Strategy {
 public:
  std::string_view name() const override { return "invitation"; }

  void decide(sim::World& world, support::Rng& rng,
              sim::StrategyCounters& counters) override;

 private:
  std::vector<sim::NodeIndex> order_;  // reused visitation-order buffer
};

}  // namespace dhtlb::lb
