// Strategy factory: name-keyed construction for the experiment harness,
// benches, and examples.
//
// Names match the paper's vocabulary:
//   "none"                      baseline, no balancing (§VI preamble)
//   "churn"                     Induced Churn — returns no Sybil policy;
//                               set Params::churn_rate > 0 (§IV-A)
//   "random-injection"          §IV-B
//   "neighbor-injection"        §IV-C, estimating variant
//   "smart-neighbor-injection"  §IV-C, querying variant
//   "invitation"                §IV-D
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "sim/strategy.hpp"

namespace dhtlb::lb {

/// Builds a strategy by name; "none" and "churn" yield nullptr (the
/// engine treats a null strategy as "no Sybil policy").  Throws
/// std::invalid_argument for unknown names.
std::unique_ptr<sim::Strategy> make_strategy(std::string_view name);

/// All strategy names accepted by make_strategy, in paper order.
std::vector<std::string_view> strategy_names();

/// Future-work extensions (§VII): "strength-aware" (strength as a
/// factor in acquisition) and "chosen-id-neighbor"/"chosen-id-global"
/// (nodes may pick Sybil IDs, enabling exact median splits).
std::vector<std::string_view> extension_strategy_names();

}  // namespace dhtlb::lb
