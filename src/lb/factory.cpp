#include "lb/factory.hpp"

#include <stdexcept>
#include <string>

#include "lb/chosen_id.hpp"
#include "lb/invitation.hpp"
#include "lb/item_balance.hpp"
#include "lb/neighbor_injection.hpp"
#include "lb/random_injection.hpp"
#include "lb/strength_aware.hpp"

namespace dhtlb::lb {

std::unique_ptr<sim::Strategy> make_strategy(std::string_view name) {
  if (name == "none" || name == "churn") return nullptr;
  if (name == "random-injection") {
    return std::make_unique<RandomInjection>();
  }
  if (name == "neighbor-injection") {
    return std::make_unique<NeighborInjection>(
        NeighborInjection::Mode::kEstimate);
  }
  if (name == "smart-neighbor-injection") {
    return std::make_unique<NeighborInjection>(
        NeighborInjection::Mode::kSmart);
  }
  if (name == "invitation") return std::make_unique<Invitation>();
  // Future-work extensions (paper §VII), not part of the original four:
  if (name == "strength-aware") return std::make_unique<StrengthAware>();
  if (name == "chosen-id-neighbor") {
    return std::make_unique<ChosenIdSplit>(ChosenIdSplit::Scope::kNeighborhood);
  }
  if (name == "chosen-id-global") {
    return std::make_unique<ChosenIdSplit>(ChosenIdSplit::Scope::kGlobal);
  }
  // Non-Sybil neighbor-move family (Chawachat & Fakcharoenphol):
  if (name == "item-balance") return std::make_unique<ItemBalance>(2);
  if (name == "item-balance-conservative") {
    return std::make_unique<ItemBalance>(4);
  }
  throw std::invalid_argument("unknown strategy: " + std::string(name));
}

std::vector<std::string_view> strategy_names() {
  return {"none",
          "churn",
          "random-injection",
          "neighbor-injection",
          "smart-neighbor-injection",
          "invitation"};
}

std::vector<std::string_view> extension_strategy_names() {
  return {"strength-aware", "chosen-id-neighbor", "chosen-id-global",
          "item-balance", "item-balance-conservative"};
}

}  // namespace dhtlb::lb
