#include "lb/strength_aware.hpp"

#include <optional>

#include "hashing/sha1.hpp"
#include "support/ring_math.hpp"

namespace dhtlb::lb {

std::uint64_t StrengthAware::appetite(const sim::World& world,
                                      sim::NodeIndex idx) {
  const std::uint64_t strength = world.physical(idx).strength;
  // strength-1 nodes reduce to the plain sybilThreshold; a strength-s
  // node stays hungry while it has less than s ticks of work queued.
  return strength * world.params().sybil_threshold + (strength - 1);
}

void StrengthAware::decide(sim::World& world, support::Rng& rng,
                           sim::StrategyCounters& counters) {
  shuffled_alive_into(world, rng, order_);
  for (const sim::NodeIndex idx : order_) {
    retire_idle_sybils(world, idx, counters);
    if (world.workload(idx) > appetite(world, idx)) continue;
    if (world.sybil_count(idx) >= world.sybil_cap(idx)) continue;

    const unsigned my_strength = world.physical(idx).strength;
    const support::Uint160 self = world.physical(idx).vnode_ids.front();

    // Probe the successor list for the most loaded foreign arc (the
    // smart-neighbor information model: one query per successor).
    std::optional<sim::ArcView> target;
    for (const sim::ArcView& arc :
         world.successor_arcs(self, world.params().num_successors)) {
      ++counters.workload_queries;
      if (arc.owner == idx || arc.task_count == 0) continue;
      if (!target || arc.task_count > target->task_count) target = arc;
    }

    if (!target) {
      // Dry neighborhood: fall back to a random global placement so the
      // node is not condemned to idle (Random Injection behavior).
      const auto id = hashing::Sha1::hash_u64(rng());
      if (const auto acquired = world.create_sybil(idx, id)) {
        record_placement(*acquired, counters);
      }
      continue;
    }

    const support::Uint160 span =
        support::clockwise_distance(target->pred, target->id);
    if (span <= support::Uint160{1}) continue;

    // Strength-weighted split: take strength/(strength + owner strength)
    // of the arc.  Keys are uniform within the arc, so the expected key
    // share matches the distance share.  Division first avoids the
    // mod-2^160 wrap a multiply-first order would risk.
    const unsigned owner_strength =
        world.physical(target->owner).strength;
    const std::uint32_t denom = my_strength + owner_strength;
    support::Uint160 offset = span.div_small(denom).mul_small(my_strength);
    if (offset.is_zero()) offset = support::Uint160{1};
    const support::Uint160 placement = target->pred + offset;
    if (placement == target->id) continue;  // arc too small to share

    if (const auto acquired = world.create_sybil(idx, placement)) {
      record_placement(*acquired, counters);
    }
  }
}

}  // namespace dhtlb::lb
