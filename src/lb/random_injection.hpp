// Random Injection (§IV-B) — the paper's best-performing strategy.
//
// On each decision tick (every 5 ticks), every node whose workload is at
// or below the sybilThreshold creates ONE Sybil at a random SHA-1
// address, up to its Sybil cap.  A node holding Sybils but no work
// retires them first.  Placement is global-random: the Sybil lands in an
// arbitrary arc of the ring, which statistically targets the largest
// (and hence most loaded) arcs — the same mechanism that makes churn
// balance the network, but without ever removing a worker.
#pragma once

#include "lb/common.hpp"
#include "sim/strategy.hpp"

namespace dhtlb::lb {

class RandomInjection final : public sim::Strategy {
 public:
  std::string_view name() const override { return "random-injection"; }

  void decide(sim::World& world, support::Rng& rng,
              sim::StrategyCounters& counters) override;

 private:
  std::vector<sim::NodeIndex> order_;  // reused visitation-order buffer
};

}  // namespace dhtlb::lb
