// Shared building blocks for the Sybil-based strategies (§IV-B/C/D).
//
// All three injection strategies share the same per-node preamble on a
// decision tick: retire Sybils when the node is idle, check the
// sybilThreshold and the Sybil cap, and (on success) place exactly one
// new Sybil.  The placement policy is what differentiates them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/strategy.hpp"
#include "sim/world.hpp"
#include "support/rng.hpp"

namespace dhtlb::lb {

/// §IV-B: "If a node has at least one Sybil, but no work, it has its
/// Sybils quit the network."  Applied by every Sybil strategy at the
/// start of its per-node decision.  Returns the number retired.
///
/// Aggressive-retirement knob (DHTLB_SYBIL_RETIRE=<cap>): under
/// sustained overload the paper's rule never fires — nodes are never
/// idle — so Sybil populations only ever grow toward maxSybils, and at
/// million-node scale the vnode count (and its memory) grows with
/// them.  With a nonzero cap, a node holding >= cap Sybils retires
/// them even while loaded (its queued tasks are unaffected; only the
/// surplus ring presence goes).  The default cap 0 disables the knob
/// entirely, keeping the paper's semantics and every committed golden
/// byte-identical.
std::uint64_t retire_idle_sybils(sim::World& world, sim::NodeIndex idx,
                                 sim::StrategyCounters& counters);

/// Test override for the DHTLB_SYBIL_RETIRE cap: a value forces the
/// cap (bypassing the env cache), nullopt restores env behavior.
void set_sybil_retire_cap_for_testing(std::optional<std::uint64_t> cap);

/// True iff `idx` may create a Sybil this round: workload at or below
/// the sybilThreshold and Sybil count below the cap (maxSybils /
/// strength, §V-B).
bool may_create_sybil(const sim::World& world, sim::NodeIndex idx);

/// Records the outcome of a placement in the counters.
void record_placement(std::uint64_t acquired,
                      sim::StrategyCounters& counters);

/// The alive node indices in a random visitation order.  Decision rounds
/// visit nodes in random order so no physical node is systematically
/// first to grab work (the paper's nodes act concurrently).
std::vector<sim::NodeIndex> shuffled_alive(const sim::World& world,
                                           support::Rng& rng);

/// Allocation-free variant: fills `out` (reusing its capacity) with the
/// alive indices in the same shuffled order shuffled_alive() returns.
/// Strategies call this every decision round with a member scratch
/// buffer, so the per-round O(alive) allocation disappears.
void shuffled_alive_into(const sim::World& world, support::Rng& rng,
                         std::vector<sim::NodeIndex>& out);

}  // namespace dhtlb::lb
