// Neighbor Injection (§IV-C), in both variants.
//
// An under-utilized node restricts its search to its successor list
// (numSuccessors entries), limiting network traffic relative to Random
// Injection:
//
//  * Estimating (default): pick the successor with the LARGEST ownership
//    arc — a zero-message heuristic assuming big arc => much work — and
//    drop a Sybil at a random ID inside that arc.
//  * Smart: query every successor for its actual task count (one message
//    each, counted), then split the most-loaded successor's arc at its
//    midpoint, taking about half its keys.
//
// Optional (§IV-C's suggestion, off by default): after a placement that
// acquired no work, mark that successor's arc invalid so later rounds
// skip it instead of spamming the same empty gap.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "lb/common.hpp"
#include "sim/strategy.hpp"
#include "support/uint160.hpp"

namespace dhtlb::lb {

class NeighborInjection final : public sim::Strategy {
 public:
  enum class Mode {
    kEstimate,  // largest successor arc, no queries
    kSmart,     // query successors, split the most loaded
  };

  explicit NeighborInjection(Mode mode) : mode_(mode) {}

  std::string_view name() const override {
    return mode_ == Mode::kEstimate ? "neighbor-injection"
                                    : "smart-neighbor-injection";
  }

  void decide(sim::World& world, support::Rng& rng,
              sim::StrategyCounters& counters) override;

 private:
  struct U160Hash {
    std::size_t operator()(const support::Uint160& v) const {
      return static_cast<std::size_t>(v.low64() ^ v.high64());
    }
  };

  Mode mode_;
  std::vector<sim::NodeIndex> order_;  // reused visitation-order buffer
  // Arcs (keyed by their owning vnode ID) a given physical node has
  // marked invalid after a fruitless placement.  Only consulted when
  // params.mark_failed_ranges is set.  Both containers are probed with
  // contains()/insert() only — never iterated — so their unordered
  // layout cannot reach goldens.
  // dhtlb:lint-allow(unordered-iteration)
  using MarkedArcs = std::unordered_set<support::Uint160, U160Hash>;
  // dhtlb:lint-allow(unordered-iteration)
  std::unordered_map<sim::NodeIndex, MarkedArcs> invalid_;
};

}  // namespace dhtlb::lb
