#include "lb/random_injection.hpp"

#include "hashing/sha1.hpp"

namespace dhtlb::lb {

void RandomInjection::decide(sim::World& world, support::Rng& rng,
                             sim::StrategyCounters& counters) {
  shuffled_alive_into(world, rng, order_);
  for (const sim::NodeIndex idx : order_) {
    retire_idle_sybils(world, idx, counters);
    if (!may_create_sybil(world, idx)) continue;
    // "Creating a Sybil node at a random address": a fresh SHA-1 ID, the
    // same generator real joins use (§V).  One Sybil per decision, to
    // avoid overwhelming the network (§IV-B).
    const auto id = hashing::Sha1::hash_u64(rng());
    if (const auto acquired = world.create_sybil(idx, id)) {
      record_placement(*acquired, counters);
    }
  }
}

}  // namespace dhtlb::lb
