// Strength-aware balancing — the paper's first future-work direction.
//
// §VII: heterogeneous networks balanced *load* but not *efficiency*,
// because weak nodes acquired work from strong nodes and then took
// longer to finish it.  "An avenue for future work could consider the
// node strength as a factor."  This strategy does exactly that, in two
// ways, both still using only local information:
//
//  1. Proportional appetite: a node's Sybil trigger compares its
//     workload to strength * sybilThreshold + strength - 1 — i.e. a
//     strength-s node seeks more work while it still has up to s-1
//     tasks in flight, keeping strong machines saturated.
//  2. Strength-weighted acquisition: when an overburdened node's
//     predecessors compete to help (the Invitation shape), the winner
//     is the one with the lowest workload *per unit of strength*, and
//     the Sybil splits the arc at the point that hands the helper a
//     share proportional to its strength — a strength-s helper takes
//     s/(s+1) ... no: takes strength/(strength + owner_strength) of the
//     keys, so a weak helper takes little from a strong owner and a
//     strong helper takes a lot from a weak owner.
//
// In a homogeneous network both rules reduce exactly to Random
// Injection + Invitation hybrid behavior, so the strategy is a strict
// generalization.
#pragma once

#include "lb/common.hpp"
#include "sim/strategy.hpp"

namespace dhtlb::lb {

class StrengthAware final : public sim::Strategy {
 public:
  std::string_view name() const override { return "strength-aware"; }

  void decide(sim::World& world, support::Rng& rng,
              sim::StrategyCounters& counters) override;

 private:
  /// Appetite threshold for a node: how much residual work still counts
  /// as "hungry" given its strength.
  static std::uint64_t appetite(const sim::World& world,
                                sim::NodeIndex idx);

  std::vector<sim::NodeIndex> order_;  // reused visitation-order buffer
};

}  // namespace dhtlb::lb
