#include "lb/common.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/env.hpp"

namespace dhtlb::lb {

namespace {

std::optional<std::uint64_t> g_retire_cap_override;

/// DHTLB_SYBIL_RETIRE, read once (decision rounds call this per node;
/// a getenv there would dominate).  0 = disabled.
std::uint64_t sybil_retire_cap() {
  if (g_retire_cap_override) return *g_retire_cap_override;
  static const std::uint64_t cap = support::env_u64("DHTLB_SYBIL_RETIRE", 0);
  return cap;
}

}  // namespace

void set_sybil_retire_cap_for_testing(std::optional<std::uint64_t> cap) {
  g_retire_cap_override = cap;
}

std::uint64_t retire_idle_sybils(sim::World& world, sim::NodeIndex idx,
                                 sim::StrategyCounters& counters) {
  const std::uint64_t sybils = world.sybil_count(idx);
  if (sybils == 0) return 0;
  const std::uint64_t cap = sybil_retire_cap();
  const bool aggressive = cap != 0 && sybils >= cap;
  if (world.workload(idx) != 0 && !aggressive) return 0;
  world.remove_sybils(idx);
  DHTLB_ASSERT(world.sybil_count(idx) == 0,
               "retire_idle_sybils: node " << idx
                                           << " still holds Sybils after"
                                              " retirement");
  counters.sybils_retired += sybils;
  return sybils;
}

bool may_create_sybil(const sim::World& world, sim::NodeIndex idx) {
  return world.workload(idx) <= world.params().sybil_threshold &&
         world.sybil_count(idx) < world.sybil_cap(idx);
}

void record_placement(std::uint64_t acquired,
                      sim::StrategyCounters& counters) {
  ++counters.sybils_created;
  counters.tasks_acquired_by_sybils += acquired;
  if (acquired == 0) ++counters.failed_placements;
}

std::vector<sim::NodeIndex> shuffled_alive(const sim::World& world,
                                           support::Rng& rng) {
  std::vector<sim::NodeIndex> order;
  shuffled_alive_into(world, rng, order);
  return order;
}

void shuffled_alive_into(const sim::World& world, support::Rng& rng,
                         std::vector<sim::NodeIndex>& out) {
  out = world.alive_indices();
  // Fisher-Yates with the simulation's own RNG (std::shuffle's output is
  // implementation-defined, which would break cross-platform determinism).
  for (std::size_t i = out.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(out[i - 1], out[j]);
  }
}

}  // namespace dhtlb::lb
