#include "lb/invitation.hpp"

#include <optional>

#include "support/ring_math.hpp"

namespace dhtlb::lb {

void Invitation::decide(sim::World& world, support::Rng& rng,
                        sim::StrategyCounters& counters) {
  const std::uint64_t threshold = world.params().sybil_threshold;
  shuffled_alive_into(world, rng, order_);
  for (const sim::NodeIndex idx : order_) {
    retire_idle_sybils(world, idx, counters);
    if (world.workload(idx) <= threshold) continue;  // not overburdened

    // Find the announcer's most-loaded vnode: that is the arc worth
    // splitting (purely local information).
    const auto& vnode_ids = world.physical(idx).vnode_ids;
    std::optional<sim::ArcView> heavy;
    for (const auto& vid : vnode_ids) {
      const sim::ArcView arc = world.arc_of(vid);
      if (!heavy || arc.task_count > heavy->task_count) heavy = arc;
    }
    if (!heavy || heavy->task_count == 0) continue;
    const support::Uint160 span =
        support::clockwise_distance(heavy->pred, heavy->id);
    if (span <= support::Uint160{1}) continue;  // nowhere to stand

    // Announce to the predecessor list of that vnode (§V-B: nodes track
    // numSuccessors predecessors too).  Allocation-free arc walk.
    ++counters.invitations_sent;

    // The helper: least-loaded DISTINCT physical owner at or below the
    // threshold with spare Sybil capacity.
    std::optional<sim::NodeIndex> helper;
    std::uint64_t helper_load = 0;
    for (const sim::ArcView& parc :
         world.predecessor_arcs(heavy->id, world.params().num_successors)) {
      if (parc.owner == idx) continue;  // don't invite ourselves
      const std::uint64_t load = world.workload(parc.owner);
      if (load > threshold) continue;
      if (world.sybil_count(parc.owner) >=
          world.sybil_cap(parc.owner)) {
        continue;
      }
      if (!helper || load < helper_load) {
        helper = parc.owner;
        helper_load = load;
      }
    }
    if (!helper) continue;  // §IV-D: the invitation may be refused

    const support::Uint160 placement =
        support::arc_midpoint(heavy->pred, heavy->id);
    if (const auto acquired = world.create_sybil(*helper, placement)) {
      ++counters.invitations_accepted;
      record_placement(*acquired, counters);
    }
  }
}

}  // namespace dhtlb::lb
