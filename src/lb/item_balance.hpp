// Item balancing — the neighbor-move family (non-Sybil competitor).
//
// Chawachat & Fakcharoenphol, "A simpler load-balancing algorithm for
// range-partitioned data in Peer-to-Peer systems" (PAPERS.md): each node
// periodically compares its item count with its ring successor and, when
// the ratio exceeds a constant threshold δ, moves the boundary between
// the two ranges so both sides end up with half the combined items.
// The paper proves a constant-factor imbalance bound with O(1) amortized
// item movement — without creating any extra ring presence.
//
// Mapped onto this simulator: the boundary between a vnode and its
// successor IS the vnode's own ID (it owns (pred, id]), so a boundary
// adjustment is a vnode relocation (World::move_vnode).  Moving the ID
// counterclockwise sheds the tail of the node's keys to the successor;
// moving it clockwise into the successor's arc acquires that arc's head.
// The exact split point comes from nth_task_key — the generalized form
// of the chosen-ID median query — so the halving is exact on the key
// multiset, not merely in expectation over the ID space.
//
// This is the structurally different mechanism the comparison tables
// need: zero Sybils, zero extra vnodes, load moves by renegotiating one
// range boundary per node per decision round.  Cost model: one workload
// probe of the successor plus one key query per attempted move, counted
// in workload_queries; successful moves count boundary_moves and the
// keys shifted count tasks_moved.
#pragma once

#include <cstdint>

#include "lb/common.hpp"
#include "sim/strategy.hpp"

namespace dhtlb::lb {

class ItemBalance final : public sim::Strategy {
 public:
  /// `threshold` is the paper's δ: a move triggers when one side of a
  /// boundary holds more than δ times the other side's items.  δ = 2 is
  /// the aggressive setting (tightest balance, most movement); larger
  /// values trade imbalance for fewer moved items.
  explicit ItemBalance(std::uint64_t threshold) : threshold_(threshold) {}

  std::string_view name() const override {
    return threshold_ <= 2 ? "item-balance" : "item-balance-conservative";
  }

  void decide(sim::World& world, support::Rng& rng,
              sim::StrategyCounters& counters) override;

 private:
  std::uint64_t threshold_;
  std::vector<sim::NodeIndex> order_;  // reused visitation-order buffer
};

}  // namespace dhtlb::lb
