#include "lb/item_balance.hpp"

#include <optional>

#include "sim/world.hpp"

namespace dhtlb::lb {

void ItemBalance::decide(sim::World& world, support::Rng& rng,
                         sim::StrategyCounters& counters) {
  shuffled_alive_into(world, rng, order_);
  for (const sim::NodeIndex idx : order_) {
    // The primary vnode's own ID is the boundary this node may
    // renegotiate; Sybil vnodes (left behind by a strategy hot-swap)
    // are ignored — this family never creates ring presence.
    const support::Uint160 self = world.physical(idx).vnode_ids.front();
    std::optional<sim::ArcView> succ;
    for (const sim::ArcView& arc : world.successor_arcs(self, 1)) {
      succ = arc;
    }
    if (!succ || succ->owner == idx) continue;  // alone, or own Sybil next
    ++counters.workload_queries;  // probe the successor's item count
    const std::uint64_t mine = world.arc_of(self).task_count;
    const std::uint64_t theirs = succ->task_count;
    if (mine + theirs < 2) continue;  // nothing worth splitting

    std::optional<support::Uint160> split;
    std::uint64_t half = (mine + theirs) / 2;
    if (mine >= threshold_ * theirs + 1) {
      // Shed: keep the first `half` keys of our arc and hand the rest
      // to the successor by retreating the boundary to the half-th key.
      if (half == 0 || half >= mine) continue;
      ++counters.workload_queries;  // the split-key query is a message
      split = world.nth_task_key(self, half - 1);
    } else if (theirs >= threshold_ * mine + 1) {
      // Acquire: advance the boundary into the successor's arc so its
      // first (half - mine) keys in arc order come over to us.
      const std::uint64_t take = half - mine;
      if (take == 0 || take >= theirs) continue;
      ++counters.workload_queries;
      split = world.nth_task_key(succ->id, take - 1);
    } else {
      continue;  // within the δ band — the boundary stays put
    }

    if (!split || *split == self || *split == succ->id) continue;
    if (world.ring_contains(*split)) continue;  // pathological collision
    if (const auto moved = world.move_vnode(self, *split)) {
      ++counters.boundary_moves;
      counters.tasks_moved += *moved;
    }
  }
}

}  // namespace dhtlb::lb
