#include "lb/chosen_id.hpp"

#include <optional>

#include "support/ring_math.hpp"

namespace dhtlb::lb {

void ChosenIdSplit::decide(sim::World& world, support::Rng& rng,
                           sim::StrategyCounters& counters) {
  const std::size_t sample = world.params().num_successors;
  shuffled_alive_into(world, rng, order_);
  for (const sim::NodeIndex idx : order_) {
    retire_idle_sybils(world, idx, counters);
    if (!may_create_sybil(world, idx)) continue;

    // Victim selection: most loaded foreign vnode among either the
    // successor list or an equal-sized random sample of ring arcs.
    std::optional<sim::ArcView> target;
    if (scope_ == Scope::kNeighborhood) {
      const support::Uint160 self = world.physical(idx).vnode_ids.front();
      for (const sim::ArcView& arc : world.successor_arcs(self, sample)) {
        ++counters.workload_queries;
        if (arc.owner == idx || arc.task_count == 0) continue;
        if (!target || arc.task_count > target->task_count) target = arc;
      }
    } else {
      for (std::size_t probe = 0; probe < sample; ++probe) {
        const sim::ArcView arc = world.arc_covering(rng.uniform_u160());
        ++counters.workload_queries;
        if (arc.owner == idx || arc.task_count == 0) continue;
        if (!target || arc.task_count > target->task_count) target = arc;
      }
    }
    if (!target || target->task_count < 2) continue;  // nothing to halve

    // Ask the victim for its median task key and adopt it as the Sybil
    // ID: the Sybil takes exactly the lower half of the victim's keys
    // (the half-open arc (pred, median] contains them by construction).
    ++counters.workload_queries;  // the median query costs one message
    const auto median = world.median_task_key(target->id);
    if (!median || *median == target->id) continue;
    if (world.ring_contains(*median)) continue;  // pathological collision

    if (const auto acquired = world.create_sybil(idx, *median)) {
      record_placement(*acquired, counters);
    }
  }
}

}  // namespace dhtlb::lb
