#include "lb/neighbor_injection.hpp"

#include <optional>

#include "support/ring_math.hpp"

namespace dhtlb::lb {

void NeighborInjection::decide(sim::World& world, support::Rng& rng,
                               sim::StrategyCounters& counters) {
  const bool use_marks = world.params().mark_failed_ranges;
  shuffled_alive_into(world, rng, order_);
  for (const sim::NodeIndex idx : order_) {
    retire_idle_sybils(world, idx, counters);
    if (!may_create_sybil(world, idx)) continue;

    // The node scans from its PRIMARY ring position; its Sybils' lists
    // would point at the same neighborhood-sized slices elsewhere, but
    // the paper describes the node acting from one vantage point.  The
    // successor list is consumed as an allocation-free arc walk.
    const support::Uint160 self = world.physical(idx).vnode_ids.front();
    const auto successors =
        world.successor_arcs(self, world.params().num_successors);

    auto* marks = use_marks ? &invalid_[idx] : nullptr;

    // Choose the target successor arc.
    std::optional<sim::ArcView> target;
    if (mode_ == Mode::kEstimate) {
      support::Uint160 best_size{};
      for (const sim::ArcView& arc : successors) {
        if (arc.owner == idx) continue;  // don't shave our own Sybils
        if (marks != nullptr && marks->contains(arc.id)) continue;
        const support::Uint160 size = support::arc_size(arc.pred, arc.id);
        if (!target || size > best_size) {
          target = arc;
          best_size = size;
        }
      }
    } else {
      std::uint64_t best_tasks = 0;
      for (const sim::ArcView& arc : successors) {
        ++counters.workload_queries;  // smart variant pays one probe each
        if (arc.owner == idx) continue;
        if (marks != nullptr && marks->contains(arc.id)) continue;
        if (!target || arc.task_count > best_tasks) {
          target = arc;
          best_tasks = arc.task_count;
        }
      }
      // Querying revealed there is nothing to take; skip the placement
      // entirely (the estimating variant cannot know this and pays the
      // failed placement instead).
      if (target && best_tasks == 0) continue;
    }
    if (!target) continue;

    // The arc must contain at least one free interior ID.
    const support::Uint160 span =
        support::clockwise_distance(target->pred, target->id);
    if (span <= support::Uint160{1}) continue;

    const support::Uint160 placement =
        mode_ == Mode::kEstimate
            ? rng.uniform_in_arc(target->pred, target->id)
            : support::arc_midpoint(target->pred, target->id);
    const auto acquired = world.create_sybil(idx, placement);
    if (!acquired) continue;  // ID collision; try again next round
    record_placement(*acquired, counters);
    if (marks != nullptr && *acquired == 0) {
      marks->insert(target->id);
      ++counters.ranges_marked_invalid;
    }
  }
}

}  // namespace dhtlb::lb
