// Chosen-ID balancing — the paper's second future-work direction.
//
// §VII: "if we removed the assumption that nodes cannot choose their own
// ID or those of their Sybil, this presents even more strategies."  This
// strategy exploits exactly that relaxation: instead of hashing for an
// ID that merely lands *somewhere* in a target arc, the node asks the
// target for the MEDIAN KEY of its remaining tasks and adopts that key
// as its Sybil ID — splitting the target's *key multiset* exactly in
// half regardless of how the keys cluster inside the arc.
//
// This is the upper bound for any single-split placement policy: a
// uniform or midpoint placement halves keys only in expectation, while
// the median split halves them exactly.  Comparing it against Random /
// Neighbor Injection quantifies how much of the remaining gap to the
// ideal runtime is attributable to the no-ID-choice assumption.
//
// Cost model: one extra query to the target (its median key), counted in
// workload_queries like the smart-neighbor probes.
#pragma once

#include "lb/common.hpp"
#include "sim/strategy.hpp"

namespace dhtlb::lb {

class ChosenIdSplit final : public sim::Strategy {
 public:
  /// scope selects where the node searches for a victim:
  /// successors-only (the neighbor-injection information model) or the
  /// global ring (an idealized gossip/sampling model).
  enum class Scope { kNeighborhood, kGlobal };

  explicit ChosenIdSplit(Scope scope) : scope_(scope) {}

  std::string_view name() const override {
    return scope_ == Scope::kNeighborhood ? "chosen-id-neighbor"
                                          : "chosen-id-global";
  }

  void decide(sim::World& world, support::Rng& rng,
              sim::StrategyCounters& counters) override;

 private:
  Scope scope_;
  std::vector<sim::NodeIndex> order_;  // reused visitation-order buffer
};

}  // namespace dhtlb::lb
