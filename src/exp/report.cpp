#include "exp/report.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace dhtlb::exp {

ResultRow to_row(const std::string& experiment, const std::string& config,
                 const Aggregate& aggregate) {
  ResultRow row;
  row.experiment = experiment;
  row.strategy = aggregate.strategy;
  row.config = config;
  row.nodes = aggregate.params.initial_nodes;
  row.tasks = aggregate.params.total_tasks;
  row.churn_rate = aggregate.params.churn_rate;
  row.heterogeneous = aggregate.params.heterogeneous;
  row.trials = aggregate.trials;
  row.runtime_factor_mean = aggregate.runtime_factor.mean;
  row.runtime_factor_min = aggregate.runtime_factor.min;
  row.runtime_factor_max = aggregate.runtime_factor.max;
  row.runtime_factor_stddev = aggregate.runtime_factor.stddev;
  row.completion_rate = aggregate.completion_rate;
  row.mean_sybils = aggregate.mean_sybils_created;
  row.mean_queries = aggregate.mean_workload_queries;
  row.mean_leaves = aggregate.mean_leaves;
  return row;
}

std::string rows_to_csv(const std::vector<ResultRow>& rows) {
  support::TextTable table(
      {"experiment", "strategy", "config", "nodes", "tasks", "churn_rate",
       "heterogeneous", "trials", "runtime_factor_mean",
       "runtime_factor_min", "runtime_factor_max", "runtime_factor_stddev",
       "completion_rate", "mean_sybils", "mean_queries", "mean_leaves"});
  for (const auto& row : rows) {
    table.add_row({row.experiment, row.strategy, row.config,
                   std::to_string(row.nodes), std::to_string(row.tasks),
                   support::format_fixed(row.churn_rate, 6),
                   row.heterogeneous ? "1" : "0",
                   std::to_string(row.trials),
                   support::format_fixed(row.runtime_factor_mean, 6),
                   support::format_fixed(row.runtime_factor_min, 6),
                   support::format_fixed(row.runtime_factor_max, 6),
                   support::format_fixed(row.runtime_factor_stddev, 6),
                   support::format_fixed(row.completion_rate, 4),
                   support::format_fixed(row.mean_sybils, 2),
                   support::format_fixed(row.mean_queries, 2),
                   support::format_fixed(row.mean_leaves, 2)});
  }
  return table.render_csv();
}

std::string snapshot_to_csv(const sim::Snapshot& snapshot) {
  std::ostringstream out;
  out << "node_index,workload\n";
  for (std::size_t i = 0; i < snapshot.workloads.size(); ++i) {
    out << i << ',' << snapshot.workloads[i] << '\n';
  }
  return out.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return false;
  }
  std::ofstream out(p, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace dhtlb::exp
