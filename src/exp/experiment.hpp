// Experiment harness: runs N independent trials of a configuration and
// aggregates the paper's outputs.  Trials are deterministic functions of
// (base_seed, trial_index) and are fanned across a thread pool, so
// results are identical at any parallelism level.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/params.hpp"
#include "stats/descriptive.hpp"
#include "support/thread_pool.hpp"

namespace dhtlb::exp {

/// Aggregated results of `trials` runs of one configuration.
struct Aggregate {
  std::string strategy;
  sim::Params params;
  std::size_t trials = 0;

  stats::Summary runtime_factor;  // across trials
  stats::Summary ticks;
  double completion_rate = 0.0;   // trials that drained all tasks

  // Mean per-trial event counts.
  double mean_joins = 0.0;
  double mean_leaves = 0.0;
  double mean_sybils_created = 0.0;
  double mean_sybils_retired = 0.0;
  double mean_failed_placements = 0.0;
  double mean_workload_queries = 0.0;
  double mean_invitations_sent = 0.0;
  double mean_invitations_accepted = 0.0;
};

/// Runs `trials` simulations of `params` under `strategy_name` (a
/// lb::make_strategy name) and aggregates.  `pool` may be null for
/// serial execution.  Trial i uses seed mix(base_seed, i).
Aggregate run_trials(const sim::Params& params, std::string_view strategy_name,
                     std::size_t trials, std::uint64_t base_seed,
                     support::ThreadPool* pool = nullptr);

/// One configuration of a multi-cell experiment grid.
struct CellSpec {
  sim::Params params;
  std::string strategy;
  std::size_t trials = 0;
};

/// Runs every cell's trials through ONE parallel fan instead of one
/// pool barrier per cell: all (cell, trial) pairs are flattened and
/// scheduled together, so worker threads drain the tail of a slow cell
/// while others start the next one.  Results are identical to calling
/// run_trials(cell.params, cell.strategy, cell.trials, base_seed, pool)
/// per cell — trial i of every cell uses seed mix(base_seed, i), exactly
/// as run_trials does — only the scheduling changes.
std::vector<Aggregate> run_cells(const std::vector<CellSpec>& cells,
                                 std::uint64_t base_seed,
                                 support::ThreadPool* pool = nullptr);

/// Runs ONE trial with workload snapshots at the given ticks — the
/// generator behind the paper's distribution figures.
sim::RunResult run_with_snapshots(const sim::Params& params,
                                  std::string_view strategy_name,
                                  std::uint64_t seed,
                                  std::vector<std::uint64_t> snapshot_ticks);

/// The initial per-node workload assignment of a fresh network (used by
/// Table I / Figures 1-3, which need no ticks at all).
std::vector<std::uint64_t> initial_workloads(std::size_t nodes,
                                             std::uint64_t tasks,
                                             std::uint64_t seed);

}  // namespace dhtlb::exp
