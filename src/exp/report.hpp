// Result reporting: aggregate rows -> text table / CSV artifacts.
//
// The reproduction binaries print paper-style tables; this module also
// lets them (and downstream users) persist machine-readable CSVs so the
// figures can be replotted outside C++ (the workflow EXPERIMENTS.md
// documents).
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "sim/snapshot.hpp"
#include "support/table.hpp"

namespace dhtlb::exp {

/// Canonical flat record of one aggregate, for CSV export.
struct ResultRow {
  std::string experiment;  // e.g. "table2", "fig10"
  std::string strategy;
  std::string config;      // free-form cell label
  std::size_t nodes = 0;
  std::uint64_t tasks = 0;
  double churn_rate = 0.0;
  bool heterogeneous = false;
  std::size_t trials = 0;
  double runtime_factor_mean = 0.0;
  double runtime_factor_min = 0.0;
  double runtime_factor_max = 0.0;
  double runtime_factor_stddev = 0.0;
  double completion_rate = 0.0;
  double mean_sybils = 0.0;
  double mean_queries = 0.0;
  double mean_leaves = 0.0;
};

/// Builds a flat row from an aggregate.
ResultRow to_row(const std::string& experiment, const std::string& config,
                 const Aggregate& aggregate);

/// Renders rows as a CSV document (header + one line per row).
std::string rows_to_csv(const std::vector<ResultRow>& rows);

/// Renders a snapshot's workloads as a two-column CSV (node_index,
/// workload) — the raw data behind each histogram figure.
std::string snapshot_to_csv(const sim::Snapshot& snapshot);

/// Writes `content` to `path`, creating parent directories as needed.
/// Returns false (and leaves no partial file) on I/O failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace dhtlb::exp
