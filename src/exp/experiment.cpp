#include "exp/experiment.hpp"

#include <iterator>
#include <utility>

#include "lb/factory.hpp"
#include "support/rng.hpp"
#include "support/sync.hpp"

namespace dhtlb::exp {

namespace {

// Per-trial result slots shared between the coordinating thread and the
// pool workers.  Workers write distinct indices, so a lock is not needed
// for correctness — it is here so the sharing is *compiler-checked*
// (GUARDED_BY + -Wthread-safety) instead of by-convention; one
// uncontended lock per multi-millisecond trial is noise.
class TrialSlots {
 public:
  explicit TrialSlots(std::size_t n) : slots_(n) {}

  void store(std::size_t i, sim::RunResult result) EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    slots_[i] = std::move(result);
  }

  /// Moves the slots out; call only after the pool barrier (wait_idle /
  /// parallel_for return) has ordered every store before this read.
  std::vector<sim::RunResult> take() EXCLUDES(mu_) {
    support::MutexLock lock(mu_);
    return std::move(slots_);
  }

 private:
  support::Mutex mu_;
  std::vector<sim::RunResult> slots_ GUARDED_BY(mu_);
};

// Folds per-trial results into the Aggregate.  Shared by run_trials and
// run_cells so the two fans produce bit-identical aggregates.
Aggregate aggregate_results(const sim::Params& params,
                            std::string_view strategy_name,
                            const std::vector<sim::RunResult>& results) {
  const std::size_t trials = results.size();
  Aggregate agg;
  agg.strategy = std::string(strategy_name);
  agg.params = params;
  agg.trials = trials;

  std::vector<double> factors;
  std::vector<double> ticks;
  factors.reserve(trials);
  ticks.reserve(trials);
  std::size_t completed = 0;
  for (const auto& r : results) {
    factors.push_back(r.runtime_factor);
    ticks.push_back(static_cast<double>(r.ticks));
    if (r.completed) ++completed;
    agg.mean_joins += static_cast<double>(r.joins);
    agg.mean_leaves += static_cast<double>(r.leaves);
    const auto& c = r.strategy_counters;
    agg.mean_sybils_created += static_cast<double>(c.sybils_created);
    agg.mean_sybils_retired += static_cast<double>(c.sybils_retired);
    agg.mean_failed_placements += static_cast<double>(c.failed_placements);
    agg.mean_workload_queries += static_cast<double>(c.workload_queries);
    agg.mean_invitations_sent += static_cast<double>(c.invitations_sent);
    agg.mean_invitations_accepted +=
        static_cast<double>(c.invitations_accepted);
  }
  agg.runtime_factor = stats::summarize(factors);
  agg.ticks = stats::summarize(ticks);
  if (trials > 0) {
    const auto n = static_cast<double>(trials);
    agg.completion_rate = static_cast<double>(completed) / n;
    agg.mean_joins /= n;
    agg.mean_leaves /= n;
    agg.mean_sybils_created /= n;
    agg.mean_sybils_retired /= n;
    agg.mean_failed_placements /= n;
    agg.mean_workload_queries /= n;
    agg.mean_invitations_sent /= n;
    agg.mean_invitations_accepted /= n;
  }
  return agg;
}

}  // namespace

Aggregate run_trials(const sim::Params& params, std::string_view strategy_name,
                     std::size_t trials, std::uint64_t base_seed,
                     support::ThreadPool* pool) {
  TrialSlots results(trials);
  auto run_one = [&](std::size_t i) {
    sim::Engine engine(params, support::mix_seed(base_seed, i),
                       lb::make_strategy(strategy_name));
    results.store(i, engine.run());
  };
  if (pool != nullptr) {
    pool->parallel_for(trials, run_one);
  } else {
    for (std::size_t i = 0; i < trials; ++i) run_one(i);
  }
  return aggregate_results(params, strategy_name, results.take());
}

std::vector<Aggregate> run_cells(const std::vector<CellSpec>& cells,
                                 std::uint64_t base_seed,
                                 support::ThreadPool* pool) {
  // Flatten every (cell, trial) pair into one index space so a single
  // parallel_for schedules the whole grid — no pool barrier per cell.
  struct Job {
    std::size_t cell;
    std::size_t trial;  // index within the cell, seeds mix(base, trial)
  };
  std::vector<Job> jobs;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    for (std::size_t t = 0; t < cells[c].trials; ++t) {
      jobs.push_back(Job{c, t});
    }
  }
  TrialSlots results(jobs.size());

  auto run_one = [&](std::size_t j) {
    const Job& job = jobs[j];
    const CellSpec& cell = cells[job.cell];
    sim::Engine engine(cell.params, support::mix_seed(base_seed, job.trial),
                       lb::make_strategy(cell.strategy));
    results.store(j, engine.run());
  };
  if (pool != nullptr) {
    pool->parallel_for(jobs.size(), run_one);
  } else {
    for (std::size_t j = 0; j < jobs.size(); ++j) run_one(j);
  }

  // Scatter the flat job results back into per-cell vectors; jobs were
  // appended cell-major, so each cell's trials are a contiguous slice.
  std::vector<sim::RunResult> flat = results.take();
  std::vector<Aggregate> aggregates;
  aggregates.reserve(cells.size());
  std::size_t next = 0;
  for (const CellSpec& cell : cells) {
    std::vector<sim::RunResult> cell_results(
        std::make_move_iterator(flat.begin() +
                                static_cast<std::ptrdiff_t>(next)),
        std::make_move_iterator(flat.begin() +
                                static_cast<std::ptrdiff_t>(next +
                                                            cell.trials)));
    next += cell.trials;
    aggregates.push_back(
        aggregate_results(cell.params, cell.strategy, cell_results));
  }
  return aggregates;
}

sim::RunResult run_with_snapshots(const sim::Params& params,
                                  std::string_view strategy_name,
                                  std::uint64_t seed,
                                  std::vector<std::uint64_t> snapshot_ticks) {
  sim::Engine engine(params, seed, lb::make_strategy(strategy_name));
  engine.request_snapshots(std::move(snapshot_ticks));
  return engine.run();
}

std::vector<std::uint64_t> initial_workloads(std::size_t nodes,
                                             std::uint64_t tasks,
                                             std::uint64_t seed) {
  sim::Params params;
  params.initial_nodes = nodes;
  params.total_tasks = tasks;
  support::Rng rng(seed);
  const sim::World world(params, rng);
  return world.alive_workloads();
}

}  // namespace dhtlb::exp
