#include "scenario/script.hpp"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "lb/factory.hpp"

namespace dhtlb::scenario {

namespace {

// Tokenizes one logical line: comment stripped, whitespace-split.
std::vector<std::string> tokenize(std::string_view line) {
  const std::size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string> tokens;
  std::istringstream stream{std::string(line)};
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

struct Cursor {
  std::string_view file;
  int line = 0;

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(file, line, message);
  }

  std::uint64_t parse_u64(const std::string& token,
                          const char* what) const {
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      fail(std::string("expected an unsigned integer for ") + what +
           ", got '" + token + "'");
    }
    return value;
  }

  double parse_double(const std::string& token, const char* what) const {
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty()) {
      fail(std::string("expected a number for ") + what + ", got '" + token +
           "'");
    }
    return value;
  }

  double parse_probability(const std::string& token,
                           const char* what) const {
    const double value = parse_double(token, what);
    if (value < 0.0 || value > 1.0) {
      fail(std::string(what) + " must be in [0, 1], got '" + token + "'");
    }
    return value;
  }

  bool parse_bool(const std::string& token, const char* what) const {
    if (token == "true") return true;
    if (token == "false") return false;
    fail(std::string("expected true/false for ") + what + ", got '" + token +
         "'");
  }

  void expect_tokens(const std::vector<std::string>& tokens,
                     std::size_t count, const char* usage) const {
    if (tokens.size() < count) {
      fail(std::string("missing argument; usage: ") + usage);
    }
    if (tokens.size() > count) {
      fail("trailing garbage '" + tokens[count] + "' after " + usage);
    }
  }

  void check_strategy(const std::string& name) const {
    try {
      (void)lb::make_strategy(name);
    } catch (const std::invalid_argument&) {
      fail("unknown strategy '" + name + "'");
    }
  }
};

Event parse_event(const Cursor& cur, const std::vector<std::string>& tokens) {
  Event event;
  event.line = cur.line;
  const std::string& head = tokens[0];
  if (head == "join" || head == "leave" || head == "crash") {
    cur.expect_tokens(tokens, 2, (head + " <count>").c_str());
    event.kind = head == "join"    ? Event::Kind::kJoin
                 : head == "leave" ? Event::Kind::kLeave
                                   : Event::Kind::kCrash;
    event.count = cur.parse_u64(tokens[1], "count");
    if (event.count == 0) cur.fail(head + " count must be >= 1");
  } else if (head == "inject-uniform") {
    cur.expect_tokens(tokens, 2, "inject-uniform <tasks>");
    event.kind = Event::Kind::kInjectUniform;
    event.count = cur.parse_u64(tokens[1], "task count");
    if (event.count == 0) cur.fail("inject-uniform count must be >= 1");
  } else if (head == "inject-hotspot") {
    cur.expect_tokens(tokens, 3, "inject-hotspot <tasks> <ring-fraction>");
    event.kind = Event::Kind::kInjectHotspot;
    event.count = cur.parse_u64(tokens[1], "task count");
    if (event.count == 0) cur.fail("inject-hotspot count must be >= 1");
    event.value = cur.parse_double(tokens[2], "ring fraction");
    if (event.value <= 0.0 || event.value > 1.0) {
      cur.fail("hotspot ring fraction must be in (0, 1], got '" + tokens[2] +
               "'");
    }
  } else if (head == "set") {
    cur.expect_tokens(tokens, 3, "set churn|threshold <value>");
    if (tokens[1] == "churn") {
      event.kind = Event::Kind::kSetChurn;
      event.value = cur.parse_probability(tokens[2], "churn rate");
    } else if (tokens[1] == "threshold") {
      event.kind = Event::Kind::kSetThreshold;
      event.count = cur.parse_u64(tokens[2], "sybilThreshold");
    } else {
      cur.fail("unknown parameter '" + tokens[1] +
               "' (expected churn or threshold)");
    }
  } else if (head == "strategy") {
    cur.expect_tokens(tokens, 2, "strategy <name>");
    event.kind = Event::Kind::kSetStrategy;
    cur.check_strategy(tokens[1]);
    event.text = tokens[1];
  } else if (head == "fault") {
    cur.expect_tokens(tokens, 3, "fault drop|delay|duplicate <probability>");
    if (tokens[1] != "drop" && tokens[1] != "delay" &&
        tokens[1] != "duplicate") {
      cur.fail("unknown fault kind '" + tokens[1] +
               "' (expected drop, delay, or duplicate)");
    }
    event.kind = Event::Kind::kFault;
    event.text = tokens[1];
    event.value = cur.parse_probability(tokens[2], "fault probability");
  } else if (head == "lookup") {
    cur.expect_tokens(tokens, 2, "lookup <count>");
    event.kind = Event::Kind::kLookup;
    event.count = cur.parse_u64(tokens[1], "lookup count");
    if (event.count == 0) cur.fail("lookup count must be >= 1");
  } else {
    cur.fail("unknown event '" + head + "'");
  }
  return event;
}

bool event_allowed(Event::Kind kind, Substrate substrate) {
  switch (kind) {
    case Event::Kind::kJoin:
    case Event::Kind::kLeave:
    case Event::Kind::kCrash:
      return true;
    case Event::Kind::kInjectUniform:
    case Event::Kind::kInjectHotspot:
    case Event::Kind::kSetChurn:
    case Event::Kind::kSetThreshold:
    case Event::Kind::kSetStrategy:
      return substrate == Substrate::kSim;
    case Event::Kind::kFault:
    case Event::Kind::kLookup:
      return substrate == Substrate::kChord;
  }
  return false;
}

const char* event_name(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kJoin: return "join";
    case Event::Kind::kLeave: return "leave";
    case Event::Kind::kCrash: return "crash";
    case Event::Kind::kInjectUniform: return "inject-uniform";
    case Event::Kind::kInjectHotspot: return "inject-hotspot";
    case Event::Kind::kSetChurn: return "set churn";
    case Event::Kind::kSetThreshold: return "set threshold";
    case Event::Kind::kSetStrategy: return "strategy";
    case Event::Kind::kFault: return "fault";
    case Event::Kind::kLookup: return "lookup";
  }
  return "?";
}

}  // namespace

Script Script::parse(std::string_view text, std::string_view filename) {
  Script script;
  Cursor cur{filename, 0};
  std::set<std::string> seen_keys;
  // Sim-only header keys, for the substrate cross-check; value = the
  // line the key appeared on.
  std::set<std::pair<std::string, int>> sim_only_keys;
  bool in_block = false;
  bool any_block = false;
  Block block;
  std::uint64_t last_at_tick = 0;

  std::istringstream lines{std::string(text)};
  std::string raw;
  while (std::getline(lines, raw)) {
    ++cur.line;
    const std::vector<std::string> tokens = tokenize(raw);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];

    if (head == "at" || head == "every") {
      if (in_block) cur.fail("'" + head + "' inside an unterminated block");
      block = Block{};
      block.line = cur.line;
      block.recurring = head == "every";
      if (block.recurring) {
        if (tokens.size() != 2 && tokens.size() != 4 && tokens.size() != 6) {
          cur.fail("usage: every <period> [from <tick>] [until <tick>]");
        }
        block.at = cur.parse_u64(tokens[1], "period");
        if (block.at == 0) cur.fail("every period must be >= 1");
        std::size_t i = 2;
        if (i < tokens.size() && tokens[i] == "from") {
          block.from = cur.parse_u64(tokens[i + 1], "from tick");
          if (block.from == 0) cur.fail("from tick must be >= 1");
          i += 2;
        }
        if (i < tokens.size() && tokens[i] == "until") {
          block.until = cur.parse_u64(tokens[i + 1], "until tick");
          // 0 is the internal "open-ended" sentinel; accepting it here
          // would silently stretch the block to the horizon instead of
          // meaning "never fires" — reject rather than guess.
          if (block.until == 0) cur.fail("until tick must be >= 1");
          i += 2;
        }
        if (i != tokens.size()) {
          cur.fail("trailing garbage '" + tokens[i] +
                   "' after every <period> [from <tick>] [until <tick>]");
        }
        if (block.until != 0 && block.until < block.from) {
          cur.fail("every block ends (until " + std::to_string(block.until) +
                   ") before it starts (from " + std::to_string(block.from) +
                   ")");
        }
      } else {
        cur.expect_tokens(tokens, 2, "at <tick>");
        block.at = cur.parse_u64(tokens[1], "tick");
        if (block.at == 0) cur.fail("at tick must be >= 1 (tick 0 is the "
                                    "initial state)");
        if (block.at <= last_at_tick) {
          cur.fail("out-of-order 'at' tick " + std::to_string(block.at) +
                   " (previous block was at " + std::to_string(last_at_tick) +
                   ")");
        }
        last_at_tick = block.at;
      }
      in_block = true;
      any_block = true;
      continue;
    }

    if (head == "end") {
      if (!in_block) cur.fail("'end' without an open at/every block");
      cur.expect_tokens(tokens, 1, "end");
      if (block.events.empty()) cur.fail("empty event block");
      script.blocks.push_back(std::move(block));
      in_block = false;
      continue;
    }

    if (in_block) {
      block.events.push_back(parse_event(cur, tokens));
      continue;
    }

    // Header line.
    if (any_block) {
      cur.fail("header key '" + head + "' after the first event block "
               "(headers must come first)");
    }
    if (!seen_keys.insert(head).second) {
      cur.fail("duplicate key '" + head + "'");
    }
    if (head == "name") {
      cur.expect_tokens(tokens, 2, "name <identifier>");
      script.name = tokens[1];
    } else if (head == "substrate") {
      cur.expect_tokens(tokens, 2, "substrate sim|chord");
      if (tokens[1] == "sim") {
        script.substrate = Substrate::kSim;
      } else if (tokens[1] == "chord") {
        script.substrate = Substrate::kChord;
      } else {
        cur.fail("unknown substrate '" + tokens[1] +
                 "' (expected sim or chord)");
      }
    } else if (head == "seed") {
      cur.expect_tokens(tokens, 2, "seed <u64>");
      script.seed = cur.parse_u64(tokens[1], "seed");
      script.seed_set = true;
    } else if (head == "ticks") {
      cur.expect_tokens(tokens, 2, "ticks <horizon>");
      script.horizon = cur.parse_u64(tokens[1], "tick horizon");
    } else if (head == "trace") {
      cur.expect_tokens(tokens, 2, "trace <file>");
      script.trace_path = tokens[1];
    } else if (head == "metrics") {
      cur.expect_tokens(tokens, 2, "metrics <file>");
      script.metrics_path = tokens[1];
    } else if (head == "nodes") {
      cur.expect_tokens(tokens, 2, "nodes <count>");
      script.params.initial_nodes = cur.parse_u64(tokens[1], "node count");
    } else if (head == "successors") {
      cur.expect_tokens(tokens, 2, "successors <k>");
      script.params.num_successors = cur.parse_u64(tokens[1], "successors");
    } else if (head == "strategy") {
      cur.expect_tokens(tokens, 2, "strategy <name>");
      cur.check_strategy(tokens[1]);
      script.strategy = tokens[1];
      sim_only_keys.emplace(head, cur.line);
    } else if (head == "tasks") {
      cur.expect_tokens(tokens, 2, "tasks <count>");
      script.params.total_tasks = cur.parse_u64(tokens[1], "task count");
      sim_only_keys.emplace(head, cur.line);
    } else if (head == "churn") {
      cur.expect_tokens(tokens, 2, "churn <rate>");
      script.params.churn_rate = cur.parse_probability(tokens[1],
                                                       "churn rate");
      sim_only_keys.emplace(head, cur.line);
    } else if (head == "heterogeneous") {
      cur.expect_tokens(tokens, 2, "heterogeneous true|false");
      script.params.heterogeneous = cur.parse_bool(tokens[1],
                                                   "heterogeneous");
      sim_only_keys.emplace(head, cur.line);
    } else if (head == "work-measure") {
      cur.expect_tokens(tokens, 2, "work-measure one|strength");
      if (tokens[1] == "one") {
        script.params.work_measure = sim::WorkMeasure::kOneTaskPerTick;
      } else if (tokens[1] == "strength") {
        script.params.work_measure = sim::WorkMeasure::kStrengthPerTick;
      } else {
        cur.fail("unknown work-measure '" + tokens[1] +
                 "' (expected one or strength)");
      }
      sim_only_keys.emplace(head, cur.line);
    } else if (head == "threshold") {
      cur.expect_tokens(tokens, 2, "threshold <tasks>");
      script.params.sybil_threshold = cur.parse_u64(tokens[1],
                                                    "sybilThreshold");
      sim_only_keys.emplace(head, cur.line);
    } else if (head == "max-sybils") {
      cur.expect_tokens(tokens, 2, "max-sybils <k>");
      script.params.max_sybils =
          static_cast<unsigned>(cur.parse_u64(tokens[1], "max-sybils"));
      sim_only_keys.emplace(head, cur.line);
    } else if (head == "decision-period") {
      cur.expect_tokens(tokens, 2, "decision-period <ticks>");
      script.params.decision_period = cur.parse_u64(tokens[1],
                                                    "decision period");
      sim_only_keys.emplace(head, cur.line);
    } else if (head == "provisioning") {
      cur.expect_tokens(tokens, 2, "provisioning preallocated|streamed");
      if (tokens[1] == "preallocated") {
        script.params.provisioning = sim::TaskProvisioning::kPreallocated;
      } else if (tokens[1] == "streamed") {
        script.params.provisioning = sim::TaskProvisioning::kStreamed;
      } else {
        cur.fail("unknown provisioning '" + tokens[1] +
                 "' (expected preallocated or streamed)");
      }
      sim_only_keys.emplace(head, cur.line);
    } else if (head == "arrival-ticks") {
      cur.expect_tokens(tokens, 2, "arrival-ticks <ticks>");
      script.params.arrival_ticks = cur.parse_u64(tokens[1],
                                                  "arrival ticks");
      sim_only_keys.emplace(head, cur.line);
    } else if (head == "mark-failed-ranges") {
      cur.expect_tokens(tokens, 2, "mark-failed-ranges true|false");
      script.params.mark_failed_ranges =
          cur.parse_bool(tokens[1], "mark-failed-ranges");
      sim_only_keys.emplace(head, cur.line);
    } else {
      cur.fail("unknown key '" + head + "'");
    }
  }

  if (in_block) {
    throw ParseError(filename, block.line,
                     "unterminated at/every block (missing 'end')");
  }

  // --- whole-script validation -------------------------------------------
  auto fail_at = [&](int line, const std::string& message) -> void {
    throw ParseError(filename, line, message);
  };
  if (script.name.empty()) {
    fail_at(cur.line == 0 ? 1 : cur.line, "missing required key 'name'");
  }
  if (script.substrate == Substrate::kChord) {
    for (const auto& [key, line] : sim_only_keys) {
      fail_at(line, "key '" + key + "' only applies to the sim substrate");
    }
    if (script.horizon == 0) {
      fail_at(cur.line, "chord scenarios need a 'ticks' horizon (the "
                        "protocol run has no natural end)");
    }
  }
  for (const Block& b : script.blocks) {
    if (b.recurring && b.until == 0 && script.horizon == 0) {
      fail_at(b.line, "every block needs 'until' (or a 'ticks' horizon) "
                      "so the scenario can end");
    }
    if (script.horizon != 0) {
      const std::uint64_t first = b.recurring ? b.from : b.at;
      if (first > script.horizon) {
        fail_at(b.line, "block starts at tick " + std::to_string(first) +
                            ", beyond the ticks horizon " +
                            std::to_string(script.horizon));
      }
    }
    for (const Event& e : b.events) {
      if (!event_allowed(e.kind, script.substrate)) {
        fail_at(e.line,
                std::string("event '") + event_name(e.kind) +
                    "' is not valid on the " +
                    (script.substrate == Substrate::kSim ? "sim" : "chord") +
                    " substrate");
      }
    }
  }
  // Resolve open-ended every blocks against the horizon.
  for (Block& b : script.blocks) {
    if (b.recurring && b.until == 0) b.until = script.horizon;
  }
  try {
    script.params.validate();
  } catch (const std::invalid_argument& e) {
    fail_at(cur.line == 0 ? 1 : cur.line, e.what());
  }
  return script;
}

Script Script::load(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("cannot open scenario file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse(buffer.str(), path);
}

}  // namespace dhtlb::scenario
