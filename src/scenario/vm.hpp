// Scenario VM: deterministically executes a parsed Script against one of
// the two substrates.
//
//   sim   — builds a sim::Engine and drives it through its pre-tick
//           timeline hook: scripted events apply at the start of their
//           tick (before churn, decisions, and consumption), and the
//           engine keeps ticking idle past a drained job while events
//           remain on the timeline.
//   chord — bootstraps a chord::Network (create + join + stabilize +
//           full fingers), then runs `ticks` rounds: events first, one
//           maintenance round after.
//
// All stochastic choices scripted by the VM (which node leaves, where
// injected keys land, lookup origins) flow through a dedicated RNG
// stream derived from the run seed, decorrelated from the engine's own
// stream — so (script, seed) replays byte-identically at any thread
// count, and a scenario edit does not shift the engine's churn draws.
//
// The result is a fixed-order list of bench::Record telemetry rows
// (wall_ms always 0, trials always 1): serializing them with
// bench::to_json yields a byte-stable golden for regression testing.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "harness/telemetry.hpp"
#include "scenario/script.hpp"

namespace dhtlb::obs {
class MetricsRegistry;
class TraceSink;
}  // namespace dhtlb::obs

namespace dhtlb::sim {
class Engine;
}  // namespace dhtlb::sim

namespace dhtlb::scenario {

/// Telemetry produced by one scenario run.  `experiment` is
/// "scenario_<name>"; records carry it too, so to_json(experiment,
/// records) is the canonical serialization.
struct ScenarioResult {
  std::string experiment;
  std::vector<bench::Record> records;
};

/// Optional observability sinks threaded through a scenario run.  Both
/// pointers are nullable and non-owning; the caller controls flushing
/// and lifetime.  With sinks attached the VM drives the trace clock
/// (one set_tick per scenario tick), emits an instant per scripted
/// event, and samples per-tick metrics from whichever substrate runs.
/// Attaching sinks never changes the ScenarioResult — observation only.
struct ObsSinks {
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Sim substrate only: invoked on the fully configured engine after
  /// sinks and threads are wired but before the first tick.  This is
  /// how drivers attach read-side subsystems (serve::Service installs
  /// the post-tick hook here) without the VM knowing about them.
  /// Attachments must not mutate the world, or (script, seed) replay
  /// determinism — and every scenario golden — breaks.
  std::function<void(sim::Engine&)> configure_engine;
};

/// Runs `script` to completion under `seed` and returns its metrics.
/// Deterministic: equal (script, seed) pairs produce equal results.
/// `audit` forces the sim engine's per-tick InvariantAuditor on in any
/// build flavor, so scripted mutations are vetted tick by tick (no-op
/// for the chord substrate, whose ring-consistency check is a metric).
/// Aborts via DHTLB_CHECK on internal invariant violations; throws
/// only what the substrates throw (ring exhaustion, etc.).
ScenarioResult run_scenario(const Script& script, std::uint64_t seed,
                            bool audit = false,
                            const ObsSinks& sinks = {});

/// Seed precedence used by the runner and tests: an explicit CLI seed
/// wins, then the script's `seed` header, then `fallback`
/// (support::env_seed() in practice).
std::uint64_t resolve_seed(const Script& script, bool cli_seed_set,
                           std::uint64_t cli_seed, std::uint64_t fallback);

}  // namespace dhtlb::scenario
