// Scenario fuzzing: a seeded event-grammar generator over the full
// `.scn` vocabulary, plus the canonical emitter and the ddmin-style
// shrinker that turn it into a correctness campaign.
//
// The generator is a pure function of (profile, seed): the same pair
// always yields the same Script, bit for bit, on every platform — the
// property the nightly lane and check_determinism.sh gate on.  Profiles
// shape the event mix (churn bursts, membership storms, hotspot floods,
// strategy hot-swaps, chord fault storms, streamed provisioning); the
// "mixed" profile draws from the whole sim vocabulary and is the
// default campaign workload.
//
// Every generated script is valid by construction AND by contract:
// emit_script() produces canonical text that Script::parse must accept,
// and re-emitting the parsed form must reproduce the text byte for byte
// (the generate → parse → re-emit gate in tests/scenario/fuzz_test.cpp).
// The oracle for a *run* is external: the invariant auditor plus
// cross-thread telemetry comparison, wired up by the dhtlb_fuzz runner.
//
// When a run fails, shrink_script() minimizes the script against a
// caller-supplied failure predicate: first ddmin over whole event
// blocks (subsets of an increasing `at` sequence stay increasing, so
// every candidate is still valid), then greedy per-event trimming
// inside the surviving blocks.  The result is the smallest script the
// predicate still rejects — what lands in the failure artifact next to
// the repro command.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/script.hpp"

namespace dhtlb::scenario {

/// Every generator profile, in a fixed order (CLI listing + sweeps).
std::vector<std::string_view> fuzz_profiles();

/// True iff `profile` names a known generator profile.
bool is_fuzz_profile(std::string_view profile);

/// Deterministically generates one valid scenario from (profile, seed).
/// The script's own `seed` header is derived from `seed`, so running it
/// is reproducible from the pair alone.  Throws std::invalid_argument
/// on an unknown profile.
Script generate_script(std::string_view profile, std::uint64_t seed);

/// Canonical `.scn` text for a script: fixed header order, every
/// defaulted value explicit, `every` blocks always written as
/// `every P from F until U`.  parse(emit(s)) reproduces the script and
/// emit(parse(emit(s))) is byte-identical to emit(s).
std::string emit_script(const Script& script);

/// Minimizes `script` against `still_fails` (which must return true for
/// the input script).  Removes event blocks ddmin-style, then trims
/// events inside blocks, re-validating each candidate through
/// parse(emit(...)) so only well-formed scripts are ever probed.  The
/// returned script still satisfies the predicate.
Script shrink_script(const Script& script,
                     const std::function<bool(const Script&)>& still_fails);

}  // namespace dhtlb::scenario
