#include "scenario/vm.hpp"

#include <cmath>
#include <string>

#include "chord/network.hpp"
#include "hashing/sha1.hpp"
#include "lb/factory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace dhtlb::scenario {

namespace {

using support::Rng;
using support::Uint160;

// Stream label for the VM's own RNG, mixed with the run seed so the
// VM's draws never alias the engine's (which uses the raw seed).
constexpr std::uint64_t kVmStream = 0x5CE11A710ULL;  // "scenario"

/// Does `block` fire at `tick`?
bool fires(const Block& b, std::uint64_t tick) {
  if (!b.recurring) return b.at == tick;
  return tick >= b.from && tick <= b.until && (tick - b.from) % b.at == 0;
}

/// Is any block still scheduled strictly after `tick`?  Keeps a drained
/// sim engine ticking idle toward future events.
bool pending_after(const Script& script, std::uint64_t tick) {
  for (const Block& b : script.blocks) {
    if (!b.recurring) {
      if (b.at > tick) return true;
      continue;
    }
    if (tick < b.from) return true;
    // Next eligible recurrence after `tick`.
    const std::uint64_t next = b.from + ((tick - b.from) / b.at + 1) * b.at;
    if (next <= b.until) return true;
  }
  return false;
}

/// Ring arc width covering `fraction` of the 2^160 key space, computed
/// as max() * round(fraction * 2^32) / 2^32 in fixed point.  Returns
/// nullopt when the fraction rounds to the whole ring (use a uniform
/// draw instead).
std::optional<Uint160> arc_width(double fraction) {
  const double scaled = std::round(fraction * 4294967296.0);
  if (scaled >= 4294967296.0) return std::nullopt;
  auto scale = static_cast<std::uint32_t>(scaled);
  if (scale == 0) scale = 1;  // parser guarantees fraction > 0
  return Uint160::max().shr(32).mul_small(scale);
}

/// Trace label for a scripted event's instant.
const char* scripted_name(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kJoin: return "scripted_join";
    case Event::Kind::kLeave: return "scripted_leave";
    case Event::Kind::kCrash: return "scripted_crash";
    case Event::Kind::kInjectUniform: return "inject_uniform";
    case Event::Kind::kInjectHotspot: return "inject_hotspot";
    case Event::Kind::kSetChurn: return "set_churn";
    case Event::Kind::kSetThreshold: return "set_threshold";
    case Event::Kind::kSetStrategy: return "set_strategy";
    case Event::Kind::kFault: return "set_fault";
    case Event::Kind::kLookup: return "scripted_lookup";
  }
  return "scripted_event";
}

/// One instant per scripted event, emitted as the event applies so it
/// lands on the tick it mutates.
void trace_scripted(obs::TraceSink& trace, const Event& e) {
  trace.instant(scripted_name(e.kind), "scenario",
                {{"count", e.count}, {"value", e.value}, {"text", e.text}});
}

void push(ScenarioResult& out, const std::string& cell,
          const std::string& metric, double value, std::uint64_t seed) {
  bench::Record rec;
  rec.experiment = out.experiment;
  rec.cell = cell;
  rec.metric = metric;
  rec.value = value;
  rec.wall_ms = 0.0;  // scenarios are result goldens, never timings
  rec.seed = seed;
  rec.trials = 1;
  out.records.push_back(rec);
}

// --- sim substrate --------------------------------------------------------

struct SimCounters {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;
  std::uint64_t injected = 0;
};

void apply_sim_event(const Event& e, sim::Engine& engine, Rng& rng,
                     SimCounters& counters) {
  sim::World& world = engine.world();
  switch (e.kind) {
    case Event::Kind::kJoin:
      // Placement IDs come from the VM's own stream, so a scripted join
      // perturbs neither the engine's churn streams nor the world's
      // construction RNG.
      for (std::uint64_t i = 0; i < e.count; ++i) {
        if (!world.join_from_pool(rng)) break;  // waiting pool exhausted
        ++counters.joins;
      }
      break;
    case Event::Kind::kLeave:
    case Event::Kind::kCrash:
      // Under active backup a crash is task-equivalent to a graceful
      // leave: the successor already holds the tasks either way (§IV-A).
      for (std::uint64_t i = 0; i < e.count; ++i) {
        if (world.alive_count() <= 1) break;  // never empty the ring
        const auto& alive = world.alive_indices();
        const sim::NodeIndex victim = alive[rng.below(alive.size())];
        if (!world.depart(victim)) break;
        ++(e.kind == Event::Kind::kLeave ? counters.leaves
                                         : counters.crashes);
      }
      break;
    case Event::Kind::kInjectUniform:
      for (std::uint64_t i = 0; i < e.count; ++i) {
        world.inject_task(rng.uniform_u160());
        ++counters.injected;
      }
      break;
    case Event::Kind::kInjectHotspot: {
      const Uint160 start = rng.uniform_u160();
      const auto width = arc_width(e.value);
      for (std::uint64_t i = 0; i < e.count; ++i) {
        world.inject_task(width ? rng.uniform_in_arc(start, start + *width)
                                : rng.uniform_u160());
        ++counters.injected;
      }
      break;
    }
    case Event::Kind::kSetChurn:
      engine.set_churn_rate(e.value);
      break;
    case Event::Kind::kSetThreshold:
      engine.set_sybil_threshold(e.count);
      break;
    case Event::Kind::kSetStrategy:
      engine.set_strategy(lb::make_strategy(e.text));
      break;
    default:
      DHTLB_CHECK(false, "sim substrate received a chord-only event "
                             << static_cast<int>(e.kind)
                             << " (parser validation hole)");
  }
}

ScenarioResult run_sim(const Script& script, std::uint64_t seed,
                       bool audit, const ObsSinks& sinks) {
  sim::Params params = script.params;
  if (script.horizon > 0) params.max_ticks = script.horizon;

  sim::Engine engine(params, seed, lb::make_strategy(script.strategy));
  if (audit) engine.set_audit(true);
  // DHTLB_THREADS sizes the engine's shard-worker pool; outputs are
  // thread-count independent (the threads-matrix CI lane enforces it).
  engine.set_threads(support::env_threads());
  engine.set_trace(sinks.trace);
  engine.set_metrics(sinks.metrics);
  if (sinks.configure_engine) sinks.configure_engine(engine);
  Rng vm_rng(support::mix_seed(seed, kVmStream));
  SimCounters counters;

  engine.set_pre_tick_hook([&](std::uint64_t tick) {
    bool applied = false;
    for (const Block& b : script.blocks) {
      if (!fires(b, tick)) continue;
      for (const Event& e : b.events) {
        // The engine advanced the trace clock to `tick` before calling
        // this hook, so the instant lands on the right tick.
        if (sinks.trace) trace_scripted(*sinks.trace, e);
        apply_sim_event(e, engine, vm_rng, counters);
      }
      applied = true;
    }
    return applied || pending_after(script, tick);
  });

  const sim::RunResult result = engine.run();
  const sim::World& world = engine.world();

  ScenarioResult out;
  out.experiment = "scenario_" + script.name;
  const std::string cell = "sim";
  auto d = [](std::uint64_t v) { return static_cast<double>(v); };
  push(out, cell, "ticks", d(result.ticks), seed);
  push(out, cell, "ideal_ticks", d(result.ideal_ticks), seed);
  push(out, cell, "runtime_factor", result.runtime_factor, seed);
  push(out, cell, "completed", result.completed ? 1.0 : 0.0, seed);
  push(out, cell, "avg_work_per_tick", result.avg_work_per_tick, seed);
  push(out, cell, "churn_joins", d(result.joins), seed);
  push(out, cell, "churn_leaves", d(result.leaves), seed);
  push(out, cell, "scripted_joins", d(counters.joins), seed);
  push(out, cell, "scripted_leaves", d(counters.leaves), seed);
  push(out, cell, "scripted_crashes", d(counters.crashes), seed);
  push(out, cell, "injected_tasks", d(counters.injected), seed);
  push(out, cell, "total_tasks", d(world.total_tasks()), seed);
  push(out, cell, "remaining_tasks", d(world.remaining_tasks()), seed);
  push(out, cell, "final_alive", d(world.alive_count()), seed);
  push(out, cell, "final_vnodes", d(world.vnode_count()), seed);
  push(out, cell, "sybils_created",
       d(result.strategy_counters.sybils_created), seed);
  push(out, cell, "sybils_retired",
       d(result.strategy_counters.sybils_retired), seed);

  // Final load shape: max/mean over alive nodes (1.0 = perfectly even).
  const std::vector<std::uint64_t> loads = world.alive_workloads();
  std::uint64_t max_load = 0;
  std::uint64_t sum_load = 0;
  for (const std::uint64_t w : loads) {
    max_load = std::max(max_load, w);
    sum_load += w;
  }
  const double mean_load =
      loads.empty() ? 0.0 : d(sum_load) / d(loads.size());
  push(out, cell, "final_max_load", d(max_load), seed);
  push(out, cell, "final_mean_load", mean_load, seed);
  return out;
}

// --- chord substrate ------------------------------------------------------

struct ChordCounters {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t crashes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t lookup_hops = 0;
  std::uint64_t lookups_correct = 0;
};

chord::NodeId pick_node(const chord::Network& net, Rng& rng) {
  const std::vector<chord::NodeId> ids = net.node_ids();
  DHTLB_CHECK(!ids.empty(), "scenario: chord ring is empty");
  return ids[rng.below(ids.size())];
}

void apply_chord_event(const Event& e, chord::Network& net, Rng& rng,
                       std::uint64_t& next_id, ChordCounters& counters,
                       chord::FaultConfig& faults) {
  switch (e.kind) {
    case Event::Kind::kJoin:
      for (std::uint64_t i = 0; i < e.count; ++i) {
        chord::NodeId id = hashing::Sha1::hash_u64(next_id++);
        while (net.contains(id)) id = hashing::Sha1::hash_u64(next_id++);
        if (net.join(id, pick_node(net, rng))) ++counters.joins;
      }
      break;
    case Event::Kind::kLeave:
      for (std::uint64_t i = 0; i < e.count; ++i) {
        if (net.size() <= 1) break;
        net.leave(pick_node(net, rng));
        ++counters.leaves;
      }
      break;
    case Event::Kind::kCrash:
      for (std::uint64_t i = 0; i < e.count; ++i) {
        if (net.size() <= 1) break;
        net.fail(pick_node(net, rng));
        ++counters.crashes;
      }
      break;
    case Event::Kind::kLookup:
      for (std::uint64_t i = 0; i < e.count; ++i) {
        const Uint160 key = rng.uniform_u160();
        const chord::NodeId truth = net.true_owner(key);
        const chord::LookupResult res = net.lookup(pick_node(net, rng), key);
        ++counters.lookups;
        counters.lookup_hops += static_cast<std::uint64_t>(res.hops);
        if (res.owner == truth) ++counters.lookups_correct;
      }
      break;
    case Event::Kind::kFault:
      if (e.text == "drop") {
        faults.drop = e.value;
      } else if (e.text == "delay") {
        faults.delay = e.value;
      } else {
        faults.duplicate = e.value;
      }
      net.set_faults(faults);
      break;
    default:
      DHTLB_CHECK(false, "chord substrate received a sim-only event "
                             << static_cast<int>(e.kind)
                             << " (parser validation hole)");
  }
}

/// Chord-side instruments, registered once per run; the VM is the
/// maintenance-loop driver, so it also owns per-tick sampling.
struct ChordInstruments {
  obs::MetricsRegistry::Id nodes = 0;
  obs::MetricsRegistry::Id ring_consistent = 0;
  obs::MetricsRegistry::Id delayed_pending = 0;
  obs::MetricsRegistry::Id msgs_total = 0;
  obs::MetricsRegistry::Id msgs_find_successor = 0;
  obs::MetricsRegistry::Id msgs_get_predecessor = 0;
  obs::MetricsRegistry::Id msgs_get_successor_list = 0;
  obs::MetricsRegistry::Id msgs_notify = 0;
  obs::MetricsRegistry::Id msgs_ping = 0;
  obs::MetricsRegistry::Id lookups = 0;
  obs::MetricsRegistry::Id lookup_hops = 0;

  static ChordInstruments register_on(obs::MetricsRegistry& m) {
    ChordInstruments ids;
    ids.nodes = m.gauge("nodes", "nodes");
    ids.ring_consistent = m.gauge("ring_consistent", "bool");
    ids.delayed_pending = m.gauge("delayed_pending", "messages");
    ids.msgs_total = m.counter("msgs_total", "messages");
    ids.msgs_find_successor = m.counter("msgs_find_successor", "messages");
    ids.msgs_get_predecessor = m.counter("msgs_get_predecessor", "messages");
    ids.msgs_get_successor_list =
        m.counter("msgs_get_successor_list", "messages");
    ids.msgs_notify = m.counter("msgs_notify", "messages");
    ids.msgs_ping = m.counter("msgs_ping", "messages");
    ids.lookups = m.counter("lookups", "lookups");
    ids.lookup_hops = m.counter("lookup_hops", "hops");
    return ids;
  }
};

ScenarioResult run_chord(const Script& script, std::uint64_t seed,
                         const ObsSinks& sinks) {
  chord::Network net(script.params.num_successors);
  Rng vm_rng(support::mix_seed(seed, kVmStream));

  // Bootstrap: sequential SHA-1 IDs, every joiner via node 0, then
  // stabilize until pointers settle and fingers are fully built.  All
  // of this happens before faults can be enabled, so the starting ring
  // is consistent regardless of the script.
  std::uint64_t next_id = 0;
  const chord::NodeId first = net.create(hashing::Sha1::hash_u64(next_id++));
  for (std::size_t i = 1; i < script.params.initial_nodes; ++i) {
    chord::NodeId id = hashing::Sha1::hash_u64(next_id++);
    while (net.contains(id)) id = hashing::Sha1::hash_u64(next_id++);
    net.join(id, first);
    net.stabilize(2);  // integrate before the next joiner, like a real ring
  }
  net.stabilize(static_cast<int>(script.params.num_successors) + 2);
  net.build_all_fingers();
  DHTLB_CHECK(net.ring_consistent(),
              "scenario: chord bootstrap left an inconsistent ring");

  // Measurement starts here: bootstrap traffic is construction noise
  // and deliberately excluded from both telemetry and traces.
  net.stats().reset();
  net.set_fault_seed(support::mix_seed(seed, kVmStream + 1));
  net.set_trace(sinks.trace);
  ChordInstruments ids;
  if (sinks.metrics) ids = ChordInstruments::register_on(*sinks.metrics);
  chord::MessageStats prev_stats;
  ChordCounters prev_counters;

  ChordCounters counters;
  chord::FaultConfig faults;
  for (std::uint64_t tick = 1; tick <= script.horizon; ++tick) {
    if (sinks.trace) sinks.trace->set_tick(tick);
    for (const Block& b : script.blocks) {
      if (!fires(b, tick)) continue;
      for (const Event& e : b.events) {
        if (sinks.trace) trace_scripted(*sinks.trace, e);
        apply_chord_event(e, net, vm_rng, next_id, counters, faults);
      }
    }
    net.maintenance_round();
    if (sinks.metrics || sinks.trace) {
      const chord::MessageStats& s = net.stats();
      auto d = [](std::uint64_t v) { return static_cast<double>(v); };
      if (sinks.metrics) {
        obs::MetricsRegistry& m = *sinks.metrics;
        m.set(ids.nodes, d(net.size()));
        m.set(ids.ring_consistent, net.ring_consistent() ? 1.0 : 0.0);
        m.set(ids.delayed_pending, d(net.delayed_messages().size()));
        m.add(ids.msgs_total, d(s.total() - prev_stats.total()));
        m.add(ids.msgs_find_successor,
              d(s.find_successor - prev_stats.find_successor));
        m.add(ids.msgs_get_predecessor,
              d(s.get_predecessor - prev_stats.get_predecessor));
        m.add(ids.msgs_get_successor_list,
              d(s.get_successor_list - prev_stats.get_successor_list));
        m.add(ids.msgs_notify, d(s.notify - prev_stats.notify));
        m.add(ids.msgs_ping, d(s.ping - prev_stats.ping));
        m.add(ids.lookups, d(counters.lookups - prev_counters.lookups));
        m.add(ids.lookup_hops,
              d(counters.lookup_hops - prev_counters.lookup_hops));
        m.sample(tick);
      }
      if (sinks.trace) {
        sinks.trace->counter("nodes", d(net.size()));
        sinks.trace->counter("msgs_per_tick",
                             d(s.total() - prev_stats.total()));
        sinks.trace->counter("delayed_pending",
                             d(net.delayed_messages().size()));
        sinks.trace->complete_tick(
            "tick", {{"msgs", s.total() - prev_stats.total()},
                     {"nodes", net.size()}});
      }
      prev_stats = s;
      prev_counters = counters;
    }
  }
  net.set_trace(nullptr);

  ScenarioResult out;
  out.experiment = "scenario_" + script.name;
  const std::string cell = "chord";
  auto d = [](std::uint64_t v) { return static_cast<double>(v); };
  push(out, cell, "ticks", d(script.horizon), seed);
  push(out, cell, "final_nodes", d(net.size()), seed);
  push(out, cell, "ring_consistent", net.ring_consistent() ? 1.0 : 0.0,
       seed);
  push(out, cell, "scripted_joins", d(counters.joins), seed);
  push(out, cell, "scripted_leaves", d(counters.leaves), seed);
  push(out, cell, "scripted_crashes", d(counters.crashes), seed);
  push(out, cell, "lookups", d(counters.lookups), seed);
  push(out, cell, "lookup_hops_total", d(counters.lookup_hops), seed);
  push(out, cell, "lookup_hops_mean",
       counters.lookups == 0
           ? 0.0
           : d(counters.lookup_hops) / d(counters.lookups),
       seed);
  push(out, cell, "lookups_correct", d(counters.lookups_correct), seed);
  const chord::MessageStats& stats = net.stats();
  push(out, cell, "msgs_find_successor", d(stats.find_successor), seed);
  push(out, cell, "msgs_get_predecessor", d(stats.get_predecessor), seed);
  push(out, cell, "msgs_get_successor_list", d(stats.get_successor_list),
       seed);
  push(out, cell, "msgs_notify", d(stats.notify), seed);
  push(out, cell, "msgs_ping", d(stats.ping), seed);
  push(out, cell, "msgs_total", d(stats.total()), seed);
  return out;
}

}  // namespace

ScenarioResult run_scenario(const Script& script, std::uint64_t seed,
                            bool audit, const ObsSinks& sinks) {
  return script.substrate == Substrate::kSim
             ? run_sim(script, seed, audit, sinks)
             : run_chord(script, seed, sinks);
}

std::uint64_t resolve_seed(const Script& script, bool cli_seed_set,
                           std::uint64_t cli_seed, std::uint64_t fallback) {
  if (cli_seed_set) return cli_seed;
  if (script.seed_set) return script.seed;
  return fallback;
}

}  // namespace dhtlb::scenario
