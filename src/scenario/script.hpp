// Scenario scripts: a from-scratch, dependency-free description format
// for scripted timelines over the simulator and the Chord substrate.
//
// A scenario file is line-oriented.  Header lines are `key value` pairs
// that configure the run (network size, strategy, churn, horizon, ...);
// event blocks schedule mutations on the timeline:
//
//   # Flash crowd: 100 late joiners at tick 10 (SS VII / SS I).
//   name      flash_crowd
//   strategy  random-injection
//   nodes     200
//   tasks     20000
//   seed      48879
//
//   at 10
//     join 100
//   end
//
//   every 25 from 50 until 150
//     inject-uniform 500
//   end
//
// `at <tick>` blocks fire once at the start of that tick (before churn,
// decisions, and consumption); `every <period>` blocks fire on every
// matching tick of [from, until].  `at` blocks must appear in strictly
// increasing tick order.  `#` starts a comment; blank lines are ignored.
// Every diagnostic is file:line-prefixed — see ParseError.
//
// Optional observability headers (both substrates): `trace <file>` and
// `metrics <file>` name default output paths for the Chrome trace and
// the per-tick metrics JSONL; runner --trace/--metrics flags override.
//
// Two substrates share the format:
//   substrate sim    (default) — drives sim::Engine through its timeline
//                    hook; events: join/leave/crash, inject-uniform,
//                    inject-hotspot, set churn/threshold, strategy
//   substrate chord  — drives chord::Network, one maintenance round per
//                    tick; events: join/leave/crash, lookup, fault
//                    drop/delay/duplicate (seeded message faults)
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/params.hpp"

namespace dhtlb::scenario {

/// Which execution model the scenario drives.
enum class Substrate { kSim, kChord };

/// One scripted mutation.  `line` points back into the source file for
/// runtime diagnostics.
struct Event {
  enum class Kind {
    kJoin,           // count
    kLeave,          // count (graceful)
    kCrash,          // count (sim: task-equivalent to leave under active
                     // backup; chord: abrupt fail(), peers heal lazily)
    kInjectUniform,  // count tasks at SHA-1 keys
    kInjectHotspot,  // count tasks uniform in a random arc of `value`
                     // ring fraction
    kSetChurn,       // value = new churn rate
    kSetThreshold,   // count = new sybilThreshold
    kSetStrategy,    // text = strategy name (lb::make_strategy)
    kFault,          // text = drop|delay|duplicate, value = probability
    kLookup,         // count lookups from random origins (chord)
  };
  Kind kind = Kind::kJoin;
  std::uint64_t count = 0;
  double value = 0.0;
  std::string text;
  int line = 0;
};

/// One `at` or `every` block and its events.
struct Block {
  bool recurring = false;   // false: `at`, true: `every`
  std::uint64_t at = 0;     // `at`: the tick; `every`: the period
  std::uint64_t from = 1;   // `every` only: first eligible tick
  std::uint64_t until = 0;  // `every` only: last eligible tick (inclusive)
  std::vector<Event> events;
  int line = 0;
};

/// Parse failure with the offending location.  what() is already
/// "<file>:<line>: <message>".
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string_view file, int line, const std::string& message)
      : std::runtime_error(std::string(file) + ":" + std::to_string(line) +
                           ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// A fully parsed and validated scenario.
struct Script {
  std::string name;  // required; names the telemetry experiment
  Substrate substrate = Substrate::kSim;

  /// Simulation parameters assembled from the header (sim substrate).
  /// For chord, only initial_nodes and num_successors are used.
  sim::Params params;

  /// Initial strategy (sim substrate); hot-swappable via events.
  std::string strategy = "none";

  /// Tick horizon from the `ticks` header: 0 = run until the job drains
  /// (sim; invalid for chord, which has no natural end).
  std::uint64_t horizon = 0;

  /// Default seed from the `seed` header; callers may override.
  std::uint64_t seed = 0;
  bool seed_set = false;

  /// Observability outputs from the `trace` / `metrics` header keys:
  /// default file paths for the Chrome trace and the metrics JSONL.
  /// Empty = disabled.  Runner `--trace` / `--metrics` flags override.
  std::string trace_path;
  std::string metrics_path;

  std::vector<Block> blocks;

  /// Parses and validates `text`.  `filename` labels diagnostics only.
  /// Throws ParseError on any malformed line, unknown key/event,
  /// duplicate header key, out-of-order `at` tick, or substrate/event
  /// mismatch.
  static Script parse(std::string_view text, std::string_view filename);

  /// Reads and parses a file; throws std::runtime_error if unreadable.
  static Script load(const std::string& path);
};

}  // namespace dhtlb::scenario
