#include "scenario/fuzz.hpp"

#include <algorithm>
#include <charconv>
#include <optional>
#include <stdexcept>

#include "lb/factory.hpp"
#include "support/rng.hpp"

namespace dhtlb::scenario {

namespace {

using support::Rng;

/// Dedicated generator stream label: decorrelates the script-shape
/// draws from every engine/VM stream the generated script will consume
/// when it runs under the same numeric seed.
constexpr std::uint64_t kFuzzStream = 0xF0220116E2A70ULL;

struct ProfileSpec {
  std::string_view name;
  Substrate substrate;
  // Weighted kind pool: duplicates raise a kind's draw probability.
  std::vector<Event::Kind> kinds;
};

using K = Event::Kind;

const std::vector<ProfileSpec>& profile_specs() {
  static const std::vector<ProfileSpec> specs = {
      // Churn spikes and relaxations layered over membership drift.
      {"churn-burst",
       Substrate::kSim,
       {K::kSetChurn, K::kSetChurn, K::kJoin, K::kLeave, K::kInjectUniform}},
      // Membership storms: mass joins, graceful exoduses, crash waves.
      {"storm",
       Substrate::kSim,
       {K::kJoin, K::kJoin, K::kLeave, K::kLeave, K::kCrash}},
      // Skewed floods concentrated on narrow ring arcs.
      {"hotspot",
       Substrate::kSim,
       {K::kInjectHotspot, K::kInjectHotspot, K::kInjectUniform}},
      // Strategy hot-swaps and threshold re-parameterization mid-run.
      {"strategy-swap",
       Substrate::kSim,
       {K::kSetStrategy, K::kSetStrategy, K::kSetThreshold, K::kJoin,
        K::kInjectUniform}},
      // Chord substrate: message-fault storms under lookups and churn.
      {"chord-faults",
       Substrate::kChord,
       {K::kFault, K::kFault, K::kLookup, K::kJoin, K::kLeave, K::kCrash}},
      // Streamed provisioning under membership and injection pressure.
      {"streamed",
       Substrate::kSim,
       {K::kJoin, K::kLeave, K::kCrash, K::kInjectUniform,
        K::kInjectHotspot}},
      // The campaign default: the whole sim vocabulary.
      {"mixed",
       Substrate::kSim,
       {K::kJoin, K::kLeave, K::kCrash, K::kInjectUniform,
        K::kInjectHotspot, K::kSetChurn, K::kSetThreshold, K::kSetStrategy}},
  };
  return specs;
}

const ProfileSpec& find_profile(std::string_view profile) {
  for (const ProfileSpec& spec : profile_specs()) {
    if (spec.name == profile) return spec;
  }
  throw std::invalid_argument("unknown fuzz profile: " +
                              std::string(profile));
}

/// Shortest round-trip decimal form (std::to_chars), so emitted doubles
/// re-parse to the identical bit pattern and re-emit byte-identically.
std::string format_double(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return std::string(buf, static_cast<std::size_t>(ptr - buf));
}

/// Every name make_strategy accepts — hot-swap targets and header picks.
std::vector<std::string_view> all_strategy_names() {
  std::vector<std::string_view> names = lb::strategy_names();
  for (const std::string_view name : lb::extension_strategy_names()) {
    names.push_back(name);
  }
  return names;
}

Event random_event(K kind, Rng& rng, const Script& script) {
  Event event;
  event.kind = kind;
  const std::uint64_t nodes = script.params.initial_nodes;
  switch (kind) {
    case K::kJoin:
      event.count = 1 + rng.below(std::max<std::uint64_t>(1, nodes / 4));
      break;
    case K::kLeave:
    case K::kCrash:
      event.count = 1 + rng.below(std::max<std::uint64_t>(1, nodes / 8));
      break;
    case K::kInjectUniform:
      event.count = 1 + rng.below(2000);
      break;
    case K::kInjectHotspot:
      event.count = 1 + rng.below(2000);
      // Narrow arcs, (0, 1/8] of the ring, in exact 1/256 steps.
      event.value = static_cast<double>(1 + rng.below(32)) / 256.0;
      break;
    case K::kSetChurn:
      // 0 .. 0.1 in exact 1/400 steps: hard enough to stress churn
      // folds, low enough that scripts never degenerate.
      event.value = static_cast<double>(rng.below(41)) / 400.0;
      break;
    case K::kSetThreshold:
      event.count = rng.below(64);
      break;
    case K::kSetStrategy: {
      const auto names = all_strategy_names();
      event.text = std::string(names[rng.below(names.size())]);
      break;
    }
    case K::kFault: {
      static constexpr std::string_view kFaults[] = {"drop", "delay",
                                                     "duplicate"};
      event.text = std::string(kFaults[rng.below(3)]);
      event.value = static_cast<double>(rng.below(26)) / 100.0;  // <= 0.25
      break;
    }
    case K::kLookup:
      event.count = 1 + rng.below(32);
      break;
  }
  return event;
}

}  // namespace

std::vector<std::string_view> fuzz_profiles() {
  std::vector<std::string_view> names;
  names.reserve(profile_specs().size());
  for (const ProfileSpec& spec : profile_specs()) {
    names.push_back(spec.name);
  }
  return names;
}

bool is_fuzz_profile(std::string_view profile) {
  for (const ProfileSpec& spec : profile_specs()) {
    if (spec.name == profile) return true;
  }
  return false;
}

Script generate_script(std::string_view profile, std::uint64_t seed) {
  const ProfileSpec& spec = find_profile(profile);
  Rng rng(support::stream_seed(seed, kFuzzStream));
  const bool chord = spec.substrate == Substrate::kChord;

  Script script;
  script.name = "fuzz_" + std::string(spec.name) + "_" +
                std::to_string(seed);
  script.substrate = spec.substrate;
  // The script carries its own seed, so (profile, seed) alone reproduces
  // the run — the repro line in failure artifacts relies on this.
  script.seed = seed;
  script.seed_set = true;

  if (chord) {
    // Chord rounds cost O(n log n) messages each; keep the protocol
    // runs small so a batch of hundreds stays inside the wall budget.
    script.horizon = 20 + rng.below(41);                    // 20..60
    script.params.initial_nodes = 16 + rng.below(49);       // 16..64
    script.params.num_successors = 2 + rng.below(5);        // 2..6
  } else {
    script.horizon = 40 + rng.below(161);                   // 40..200
    script.params.initial_nodes = 16 + rng.below(241);      // 16..256
    script.params.num_successors = 2 + rng.below(7);        // 2..8
    script.params.total_tasks = 1000 + rng.below(19001);    // 1k..20k
    script.params.max_sybils = 1 + static_cast<unsigned>(rng.below(8));
    script.params.sybil_threshold = rng.below(51);
    script.params.decision_period = 1 + rng.below(10);
    script.params.heterogeneous = rng.bernoulli(0.25);
    script.params.work_measure = rng.bernoulli(0.25)
                                     ? sim::WorkMeasure::kStrengthPerTick
                                     : sim::WorkMeasure::kOneTaskPerTick;
    if (spec.name == "storm") {
      script.params.churn_rate = 0.0;  // storms are scripted, not ambient
    } else {
      script.params.churn_rate =
          static_cast<double>(rng.below(21)) / 400.0;  // 0 .. 0.05
    }
    const bool streamed =
        spec.name == "streamed" || (spec.name == "mixed" && rng.bernoulli(0.3));
    if (streamed) {
      script.params.provisioning = sim::TaskProvisioning::kStreamed;
      // 0 = the auto window (ideal runtime); otherwise spread arrivals
      // over up to twice the horizon to exercise post-horizon cutoffs.
      const std::uint64_t pick = rng.below(3);
      script.params.arrival_ticks = pick == 0 ? 0 : pick * script.horizon;
    }
    const auto names = all_strategy_names();
    script.strategy = std::string(names[rng.below(names.size())]);
  }

  // `at` blocks need strictly increasing ticks within [1, horizon]:
  // sample, sort, dedupe, then attach events in order.
  const std::size_t n_at = 2 + rng.below(5);  // 2..6 one-shot blocks
  std::vector<std::uint64_t> at_ticks;
  for (std::size_t i = 0; i < n_at; ++i) {
    at_ticks.push_back(1 + rng.below(script.horizon));
  }
  std::sort(at_ticks.begin(), at_ticks.end());
  at_ticks.erase(std::unique(at_ticks.begin(), at_ticks.end()),
                 at_ticks.end());
  for (const std::uint64_t tick : at_ticks) {
    Block block;
    block.recurring = false;
    block.at = tick;
    const std::size_t n_events = 1 + rng.below(3);
    for (std::size_t e = 0; e < n_events; ++e) {
      block.events.push_back(
          random_event(spec.kinds[rng.below(spec.kinds.size())], rng,
                       script));
    }
    script.blocks.push_back(std::move(block));
  }

  // Recurring blocks: valid anywhere between the `at` blocks (only the
  // one-shot ticks are order-constrained), so splice them at random
  // positions to keep the interleaved grammar exercised.
  const std::size_t n_every = 1 + rng.below(3);  // 1..3 recurring blocks
  for (std::size_t i = 0; i < n_every; ++i) {
    Block block;
    block.recurring = true;
    block.at = 1 + rng.below(script.horizon / 4 + 1);
    block.from = 1 + rng.below(script.horizon);
    block.until = block.from + rng.below(script.horizon - block.from + 1);
    const std::size_t n_events = 1 + rng.below(2);
    for (std::size_t e = 0; e < n_events; ++e) {
      block.events.push_back(
          random_event(spec.kinds[rng.below(spec.kinds.size())], rng,
                       script));
    }
    const std::size_t pos = rng.below(script.blocks.size() + 1);
    script.blocks.insert(
        script.blocks.begin() + static_cast<std::ptrdiff_t>(pos),
        std::move(block));
  }
  return script;
}

std::string emit_script(const Script& script) {
  const bool sim = script.substrate == Substrate::kSim;
  std::string out;
  auto line = [&out](std::string_view key, const std::string& value) {
    out += key;
    out += ' ';
    out += value;
    out += '\n';
  };
  line("name", script.name);
  line("substrate", sim ? "sim" : "chord");
  if (script.seed_set) line("seed", std::to_string(script.seed));
  if (script.horizon != 0) line("ticks", std::to_string(script.horizon));
  line("nodes", std::to_string(script.params.initial_nodes));
  line("successors", std::to_string(script.params.num_successors));
  if (sim) {
    line("strategy", script.strategy);
    line("tasks", std::to_string(script.params.total_tasks));
    line("churn", format_double(script.params.churn_rate));
    line("heterogeneous",
         script.params.heterogeneous ? "true" : "false");
    line("work-measure",
         script.params.work_measure == sim::WorkMeasure::kStrengthPerTick
             ? "strength"
             : "one");
    line("threshold", std::to_string(script.params.sybil_threshold));
    line("max-sybils", std::to_string(script.params.max_sybils));
    line("decision-period",
         std::to_string(script.params.decision_period));
    const bool streamed =
        script.params.provisioning == sim::TaskProvisioning::kStreamed;
    line("provisioning", streamed ? "streamed" : "preallocated");
    if (streamed) {
      line("arrival-ticks", std::to_string(script.params.arrival_ticks));
    }
    line("mark-failed-ranges",
         script.params.mark_failed_ranges ? "true" : "false");
  }
  if (!script.trace_path.empty()) line("trace", script.trace_path);
  if (!script.metrics_path.empty()) line("metrics", script.metrics_path);

  for (const Block& block : script.blocks) {
    out += '\n';
    if (block.recurring) {
      out += "every " + std::to_string(block.at) + " from " +
             std::to_string(block.from);
      if (block.until != 0) out += " until " + std::to_string(block.until);
      out += '\n';
    } else {
      out += "at " + std::to_string(block.at) + '\n';
    }
    for (const Event& event : block.events) {
      out += "  ";
      switch (event.kind) {
        case K::kJoin:
          out += "join " + std::to_string(event.count);
          break;
        case K::kLeave:
          out += "leave " + std::to_string(event.count);
          break;
        case K::kCrash:
          out += "crash " + std::to_string(event.count);
          break;
        case K::kInjectUniform:
          out += "inject-uniform " + std::to_string(event.count);
          break;
        case K::kInjectHotspot:
          out += "inject-hotspot " + std::to_string(event.count) + ' ' +
                 format_double(event.value);
          break;
        case K::kSetChurn:
          out += "set churn " + format_double(event.value);
          break;
        case K::kSetThreshold:
          out += "set threshold " + std::to_string(event.count);
          break;
        case K::kSetStrategy:
          out += "strategy " + event.text;
          break;
        case K::kFault:
          out += "fault " + event.text + ' ' + format_double(event.value);
          break;
        case K::kLookup:
          out += "lookup " + std::to_string(event.count);
          break;
      }
      out += '\n';
    }
    out += "end\n";
  }
  return out;
}

namespace {

/// Re-parses a shrink candidate through the canonical text form so the
/// predicate only ever sees scripts a `.scn` file could express.
std::optional<Script> revalidate(const Script& candidate) {
  try {
    return Script::parse(emit_script(candidate), "<shrink>");
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace

Script shrink_script(const Script& script,
                     const std::function<bool(const Script&)>& still_fails) {
  Script best = script;
  if (!still_fails(best)) return best;  // nothing to preserve

  // Phase 1: ddmin over whole blocks.  Removing any subset of blocks
  // keeps the remaining `at` ticks strictly increasing, so candidates
  // only ever fail revalidation for unrelated reasons (none today).
  std::size_t chunk = std::max<std::size_t>(1, best.blocks.size() / 2);
  for (;;) {
    bool removed = false;
    for (std::size_t start = 0; start < best.blocks.size();) {
      Script candidate = best;
      const auto first =
          candidate.blocks.begin() + static_cast<std::ptrdiff_t>(start);
      const auto last =
          candidate.blocks.begin() +
          static_cast<std::ptrdiff_t>(
              std::min(start + chunk, candidate.blocks.size()));
      candidate.blocks.erase(first, last);
      const auto parsed = revalidate(candidate);
      if (parsed && still_fails(*parsed)) {
        best = *parsed;
        removed = true;  // retry the same start against the shorter list
      } else {
        start += chunk;
      }
    }
    if (best.blocks.empty() || (chunk == 1 && !removed)) break;
    if (!removed) chunk = std::max<std::size_t>(1, chunk / 2);
  }

  // Phase 2: greedy per-event trimming inside the surviving blocks.
  // Never empties a block (the grammar forbids empty blocks); phase 1
  // already probed dropping each block outright.
  for (std::size_t b = 0; b < best.blocks.size(); ++b) {
    for (std::size_t e = 0;
         best.blocks[b].events.size() > 1 && e < best.blocks[b].events.size();
         ) {
      Script candidate = best;
      candidate.blocks[b].events.erase(
          candidate.blocks[b].events.begin() +
          static_cast<std::ptrdiff_t>(e));
      const auto parsed = revalidate(candidate);
      if (parsed && still_fails(*parsed)) {
        best = *parsed;
      } else {
        ++e;
      }
    }
  }
  return best;
}

}  // namespace dhtlb::scenario
