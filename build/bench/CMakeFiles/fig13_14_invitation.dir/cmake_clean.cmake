file(REMOVE_RECURSE
  "CMakeFiles/fig13_14_invitation.dir/fig13_14_invitation.cpp.o"
  "CMakeFiles/fig13_14_invitation.dir/fig13_14_invitation.cpp.o.d"
  "fig13_14_invitation"
  "fig13_14_invitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_14_invitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
