# Empty compiler generated dependencies file for fig13_14_invitation.
# This may be replaced when dependencies are built.
