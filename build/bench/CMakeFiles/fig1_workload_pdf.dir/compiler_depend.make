# Empty compiler generated dependencies file for fig1_workload_pdf.
# This may be replaced when dependencies are built.
