file(REMOVE_RECURSE
  "CMakeFiles/fig1_workload_pdf.dir/fig1_workload_pdf.cpp.o"
  "CMakeFiles/fig1_workload_pdf.dir/fig1_workload_pdf.cpp.o.d"
  "fig1_workload_pdf"
  "fig1_workload_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_workload_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
