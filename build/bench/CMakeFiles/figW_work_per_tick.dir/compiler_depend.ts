# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for figW_work_per_tick.
