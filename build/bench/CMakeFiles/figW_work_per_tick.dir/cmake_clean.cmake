file(REMOVE_RECURSE
  "CMakeFiles/figW_work_per_tick.dir/figW_work_per_tick.cpp.o"
  "CMakeFiles/figW_work_per_tick.dir/figW_work_per_tick.cpp.o.d"
  "figW_work_per_tick"
  "figW_work_per_tick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figW_work_per_tick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
