# Empty dependencies file for figW_work_per_tick.
# This may be replaced when dependencies are built.
