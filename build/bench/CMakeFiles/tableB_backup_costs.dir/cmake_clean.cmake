file(REMOVE_RECURSE
  "CMakeFiles/tableB_backup_costs.dir/tableB_backup_costs.cpp.o"
  "CMakeFiles/tableB_backup_costs.dir/tableB_backup_costs.cpp.o.d"
  "tableB_backup_costs"
  "tableB_backup_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableB_backup_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
