# Empty dependencies file for tableB_backup_costs.
# This may be replaced when dependencies are built.
