file(REMOVE_RECURSE
  "CMakeFiles/fig11_12_neighbor.dir/fig11_12_neighbor.cpp.o"
  "CMakeFiles/fig11_12_neighbor.dir/fig11_12_neighbor.cpp.o.d"
  "fig11_12_neighbor"
  "fig11_12_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
