# Empty compiler generated dependencies file for fig11_12_neighbor.
# This may be replaced when dependencies are built.
