# Empty compiler generated dependencies file for fig4_6_churn_histograms.
# This may be replaced when dependencies are built.
