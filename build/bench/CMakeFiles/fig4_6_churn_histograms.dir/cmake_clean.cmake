file(REMOVE_RECURSE
  "CMakeFiles/fig4_6_churn_histograms.dir/fig4_6_churn_histograms.cpp.o"
  "CMakeFiles/fig4_6_churn_histograms.dir/fig4_6_churn_histograms.cpp.o.d"
  "fig4_6_churn_histograms"
  "fig4_6_churn_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_6_churn_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
