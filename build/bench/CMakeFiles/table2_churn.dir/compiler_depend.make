# Empty compiler generated dependencies file for table2_churn.
# This may be replaced when dependencies are built.
