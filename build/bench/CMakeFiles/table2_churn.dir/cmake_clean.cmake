file(REMOVE_RECURSE
  "CMakeFiles/table2_churn.dir/table2_churn.cpp.o"
  "CMakeFiles/table2_churn.dir/table2_churn.cpp.o.d"
  "table2_churn"
  "table2_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
