file(REMOVE_RECURSE
  "CMakeFiles/tableA_ablations.dir/tableA_ablations.cpp.o"
  "CMakeFiles/tableA_ablations.dir/tableA_ablations.cpp.o.d"
  "tableA_ablations"
  "tableA_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableA_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
