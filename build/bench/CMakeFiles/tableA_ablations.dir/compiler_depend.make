# Empty compiler generated dependencies file for tableA_ablations.
# This may be replaced when dependencies are built.
