# Empty compiler generated dependencies file for micro_chord.
# This may be replaced when dependencies are built.
