file(REMOVE_RECURSE
  "CMakeFiles/micro_chord.dir/micro_chord.cpp.o"
  "CMakeFiles/micro_chord.dir/micro_chord.cpp.o.d"
  "micro_chord"
  "micro_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
