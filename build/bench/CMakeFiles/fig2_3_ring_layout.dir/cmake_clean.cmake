file(REMOVE_RECURSE
  "CMakeFiles/fig2_3_ring_layout.dir/fig2_3_ring_layout.cpp.o"
  "CMakeFiles/fig2_3_ring_layout.dir/fig2_3_ring_layout.cpp.o.d"
  "fig2_3_ring_layout"
  "fig2_3_ring_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_3_ring_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
