# Empty compiler generated dependencies file for fig2_3_ring_layout.
# This may be replaced when dependencies are built.
