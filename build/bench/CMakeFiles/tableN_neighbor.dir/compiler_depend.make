# Empty compiler generated dependencies file for tableN_neighbor.
# This may be replaced when dependencies are built.
