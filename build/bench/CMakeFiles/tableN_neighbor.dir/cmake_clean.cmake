file(REMOVE_RECURSE
  "CMakeFiles/tableN_neighbor.dir/tableN_neighbor.cpp.o"
  "CMakeFiles/tableN_neighbor.dir/tableN_neighbor.cpp.o.d"
  "tableN_neighbor"
  "tableN_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableN_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
