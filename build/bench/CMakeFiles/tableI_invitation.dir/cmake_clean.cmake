file(REMOVE_RECURSE
  "CMakeFiles/tableI_invitation.dir/tableI_invitation.cpp.o"
  "CMakeFiles/tableI_invitation.dir/tableI_invitation.cpp.o.d"
  "tableI_invitation"
  "tableI_invitation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableI_invitation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
