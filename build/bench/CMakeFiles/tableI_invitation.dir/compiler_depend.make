# Empty compiler generated dependencies file for tableI_invitation.
# This may be replaced when dependencies are built.
