# Empty dependencies file for micro_sha1.
# This may be replaced when dependencies are built.
