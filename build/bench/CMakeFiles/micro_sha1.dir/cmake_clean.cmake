file(REMOVE_RECURSE
  "CMakeFiles/micro_sha1.dir/micro_sha1.cpp.o"
  "CMakeFiles/micro_sha1.dir/micro_sha1.cpp.o.d"
  "micro_sha1"
  "micro_sha1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sha1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
