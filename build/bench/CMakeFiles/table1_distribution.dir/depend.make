# Empty dependencies file for table1_distribution.
# This may be replaced when dependencies are built.
