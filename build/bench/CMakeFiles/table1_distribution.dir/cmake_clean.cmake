file(REMOVE_RECURSE
  "CMakeFiles/table1_distribution.dir/table1_distribution.cpp.o"
  "CMakeFiles/table1_distribution.dir/table1_distribution.cpp.o.d"
  "table1_distribution"
  "table1_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
