# Empty compiler generated dependencies file for tableR_random_injection.
# This may be replaced when dependencies are built.
