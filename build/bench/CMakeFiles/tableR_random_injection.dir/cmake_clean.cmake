file(REMOVE_RECURSE
  "CMakeFiles/tableR_random_injection.dir/tableR_random_injection.cpp.o"
  "CMakeFiles/tableR_random_injection.dir/tableR_random_injection.cpp.o.d"
  "tableR_random_injection"
  "tableR_random_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableR_random_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
