file(REMOVE_RECURSE
  "CMakeFiles/fig10_heterogeneous.dir/fig10_heterogeneous.cpp.o"
  "CMakeFiles/fig10_heterogeneous.dir/fig10_heterogeneous.cpp.o.d"
  "fig10_heterogeneous"
  "fig10_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
