# Empty dependencies file for fig10_heterogeneous.
# This may be replaced when dependencies are built.
