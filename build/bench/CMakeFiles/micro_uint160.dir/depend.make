# Empty dependencies file for micro_uint160.
# This may be replaced when dependencies are built.
