file(REMOVE_RECURSE
  "CMakeFiles/micro_uint160.dir/micro_uint160.cpp.o"
  "CMakeFiles/micro_uint160.dir/micro_uint160.cpp.o.d"
  "micro_uint160"
  "micro_uint160.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_uint160.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
