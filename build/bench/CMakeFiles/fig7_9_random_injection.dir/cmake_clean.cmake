file(REMOVE_RECURSE
  "CMakeFiles/fig7_9_random_injection.dir/fig7_9_random_injection.cpp.o"
  "CMakeFiles/fig7_9_random_injection.dir/fig7_9_random_injection.cpp.o.d"
  "fig7_9_random_injection"
  "fig7_9_random_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_9_random_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
