# Empty dependencies file for fig7_9_random_injection.
# This may be replaced when dependencies are built.
