# Empty compiler generated dependencies file for tableF_future_work.
# This may be replaced when dependencies are built.
