file(REMOVE_RECURSE
  "CMakeFiles/tableF_future_work.dir/tableF_future_work.cpp.o"
  "CMakeFiles/tableF_future_work.dir/tableF_future_work.cpp.o.d"
  "tableF_future_work"
  "tableF_future_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableF_future_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
