# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tableC_flash_crowd.
