file(REMOVE_RECURSE
  "CMakeFiles/tableC_flash_crowd.dir/tableC_flash_crowd.cpp.o"
  "CMakeFiles/tableC_flash_crowd.dir/tableC_flash_crowd.cpp.o.d"
  "tableC_flash_crowd"
  "tableC_flash_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableC_flash_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
