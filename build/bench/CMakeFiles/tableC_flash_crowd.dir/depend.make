# Empty dependencies file for tableC_flash_crowd.
# This may be replaced when dependencies are built.
