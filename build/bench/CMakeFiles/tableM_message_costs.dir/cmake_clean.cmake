file(REMOVE_RECURSE
  "CMakeFiles/tableM_message_costs.dir/tableM_message_costs.cpp.o"
  "CMakeFiles/tableM_message_costs.dir/tableM_message_costs.cpp.o.d"
  "tableM_message_costs"
  "tableM_message_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableM_message_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
