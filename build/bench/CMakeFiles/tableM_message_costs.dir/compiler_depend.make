# Empty compiler generated dependencies file for tableM_message_costs.
# This may be replaced when dependencies are built.
