# Empty dependencies file for dhtlb_lb.
# This may be replaced when dependencies are built.
