file(REMOVE_RECURSE
  "libdhtlb_lb.a"
)
