
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lb/chosen_id.cpp" "src/lb/CMakeFiles/dhtlb_lb.dir/chosen_id.cpp.o" "gcc" "src/lb/CMakeFiles/dhtlb_lb.dir/chosen_id.cpp.o.d"
  "/root/repo/src/lb/common.cpp" "src/lb/CMakeFiles/dhtlb_lb.dir/common.cpp.o" "gcc" "src/lb/CMakeFiles/dhtlb_lb.dir/common.cpp.o.d"
  "/root/repo/src/lb/factory.cpp" "src/lb/CMakeFiles/dhtlb_lb.dir/factory.cpp.o" "gcc" "src/lb/CMakeFiles/dhtlb_lb.dir/factory.cpp.o.d"
  "/root/repo/src/lb/invitation.cpp" "src/lb/CMakeFiles/dhtlb_lb.dir/invitation.cpp.o" "gcc" "src/lb/CMakeFiles/dhtlb_lb.dir/invitation.cpp.o.d"
  "/root/repo/src/lb/neighbor_injection.cpp" "src/lb/CMakeFiles/dhtlb_lb.dir/neighbor_injection.cpp.o" "gcc" "src/lb/CMakeFiles/dhtlb_lb.dir/neighbor_injection.cpp.o.d"
  "/root/repo/src/lb/random_injection.cpp" "src/lb/CMakeFiles/dhtlb_lb.dir/random_injection.cpp.o" "gcc" "src/lb/CMakeFiles/dhtlb_lb.dir/random_injection.cpp.o.d"
  "/root/repo/src/lb/strength_aware.cpp" "src/lb/CMakeFiles/dhtlb_lb.dir/strength_aware.cpp.o" "gcc" "src/lb/CMakeFiles/dhtlb_lb.dir/strength_aware.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dhtlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/dhtlb_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dhtlb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
