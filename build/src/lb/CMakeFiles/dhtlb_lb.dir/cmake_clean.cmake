file(REMOVE_RECURSE
  "CMakeFiles/dhtlb_lb.dir/chosen_id.cpp.o"
  "CMakeFiles/dhtlb_lb.dir/chosen_id.cpp.o.d"
  "CMakeFiles/dhtlb_lb.dir/common.cpp.o"
  "CMakeFiles/dhtlb_lb.dir/common.cpp.o.d"
  "CMakeFiles/dhtlb_lb.dir/factory.cpp.o"
  "CMakeFiles/dhtlb_lb.dir/factory.cpp.o.d"
  "CMakeFiles/dhtlb_lb.dir/invitation.cpp.o"
  "CMakeFiles/dhtlb_lb.dir/invitation.cpp.o.d"
  "CMakeFiles/dhtlb_lb.dir/neighbor_injection.cpp.o"
  "CMakeFiles/dhtlb_lb.dir/neighbor_injection.cpp.o.d"
  "CMakeFiles/dhtlb_lb.dir/random_injection.cpp.o"
  "CMakeFiles/dhtlb_lb.dir/random_injection.cpp.o.d"
  "CMakeFiles/dhtlb_lb.dir/strength_aware.cpp.o"
  "CMakeFiles/dhtlb_lb.dir/strength_aware.cpp.o.d"
  "libdhtlb_lb.a"
  "libdhtlb_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhtlb_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
