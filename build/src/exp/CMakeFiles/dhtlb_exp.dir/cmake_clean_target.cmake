file(REMOVE_RECURSE
  "libdhtlb_exp.a"
)
