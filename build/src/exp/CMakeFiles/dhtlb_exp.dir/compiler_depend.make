# Empty compiler generated dependencies file for dhtlb_exp.
# This may be replaced when dependencies are built.
