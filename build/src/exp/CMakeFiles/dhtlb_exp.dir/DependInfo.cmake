
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/experiment.cpp" "src/exp/CMakeFiles/dhtlb_exp.dir/experiment.cpp.o" "gcc" "src/exp/CMakeFiles/dhtlb_exp.dir/experiment.cpp.o.d"
  "/root/repo/src/exp/report.cpp" "src/exp/CMakeFiles/dhtlb_exp.dir/report.cpp.o" "gcc" "src/exp/CMakeFiles/dhtlb_exp.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dhtlb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lb/CMakeFiles/dhtlb_lb.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dhtlb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dhtlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/dhtlb_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
