file(REMOVE_RECURSE
  "CMakeFiles/dhtlb_exp.dir/experiment.cpp.o"
  "CMakeFiles/dhtlb_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/dhtlb_exp.dir/report.cpp.o"
  "CMakeFiles/dhtlb_exp.dir/report.cpp.o.d"
  "libdhtlb_exp.a"
  "libdhtlb_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhtlb_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
