file(REMOVE_RECURSE
  "CMakeFiles/dhtlb_support.dir/cli.cpp.o"
  "CMakeFiles/dhtlb_support.dir/cli.cpp.o.d"
  "CMakeFiles/dhtlb_support.dir/env.cpp.o"
  "CMakeFiles/dhtlb_support.dir/env.cpp.o.d"
  "CMakeFiles/dhtlb_support.dir/rng.cpp.o"
  "CMakeFiles/dhtlb_support.dir/rng.cpp.o.d"
  "CMakeFiles/dhtlb_support.dir/table.cpp.o"
  "CMakeFiles/dhtlb_support.dir/table.cpp.o.d"
  "CMakeFiles/dhtlb_support.dir/thread_pool.cpp.o"
  "CMakeFiles/dhtlb_support.dir/thread_pool.cpp.o.d"
  "CMakeFiles/dhtlb_support.dir/uint160.cpp.o"
  "CMakeFiles/dhtlb_support.dir/uint160.cpp.o.d"
  "libdhtlb_support.a"
  "libdhtlb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhtlb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
