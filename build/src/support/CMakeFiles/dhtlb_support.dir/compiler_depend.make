# Empty compiler generated dependencies file for dhtlb_support.
# This may be replaced when dependencies are built.
