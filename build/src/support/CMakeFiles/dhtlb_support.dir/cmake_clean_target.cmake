file(REMOVE_RECURSE
  "libdhtlb_support.a"
)
