file(REMOVE_RECURSE
  "CMakeFiles/dhtlb_hashing.dir/sha1.cpp.o"
  "CMakeFiles/dhtlb_hashing.dir/sha1.cpp.o.d"
  "libdhtlb_hashing.a"
  "libdhtlb_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhtlb_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
