# Empty dependencies file for dhtlb_hashing.
# This may be replaced when dependencies are built.
