file(REMOVE_RECURSE
  "libdhtlb_hashing.a"
)
