# CMake generated Testfile for 
# Source directory: /root/repo/src/hashing
# Build directory: /root/repo/build/src/hashing
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
