file(REMOVE_RECURSE
  "CMakeFiles/dhtlb_sim.dir/backup.cpp.o"
  "CMakeFiles/dhtlb_sim.dir/backup.cpp.o.d"
  "CMakeFiles/dhtlb_sim.dir/engine.cpp.o"
  "CMakeFiles/dhtlb_sim.dir/engine.cpp.o.d"
  "CMakeFiles/dhtlb_sim.dir/params.cpp.o"
  "CMakeFiles/dhtlb_sim.dir/params.cpp.o.d"
  "CMakeFiles/dhtlb_sim.dir/task_store.cpp.o"
  "CMakeFiles/dhtlb_sim.dir/task_store.cpp.o.d"
  "CMakeFiles/dhtlb_sim.dir/world.cpp.o"
  "CMakeFiles/dhtlb_sim.dir/world.cpp.o.d"
  "libdhtlb_sim.a"
  "libdhtlb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhtlb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
