# Empty compiler generated dependencies file for dhtlb_sim.
# This may be replaced when dependencies are built.
