
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/backup.cpp" "src/sim/CMakeFiles/dhtlb_sim.dir/backup.cpp.o" "gcc" "src/sim/CMakeFiles/dhtlb_sim.dir/backup.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/dhtlb_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/dhtlb_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/params.cpp" "src/sim/CMakeFiles/dhtlb_sim.dir/params.cpp.o" "gcc" "src/sim/CMakeFiles/dhtlb_sim.dir/params.cpp.o.d"
  "/root/repo/src/sim/task_store.cpp" "src/sim/CMakeFiles/dhtlb_sim.dir/task_store.cpp.o" "gcc" "src/sim/CMakeFiles/dhtlb_sim.dir/task_store.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/sim/CMakeFiles/dhtlb_sim.dir/world.cpp.o" "gcc" "src/sim/CMakeFiles/dhtlb_sim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dhtlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/dhtlb_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
