file(REMOVE_RECURSE
  "libdhtlb_sim.a"
)
