file(REMOVE_RECURSE
  "libdhtlb_stats.a"
)
