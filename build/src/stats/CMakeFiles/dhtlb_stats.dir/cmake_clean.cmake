file(REMOVE_RECURSE
  "CMakeFiles/dhtlb_stats.dir/descriptive.cpp.o"
  "CMakeFiles/dhtlb_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/dhtlb_stats.dir/distribution_fit.cpp.o"
  "CMakeFiles/dhtlb_stats.dir/distribution_fit.cpp.o.d"
  "CMakeFiles/dhtlb_stats.dir/histogram.cpp.o"
  "CMakeFiles/dhtlb_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/dhtlb_stats.dir/load_metrics.cpp.o"
  "CMakeFiles/dhtlb_stats.dir/load_metrics.cpp.o.d"
  "libdhtlb_stats.a"
  "libdhtlb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhtlb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
