# Empty dependencies file for dhtlb_stats.
# This may be replaced when dependencies are built.
