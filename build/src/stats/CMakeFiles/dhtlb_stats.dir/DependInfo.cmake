
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/dhtlb_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/dhtlb_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distribution_fit.cpp" "src/stats/CMakeFiles/dhtlb_stats.dir/distribution_fit.cpp.o" "gcc" "src/stats/CMakeFiles/dhtlb_stats.dir/distribution_fit.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/dhtlb_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/dhtlb_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/load_metrics.cpp" "src/stats/CMakeFiles/dhtlb_stats.dir/load_metrics.cpp.o" "gcc" "src/stats/CMakeFiles/dhtlb_stats.dir/load_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dhtlb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
