# Empty dependencies file for dhtlb_chord.
# This may be replaced when dependencies are built.
