file(REMOVE_RECURSE
  "libdhtlb_chord.a"
)
