file(REMOVE_RECURSE
  "CMakeFiles/dhtlb_chord.dir/compute.cpp.o"
  "CMakeFiles/dhtlb_chord.dir/compute.cpp.o.d"
  "CMakeFiles/dhtlb_chord.dir/network.cpp.o"
  "CMakeFiles/dhtlb_chord.dir/network.cpp.o.d"
  "CMakeFiles/dhtlb_chord.dir/node.cpp.o"
  "CMakeFiles/dhtlb_chord.dir/node.cpp.o.d"
  "CMakeFiles/dhtlb_chord.dir/sybil_placement.cpp.o"
  "CMakeFiles/dhtlb_chord.dir/sybil_placement.cpp.o.d"
  "libdhtlb_chord.a"
  "libdhtlb_chord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhtlb_chord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
