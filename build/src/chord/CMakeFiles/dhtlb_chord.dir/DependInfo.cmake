
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chord/compute.cpp" "src/chord/CMakeFiles/dhtlb_chord.dir/compute.cpp.o" "gcc" "src/chord/CMakeFiles/dhtlb_chord.dir/compute.cpp.o.d"
  "/root/repo/src/chord/network.cpp" "src/chord/CMakeFiles/dhtlb_chord.dir/network.cpp.o" "gcc" "src/chord/CMakeFiles/dhtlb_chord.dir/network.cpp.o.d"
  "/root/repo/src/chord/node.cpp" "src/chord/CMakeFiles/dhtlb_chord.dir/node.cpp.o" "gcc" "src/chord/CMakeFiles/dhtlb_chord.dir/node.cpp.o.d"
  "/root/repo/src/chord/sybil_placement.cpp" "src/chord/CMakeFiles/dhtlb_chord.dir/sybil_placement.cpp.o" "gcc" "src/chord/CMakeFiles/dhtlb_chord.dir/sybil_placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/dhtlb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hashing/CMakeFiles/dhtlb_hashing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
