# Empty dependencies file for dhtlb_viz.
# This may be replaced when dependencies are built.
