
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/ascii_hist.cpp" "src/viz/CMakeFiles/dhtlb_viz.dir/ascii_hist.cpp.o" "gcc" "src/viz/CMakeFiles/dhtlb_viz.dir/ascii_hist.cpp.o.d"
  "/root/repo/src/viz/ring_layout.cpp" "src/viz/CMakeFiles/dhtlb_viz.dir/ring_layout.cpp.o" "gcc" "src/viz/CMakeFiles/dhtlb_viz.dir/ring_layout.cpp.o.d"
  "/root/repo/src/viz/series.cpp" "src/viz/CMakeFiles/dhtlb_viz.dir/series.cpp.o" "gcc" "src/viz/CMakeFiles/dhtlb_viz.dir/series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/dhtlb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/dhtlb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
