file(REMOVE_RECURSE
  "CMakeFiles/dhtlb_viz.dir/ascii_hist.cpp.o"
  "CMakeFiles/dhtlb_viz.dir/ascii_hist.cpp.o.d"
  "CMakeFiles/dhtlb_viz.dir/ring_layout.cpp.o"
  "CMakeFiles/dhtlb_viz.dir/ring_layout.cpp.o.d"
  "CMakeFiles/dhtlb_viz.dir/series.cpp.o"
  "CMakeFiles/dhtlb_viz.dir/series.cpp.o.d"
  "libdhtlb_viz.a"
  "libdhtlb_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhtlb_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
