file(REMOVE_RECURSE
  "libdhtlb_viz.a"
)
