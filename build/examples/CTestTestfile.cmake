# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.strategy_comparison "/root/repo/build/examples/strategy_comparison" "100" "10000" "2")
set_tests_properties(example.strategy_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.heterogeneous_cluster "/root/repo/build/examples/heterogeneous_cluster" "100" "10000")
set_tests_properties(example.heterogeneous_cluster PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.filesharing_churn "/root/repo/build/examples/filesharing_churn" "24" "500")
set_tests_properties(example.filesharing_churn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.chordreduce_wordcount "/root/repo/build/examples/chordreduce_wordcount" "50" "2000")
set_tests_properties(example.chordreduce_wordcount PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.dhtlb_cli "/root/repo/build/examples/dhtlb_cli" "--strategy" "random-injection" "--nodes" "100" "--tasks" "5000" "--trials" "2")
set_tests_properties(example.dhtlb_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.dhtlb_cli_help "/root/repo/build/examples/dhtlb_cli" "--help")
set_tests_properties(example.dhtlb_cli_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.dhtlb_cli_list "/root/repo/build/examples/dhtlb_cli" "--list-strategies")
set_tests_properties(example.dhtlb_cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
