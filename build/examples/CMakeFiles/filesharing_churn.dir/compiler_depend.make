# Empty compiler generated dependencies file for filesharing_churn.
# This may be replaced when dependencies are built.
