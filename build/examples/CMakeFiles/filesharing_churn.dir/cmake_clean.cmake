file(REMOVE_RECURSE
  "CMakeFiles/filesharing_churn.dir/filesharing_churn.cpp.o"
  "CMakeFiles/filesharing_churn.dir/filesharing_churn.cpp.o.d"
  "filesharing_churn"
  "filesharing_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesharing_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
