# Empty dependencies file for dhtlb_cli.
# This may be replaced when dependencies are built.
