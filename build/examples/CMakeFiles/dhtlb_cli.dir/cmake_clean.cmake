file(REMOVE_RECURSE
  "CMakeFiles/dhtlb_cli.dir/dhtlb_sim.cpp.o"
  "CMakeFiles/dhtlb_cli.dir/dhtlb_sim.cpp.o.d"
  "dhtlb_cli"
  "dhtlb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhtlb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
