# Empty dependencies file for chordreduce_wordcount.
# This may be replaced when dependencies are built.
