file(REMOVE_RECURSE
  "CMakeFiles/chordreduce_wordcount.dir/chordreduce_wordcount.cpp.o"
  "CMakeFiles/chordreduce_wordcount.dir/chordreduce_wordcount.cpp.o.d"
  "chordreduce_wordcount"
  "chordreduce_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chordreduce_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
