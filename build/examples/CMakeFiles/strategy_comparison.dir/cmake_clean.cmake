file(REMOVE_RECURSE
  "CMakeFiles/strategy_comparison.dir/strategy_comparison.cpp.o"
  "CMakeFiles/strategy_comparison.dir/strategy_comparison.cpp.o.d"
  "strategy_comparison"
  "strategy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
