add_test([=[Umbrella.EndToEndMiniRun]=]  /root/repo/build/tests/umbrella_test [==[--gtest_filter=Umbrella.EndToEndMiniRun]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.EndToEndMiniRun]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_test_TESTS Umbrella.EndToEndMiniRun)
