# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/hashing_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/chord_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/lb_test[1]_include.cmake")
include("/root/repo/build/tests/exp_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
