file(REMOVE_RECURSE
  "CMakeFiles/lb_test.dir/lb/extensions_test.cpp.o"
  "CMakeFiles/lb_test.dir/lb/extensions_test.cpp.o.d"
  "CMakeFiles/lb_test.dir/lb/strategies_test.cpp.o"
  "CMakeFiles/lb_test.dir/lb/strategies_test.cpp.o.d"
  "lb_test"
  "lb_test.pdb"
  "lb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
