# Empty compiler generated dependencies file for lb_test.
# This may be replaced when dependencies are built.
