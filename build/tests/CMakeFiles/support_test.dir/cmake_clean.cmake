file(REMOVE_RECURSE
  "CMakeFiles/support_test.dir/support/cli_test.cpp.o"
  "CMakeFiles/support_test.dir/support/cli_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/env_test.cpp.o"
  "CMakeFiles/support_test.dir/support/env_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/ring_math_test.cpp.o"
  "CMakeFiles/support_test.dir/support/ring_math_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/rng_test.cpp.o"
  "CMakeFiles/support_test.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/table_test.cpp.o"
  "CMakeFiles/support_test.dir/support/table_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/thread_pool_test.cpp.o"
  "CMakeFiles/support_test.dir/support/thread_pool_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/uint160_differential_test.cpp.o"
  "CMakeFiles/support_test.dir/support/uint160_differential_test.cpp.o.d"
  "CMakeFiles/support_test.dir/support/uint160_test.cpp.o"
  "CMakeFiles/support_test.dir/support/uint160_test.cpp.o.d"
  "support_test"
  "support_test.pdb"
  "support_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
