file(REMOVE_RECURSE
  "CMakeFiles/viz_test.dir/viz/series_test.cpp.o"
  "CMakeFiles/viz_test.dir/viz/series_test.cpp.o.d"
  "CMakeFiles/viz_test.dir/viz/viz_test.cpp.o"
  "CMakeFiles/viz_test.dir/viz/viz_test.cpp.o.d"
  "viz_test"
  "viz_test.pdb"
  "viz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
