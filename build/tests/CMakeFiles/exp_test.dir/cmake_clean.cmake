file(REMOVE_RECURSE
  "CMakeFiles/exp_test.dir/exp/experiment_test.cpp.o"
  "CMakeFiles/exp_test.dir/exp/experiment_test.cpp.o.d"
  "CMakeFiles/exp_test.dir/exp/report_test.cpp.o"
  "CMakeFiles/exp_test.dir/exp/report_test.cpp.o.d"
  "exp_test"
  "exp_test.pdb"
  "exp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
