# Empty dependencies file for chord_test.
# This may be replaced when dependencies are built.
