file(REMOVE_RECURSE
  "CMakeFiles/chord_test.dir/chord/churn_stress_test.cpp.o"
  "CMakeFiles/chord_test.dir/chord/churn_stress_test.cpp.o.d"
  "CMakeFiles/chord_test.dir/chord/compute_test.cpp.o"
  "CMakeFiles/chord_test.dir/chord/compute_test.cpp.o.d"
  "CMakeFiles/chord_test.dir/chord/join_storm_test.cpp.o"
  "CMakeFiles/chord_test.dir/chord/join_storm_test.cpp.o.d"
  "CMakeFiles/chord_test.dir/chord/message_accounting_test.cpp.o"
  "CMakeFiles/chord_test.dir/chord/message_accounting_test.cpp.o.d"
  "CMakeFiles/chord_test.dir/chord/network_test.cpp.o"
  "CMakeFiles/chord_test.dir/chord/network_test.cpp.o.d"
  "CMakeFiles/chord_test.dir/chord/node_test.cpp.o"
  "CMakeFiles/chord_test.dir/chord/node_test.cpp.o.d"
  "CMakeFiles/chord_test.dir/chord/sybil_placement_test.cpp.o"
  "CMakeFiles/chord_test.dir/chord/sybil_placement_test.cpp.o.d"
  "chord_test"
  "chord_test.pdb"
  "chord_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chord_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
