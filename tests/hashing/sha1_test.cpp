#include "hashing/sha1.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dhtlb::hashing {
namespace {

std::string hex(std::string_view message) {
  return Sha1::to_hex(Sha1::hash(message));
}

// RFC 3174 / FIPS 180-1 reference vectors.
TEST(Sha1, Rfc3174TestVector1) {
  EXPECT_EQ(hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Rfc3174TestVector2) {
  EXPECT_EQ(hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(Sha1::to_hex(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

// Messages whose padded length straddles the 56-byte block boundary are
// the classic off-by-one spot in SHA-1 implementations.
class Sha1PaddingBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha1PaddingBoundary, MatchesIncrementalOneByteAtATime) {
  const std::size_t len = GetParam();
  std::string message(len, 'x');
  for (std::size_t i = 0; i < len; ++i) {
    message[i] = static_cast<char>('a' + (i % 26));
  }
  const auto oneshot = Sha1::hash(message);
  Sha1 h;
  for (char c : message) h.update(std::string_view(&c, 1));
  EXPECT_EQ(h.finish(), oneshot) << "length " << len;
}

INSTANTIATE_TEST_SUITE_P(BoundaryLengths, Sha1PaddingBoundary,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 121, 127, 128, 129, 255,
                                           256, 1000));

TEST(Sha1, SplitPointsDoNotAffectDigest) {
  const std::string message =
      "a moderately long message used to exercise chunked updates across "
      "several block boundaries 0123456789 0123456789 0123456789";
  const auto oneshot = Sha1::hash(message);
  for (std::size_t split = 0; split <= message.size(); split += 7) {
    Sha1 h;
    h.update(std::string_view(message).substr(0, split));
    h.update(std::string_view(message).substr(split));
    EXPECT_EQ(h.finish(), oneshot) << "split at " << split;
  }
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 h;
  h.update("first message");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(Sha1::to_hex(h.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, HashU64IsStable) {
  // Pin the project's ID-generation primitive: changing it would silently
  // re-randomize every experiment.
  const auto id = Sha1::hash_u64(0);
  EXPECT_EQ(id, Sha1::hash_u64(0));
  EXPECT_NE(id, Sha1::hash_u64(1));
  // Little-endian encoding of 0x0102030405060708 hashed:
  const auto a = Sha1::hash_u64(0x0102030405060708ULL);
  std::uint8_t bytes[8] = {0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01};
  const auto expected =
      support::Uint160::from_bytes(Sha1::hash(std::span(bytes, 8)));
  EXPECT_EQ(a, expected);
}

TEST(Sha1, HashU64ValuesSpreadAcrossTheRing) {
  // The whole premise of the paper: SHA-1 outputs cover the ring but not
  // evenly.  Sanity-check coverage of all four quadrants.
  int quadrant[4] = {0, 0, 0, 0};
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto id = Sha1::hash_u64(i);
    quadrant[id.to_bytes()[0] >> 6] += 1;
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_GT(quadrant[q], 150) << "quadrant " << q;
  }
}

TEST(Sha1, HashToRingMatchesDigest) {
  const auto via_ring = Sha1::hash_to_ring("chunk-017.dat");
  const auto digest = Sha1::hash("chunk-017.dat");
  EXPECT_EQ(via_ring, support::Uint160::from_bytes(digest));
}

TEST(Sha1, DigestToHexFormatting) {
  Sha1::Digest d{};
  d[0] = 0xAB;
  d[19] = 0x01;
  const std::string h = Sha1::to_hex(d);
  EXPECT_EQ(h.size(), 40u);
  EXPECT_EQ(h.substr(0, 2), "ab");
  EXPECT_EQ(h.substr(38, 2), "01");
}

}  // namespace
}  // namespace dhtlb::hashing
