// Cross-module integration tests: full simulations exercising the engine,
// world, strategies and experiment harness together, asserting the
// paper's qualitative results (the "shape" EXPERIMENTS.md reports on).
#include <gtest/gtest.h>

#include <numeric>

#include "chord/network.hpp"
#include "chord/sybil_placement.hpp"
#include "exp/experiment.hpp"
#include "hashing/sha1.hpp"
#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "stats/load_metrics.hpp"
#include "support/rng.hpp"

namespace dhtlb {
namespace {

sim::Params config(std::size_t nodes, std::uint64_t tasks) {
  sim::Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  return p;
}

TEST(Integration, TaskConservationUnderEveryStrategy) {
  for (const auto name : lb::strategy_names()) {
    sim::Params p = config(100, 5000);
    if (name == "churn") p.churn_rate = 0.02;
    sim::Engine engine(p, 3, lb::make_strategy(name));
    const sim::RunResult r = engine.run();
    EXPECT_TRUE(r.completed) << name;
    EXPECT_EQ(engine.world().remaining_tasks(), 0u) << name;
    EXPECT_TRUE(engine.world().check_invariants()) << name;
  }
}

TEST(Integration, ChurnTableShape) {
  // Table II columns, shrunk: increasing churn monotonically (on
  // average) lowers the runtime factor, and more tasks amplify the gain.
  auto mean_factor = [](std::size_t nodes, std::uint64_t tasks, double rate) {
    double sum = 0.0;
    constexpr int kTrials = 4;
    for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
      sim::Params p = config(nodes, tasks);
      p.churn_rate = rate;
      sum += sim::Engine(p, seed).run().runtime_factor;
    }
    return sum / kTrials;
  };
  const double none = mean_factor(100, 10'000, 0.0);
  const double low = mean_factor(100, 10'000, 0.001);
  const double high = mean_factor(100, 10'000, 0.01);
  EXPECT_LT(high, low);
  EXPECT_LT(low, none);

  // More tasks per node => churn gains more (paper: "the gains from
  // churn are most strongly related [to] the number of tasks").
  const double small_gain = none - high;
  const double big_none = mean_factor(100, 100'000, 0.0);
  const double big_high = mean_factor(100, 100'000, 0.01);
  EXPECT_GT((big_none - big_high) / big_none, small_gain / none * 0.8)
      << "relative improvement should not shrink with more tasks";
}

TEST(Integration, RandomInjectionImprovesBalanceAtTick35) {
  // Figures 7-8: at tick 35, the random-injection network has fewer idle
  // nodes and a fairer distribution than no strategy.
  const auto none = exp::run_with_snapshots(config(500, 50'000), "none",
                                            7, {35});
  const auto inj = exp::run_with_snapshots(config(500, 50'000),
                                           "random-injection", 7, {35});
  ASSERT_EQ(none.snapshots.size(), 1u);
  ASSERT_EQ(inj.snapshots.size(), 1u);
  const auto& ln = none.snapshots[0].workloads;
  const auto& li = inj.snapshots[0].workloads;
  EXPECT_LT(stats::idle_fraction(li), stats::idle_fraction(ln));
  EXPECT_LT(stats::gini(li), stats::gini(ln));
}

TEST(Integration, NeighborInjectionShiftsTheHistogramLeft) {
  // Figure 11: neighbor injection lowers the maximum workload even while
  // leaving more idle nodes than random injection.
  const auto none = exp::run_with_snapshots(config(500, 50'000), "none",
                                            9, {35});
  const auto nbr = exp::run_with_snapshots(config(500, 50'000),
                                           "neighbor-injection", 9, {35});
  const auto& ln = none.snapshots[0].workloads;
  const auto& lb_ = nbr.snapshots[0].workloads;
  EXPECT_LT(*std::max_element(lb_.begin(), lb_.end()),
            *std::max_element(ln.begin(), ln.end()));
}

TEST(Integration, HeterogeneousNetworksStillBalance) {
  // Figure 10: random injection improves the het distribution too.
  sim::Params p = config(300, 30'000);
  p.heterogeneous = true;
  const auto none = exp::run_with_snapshots(p, "none", 11, {35});
  const auto inj = exp::run_with_snapshots(p, "random-injection", 11, {35});
  EXPECT_LT(stats::gini(inj.snapshots[0].workloads),
            stats::gini(none.snapshots[0].workloads));
}

TEST(Integration, SybilStrategiesBeatChurnOnFinalRuntime) {
  // Figure 9's message: targeted Sybil creation outperforms blind churn.
  double churn = 0.0, inj = 0.0;
  constexpr int kTrials = 3;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    sim::Params pc = config(300, 30'000);
    pc.churn_rate = 0.01;
    churn += sim::Engine(pc, seed).run().runtime_factor;
    inj += sim::Engine(config(300, 30'000), seed,
                       lb::make_strategy("random-injection"))
               .run()
               .runtime_factor;
  }
  EXPECT_LT(inj, churn);
}

TEST(Integration, EqualTaskNodeRatioGivesSimilarFactors) {
  // §VI-B: networks with the same tasks-per-node ratio have similar
  // runtime factors (the smaller slightly faster).
  double small = 0.0, large = 0.0;
  constexpr int kTrials = 4;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    small += sim::Engine(config(100, 10'000), seed,
                         lb::make_strategy("random-injection"))
                 .run()
                 .runtime_factor;
    large += sim::Engine(config(500, 50'000), seed,
                         lb::make_strategy("random-injection"))
                 .run()
                 .runtime_factor;
  }
  EXPECT_NEAR(small / kTrials, large / kTrials, 0.5);
}

TEST(Integration, ChordSubstrateValidatesSimAssumptions) {
  // The tick simulator assumes joins/Sybil placements are cheap and the
  // ring stays consistent; check both on the protocol substrate.
  chord::Network net(5);
  support::Rng rng(13);
  const auto first = hashing::Sha1::hash_u64(rng());
  net.create(first);
  for (int i = 1; i < 40; ++i) {
    ASSERT_TRUE(net.join(hashing::Sha1::hash_u64(rng()), first));
    net.stabilize(2);
  }
  net.stabilize(4);
  net.build_all_fingers();
  ASSERT_TRUE(net.ring_consistent());

  // Sybil placement into a specific gap via hash search, then join there.
  const auto ids = net.node_ids();
  const auto placement = chord::place_by_hash_search(ids[0], ids[1], rng);
  ASSERT_TRUE(placement.has_value());
  EXPECT_TRUE(net.join(placement->id, first));
  net.stabilize(4);
  EXPECT_TRUE(net.ring_consistent());
  EXPECT_EQ(net.true_owner(placement->id), placement->id);
}

TEST(Integration, WorkPerTickRampsUpUnderInjection) {
  // §VI-A's mechanism: balancing keeps more nodes busy, so work per tick
  // stays higher for longer.  Compare the tail (tick > ideal) totals.
  sim::Engine base(config(300, 30'000), 17);
  base.record_tick_series(true);
  sim::Engine inj(config(300, 30'000), 17,
                  lb::make_strategy("random-injection"));
  inj.record_tick_series(true);
  const auto rb = base.run();
  const auto ri = inj.run();
  const std::uint64_t ideal = rb.ideal_ticks;
  auto tail_mean = [&](const std::vector<std::uint64_t>& series) {
    if (series.size() <= ideal) return 0.0;
    double sum = 0.0;
    for (std::size_t t = static_cast<std::size_t>(ideal);
         t < series.size(); ++t) {
      sum += static_cast<double>(series[t]);
    }
    return sum / static_cast<double>(series.size() - ideal);
  };
  EXPECT_GT(tail_mean(ri.work_per_tick) + 1.0, tail_mean(rb.work_per_tick))
      << "injection keeps per-tick throughput at least comparable";
  EXPECT_LT(ri.ticks, rb.ticks);
}

}  // namespace
}  // namespace dhtlb
