#include "chord/compute.hpp"

#include <gtest/gtest.h>

namespace dhtlb::chord {
namespace {

ComputeConfig small(ComputePolicy policy) {
  ComputeConfig c;
  c.nodes = 32;
  c.tasks = 1600;
  c.policy = policy;
  c.seed = 5;
  return c;
}

TEST(Compute, BaselineCompletesAboveIdeal) {
  const ComputeResult r = run_compute(small(ComputePolicy::kNone));
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.ideal_ticks, 50u);
  EXPECT_GE(r.runtime_factor, 1.0);
  EXPECT_EQ(r.sybils_created, 0u);
  EXPECT_EQ(r.failures, 0u);
  EXPECT_GT(r.maintenance_messages, 0u) << "upkeep always costs messages";
}

TEST(Compute, Deterministic) {
  const ComputeResult a = run_compute(small(ComputePolicy::kRandomInjection));
  const ComputeResult b = run_compute(small(ComputePolicy::kRandomInjection));
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.messages.total(), b.messages.total());
  EXPECT_EQ(a.sybils_created, b.sybils_created);
}

TEST(Compute, RandomInjectionBeatsBaseline) {
  const ComputeResult base = run_compute(small(ComputePolicy::kNone));
  const ComputeResult inj =
      run_compute(small(ComputePolicy::kRandomInjection));
  EXPECT_TRUE(inj.completed);
  EXPECT_LT(inj.ticks, base.ticks)
      << "the tick simulator's headline result must survive protocol "
         "fidelity";
  EXPECT_GT(inj.sybils_created, 0u);
}

TEST(Compute, ChurnBeatsBaselineAndLosesNoTasks) {
  const ComputeResult base = run_compute(small(ComputePolicy::kNone));
  ComputeConfig c = small(ComputePolicy::kChurn);
  c.churn_rate = 0.02;
  const ComputeResult churn = run_compute(c);
  EXPECT_TRUE(churn.completed) << "active backup loses nothing";
  EXPECT_GT(churn.failures, 0u);
  EXPECT_GT(churn.joins, 0u);
  EXPECT_LT(churn.ticks, base.ticks);
}

TEST(Compute, NeighborInjectionPlacesViaHashSearch) {
  const ComputeResult r =
      run_compute(small(ComputePolicy::kNeighborInjection));
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.sybils_created, 0u);
  // Hash search inside a 1/n gap needs ~n draws per placement; random
  // injection needs exactly one.  This is the placement-cost asymmetry.
  EXPECT_GT(r.sybil_search_hashes, r.sybils_created);
}

TEST(Compute, RandomInjectionPaysOneHashPerPlacement) {
  const ComputeResult r =
      run_compute(small(ComputePolicy::kRandomInjection));
  // Every decision draws exactly one hash whether or not the join
  // succeeds, so hashes ~ placements.
  EXPECT_GE(r.sybil_search_hashes, r.sybils_created);
  EXPECT_LT(r.sybil_search_hashes, r.sybils_created + 200u);
}

TEST(Compute, TransfersHappenOnMembershipChanges) {
  ComputeConfig c = small(ComputePolicy::kChurn);
  c.churn_rate = 0.05;
  const ComputeResult r = run_compute(c);
  EXPECT_GT(r.tasks_transferred, 0u);
}

TEST(Compute, RuntimeShapeMatchesTickSimulator) {
  // Cross-model validation: protocol-level runtime factors must order
  // the same way the tick simulator orders them (none > churn > random
  // injection).
  const double base =
      run_compute(small(ComputePolicy::kNone)).runtime_factor;
  ComputeConfig cc = small(ComputePolicy::kChurn);
  cc.churn_rate = 0.02;
  const double churn = run_compute(cc).runtime_factor;
  const double inj =
      run_compute(small(ComputePolicy::kRandomInjection)).runtime_factor;
  EXPECT_LT(inj, churn);
  EXPECT_LT(churn, base);
}

}  // namespace
}  // namespace dhtlb::chord
