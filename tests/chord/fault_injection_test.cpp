// Message-fault injection on chord::Network: off-by-default bit-purity
// (no RNG draws when every probability is zero), deterministic streams
// under a fixed seed, and the semantics of each fault kind.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "chord/network.hpp"
#include "hashing/sha1.hpp"
#include "obs/trace.hpp"

namespace dhtlb::chord {
namespace {

using hashing::Sha1;

Network build_ring(std::size_t n) {
  Network net(4);
  const NodeId first = net.create(Sha1::hash_u64(0));
  for (std::size_t i = 1; i < n; ++i) {
    net.join(Sha1::hash_u64(i), first);
    net.stabilize(2);
  }
  net.stabilize(6);
  net.build_all_fingers();
  EXPECT_TRUE(net.ring_consistent());
  return net;
}

MessageStats run_workload(Network& net) {
  net.stats().reset();
  for (std::uint64_t k = 100; k < 120; ++k) {
    net.lookup(net.node_ids().front(), Sha1::hash_u64(k));
  }
  net.stabilize(3);
  return net.stats();
}

TEST(FaultInjection, DefaultsOffAndAnyReflectsConfig) {
  FaultConfig config;
  EXPECT_FALSE(config.any());
  config.delay = 0.1;
  EXPECT_TRUE(config.any());
  Network net(4);
  EXPECT_FALSE(net.faults().any());
}

TEST(FaultInjection, ZeroProbabilitiesAreBitIdenticalToNoInjector) {
  // Seeding the injector but leaving every probability at zero must not
  // change a single message count: zero-probability rolls short-circuit
  // before consuming a draw, so baselines cannot drift.
  Network plain = build_ring(16);
  Network seeded = build_ring(16);
  seeded.set_fault_seed(12345);
  seeded.set_faults(FaultConfig{});  // still all-zero
  const MessageStats a = run_workload(plain);
  const MessageStats b = run_workload(seeded);
  EXPECT_EQ(a.find_successor, b.find_successor);
  EXPECT_EQ(a.get_predecessor, b.get_predecessor);
  EXPECT_EQ(a.get_successor_list, b.get_successor_list);
  EXPECT_EQ(a.notify, b.notify);
  EXPECT_EQ(a.ping, b.ping);
}

TEST(FaultInjection, CertainDuplicationDoublesCountedTrafficOnly) {
  // duplicate = 1.0 hits the p >= 1 shortcut (again no RNG draw), so the
  // run is behaviorally identical to fault-free — every counter-carrying
  // RPC just costs exactly twice.
  Network plain = build_ring(12);
  Network doubled = build_ring(12);
  doubled.set_fault_seed(1);
  FaultConfig config;
  config.duplicate = 1.0;
  doubled.set_faults(config);
  const MessageStats a = run_workload(plain);
  const MessageStats b = run_workload(doubled);
  EXPECT_EQ(2 * a.get_predecessor, b.get_predecessor);
  EXPECT_EQ(2 * a.get_successor_list, b.get_successor_list);
  EXPECT_EQ(2 * a.notify, b.notify);
  EXPECT_EQ(2 * a.ping, b.ping);
  // find_successor is accounted by lookup(), not the wire, and routing
  // is unchanged under pure duplication.
  EXPECT_EQ(a.find_successor, b.find_successor);
}

TEST(FaultInjection, SameSeedReplaysSameStats) {
  auto run = [] {
    Network net = build_ring(14);
    net.set_fault_seed(777);
    FaultConfig config;
    config.drop = 0.2;
    config.delay = 0.1;
    config.duplicate = 0.15;
    net.set_faults(config);
    return run_workload(net).total();
  };
  const std::uint64_t first = run();
  EXPECT_EQ(first, run());
}

TEST(FaultInjection, TotalDropStillTerminates) {
  // A 100% drop rate partitions the overlay completely.  What must
  // survive: lookups fall back to ground truth instead of looping, and
  // maintenance runs to completion without crashing.  (Full healing is
  // NOT expected afterwards — sustained total loss prunes every
  // successor-list entry, and Chord only guarantees recovery while
  // lists retain a live node; see the moderate-fault test below.)
  Network net = build_ring(10);
  net.set_fault_seed(5);
  FaultConfig config;
  config.drop = 1.0;
  net.set_faults(config);
  const LookupResult res =
      net.lookup(net.node_ids().front(), Sha1::hash_u64(4242));
  EXPECT_EQ(res.owner, net.true_owner(Sha1::hash_u64(4242)));
  net.stabilize(3);
  EXPECT_EQ(net.size(), 10u);  // faults lose messages, never nodes
}

TEST(FaultInjection, ModerateFaultsHealAfterClearing) {
  // Survivable exposure: 20% drop/delay/duplicate for 5 rounds leaves
  // live successor-list entries (most pings get through), so once the
  // faults clear, stabilization re-converges the ring.  Deterministic
  // for the pinned seed; seeds that prune a node's whole list can
  // island the overlay, which is faithful Chord behavior, not a bug.
  Network net = build_ring(12);
  net.set_fault_seed(5);
  FaultConfig config;
  config.drop = 0.2;
  config.delay = 0.2;
  config.duplicate = 0.2;
  net.set_faults(config);
  net.stabilize(5);
  net.set_faults(FaultConfig{});
  net.stabilize(30);
  EXPECT_TRUE(net.ring_consistent());
}

TEST(FaultInjection, DelayOnlyFaultsHealAfterClearing) {
  // delay defers a notify instead of losing it: the caller sees the RPC
  // fail, and the predecessor update is queued for delivery at the start
  // of the next maintenance round.  Deferred-but-delivered side effects
  // keep the ring repairable once the faults clear.
  Network net = build_ring(8);
  net.set_fault_seed(3);
  FaultConfig config;
  config.delay = 0.25;
  net.set_faults(config);
  net.stabilize(4);
  net.set_faults(FaultConfig{});
  net.stabilize(30);
  EXPECT_TRUE(net.ring_consistent());
  // Clean rounds enqueue nothing, so the queue always drains.
  EXPECT_TRUE(net.delayed_messages().empty());
}

TEST(FaultInjection, DelayedNotifiesQueueInRoundThenSequenceOrder) {
  // Deferred notifies carry a (round, sequence) stamp: everything still
  // queued after a maintenance round belongs to that round (older
  // entries were delivered at the round's start), and sequences count
  // 0,1,2,... in enqueue order.  That total order is what makes
  // deferred delivery — and the traces built on it — deterministic.
  Network net = build_ring(8);
  net.set_fault_seed(11);
  FaultConfig config;
  config.delay = 0.5;
  net.set_faults(config);
  std::uint64_t prev_round = 0;
  bool saw_deferral = false;
  for (int r = 0; r < 6; ++r) {
    net.maintenance_round();
    const auto& queued = net.delayed_messages();
    if (queued.empty()) continue;
    saw_deferral = true;
    for (std::size_t i = 0; i < queued.size(); ++i) {
      EXPECT_EQ(queued[i].round, queued[0].round);
      EXPECT_EQ(queued[i].seq, static_cast<std::uint64_t>(i));
    }
    EXPECT_GT(queued[0].round, prev_round);
    prev_round = queued[0].round;
  }
  EXPECT_TRUE(saw_deferral) << "seed 11 at delay=0.5 defers notifies";
  // Clean rounds enqueue nothing, so one fault-free round drains the
  // backlog completely.
  net.set_faults(FaultConfig{});
  net.maintenance_round();
  EXPECT_TRUE(net.delayed_messages().empty());
}

TEST(FaultInjection, DeferredNotifiesAreDeliveredNotDiscarded) {
  // A delayed notify must actually land one round late.  The delivery
  // path announces itself on the trace as a "notify_delivered" instant,
  // so: defer at least one notify, then run a clean round and require
  // the delivery event on the wire.
  std::ostringstream trace_out;
  Network net = build_ring(8);
  net.set_fault_seed(11);
  FaultConfig config;
  config.delay = 0.5;
  net.set_faults(config);
  net.maintenance_round();
  ASSERT_FALSE(net.delayed_messages().empty());
  {
    obs::TraceSink trace(trace_out);
    net.set_trace(&trace);
    net.set_faults(FaultConfig{});
    net.maintenance_round();
    net.set_trace(nullptr);
    trace.close();
  }
  EXPECT_TRUE(net.delayed_messages().empty());
  EXPECT_NE(trace_out.str().find("\"name\":\"notify_delivered\""),
            std::string::npos)
      << trace_out.str();
}

}  // namespace
}  // namespace dhtlb::chord
