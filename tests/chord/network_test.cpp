#include "chord/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hashing/sha1.hpp"
#include "support/rng.hpp"

namespace dhtlb::chord {
namespace {

using support::Rng;
using support::Uint160;

/// Builds a ring of n SHA-1-addressed nodes and stabilizes it fully.
Network make_ring(std::size_t n, std::uint64_t seed,
                  std::size_t successor_list = 5) {
  Network net(successor_list);
  Rng rng(seed);
  const NodeId first = hashing::Sha1::hash_u64(rng());
  net.create(first);
  for (std::size_t i = 1; i < n; ++i) {
    net.join(hashing::Sha1::hash_u64(rng()), first);
    net.stabilize(2);  // let each join settle before the next
  }
  net.stabilize(4);
  net.build_all_fingers();
  return net;
}

TEST(Network, SingleNodeOwnsEverything) {
  Network net;
  const NodeId id{Uint160{1000}};
  net.create(id);
  EXPECT_TRUE(net.ring_consistent());
  const auto res = net.lookup(id, Uint160{5});
  EXPECT_EQ(res.owner, id);
}

TEST(Network, CreateTwiceThrows) {
  Network net;
  net.create(Uint160{1});
  EXPECT_THROW(net.create(Uint160{2}), std::logic_error);
}

TEST(Network, JoinDuplicateIdRejected) {
  Network net;
  net.create(Uint160{1});
  EXPECT_FALSE(net.join(Uint160{1}, Uint160{1}));
}

TEST(Network, TwoNodesStabilizeIntoARing) {
  Network net;
  net.create(Uint160{100});
  net.join(Uint160{200}, Uint160{100});
  net.stabilize(4);
  EXPECT_TRUE(net.ring_consistent());
  EXPECT_EQ(net.node(Uint160{100}).successor(), Uint160{200});
  EXPECT_EQ(net.node(Uint160{200}).successor(), Uint160{100});
}

TEST(Network, RingConvergesForManyNodes) {
  const Network net = make_ring(64, 1);
  EXPECT_EQ(net.size(), 64u);
  EXPECT_TRUE(net.ring_consistent());
}

TEST(Network, LookupsAgreeWithGroundTruth) {
  Network net = make_ring(50, 2);
  Rng rng(99);
  const auto ids = net.node_ids();
  for (int i = 0; i < 500; ++i) {
    const Uint160 key = rng.uniform_u160();
    const NodeId origin = ids[rng.below(ids.size())];
    EXPECT_EQ(net.lookup(origin, key).owner, net.true_owner(key));
  }
}

TEST(Network, LookupOfOwnIdReturnsSelfArcOwner) {
  Network net = make_ring(20, 3);
  for (const auto& id : net.node_ids()) {
    EXPECT_EQ(net.lookup(id, id).owner, id)
        << "a node owns its own identifier";
  }
}

TEST(Network, LookupHopsAreLogarithmic) {
  Network net = make_ring(128, 4);
  Rng rng(5);
  const auto ids = net.node_ids();
  double total_hops = 0;
  constexpr int kProbes = 300;
  for (int i = 0; i < kProbes; ++i) {
    const auto res = net.lookup(ids[rng.below(ids.size())],
                                rng.uniform_u160());
    total_hops += res.hops;
  }
  const double mean_hops = total_hops / kProbes;
  // Chord's bound: O(log2 n) = 7 for n=128; mean is ~ (1/2) log2 n.
  EXPECT_LE(mean_hops, 8.0);
  EXPECT_GE(mean_hops, 1.0) << "routing actually happens";
}

TEST(Network, LookupCountsMessages) {
  Network net = make_ring(32, 6);
  net.stats().reset();
  const auto ids = net.node_ids();
  (void)net.lookup(ids.front(), Uint160{12345});
  EXPECT_GT(net.stats().total(), 0u);
}

TEST(Network, GracefulLeaveKeepsRingConsistent) {
  Network net = make_ring(30, 7);
  Rng rng(8);
  auto ids = net.node_ids();
  for (int i = 0; i < 10; ++i) {
    const NodeId victim = ids[rng.below(ids.size())];
    net.leave(victim);
    std::erase(ids, victim);
    net.stabilize(3);
  }
  EXPECT_EQ(net.size(), 20u);
  EXPECT_TRUE(net.ring_consistent());
}

TEST(Network, AbruptFailureHealsThroughMaintenance) {
  Network net = make_ring(40, 9);
  Rng rng(10);
  auto ids = net.node_ids();
  // Fail 8 nodes without telling anyone.
  for (int i = 0; i < 8; ++i) {
    const NodeId victim = ids[rng.below(ids.size())];
    net.fail(victim);
    std::erase(ids, victim);
  }
  EXPECT_FALSE(net.ring_consistent()) << "dangling pointers right after";
  net.stabilize(6);
  EXPECT_TRUE(net.ring_consistent()) << "maintenance repairs the ring";
  // And lookups are exact again.
  for (int i = 0; i < 100; ++i) {
    const Uint160 key = rng.uniform_u160();
    EXPECT_EQ(net.lookup(ids[rng.below(ids.size())], key).owner,
              net.true_owner(key));
  }
}

TEST(Network, SurvivesFailureBurstWithinSuccessorList) {
  // r=5 successors tolerate up to 4 consecutive failures; test a burst
  // of 4 adjacent nodes failing at once.
  Network net = make_ring(30, 11, /*successor_list=*/5);
  auto ids = net.node_ids();  // sorted by map order (ring order)
  for (int i = 5; i < 9; ++i) net.fail(ids[static_cast<std::size_t>(i)]);
  net.stabilize(8);
  EXPECT_TRUE(net.ring_consistent());
  EXPECT_EQ(net.size(), 26u);
}

TEST(Network, JoinAfterFailuresStillWorks) {
  Network net = make_ring(20, 12);
  auto ids = net.node_ids();
  net.fail(ids[3]);
  net.fail(ids[9]);
  net.stabilize(6);
  Rng rng(13);
  const NodeId fresh = hashing::Sha1::hash_u64(rng());
  EXPECT_TRUE(net.join(fresh, ids[0]));
  net.stabilize(6);
  net.build_all_fingers();
  EXPECT_TRUE(net.ring_consistent());
  EXPECT_EQ(net.lookup(fresh, fresh).owner, fresh);
}

TEST(Network, MaintenanceTrafficIsBounded) {
  Network net = make_ring(50, 14);
  net.stats().reset();
  net.maintenance_round();
  // Each node: 1 ping (check_predecessor) + stabilize (ping successor,
  // get_predecessor, notify, get_successor_list) + fix_finger (one
  // lookup).  Lookups dominate at ~log n messages.  Generous bound:
  EXPECT_LT(net.stats().total(), 50u * 40u);
  EXPECT_GT(net.stats().notify, 0u);
}

TEST(Network, TrueOwnerWrapsAroundZero) {
  Network net;
  net.create(Uint160{1000});
  net.join(Uint160{2000}, Uint160{1000});
  net.stabilize(4);
  // A key above 2000 wraps to the lowest node, 1000.
  EXPECT_EQ(net.true_owner(Uint160{5000}), Uint160{1000});
  EXPECT_EQ(net.true_owner(Uint160{1500}), Uint160{2000});
  EXPECT_EQ(net.true_owner(Uint160{500}), Uint160{1000});
}

TEST(Network, NodeIdsAreSortedRingOrder) {
  const Network net = make_ring(16, 15);
  const auto ids = net.node_ids();
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LT(ids[i - 1], ids[i]);
  }
}

}  // namespace
}  // namespace dhtlb::chord
