// Parameterized churn stress on the Chord protocol substrate: rings of
// varying size endure repeated failure/join waves of varying intensity
// and must always re-converge to a consistent ring with exact lookups.
// This is the protocol-level counterpart of the paper's assumption that
// "a tick is enough time to accomplish at least one maintenance cycle"
// and that the network survives the churn the strategies induce.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "chord/network.hpp"
#include "hashing/sha1.hpp"
#include "support/rng.hpp"

namespace dhtlb::chord {
namespace {

using support::Rng;

struct StressCase {
  std::size_t ring_size;
  int waves;            // failure/join epochs
  std::size_t wave_kill;  // nodes failed per epoch
  int settle_rounds;    // maintenance rounds between epochs
};

std::string case_name(const ::testing::TestParamInfo<StressCase>& info) {
  const StressCase& c = info.param;
  std::string name = "n";
  name += std::to_string(c.ring_size);
  name += "_w";
  name += std::to_string(c.waves);
  name += "_k";
  name += std::to_string(c.wave_kill);
  name += "_r";
  name += std::to_string(c.settle_rounds);
  return name;
}

class ChurnStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(ChurnStress, RingReconvergesAndLookupsStayExact) {
  const StressCase& c = GetParam();
  Network net(5);
  Rng rng(0xC0FFEE + c.ring_size);
  const NodeId first = hashing::Sha1::hash_u64(rng());
  net.create(first);
  for (std::size_t i = 1; i < c.ring_size; ++i) {
    ASSERT_TRUE(net.join(hashing::Sha1::hash_u64(rng()), first));
    net.stabilize(2);
  }
  net.stabilize(4);
  net.build_all_fingers();
  ASSERT_TRUE(net.ring_consistent());

  for (int wave = 0; wave < c.waves; ++wave) {
    // Abrupt failures...
    for (std::size_t k = 0; k < c.wave_kill && net.size() > 4; ++k) {
      const auto ids = net.node_ids();
      net.fail(ids[rng.below(ids.size())]);
    }
    net.stabilize(c.settle_rounds);
    // ...and compensating joins via a surviving bootstrap.
    const auto bootstrap = net.node_ids().front();
    for (std::size_t k = 0; k < c.wave_kill; ++k) {
      net.join(hashing::Sha1::hash_u64(rng()), bootstrap);
      net.stabilize(2);
    }
    net.stabilize(c.settle_rounds);

    ASSERT_TRUE(net.ring_consistent())
        << "wave " << wave << ": ring failed to re-converge";
    const auto ids = net.node_ids();
    for (int probe = 0; probe < 50; ++probe) {
      const auto key = rng.uniform_u160();
      EXPECT_EQ(net.lookup(ids[rng.below(ids.size())], key).owner,
                net.true_owner(key))
          << "wave " << wave;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Waves, ChurnStress,
    ::testing::Values(StressCase{16, 4, 2, 4},   // small ring, light churn
                      StressCase{32, 4, 4, 4},   // kill 12% per wave
                      StressCase{48, 3, 8, 6},   // kill 17% per wave
                      StressCase{64, 2, 16, 8},  // kill 25% per wave
                      StressCase{24, 6, 3, 3},   // many quick waves
                      StressCase{40, 2, 4, 2}),  // minimal settling
    case_name);

}  // namespace
}  // namespace dhtlb::chord
