// Contract tests for the message ledger: each protocol operation must
// charge the right counter.  The ledger is what turns the paper's
// qualitative traffic claims into numbers (bench/tableM), so its
// accounting has to be precise.
#include <gtest/gtest.h>

#include "chord/network.hpp"
#include "hashing/sha1.hpp"
#include "support/rng.hpp"

namespace dhtlb::chord {
namespace {

using support::Rng;
using support::Uint160;

Network settled_ring(std::size_t n, std::uint64_t seed) {
  Network net(5);
  Rng rng(seed);
  const NodeId first = hashing::Sha1::hash_u64(rng());
  net.create(first);
  for (std::size_t i = 1; i < n; ++i) {
    net.join(hashing::Sha1::hash_u64(rng()), first);
    net.stabilize(2);
  }
  net.stabilize(4);
  net.build_all_fingers();
  net.stats().reset();
  return net;
}

TEST(MessageAccounting, FreshLedgerIsZero) {
  const MessageStats stats;
  EXPECT_EQ(stats.total(), 0u);
}

TEST(MessageAccounting, LookupChargesRoutingSteps) {
  Network net = settled_ring(32, 1);
  Rng rng(2);
  const auto ids = net.node_ids();
  const auto res = net.lookup(ids[0], rng.uniform_u160());
  EXPECT_EQ(net.stats().find_successor,
            static_cast<std::uint64_t>(res.hops))
      << "one find_successor message per routing hop";
  EXPECT_EQ(net.stats().notify, 0u) << "lookups never notify";
}

TEST(MessageAccounting, MaintenanceChargesEveryCategory) {
  Network net = settled_ring(16, 3);
  net.maintenance_round();
  const MessageStats& s = net.stats();
  EXPECT_GT(s.ping, 0u) << "check_predecessor pings";
  EXPECT_GT(s.get_predecessor, 0u) << "stabilize probes";
  EXPECT_GT(s.notify, 0u) << "stabilize notifies";
  EXPECT_GT(s.get_successor_list, 0u) << "list reconciliation";
  EXPECT_EQ(s.total(), s.find_successor + s.get_predecessor +
                           s.get_successor_list + s.notify + s.ping);
}

TEST(MessageAccounting, MaintenanceCostScalesLinearlyInRingSize) {
  Network small = settled_ring(16, 4);
  Network large = settled_ring(64, 5);
  small.maintenance_round();
  large.maintenance_round();
  const double per_node_small =
      static_cast<double>(small.stats().total()) / 16.0;
  const double per_node_large =
      static_cast<double>(large.stats().total()) / 64.0;
  // Per-node upkeep is dominated by one fix_fingers lookup: O(log n).
  // Within a 4x size change it must stay within a small constant band.
  EXPECT_LT(per_node_large, per_node_small * 3.0);
  EXPECT_GT(per_node_large, per_node_small * 0.5);
}

TEST(MessageAccounting, FailuresMakeSubsequentRoundsPayPings) {
  Network net = settled_ring(24, 6);
  const auto ids = net.node_ids();
  net.fail(ids[5]);
  net.fail(ids[11]);
  net.stats().reset();
  net.maintenance_round();
  // Discovering the dead peers costs extra pings (timeouts) over a
  // healthy round.
  Network healthy = settled_ring(22, 7);
  healthy.maintenance_round();
  EXPECT_GT(net.stats().ping, healthy.stats().ping);
}

TEST(MessageAccounting, ResetClearsAllCounters) {
  Network net = settled_ring(8, 8);
  net.maintenance_round();
  ASSERT_GT(net.stats().total(), 0u);
  net.stats().reset();
  EXPECT_EQ(net.stats().total(), 0u);
}

}  // namespace
}  // namespace dhtlb::chord
