#include "chord/sybil_placement.hpp"

#include <gtest/gtest.h>

#include "support/ring_math.hpp"

namespace dhtlb::chord {
namespace {

using support::Rng;
using support::Uint160;

TEST(SybilPlacement, HashSearchLandsInsideArc) {
  Rng rng(1);
  // A quarter-ring arc: expected ~4 attempts.
  const Uint160 lo = Uint160::zero();
  const Uint160 hi = Uint160::pow2(158);
  const auto result = place_by_hash_search(lo, hi, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(support::in_open_arc(result->id, lo, hi));
  EXPECT_GE(result->attempts, 1u);
}

TEST(SybilPlacement, HashSearchAttemptsScaleInverselyWithArcSize) {
  // Paper ref [21]: placement cost ~ ring/arc.  Check a half-ring arc
  // needs few tries and a 1/256 arc needs more (on average).
  Rng rng(2);
  std::uint64_t half_attempts = 0, small_attempts = 0;
  constexpr int kTrials = 50;
  for (int i = 0; i < kTrials; ++i) {
    half_attempts +=
        place_by_hash_search(Uint160::zero(), Uint160::pow2(159), rng)
            ->attempts;
    small_attempts +=
        place_by_hash_search(Uint160::zero(), Uint160::pow2(152), rng)
            ->attempts;
  }
  EXPECT_LT(half_attempts / kTrials, 5u);
  EXPECT_GT(small_attempts, half_attempts);
}

TEST(SybilPlacement, HashSearchGivesUpOnHopelessArc) {
  Rng rng(3);
  // A 2-ID arc: success chance 2^-159 per try; must hit max_attempts.
  const Uint160 lo{1000};
  const Uint160 hi{1002};
  const auto result = place_by_hash_search(lo, hi, rng, /*max_attempts=*/100);
  EXPECT_FALSE(result.has_value());
}

TEST(SybilPlacement, WrappingArcWorks) {
  Rng rng(4);
  const Uint160 lo = Uint160::max() - Uint160::pow2(158);
  const Uint160 hi = Uint160::pow2(158);
  const auto result = place_by_hash_search(lo, hi, rng);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(support::in_open_arc(result->id, lo, hi));
}

TEST(SybilPlacement, UniformPlacementInsideArc) {
  Rng rng(5);
  const Uint160 lo{500};
  const Uint160 hi{10'000};
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(support::in_open_arc(place_uniform(lo, hi, rng), lo, hi));
  }
}

TEST(SybilPlacement, MidpointMatchesRingMath) {
  EXPECT_EQ(place_midpoint(Uint160{100}, Uint160{200}), Uint160{150});
  EXPECT_TRUE(support::in_open_arc(
      place_midpoint(Uint160{100}, Uint160{200}), Uint160{100},
      Uint160{200}));
}

}  // namespace
}  // namespace dhtlb::chord
