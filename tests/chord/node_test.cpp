#include "chord/node.hpp"

#include <gtest/gtest.h>

#include "support/ring_math.hpp"

namespace dhtlb::chord {
namespace {

using support::Uint160;

TEST(ChordNode, FreshNodeIsItsOwnSuccessor) {
  ChordNode n(Uint160{100}, 5);
  EXPECT_EQ(n.successor(), Uint160{100});
  EXPECT_FALSE(n.predecessor().has_value());
}

TEST(ChordNode, SetSuccessorPrepends) {
  ChordNode n(Uint160{100}, 5);
  n.set_successor(Uint160{200});
  n.set_successor(Uint160{150});
  EXPECT_EQ(n.successor(), Uint160{150});
  ASSERT_EQ(n.successor_list().size(), 2u);
  EXPECT_EQ(n.successor_list()[1], Uint160{200});
}

TEST(ChordNode, SetSuccessorDeduplicates) {
  ChordNode n(Uint160{100}, 5);
  n.set_successor(Uint160{200});
  n.set_successor(Uint160{150});
  n.set_successor(Uint160{200});
  const auto& list = n.successor_list();
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], Uint160{200});
  EXPECT_EQ(list[1], Uint160{150});
}

TEST(ChordNode, SuccessorListIsCapped) {
  ChordNode n(Uint160{0}, 3);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    n.set_successor(Uint160{i * 10});
  }
  EXPECT_EQ(n.successor_list().size(), 3u);
}

TEST(ChordNode, SetSuccessorListTruncates) {
  ChordNode n(Uint160{0}, 2);
  n.set_successor_list({Uint160{1}, Uint160{2}, Uint160{3}});
  EXPECT_EQ(n.successor_list().size(), 2u);
}

TEST(ChordNode, RemoveSuccessorDropsEntry) {
  ChordNode n(Uint160{0}, 5);
  n.set_successor_list({Uint160{1}, Uint160{2}, Uint160{3}});
  n.remove_successor(Uint160{2});
  EXPECT_EQ(n.successor_list(),
            (std::vector<Uint160>{Uint160{1}, Uint160{3}}));
  n.remove_successor(Uint160{99});  // absent: no-op
  EXPECT_EQ(n.successor_list().size(), 2u);
}

TEST(ChordNode, FingerStartOffsets) {
  ChordNode n(Uint160{100}, 5);
  EXPECT_EQ(n.finger_start(0), Uint160{101});
  EXPECT_EQ(n.finger_start(1), Uint160{102});
  EXPECT_EQ(n.finger_start(4), Uint160{116});
  // Finger starts wrap around the ring.
  ChordNode top(Uint160::max(), 5);
  EXPECT_EQ(top.finger_start(0), Uint160::zero());
}

TEST(ChordNode, NextFingerCycles) {
  ChordNode n(Uint160{0}, 5);
  for (int i = 0; i < ChordNode::kFingerCount; ++i) {
    EXPECT_EQ(n.next_finger_to_fix(), i);
  }
  EXPECT_EQ(n.next_finger_to_fix(), 0) << "wraps after 160";
}

TEST(ChordNode, ClosestPrecedingPrefersFarthestUsableFinger) {
  ChordNode n(Uint160{0}, 5);
  n.set_finger(10, Uint160{500});    // in (0, 10000)
  n.set_finger(100, Uint160{9000});  // also in (0, 10000), farther
  EXPECT_EQ(n.closest_preceding(Uint160{10000}), Uint160{9000});
}

TEST(ChordNode, ClosestPrecedingSkipsOvershootingFingers) {
  ChordNode n(Uint160{0}, 5);
  n.set_finger(100, Uint160{20000});  // past the key: unusable
  n.set_finger(10, Uint160{500});
  EXPECT_EQ(n.closest_preceding(Uint160{10000}), Uint160{500});
}

TEST(ChordNode, ClosestPrecedingFallsBackToSuccessorList) {
  ChordNode n(Uint160{0}, 5);
  n.set_successor_list({Uint160{100}, Uint160{5000}});
  EXPECT_EQ(n.closest_preceding(Uint160{10000}), Uint160{5000});
}

TEST(ChordNode, ClosestPrecedingReturnsSelfWhenNothingKnown) {
  ChordNode n(Uint160{42}, 5);
  EXPECT_EQ(n.closest_preceding(Uint160{9999}), Uint160{42});
}

TEST(ChordNode, ForgetScrubsAllState) {
  ChordNode n(Uint160{0}, 5);
  n.set_predecessor(Uint160{7});
  n.set_successor_list({Uint160{7}, Uint160{9}});
  n.set_finger(3, Uint160{7});
  n.set_finger(4, Uint160{9});
  n.forget(Uint160{7});
  EXPECT_FALSE(n.predecessor().has_value());
  EXPECT_EQ(n.successor_list(), (std::vector<Uint160>{Uint160{9}}));
  EXPECT_FALSE(n.fingers()[3].has_value());
  EXPECT_EQ(n.fingers()[4], Uint160{9});
}

}  // namespace
}  // namespace dhtlb::chord
