// Concurrent-join convergence: Chord's stabilization must integrate
// many nodes that joined in the same epoch (before any maintenance ran)
// — exactly what a Sybil-strategy decision tick causes when hundreds of
// under-utilized nodes inject Sybils simultaneously (§IV-B).
#include <gtest/gtest.h>

#include "chord/network.hpp"
#include "hashing/sha1.hpp"
#include "support/rng.hpp"

namespace dhtlb::chord {
namespace {

using support::Rng;

class JoinStorm : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JoinStorm, SimultaneousJoinsConverge) {
  const std::size_t storm = GetParam();
  Network net(5);
  Rng rng(777);
  const NodeId first = hashing::Sha1::hash_u64(rng());
  net.create(first);
  // Small settled base ring.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(net.join(hashing::Sha1::hash_u64(rng()), first));
    net.stabilize(2);
  }
  net.stabilize(4);
  ASSERT_TRUE(net.ring_consistent());

  // The storm: every joiner bootstraps off the same node with NO
  // stabilization in between.
  for (std::size_t i = 0; i < storm; ++i) {
    ASSERT_TRUE(net.join(hashing::Sha1::hash_u64(rng()), first));
  }
  EXPECT_EQ(net.size(), 9 + storm);

  // Convergence: each round integrates at least the next joiner; a
  // linear number of rounds must suffice.
  int rounds = 0;
  const int round_limit = static_cast<int>(storm) * 2 + 16;
  while (!net.ring_consistent() && rounds < round_limit) {
    net.maintenance_round();
    ++rounds;
  }
  EXPECT_TRUE(net.ring_consistent())
      << "storm of " << storm << " not converged after " << rounds
      << " rounds";

  // And routing is exact again.
  const auto ids = net.node_ids();
  for (int probe = 0; probe < 100; ++probe) {
    const auto key = rng.uniform_u160();
    EXPECT_EQ(net.lookup(ids[rng.below(ids.size())], key).owner,
              net.true_owner(key));
  }
}

INSTANTIATE_TEST_SUITE_P(StormSizes, JoinStorm,
                         ::testing::Values(2, 5, 10, 25, 50));

}  // namespace
}  // namespace dhtlb::chord
