// Compile-and-use check of the umbrella header: every public module is
// reachable from a single include and the basic flows work together.
#include "dhtlb.hpp"

#include <gtest/gtest.h>

namespace dhtlb {
namespace {

TEST(Umbrella, EndToEndMiniRun) {
  sim::Params params;
  params.initial_nodes = 30;
  params.total_tasks = 900;
  sim::Engine engine(params, 1, lb::make_strategy("random-injection"));
  const sim::RunResult result = engine.run();
  EXPECT_TRUE(result.completed);

  const auto loads = exp::initial_workloads(30, 900, 2);
  EXPECT_GT(stats::gini(loads), 0.0);
  EXPECT_EQ(hashing::Sha1::hash("abc"),
            hashing::Sha1::hash(std::string_view("abc")));
  EXPECT_TRUE(support::in_half_open_arc(support::Uint160{5},
                                        support::Uint160{1},
                                        support::Uint160{9}));
}

}  // namespace
}  // namespace dhtlb
