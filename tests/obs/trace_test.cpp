// TraceSink unit tests: document format, virtual-clock math, argument
// encoding, and close semantics.  The sink's whole contract is "equal
// event sequences produce equal bytes", so most assertions compare
// literal strings.
#include "obs/trace.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "support/thread_pool.hpp"

namespace dhtlb::obs {
namespace {

TEST(TraceSink, EmptyTraceIsACompleteDocument) {
  std::ostringstream out;
  {
    TraceSink sink(out);
  }  // destructor closes
  EXPECT_EQ(out.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

TEST(TraceSink, CloseIsIdempotentAndDropsLaterEvents) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.close();
  sink.close();
  sink.instant("late", "test");
  sink.counter("late", 1.0);
  sink.complete_tick("late");
  EXPECT_EQ(sink.event_count(), 0u);
  EXPECT_EQ(out.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

TEST(TraceSink, InstantCarriesTickClockAndSequence) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.set_tick(3);
  sink.instant("a", "test");
  sink.instant("b", "test");
  sink.close();
  // ts = tick * 1e6 + per-tick sequence: 3000000 then 3000001.
  EXPECT_NE(out.str().find("\"name\":\"a\",\"cat\":\"test\",\"ph\":\"i\","
                           "\"ts\":3000000"),
            std::string::npos);
  EXPECT_NE(out.str().find("\"name\":\"b\",\"cat\":\"test\",\"ph\":\"i\","
                           "\"ts\":3000001"),
            std::string::npos);
  EXPECT_EQ(sink.event_count(), 2u);
}

TEST(TraceSink, SetTickResetsTheSequence) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.set_tick(1);
  sink.instant("a", "test");
  sink.set_tick(2);
  sink.instant("b", "test");
  sink.close();
  EXPECT_NE(out.str().find("\"ts\":1000000"), std::string::npos);
  EXPECT_NE(out.str().find("\"ts\":2000000"), std::string::npos);
}

TEST(TraceSink, ArgsEncodeAllValueKinds) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.set_tick(1);
  sink.instant("e", "test",
               {{"u", std::uint64_t{42}},
                {"d", 0.5},
                {"s", "text"},
                {"neg", -3}});  // int clamps at 0: counts are unsigned
  sink.close();
  EXPECT_NE(out.str().find("\"args\":{\"u\":42,\"d\":0.5,\"s\":\"text\","
                           "\"neg\":0}"),
            std::string::npos);
}

TEST(TraceSink, ArgStringsAreEscaped) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.set_tick(1);
  sink.instant("e", "test", {{"s", "a\"b\\c\nd"}});
  sink.close();
  EXPECT_NE(out.str().find("\"s\":\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(TraceSink, CompleteTickSpansOneVirtualSecond) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.set_tick(7);
  sink.complete_tick("tick", {{"work", std::uint64_t{5}}});
  sink.close();
  EXPECT_NE(out.str().find("\"ph\":\"X\",\"ts\":7000000,\"dur\":1000000"),
            std::string::npos);
}

TEST(TraceSink, CounterUsesPhCWithValueArg) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.set_tick(2);
  sink.counter("nodes", 150.0);
  sink.close();
  EXPECT_NE(out.str().find("\"name\":\"nodes\",\"cat\":\"metric\","
                           "\"ph\":\"C\",\"ts\":2000000,"
                           "\"args\":{\"value\":150}"),
            std::string::npos);
}

TEST(TraceSink, InstantsAreGlobalScope) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.set_tick(1);
  sink.instant("e", "test");
  sink.close();
  EXPECT_NE(out.str().find("\"s\":\"g\""), std::string::npos);
}

TEST(TraceSink, OneEventPerLine) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.set_tick(1);
  sink.instant("a", "test");
  sink.instant("b", "test");
  sink.counter("c", 1.0);
  sink.close();
  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  // header+3 events+footer: events each start on their own line.
  EXPECT_EQ(lines, 5u);
}

// The sink is mutex-guarded (support/sync.hpp): a concurrent fan of
// instants must drop nothing.  (Cross-thread event ORDER is whatever the
// interleaving was — deterministic byte output remains the caller's job,
// which is why engine emission stays single-threaded — but the count and
// document structure must be exact.)
TEST(TraceSink, ConcurrentInstantsAreAllRecorded) {
  std::ostringstream out;
  TraceSink sink(out);
  sink.set_tick(1);
  constexpr std::size_t kTasks = 8;
  constexpr int kEventsPerTask = 1'000;
  support::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (int i = 0; i < kEventsPerTask; ++i) sink.instant("e", "test");
  });
  EXPECT_EQ(sink.event_count(), kTasks * kEventsPerTask);
  sink.close();
  // Still a well-formed document: header + events + footer.
  EXPECT_NE(out.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(out.str().back(), '\n');
}

TEST(TraceSink, EqualSequencesProduceEqualBytes) {
  const auto emit = [] {
    std::ostringstream out;
    TraceSink sink(out);
    for (std::uint64_t tick = 1; tick <= 5; ++tick) {
      sink.set_tick(tick);
      sink.instant("join", "churn", {{"node", tick}});
      sink.counter("nodes", static_cast<double>(tick));
      sink.complete_tick("tick");
    }
    sink.close();
    return out.str();
  };
  EXPECT_EQ(emit(), emit());
}

}  // namespace
}  // namespace dhtlb::obs
