// MetricsRegistry unit tests: instrument semantics (cumulative counters,
// instantaneous gauges, per-tick histograms), row format, name ordering,
// and byte stability across flush cadences.
#include "obs/metrics.hpp"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/thread_pool.hpp"

namespace dhtlb::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

TEST(MetricsRegistry, GaugeRowHasAlphabeticalKeys) {
  std::ostringstream out;
  MetricsRegistry m(out);
  const auto id = m.gauge("ring_gini", "ratio");
  m.set(id, 0.25);
  m.sample(12);
  m.flush();
  EXPECT_EQ(out.str(),
            "{\"metric\":\"ring_gini\",\"tick\":12,\"type\":\"gauge\","
            "\"unit\":\"ratio\",\"value\":0.25}\n");
}

TEST(MetricsRegistry, CountersAreCumulativeAcrossSamples) {
  std::ostringstream out;
  MetricsRegistry m(out);
  const auto id = m.counter("work_done", "tasks");
  m.add(id, 10.0);
  m.sample(1);
  m.add(id, 5.0);
  m.sample(2);
  m.flush();
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"tick\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"value\":10"), std::string::npos);
  EXPECT_NE(lines[1].find("\"tick\":2"), std::string::npos);
  EXPECT_NE(lines[1].find("\"value\":15"), std::string::npos);
}

TEST(MetricsRegistry, GaugesHoldTheirLastValue) {
  std::ostringstream out;
  MetricsRegistry m(out);
  const auto id = m.gauge("nodes", "nodes");
  m.set(id, 100.0);
  m.sample(1);
  m.sample(2);  // not re-set: the gauge keeps its value
  m.flush();
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("\"value\":100"), std::string::npos);
}

TEST(MetricsRegistry, RowsComeOutInNameOrder) {
  std::ostringstream out;
  MetricsRegistry m(out);
  m.set(m.gauge("zeta", "x"), 1.0);
  m.set(m.gauge("alpha", "x"), 2.0);
  m.set(m.gauge("mid", "x"), 3.0);
  m.sample(1);
  m.flush();
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"alpha\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"mid\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"zeta\""), std::string::npos);
}

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  std::ostringstream out;
  MetricsRegistry m(out);
  const auto a = m.counter("msgs", "messages");
  const auto b = m.counter("msgs", "messages");
  EXPECT_EQ(a, b);
  EXPECT_EQ(m.instrument_count(), 1u);
}

TEST(MetricsRegistry, HistogramBucketsAreCumulativeWithInfAndSum) {
  std::ostringstream out;
  MetricsRegistry m(out);
  const auto id = m.histogram("workload", "tasks", {1.0, 4.0, 16.0});
  m.observe(id, 0.0);   // <=1, <=4, <=16
  m.observe(id, 3.0);   // <=4, <=16
  m.observe(id, 100.0);  // +inf only
  m.sample(1);
  m.flush();
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 5u);  // 3 bounds + inf + sum
  EXPECT_EQ(lines[0],
            "{\"le\":1,\"metric\":\"workload\",\"tick\":1,"
            "\"type\":\"histogram\",\"unit\":\"tasks\",\"value\":1}");
  EXPECT_NE(lines[1].find("\"le\":4"), std::string::npos);
  EXPECT_NE(lines[1].find("\"value\":2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"le\":16"), std::string::npos);
  EXPECT_NE(lines[2].find("\"value\":2"), std::string::npos);
  EXPECT_EQ(lines[3],
            "{\"le\":\"+inf\",\"metric\":\"workload\",\"tick\":1,"
            "\"type\":\"histogram\",\"unit\":\"tasks\",\"value\":3}");
  EXPECT_EQ(lines[4],
            "{\"metric\":\"workload_sum\",\"tick\":1,"
            "\"type\":\"histogram\",\"unit\":\"tasks\",\"value\":103}");
}

TEST(MetricsRegistry, HistogramsResetEachSample) {
  std::ostringstream out;
  MetricsRegistry m(out);
  const auto id = m.histogram("workload", "tasks", {10.0});
  m.observe(id, 5.0);
  m.sample(1);
  m.sample(2);  // nothing observed this tick
  m.flush();
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 6u);
  // Tick 2's +inf bucket and sum are back to 0.
  EXPECT_NE(lines[4].find("\"value\":0"), std::string::npos);
  EXPECT_NE(lines[5].find("\"value\":0"), std::string::npos);
}

TEST(MetricsRegistry, FlushCadenceDoesNotChangeBytes) {
  const auto run = [](std::size_t flush_every) {
    std::ostringstream out;
    MetricsRegistry m(out, flush_every);
    const auto c = m.counter("done", "tasks");
    const auto g = m.gauge("gini", "ratio");
    for (std::uint64_t tick = 1; tick <= 100; ++tick) {
      m.add(c, 1.0);
      m.set(g, 1.0 / static_cast<double>(tick));
      m.sample(tick);
    }
    m.flush();
    return out.str();
  };
  EXPECT_EQ(run(1), run(32));
  EXPECT_EQ(run(32), run(1000));
}

// The registry is mutex-guarded (support/sync.hpp): concurrent add()
// from a worker pool must lose no increments, and a flush after the fan
// joins must render the exact total.
TEST(MetricsRegistry, ConcurrentAddsAreExact) {
  std::ostringstream out;
  MetricsRegistry m(out);
  const auto id = m.counter("work_done", "tasks");
  constexpr std::size_t kTasks = 8;
  constexpr int kAddsPerTask = 10'000;
  support::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (int i = 0; i < kAddsPerTask; ++i) m.add(id, 1.0);
  });
  m.sample(1);
  m.flush();
  EXPECT_NE(out.str().find("\"value\":80000"), std::string::npos);
}

TEST(MetricsRegistry, DoublesPrintRoundTrippable) {
  std::ostringstream out;
  MetricsRegistry m(out);
  m.set(m.gauge("g", "x"), 0.1);
  m.sample(1);
  m.flush();
  // %.17g renders 0.1 with full precision — byte-stable across platforms
  // that share IEEE-754 doubles.
  EXPECT_NE(out.str().find("0.1000000000000000"), std::string::npos);
}

}  // namespace
}  // namespace dhtlb::obs
