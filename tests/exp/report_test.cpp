#include "exp/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace dhtlb::exp {
namespace {

Aggregate sample_aggregate() {
  sim::Params p;
  p.initial_nodes = 100;
  p.total_tasks = 10'000;
  p.churn_rate = 0.01;
  return run_trials(p, "churn", 2, 7);
}

TEST(Report, ToRowCopiesEveryField) {
  const Aggregate agg = sample_aggregate();
  const ResultRow row = to_row("table2", "cell-a", agg);
  EXPECT_EQ(row.experiment, "table2");
  EXPECT_EQ(row.config, "cell-a");
  EXPECT_EQ(row.strategy, "churn");
  EXPECT_EQ(row.nodes, 100u);
  EXPECT_EQ(row.tasks, 10'000u);
  EXPECT_DOUBLE_EQ(row.churn_rate, 0.01);
  EXPECT_EQ(row.trials, 2u);
  EXPECT_DOUBLE_EQ(row.runtime_factor_mean, agg.runtime_factor.mean);
  EXPECT_GT(row.mean_leaves, 0.0);
}

TEST(Report, CsvHasHeaderAndOneLinePerRow) {
  const Aggregate agg = sample_aggregate();
  const std::string csv =
      rows_to_csv({to_row("t", "a", agg), to_row("t", "b", agg)});
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(csv.substr(0, 10), "experiment");
}

TEST(Report, SnapshotCsv) {
  sim::Snapshot snap;
  snap.workloads = {5, 0, 12};
  const std::string csv = snapshot_to_csv(snap);
  EXPECT_EQ(csv, "node_index,workload\n0,5\n1,0\n2,12\n");
}

TEST(Report, WriteFileCreatesDirectories) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dhtlb_report_test").string();
  const std::string path = dir + "/nested/out.csv";
  std::filesystem::remove_all(dir);
  EXPECT_TRUE(write_file(path, "hello\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\n");
  std::filesystem::remove_all(dir);
}

TEST(Report, WriteFileFailsCleanlyOnBadPath) {
  EXPECT_FALSE(write_file("/proc/definitely/not/writable/x.csv", "x"));
}

}  // namespace
}  // namespace dhtlb::exp
