#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace dhtlb::exp {
namespace {

sim::Params tiny(std::size_t nodes = 100, std::uint64_t tasks = 10'000) {
  sim::Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  return p;
}

TEST(RunTrials, AggregatesRequestedTrialCount) {
  const Aggregate agg = run_trials(tiny(), "none", 5, 1);
  EXPECT_EQ(agg.trials, 5u);
  EXPECT_EQ(agg.runtime_factor.count, 5u);
  EXPECT_EQ(agg.strategy, "none");
  EXPECT_DOUBLE_EQ(agg.completion_rate, 1.0);
}

TEST(RunTrials, SerialAndParallelAgreeExactly) {
  // Trials are functions of (base_seed, index) only: the thread pool
  // must not change any number.
  support::ThreadPool pool(4);
  const Aggregate serial = run_trials(tiny(), "random-injection", 8, 2);
  const Aggregate parallel =
      run_trials(tiny(), "random-injection", 8, 2, &pool);
  EXPECT_DOUBLE_EQ(serial.runtime_factor.mean, parallel.runtime_factor.mean);
  EXPECT_DOUBLE_EQ(serial.runtime_factor.min, parallel.runtime_factor.min);
  EXPECT_DOUBLE_EQ(serial.runtime_factor.max, parallel.runtime_factor.max);
  EXPECT_DOUBLE_EQ(serial.mean_sybils_created, parallel.mean_sybils_created);
}

TEST(RunTrials, DifferentBaseSeedsDiffer) {
  const Aggregate a = run_trials(tiny(), "none", 3, 1);
  const Aggregate b = run_trials(tiny(), "none", 3, 99);
  EXPECT_NE(a.runtime_factor.mean, b.runtime_factor.mean);
}

TEST(RunTrials, ChurnCountersPropagate) {
  sim::Params p = tiny();
  p.churn_rate = 0.01;
  const Aggregate agg = run_trials(p, "churn", 3, 3);
  EXPECT_GT(agg.mean_leaves, 0.0);
  EXPECT_GT(agg.mean_joins, 0.0);
  EXPECT_DOUBLE_EQ(agg.mean_sybils_created, 0.0);
}

TEST(RunTrials, StrategyCountersPropagate) {
  const Aggregate agg = run_trials(tiny(), "smart-neighbor-injection", 3, 4);
  EXPECT_GT(agg.mean_sybils_created, 0.0);
  EXPECT_GT(agg.mean_workload_queries, 0.0);
}

TEST(RunCells, MatchesPerCellRunTrialsExactly) {
  // run_cells only reschedules: every aggregate must be bit-identical to
  // the per-cell run_trials result at the same base seed.
  sim::Params churny = tiny();
  churny.churn_rate = 0.01;
  const std::vector<CellSpec> cells = {
      {tiny(), "none", 4},
      {churny, "churn", 3},
      {tiny(), "random-injection", 5},
  };
  support::ThreadPool pool(4);
  const auto batched = run_cells(cells, 21, &pool);
  ASSERT_EQ(batched.size(), cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Aggregate solo =
        run_trials(cells[c].params, cells[c].strategy, cells[c].trials, 21);
    EXPECT_EQ(batched[c].strategy, solo.strategy);
    EXPECT_EQ(batched[c].trials, solo.trials);
    EXPECT_DOUBLE_EQ(batched[c].runtime_factor.mean,
                     solo.runtime_factor.mean);
    EXPECT_DOUBLE_EQ(batched[c].runtime_factor.min, solo.runtime_factor.min);
    EXPECT_DOUBLE_EQ(batched[c].runtime_factor.max, solo.runtime_factor.max);
    EXPECT_DOUBLE_EQ(batched[c].ticks.mean, solo.ticks.mean);
    EXPECT_DOUBLE_EQ(batched[c].mean_joins, solo.mean_joins);
    EXPECT_DOUBLE_EQ(batched[c].mean_sybils_created, solo.mean_sybils_created);
    EXPECT_DOUBLE_EQ(batched[c].mean_workload_queries,
                     solo.mean_workload_queries);
  }
}

TEST(RunCells, HandlesEmptyGridAndZeroTrialCells) {
  EXPECT_TRUE(run_cells({}, 1).empty());
  const auto aggs = run_cells({{tiny(), "none", 0}}, 1);
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].trials, 0u);
  EXPECT_DOUBLE_EQ(aggs[0].completion_rate, 0.0);
}

TEST(RunWithSnapshots, DeliversRequestedTicks) {
  const auto r = run_with_snapshots(tiny(), "random-injection", 5, {0, 5, 35});
  ASSERT_EQ(r.snapshots.size(), 3u);
  EXPECT_EQ(r.snapshots[2].tick, 35u);
}

TEST(InitialWorkloads, SumsToTaskCount) {
  const auto loads = initial_workloads(100, 10'000, 7);
  EXPECT_EQ(loads.size(), 100u);
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}),
            10'000u);
}

TEST(InitialWorkloads, DeterministicPerSeed) {
  EXPECT_EQ(initial_workloads(50, 1000, 1), initial_workloads(50, 1000, 1));
  EXPECT_NE(initial_workloads(50, 1000, 1), initial_workloads(50, 1000, 2));
}

TEST(InitialWorkloads, MedianIsNearLn2TimesMean) {
  // Theory behind Table I: arc sizes are ~exponential, so the median
  // workload is ~ln 2 ≈ 0.693 of the mean.  Average the median over
  // several seeds to damp noise.
  constexpr std::size_t kNodes = 1000;
  constexpr std::uint64_t kTasks = 100'000;  // mean 100 tasks/node
  double median_sum = 0.0;
  constexpr int kSeeds = 10;
  for (int s = 0; s < kSeeds; ++s) {
    const auto loads =
        initial_workloads(kNodes, kTasks, static_cast<std::uint64_t>(s));
    median_sum += stats::median_u64(loads);
  }
  const double mean_median = median_sum / kSeeds;
  EXPECT_NEAR(mean_median, 69.3, 8.0)
      << "Table I row (1000, 100000): paper reports 69.410";
}

TEST(InitialWorkloads, StdDevIsNearTheMean) {
  // Second Table I claim: sigma is close to the mean workload
  // (exponential arcs => stddev ≈ mean).
  const auto loads = initial_workloads(1000, 100'000, 11);
  std::vector<double> d(loads.begin(), loads.end());
  const auto s = stats::summarize(d);
  EXPECT_NEAR(s.stddev, 100.0, 35.0);
}

}  // namespace
}  // namespace dhtlb::exp
