#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dhtlb::support {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForWithMoreWorkersThanItems) {
  ThreadPool pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> out(100, 0);
  pool.parallel_for(100, [&out](std::size_t i) {
    out[i] = static_cast<int>(i) * 2;
  });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 2);
}

TEST(ThreadPool, PoolIsReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(1000, [&sum](std::size_t i) {
      sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5L * (999L * 1000L / 2));
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolDeathTest, ThrowingTaskReportsAndAborts) {
  // submit()'s contract: tasks must not throw.  An escaping exception
  // must be reported (with its what()) and abort the process
  // deterministically instead of unwinding through the worker loop.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto run_throwing_task = [] {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task exploded"); });
    pool.wait_idle();
  };
  EXPECT_DEATH(run_throwing_task(),
               "thread-pool task must not throw(.|\n)*task exploded");
}

TEST(ThreadPoolDeathTest, NonStdExceptionAlsoAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto run_throwing_task = [] {
    ThreadPool pool(1);
    pool.submit([] { throw 42; });  // NOLINT(hicpp-exception-baseclass)
    pool.wait_idle();
  };
  EXPECT_DEATH(run_throwing_task(), "non-std::exception");
}

TEST(ThreadPool, UnevenWorkloadsFinish) {
  // Dynamic scheduling: a few heavy items must not serialize the batch
  // behind one worker (correctness check, not a timing assertion).
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(64, [&total](std::size_t i) {
    long local = 0;
    const long reps = (i % 16 == 0) ? 100'000 : 100;
    for (long r = 0; r < reps; ++r) local += r % 7;
    total.fetch_add(local > 0 ? 1 : 1);
  });
  EXPECT_EQ(total.load(), 64);
}

}  // namespace
}  // namespace dhtlb::support
