// Violation shape 3: calling a REQUIRES(mu) function without holding
// mu.  -Wthread-safety must reject this translation unit.
#include "support/sync.hpp"

namespace {

class Store {
 public:
  void apply() REQUIRES(mu_) { ++value_; }

  // BAD: calls the REQUIRES function with mu_ not held.
  void apply_unlocked() { apply(); }

 private:
  dhtlb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Store s;
  s.apply_unlocked();
  return 0;
}
