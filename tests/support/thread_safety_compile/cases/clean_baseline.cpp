// Positive control: correctly annotated code must compile under
// -Wthread-safety -Werror=thread-safety, so the sibling cases' failures
// are attributable to the violations, not to a broken harness.
#include "support/sync.hpp"

namespace {

class Counter {
 public:
  void bump() EXCLUDES(mu_) {
    dhtlb::MutexLock lock(mu_);
    ++value_;
  }

  void locked_bump() REQUIRES(mu_) { ++value_; }

  void bump_via_manual_lock() EXCLUDES(mu_) {
    mu_.lock();
    locked_bump();
    mu_.unlock();
  }

  int value() EXCLUDES(mu_) {
    dhtlb::MutexLock lock(mu_);
    return value_;
  }

 private:
  dhtlb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

class SnapshotStore {
 public:
  void publish(int v) EXCLUDES(mu_) {
    dhtlb::WriterLock lock(mu_);
    snapshot_ = v;
  }

  int read() EXCLUDES(mu_) {
    dhtlb::ReaderLock lock(mu_);
    return snapshot_;
  }

 private:
  dhtlb::SharedMutex mu_;
  int snapshot_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  c.bump_via_manual_lock();
  SnapshotStore s;
  s.publish(c.value());
  return s.read() == 2 ? 0 : 1;
}
