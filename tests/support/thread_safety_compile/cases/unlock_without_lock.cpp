// Violation shape 2: releasing a capability that is not held.
// -Wthread-safety must reject this translation unit.
#include "support/sync.hpp"

int main() {
  dhtlb::Mutex mu;
  // BAD: unlock without a matching lock.
  mu.unlock();
  return 0;
}
