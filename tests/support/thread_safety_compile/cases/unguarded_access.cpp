// Violation shape 1: touching GUARDED_BY state without holding its
// mutex.  -Wthread-safety must reject this translation unit; the
// try_compile driver asserts it does.
#include "support/sync.hpp"

namespace {

class Counter {
 public:
  // BAD: writes value_ with mu_ not held.
  void bump() { ++value_; }

 private:
  dhtlb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return 0;
}
