#include "support/table.hpp"

#include <gtest/gtest.h>

namespace dhtlb::support {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos) << "header rule present";
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y", "2"});
  const std::string out = t.render();
  // Both data rows must place column b at the same offset.
  const auto row1 = out.find("xxxx  1");
  const auto row2 = out.find("y     2");
  EXPECT_NE(row1, std::string::npos);
  EXPECT_NE(row2, std::string::npos);
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, RowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  t.add_row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t({"k", "v"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
  EXPECT_NE(csv.find("plain"), std::string::npos);
}

TEST(TextTable, CsvHeaderFirstLine) {
  TextTable t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv().substr(0, 4), "x,y\n");
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.0, 3), "3.000");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
  EXPECT_EQ(format_fixed(0.005, 2), "0.01") << "rounds half up";
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(100000), "100,000");
  EXPECT_EQ(format_count(1000000000ULL), "1,000,000,000");
}

}  // namespace
}  // namespace dhtlb::support
