// Differential test: Uint160 arithmetic restricted to 64-bit operands
// against native std::uint64_t as ground truth.  Random operand pairs,
// every operation whose result fits (or wraps identically) in 64 bits.
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "support/uint160.hpp"

namespace dhtlb::support {
namespace {

class U160Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U160Differential, MatchesNative64BitArithmetic) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const Uint160 wa{a}, wb{b};

    // Addition: low 64 bits must match native wrapping addition, and
    // the carry must land in bit 64 exactly when native overflows.
    const Uint160 sum = wa + wb;
    EXPECT_EQ(sum.low64(), a + b);
    const bool carried = a + b < a;
    EXPECT_EQ(sum.limbs()[2] & 1u, carried ? 1u : 0u);

    // Subtraction where no borrow leaves the low 64 bits.
    if (a >= b) {
      EXPECT_EQ((wa - wb).low64(), a - b);
      EXPECT_TRUE((wa - wb).high64() == 0);
    }

    // Ordering matches native ordering for 64-bit-ranged values.
    EXPECT_EQ(wa < wb, a < b);
    EXPECT_EQ(wa == wb, a == b);

    // Shifts within the low word.
    const int s = static_cast<int>(rng.below(64));
    EXPECT_EQ(wa.shr(s).low64() & (s == 0 ? ~0ULL : ((1ULL << (64 - s)) - 1)),
              a >> s);

    // mul_small / div_small against native 128-bit truth.
    const auto m = static_cast<std::uint32_t>(rng.below(0xFFFFFFFFULL) + 1);
    __extension__ using U128 = unsigned __int128;
    const U128 prod = static_cast<U128>(a) * m;
    const Uint160 wprod = wa.mul_small(m);
    EXPECT_EQ(wprod.low64(), static_cast<std::uint64_t>(prod));
    EXPECT_EQ(wprod.limbs()[2],
              static_cast<std::uint32_t>(prod >> 64));
    EXPECT_EQ(wa.div_small(m).low64(), a / m);

    // bit_length matches std::bit_width semantics.
    int width = 0;
    for (std::uint64_t v = a; v != 0; v >>= 1) ++width;
    EXPECT_EQ(wa.bit_length(), width);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U160Differential,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace dhtlb::support
