#include "support/uint160.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/rng.hpp"

namespace dhtlb::support {
namespace {

TEST(Uint160, DefaultIsZero) {
  Uint160 v;
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v, Uint160::zero());
  EXPECT_EQ(v.low64(), 0u);
  EXPECT_EQ(v.high64(), 0u);
}

TEST(Uint160, ConstructFrom64) {
  const Uint160 v{0x1122334455667788ULL};
  EXPECT_EQ(v.low64(), 0x1122334455667788ULL);
  EXPECT_EQ(v.high64(), 0u);
  EXPECT_FALSE(v.is_zero());
}

TEST(Uint160, MaxValue) {
  const Uint160 m = Uint160::max();
  EXPECT_EQ(m.to_hex(), std::string(40, 'f'));
  EXPECT_EQ(m + Uint160{1}, Uint160::zero()) << "max + 1 wraps to zero";
}

TEST(Uint160, AdditionCarriesAcrossLimbs) {
  // 0x00000000FFFFFFFF... + 1 must ripple the carry upward.
  const Uint160 v = Uint160::from_hex("00000000ffffffffffffffffffffffffffffffff");
  const Uint160 sum = v + Uint160{1};
  EXPECT_EQ(sum.to_hex(), "0000000100000000000000000000000000000000");
}

TEST(Uint160, SubtractionBorrowsAcrossLimbs) {
  const Uint160 v = Uint160::from_hex("0000000100000000000000000000000000000000");
  const Uint160 diff = v - Uint160{1};
  EXPECT_EQ(diff.to_hex(), "00000000ffffffffffffffffffffffffffffffff");
}

TEST(Uint160, SubtractionWrapsBelowZero) {
  const Uint160 diff = Uint160::zero() - Uint160{1};
  EXPECT_EQ(diff, Uint160::max());
}

TEST(Uint160, AddSubRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Uint160 a = rng.uniform_u160();
    const Uint160 b = rng.uniform_u160();
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST(Uint160, AdditionCommutesAndAssociates) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const Uint160 a = rng.uniform_u160();
    const Uint160 b = rng.uniform_u160();
    const Uint160 c = rng.uniform_u160();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
  }
}

TEST(Uint160, HexRoundTrip) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const Uint160 v = rng.uniform_u160();
    EXPECT_EQ(Uint160::from_hex(v.to_hex()), v);
  }
}

TEST(Uint160, FromHexAcceptsShortStringsRightAligned) {
  EXPECT_EQ(Uint160::from_hex("ff"), Uint160{255});
  EXPECT_EQ(Uint160::from_hex("0"), Uint160::zero());
  EXPECT_EQ(Uint160::from_hex(""), Uint160::zero());
  EXPECT_EQ(Uint160::from_hex("0x10"), Uint160{16});
}

TEST(Uint160, FromHexRejectsBadInput) {
  EXPECT_THROW(Uint160::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW(Uint160::from_hex(std::string(41, 'a')),
               std::invalid_argument);
}

TEST(Uint160, BytesRoundTrip) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const Uint160 v = rng.uniform_u160();
    EXPECT_EQ(Uint160::from_bytes(v.to_bytes()), v);
  }
}

TEST(Uint160, BytesAreBigEndian) {
  const Uint160 v{0x0102030405060708ULL};
  const auto b = v.to_bytes();
  EXPECT_EQ(b[19], 0x08);
  EXPECT_EQ(b[12], 0x01);
  EXPECT_EQ(b[0], 0x00);
}

TEST(Uint160, Pow2Values) {
  EXPECT_EQ(Uint160::pow2(0), Uint160{1});
  EXPECT_EQ(Uint160::pow2(1), Uint160{2});
  EXPECT_EQ(Uint160::pow2(63), Uint160{1ULL << 63});
  EXPECT_EQ(Uint160::pow2(64).to_hex(),
            "0000000000000000000000010000000000000000");
  EXPECT_EQ(Uint160::pow2(159).to_hex(),
            "8000000000000000000000000000000000000000");
}

TEST(Uint160, Pow2SumsToMax) {
  Uint160 sum;
  for (int k = 0; k < 160; ++k) sum += Uint160::pow2(k);
  EXPECT_EQ(sum, Uint160::max());
}

TEST(Uint160, ShiftRightBasics) {
  const Uint160 v = Uint160::pow2(100);
  EXPECT_EQ(v.shr(100), Uint160{1});
  EXPECT_EQ(v.shr(101), Uint160::zero());
  EXPECT_EQ(v.shr(0), v);
  EXPECT_EQ(v.shr(160), Uint160::zero());
}

TEST(Uint160, ShiftLeftBasics) {
  EXPECT_EQ(Uint160{1}.shl(100), Uint160::pow2(100));
  EXPECT_EQ(Uint160{1}.shl(159), Uint160::pow2(159));
  EXPECT_EQ(Uint160{1}.shl(160), Uint160::zero());
  EXPECT_EQ(Uint160::pow2(159).shl(1), Uint160::zero()) << "top bit falls off";
}

TEST(Uint160, ShiftRoundTripWhenNoOverflow) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    const Uint160 v = rng.uniform_u160().shr(40);  // clear top 40 bits
    EXPECT_EQ(v.shl(40).shr(40), v);
  }
}

TEST(Uint160, HalvingViaShrMatchesDivSmall) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const Uint160 v = rng.uniform_u160();
    EXPECT_EQ(v.shr(1), v.div_small(2));
  }
}

TEST(Uint160, MulSmallBasics) {
  EXPECT_EQ(Uint160{7}.mul_small(6), Uint160{42});
  EXPECT_EQ(Uint160::max().mul_small(1), Uint160::max());
  // (2^160 - 1) * 2 mod 2^160 = 2^160 - 2.
  EXPECT_EQ(Uint160::max().mul_small(2), Uint160::max() - Uint160{1});
}

TEST(Uint160, DivSmallBasics) {
  EXPECT_EQ(Uint160{42}.div_small(6), Uint160{7});
  EXPECT_EQ(Uint160{43}.div_small(6), Uint160{7}) << "division truncates";
  EXPECT_EQ(Uint160::max().div_small(1), Uint160::max());
}

TEST(Uint160, MulDivSmallRoundTrip) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    // Keep the product below 2^160: clear the top 32 bits first.
    const Uint160 v = rng.uniform_u160().shr(32);
    const std::uint32_t m =
        static_cast<std::uint32_t>(rng.range(1, 0xFFFFFFFFu));
    EXPECT_EQ(v.mul_small(m).div_small(m), v);
  }
}

TEST(Uint160, ComparisonIsNumeric) {
  const Uint160 small{5};
  const Uint160 big = Uint160::pow2(128);
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_LE(small, small);
  EXPECT_EQ(small <=> small, std::strong_ordering::equal);
}

TEST(Uint160, OrderingMatchesByteLexicographic) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    const Uint160 a = rng.uniform_u160();
    const Uint160 b = rng.uniform_u160();
    EXPECT_EQ(a < b, a.to_bytes() < b.to_bytes());
  }
}

TEST(Uint160, UnitIntervalEndpoints) {
  EXPECT_DOUBLE_EQ(Uint160::zero().to_unit_interval(), 0.0);
  EXPECT_NEAR(Uint160::max().to_unit_interval(), 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(Uint160::pow2(159).to_unit_interval(), 0.5);
  EXPECT_DOUBLE_EQ(Uint160::pow2(158).to_unit_interval(), 0.25);
}

TEST(Uint160, UnitIntervalIsMonotone) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    const Uint160 a = rng.uniform_u160();
    const Uint160 b = rng.uniform_u160();
    if (a < b) {
      EXPECT_LE(a.to_unit_interval(), b.to_unit_interval());
    }
  }
}

TEST(Uint160, BitLengthBasics) {
  EXPECT_EQ(Uint160::zero().bit_length(), 0);
  EXPECT_EQ(Uint160{1}.bit_length(), 1);
  EXPECT_EQ(Uint160{2}.bit_length(), 2);
  EXPECT_EQ(Uint160{3}.bit_length(), 2);
  EXPECT_EQ(Uint160{255}.bit_length(), 8);
  EXPECT_EQ(Uint160{256}.bit_length(), 9);
  EXPECT_EQ(Uint160::max().bit_length(), 160);
}

TEST(Uint160, BitLengthMatchesPow2) {
  for (int k = 0; k < 160; ++k) {
    EXPECT_EQ(Uint160::pow2(k).bit_length(), k + 1) << "2^" << k;
    if (k > 0) {
      EXPECT_EQ((Uint160::pow2(k) - Uint160{1}).bit_length(), k)
          << "2^" << k << " - 1";
    }
  }
}

TEST(Uint160, BitLengthBoundsValue) {
  Rng rng(39);
  for (int i = 0; i < 100; ++i) {
    const Uint160 v = rng.uniform_u160();
    const int bits = v.bit_length();
    if (bits < 160) {
      EXPECT_LT(v, Uint160::pow2(bits));
    }
    if (bits > 0) {
      EXPECT_GE(v, Uint160::pow2(bits - 1));
    }
  }
}

TEST(Uint160, StreamOutputIsHex) {
  std::ostringstream os;
  os << Uint160{255};
  EXPECT_EQ(os.str(), "00000000000000000000000000000000000000ff");
}

TEST(Uint160, ShortHex) {
  const Uint160 v = Uint160::from_hex("deadbeef00000000000000000000000000000000");
  EXPECT_EQ(v.to_short_hex(), "deadbeef..");
}

}  // namespace
}  // namespace dhtlb::support
