// Contract-macro semantics: passing checks are silent, failing checks
// abort with the expression and the streamed context, and DHTLB_ASSERT
// obeys the build flavor (live in Debug/audit, gone in plain Release).
#include "support/check.hpp"

#include <gtest/gtest.h>

namespace dhtlb::support {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  DHTLB_CHECK(1 + 1 == 2);
  DHTLB_CHECK(true, "context is not evaluated on success");
  DHTLB_ASSERT(2 * 2 == 4);
  DHTLB_ASSERT(true, "nor here");
  SUCCEED();
}

TEST(CheckTest, ContextIsNotEvaluatedOnSuccess) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "ctx";
  };
  DHTLB_CHECK(true, count());
  EXPECT_EQ(evaluations, 0);
}

TEST(CheckDeathTest, FailingCheckPrintsExpressionAndContext) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const int vnode = 17;
  EXPECT_DEATH(DHTLB_CHECK(vnode < 10, "vnode " << vnode << " at tick " << 3),
               "DHTLB_CHECK failed: vnode < 10(.|\n)*"
               "context: vnode 17 at tick 3");
}

TEST(CheckDeathTest, FailingCheckWithoutContext) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DHTLB_CHECK(false), "DHTLB_CHECK failed: false");
}

TEST(CheckDeathTest, UnreachableAlwaysAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DHTLB_UNREACHABLE("strategy dispatch fell through"),
               "DHTLB_UNREACHABLE(.|\n)*strategy dispatch fell through");
}

#if DHTLB_ASSERT_ACTIVE
TEST(CheckDeathTest, AssertIsLiveInThisBuildFlavor) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DHTLB_ASSERT(false, "audit/debug builds keep asserts"),
               "DHTLB_ASSERT failed: false");
}
#else
TEST(CheckTest, AssertCompilesOutInPlainRelease) {
  DHTLB_ASSERT(false, "this must not abort: NDEBUG and no DHTLB_AUDIT");
  SUCCEED();
}
#endif

}  // namespace
}  // namespace dhtlb::support
