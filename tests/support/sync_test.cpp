// Runtime behavior of the annotated primitives in support/sync.hpp,
// exercised at the parallelism CI pins via DHTLB_THREADS=4: every fan
// here runs on a 4-worker ThreadPool (plus raw std::threads where a
// precise interleaving is needed).  The *compile-time* side — that
// -Wthread-safety rejects misuse — is proven separately by
// thread_safety_compile_test.
#include "support/sync.hpp"

#include <atomic>
#include <condition_variable>
#include <thread>

#include <gtest/gtest.h>

#include "support/thread_pool.hpp"

namespace dhtlb::support {
namespace {

constexpr std::size_t kThreads = 4;  // mirrors DHTLB_THREADS=4 in CI
constexpr int kIncrementsPerTask = 10'000;

class GuardedCounter {
 public:
  void bump() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++value_;
  }

  int value() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

TEST(SyncTest, MutexLockMakesConcurrentIncrementsExact) {
  GuardedCounter counter;
  ThreadPool pool(kThreads);
  pool.parallel_for(kThreads * 2, [&](std::size_t) {
    for (int i = 0; i < kIncrementsPerTask; ++i) counter.bump();
  });
  EXPECT_EQ(counter.value(),
            static_cast<int>(kThreads) * 2 * kIncrementsPerTask);
}

TEST(SyncTest, TryLockReportsContention) {
  Mutex mu;
  mu.lock();
  // Another thread must see the mutex as held...
  std::atomic<bool> acquired{true};
  std::thread prober([&] {
    if (mu.try_lock()) {
      mu.unlock();
    } else {
      acquired = false;
    }
  });
  prober.join();
  EXPECT_FALSE(acquired.load());
  mu.unlock();
  // ...and as free again after release.
  std::thread reprober([&] {
    if (mu.try_lock()) {
      acquired = true;
      mu.unlock();
    }
  });
  reprober.join();
  EXPECT_TRUE(acquired.load());
}

// Producer/consumer handshake through MutexLock::wait: the consumer
// must observe the flag the producer set under the same mutex.
TEST(SyncTest, MutexLockWaitHandshake) {
  Mutex mu;
  std::condition_variable cv;
  bool ready = false;  // protected by mu (local, so not annotatable)

  std::thread producer([&] {
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) lock.wait(cv);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

class GuardedSnapshot {
 public:
  void publish(int v) EXCLUDES(mu_) {
    WriterLock lock(mu_);
    ++writes_;
    snapshot_ = v;
  }

  int read() const EXCLUDES(mu_) {
    ReaderLock lock(mu_);
    return snapshot_;
  }

  int writes() const EXCLUDES(mu_) {
    ReaderLock lock(mu_);
    return writes_;
  }

 private:
  mutable SharedMutex mu_;
  int snapshot_ GUARDED_BY(mu_) = 0;
  int writes_ GUARDED_BY(mu_) = 0;
};

TEST(SyncTest, WriterLockExcludesWritersExactCount) {
  GuardedSnapshot store;
  ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t worker) {
    for (int i = 0; i < kIncrementsPerTask; ++i) {
      store.publish(static_cast<int>(worker));
    }
  });
  EXPECT_EQ(store.writes(), static_cast<int>(kThreads) * kIncrementsPerTask);
  EXPECT_GE(store.read(), 0);
  EXPECT_LT(store.read(), static_cast<int>(kThreads));
}

TEST(SyncTest, ReaderLocksAdmitConcurrentReaders) {
  SharedMutex smu;
  std::atomic<int> inside{0};
  // Each reader holds its shared lock until BOTH are inside the
  // critical section.  If ReaderLock acquired exclusively this would
  // deadlock (and trip the ctest timeout); real shared acquisition
  // lets both spin to the rendezvous and exit.
  auto reader = [&] {
    ReaderLock lock(smu);
    inside.fetch_add(1);
    while (inside.load() < 2) std::this_thread::yield();
  };
  std::thread a(reader);
  std::thread b(reader);
  a.join();
  b.join();
  EXPECT_EQ(inside.load(), 2);
}

}  // namespace
}  // namespace dhtlb::support
