#include "support/ring_math.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace dhtlb::support {
namespace {

const Uint160 kA{100};
const Uint160 kB{200};
const Uint160 kNearTop = Uint160::max() - Uint160{50};

TEST(RingMath, OpenArcSimple) {
  EXPECT_TRUE(in_open_arc(Uint160{150}, kA, kB));
  EXPECT_FALSE(in_open_arc(kA, kA, kB)) << "endpoints excluded";
  EXPECT_FALSE(in_open_arc(kB, kA, kB)) << "endpoints excluded";
  EXPECT_FALSE(in_open_arc(Uint160{50}, kA, kB));
  EXPECT_FALSE(in_open_arc(Uint160{250}, kA, kB));
}

TEST(RingMath, OpenArcWrapsThroughZero) {
  // Arc from near-max to 100 passes through 0.
  EXPECT_TRUE(in_open_arc(Uint160::zero(), kNearTop, kA));
  EXPECT_TRUE(in_open_arc(Uint160{50}, kNearTop, kA));
  EXPECT_TRUE(in_open_arc(Uint160::max(), kNearTop, kA));
  EXPECT_FALSE(in_open_arc(Uint160{150}, kNearTop, kA));
  EXPECT_FALSE(in_open_arc(kNearTop, kNearTop, kA));
}

TEST(RingMath, OpenArcDegenerateIsFullRingMinusPoint) {
  EXPECT_TRUE(in_open_arc(Uint160{5}, kA, kA));
  EXPECT_TRUE(in_open_arc(Uint160::max(), kA, kA));
  EXPECT_FALSE(in_open_arc(kA, kA, kA));
}

TEST(RingMath, HalfOpenArcIncludesUpperEndpoint) {
  EXPECT_TRUE(in_half_open_arc(kB, kA, kB));
  EXPECT_FALSE(in_half_open_arc(kA, kA, kB));
  EXPECT_TRUE(in_half_open_arc(Uint160{150}, kA, kB));
}

TEST(RingMath, HalfOpenArcWrap) {
  EXPECT_TRUE(in_half_open_arc(kA, kNearTop, kA));
  EXPECT_TRUE(in_half_open_arc(Uint160::zero(), kNearTop, kA));
  EXPECT_FALSE(in_half_open_arc(kNearTop, kNearTop, kA));
  EXPECT_FALSE(in_half_open_arc(Uint160{101}, kNearTop, kA));
}

TEST(RingMath, HalfOpenDegenerateCoversEverything) {
  // A single node owns the whole ring, including its own ID.
  EXPECT_TRUE(in_half_open_arc(kA, kA, kA));
  EXPECT_TRUE(in_half_open_arc(Uint160::zero(), kA, kA));
  EXPECT_TRUE(in_half_open_arc(Uint160::max(), kA, kA));
}

TEST(RingMath, LeftClosedArc) {
  EXPECT_TRUE(in_left_closed_arc(kA, kA, kB));
  EXPECT_FALSE(in_left_closed_arc(kB, kA, kB));
  EXPECT_TRUE(in_left_closed_arc(Uint160::zero(), kNearTop, kA));
  EXPECT_TRUE(in_left_closed_arc(kNearTop, kNearTop, kA));
  EXPECT_FALSE(in_left_closed_arc(kA, kNearTop, kA));
}

TEST(RingMath, EveryPointIsInExactlyOneSideOfAPartition) {
  // For any cut points a != b, x != a,b lies in exactly one of (a,b), (b,a).
  Rng rng(41);
  for (int i = 0; i < 300; ++i) {
    const Uint160 a = rng.uniform_u160();
    const Uint160 b = rng.uniform_u160();
    const Uint160 x = rng.uniform_u160();
    if (a == b || x == a || x == b) continue;
    EXPECT_NE(in_open_arc(x, a, b), in_open_arc(x, b, a));
  }
}

TEST(RingMath, ClockwiseDistanceBasics) {
  EXPECT_EQ(clockwise_distance(kA, kB), Uint160{100});
  EXPECT_EQ(clockwise_distance(kA, kA), Uint160::zero());
  // Going the "long way" around: from 200 back to 100.
  EXPECT_EQ(clockwise_distance(kB, kA),
            Uint160::zero() - Uint160{100});
}

TEST(RingMath, DistancesAroundTheRingSumToZero) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    const Uint160 a = rng.uniform_u160();
    const Uint160 b = rng.uniform_u160();
    EXPECT_EQ(clockwise_distance(a, b) + clockwise_distance(b, a),
              Uint160::zero())
        << "d(a,b) + d(b,a) == ring size == 0 (mod 2^160)";
  }
}

TEST(RingMath, ArcSizeMatchesDistanceExceptDegenerate) {
  EXPECT_EQ(arc_size(kA, kB), Uint160{100});
  EXPECT_EQ(arc_size(kA, kA), Uint160::max()) << "full ring saturates";
}

TEST(RingMath, MidpointOfSimpleArc) {
  EXPECT_EQ(arc_midpoint(kA, kB), Uint160{150});
  EXPECT_EQ(arc_midpoint(Uint160{0}, Uint160{10}), Uint160{5});
}

TEST(RingMath, MidpointOfWrappingArc) {
  // Arc from max-1 to 3 has interior {max, 0, 1, 2}; span 5, mid offset 2.
  const Uint160 lo = Uint160::max() - Uint160{1};
  const Uint160 mid = arc_midpoint(lo, Uint160{3});
  EXPECT_EQ(mid, Uint160::zero());
  EXPECT_TRUE(in_open_arc(mid, lo, Uint160{3}));
}

TEST(RingMath, MidpointIsInsideOpenArc) {
  Rng rng(47);
  int checked = 0;
  for (int i = 0; i < 300; ++i) {
    const Uint160 a = rng.uniform_u160();
    const Uint160 b = rng.uniform_u160();
    if (clockwise_distance(a, b) < Uint160{2}) continue;
    EXPECT_TRUE(in_open_arc(arc_midpoint(a, b), a, b))
        << "midpoint of (" << a << ", " << b << ")";
    ++checked;
  }
  EXPECT_GT(checked, 250);
}

TEST(RingMath, MidpointOfFullRingIsAntipode) {
  EXPECT_EQ(arc_midpoint(Uint160::zero(), Uint160::zero()),
            Uint160::pow2(159));
}

TEST(RingMath, RingFractionMatchesUnitInterval) {
  EXPECT_DOUBLE_EQ(ring_fraction(Uint160::pow2(159)), 0.5);
  EXPECT_DOUBLE_EQ(ring_fraction(Uint160::zero()), 0.0);
}

}  // namespace
}  // namespace dhtlb::support
