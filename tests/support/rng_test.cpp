#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/ring_math.hpp"

namespace dhtlb::support {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsAboutHalf) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRateIsRespected) {
  Rng rng(11);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.01)) ++hits;
  }
  // 1% of 100k = 1000, stddev ≈ 31; allow ±5 sigma.
  EXPECT_NEAR(hits, 1000, 160);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(13);
  for (const std::uint64_t n : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 62}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(n), n);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(15);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(17);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kN = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, 500);  // ±5 sigma-ish
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(19);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.range(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeSingleton) {
  Rng rng(21);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.range(5, 5), 5u);
}

TEST(Rng, UniformU160Distinct) {
  Rng rng(23);
  std::set<Uint160> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u160());
  EXPECT_EQ(seen.size(), 1000u) << "160-bit collisions are impossible";
}

TEST(Rng, UniformU160HitsBothHalves) {
  Rng rng(25);
  int high = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.uniform_u160() >= Uint160::pow2(159)) ++high;
  }
  EXPECT_NEAR(high, 500, 100);
}

TEST(Rng, UniformInArcStaysInside) {
  Rng rng(27);
  for (int i = 0; i < 300; ++i) {
    const Uint160 a = rng.uniform_u160();
    const Uint160 b = rng.uniform_u160();
    if (clockwise_distance(a, b) < Uint160{2}) continue;
    const Uint160 x = rng.uniform_in_arc(a, b);
    EXPECT_TRUE(in_open_arc(x, a, b));
  }
}

TEST(Rng, UniformInNarrowArc) {
  Rng rng(29);
  const Uint160 a{1000};
  const Uint160 b{1002};  // single interior ID: 1001
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.uniform_in_arc(a, b), Uint160{1001});
  }
}

TEST(Rng, UniformInWrappingArc) {
  Rng rng(31);
  const Uint160 a = Uint160::max() - Uint160{10};
  const Uint160 b{10};
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(in_open_arc(rng.uniform_in_arc(a, b), a, b));
  }
}

TEST(Rng, UniformInWideArcIsFast) {
  // Regression guard: arcs wider than 2^64 used to rejection-sample from
  // the entire 2^160 space (acceptance ~ arc/2^160 — billions of draws
  // per call for realistic DHT gaps).  With power-of-two windowing this
  // loop finishes instantly; under the old code it would effectively
  // hang the test suite.
  Rng rng(101);
  for (int mag = 70; mag <= 158; mag += 8) {
    const Uint160 a{12345};
    const Uint160 b = a + Uint160::pow2(mag) + Uint160{7};
    for (int i = 0; i < 1000; ++i) {
      EXPECT_TRUE(in_open_arc(rng.uniform_in_arc(a, b), a, b))
          << "arc magnitude 2^" << mag;
    }
  }
}

TEST(Rng, UniformInWideArcCoversTheWholeArc) {
  // The windowed sampler must still reach both halves of the arc.
  Rng rng(103);
  const Uint160 a = Uint160::zero();
  const Uint160 b = Uint160::pow2(150);
  const Uint160 mid = Uint160::pow2(149);
  int low = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    if (rng.uniform_in_arc(a, b) < mid) ++low;
  }
  EXPECT_NEAR(low, kN / 2, 150);
}

TEST(Rng, UniformInFullRingAvoidsEndpoint) {
  Rng rng(33);
  const Uint160 a{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(rng.uniform_in_arc(a, a), a);
  }
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
  Rng parent(35);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(MixSeed, TrialSeedsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t trial = 0; trial < 1000; ++trial) {
    seeds.insert(mix_seed(0x5EEDBA5E, trial));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(MixSeed, OrderMatters) {
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
}

TEST(Splitmix64, KnownSequenceIsStable) {
  // Regression pin: splitmix64(0) sequence per the reference
  // implementation (Steele/Lea/Vigna).
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(splitmix64(state), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace dhtlb::support
