#include "support/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace dhtlb::support {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("DHTLB_TEST_VAR");
    ::unsetenv("DHTLB_TRIALS");
    ::unsetenv("DHTLB_SEED");
    ::unsetenv("DHTLB_THREADS");
  }
};

TEST_F(EnvTest, UnsetUsesFallback) {
  EXPECT_EQ(env_u64("DHTLB_TEST_VAR", 17), 17u);
}

TEST_F(EnvTest, SetValueIsParsed) {
  ::setenv("DHTLB_TEST_VAR", "12345", 1);
  EXPECT_EQ(env_u64("DHTLB_TEST_VAR", 17), 12345u);
}

TEST_F(EnvTest, GarbageUsesFallback) {
  ::setenv("DHTLB_TEST_VAR", "not-a-number", 1);
  EXPECT_EQ(env_u64("DHTLB_TEST_VAR", 17), 17u);
  ::setenv("DHTLB_TEST_VAR", "12abc", 1);
  EXPECT_EQ(env_u64("DHTLB_TEST_VAR", 17), 17u);
  ::setenv("DHTLB_TEST_VAR", "", 1);
  EXPECT_EQ(env_u64("DHTLB_TEST_VAR", 17), 17u);
}

TEST_F(EnvTest, TrialsOverride) {
  EXPECT_EQ(env_trials(100), 100u);
  ::setenv("DHTLB_TRIALS", "5", 1);
  EXPECT_EQ(env_trials(100), 5u);
  ::setenv("DHTLB_TRIALS", "0", 1);
  EXPECT_EQ(env_trials(100), 100u) << "0 means use the default";
}

TEST_F(EnvTest, SeedDefaultAndOverride) {
  EXPECT_EQ(env_seed(), 0x5EEDBA5EULL);
  ::setenv("DHTLB_SEED", "42", 1);
  EXPECT_EQ(env_seed(), 42u);
}

TEST_F(EnvTest, ThreadsDefaultIsZero) {
  EXPECT_EQ(env_threads(), 0u);
  ::setenv("DHTLB_THREADS", "3", 1);
  EXPECT_EQ(env_threads(), 3u);
}

}  // namespace
}  // namespace dhtlb::support
