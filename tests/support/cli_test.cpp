#include "support/cli.hpp"

#include <gtest/gtest.h>

namespace dhtlb::support {
namespace {

CliParser sample_parser() {
  CliParser cli;
  cli.add_flag("nodes", "n", "1000", "network size");
  cli.add_flag("churn", "rate", "0", "churn rate");
  cli.add_flag("het", "", "", "heterogeneous");
  cli.add_flag("snapshots", "list", "", "ticks");
  return cli;
}

bool parse(CliParser& cli, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return cli.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, DefaultsApplyWhenUnset) {
  CliParser cli = sample_parser();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get_u64("nodes"), 1000u);
  EXPECT_DOUBLE_EQ(cli.get_double("churn"), 0.0);
  EXPECT_FALSE(cli.get_bool("het"));
  EXPECT_FALSE(cli.has("nodes"));
}

TEST(Cli, SpaceAndEqualsForms) {
  CliParser cli = sample_parser();
  ASSERT_TRUE(parse(cli, {"--nodes", "42", "--churn=0.5"}));
  EXPECT_EQ(cli.get_u64("nodes"), 42u);
  EXPECT_DOUBLE_EQ(cli.get_double("churn"), 0.5);
  EXPECT_TRUE(cli.has("nodes"));
}

TEST(Cli, BooleanForms) {
  CliParser a = sample_parser();
  ASSERT_TRUE(parse(a, {"--het"}));
  EXPECT_TRUE(a.get_bool("het"));
  CliParser b = sample_parser();
  ASSERT_TRUE(parse(b, {"--het=false"}));
  EXPECT_FALSE(b.get_bool("het"));
}

TEST(Cli, UnknownFlagFails) {
  CliParser cli = sample_parser();
  EXPECT_FALSE(parse(cli, {"--bogus", "1"}));
  EXPECT_NE(cli.error().find("bogus"), std::string::npos);
}

TEST(Cli, MissingValueFails) {
  CliParser cli = sample_parser();
  EXPECT_FALSE(parse(cli, {"--nodes"}));
  EXPECT_NE(cli.error().find("needs a value"), std::string::npos);
}

TEST(Cli, RepeatedFlagFails) {
  CliParser cli = sample_parser();
  EXPECT_FALSE(parse(cli, {"--nodes", "1", "--nodes", "2"}));
}

TEST(Cli, PositionalsCollected) {
  CliParser cli = sample_parser();
  ASSERT_TRUE(parse(cli, {"alpha", "--nodes", "5", "beta"}));
  EXPECT_EQ(cli.positionals(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Cli, U64ListParsing) {
  CliParser cli = sample_parser();
  ASSERT_TRUE(parse(cli, {"--snapshots", "0,5,35"}));
  EXPECT_EQ(cli.get_u64_list("snapshots"),
            (std::vector<std::uint64_t>{0, 5, 35}));
  CliParser empty = sample_parser();
  ASSERT_TRUE(parse(empty, {}));
  EXPECT_TRUE(empty.get_u64_list("snapshots").empty());
}

TEST(Cli, TypeErrorsThrow) {
  CliParser cli = sample_parser();
  ASSERT_TRUE(parse(cli, {"--nodes", "abc", "--churn", "xyz"}));
  EXPECT_THROW((void)cli.get_u64("nodes"), std::invalid_argument);
  EXPECT_THROW((void)cli.get_double("churn"), std::invalid_argument);
}

TEST(Cli, UnregisteredAccessThrows) {
  CliParser cli = sample_parser();
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_THROW((void)cli.get("nope"), std::logic_error);
}

TEST(Cli, DuplicateRegistrationThrows) {
  CliParser cli;
  cli.add_flag("x", "", "", "");
  EXPECT_THROW(cli.add_flag("x", "", "", ""), std::logic_error);
}

TEST(Cli, HelpListsFlagsWithDefaults) {
  const CliParser cli = sample_parser();
  const std::string help = cli.help("prog", "summary line");
  EXPECT_NE(help.find("summary line"), std::string::npos);
  EXPECT_NE(help.find("--nodes <n>"), std::string::npos);
  EXPECT_NE(help.find("(default: 1000)"), std::string::npos);
  EXPECT_NE(help.find("--het"), std::string::npos);
}

}  // namespace
}  // namespace dhtlb::support
