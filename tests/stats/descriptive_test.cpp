#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace dhtlb::stats {
namespace {

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0) << "n-1 variance undefined, reports 0";
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: Σ(x-5)^2 = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, NumericallyStableWithLargeOffset) {
  // Classic catastrophic-cancellation probe: tiny variance on a huge mean.
  RunningStats s;
  const double base = 1e9;
  for (double x : {base + 1, base + 2, base + 3}) s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStats, MergeMatchesSequential) {
  support::Rng rng(3);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100.0;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // empty rhs: unchanged
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // empty lhs: copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Median, OddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Median, SingleAndEmpty) {
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(median(one), 7.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Median, DoesNotModifyInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  (void)median(xs);
  EXPECT_EQ(xs, (std::vector<double>{9.0, 1.0, 5.0}));
}

TEST(Median, U64Overload) {
  const std::vector<std::uint64_t> xs{10, 30, 20};
  EXPECT_DOUBLE_EQ(median_u64(xs), 20.0);
}

TEST(Percentile, LinearInterpolation) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 17.5);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 105.0), 2.0);
}

TEST(Summarize, FullRecord) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, MedianMatchesStandaloneMedian) {
  support::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> xs;
    const std::size_t n = 1 + rng.below(50);
    for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform() * 1000.0);
    EXPECT_NEAR(summarize(xs).median, median(xs), 1e-9);
  }
}

}  // namespace
}  // namespace dhtlb::stats
