#include "stats/distribution_fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "exp/experiment.hpp"
#include "stats/load_metrics.hpp"
#include "support/rng.hpp"

namespace dhtlb::stats {
namespace {

TEST(LorenzCurve, StartsAtOriginEndsAtOneOne) {
  const std::vector<std::uint64_t> loads{3, 1, 4, 1, 5};
  const auto curve = lorenz_curve(loads);
  ASSERT_EQ(curve.size(), 6u);
  EXPECT_DOUBLE_EQ(curve.front().population_fraction, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().load_fraction, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().population_fraction, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().load_fraction, 1.0);
}

TEST(LorenzCurve, EqualLoadsFollowTheDiagonal) {
  const std::vector<std::uint64_t> loads(10, 7);
  for (const auto& pt : lorenz_curve(loads)) {
    EXPECT_NEAR(pt.load_fraction, pt.population_fraction, 1e-12);
  }
}

TEST(LorenzCurve, IsConvexAndBelowDiagonal) {
  support::Rng rng(1);
  std::vector<std::uint64_t> loads;
  for (int i = 0; i < 200; ++i) loads.push_back(rng.below(1000));
  const auto curve = lorenz_curve(loads);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].load_fraction, curve[i].population_fraction + 1e-12);
    EXPECT_GE(curve[i].load_fraction, curve[i - 1].load_fraction);
  }
}

TEST(LorenzCurve, AreaMatchesGini) {
  // Gini = 1 - 2 * area under the Lorenz curve (trapezoid rule).
  support::Rng rng(2);
  std::vector<std::uint64_t> loads;
  for (int i = 0; i < 500; ++i) loads.push_back(rng.below(5000));
  const auto curve = lorenz_curve(loads);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx =
        curve[i].population_fraction - curve[i - 1].population_fraction;
    area += dx * (curve[i].load_fraction + curve[i - 1].load_fraction) / 2.0;
  }
  EXPECT_NEAR(1.0 - 2.0 * area, gini(loads), 0.005);
}

TEST(KsVsExponential, TrueExponentialFitsWell) {
  support::Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(-std::log(1.0 - rng.uniform()) * 42.0);
  }
  EXPECT_LT(ks_vs_exponential(samples), 0.03);
}

TEST(KsVsExponential, UniformDataFitsBadly) {
  support::Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.uniform() * 100.0);
  EXPECT_GT(ks_vs_exponential(samples), 0.1);
}

TEST(KsVsUniform, MirrorsTheExponentialCase) {
  support::Rng rng(5);
  std::vector<double> uniform, expo;
  for (int i = 0; i < 5000; ++i) {
    uniform.push_back(rng.uniform() * 100.0);
    expo.push_back(-std::log(1.0 - rng.uniform()) * 50.0);
  }
  EXPECT_LT(ks_vs_uniform(uniform), 0.03);
  EXPECT_GT(ks_vs_uniform(expo), 0.1);
}

TEST(KsStatistics, EmptyInputIsMaximallyBad) {
  EXPECT_DOUBLE_EQ(ks_vs_exponential({}), 1.0);
  EXPECT_DOUBLE_EQ(ks_vs_uniform({}), 1.0);
}

TEST(ArcTheory, MatchesTableIFormulae) {
  const auto t = exponential_arc_theory(1000, 1'000'000);
  EXPECT_DOUBLE_EQ(t.mean_workload, 1000.0);
  EXPECT_NEAR(t.median_workload, 693.1, 0.1);
  EXPECT_DOUBLE_EQ(t.sigma_workload, 1000.0);
}

TEST(ArcTheory, SimulatedWorkloadsAreExponentialNotUniform) {
  // The §III claim, tested end to end: real SHA-1 workloads fit the
  // exponential-arc model far better than an even-arcs model.
  const auto loads = exp::initial_workloads(2000, 200'000, 99);
  std::vector<double> d(loads.begin(), loads.end());
  const double ks_exp = ks_vs_exponential(d);
  const double ks_uni = ks_vs_uniform(d);
  EXPECT_LT(ks_exp, 0.05) << "exponential-arc model fits";
  EXPECT_GT(ks_uni, 0.15) << "even-arc model is clearly rejected";
  EXPECT_LT(ks_exp, ks_uni / 3.0);
}

}  // namespace
}  // namespace dhtlb::stats
