#include "stats/load_metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace dhtlb::stats {
namespace {

TEST(Gini, PerfectEqualityIsZero) {
  const std::vector<std::uint64_t> equal(100, 42);
  EXPECT_NEAR(gini(equal), 0.0, 1e-12);
}

TEST(Gini, TotalConcentrationApproachesOne) {
  std::vector<std::uint64_t> loads(1000, 0);
  loads[0] = 1'000'000;
  EXPECT_GT(gini(loads), 0.99);
}

TEST(Gini, KnownTwoValueSplit) {
  // {0, 2}: G = 0.5 exactly.
  const std::vector<std::uint64_t> loads{0, 2};
  EXPECT_NEAR(gini(loads), 0.5, 1e-12);
}

TEST(Gini, EmptyAndAllZero) {
  EXPECT_DOUBLE_EQ(gini({}), 0.0);
  const std::vector<std::uint64_t> zeros(10, 0);
  EXPECT_DOUBLE_EQ(gini(zeros), 0.0);
}

TEST(Gini, ScaleInvariant) {
  support::Rng rng(3);
  std::vector<std::uint64_t> a, b;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.below(1000);
    a.push_back(v);
    b.push_back(v * 17);
  }
  EXPECT_NEAR(gini(a), gini(b), 1e-9);
}

TEST(Gini, OrderInvariant) {
  const std::vector<std::uint64_t> fwd{1, 2, 3, 4, 50};
  const std::vector<std::uint64_t> rev{50, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(gini(fwd), gini(rev));
}

TEST(CoV, EqualLoadsAreZero) {
  const std::vector<std::uint64_t> equal(50, 7);
  EXPECT_DOUBLE_EQ(coefficient_of_variation(equal), 0.0);
}

TEST(CoV, KnownValue) {
  // {0, 2}: mean 1, population stddev 1 => CoV 1.
  const std::vector<std::uint64_t> loads{0, 2};
  EXPECT_NEAR(coefficient_of_variation(loads), 1.0, 1e-12);
}

TEST(CoV, ZeroMeanIsZero) {
  const std::vector<std::uint64_t> zeros(5, 0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation(zeros), 0.0);
}

TEST(Jain, EqualLoadsAreFullyFair) {
  const std::vector<std::uint64_t> equal(64, 9);
  EXPECT_NEAR(jain_fairness(equal), 1.0, 1e-12);
}

TEST(Jain, SingleActiveNodeIsMinimallyFair) {
  std::vector<std::uint64_t> loads(10, 0);
  loads[3] = 100;
  EXPECT_NEAR(jain_fairness(loads), 0.1, 1e-12) << "1/n for one hot node";
}

TEST(Jain, EmptyAndZeroAreVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  const std::vector<std::uint64_t> zeros(4, 0);
  EXPECT_DOUBLE_EQ(jain_fairness(zeros), 1.0);
}

TEST(Jain, BoundedByOneOverNAndOne) {
  support::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> loads;
    for (int i = 0; i < 30; ++i) loads.push_back(rng.below(100));
    const double j = jain_fairness(loads);
    EXPECT_GE(j, 1.0 / 30.0 - 1e-12);
    EXPECT_LE(j, 1.0 + 1e-12);
  }
}

TEST(MaxOverMean, BalancedIsOne) {
  const std::vector<std::uint64_t> equal(8, 5);
  EXPECT_DOUBLE_EQ(max_over_mean(equal), 1.0);
}

TEST(MaxOverMean, KnownSkew) {
  // loads {1,1,1,5}: mean 2, max 5 => 2.5.
  const std::vector<std::uint64_t> loads{1, 1, 1, 5};
  EXPECT_DOUBLE_EQ(max_over_mean(loads), 2.5);
}

TEST(MaxOverMean, ZeroTotalIsZero) {
  const std::vector<std::uint64_t> zeros(4, 0);
  EXPECT_DOUBLE_EQ(max_over_mean(zeros), 0.0);
  EXPECT_DOUBLE_EQ(max_over_mean({}), 0.0);
}

TEST(IdleFraction, CountsZeros) {
  const std::vector<std::uint64_t> loads{0, 1, 0, 2, 0, 3, 4, 5};
  EXPECT_DOUBLE_EQ(idle_fraction(loads), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(idle_fraction({}), 0.0);
}

TEST(Metrics, AgreeOnWhichOfTwoDistributionsIsMoreBalanced) {
  // A cross-metric consistency property the benches rely on: Gini, CoV
  // and Jain must order a clearly-more-balanced distribution the same way.
  std::vector<std::uint64_t> balanced, skewed;
  support::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    balanced.push_back(90 + rng.below(21));      // 90..110
    skewed.push_back(rng.below(10) == 0 ? 1000 : 10);
  }
  EXPECT_LT(gini(balanced), gini(skewed));
  EXPECT_LT(coefficient_of_variation(balanced),
            coefficient_of_variation(skewed));
  EXPECT_GT(jain_fairness(balanced), jain_fairness(skewed));
  EXPECT_LT(max_over_mean(balanced), max_over_mean(skewed));
}

}  // namespace
}  // namespace dhtlb::stats
