#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace dhtlb::stats {
namespace {

TEST(LinearHistogram, BinEdgesAreUniform) {
  LinearHistogram h(0.0, 100.0, 4);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_DOUBLE_EQ(bins[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(bins[0].hi, 25.0);
  EXPECT_DOUBLE_EQ(bins[3].lo, 75.0);
  EXPECT_DOUBLE_EQ(bins[3].hi, 100.0);
}

TEST(LinearHistogram, SamplesLandInCorrectBins) {
  LinearHistogram h(0.0, 100.0, 4);
  h.add(0.0);    // bin 0 (left-closed)
  h.add(24.9);   // bin 0
  h.add(25.0);   // bin 1
  h.add(99.9);   // bin 3
  h.add(100.0);  // top edge folds into last bin
  const auto bins = h.bins();
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_EQ(bins[1].count, 1u);
  EXPECT_EQ(bins[2].count, 0u);
  EXPECT_EQ(bins[3].count, 2u);
}

TEST(LinearHistogram, OutOfRangeClampsIntoEdgeBins) {
  LinearHistogram h(10.0, 20.0, 2);
  h.add(-5.0);
  h.add(100.0);
  const auto bins = h.bins();
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(LinearHistogram, InvalidConstruction) {
  EXPECT_THROW(LinearHistogram(5.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(10.0, 5.0, 3), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LinearHistogram, ProbabilitiesSumToOne) {
  LinearHistogram h(0.0, 10.0, 7);
  for (int i = 0; i < 100; ++i) h.add(i % 10);
  const auto p = h.probabilities();
  const double sum = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(LinearHistogram, EmptyProbabilitiesAreZero) {
  LinearHistogram h(0.0, 1.0, 3);
  for (double p : h.probabilities()) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(LogHistogram, UnderflowBinCatchesZeros) {
  LogHistogram h(1.0, 1000.0, 3);
  h.add(0.0);
  h.add(0.5);
  const auto bins = h.bins();
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_DOUBLE_EQ(bins[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(bins[0].hi, 1.0);
}

TEST(LogHistogram, LogSpacedEdges) {
  LogHistogram h(1.0, 1000.0, 3);
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 4u);  // underflow + 3
  EXPECT_NEAR(bins[1].lo, 1.0, 1e-9);
  EXPECT_NEAR(bins[1].hi, 10.0, 1e-9);
  EXPECT_NEAR(bins[2].hi, 100.0, 1e-7);
  EXPECT_NEAR(bins[3].hi, 1000.0, 1e-6);
}

TEST(LogHistogram, HeavyTailLandsInUpperBins) {
  LogHistogram h(1.0, 10000.0, 4);
  h.add(2.0);      // [1,10)
  h.add(50.0);     // [10,100)
  h.add(5000.0);   // [1000,10000)
  h.add(99999.0);  // clamps into last bin
  const auto bins = h.bins();
  EXPECT_EQ(bins[1].count, 1u);
  EXPECT_EQ(bins[2].count, 1u);
  EXPECT_EQ(bins[4].count, 2u);
}

TEST(LogHistogram, InvalidConstruction) {
  EXPECT_THROW(LogHistogram(0.0, 10.0, 2), std::invalid_argument);
  EXPECT_THROW(LogHistogram(10.0, 10.0, 2), std::invalid_argument);
  EXPECT_THROW(LogHistogram(1.0, 10.0, 0), std::invalid_argument);
}

TEST(LogHistogram, ProbabilitiesIncludeUnderflow) {
  LogHistogram h(1.0, 100.0, 2);
  h.add(0.0);
  h.add(5.0);
  const auto p = h.probabilities();
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  const double sum = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(WorkloadHistogram, SpansZeroToMax) {
  const std::vector<std::uint64_t> loads{0, 5, 10, 99};
  auto h = workload_histogram(loads, 10);
  EXPECT_EQ(h.total(), 4u);
  const auto bins = h.bins();
  EXPECT_DOUBLE_EQ(bins.front().lo, 0.0);
  EXPECT_GE(bins.back().hi, 99.0);
}

TEST(WorkloadHistogram, AllIdleNetworkStillRenders) {
  const std::vector<std::uint64_t> loads(100, 0);
  auto h = workload_histogram(loads, 5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.bins().front().count, 100u);
}

TEST(WorkloadHistogram, CountsAreConserved) {
  std::vector<std::uint64_t> loads;
  for (std::uint64_t i = 0; i < 1000; ++i) loads.push_back(i * 7 % 331);
  auto h = workload_histogram(loads, 13);
  std::uint64_t total = 0;
  for (const auto& bin : h.bins()) total += bin.count;
  EXPECT_EQ(total, loads.size());
}

}  // namespace
}  // namespace dhtlb::stats
