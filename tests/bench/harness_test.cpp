// Tests for the bench telemetry harness: schema fields, stable key
// ordering, deterministic output at a fixed seed, and the env knobs.
#include "harness/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/thread_pool.hpp"

namespace dhtlb::bench {
namespace {

// setenv/unsetenv scoped helper; tests below mutate DHTLB_* knobs.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_;
};

std::vector<Record> sample_records() {
  Record a;
  a.experiment = "exp";
  a.cell = "cell/one";
  a.metric = "runtime_factor_mean";
  a.value = 1.25;
  a.wall_ms = 10.5;
  a.seed = 42;
  a.trials = 8;
  Record b = a;
  b.cell = "cell/two";
  b.value = 0.1 + 0.2;  // non-representable sum: %.17g must round-trip
  return {a, b};
}

TEST(ToJson, ContainsEverySchemaField) {
  const std::string json = to_json("exp", sample_records());
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"experiment\": \"exp\""), std::string::npos);
  for (const char* key :
       {"\"cell\"", "\"metric\"", "\"seed\"", "\"trials\"", "\"value\"",
        "\"wall_ms\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ToJson, KeysInAlphabeticalOrderWithinRecord) {
  const std::string json = to_json("exp", sample_records());
  const char* keys[] = {"\"cell\"",  "\"experiment\"", "\"metric\"",
                        "\"seed\"",  "\"trials\"",     "\"value\"",
                        "\"wall_ms\""};
  const std::size_t record_start = json.find("{\"cell\"");
  ASSERT_NE(record_start, std::string::npos);
  std::size_t prev = record_start;
  for (const char* key : keys) {
    const std::size_t pos = json.find(key, record_start);
    ASSERT_NE(pos, std::string::npos) << key;
    EXPECT_GE(pos, prev) << key << " out of order";
    prev = pos;
  }
}

TEST(ToJson, ByteStableAcrossCalls) {
  const auto records = sample_records();
  EXPECT_EQ(to_json("exp", records), to_json("exp", records));
}

TEST(ToJson, RoundTripsDoublesExactly) {
  // %.17g must preserve 0.1 + 0.2 != 0.3 in the serialized text.
  const std::string json = to_json("exp", sample_records());
  EXPECT_NE(json.find("0.30000000000000004"), std::string::npos);
}

TEST(ToJson, EscapesQuotesAndBackslashes) {
  Record r;
  r.experiment = "exp";
  r.cell = "quote\"back\\slash";
  r.metric = "m";
  const std::string json = to_json("exp", {r});
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(ToJson, EmptyRecordsYieldValidSkeleton) {
  const std::string json = to_json("exp", {});
  EXPECT_NE(json.find("\"records\": []"), std::string::npos);
}

TEST(ToJson, PeakRssOmittedWhenZeroAndSortedBetweenMetricAndSeed) {
  // Absent by default: zero-RSS records serialize exactly as before the
  // field existed.
  const std::string without = to_json("exp", sample_records());
  EXPECT_EQ(without.find("peak_rss_bytes"), std::string::npos);

  auto records = sample_records();
  records[0].peak_rss_bytes = 123456789;
  const std::string with = to_json("exp", records);
  const std::size_t pos = with.find("\"peak_rss_bytes\": 123456789");
  ASSERT_NE(pos, std::string::npos);
  // Alphabetical slot: after "metric", before "seed" in the same record.
  EXPECT_LT(with.find("\"metric\""), pos);
  EXPECT_GT(with.find("\"seed\""), pos);
  // The second record did not measure memory and stays clean.
  EXPECT_EQ(with.find("\"peak_rss_bytes\"", pos + 1), std::string::npos);
}

TEST(Telemetry, PeakRssZeroedInDeterministicMode) {
  ScopedEnv det("DHTLB_BENCH_DETERMINISTIC", "1");
  ScopedEnv nojson("DHTLB_BENCH_JSON", "0");
  Telemetry t("unit");
  t.record("c", "m", 1.0, 9.0, 1, /*peak_rss_bytes=*/1 << 20);
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].peak_rss_bytes, 0u);
  EXPECT_EQ(t.json().find("peak_rss_bytes"), std::string::npos);
}

TEST(Telemetry, CurrentPeakRssIsPlausible) {
  // A running process has touched at least a megabyte and (on any
  // machine this suite targets) well under a terabyte.
  const std::uint64_t rss = Telemetry::current_peak_rss_bytes();
  EXPECT_GE(rss, 1u << 20);
  EXPECT_LT(rss, 1ull << 40);
}

TEST(Telemetry, RecordCapturesEnvSeedAndZeroesWallWhenDeterministic) {
  ScopedEnv seed("DHTLB_SEED", "1234");
  ScopedEnv det("DHTLB_BENCH_DETERMINISTIC", "1");
  ScopedEnv nojson("DHTLB_BENCH_JSON", "0");  // no file side effects
  Telemetry t("unit");
  t.record("c", "m", 2.5, 99.0, 4);
  ASSERT_EQ(t.records().size(), 1u);
  EXPECT_EQ(t.records()[0].seed, 1234u);
  EXPECT_EQ(t.records()[0].trials, 4u);
  EXPECT_DOUBLE_EQ(t.records()[0].wall_ms, 0.0);  // deterministic mode
  EXPECT_DOUBLE_EQ(t.records()[0].value, 2.5);
}

TEST(Telemetry, IdenticalRunsProduceIdenticalJson) {
  ScopedEnv seed("DHTLB_SEED", "7");
  ScopedEnv det("DHTLB_BENCH_DETERMINISTIC", "1");
  ScopedEnv nojson("DHTLB_BENCH_JSON", "0");
  auto run = [] {
    Telemetry t("unit");
    t.record("a", "m", 1.0, 5.0, 2);
    t.record("b", "m", 2.0, 6.0, 2);
    return t.json();
  };
  EXPECT_EQ(run(), run());
}

TEST(Telemetry, FlushWritesFileToBenchDir) {
  ScopedEnv dir("DHTLB_BENCH_DIR", ::testing::TempDir().c_str());
  ScopedEnv det("DHTLB_BENCH_DETERMINISTIC", "1");
  {
    Telemetry t("flushtest");
    t.record("c", "m", 3.0, 0.0, 1);
    EXPECT_TRUE(t.flush());
  }
  const std::string path = ::testing::TempDir() + "/BENCH_flushtest.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"experiment\": \"flushtest\""),
            std::string::npos);
  EXPECT_NE(buf.str().find("\"value\": 3"), std::string::npos);
  std::remove(path.c_str());
}

// Telemetry is mutex-guarded (support/sync.hpp) so parallel bench cells
// can record concurrently: the fan must lose no records, and records()
// returns a consistent snapshot.
TEST(Telemetry, ConcurrentRecordsAreAllKept) {
  ScopedEnv det("DHTLB_BENCH_DETERMINISTIC", "1");
  ScopedEnv nojson("DHTLB_BENCH_JSON", "0");
  Telemetry t("unit");
  constexpr std::size_t kTasks = 8;
  constexpr int kRecordsPerTask = 500;
  support::ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t task) {
    for (int i = 0; i < kRecordsPerTask; ++i) {
      t.record("cell/" + std::to_string(task), "m", 1.0, 0.0, 1);
    }
  });
  EXPECT_EQ(t.records().size(), kTasks * kRecordsPerTask);
}

TEST(Telemetry, JsonKnobDisablesFlush) {
  ScopedEnv nojson("DHTLB_BENCH_JSON", "0");
  Telemetry t("disabled");
  t.record("c", "m", 1.0, 0.0, 1);
  EXPECT_FALSE(t.flush());
}

TEST(Telemetry, CalibrationRecordOmittedInDeterministicMode) {
  ScopedEnv dir("DHTLB_BENCH_DIR", ::testing::TempDir().c_str());
  ScopedEnv det("DHTLB_BENCH_DETERMINISTIC", "1");
  {
    Telemetry t("caltest");
    t.record("c", "m", 1.0, 0.0, 1);
    ASSERT_TRUE(t.flush());
  }
  const std::string path = ::testing::TempDir() + "/BENCH_caltest.json";
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str().find("__calibration__"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dhtlb::bench
