#include "sim/backup.hpp"

#include <gtest/gtest.h>

#include "hashing/sha1.hpp"
#include "support/rng.hpp"

namespace dhtlb::sim {
namespace {

using Id = support::Uint160;
using support::Rng;

std::vector<Id> make_nodes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Id> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(hashing::Sha1::hash_u64(rng()));
  }
  return nodes;
}

TEST(BackupRing, ConstructionValidation) {
  EXPECT_THROW(BackupRing({}, 3), std::invalid_argument);
  EXPECT_THROW(BackupRing(make_nodes(3, 1), 0), std::invalid_argument);
  std::vector<Id> dup{Id{1}, Id{1}};
  EXPECT_THROW(BackupRing(dup, 2), std::invalid_argument);
}

TEST(BackupRing, KeysGetReplicationCopies) {
  BackupRing ring(make_nodes(20, 2), 5);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Id key = rng.uniform_u160();
    ring.add_key(key);
    EXPECT_EQ(ring.copies_of(key), 5u);
    EXPECT_TRUE(ring.key_alive(key));
  }
  EXPECT_EQ(ring.total_keys(), 50u);
  EXPECT_EQ(ring.lost_keys(), 0u);
}

TEST(BackupRing, ReplicationClampsToRingSize) {
  BackupRing ring(make_nodes(3, 4), 5);
  ring.add_key(Id{42});
  EXPECT_EQ(ring.copies_of(Id{42}), 3u) << "only 3 nodes exist";
}

TEST(BackupRing, SingleFailureNeverLosesData) {
  // §IV-A: "a node suddenly dying is of minimal impact".
  auto nodes = make_nodes(30, 5);
  BackupRing ring(nodes, 5);
  Rng rng(6);
  std::vector<Id> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(rng.uniform_u160());
    ring.add_key(keys.back());
  }
  ring.fail_node(nodes[7]);
  for (const auto& key : keys) {
    EXPECT_TRUE(ring.key_alive(key));
  }
  EXPECT_EQ(ring.lost_keys(), 0u);
}

TEST(BackupRing, SurvivesRMinus1AdjacentFailuresWithoutRepair) {
  auto nodes = make_nodes(30, 7);
  std::sort(nodes.begin(), nodes.end());
  BackupRing ring(nodes, 5);
  Rng rng(8);
  for (int i = 0; i < 300; ++i) ring.add_key(rng.uniform_u160());
  // Kill 4 ring-adjacent nodes with no repair in between: every key had
  // 5 copies on consecutive nodes, so one copy must survive.
  for (int k = 3; k < 7; ++k) ring.fail_node(nodes[static_cast<std::size_t>(k)]);
  EXPECT_EQ(ring.lost_keys(), 0u);
}

TEST(BackupRing, RAdjacentFailuresCanLoseData) {
  // The negative control: replication r cannot survive r adjacent
  // simultaneous failures for keys homed exactly on that run of nodes.
  auto nodes = make_nodes(30, 9);
  std::sort(nodes.begin(), nodes.end());
  BackupRing ring(nodes, 3);
  // Place a key JUST before nodes[10] so its replica set is exactly
  // nodes[10..12].
  const Id key = nodes[10] - Id{1};
  ring.add_key(key);
  ring.fail_node(nodes[10]);
  ring.fail_node(nodes[11]);
  ring.fail_node(nodes[12]);
  EXPECT_FALSE(ring.key_alive(key));
  EXPECT_EQ(ring.lost_keys(), 1u);
}

TEST(BackupRing, RepairRestoresFullReplication) {
  auto nodes = make_nodes(25, 10);
  BackupRing ring(nodes, 5);
  Rng rng(11);
  std::vector<Id> keys;
  for (int i = 0; i < 100; ++i) {
    keys.push_back(rng.uniform_u160());
    ring.add_key(keys.back());
  }
  ring.fail_node(nodes[0]);
  ring.fail_node(nodes[1]);
  const std::uint64_t transfers = ring.repair();
  EXPECT_GT(transfers, 0u);
  for (const auto& key : keys) {
    EXPECT_EQ(ring.copies_of(key), 5u);
  }
  EXPECT_EQ(ring.repair(), 0u) << "repair is idempotent once converged";
}

TEST(BackupRing, FailRepairCycleSurvivesSustainedChurn) {
  // The ChordReduce claim: with a repair cycle per tick, the network
  // recovers from sustained churn without data loss as long as fewer
  // than r adjacent nodes die per cycle.
  auto nodes = make_nodes(40, 12);
  BackupRing ring(nodes, 5);
  Rng rng(13);
  for (int i = 0; i < 400; ++i) ring.add_key(rng.uniform_u160());
  Rng churn_rng(14);
  std::vector<Id> membership = nodes;
  for (int tick = 0; tick < 100; ++tick) {
    // One failure and one join per tick (2.5% churn on 40 nodes), with
    // a repair cycle after each — the paper's one-maintenance-per-tick
    // assumption.
    const std::size_t victim =
        static_cast<std::size_t>(churn_rng.below(membership.size()));
    ring.fail_node(membership[victim]);
    membership.erase(membership.begin() +
                     static_cast<std::ptrdiff_t>(victim));
    const Id joiner = hashing::Sha1::hash_u64(churn_rng());
    ASSERT_TRUE(ring.join_node(joiner));
    membership.push_back(joiner);
    ring.repair();
  }
  EXPECT_EQ(ring.lost_keys(), 0u)
      << "one failure per repair cycle must never lose data at r=5";
  EXPECT_EQ(ring.live_nodes(), 40u);
}

TEST(BackupRing, JoinersHoldNothingUntilRepair) {
  auto nodes = make_nodes(10, 15);
  BackupRing ring(nodes, 3);
  const Id key{1234567};
  ring.add_key(key);
  const std::size_t before = ring.copies_of(key);
  // A joiner landing inside the key's replica run takes over a slot
  // only after repair.
  const Id joiner = key + Id{1};
  ASSERT_TRUE(ring.join_node(joiner));
  EXPECT_EQ(ring.copies_of(key), before) << "no copies moved yet";
  ring.repair();
  EXPECT_EQ(ring.copies_of(key), 3u);
  EXPECT_TRUE(ring.key_alive(key));
}

TEST(BackupRing, DuplicateJoinRejected) {
  auto nodes = make_nodes(5, 16);
  BackupRing ring(nodes, 2);
  EXPECT_FALSE(ring.join_node(nodes[2]));
  EXPECT_TRUE(ring.join_node(Id{999}));
}

}  // namespace
}  // namespace dhtlb::sim
