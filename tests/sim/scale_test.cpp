// Large-world smoke tests for the flat-ring data layer.  These build
// rings two orders of magnitude past the paper's 1000-node networks,
// run audited-off churn ticks the way the scale benches do, and then
// audit the final state once.  Registered RUN_SERIAL with an explicit
// TIMEOUT in tests/CMakeLists.txt: they own the machine's memory
// bandwidth while they run and must never wedge a CI shard.
#include <gtest/gtest.h>

#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "sim/params.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace dhtlb::sim {
namespace {

// Sanitizer builds run the same test at a tenth of the size: the goal
// there is instrumented coverage of the bulk paths, not wall time.
std::size_t scale_nodes() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  constexpr std::uint64_t kDefault = 10'000;
#else
  constexpr std::uint64_t kDefault = 100'000;
#endif
  return static_cast<std::size_t>(
      support::env_u64("DHTLB_SCALE_TEST_NODES", kDefault));
}

TEST(ScaleTest, LargeWorldBuildsAndPassesFullAudit) {
  const std::size_t nodes = scale_nodes();
  Params p;
  p.initial_nodes = nodes;
  p.total_tasks = 2 * nodes;
  support::Rng rng(20260805);
  World world(p, rng);
  EXPECT_EQ(world.alive_count(), nodes);
  EXPECT_EQ(world.remaining_tasks(), 2 * nodes);
  const AuditReport report = InvariantAuditor(world).run();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ScaleTest, LargeWorldSurvivesAuditedOffChurnTicks) {
  const std::size_t nodes = scale_nodes();
  Params p;
  p.initial_nodes = nodes;
  p.total_tasks = 2 * nodes;
  p.churn_rate = 0.01;
  Engine engine(p, /*seed=*/0x5CA1E);
  engine.set_audit(false);  // per-tick audits are O(ring + tasks)
  engine.set_pre_tick_hook([](std::uint64_t tick) { return tick <= 20; });
  for (int tick = 0; tick < 20; ++tick) {
    if (!engine.step()) break;
  }
  // One full audit at the end catches anything the 20 ticks corrupted.
  const AuditReport report = InvariantAuditor(engine.world()).run();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(engine.world().ring_index_consistent());
}

}  // namespace
}  // namespace dhtlb::sim
