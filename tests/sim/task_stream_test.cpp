// Streamed task provisioning (sim/task_stream.hpp): the schedule's
// closed forms, the seed derivation pinned against an independent
// replay, and audited engine runs proving streamed arrivals conserve
// tasks across churn joins/leaves and Sybil splits — plus the
// 1-vs-N-thread differential for streamed mode, mirroring
// parallel_determinism_test.cpp.
#include "sim/task_stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "hashing/sha1.hpp"
#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "sim/params.hpp"
#include "support/rng.hpp"

namespace dhtlb::sim {
namespace {

// Awkward split parameters on purpose: remainders at both the tick and
// the shard level.
constexpr std::uint64_t kSeeds[] = {11, 23, 47, 101, 577, 7919, 104729};

TEST(TaskStream, ScheduleSumsToTotal) {
  for (const auto& [total, window] :
       {std::pair<std::uint64_t, std::uint64_t>{1000, 7},
        {999, 1000},  // more ticks than tasks: some ticks get zero
        {1, 1},
        {100'003, 97}}) {
    const TaskStream stream(42, total, window);
    std::uint64_t sum = 0;
    for (std::uint64_t t = 1; t <= window; ++t) {
      sum += stream.count_at(t);
      EXPECT_EQ(sum, stream.cumulative(t)) << "tick " << t;
      EXPECT_EQ(stream.exhausted_after(t), sum == total) << "tick " << t;
    }
    EXPECT_EQ(sum, total);
    EXPECT_EQ(stream.count_at(0), 0u);
    EXPECT_EQ(stream.count_at(window + 1), 0u);
    EXPECT_EQ(stream.cumulative(0), 0u);
    EXPECT_EQ(stream.cumulative(window + 5), total);
  }
}

TEST(TaskStream, EarlyTicksAbsorbTheRemainder) {
  // 23 = 3*7 + 2: ticks 1-2 get 4, ticks 3-7 get 3.
  const TaskStream stream(1, 23, 7);
  EXPECT_EQ(stream.count_at(1), 4u);
  EXPECT_EQ(stream.count_at(2), 4u);
  EXPECT_EQ(stream.count_at(3), 3u);
  EXPECT_EQ(stream.count_at(7), 3u);
}

TEST(TaskStream, ShardCountsPartitionTheTick) {
  const TaskStream stream(7, 100'003, 97);
  for (std::uint64_t t = 1; t <= 97; ++t) {
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < kTickShards; ++s) {
      sum += stream.shard_count(t, s);
    }
    EXPECT_EQ(sum, stream.count_at(t)) << "tick " << t;
  }
}

TEST(TaskStream, DrawMatchesShardCountAndIsRepeatable) {
  const TaskStream stream(99, 5000, 13);
  for (std::uint64_t t = 1; t <= 13; ++t) {
    for (std::size_t s = 0; s < kTickShards; ++s) {
      std::vector<TaskKey> once;
      std::vector<TaskKey> twice;
      stream.draw_shard(t, s, once);
      stream.draw_shard(t, s, twice);
      EXPECT_EQ(once.size(), stream.shard_count(t, s));
      EXPECT_EQ(once, twice) << "draws must be pure in (tick, shard)";
    }
  }
}

// The ISSUE's differential: the full horizon drawn eagerly must equal an
// independent replay of the stream that reconstructs every key from the
// documented derivation — stream_seed(mix_seed(seed, tick), kStreamArrive,
// shard) feeding Sha1::hash_u64.  This pins the derivation itself: any
// reordering, relabeling, or extra draw changes the multiset.
TEST(TaskStream, EagerDrawMatchesReferenceReplayOnSevenSeeds) {
  constexpr std::uint64_t kTotal = 10'007;
  constexpr std::uint64_t kWindow = 53;
  for (const std::uint64_t seed : kSeeds) {
    const TaskStream stream(seed, kTotal, kWindow);
    for (std::uint64_t t = 1; t <= kWindow; ++t) {
      // Eager per-tick multiset via the production API.
      std::vector<TaskKey> eager;
      for (std::size_t s = 0; s < kTickShards; ++s) {
        stream.draw_shard(t, s, eager);
      }
      // Reference replay, from first principles: balanced tick share,
      // balanced shard share, then raw stream_seed + SHA-1 draws.
      const std::uint64_t tick_n =
          kTotal / kWindow + ((t - 1) < kTotal % kWindow ? 1 : 0);
      std::vector<TaskKey> replay;
      for (std::size_t s = 0; s < kTickShards; ++s) {
        const std::uint64_t shard_n =
            tick_n / kTickShards + (s < tick_n % kTickShards ? 1 : 0);
        support::Rng rng(support::stream_seed(
            support::mix_seed(seed, t), kStreamArrive, s));
        for (std::uint64_t i = 0; i < shard_n; ++i) {
          replay.push_back(hashing::Sha1::hash_u64(rng()));
        }
      }
      ASSERT_EQ(eager.size(), tick_n) << "seed " << seed << " tick " << t;
      // Compare as multisets: fold order is an engine concern, the
      // arrival *set* is the stream's contract.
      std::sort(eager.begin(), eager.end());
      std::sort(replay.begin(), replay.end());
      EXPECT_EQ(eager, replay) << "seed " << seed << " tick " << t;
    }
  }
}

Params streamed_params(std::size_t nodes, std::uint64_t tasks,
                       std::uint64_t window) {
  Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  p.churn_rate = 0.05;
  p.provisioning = TaskProvisioning::kStreamed;
  p.arrival_ticks = window;
  p.max_ticks = 400;
  return p;
}

// Conservation under the full event mix: churn joins/leaves move arcs
// between nodes, the Sybil strategy splits arcs mid-stream, and every
// tick the auditor checks completed + remaining == arrived-so-far (and
// the engine checks arrived-so-far against the closed form).  The
// auditor aborts the run on the first violation.
TEST(TaskStreamEngine, AuditedRunConservesTasksAcrossChurnAndSybils) {
  for (const std::uint64_t seed : kSeeds) {
    Engine engine(streamed_params(300, 6'000, 15), seed,
                  lb::make_strategy("random-injection"));
    engine.set_audit(true);
    const RunResult result = engine.run();
    EXPECT_TRUE(result.completed) << "seed " << seed;
    EXPECT_EQ(engine.world().remaining_tasks(), 0u);
    // Every scheduled task arrived — no drops, no duplicates.
    EXPECT_EQ(engine.world().total_tasks(), 6'000u) << "seed " << seed;
    ASSERT_NE(engine.task_stream(), nullptr);
    EXPECT_TRUE(engine.task_stream()->exhausted_after(result.ticks));
  }
}

// A streamed world starts empty; the engine must keep ticking through
// the arrival window rather than declaring an empty ring done.
TEST(TaskStreamEngine, DrainedWorldKeepsTickingWhileStreamFlows) {
  Params p = streamed_params(50, 500, 10);
  p.churn_rate = 0.0;
  Engine engine(p, 7);
  engine.set_audit(true);
  EXPECT_EQ(engine.world().remaining_tasks(), 0u);
  EXPECT_EQ(engine.world().total_tasks(), 0u);
  const RunResult result = engine.run();
  EXPECT_TRUE(result.completed);
  EXPECT_GE(result.ticks, 10u) << "must outlive the arrival window";
  EXPECT_EQ(engine.world().total_tasks(), 500u);
}

// ideal_ticks can never undercut the arrival window: a job that arrives
// over 40 ticks cannot ideally finish in 10.
TEST(TaskStreamEngine, IdealTicksFloorsAtTheArrivalWindow) {
  Engine engine(streamed_params(50, 500, 40), 7);
  EXPECT_EQ(engine.ideal_ticks(), 40u);
}

RunResult run_streamed_at(const Params& p, std::uint64_t seed,
                          std::size_t threads) {
  Engine engine(p, seed, lb::make_strategy("random-injection"));
  engine.set_audit(true);
  engine.set_threads(threads);
  engine.record_tick_series(true);
  engine.request_snapshots({0, 5, 20, 60});
  return engine.run();
}

// Streamed-mode counterpart of parallel_determinism_test.cpp: the
// arrival folds join churn and consumption in the shard pipeline, so
// the same (params, seed) must stay bit-identical at odd thread counts
// that don't divide the 16 shards.
TEST(TaskStreamEngine, StreamedRunsBitIdenticalAcrossThreadCounts) {
  const Params p = streamed_params(300, 6'000, 20);
  for (const std::uint64_t seed : {11u, 577u, 104729u}) {
    const RunResult base = run_streamed_at(p, seed, 1);
    ASSERT_GT(base.joins + base.leaves, 0u) << "scenario must churn";
    for (const std::size_t threads : {std::size_t{3}, std::size_t{7}}) {
      const RunResult other = run_streamed_at(p, seed, threads);
      SCOPED_TRACE(::testing::Message()
                   << "seed " << seed << ", 1 vs " << threads << " threads");
      EXPECT_EQ(base.ticks, other.ticks);
      EXPECT_EQ(base.completed, other.completed);
      EXPECT_EQ(base.joins, other.joins);
      EXPECT_EQ(base.leaves, other.leaves);
      EXPECT_EQ(base.strategy_counters.sybils_created,
                other.strategy_counters.sybils_created);
      EXPECT_EQ(base.work_per_tick, other.work_per_tick);
      ASSERT_EQ(base.snapshots.size(), other.snapshots.size());
      for (std::size_t i = 0; i < base.snapshots.size(); ++i) {
        EXPECT_EQ(base.snapshots[i].workloads, other.snapshots[i].workloads)
            << "snapshot at tick " << base.snapshots[i].tick;
      }
    }
  }
}

TEST(TaskStreamEngine, PreallocatedModeIsUntouchedByTheFlag) {
  // Same params except provisioning: the preallocated run must not
  // consult the stream machinery at all (task_stream() is null) and
  // must start fully loaded.
  Params p;
  p.initial_nodes = 100;
  p.total_tasks = 2'000;
  Engine engine(p, 5);
  EXPECT_EQ(engine.task_stream(), nullptr);
  EXPECT_EQ(engine.world().remaining_tasks(), 2'000u);
}

TEST(TaskStreamParams, ValidationRejectsWindowWithoutStreamedMode) {
  Params p;
  p.arrival_ticks = 10;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.provisioning = TaskProvisioning::kStreamed;
  EXPECT_NO_THROW(p.validate());
}

TEST(TaskStreamParams, DescribeMentionsStreamingOnlyWhenStreamed) {
  Params p;
  EXPECT_EQ(p.describe().find("provisioning"), std::string::npos);
  p.provisioning = TaskProvisioning::kStreamed;
  EXPECT_NE(p.describe().find("provisioning=streamed"), std::string::npos);
}

}  // namespace
}  // namespace dhtlb::sim
