// Test-only backdoor that seeds deliberate corruptions into a World,
// bypassing the public API (which maintains the invariants by
// construction).  Each corruption is aimed at exactly one auditor
// check; audit_test.cpp asserts the InvariantAuditor pins it.
//
// Declared a friend of World (see world.hpp); lives under tests/ so the
// shipped library contains no mutation backdoor.
#pragma once

#include <algorithm>

#include "hashing/sha1.hpp"
#include "sim/world.hpp"

namespace dhtlb::sim::testing {

struct WorldCorruptor {
  /// Moves one task key from its owning vnode into a different vnode's
  /// store (workload caches kept consistent), leaving the key outside
  /// the holder's arc.  Target check: key-partition.
  /// Returns false when the world has no movable key (needs >= 2 vnodes
  /// and at least one stored task).
  static bool orphan_key(World& world) {
    if (world.ring_.size() < 2) return false;
    FlatRing& ring = world.ring_;
    FlatRing::Cursor src = ring.first();
    std::size_t scanned = 0;
    while (scanned < ring.size() && ring.tasks(ring.slot_at(src)).empty()) {
      src = ring.next(src);
      ++scanned;
    }
    if (scanned == ring.size()) return false;
    const FlatRing::Cursor dst = ring.next(src);
    const Slot src_slot = ring.slot_at(src);
    const Slot dst_slot = ring.slot_at(dst);
    support::Rng scratch(1);
    const TaskKey key = ring.tasks(src_slot).consume_random(scratch);
    ring.tasks(dst_slot).add(key);
    --world.physicals_[ring.owner(src_slot)].workload;
    ++world.physicals_[ring.owner(dst_slot)].workload;
    return true;
  }

  /// Appends a vnode ID already owned by one physical node to another
  /// physical node's vnode list — two nodes claiming the same arc.
  /// Target check: sybil-ownership.
  static bool duplicate_arc(World& world) {
    if (world.alive_.size() < 2) return false;
    const NodeIndex a = world.alive_[0];
    const NodeIndex b = world.alive_[1];
    world.physicals_[b].vnode_ids.push_back(
        world.physicals_[a].vnode_ids.front());
    return true;
  }

  /// Points a Sybil vnode's owner field at a waiting (dead) node while
  /// the creator still lists it.  Target check: sybil-ownership.
  /// Creates the Sybil through the public API first, so the world is
  /// valid up to the final owner overwrite.
  static bool dangle_sybil_owner(World& world, support::Rng& rng) {
    if (world.alive_.empty() || world.waiting_.empty()) return false;
    const NodeIndex creator = world.alive_[0];
    std::optional<std::uint64_t> acquired;
    Uint160 sybil_id;
    while (!acquired) {
      sybil_id = hashing::Sha1::hash_u64(rng());
      acquired = world.create_sybil(creator, sybil_id);
    }
    FlatRing& ring = world.ring_;
    const Slot slot = ring.slot_at(ring.find(sybil_id));
    const NodeIndex dead = world.waiting_.front();
    world.physicals_[creator].workload -= ring.tasks(slot).size();
    world.physicals_[dead].workload += ring.tasks(slot).size();
    ring.set_owner(slot, dead);
    return true;
  }

  /// Inflates the remaining-task counter past what the ring stores.
  /// Target check: conservation.
  static void inflate_remaining(World& world) { ++world.remaining_; }

  /// Skews one alive node's cached workload away from its stores.
  /// Target check: workload-cache.
  static bool corrupt_workload_cache(World& world) {
    if (world.alive_.empty()) return false;
    world.physicals_[world.alive_[0]].workload += 3;
    return true;
  }

  /// Lists an alive node in the waiting pool as well.  Target check:
  /// membership.
  static bool break_membership(World& world) {
    if (world.alive_.empty()) return false;
    world.waiting_.push_back(world.alive_[0]);
    return true;
  }

  /// Desynchronizes the flat ring's slot arena from its sorted index
  /// (see FlatRingCorruptor).  Target check: index-integrity.
  static bool desync_ring_index(World& world);
};

/// Backdoor into FlatRing's private halves (friend of FlatRing), for
/// corruptions invisible to every public observer: the index keeps
/// answering queries by its own ids, so only the index-integrity
/// cross-reference audit can notice the arena disagrees.
struct FlatRingCorruptor {
  static bool desync_arena_id(FlatRing& ring) {
    if (ring.empty()) return false;
    const Slot slot = ring.slot_at(ring.first());
    ring.ids_[slot] += Uint160{1};
    return true;
  }
};

inline bool WorldCorruptor::desync_ring_index(World& world) {
  return FlatRingCorruptor::desync_arena_id(world.ring_);
}

}  // namespace dhtlb::sim::testing
