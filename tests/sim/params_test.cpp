#include "sim/params.hpp"

#include <gtest/gtest.h>

namespace dhtlb::sim {
namespace {

TEST(Params, DefaultsMatchPaper) {
  const Params p;
  EXPECT_EQ(p.initial_nodes, 1000u);
  EXPECT_EQ(p.total_tasks, 100'000u);
  EXPECT_FALSE(p.heterogeneous);
  EXPECT_EQ(p.work_measure, WorkMeasure::kOneTaskPerTick);
  EXPECT_DOUBLE_EQ(p.churn_rate, 0.0);
  EXPECT_EQ(p.max_sybils, 5u);
  EXPECT_EQ(p.sybil_threshold, 0u);
  EXPECT_EQ(p.num_successors, 5u);
  EXPECT_EQ(p.decision_period, 5u);
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, ValidateRejectsZeroNodes) {
  Params p;
  p.initial_nodes = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, ValidateRejectsZeroTasks) {
  Params p;
  p.total_tasks = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, ValidateRejectsBadChurn) {
  Params p;
  p.churn_rate = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.churn_rate = 1.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.churn_rate = 1.0;
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, ValidateRejectsZeroKnobs) {
  Params p;
  p.max_sybils = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.num_successors = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.decision_period = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, EffectiveMaxTicksHonoursExplicitCap) {
  Params p;
  p.max_ticks = 77;
  EXPECT_EQ(p.effective_max_ticks(100), 77u);
}

TEST(Params, AutomaticCapScalesWithIdeal) {
  Params p;
  EXPECT_EQ(p.effective_max_ticks(100), 20'000u);
  EXPECT_EQ(p.effective_max_ticks(1), 10'000u) << "floor for tiny runs";
}

TEST(Params, DescribeMentionsKeyFields) {
  Params p;
  p.heterogeneous = true;
  p.churn_rate = 0.01;
  const std::string d = p.describe();
  EXPECT_NE(d.find("1000 nodes"), std::string::npos);
  EXPECT_NE(d.find("100000 tasks"), std::string::npos);
  EXPECT_NE(d.find("heterogeneous"), std::string::npos);
  EXPECT_NE(d.find("churn=0.01"), std::string::npos);
}

}  // namespace
}  // namespace dhtlb::sim
