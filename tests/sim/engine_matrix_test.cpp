// Parameterized configuration-matrix sweep: every strategy (paper +
// extensions) must complete, conserve tasks and keep world invariants
// on every combination of heterogeneity, work measurement, threshold,
// successor-list length, churn and Sybil cap the paper's §V-B variable
// grid spans.  This is the suite that catches interaction bugs between
// strategies and exotic configurations.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "lb/factory.hpp"
#include "sim/engine.hpp"

namespace dhtlb::sim {
namespace {

struct MatrixCase {
  std::string strategy;
  bool heterogeneous;
  WorkMeasure measure;
  std::uint64_t threshold;
  std::size_t successors;
  double churn;
  unsigned max_sybils;
};

std::string case_name(const ::testing::TestParamInfo<MatrixCase>& info) {
  const MatrixCase& c = info.param;
  std::string name = c.strategy;
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  name += c.heterogeneous ? "_het" : "_hom";
  name += c.measure == WorkMeasure::kStrengthPerTick ? "_strength" : "_one";
  name += "_t" + std::to_string(c.threshold);
  name += "_s" + std::to_string(c.successors);
  name += c.churn > 0 ? "_churn" : "_nochurn";
  name += "_m" + std::to_string(c.max_sybils);
  return name;
}

class EngineMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(EngineMatrix, CompletesConservesAndStaysConsistent) {
  const MatrixCase& c = GetParam();
  Params p;
  p.initial_nodes = 80;
  p.total_tasks = 4000;
  p.heterogeneous = c.heterogeneous;
  p.work_measure = c.measure;
  p.sybil_threshold = c.threshold;
  p.num_successors = c.successors;
  p.churn_rate = c.churn;
  p.max_sybils = c.max_sybils;

  Engine engine(p, 0xD157'0000 + c.successors,
                lb::make_strategy(c.strategy));
  const RunResult r = engine.run();

  EXPECT_TRUE(r.completed) << "run must drain all tasks";
  EXPECT_EQ(engine.world().remaining_tasks(), 0u);
  EXPECT_TRUE(engine.world().check_invariants());
  EXPECT_GE(r.ticks, engine.ideal_ticks() / 4)
      << "no run can beat the capacity bound by 4x";
  EXPECT_LT(r.runtime_factor, 60.0) << "sanity ceiling";
  // Sybil caps must hold at the end of any run.
  for (const NodeIndex idx : engine.world().alive_indices()) {
    EXPECT_LE(engine.world().sybil_count(idx),
              engine.world().sybil_cap(idx));
  }
}

std::vector<MatrixCase> matrix() {
  std::vector<MatrixCase> cases;
  const char* strategies[] = {"none",
                              "churn",
                              "random-injection",
                              "neighbor-injection",
                              "smart-neighbor-injection",
                              "invitation",
                              "strength-aware",
                              "chosen-id-neighbor",
                              "chosen-id-global"};
  for (const char* strategy : strategies) {
    const double churn =
        std::string_view(strategy) == "churn" ? 0.02 : 0.0;
    // Axis sweeps around the paper defaults, one axis at a time (a full
    // cross product would be thousands of slow runs for little extra
    // signal; interactions specific to heterogeneity x measure are
    // covered explicitly below).
    cases.push_back({strategy, false, WorkMeasure::kOneTaskPerTick, 0, 5,
                     churn, 5});
    cases.push_back({strategy, true, WorkMeasure::kOneTaskPerTick, 0, 5,
                     churn, 5});
    cases.push_back({strategy, true, WorkMeasure::kStrengthPerTick, 0, 5,
                     churn, 5});
    cases.push_back({strategy, false, WorkMeasure::kOneTaskPerTick, 10, 5,
                     churn, 5});
    cases.push_back({strategy, false, WorkMeasure::kOneTaskPerTick, 0, 10,
                     churn, 5});
    cases.push_back({strategy, true, WorkMeasure::kStrengthPerTick, 0, 5,
                     churn, 10});
  }
  // Churn layered under every Sybil strategy (the §VI-B.1 ablation).
  for (const char* strategy :
       {"random-injection", "neighbor-injection", "invitation"}) {
    cases.push_back({strategy, false, WorkMeasure::kOneTaskPerTick, 0, 5,
                     0.02, 5});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigurations, EngineMatrix,
                         ::testing::ValuesIn(matrix()), case_name);

}  // namespace
}  // namespace dhtlb::sim
