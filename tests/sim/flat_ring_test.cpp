// FlatRing unit coverage: the sorted-index + slot-arena container that
// replaced the std::map ring.  Exercises both write paths (bulk load and
// staged churn), tombstoned erases, amortized merge passes, cursor walks
// with wrap-around, cover semantics, and the deep index_consistent()
// check the invariant auditor relies on.
#include "sim/flat_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/world_corruptor.hpp"
#include "support/rng.hpp"
#include "support/uint160.hpp"

namespace dhtlb::sim {
namespace {

using support::Uint160;

Uint160 id(std::uint64_t v) { return Uint160{v}; }

/// Ring pre-loaded through the bulk path with the given low-64 ids.
FlatRing make_ring(const std::vector<std::uint64_t>& ids) {
  FlatRing ring;
  ring.reserve(ids.size());
  for (const std::uint64_t v : ids) {
    ring.bulk_append(id(v), static_cast<NodeIndex>(v % 7), false);
  }
  ring.finalize_bulk();
  return ring;
}

/// All live ids in iteration order, via for_each.
std::vector<Uint160> collect(const FlatRing& ring) {
  std::vector<Uint160> out;
  ring.for_each([&](const Uint160& vid, Slot) { out.push_back(vid); });
  return out;
}

TEST(FlatRingTest, EmptyRingHasNoMembers) {
  FlatRing ring;
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.contains(id(1)));
  EXPECT_TRUE(ring.index_consistent());
}

TEST(FlatRingTest, BulkLoadSortsOnceAndAnswersQueries) {
  // Deliberately unsorted append order.
  FlatRing ring = make_ring({50, 10, 40, 20, 30});
  EXPECT_EQ(ring.size(), 5u);
  const std::vector<Uint160> expected = {id(10), id(20), id(30), id(40),
                                         id(50)};
  EXPECT_EQ(collect(ring), expected);
  EXPECT_TRUE(ring.contains(id(30)));
  EXPECT_FALSE(ring.contains(id(31)));
  EXPECT_TRUE(ring.index_consistent());
}

TEST(FlatRingTest, SlotAccessorsRoundTripPayload) {
  FlatRing ring;
  const Slot a = ring.insert(id(5), /*owner=*/3, /*is_sybil=*/false);
  const Slot b = ring.insert(id(9), /*owner=*/4, /*is_sybil=*/true);
  EXPECT_EQ(ring.id_of(a), id(5));
  EXPECT_EQ(ring.owner(a), 3u);
  EXPECT_FALSE(ring.is_sybil(a));
  EXPECT_TRUE(ring.is_sybil(b));
  ring.set_owner(b, 6);
  EXPECT_EQ(ring.owner(b), 6u);
  ring.tasks(a).add(id(1000));
  EXPECT_EQ(ring.tasks(a).size(), 1u);
}

TEST(FlatRingTest, SlotsStayValidAcrossUnrelatedMutations) {
  // The replacement for the old "map value pointers never move"
  // contract: a cached Slot must survive inserts, erases, and the merge
  // passes they trigger.
  FlatRing ring = make_ring({100});
  const Slot cached = ring.slot_at(ring.find(id(100)));
  ring.tasks(cached).add(id(7777));
  for (std::uint64_t v = 0; v < 64; ++v) {
    ring.insert(id(v), 0, false);
  }
  for (std::uint64_t v = 0; v < 64; v += 2) {
    ring.erase(id(v));
  }
  EXPECT_GT(ring.merge_passes(), 0u);  // churn above forced folds
  EXPECT_EQ(ring.id_of(cached), id(100));
  EXPECT_EQ(ring.tasks(cached).size(), 1u);
  EXPECT_TRUE(ring.index_consistent());
}

TEST(FlatRingTest, InsertLandsInStagingUntilMergeThreshold) {
  // Large enough index that a handful of staged inserts stays under the
  // ~sqrt(live) merge threshold.
  std::vector<std::uint64_t> ids(400);
  for (std::uint64_t v = 0; v < 400; ++v) ids[v] = 10 * v;
  FlatRing ring = make_ring(ids);
  const std::uint64_t passes_before = ring.merge_passes();
  ring.insert(id(5), 0, false);
  ring.insert(id(15), 0, false);
  EXPECT_EQ(ring.staged_count(), 2u);
  EXPECT_EQ(ring.merge_passes(), passes_before);
  // Staged entries are fully visible to queries before any merge.
  EXPECT_TRUE(ring.contains(id(5)));
  EXPECT_EQ(ring.id_at(ring.next(ring.first())), id(5));
  EXPECT_TRUE(ring.index_consistent());
}

TEST(FlatRingTest, EraseTombstonesInPlaceAndDropsMembership) {
  std::vector<std::uint64_t> ids(400);
  for (std::uint64_t v = 0; v < 400; ++v) ids[v] = 10 * v;
  FlatRing ring = make_ring(ids);
  ring.erase(id(100));
  EXPECT_EQ(ring.size(), 399u);
  EXPECT_FALSE(ring.contains(id(100)));
  EXPECT_EQ(ring.tombstone_count(), 1u);
  // The tombstone is invisible to walks: 90's successor is now 110.
  EXPECT_EQ(ring.id_at(ring.next(ring.find(id(90)))), id(110));
  EXPECT_TRUE(ring.index_consistent());
}

TEST(FlatRingTest, SustainedChurnTriggersMergePassesAndRecyclesSlots) {
  FlatRing ring = make_ring({1, 2, 3});
  support::Rng rng(99);
  std::set<std::uint64_t> alive = {1, 2, 3};
  std::uint64_t fresh = 4;
  // Insert-biased (2:1) so the ring grows and staging repeatedly
  // crosses the ~sqrt(live) merge threshold; a balanced walk would
  // hover below it and never fold.
  for (int round = 0; round < 500; ++round) {
    if (rng.below(3) == 0 && alive.size() > 1) {
      auto it = alive.begin();
      std::advance(it, static_cast<long>(rng.below(alive.size())));
      ring.erase(id(*it));
      alive.erase(it);
    } else {
      ring.insert(id(fresh), 0, false);
      alive.insert(fresh++);
    }
  }
  EXPECT_GT(ring.merge_passes(), 0u);
  EXPECT_EQ(ring.size(), alive.size());
  std::vector<Uint160> expected;
  for (const std::uint64_t v : alive) expected.push_back(id(v));
  EXPECT_EQ(collect(ring), expected);
  EXPECT_TRUE(ring.index_consistent());
}

TEST(FlatRingTest, CursorWalksWrapBothDirections) {
  FlatRing ring = make_ring({10, 20, 30});
  ring.insert(id(25), 0, false);  // one staged entry in the middle
  const std::vector<Uint160> order = {id(10), id(20), id(25), id(30)};

  FlatRing::Cursor c = ring.first();
  for (std::size_t lap = 0; lap < 2 * order.size(); ++lap) {
    EXPECT_EQ(ring.id_at(c), order[lap % order.size()]) << "lap " << lap;
    c = ring.next(c);
  }
  c = ring.first();
  for (std::size_t back = 2 * order.size(); back-- > 0;) {
    c = ring.prev(c);
    EXPECT_EQ(ring.id_at(c), order[back % order.size()]) << "back " << back;
  }
}

TEST(FlatRingTest, CoverReturnsFirstClockwiseOwnerWithWrap) {
  FlatRing ring = make_ring({10, 20, 30});
  EXPECT_EQ(ring.id_at(ring.cover(id(10))), id(10));  // exact hit
  EXPECT_EQ(ring.id_at(ring.cover(id(11))), id(20));  // next clockwise
  EXPECT_EQ(ring.id_at(ring.cover(id(0))), id(10));
  EXPECT_EQ(ring.id_at(ring.cover(id(31))), id(10));  // wraps past top
  EXPECT_EQ(ring.id_at(ring.cover(Uint160::max())), id(10));
}

TEST(FlatRingTest, CoverSeesStagedAndSkipsTombstoned) {
  FlatRing ring = make_ring({10, 30});
  ring.insert(id(20), 0, false);
  EXPECT_EQ(ring.id_at(ring.cover(id(15))), id(20));  // staged wins
  ring.erase(id(30));
  EXPECT_EQ(ring.id_at(ring.cover(id(25))), id(10));  // tombstone skipped
  EXPECT_TRUE(ring.index_consistent());
}

TEST(FlatRingTest, IndexConsistentPinsArenaDesync) {
  FlatRing ring = make_ring({10, 20, 30});
  ASSERT_TRUE(ring.index_consistent());
  ASSERT_TRUE(sim::testing::FlatRingCorruptor::desync_arena_id(ring));
  EXPECT_FALSE(ring.index_consistent());
}

TEST(FlatRingTest, InterpolatedSearchMatchesPlainSearchAtScale) {
  // main_lower_bound switches to interpolation-guided probing above 64
  // entries; find/cover answers must stay identical to the brute-force
  // ordering for ids anywhere in the 160-bit space, including the skewed
  // high bits interpolation estimates from.
  support::Rng rng(4242);
  std::vector<Uint160> ids;
  FlatRing ring;
  ring.reserve(3000);
  for (int i = 0; i < 3000; ++i) {
    const Uint160 vid = rng.uniform_u160();
    ids.push_back(vid);
    ring.bulk_append(vid, 0, false);
  }
  ring.finalize_bulk();
  std::sort(ids.begin(), ids.end());
  for (int probe = 0; probe < 2000; ++probe) {
    const Uint160 point = rng.uniform_u160();
    auto it = std::lower_bound(ids.begin(), ids.end(), point);
    const Uint160 expected = it == ids.end() ? ids.front() : *it;
    EXPECT_EQ(ring.id_at(ring.cover(point)), expected);
  }
  for (int probe = 0; probe < 500; ++probe) {
    const Uint160& member = ids[rng.below(ids.size())];
    EXPECT_EQ(ring.id_at(ring.find(member)), member);
  }
}

}  // namespace
}  // namespace dhtlb::sim
