// Differential test: FlatRing against the std::map<Uint160, payload>
// representation it replaced.  Both sides consume identical randomized
// join/leave/lookup sequences; after every mutation the flat ring must
// give the same successor, predecessor, cover, and owner answers as the
// map, and its deep index_consistent() check must hold.  This pins the
// staged-insert / tombstone / merge machinery to the simple ordered-map
// semantics the rest of the simulator was written against.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/flat_ring.hpp"
#include "support/rng.hpp"
#include "support/uint160.hpp"

namespace dhtlb::sim {
namespace {

using support::Uint160;

struct RefPayload {
  NodeIndex owner = 0;
  bool is_sybil = false;
};

/// The pre-flat-ring representation, kept verbatim as the oracle.
class MapReference {
 public:
  void insert(const Uint160& id, NodeIndex owner, bool is_sybil) {
    vnodes_[id] = RefPayload{owner, is_sybil};
  }
  void erase(const Uint160& id) { vnodes_.erase(id); }
  bool contains(const Uint160& id) const { return vnodes_.count(id) != 0; }
  std::size_t size() const { return vnodes_.size(); }

  /// First vnode clockwise at or after `point`, wrapping past zero.
  Uint160 cover(const Uint160& point) const {
    auto it = vnodes_.lower_bound(point);
    if (it == vnodes_.end()) it = vnodes_.begin();
    return it->first;
  }

  Uint160 successor(const Uint160& id) const {
    auto it = std::next(vnodes_.find(id));
    if (it == vnodes_.end()) it = vnodes_.begin();
    return it->first;
  }

  Uint160 predecessor(const Uint160& id) const {
    auto it = vnodes_.find(id);
    if (it == vnodes_.begin()) it = vnodes_.end();
    return std::prev(it)->first;
  }

  const RefPayload& payload(const Uint160& id) const {
    return vnodes_.at(id);
  }

  const std::map<Uint160, RefPayload>& all() const { return vnodes_; }

 private:
  std::map<Uint160, RefPayload> vnodes_;
};

class FlatRingDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlatRingDifferentialTest, RandomChurnSequenceMatchesMapReference) {
  const std::uint64_t seed = GetParam();
  support::Rng rng(seed);

  FlatRing ring;
  MapReference ref;

  // Seed both sides through the bulk path, like world construction.
  constexpr std::size_t kInitial = 200;
  ring.reserve(kInitial);
  for (std::size_t i = 0; i < kInitial; ++i) {
    const Uint160 id = rng.uniform_u160();
    if (ref.contains(id)) continue;  // (astronomically unlikely)
    const auto owner = static_cast<NodeIndex>(rng.below(32));
    ring.bulk_append(id, owner, false);
    ref.insert(id, owner, false);
  }
  ring.finalize_bulk();

  std::vector<Uint160> members;
  for (const auto& [id, payload] : ref.all()) members.push_back(id);

  auto check_agreement = [&](int step) {
    ASSERT_EQ(ring.size(), ref.size()) << "step " << step;
    ASSERT_TRUE(ring.index_consistent()) << "step " << step;
    // Neighbor and payload agreement from a few random members.
    for (int probe = 0; probe < 8; ++probe) {
      const Uint160& id = members[rng.below(members.size())];
      const FlatRing::Cursor c = ring.find(id);
      ASSERT_EQ(ring.id_at(c), id) << "step " << step;
      ASSERT_EQ(ring.id_at(ring.next(c)), ref.successor(id))
          << "step " << step;
      ASSERT_EQ(ring.id_at(ring.prev(c)), ref.predecessor(id))
          << "step " << step;
      const Slot slot = ring.slot_at(c);
      ASSERT_EQ(ring.owner(slot), ref.payload(id).owner) << "step " << step;
      ASSERT_EQ(ring.is_sybil(slot), ref.payload(id).is_sybil)
          << "step " << step;
    }
    // Point-lookup agreement at arbitrary keys (the task-routing path).
    for (int probe = 0; probe < 8; ++probe) {
      const Uint160 point = rng.uniform_u160();
      ASSERT_EQ(ring.id_at(ring.cover(point)), ref.cover(point))
          << "step " << step;
    }
  };

  check_agreement(-1);
  for (int step = 0; step < 400; ++step) {
    switch (rng.below(3)) {
      case 0: {  // join at a fresh id
        const Uint160 id = rng.uniform_u160();
        if (ref.contains(id)) break;
        const auto owner = static_cast<NodeIndex>(rng.below(32));
        const bool sybil = rng.below(4) == 0;
        ring.insert(id, owner, sybil);
        ref.insert(id, owner, sybil);
        members.push_back(id);
        break;
      }
      case 1: {  // leave
        if (members.size() <= 2) break;
        const std::size_t victim = rng.below(members.size());
        ring.erase(members[victim]);
        ref.erase(members[victim]);
        members[victim] = members.back();
        members.pop_back();
        break;
      }
      case 2: {  // ownership transfer (e.g. sybil handoff)
        const Uint160& id = members[rng.below(members.size())];
        const auto owner = static_cast<NodeIndex>(rng.below(32));
        ring.set_owner(ring.slot_at(ring.find(id)), owner);
        ref.insert(id, owner, ref.payload(id).is_sybil);
        break;
      }
    }
    check_agreement(step);
  }

  // Final full-order sweep: for_each must iterate the exact map order.
  std::vector<Uint160> flat_order;
  ring.for_each(
      [&](const Uint160& id, Slot) { flat_order.push_back(id); });
  std::vector<Uint160> map_order;
  for (const auto& [id, payload] : ref.all()) map_order.push_back(id);
  EXPECT_EQ(flat_order, map_order);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatRingDifferentialTest,
                         ::testing::Values(1, 2, 3, 7, 42, 1337, 9001));

}  // namespace
}  // namespace dhtlb::sim
