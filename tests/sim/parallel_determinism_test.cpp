// Randomized differential test for the parallel tick engine: the same
// (seed, scenario) must produce bit-identical results at every thread
// count.  This is the unit-shard counterpart of CI's threads-matrix
// golden check — it compares full RunResult structs (snapshots, tick
// series, event and strategy counters) rather than rendered output, and
// it runs with the invariant auditor forced ON so a divergent
// intermediate state trips even when the final numbers happen to agree.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "sim/params.hpp"

namespace dhtlb::sim {
namespace {

Params churny(std::size_t nodes, std::uint64_t tasks) {
  Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  p.churn_rate = 0.05;  // heavy churn: every tick departs + joins nodes
  p.max_ticks = 400;
  return p;
}

RunResult run_at(const Params& p, std::uint64_t seed, std::size_t threads,
                 const char* strategy) {
  Engine engine(p, seed,
                strategy ? lb::make_strategy(strategy) : nullptr);
  engine.set_audit(true);  // audit the post-barrier world every tick
  engine.set_threads(threads);
  engine.record_tick_series(true);
  engine.request_snapshots({0, 10, 50, 100});
  return engine.run();
}

void expect_identical(const RunResult& a, const RunResult& b,
                      std::uint64_t seed, std::size_t threads) {
  SCOPED_TRACE(::testing::Message()
               << "seed " << seed << ", 1 vs " << threads << " threads");
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.ideal_ticks, b.ideal_ticks);
  EXPECT_EQ(a.runtime_factor, b.runtime_factor);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.avg_work_per_tick, b.avg_work_per_tick);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.strategy_counters.sybils_created,
            b.strategy_counters.sybils_created);
  EXPECT_EQ(a.strategy_counters.sybils_retired,
            b.strategy_counters.sybils_retired);
  EXPECT_EQ(a.strategy_counters.tasks_acquired_by_sybils,
            b.strategy_counters.tasks_acquired_by_sybils);
  EXPECT_EQ(a.strategy_counters.failed_placements,
            b.strategy_counters.failed_placements);
  EXPECT_EQ(a.strategy_counters.workload_queries,
            b.strategy_counters.workload_queries);
  EXPECT_EQ(a.strategy_counters.invitations_sent,
            b.strategy_counters.invitations_sent);
  EXPECT_EQ(a.strategy_counters.invitations_accepted,
            b.strategy_counters.invitations_accepted);
  EXPECT_EQ(a.strategy_counters.ranges_marked_invalid,
            b.strategy_counters.ranges_marked_invalid);
  EXPECT_EQ(a.strategy_counters.boundary_moves,
            b.strategy_counters.boundary_moves);
  EXPECT_EQ(a.strategy_counters.tasks_moved, b.strategy_counters.tasks_moved);

  // The work-per-tick series is the tick-by-tick trace of consumption:
  // any shard fold applied in the wrong order shows up here first.
  EXPECT_EQ(a.work_per_tick, b.work_per_tick);

  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
    const Snapshot& sa = a.snapshots[i];
    const Snapshot& sb = b.snapshots[i];
    EXPECT_EQ(sa.tick, sb.tick);
    EXPECT_EQ(sa.remaining_tasks, sb.remaining_tasks);
    EXPECT_EQ(sa.vnode_count, sb.vnode_count);
    EXPECT_EQ(sa.alive_count, sb.alive_count);
    // Bit-identical per-node workloads in identical (alive) order.
    EXPECT_EQ(sa.workloads, sb.workloads) << "snapshot at tick " << sa.tick;
  }
}

// Seven random seeds, each run at 1, 3 and 7 threads — deliberately odd
// counts that do not divide the 16 ring shards, so shard->worker
// assignment varies maximally between runs.
TEST(ParallelDeterminism, ChurnOnlyBitIdenticalAcrossThreadCounts) {
  const Params p = churny(400, 8'000);
  for (const std::uint64_t seed : {11u, 23u, 47u, 101u, 577u, 7919u, 104729u}) {
    const RunResult base = run_at(p, seed, 1, nullptr);
    ASSERT_GT(base.joins + base.leaves, 0u) << "scenario must churn";
    for (const std::size_t threads : {std::size_t{3}, std::size_t{7}}) {
      expect_identical(base, run_at(p, seed, threads, nullptr), seed,
                       threads);
    }
  }
}

// Same differential, with a Sybil strategy active: strategy decisions
// must observe the post-barrier world identically at every thread
// count, and their injections feed back into later ticks.
TEST(ParallelDeterminism, SybilStrategyBitIdenticalAcrossThreadCounts) {
  const Params p = churny(300, 6'000);
  for (const std::uint64_t seed : {5u, 31u, 8191u}) {
    const RunResult base = run_at(p, seed, 1, "smart-neighbor-injection");
    for (const std::size_t threads : {std::size_t{3}, std::size_t{7}}) {
      expect_identical(base, run_at(p, seed, threads,
                                    "smart-neighbor-injection"),
                       seed, threads);
    }
  }
}

}  // namespace
}  // namespace dhtlb::sim
