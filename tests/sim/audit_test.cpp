// InvariantAuditor coverage: a clean world passes every check, each
// deliberately seeded corruption is pinned by the check it targets, and
// full audited engine runs of the paper's strategies stay clean.
#include "sim/audit.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "sim/world.hpp"
#include "sim/world_corruptor.hpp"
#include "support/rng.hpp"

namespace dhtlb::sim {
namespace {

using testing::WorldCorruptor;

Params small_params() {
  Params p;
  p.initial_nodes = 40;
  p.total_tasks = 2'000;
  return p;
}

std::set<std::string> failing_checks(const World& world) {
  const AuditReport report = InvariantAuditor(world).run();
  std::set<std::string> names;
  for (const AuditFailure& failure : report.failures) {
    names.insert(failure.check);
  }
  return names;
}

TEST(InvariantAuditorTest, CleanWorldPassesEveryCheck) {
  support::Rng rng(7);
  World world(small_params(), rng);
  const AuditReport report = InvariantAuditor(world).run();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_TRUE(world.check_invariants());
}

TEST(InvariantAuditorTest, CleanWorldStaysCleanThroughMutation) {
  support::Rng rng(11);
  Params params = small_params();
  params.churn_rate = 0.05;
  World world(params, rng);
  for (int round = 0; round < 20; ++round) {
    world.join_from_pool();
    if (world.alive_count() > 1) world.depart(world.alive_indices().front());
    for (const NodeIndex idx : world.alive_indices()) {
      world.consume(idx, 1);
    }
  }
  const AuditReport report = InvariantAuditor(world).run();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(InvariantAuditorTest, DetectsOrphanedKey) {
  support::Rng rng(13);
  World world(small_params(), rng);
  ASSERT_TRUE(WorldCorruptor::orphan_key(world));
  EXPECT_FALSE(world.check_invariants());
  EXPECT_TRUE(failing_checks(world).contains("key-partition"));
}

TEST(InvariantAuditorTest, DetectsDuplicatedArc) {
  support::Rng rng(17);
  World world(small_params(), rng);
  ASSERT_TRUE(WorldCorruptor::duplicate_arc(world));
  EXPECT_FALSE(world.check_invariants());
  EXPECT_TRUE(failing_checks(world).contains("sybil-ownership"));
}

TEST(InvariantAuditorTest, DetectsDanglingSybilOwner) {
  support::Rng rng(19);
  World world(small_params(), rng);
  ASSERT_TRUE(WorldCorruptor::dangle_sybil_owner(world, rng));
  EXPECT_FALSE(world.check_invariants());
  EXPECT_TRUE(failing_checks(world).contains("sybil-ownership"));
}

TEST(InvariantAuditorTest, DetectsBrokenTaskConservation) {
  support::Rng rng(23);
  World world(small_params(), rng);
  WorldCorruptor::inflate_remaining(world);
  EXPECT_FALSE(world.check_invariants());
  EXPECT_TRUE(failing_checks(world).contains("conservation"));
}

TEST(InvariantAuditorTest, DetectsStaleWorkloadCache) {
  support::Rng rng(29);
  World world(small_params(), rng);
  ASSERT_TRUE(WorldCorruptor::corrupt_workload_cache(world));
  EXPECT_FALSE(world.check_invariants());
  EXPECT_TRUE(failing_checks(world).contains("workload-cache"));
}

TEST(InvariantAuditorTest, DetectsMembershipCorruption) {
  support::Rng rng(31);
  World world(small_params(), rng);
  ASSERT_TRUE(WorldCorruptor::break_membership(world));
  EXPECT_FALSE(world.check_invariants());
  EXPECT_TRUE(failing_checks(world).contains("membership"));
}

TEST(InvariantAuditorTest, DetectsDesyncedRingIndex) {
  // The arena id is rewritten behind the index's back; every public
  // observer keeps answering from the index, so only the
  // index-integrity cross-reference can notice.
  support::Rng rng(41);
  World world(small_params(), rng);
  ASSERT_TRUE(WorldCorruptor::desync_ring_index(world));
  EXPECT_FALSE(world.check_invariants());
  EXPECT_TRUE(failing_checks(world).contains("index-integrity"));
}

TEST(InvariantAuditorTest, SybilCapViolationIsDetected) {
  // create_sybil deliberately does not enforce the cap (that is the
  // strategy's job) — the auditor must flag a strategy that overshoots.
  support::Rng rng(37);
  Params params = small_params();
  params.max_sybils = 1;
  World world(params, rng);
  const NodeIndex idx = world.alive_indices().front();
  unsigned placed = 0;
  while (placed < 2) {
    if (world.create_sybil(idx, hashing::Sha1::hash_u64(rng()))) ++placed;
  }
  EXPECT_FALSE(world.check_invariants());
  EXPECT_TRUE(failing_checks(world).contains("sybil-ownership"));
}

// A full audited run of each paper strategy (plus the churn baseline and
// the strength-aware extension) must stay invariant-clean for 200 ticks;
// any violation aborts the engine, failing the test.
class AuditedEngineRunTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(AuditedEngineRunTest, StaysCleanFor200Ticks) {
  Params params;
  params.initial_nodes = 60;
  params.total_tasks = 30'000;
  params.churn_rate = 0.02;
  const std::string name = GetParam();
  if (name == "strength-aware") {
    params.heterogeneous = true;
    params.work_measure = WorkMeasure::kStrengthPerTick;
  }
  Engine engine(params, /*seed=*/0x5EEDBA5E, lb::make_strategy(name));
  engine.set_audit(true);
  ASSERT_TRUE(engine.audit_enabled());
  for (int tick = 0; tick < 200; ++tick) {
    if (!engine.step()) break;
  }
  // The per-tick audit already ran inside step(); double-check the final
  // state through the boolean wrapper too.
  EXPECT_TRUE(engine.world().check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Strategies, AuditedEngineRunTest,
                         ::testing::Values("churn", "random-injection",
                                           "neighbor-injection",
                                           "smart-neighbor-injection",
                                           "invitation", "strength-aware"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(AuditedEngineDeathTest, AbortsWithTickAndSeedOnCorruption) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto corrupted_run = [] {
    Params params;
    params.initial_nodes = 30;
    params.total_tasks = 1'000;
    Engine engine(params, /*seed=*/42);
    engine.set_audit(true);
    engine.step();  // clean tick passes the audit
    WorldCorruptor::inflate_remaining(engine.world());
    engine.step();  // audit must now abort
  };
  EXPECT_DEATH(corrupted_run(),
               "invariant audit failed at tick 2, seed 42");
}

}  // namespace
}  // namespace dhtlb::sim
