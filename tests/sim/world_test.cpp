#include "sim/world.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/ring_math.hpp"
#include "support/rng.hpp"

namespace dhtlb::sim {
namespace {

using support::Rng;
using support::Uint160;

Params small_params(std::size_t nodes = 50, std::uint64_t tasks = 5000) {
  Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  return p;
}

TEST(World, InitialPopulationShape) {
  Rng rng(1);
  const World w(small_params(), rng);
  EXPECT_EQ(w.alive_count(), 50u);
  EXPECT_EQ(w.waiting_count(), 50u) << "waiting pool equals network size";
  EXPECT_EQ(w.vnode_count(), 50u);
  EXPECT_EQ(w.remaining_tasks(), 5000u);
  EXPECT_TRUE(w.check_invariants());
}

TEST(World, AllTasksAssignedToSomeNode) {
  Rng rng(2);
  const World w(small_params(), rng);
  const auto loads = w.alive_workloads();
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}),
            5000u);
}

TEST(World, InitialWorkloadIsSkewed) {
  // The premise of the paper: SHA-1 placement leaves the network
  // unbalanced — median below mean, max several times the mean.
  Rng rng(3);
  const World w(small_params(200, 20'000), rng);
  const auto loads = w.alive_workloads();
  const std::uint64_t max_load = *std::max_element(loads.begin(), loads.end());
  EXPECT_GT(max_load, 200u) << "max well above the mean of 100";
}

TEST(World, HomogeneousStrengthIsOne) {
  Rng rng(4);
  const World w(small_params(), rng);
  for (const NodeIndex idx : w.alive_indices()) {
    EXPECT_EQ(w.physical(idx).strength, 1u);
    EXPECT_EQ(w.work_per_tick(idx), 1u);
    EXPECT_EQ(w.sybil_cap(idx), 5u) << "hom cap = maxSybils";
  }
}

TEST(World, HeterogeneousStrengthInRange) {
  Params p = small_params(300, 1000);
  p.heterogeneous = true;
  p.max_sybils = 5;
  Rng rng(5);
  const World w(p, rng);
  bool saw_low = false, saw_high = false;
  for (const NodeIndex idx : w.alive_indices()) {
    const unsigned s = w.physical(idx).strength;
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 5u);
    EXPECT_EQ(w.sybil_cap(idx), s) << "het cap = strength";
    saw_low |= s == 1;
    saw_high |= s == 5;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(World, WorkMeasureStrengthChangesWorkPerTick) {
  Params p = small_params(100, 1000);
  p.heterogeneous = true;
  p.work_measure = WorkMeasure::kStrengthPerTick;
  Rng rng(6);
  const World w(p, rng);
  for (const NodeIndex idx : w.alive_indices()) {
    EXPECT_EQ(w.work_per_tick(idx), w.physical(idx).strength);
  }
  // initial_capacity = Σ strengths > N for het networks (a.s.).
  EXPECT_GT(w.initial_capacity(), 100u);
}

TEST(World, ConsumeRespectsBudgetAndWorkload) {
  Rng rng(7);
  World w(small_params(10, 1000), rng);
  const NodeIndex idx = w.alive_indices().front();
  const std::uint64_t before = w.workload(idx);
  ASSERT_GT(before, 0u);
  EXPECT_EQ(w.consume(idx, 1), 1u);
  EXPECT_EQ(w.workload(idx), before - 1);
  EXPECT_EQ(w.remaining_tasks(), 999u);
  // Budget larger than workload consumes exactly the workload.
  const std::uint64_t rest = w.workload(idx);
  EXPECT_EQ(w.consume(idx, rest + 100), rest);
  EXPECT_EQ(w.workload(idx), 0u);
  EXPECT_EQ(w.consume(idx, 5), 0u) << "idle node consumes nothing";
  EXPECT_TRUE(w.check_invariants());
}

TEST(World, CreateSybilTransfersExactArcKeys) {
  Rng rng(8);
  World w(small_params(5, 2000), rng);
  const NodeIndex beneficiary = w.alive_indices()[0];
  // Split some victim's arc at its midpoint; the beneficiary must gain
  // exactly what the victim loses.
  const NodeIndex victim = w.alive_indices()[1];
  const Uint160 victim_vnode = w.physical(victim).vnode_ids[0];
  const ArcView arc = w.arc_of(victim_vnode);
  const Uint160 mid = support::arc_midpoint(arc.pred, arc.id);
  const std::uint64_t victim_before = w.workload(victim);
  const std::uint64_t bene_before = w.workload(beneficiary);

  const auto acquired = w.create_sybil(beneficiary, mid);
  ASSERT_TRUE(acquired.has_value());
  EXPECT_EQ(w.workload(victim), victim_before - *acquired);
  EXPECT_EQ(w.workload(beneficiary), bene_before + *acquired);
  EXPECT_EQ(w.sybil_count(beneficiary), 1u);
  EXPECT_EQ(w.vnode_count(), 6u);
  EXPECT_TRUE(w.check_invariants());
}

TEST(World, CreateSybilOnTakenIdFails) {
  Rng rng(9);
  World w(small_params(5, 100), rng);
  const NodeIndex idx = w.alive_indices()[0];
  const Uint160 existing = w.physical(w.alive_indices()[1]).vnode_ids[0];
  EXPECT_FALSE(w.create_sybil(idx, existing).has_value());
  EXPECT_EQ(w.sybil_count(idx), 0u);
}

TEST(World, RemoveSybilsReturnsTasksToRing) {
  Rng rng(10);
  World w(small_params(5, 2000), rng);
  const std::uint64_t total_before = w.remaining_tasks();
  const NodeIndex idx = w.alive_indices()[0];
  // Create two Sybils at arbitrary fresh positions.
  (void)w.create_sybil(idx, Uint160{123456789});
  (void)w.create_sybil(idx, support::Uint160::pow2(100));
  EXPECT_EQ(w.sybil_count(idx), 2u);
  w.remove_sybils(idx);
  EXPECT_EQ(w.sybil_count(idx), 0u);
  EXPECT_EQ(w.remaining_tasks(), total_before) << "no tasks lost";
  EXPECT_EQ(w.vnode_count(), 5u);
  EXPECT_TRUE(w.check_invariants());
}

TEST(World, DepartMovesTasksToSuccessorAndNodeToPool) {
  Rng rng(11);
  World w(small_params(10, 1000), rng);
  const std::uint64_t total = w.remaining_tasks();
  const NodeIndex idx = w.alive_indices()[3];
  EXPECT_TRUE(w.depart(idx));
  EXPECT_FALSE(w.physical(idx).alive);
  EXPECT_EQ(w.alive_count(), 9u);
  EXPECT_EQ(w.waiting_count(), 11u);
  EXPECT_EQ(w.remaining_tasks(), total);
  EXPECT_EQ(w.workload(idx), 0u);
  EXPECT_TRUE(w.check_invariants());
}

TEST(World, LastNodeCannotDepart) {
  Rng rng(12);
  World w(small_params(1, 100), rng);
  EXPECT_FALSE(w.depart(w.alive_indices()[0]));
  EXPECT_EQ(w.alive_count(), 1u);
}

TEST(World, DepartWithSybilsDropsAllVnodes) {
  Rng rng(13);
  World w(small_params(10, 1000), rng);
  const NodeIndex idx = w.alive_indices()[0];
  (void)w.create_sybil(idx, Uint160{42});
  (void)w.create_sybil(idx, Uint160::pow2(90));
  const std::size_t vnodes_before = w.vnode_count();
  EXPECT_TRUE(w.depart(idx));
  EXPECT_EQ(w.vnode_count(), vnodes_before - 3);
  EXPECT_TRUE(w.check_invariants());
}

TEST(World, JoinFromPoolAcquiresArcWork) {
  Rng rng(14);
  World w(small_params(20, 10'000), rng);
  const std::uint64_t total = w.remaining_tasks();
  const auto joined = w.join_from_pool();
  ASSERT_TRUE(joined.has_value());
  EXPECT_TRUE(w.physical(*joined).alive);
  EXPECT_EQ(w.alive_count(), 21u);
  EXPECT_EQ(w.waiting_count(), 19u);
  EXPECT_EQ(w.remaining_tasks(), total);
  EXPECT_TRUE(w.check_invariants());
}

TEST(World, JoinFromEmptyPoolFails) {
  Rng rng(15);
  World w(small_params(3, 100), rng);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(w.join_from_pool().has_value());
  EXPECT_FALSE(w.join_from_pool().has_value());
}

TEST(World, SuccessorsOfWalkClockwise) {
  Rng rng(16);
  World w(small_params(10, 100), rng);
  const Uint160 start = w.physical(w.alive_indices()[0]).vnode_ids[0];
  const auto succs = w.successors_of(start, 4);
  ASSERT_EQ(succs.size(), 4u);
  // Each successor's predecessor chain leads back: succ[i]'s arc starts
  // where the previous vnode ends.
  Uint160 prev = start;
  for (const auto& sid : succs) {
    EXPECT_EQ(w.arc_of(sid).pred, prev);
    prev = sid;
  }
}

TEST(World, SuccessorsStopAtFullLoop) {
  Rng rng(17);
  World w(small_params(3, 10), rng);
  const Uint160 start = w.physical(w.alive_indices()[0]).vnode_ids[0];
  const auto succs = w.successors_of(start, 10);
  EXPECT_EQ(succs.size(), 2u) << "only 2 other vnodes exist";
}

TEST(World, PredecessorsOfWalkCounterClockwise) {
  Rng rng(18);
  World w(small_params(10, 100), rng);
  const Uint160 start = w.physical(w.alive_indices()[0]).vnode_ids[0];
  const auto preds = w.predecessors_of(start, 3);
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_EQ(w.arc_of(start).pred, preds[0]);
  EXPECT_EQ(w.arc_of(preds[0]).pred, preds[1]);
  EXPECT_EQ(w.arc_of(preds[1]).pred, preds[2]);
}

TEST(World, ArcWalksMatchVectorApis) {
  // The allocation-free walks must yield exactly the vnodes the vector
  // APIs return, in the same order, for every start point and length.
  Rng rng(42);
  World w(small_params(12, 300), rng);
  for (const NodeIndex idx : w.alive_indices()) {
    const Uint160 start = w.physical(idx).vnode_ids[0];
    for (const std::size_t k : {0u, 1u, 3u, 50u}) {
      const auto succ_vec = w.successors_of(start, k);
      std::vector<Uint160> succ_walk;
      for (const ArcView& arc : w.successor_arcs(start, k)) {
        succ_walk.push_back(arc.id);
      }
      EXPECT_EQ(succ_walk, succ_vec);

      const auto pred_vec = w.predecessors_of(start, k);
      std::vector<Uint160> pred_walk;
      for (const ArcView& arc : w.predecessor_arcs(start, k)) {
        pred_walk.push_back(arc.id);
      }
      EXPECT_EQ(pred_walk, pred_vec);
    }
  }
}

TEST(World, ArcWalkYieldsFullArcViews) {
  // Each walked element is a complete ArcView, identical to arc_of.
  Rng rng(43);
  World w(small_params(8, 200), rng);
  const Uint160 start = w.physical(w.alive_indices()[0]).vnode_ids[0];
  for (const ArcView& arc : w.successor_arcs(start, 5)) {
    const ArcView direct = w.arc_of(arc.id);
    EXPECT_EQ(arc.pred, direct.pred);
    EXPECT_EQ(arc.owner, direct.owner);
    EXPECT_EQ(arc.is_sybil, direct.is_sybil);
    EXPECT_EQ(arc.task_count, direct.task_count);
  }
}

TEST(World, ArcViewReportsOwnerAndCount) {
  Rng rng(19);
  World w(small_params(5, 500), rng);
  for (const NodeIndex idx : w.alive_indices()) {
    const Uint160 vid = w.physical(idx).vnode_ids[0];
    const ArcView arc = w.arc_of(vid);
    EXPECT_EQ(arc.owner, idx);
    EXPECT_FALSE(arc.is_sybil);
    EXPECT_EQ(arc.task_count, w.workload(idx))
        << "single-vnode owner: arc count == workload";
  }
}

TEST(World, RandomOperationSequencePreservesInvariants) {
  // Fuzz-style property test: any mix of sybil/churn/consume operations
  // keeps caches, ownership arcs and task conservation intact.
  Rng rng(20);
  Params p = small_params(30, 3000);
  World w(p, rng);
  Rng op_rng(21);
  std::uint64_t consumed_total = 0;
  for (int step = 0; step < 400; ++step) {
    const auto alive = w.alive_indices();
    const NodeIndex idx = alive[op_rng.below(alive.size())];
    switch (op_rng.below(5)) {
      case 0:
        if (const auto got = w.create_sybil(idx, op_rng.uniform_u160())) {
          (void)*got;
        }
        break;
      case 1:
        w.remove_sybils(idx);
        break;
      case 2:
        if (w.alive_count() > 1) (void)w.depart(idx);
        break;
      case 3:
        (void)w.join_from_pool();
        break;
      case 4:
        consumed_total += w.consume(idx, 1 + op_rng.below(5));
        break;
    }
    if (step % 50 == 0) {
      ASSERT_TRUE(w.check_invariants()) << "step " << step;
    }
  }
  EXPECT_TRUE(w.check_invariants());
  EXPECT_EQ(w.remaining_tasks() + consumed_total, 3000u)
      << "tasks are conserved: consumed + remaining == total";
}

}  // namespace
}  // namespace dhtlb::sim
