#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "lb/factory.hpp"

namespace dhtlb::sim {
namespace {

Params tiny(std::size_t nodes = 50, std::uint64_t tasks = 5000) {
  Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  return p;
}

TEST(Engine, IdealTicksIsCeilOfTasksOverCapacity) {
  Engine e1(tiny(100, 1000), 1);
  EXPECT_EQ(e1.ideal_ticks(), 10u);
  Engine e2(tiny(100, 1001), 1);
  EXPECT_EQ(e2.ideal_ticks(), 11u) << "partial tick rounds up";
  Engine e3(tiny(100, 99), 1);
  EXPECT_EQ(e3.ideal_ticks(), 1u);
}

TEST(Engine, BaselineRunsToCompletion) {
  Engine engine(tiny(), 7);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(engine.world().remaining_tasks(), 0u);
  EXPECT_EQ(r.strategy_name, "none");
  EXPECT_EQ(r.joins, 0u);
  EXPECT_EQ(r.leaves, 0u);
  EXPECT_EQ(r.strategy_counters.sybils_created, 0u);
}

TEST(Engine, BaselineRuntimeFactorAtLeastOne) {
  // With n fixed nodes consuming 1 task/tick, runtime >= max initial
  // load >= mean load => factor >= 1.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Engine engine(tiny(), seed);
    const RunResult r = engine.run();
    EXPECT_GE(r.runtime_factor, 1.0) << "seed " << seed;
  }
}

TEST(Engine, BaselineRuntimeEqualsMaxInitialLoad) {
  // Without churn or Sybils, every node drains independently at one task
  // per tick, so the run lasts exactly max(initial workload) ticks.
  Engine engine(tiny(), 11);
  const auto loads = engine.world().alive_workloads();
  const std::uint64_t max_load =
      *std::max_element(loads.begin(), loads.end());
  const RunResult r = engine.run();
  EXPECT_EQ(r.ticks, max_load);
}

TEST(Engine, DeterministicAcrossRuns) {
  const Params p = tiny();
  Engine a(p, 12345, lb::make_strategy("random-injection"));
  Engine b(p, 12345, lb::make_strategy("random-injection"));
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.ticks, rb.ticks);
  EXPECT_EQ(ra.strategy_counters.sybils_created,
            rb.strategy_counters.sybils_created);
}

TEST(Engine, DifferentSeedsGiveDifferentRuns) {
  Engine a(tiny(), 1);
  Engine b(tiny(), 2);
  EXPECT_NE(a.run().ticks, b.run().ticks);
}

TEST(Engine, StepAdvancesOneTick) {
  Engine engine(tiny(10, 100), 3);
  EXPECT_EQ(engine.current_tick(), 0u);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(engine.current_tick(), 1u);
}

TEST(Engine, StepReturnsFalseWhenDrained) {
  Engine engine(tiny(10, 20), 4);
  while (engine.step()) {
  }
  EXPECT_EQ(engine.world().remaining_tasks(), 0u);
  const std::uint64_t final_tick = engine.current_tick();
  EXPECT_FALSE(engine.step()) << "no-op after completion";
  EXPECT_EQ(engine.current_tick(), final_tick);
}

TEST(Engine, SnapshotsAtRequestedTicks) {
  Engine engine(tiny(), 5);
  engine.request_snapshots({0, 5, 35});
  const RunResult r = engine.run();
  ASSERT_EQ(r.snapshots.size(), 3u);
  EXPECT_EQ(r.snapshots[0].tick, 0u);
  EXPECT_EQ(r.snapshots[1].tick, 5u);
  EXPECT_EQ(r.snapshots[2].tick, 35u);
  EXPECT_EQ(r.snapshots[0].remaining_tasks, 5000u);
  EXPECT_LT(r.snapshots[1].remaining_tasks, 5000u);
  EXPECT_EQ(r.snapshots[0].workloads.size(), 50u);
}

TEST(Engine, SnapshotZeroMatchesInitialAssignment) {
  Engine engine(tiny(), 6);
  engine.request_snapshots({0});
  const auto direct = engine.world().alive_workloads();
  const RunResult r = engine.run();
  ASSERT_EQ(r.snapshots.size(), 1u);
  EXPECT_EQ(r.snapshots[0].workloads, direct);
}

TEST(Engine, SnapshotTicksPastRuntimeAreSkipped) {
  Engine engine(tiny(10, 20), 7);
  engine.request_snapshots({0, 1'000'000});
  const RunResult r = engine.run();
  EXPECT_EQ(r.snapshots.size(), 1u);
}

TEST(Engine, ChurnConservesTasks) {
  Params p = tiny(100, 10'000);
  p.churn_rate = 0.05;  // aggressive churn
  Engine engine(p, 8);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(engine.world().remaining_tasks(), 0u);
  EXPECT_GT(r.leaves, 0u);
  EXPECT_GT(r.joins, 0u);
  EXPECT_TRUE(engine.world().check_invariants());
}

TEST(Engine, ChurnSpeedsUpTheBaseline) {
  // The paper's central churn claim (Table II): nonzero churn lowers the
  // runtime factor.  Compare means over a few seeds to damp variance.
  double base_sum = 0.0, churn_sum = 0.0;
  constexpr int kTrials = 5;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    Engine base(tiny(100, 50'000), seed);
    base_sum += base.run().runtime_factor;
    Params p = tiny(100, 50'000);
    p.churn_rate = 0.01;
    Engine churned(p, seed);
    churn_sum += churned.run().runtime_factor;
  }
  EXPECT_LT(churn_sum, base_sum);
}

TEST(Engine, WorkPerTickSeriesSumsToTotalTasks) {
  Engine engine(tiny(), 9);
  engine.record_tick_series(true);
  const RunResult r = engine.run();
  EXPECT_EQ(r.work_per_tick.size(), r.ticks);
  const std::uint64_t sum = std::accumulate(
      r.work_per_tick.begin(), r.work_per_tick.end(), std::uint64_t{0});
  EXPECT_EQ(sum, 5000u);
}

TEST(Engine, SeriesOffByDefault) {
  Engine engine(tiny(10, 50), 10);
  EXPECT_TRUE(engine.run().work_per_tick.empty());
}

TEST(Engine, AvgWorkPerTickMatchesDefinition) {
  Engine engine(tiny(), 11);
  const RunResult r = engine.run();
  EXPECT_NEAR(r.avg_work_per_tick,
              5000.0 / static_cast<double>(r.ticks), 1e-9);
}

TEST(Engine, SafetyCapTripsAndReportsIncomplete) {
  Params p = tiny(10, 10'000);
  p.max_ticks = 5;
  Engine engine(p, 12);
  const RunResult r = engine.run();
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.ticks, 5u);
  EXPECT_GT(engine.world().remaining_tasks(), 0u);
}

TEST(Engine, HeterogeneousStrengthRunCompletes) {
  Params p = tiny(100, 10'000);
  p.heterogeneous = true;
  p.work_measure = WorkMeasure::kStrengthPerTick;
  Engine engine(p, 13, lb::make_strategy("random-injection"));
  const RunResult r = engine.run();
  EXPECT_TRUE(r.completed);
  // Ideal accounts for total strength: ticks < tasks/nodes must be
  // possible since capacity > nodes.
  EXPECT_LT(r.ideal_ticks, 100u);
}

TEST(Engine, StrategyDecisionRunsOnPeriod) {
  // With decision_period = 5 and a 35-tick horizon, random injection
  // must have acted by tick 5 but not before.
  Params p = tiny(100, 50'000);  // plenty of work: nobody idles early
  p.sybil_threshold = 1'000'000;  // everyone always under threshold
  Engine engine(p, 14, lb::make_strategy("random-injection"));
  for (int t = 0; t < 4; ++t) {
    engine.step();
    EXPECT_EQ(engine.world().vnode_count(), 100u) << "no Sybils before t=5";
  }
  engine.step();  // tick 5
  EXPECT_GT(engine.world().vnode_count(), 100u) << "Sybils appear at t=5";
}

TEST(Engine, ChurnKeepsNetworkSizeMeanReverting) {
  // §IV-A: the alive population and the waiting pool start equal and
  // exchange members at the same rate, so neither "fluctuates wildly".
  Params p = tiny(100, 100'000);  // long run: plenty of churn epochs
  p.churn_rate = 0.02;
  Engine engine(p, 21);
  std::size_t min_alive = 100, max_alive = 100;
  while (engine.step()) {
    min_alive = std::min(min_alive, engine.world().alive_count());
    max_alive = std::max(max_alive, engine.world().alive_count());
  }
  // Alive count is a symmetric random walk constrained by the pool;
  // excursions beyond +-60% of N would indicate a rate asymmetry bug.
  EXPECT_GT(min_alive, 40u);
  EXPECT_LT(max_alive, 160u);
}

TEST(Engine, ChurnPopulationIsConserved) {
  Params p = tiny(50, 20'000);
  p.churn_rate = 0.05;
  Engine engine(p, 22);
  for (int i = 0; i < 200 && engine.step(); ++i) {
    EXPECT_EQ(engine.world().alive_count() + engine.world().waiting_count(),
              100u)
        << "alive + waiting must always equal the total population";
  }
}

TEST(Engine, NullStrategyNeverCreatesSybils) {
  Engine engine(tiny(), 15, nullptr);
  const RunResult r = engine.run();
  EXPECT_EQ(r.strategy_counters.sybils_created, 0u);
  EXPECT_EQ(engine.world().vnode_count(), 50u);
}

}  // namespace
}  // namespace dhtlb::sim
