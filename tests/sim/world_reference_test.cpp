// Differential test: sim::World against a brute-force reference model.
//
// The reference holds the exact task keys and recomputes ownership and
// workloads from first principles on every check — no incremental
// caches, no split/merge shortcuts.  A long randomized sequence of
// membership operations must keep the two models exactly equal.  This
// is the strongest guard on the split/merge/cache bookkeeping every
// experiment depends on.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "sim/world.hpp"
#include "support/rng.hpp"

namespace dhtlb::sim {
namespace {

using support::Uint160;

/// Brute-force mirror: flat key multiset + vnode->owner map; every
/// query is a full scan.
class ReferenceModel {
 public:
  void add_vnode(const Uint160& id, NodeIndex owner) { vnodes_[id] = owner; }
  void remove_vnode(const Uint160& id) { vnodes_.erase(id); }
  void add_key(const Uint160& key) { keys_.insert(key); }

  Uint160 owner_vnode(const Uint160& key) const {
    auto it = vnodes_.lower_bound(key);
    if (it == vnodes_.end()) it = vnodes_.begin();
    return it->first;
  }

  std::map<NodeIndex, std::uint64_t> owner_loads() const {
    std::map<NodeIndex, std::uint64_t> loads;
    for (const auto& key : keys_) {
      loads[vnodes_.at(owner_vnode(key))] += 1;
    }
    return loads;
  }

  std::multiset<Uint160> vnode_keys(const Uint160& vnode) const {
    std::multiset<Uint160> out;
    for (const auto& key : keys_) {
      if (owner_vnode(key) == vnode) out.insert(key);
    }
    return out;
  }

  std::uint64_t total_keys() const { return keys_.size(); }
  const std::map<Uint160, NodeIndex>& vnodes() const { return vnodes_; }

 private:
  std::map<Uint160, NodeIndex> vnodes_;
  std::multiset<Uint160> keys_;
};

class WorldReferenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldReferenceTest, RandomMembershipSequenceMatchesReference) {
  const std::uint64_t seed = GetParam();
  support::Rng world_rng(seed);
  Params params;
  params.initial_nodes = 12;
  params.total_tasks = 600;
  World world(params, world_rng);

  // Mirror the exact initial state (vnodes + real keys).
  ReferenceModel ref;
  for (const NodeIndex idx : world.alive_indices()) {
    for (const auto& vid : world.physical(idx).vnode_ids) {
      ref.add_vnode(vid, idx);
      for (const auto& key : world.vnode_keys(vid)) ref.add_key(key);
    }
  }
  ASSERT_EQ(ref.total_keys(), world.remaining_tasks());

  auto check_agreement = [&](int step) {
    ASSERT_EQ(ref.vnodes().size(), world.vnode_count()) << "step " << step;
    const auto ref_loads = ref.owner_loads();
    for (const auto& [vid, owner] : ref.vnodes()) {
      ASSERT_TRUE(world.ring_contains(vid)) << "step " << step;
      const ArcView arc = world.arc_of(vid);
      ASSERT_EQ(arc.owner, owner) << "step " << step;
      // Exact key-set agreement per vnode.
      const auto& world_keys = world.vnode_keys(vid);
      const std::multiset<Uint160> world_set(world_keys.begin(),
                                             world_keys.end());
      ASSERT_EQ(world_set, ref.vnode_keys(vid))
          << "vnode " << vid << " at step " << step;
    }
    for (const NodeIndex a : world.alive_indices()) {
      const auto it = ref_loads.find(a);
      const std::uint64_t expected =
          it == ref_loads.end() ? 0 : it->second;
      ASSERT_EQ(world.workload(a), expected)
          << "owner " << a << " at step " << step;
    }
    ASSERT_EQ(ref.total_keys(), world.remaining_tasks());
  };

  support::Rng op_rng(seed + 1);
  for (int step = 0; step < 100; ++step) {
    const auto alive = world.alive_indices();
    const NodeIndex idx = alive[op_rng.below(alive.size())];
    switch (op_rng.below(4)) {
      case 0: {  // sybil at an explicit fresh ID
        const Uint160 id = op_rng.uniform_u160();
        if (world.create_sybil(idx, id)) ref.add_vnode(id, idx);
        break;
      }
      case 1: {  // retire all sybils
        const auto& ids = world.physical(idx).vnode_ids;
        for (std::size_t i = ids.size(); i-- > 1;) {
          ref.remove_vnode(ids[i]);
        }
        world.remove_sybils(idx);
        break;
      }
      case 2: {  // departure (all vnodes go)
        if (world.alive_count() <= 1) break;
        const auto ids = world.physical(idx).vnode_ids;  // copy
        if (world.depart(idx)) {
          for (const auto& vid : ids) ref.remove_vnode(vid);
        }
        break;
      }
      case 3: {  // join from the waiting pool
        const std::size_t before = world.vnode_count();
        const auto joined = world.join_from_pool();
        if (joined && world.vnode_count() == before + 1) {
          ref.add_vnode(world.physical(*joined).vnode_ids.front(),
                        *joined);
        }
        break;
      }
    }
    check_agreement(step);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldReferenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

}  // namespace
}  // namespace dhtlb::sim
