#include "sim/task_store.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/ring_math.hpp"
#include "support/rng.hpp"

namespace dhtlb::sim {
namespace {

using support::Rng;
using support::Uint160;

TEST(TaskStore, StartsEmpty) {
  TaskStore s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(TaskStore, AddAndSize) {
  TaskStore s;
  s.add(Uint160{1});
  s.add(Uint160{2});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.empty());
}

TEST(TaskStore, ConsumeRandomRemovesExactlyOne) {
  TaskStore s;
  std::set<Uint160> keys;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Uint160 k = rng.uniform_u160();
    s.add(k);
    keys.insert(k);
  }
  while (!s.empty()) {
    const Uint160 taken = s.consume_random(rng);
    EXPECT_TRUE(keys.erase(taken) == 1) << "consumed key was present once";
  }
  EXPECT_TRUE(keys.empty());
}

TEST(TaskStore, ConsumeRandomIsRoughlyUniform) {
  // Put 10 known keys in; consume the first key repeatedly over many
  // rebuilds and check each key is picked about equally often.
  Rng rng(2);
  std::map<Uint160, int> picks;
  constexpr int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    TaskStore s;
    for (std::uint64_t k = 0; k < 10; ++k) s.add(Uint160{k});
    ++picks[s.consume_random(rng)];
  }
  for (const auto& [key, count] : picks) {
    EXPECT_NEAR(count, kTrials / 10, 150) << key;
  }
}

TEST(TaskStore, SplitSimpleArc) {
  TaskStore s, out;
  for (std::uint64_t k = 1; k <= 10; ++k) s.add(Uint160{k * 10});
  // Arc (25, 65]: keys 30,40,50,60 move.
  const auto moved = s.split_arc_into(Uint160{25}, Uint160{65}, out);
  EXPECT_EQ(moved, 4u);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(s.size(), 6u);
  for (const auto& k : out.keys()) {
    EXPECT_TRUE(support::in_half_open_arc(k, Uint160{25}, Uint160{65}));
  }
  for (const auto& k : s.keys()) {
    EXPECT_FALSE(support::in_half_open_arc(k, Uint160{25}, Uint160{65}));
  }
}

TEST(TaskStore, SplitIncludesUpperEndpointExcludesLower) {
  TaskStore s, out;
  s.add(Uint160{25});
  s.add(Uint160{65});
  s.split_arc_into(Uint160{25}, Uint160{65}, out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out.keys()[0], Uint160{65});
  EXPECT_EQ(s.keys()[0], Uint160{25});
}

TEST(TaskStore, SplitWrappingArc) {
  TaskStore s, out;
  const Uint160 near_top = Uint160::max() - Uint160{5};
  s.add(near_top);          // inside (max-10, 20]
  s.add(Uint160{10});       // inside
  s.add(Uint160{100});      // outside
  const Uint160 lo = Uint160::max() - Uint160{10};
  const auto moved = s.split_arc_into(lo, Uint160{20}, out);
  EXPECT_EQ(moved, 2u);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.keys()[0], Uint160{100});
}

TEST(TaskStore, SplitEmptyArcMovesNothing) {
  TaskStore s, out;
  s.add(Uint160{500});
  EXPECT_EQ(s.split_arc_into(Uint160{10}, Uint160{20}, out), 0u);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(out.empty());
}

TEST(TaskStore, SplitAppendsToNonEmptyDestination) {
  TaskStore s, out;
  out.add(Uint160{1});
  s.add(Uint160{15});
  s.split_arc_into(Uint160{10}, Uint160{20}, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(TaskStore, MergeMovesEverything) {
  TaskStore a, b;
  a.add(Uint160{1});
  b.add(Uint160{2});
  b.add(Uint160{3});
  EXPECT_EQ(a.merge_from(b), 2u);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(b.empty());
}

TEST(TaskStore, SplitThenMergeConservesKeys) {
  Rng rng(3);
  TaskStore s;
  std::multiset<Uint160> original;
  for (int i = 0; i < 500; ++i) {
    const Uint160 k = rng.uniform_u160();
    s.add(k);
    original.insert(k);
  }
  TaskStore out;
  s.split_arc_into(rng.uniform_u160(), rng.uniform_u160(), out);
  s.merge_from(out);
  std::multiset<Uint160> after(s.keys().begin(), s.keys().end());
  EXPECT_EQ(after, original);
}

TEST(TaskStore, RepeatedSplitsPartitionWithoutLoss) {
  // Property: splitting the same store at several nested boundaries
  // never loses or duplicates a key.
  Rng rng(4);
  TaskStore s;
  constexpr int kKeys = 1000;
  for (int i = 0; i < kKeys; ++i) s.add(rng.uniform_u160());
  std::vector<TaskStore> parts(4);
  // Quarter boundaries.
  const Uint160 q1 = Uint160::pow2(158);
  const Uint160 q2 = Uint160::pow2(159);
  const Uint160 q3 = q1 + q2;
  s.split_arc_into(Uint160::zero(), q1, parts[0]);
  s.split_arc_into(q1, q2, parts[1]);
  s.split_arc_into(q2, q3, parts[2]);
  std::uint64_t total = s.size();
  for (const auto& p : parts) total += p.size();
  EXPECT_EQ(total, static_cast<std::uint64_t>(kKeys));
}

}  // namespace
}  // namespace dhtlb::sim
