// Tests for the future-work extension strategies (§VII): strength-aware
// acquisition and chosen-ID (median-split) Sybil placement.
#include <gtest/gtest.h>

#include <algorithm>

#include "lb/chosen_id.hpp"
#include "lb/factory.hpp"
#include "lb/strength_aware.hpp"
#include "sim/engine.hpp"
#include "support/ring_math.hpp"

namespace dhtlb::lb {
namespace {

using sim::Engine;
using sim::Params;
using sim::World;
using support::Rng;
using support::Uint160;

Params het_params(std::size_t nodes = 200, std::uint64_t tasks = 20'000) {
  Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  p.heterogeneous = true;
  p.work_measure = sim::WorkMeasure::kStrengthPerTick;
  return p;
}

// --- factory wiring --------------------------------------------------------

TEST(ExtensionFactory, NamesConstruct) {
  EXPECT_EQ(make_strategy("strength-aware")->name(), "strength-aware");
  EXPECT_EQ(make_strategy("chosen-id-neighbor")->name(),
            "chosen-id-neighbor");
  EXPECT_EQ(make_strategy("chosen-id-global")->name(), "chosen-id-global");
  for (const auto name : extension_strategy_names()) {
    EXPECT_NO_THROW(make_strategy(name)) << name;
  }
}

TEST(ExtensionFactory, ExtensionsNotInPaperList) {
  const auto paper = strategy_names();
  for (const auto name : extension_strategy_names()) {
    EXPECT_EQ(std::find(paper.begin(), paper.end(), name), paper.end())
        << name << " must not masquerade as a paper strategy";
  }
}

// --- median key query (World support) --------------------------------------

TEST(MedianTaskKey, SplitsKeysExactlyInHalf) {
  Rng rng(1);
  Params p;
  p.initial_nodes = 10;
  p.total_tasks = 5000;
  World w(p, rng);
  for (const auto idx : w.alive_indices()) {
    const Uint160 vid = w.physical(idx).vnode_ids[0];
    const sim::ArcView arc = w.arc_of(vid);
    if (arc.task_count < 2) continue;
    const auto median = w.median_task_key(vid);
    ASSERT_TRUE(median.has_value());
    // A Sybil at the median acquires the lower half: ceil(n/2) keys for
    // the lower-median convention.
    const std::uint64_t before = arc.task_count;
    const auto acquired = w.create_sybil(w.alive_indices()[0], *median);
    if (!acquired) continue;  // median collided with an existing vnode
    EXPECT_EQ(*acquired, (before + 1) / 2)
        << "median split must take exactly the lower half";
    break;  // one verification is enough; the loop guards degenerate arcs
  }
}

TEST(MedianTaskKey, EmptyVnodeHasNoMedian) {
  Rng rng(2);
  Params p;
  p.initial_nodes = 5;
  p.total_tasks = 100;
  World w(p, rng);
  const auto idx = w.alive_indices()[0];
  (void)w.consume(idx, w.workload(idx));
  EXPECT_FALSE(
      w.median_task_key(w.physical(idx).vnode_ids[0]).has_value());
}

TEST(ArcCovering, AgreesWithOwnershipRule) {
  Rng rng(3);
  Params p;
  p.initial_nodes = 50;
  p.total_tasks = 100;
  World w(p, rng);
  Rng probe(4);
  for (int i = 0; i < 100; ++i) {
    const Uint160 point = probe.uniform_u160();
    const sim::ArcView arc = w.arc_covering(point);
    EXPECT_TRUE(support::in_half_open_arc(point, arc.pred, arc.id));
  }
}

// --- chosen-ID strategy -----------------------------------------------------

TEST(ChosenId, DoesNotLoseToMidpointPlacement) {
  // The exact-median split is at least as good as the smart-neighbor
  // midpoint split under the same information model (in the
  // neighborhood model the binding constraint is reach, so the two run
  // nearly equal; the median must simply not lose).
  double midpoint = 0.0, median = 0.0;
  constexpr int kTrials = 4;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    Params p;
    p.initial_nodes = 200;
    p.total_tasks = 20'000;
    midpoint += Engine(p, seed, make_strategy("smart-neighbor-injection"))
                    .run()
                    .runtime_factor;
    median += Engine(p, seed, make_strategy("chosen-id-neighbor"))
                  .run()
                  .runtime_factor;
  }
  EXPECT_LE(median / kTrials, midpoint / kTrials + 0.1);
}

TEST(ChosenId, GlobalReachBeatsNeighborhoodReach) {
  // What actually limits neighborhood strategies is reach, not split
  // precision: the same median split applied to globally sampled
  // victims must be clearly faster.
  double local = 0.0, global = 0.0;
  constexpr int kTrials = 4;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    Params p;
    p.initial_nodes = 200;
    p.total_tasks = 20'000;
    local += Engine(p, seed, make_strategy("chosen-id-neighbor"))
                 .run()
                 .runtime_factor;
    global += Engine(p, seed, make_strategy("chosen-id-global"))
                  .run()
                  .runtime_factor;
  }
  EXPECT_LT(global, local);
}

TEST(ChosenId, GlobalScopeCompletesAndBalances) {
  Params p;
  p.initial_nodes = 200;
  p.total_tasks = 20'000;
  Engine engine(p, 7, make_strategy("chosen-id-global"));
  const auto r = engine.run();
  EXPECT_TRUE(r.completed);
  EXPECT_LT(r.runtime_factor, 3.0);
  EXPECT_GT(r.strategy_counters.workload_queries, 0u);
}

TEST(ChosenId, PaysQueryCosts) {
  Params p;
  p.initial_nodes = 100;
  p.total_tasks = 10'000;
  Engine engine(p, 8, make_strategy("chosen-id-neighbor"));
  const auto r = engine.run();
  // Every decision probes successors AND pays a median query per split.
  EXPECT_GT(r.strategy_counters.workload_queries,
            r.strategy_counters.sybils_created);
}

// --- strength-aware strategy ------------------------------------------------

TEST(StrengthAwareTest, HomogeneousReducesToThresholdBehavior) {
  // With strength 1 everywhere the appetite equals the sybilThreshold,
  // so eligibility matches the paper strategies'.
  Rng rng(9);
  Params p;
  p.initial_nodes = 20;
  p.total_tasks = 2000;
  World w(p, rng);
  StrengthAware strat;
  sim::StrategyCounters c;
  Rng decision_rng(10);
  strat.decide(w, decision_rng, c);
  EXPECT_EQ(c.sybils_created, 0u)
      << "nobody is idle yet, so nobody may acquire";
}

TEST(StrengthAwareTest, StrongIdleNodeTakesProportionalShare) {
  Rng rng(11);
  Params p = het_params(50, 10'000);
  World w(p, rng);
  // Find a strong node (strength >= 4) and drain it.
  std::optional<sim::NodeIndex> strong;
  for (const auto idx : w.alive_indices()) {
    if (w.physical(idx).strength >= 4) {
      strong = idx;
      break;
    }
  }
  ASSERT_TRUE(strong.has_value());
  (void)w.consume(*strong, w.workload(*strong));

  StrengthAware strat;
  sim::StrategyCounters c;
  Rng decision_rng(12);
  strat.decide(w, decision_rng, c);
  EXPECT_GE(c.sybils_created, 1u);
  EXPECT_GT(w.workload(*strong), 0u) << "the strong node acquired work";
}

TEST(StrengthAwareTest, ImprovesHeterogeneousRuntimeOverRandomInjection) {
  // The whole point of the extension (§VII): in heterogeneous networks
  // with strength-based consumption, weighting acquisition by strength
  // should beat strength-blind random injection on average.
  double random_inj = 0.0, aware = 0.0;
  constexpr int kTrials = 5;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    random_inj += Engine(het_params(), seed,
                         make_strategy("random-injection"))
                      .run()
                      .runtime_factor;
    aware += Engine(het_params(), seed, make_strategy("strength-aware"))
                 .run()
                 .runtime_factor;
  }
  EXPECT_LT(aware, random_inj);
}

TEST(StrengthAwareTest, CompletesOnEveryNetworkShape) {
  for (const bool het : {false, true}) {
    for (const auto measure : {sim::WorkMeasure::kOneTaskPerTick,
                               sim::WorkMeasure::kStrengthPerTick}) {
      Params p;
      p.initial_nodes = 100;
      p.total_tasks = 5000;
      p.heterogeneous = het;
      p.work_measure = measure;
      Engine engine(p, 13, make_strategy("strength-aware"));
      const auto r = engine.run();
      EXPECT_TRUE(r.completed) << "het=" << het;
      EXPECT_TRUE(engine.world().check_invariants());
    }
  }
}

}  // namespace
}  // namespace dhtlb::lb
