// Item-balance (neighbor-move) family: factory wiring, the move_vnode /
// nth_task_key world primitives it builds on, the constant-factor
// imbalance band on static networks, audited churn runs, and the
// 7-seed cross-thread determinism differential.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "sim/params.hpp"
#include "sim/world.hpp"
#include "support/ring_math.hpp"
#include "support/rng.hpp"

namespace dhtlb {
namespace {

using sim::ArcView;
using sim::World;
using support::Uint160;

sim::Params small_world(std::size_t nodes, std::uint64_t tasks) {
  sim::Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  return p;
}

TEST(ItemBalance, FactoryWiring) {
  const auto aggressive = lb::make_strategy("item-balance");
  ASSERT_NE(aggressive, nullptr);
  EXPECT_EQ(aggressive->name(), "item-balance");
  const auto conservative = lb::make_strategy("item-balance-conservative");
  ASSERT_NE(conservative, nullptr);
  EXPECT_EQ(conservative->name(), "item-balance-conservative");

  const auto extensions = lb::extension_strategy_names();
  EXPECT_NE(std::find(extensions.begin(), extensions.end(), "item-balance"),
            extensions.end());
  EXPECT_NE(std::find(extensions.begin(), extensions.end(),
                      "item-balance-conservative"),
            extensions.end());
}

TEST(ItemBalance, NthTaskKeyMatchesArcOrder) {
  support::Rng rng(42);
  World world(small_world(16, 2000), rng);
  // Find a vnode holding a healthy number of keys.
  std::optional<ArcView> target;
  world.for_each_arc([&](const ArcView& arc) {
    if (!target && arc.task_count >= 8) target = arc;
  });
  ASSERT_TRUE(target.has_value());

  // Reference order: keys sorted by clockwise distance from the arc
  // start, exactly the order nth_task_key promises to select from.
  std::vector<Uint160> offsets;
  for (const Uint160& key : world.vnode_keys(target->id)) {
    offsets.push_back(support::clockwise_distance(target->pred, key));
  }
  std::sort(offsets.begin(), offsets.end());
  for (std::uint64_t n = 0; n < offsets.size(); ++n) {
    const auto key = world.nth_task_key(target->id, n);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, target->pred + offsets[n]) << "n = " << n;
  }
  EXPECT_FALSE(world.nth_task_key(target->id, offsets.size()).has_value());
  EXPECT_EQ(world.median_task_key(target->id),
            world.nth_task_key(target->id, (offsets.size() - 1) / 2));
}

TEST(ItemBalance, MoveVnodeShedsAndAcquires) {
  support::Rng rng(7);
  World world(small_world(16, 4000), rng);
  std::optional<ArcView> target;
  world.for_each_arc([&](const ArcView& arc) {
    if (!target && arc.task_count >= 6) target = arc;
  });
  ASSERT_TRUE(target.has_value());
  const std::uint64_t before = target->task_count;
  const std::uint64_t total = world.total_tasks();

  // Shed: retreat the boundary so exactly 2 keys stay with the owner;
  // the other before-2 keys fall to the ring successor.
  const auto split = world.nth_task_key(target->id, 1);
  ASSERT_TRUE(split.has_value());
  ASSERT_NE(*split, target->id);
  const auto moved = world.move_vnode(target->id, *split);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(*moved, before - 2);
  EXPECT_EQ(world.arc_of(*split).task_count, 2u);
  EXPECT_EQ(world.arc_of(*split).owner, target->owner);
  EXPECT_FALSE(world.ring_contains(target->id));
  EXPECT_EQ(world.total_tasks(), total);  // moves never create/destroy work
  EXPECT_TRUE(world.check_invariants());
  EXPECT_TRUE(world.vnode_cache_consistent());
  EXPECT_TRUE(world.alive_index_consistent());

  // Acquire: advance the same vnode's boundary into its successor's arc
  // and pull that arc's first key over.
  std::optional<ArcView> succ;
  for (const ArcView& arc : world.successor_arcs(*split, 1)) succ = arc;
  ASSERT_TRUE(succ.has_value());
  if (succ->task_count >= 2 && succ->owner != world.arc_of(*split).owner) {
    const auto ahead = world.nth_task_key(succ->id, 0);
    ASSERT_TRUE(ahead.has_value());
    if (*ahead != succ->id && !world.ring_contains(*ahead)) {
      const auto acquired = world.move_vnode(*split, *ahead);
      ASSERT_TRUE(acquired.has_value());
      EXPECT_EQ(*acquired, 1u);
      EXPECT_EQ(world.arc_of(*ahead).task_count, 3u);
      EXPECT_TRUE(world.check_invariants());
    }
  }
}

TEST(ItemBalance, MoveVnodeRejectsIllegalTargets) {
  support::Rng rng(11);
  World world(small_world(8, 500), rng);
  std::optional<ArcView> target;
  world.for_each_arc([&](const ArcView& arc) {
    if (!target && arc.task_count >= 2) target = arc;
  });
  ASSERT_TRUE(target.has_value());

  // Same position, colliding position, and a position beyond the
  // immediate neighbors must all be refused.
  EXPECT_FALSE(world.move_vnode(target->id, target->id).has_value());
  const std::vector<Uint160> next = world.successors_of(target->id, 2);
  ASSERT_EQ(next.size(), 2u);
  EXPECT_FALSE(world.move_vnode(target->id, next[0]).has_value());
  EXPECT_FALSE(
      world.move_vnode(target->id, next[1] + Uint160(1)).has_value());
  EXPECT_TRUE(world.check_invariants());
}

// On a static network (no churn, no consumption) the fixpoint of the
// neighbor-move rule is the paper's band: no adjacent pair of ranges
// may differ by more than the δ factor.  With one vnode per node (this
// family never creates Sybils) every consecutive arc pair is covered.
TEST(ItemBalance, StaticNetworkReachesImbalanceBand) {
  support::Rng rng(1337);
  World world(small_world(32, 20000), rng);
  const auto strategy = lb::make_strategy("item-balance");
  sim::StrategyCounters counters;
  support::Rng decide_rng(99);

  std::uint64_t last_moves = 0;
  bool converged = false;
  for (int round = 0; round < 200; ++round) {
    strategy->decide(world, decide_rng, counters);
    if (counters.boundary_moves == last_moves) {
      converged = true;
      break;
    }
    last_moves = counters.boundary_moves;
  }
  ASSERT_TRUE(converged) << "no fixpoint after 200 rounds";
  EXPECT_GT(counters.boundary_moves, 0u);
  EXPECT_GT(counters.tasks_moved, 0u);
  EXPECT_TRUE(world.check_invariants());

  // δ = 2 band over every consecutive pair (wrapping at the ring seam).
  std::vector<std::uint64_t> loads;
  world.for_each_arc(
      [&](const ArcView& arc) { loads.push_back(arc.task_count); });
  ASSERT_GE(loads.size(), 2u);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const std::uint64_t mine = loads[i];
    const std::uint64_t theirs = loads[(i + 1) % loads.size()];
    if (mine + theirs < 2) continue;  // below the rule's trigger floor
    EXPECT_LT(mine, 2 * theirs + 1) << "pair " << i << " unbalanced";
    EXPECT_LT(theirs, 2 * mine + 1) << "pair " << i << " unbalanced";
  }
}

// A full audited engine run under churn: every tick's post-barrier
// world passes the invariant auditor while boundaries move, and the
// family stays Sybil-free by construction.
TEST(ItemBalance, AuditedChurnRun) {
  sim::Params p = small_world(200, 40000);
  p.churn_rate = 0.02;
  p.max_ticks = 200;
  sim::Engine engine(p, 4242, lb::make_strategy("item-balance"));
  engine.set_audit(true);
  const sim::RunResult result = engine.run();
  EXPECT_EQ(result.ticks, 200u);
  EXPECT_GT(result.strategy_counters.boundary_moves, 0u);
  EXPECT_GT(result.strategy_counters.tasks_moved, 0u);
  EXPECT_EQ(result.strategy_counters.sybils_created, 0u);
  EXPECT_EQ(result.strategy_counters.sybils_retired, 0u);
  EXPECT_TRUE(engine.world().check_invariants());
}

// The determinism differential the parallel engine owes every
// strategy: seven seeds, each bit-identical at 1, 3 and 7 worker
// threads (odd counts that do not divide the 16 ring shards).
TEST(ItemBalance, SevenSeedThreadDeterminismDifferential) {
  sim::Params p = small_world(200, 4000);
  p.churn_rate = 0.05;
  p.max_ticks = 300;
  for (const std::uint64_t seed :
       {11u, 23u, 47u, 101u, 577u, 7919u, 104729u}) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    std::optional<sim::RunResult> base;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
      sim::Engine engine(p, seed, lb::make_strategy("item-balance"));
      engine.set_audit(true);
      engine.set_threads(threads);
      engine.record_tick_series(true);
      const sim::RunResult result = engine.run();
      if (!base) {
        base = result;
        continue;
      }
      EXPECT_EQ(base->ticks, result.ticks) << threads << " threads";
      EXPECT_EQ(base->joins, result.joins) << threads << " threads";
      EXPECT_EQ(base->leaves, result.leaves) << threads << " threads";
      EXPECT_EQ(base->work_per_tick, result.work_per_tick)
          << threads << " threads";
      EXPECT_EQ(base->strategy_counters.boundary_moves,
                result.strategy_counters.boundary_moves)
          << threads << " threads";
      EXPECT_EQ(base->strategy_counters.tasks_moved,
                result.strategy_counters.tasks_moved)
          << threads << " threads";
      EXPECT_EQ(base->strategy_counters.workload_queries,
                result.strategy_counters.workload_queries)
          << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace dhtlb
