// The DHTLB_SYBIL_RETIRE aggressive-retirement knob (lb/common.hpp):
// bounds Sybil populations under sustained overload, where the paper's
// idle-only rule never fires.
#include <gtest/gtest.h>

#include <optional>

#include "lb/common.hpp"
#include "sim/params.hpp"
#include "sim/world.hpp"
#include "support/rng.hpp"

namespace dhtlb::lb {
namespace {

class SybilRetireTest : public ::testing::Test {
 protected:
  SybilRetireTest() : rng_(3), world_(params(), rng_) {}
  ~SybilRetireTest() override {
    set_sybil_retire_cap_for_testing(std::nullopt);
  }

  static sim::Params params() {
    sim::Params p;
    p.initial_nodes = 32;
    p.total_tasks = 3200;  // every node starts loaded
    p.max_sybils = 8;
    return p;
  }

  /// Gives `idx` a Sybil halfway along an arbitrary empty gap.
  void add_sybils(sim::NodeIndex idx, int count) {
    for (int i = 0; i < count; ++i) {
      const support::Uint160 id =
          rng_.uniform_u160();  // collisions are vanishingly unlikely
      if (!world_.ring_contains(id)) {
        (void)world_.create_sybil(idx, id);
      }
    }
  }

  support::Rng rng_;
  sim::World world_;
  sim::StrategyCounters counters_;
};

TEST_F(SybilRetireTest, LoadedNodeKeepsSybilsByDefault) {
  const sim::NodeIndex idx = world_.alive_indices().front();
  add_sybils(idx, 3);
  ASSERT_GT(world_.workload(idx), 0u);
  ASSERT_EQ(world_.sybil_count(idx), 3u);

  // Paper semantics (cap disabled): loaded nodes never retire.
  set_sybil_retire_cap_for_testing(std::uint64_t{0});
  EXPECT_EQ(retire_idle_sybils(world_, idx, counters_), 0u);
  EXPECT_EQ(world_.sybil_count(idx), 3u);
  EXPECT_EQ(counters_.sybils_retired, 0u);
}

TEST_F(SybilRetireTest, CapRetiresLoadedNodeAtOrAboveCap) {
  const sim::NodeIndex idx = world_.alive_indices().front();
  add_sybils(idx, 4);
  ASSERT_GT(world_.workload(idx), 0u);

  // Below the cap: untouched.
  set_sybil_retire_cap_for_testing(std::uint64_t{5});
  EXPECT_EQ(retire_idle_sybils(world_, idx, counters_), 0u);
  EXPECT_EQ(world_.sybil_count(idx), 4u);

  // At the cap: all Sybils go, even though the node is loaded.
  set_sybil_retire_cap_for_testing(std::uint64_t{4});
  EXPECT_EQ(retire_idle_sybils(world_, idx, counters_), 4u);
  EXPECT_EQ(world_.sybil_count(idx), 0u);
  EXPECT_EQ(counters_.sybils_retired, 4u);
  // The node itself keeps its primary vnode and its tasks.
  EXPECT_GT(world_.workload(idx), 0u);
}

TEST_F(SybilRetireTest, IdleRetirementStillFiresWithCapSet) {
  // Make an idle node: give it Sybils first (placement may acquire
  // tasks from the split arcs), then drain everything it holds.
  const sim::NodeIndex idx = world_.alive_indices().front();
  add_sybils(idx, 2);
  while (world_.workload(idx) > 0) {
    const std::uint64_t got = world_.consume(idx, world_.workload(idx));
    world_.debit_remaining(got);
  }
  ASSERT_EQ(world_.workload(idx), 0u);
  ASSERT_EQ(world_.sybil_count(idx), 2u);

  set_sybil_retire_cap_for_testing(std::uint64_t{100});  // far above
  EXPECT_EQ(retire_idle_sybils(world_, idx, counters_), 2u);
  EXPECT_EQ(world_.sybil_count(idx), 0u);
}

}  // namespace
}  // namespace dhtlb::lb
