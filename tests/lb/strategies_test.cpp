// Behavioral tests for the four balancing strategies (§IV), driven
// through the engine so decision cadence and consumption interleave as
// in the real simulation.
#include <gtest/gtest.h>

#include <algorithm>

#include "lb/common.hpp"
#include "lb/factory.hpp"
#include "lb/invitation.hpp"
#include "lb/neighbor_injection.hpp"
#include "lb/random_injection.hpp"
#include "sim/engine.hpp"
#include "support/ring_math.hpp"

namespace dhtlb::lb {
namespace {

using sim::Engine;
using sim::Params;
using sim::RunResult;
using sim::World;
using support::Rng;

Params tiny(std::size_t nodes = 100, std::uint64_t tasks = 10'000) {
  Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  return p;
}

// --- factory -------------------------------------------------------------

TEST(Factory, KnownNamesConstruct) {
  EXPECT_EQ(make_strategy("none"), nullptr);
  EXPECT_EQ(make_strategy("churn"), nullptr);
  EXPECT_EQ(make_strategy("random-injection")->name(), "random-injection");
  EXPECT_EQ(make_strategy("neighbor-injection")->name(),
            "neighbor-injection");
  EXPECT_EQ(make_strategy("smart-neighbor-injection")->name(),
            "smart-neighbor-injection");
  EXPECT_EQ(make_strategy("invitation")->name(), "invitation");
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_strategy("nonsense"), std::invalid_argument);
}

TEST(Factory, NamesListCoversAllConstructible) {
  for (const auto name : strategy_names()) {
    EXPECT_NO_THROW(make_strategy(name)) << name;
  }
  EXPECT_EQ(strategy_names().size(), 6u);
}

// --- shared helpers ------------------------------------------------------

TEST(Common, RetireIdleSybilsOnlyWhenIdle) {
  Rng rng(1);
  Params p = tiny(10, 1000);
  World w(p, rng);
  sim::StrategyCounters c;
  const sim::NodeIndex idx = w.alive_indices()[0];
  (void)w.create_sybil(idx, support::Uint160{7});
  // Node still has work: nothing retires.
  ASSERT_GT(w.workload(idx), 0u);
  EXPECT_EQ(retire_idle_sybils(w, idx, c), 0u);
  EXPECT_EQ(w.sybil_count(idx), 1u);
  // Drain it: sybils retire.
  (void)w.consume(idx, w.workload(idx));
  EXPECT_EQ(retire_idle_sybils(w, idx, c), 1u);
  EXPECT_EQ(w.sybil_count(idx), 0u);
  EXPECT_EQ(c.sybils_retired, 1u);
}

TEST(Common, MayCreateSybilChecksThresholdAndCap) {
  Rng rng(2);
  Params p = tiny(10, 1000);
  p.sybil_threshold = 1'000'000;  // threshold never binds
  p.max_sybils = 2;
  World w(p, rng);
  const sim::NodeIndex idx = w.alive_indices()[0];
  EXPECT_TRUE(may_create_sybil(w, idx));
  (void)w.create_sybil(idx, support::Uint160{11});
  (void)w.create_sybil(idx, support::Uint160{22});
  EXPECT_FALSE(may_create_sybil(w, idx)) << "cap of 2 reached";
}

TEST(Common, ThresholdBinds) {
  Rng rng(3);
  Params p = tiny(10, 10'000);
  p.sybil_threshold = 0;
  World w(p, rng);
  // Every node got ~1000 tasks; nobody is at/below threshold 0.
  for (const auto idx : w.alive_indices()) {
    if (w.workload(idx) > 0) {
      EXPECT_FALSE(may_create_sybil(w, idx));
    }
  }
}

TEST(Common, ShuffledAliveIsAPermutation) {
  Rng rng(4);
  Params p = tiny(50, 100);
  World w(p, rng);
  Rng shuffle_rng(5);
  auto order = shuffled_alive(w, shuffle_rng);
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  auto expected = w.alive_indices();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

// --- random injection ----------------------------------------------------

TEST(RandomInjectionTest, CreatesSybilsOnlyForEligibleNodes) {
  Rng rng(6);
  Params p = tiny(20, 2000);
  World w(p, rng);
  // Drain three nodes to make them eligible (threshold 0).
  std::vector<sim::NodeIndex> drained;
  for (int i = 0; i < 3; ++i) {
    const sim::NodeIndex idx = w.alive_indices()[static_cast<std::size_t>(i)];
    (void)w.consume(idx, w.workload(idx));
    drained.push_back(idx);
  }
  RandomInjection strat;
  sim::StrategyCounters c;
  Rng decision_rng(7);
  strat.decide(w, decision_rng, c);
  EXPECT_EQ(c.sybils_created, 3u) << "exactly the drained nodes act";
  for (const auto idx : drained) {
    EXPECT_EQ(w.sybil_count(idx), 1u) << "one Sybil per decision round";
  }
}

TEST(RandomInjectionTest, RespectsSybilCapAcrossRounds) {
  Rng rng(8);
  Params p = tiny(20, 2000);
  p.max_sybils = 3;
  World w(p, rng);
  const sim::NodeIndex idx = w.alive_indices()[0];
  (void)w.consume(idx, w.workload(idx));
  RandomInjection strat;
  sim::StrategyCounters c;
  Rng decision_rng(9);
  for (int round = 0; round < 10; ++round) {
    // Keep the node idle so it stays eligible but also keeps retiring...
    // drain whatever its Sybils grabbed first.
    (void)w.consume(idx, w.workload(idx));
    strat.decide(w, decision_rng, c);
    EXPECT_LE(w.sybil_count(idx), 3u);
  }
}

TEST(RandomInjectionTest, ImprovesRuntimeOverBaseline) {
  double base = 0.0, injected = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    base += Engine(tiny(), seed).run().runtime_factor;
    injected += Engine(tiny(), seed, make_strategy("random-injection"))
                    .run()
                    .runtime_factor;
  }
  EXPECT_LT(injected, base);
}

TEST(RandomInjectionTest, HeterogeneousCapIsStrength) {
  Rng rng(10);
  Params p = tiny(50, 500);
  p.heterogeneous = true;
  p.max_sybils = 5;
  World w(p, rng);
  // Find a strength-1 node, drain it, run many rounds: at most 1 Sybil.
  sim::NodeIndex weak = 0;
  bool found = false;
  for (const auto idx : w.alive_indices()) {
    if (w.physical(idx).strength == 1) {
      weak = idx;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  RandomInjection strat;
  sim::StrategyCounters c;
  Rng decision_rng(11);
  for (int round = 0; round < 5; ++round) {
    (void)w.consume(weak, w.workload(weak));
    strat.decide(w, decision_rng, c);
    EXPECT_LE(w.sybil_count(weak), 1u);
  }
}

// --- neighbor injection ---------------------------------------------------

TEST(NeighborInjectionTest, SybilLandsWithinSuccessorNeighborhood) {
  Rng rng(12);
  Params p = tiny(30, 3000);
  p.num_successors = 5;
  World w(p, rng);
  const sim::NodeIndex idx = w.alive_indices()[0];
  (void)w.consume(idx, w.workload(idx));
  const support::Uint160 self = w.physical(idx).vnode_ids[0];
  // Record the neighborhood BEFORE the injection.
  const auto succs_before = w.successors_of(self, p.num_successors);

  NeighborInjection strat(NeighborInjection::Mode::kEstimate);
  sim::StrategyCounters c;
  Rng decision_rng(13);
  strat.decide(w, decision_rng, c);
  ASSERT_EQ(c.sybils_created, 1u);
  const support::Uint160 sybil = w.physical(idx).vnode_ids.back();
  // The Sybil must lie inside the arc (self, last-successor].
  EXPECT_TRUE(
      support::in_half_open_arc(sybil, self, succs_before.back()))
      << "placement restricted to the successor list's span";
}

TEST(NeighborInjectionTest, SmartModePicksMostLoadedSuccessor) {
  // Drain one node, identify the most-loaded successor in its list, and
  // verify the smart variant takes keys from exactly that arc.
  Rng rng2(15);
  Params p2 = tiny(10, 5000);
  World w2(p2, rng2);
  const sim::NodeIndex idx = w2.alive_indices()[0];
  (void)w2.consume(idx, w2.workload(idx));
  const support::Uint160 self = w2.physical(idx).vnode_ids[0];
  const auto succs = w2.successors_of(self, p2.num_successors);
  std::uint64_t best = 0;
  support::Uint160 target;
  for (const auto& sid : succs) {
    const auto arc = w2.arc_of(sid);
    if (arc.owner != idx && arc.task_count > best) {
      best = arc.task_count;
      target = sid;
    }
  }
  ASSERT_GT(best, 0u);
  const std::uint64_t before = w2.arc_of(target).task_count;

  NeighborInjection strat(NeighborInjection::Mode::kSmart);
  sim::StrategyCounters c;
  Rng decision_rng(16);
  strat.decide(w2, decision_rng, c);
  EXPECT_EQ(c.sybils_created, 1u);
  EXPECT_GT(c.workload_queries, 0u) << "smart mode pays probe messages";
  EXPECT_LT(w2.arc_of(target).task_count, before)
      << "the most-loaded successor lost keys to the Sybil";
  // Midpoint split takes roughly half; allow wide tolerance.
  EXPECT_GT(w2.workload(idx), before / 5);
}

TEST(NeighborInjectionTest, EstimateModeSendsNoQueries) {
  Rng rng(17);
  Params p = tiny(30, 3000);
  World w(p, rng);
  const sim::NodeIndex idx = w.alive_indices()[0];
  (void)w.consume(idx, w.workload(idx));
  NeighborInjection strat(NeighborInjection::Mode::kEstimate);
  sim::StrategyCounters c;
  Rng decision_rng(18);
  strat.decide(w, decision_rng, c);
  EXPECT_EQ(c.workload_queries, 0u);
}

TEST(NeighborInjectionTest, MarkFailedRangesStopsRepeatPlacements) {
  Rng rng(19);
  Params p = tiny(30, 30);  // ~1 task per node: placements mostly fail
  p.mark_failed_ranges = true;
  p.max_sybils = 10;
  World w(p, rng);
  // Drain the whole network so every placement acquires nothing.
  for (const auto idx : w.alive_indices()) {
    (void)w.consume(idx, w.workload(idx));
  }
  NeighborInjection strat(NeighborInjection::Mode::kEstimate);
  sim::StrategyCounters c;
  Rng decision_rng(20);
  for (int round = 0; round < 8; ++round) strat.decide(w, decision_rng, c);
  EXPECT_GT(c.ranges_marked_invalid, 0u);
  // Marking must strictly reduce re-spamming: with 30 nodes x 5
  // successor arcs there are at most ~5 distinct marks per node, so
  // failed placements cannot exceed marks by much.
  EXPECT_LE(c.failed_placements,
            c.ranges_marked_invalid + 30u * 8u) << "sanity bound";
}

TEST(NeighborInjectionTest, SmartBeatsEstimateOnAverage) {
  double estimate = 0.0, smart = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    estimate += Engine(tiny(200, 20'000), seed,
                       make_strategy("neighbor-injection"))
                    .run()
                    .runtime_factor;
    smart += Engine(tiny(200, 20'000), seed,
                    make_strategy("smart-neighbor-injection"))
                 .run()
                 .runtime_factor;
  }
  EXPECT_LT(smart, estimate) << "paper §VI-C: probing beats estimating";
}

// --- invitation -----------------------------------------------------------

TEST(InvitationTest, IdlePredecessorHelpsOverburdenedNode) {
  Rng rng(21);
  Params p = tiny(20, 4000);
  World w(p, rng);
  // Drain ALL nodes except one heavy node; its predecessors become
  // eligible helpers.
  const sim::NodeIndex heavy = w.alive_indices()[0];
  for (const auto idx : w.alive_indices()) {
    if (idx != heavy) (void)w.consume(idx, w.workload(idx));
  }
  ASSERT_GT(w.workload(heavy), 0u);
  const std::uint64_t heavy_before = w.workload(heavy);

  Invitation strat;
  sim::StrategyCounters c;
  Rng decision_rng(22);
  strat.decide(w, decision_rng, c);
  EXPECT_GT(c.invitations_sent, 0u);
  // At least the heavy node's invitation is accepted; helpers that
  // acquired work may themselves recruit later in the same round
  // (sequential decision order), so more acceptances are legal.
  EXPECT_GE(c.invitations_accepted, 1u);
  EXPECT_LT(w.workload(heavy), heavy_before)
      << "the heavy node lost roughly half its keys";
}

TEST(InvitationTest, RefusedWhenNoPredecessorIsIdle) {
  Rng rng(23);
  Params p = tiny(20, 20'000);  // everyone starts loaded
  World w(p, rng);
  Invitation strat;
  sim::StrategyCounters c;
  Rng decision_rng(24);
  strat.decide(w, decision_rng, c);
  EXPECT_GT(c.invitations_sent, 0u);
  EXPECT_EQ(c.invitations_accepted, 0u)
      << "no node is at the threshold; every invitation is refused";
  EXPECT_EQ(c.sybils_created, 0u);
}

TEST(InvitationTest, RefusedWhenHelpersAreAtSybilCap) {
  Rng rng(25);
  Params p = tiny(10, 2000);
  p.max_sybils = 1;
  p.sybil_threshold = 50;  // helpers: load <= 50; announcers: load > 50
  World w(p, rng);
  // Pick the heaviest node as the announcer (it will stay above the
  // threshold); every other node becomes a capped, lightly-loaded
  // would-be helper.
  sim::NodeIndex heavy = w.alive_indices()[0];
  for (const auto idx : w.alive_indices()) {
    if (w.workload(idx) > w.workload(heavy)) heavy = idx;
  }
  ASSERT_GT(w.workload(heavy), 50u);
  for (const auto idx : w.alive_indices()) {
    if (idx == heavy) continue;
    // One manual Sybil exhausts the cap of 1...
    (void)w.create_sybil(idx, rng.uniform_u160());
    // ...then drain to a small nonzero load: eligible (<= threshold)
    // but not idle, so retire_idle_sybils leaves the cap exhausted.
    if (w.workload(idx) > 10) {
      (void)w.consume(idx, w.workload(idx) - 10);
    }
  }
  Invitation strat;
  sim::StrategyCounters c;
  Rng decision_rng(26);
  strat.decide(w, decision_rng, c);
  EXPECT_GT(c.invitations_sent, 0u);
  EXPECT_EQ(c.invitations_accepted, 0u)
      << "every candidate helper is at its Sybil cap";
}

TEST(InvitationTest, ImprovesRuntimeOverBaseline) {
  double base = 0.0, invited = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    base += Engine(tiny(), seed).run().runtime_factor;
    invited += Engine(tiny(), seed, make_strategy("invitation"))
                   .run()
                   .runtime_factor;
  }
  EXPECT_LT(invited, base);
}

// --- cross-strategy shape (the paper's headline ordering) ----------------

TEST(StrategyOrdering, RandomInjectionIsBestOnDefaults) {
  // §VI: "Our best strategy was random injection."  Compare means over a
  // few seeds on a scaled-down default network.
  const Params p = tiny(200, 20'000);
  auto mean_factor = [&](const char* name, double churn) {
    double sum = 0.0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Params cfg = p;
      cfg.churn_rate = churn;
      sum += Engine(cfg, seed, make_strategy(name)).run().runtime_factor;
    }
    return sum / 4.0;
  };
  const double none = mean_factor("none", 0.0);
  const double churn = mean_factor("churn", 0.01);
  const double random_inj = mean_factor("random-injection", 0.0);
  const double neighbor = mean_factor("neighbor-injection", 0.0);
  EXPECT_LT(random_inj, churn);
  EXPECT_LT(random_inj, neighbor);
  EXPECT_LT(churn, none);
  EXPECT_LT(neighbor, none);
  EXPECT_LT(random_inj, 2.0) << "approaches the ideal, §VI-B";
}

}  // namespace
}  // namespace dhtlb::lb
