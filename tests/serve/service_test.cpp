// serve::Service: the full pipeline — view publication at tick
// barriers, concurrent shard batches, deterministic folds — hammered
// under churn.  The ConcurrentServeUnderChurn case is the TSan target
// (8 readers racing the engine thread through every published view);
// the invariance cases pin the determinism contract: results are
// bit-identical at any reader count and any engine thread count.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "sim/params.hpp"

namespace dhtlb::serve {
namespace {

sim::Params churny_params() {
  sim::Params p;
  p.initial_nodes = 300;
  p.total_tasks = 6000;
  p.churn_rate = 0.08;
  return p;
}

struct RunOutput {
  sim::RunResult sim;
  Report serve;
};

RunOutput run_serve(std::size_t engine_threads, std::size_t readers,
                    std::uint64_t seed, bool latency = false) {
  sim::Engine engine(churny_params(), seed,
                     lb::make_strategy("random-injection"));
  engine.set_threads(engine_threads);
  Config config;
  config.readers = readers;
  config.traffic = Traffic::kZipf;
  config.traffic_config.key_universe = 2000;
  config.lookups_per_tick = 800;
  config.measure_latency = latency;
  Service service(config, seed);
  service.attach(engine);
  RunOutput out;
  out.sim = engine.run();
  service.drain();
  out.serve = service.report();
  return out;
}

/// Field-by-field equality of everything deterministic in a Report.
/// Doubles compare exactly: identical draws + identical fold order must
/// produce identical bits, not merely close values.
void expect_reports_identical(const Report& a, const Report& b) {
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.hops_total, b.hops_total);
  EXPECT_EQ(a.hops_max, b.hops_max);
  EXPECT_EQ(a.hops_mean, b.hops_mean);
  EXPECT_EQ(a.hops_p50, b.hops_p50);
  EXPECT_EQ(a.hops_p99, b.hops_p99);
  EXPECT_EQ(a.sybil_hit_fraction, b.sybil_hit_fraction);
  EXPECT_EQ(a.owners_hit, b.owners_hit);
  EXPECT_EQ(a.owner_hits_gini, b.owner_hits_gini);
  EXPECT_EQ(a.owner_hits_max_over_mean, b.owner_hits_max_over_mean);
  EXPECT_EQ(a.views.published, b.views.published);
  EXPECT_EQ(a.views.reclaimed, b.views.reclaimed);
  EXPECT_EQ(a.views.retired_pending, b.views.retired_pending);
  EXPECT_EQ(a.views.retire_depth_max, b.views.retire_depth_max);
}

TEST(ServiceTest, ConcurrentServeUnderChurn) {
  // 8 readers hammering views while a churn-heavy, Sybil-spawning run
  // republishes the ring every tick.  Run under the tsan preset (the
  // tsan-serve-soak CI lane) this is the data-race probe for the whole
  // serve plane.
  const RunOutput out = run_serve(4, 8, 0xC0DE, /*latency=*/true);
  ASSERT_TRUE(out.sim.completed);

  // One batch per published view: the pre-run view plus one per tick.
  EXPECT_EQ(out.serve.batches, out.sim.ticks + 1);
  EXPECT_EQ(out.serve.views.published, out.sim.ticks + 1);
  EXPECT_EQ(out.serve.lookups, out.serve.batches * 800);

  // Steady-state epoch retirement: each publish retires the previous
  // view after its batch released it — nothing accumulates.
  EXPECT_EQ(out.serve.views.reclaimed, out.serve.views.published - 1);
  EXPECT_EQ(out.serve.views.retired_pending, 0u);
  EXPECT_EQ(out.serve.views.retire_depth_max, 1u);

  // Perfect-finger routing on a ~600-vnode ring: log-ish hops.
  EXPECT_GT(out.serve.hops_mean, 1.0);
  EXPECT_LT(out.serve.hops_mean, 20.0);
  EXPECT_LE(out.serve.hops_max, 30u);
  EXPECT_GE(out.serve.hops_p99, out.serve.hops_p50);

  // random-injection floods the ring with Sybils; traffic must see
  // them, and the owner-load telemetry must cover a real population.
  EXPECT_GT(out.serve.sybil_hit_fraction, 0.0);
  EXPECT_GT(out.serve.owners_hit, 0u);
  EXPECT_GT(out.serve.owner_hits_max_over_mean, 1.0);
  EXPECT_GT(out.serve.latency_p99_ns, 0.0);
}

TEST(ServiceTest, ResultsInvariantAcrossReaderCounts) {
  const RunOutput r1 = run_serve(1, 1, 42);
  const RunOutput r4 = run_serve(1, 4, 42);
  const RunOutput r8 = run_serve(1, 8, 42);
  ASSERT_EQ(r1.sim.ticks, r4.sim.ticks);
  ASSERT_EQ(r1.sim.ticks, r8.sim.ticks);
  expect_reports_identical(r1.serve, r4.serve);
  expect_reports_identical(r1.serve, r8.serve);
}

TEST(ServiceTest, ResultsInvariantAcrossEngineThreadCounts) {
  const RunOutput t1 = run_serve(1, 3, 7);
  const RunOutput t4 = run_serve(4, 3, 7);
  const RunOutput t8 = run_serve(8, 3, 7);
  // The engine's own outputs are thread-invariant...
  ASSERT_EQ(t1.sim.ticks, t4.sim.ticks);
  ASSERT_EQ(t1.sim.ticks, t8.sim.ticks);
  // ...and so is everything the serve plane computed from its views.
  expect_reports_identical(t1.serve, t4.serve);
  expect_reports_identical(t1.serve, t8.serve);
}

TEST(ServiceTest, ResultsChangeWithSeedAndTraffic) {
  const RunOutput a = run_serve(1, 2, 1);
  const RunOutput b = run_serve(1, 2, 2);
  // Different seeds → different worlds and key streams; collision of
  // every fold at once is implausible.
  EXPECT_NE(a.serve.hops_total, b.serve.hops_total);
}

TEST(ServiceTest, DrainIsIdempotentAndReportRepeats) {
  sim::Engine engine(churny_params(), 9);
  Config config;
  config.readers = 2;
  config.lookups_per_tick = 100;
  Service service(config, 9);
  service.attach(engine);
  (void)engine.run();
  service.drain();
  service.drain();  // second drain is a no-op
  const Report first = service.report();
  const Report second = service.report();
  expect_reports_identical(first, second);
}

TEST(ServiceTest, ShardQuotasCoverRaggedLookupCounts) {
  // 1003 = 62*16 + 11: lookups_per_tick that doesn't divide by the
  // shard count must neither drop nor duplicate lookups.
  sim::Engine engine(churny_params(), 11);
  Config config;
  config.readers = 3;
  config.lookups_per_tick = 1003;
  Service service(config, 11);
  service.attach(engine);
  (void)engine.run();
  service.drain();
  const Report rep = service.report();
  EXPECT_EQ(rep.lookups, rep.batches * 1003);
}

}  // namespace
}  // namespace dhtlb::serve
