// RingView: frozen-snapshot correctness — freeze vs the live world,
// cover vs arc_covering, greedy perfect-finger routing, and snapshot
// isolation under churn.
#include "serve/ring_view.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/params.hpp"
#include "sim/world.hpp"
#include "support/rng.hpp"

namespace dhtlb::serve {
namespace {

sim::Params small_params() {
  sim::Params p;
  p.initial_nodes = 64;
  p.total_tasks = 640;
  return p;
}

TEST(RingViewTest, FreezeMatchesWorldArcs) {
  support::Rng rng(7);
  sim::World world(small_params(), rng);
  const RingView view = RingView::freeze(world, 3);

  EXPECT_EQ(view.tick(), 3u);
  EXPECT_EQ(view.size(), world.vnode_count());
  EXPECT_FALSE(view.empty());

  std::size_t i = 0;
  world.for_each_arc([&](const sim::ArcView& arc) {
    ASSERT_LT(i, view.size());
    EXPECT_EQ(view.id_at(i), arc.id);
    EXPECT_EQ(view.owner_at(i), arc.owner);
    EXPECT_EQ(view.sybil_at(i), arc.is_sybil);
    ++i;
  });
  EXPECT_EQ(i, view.size());
}

TEST(RingViewTest, CoverMatchesArcCoveringOnSevenSeeds) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 5u, 8u, 13u, 21u}) {
    support::Rng rng(seed);
    sim::World world(small_params(), rng);
    const RingView view = RingView::freeze(world, 0);

    support::Rng probe(support::mix_seed(seed, 0xC0FFEE));
    for (int k = 0; k < 500; ++k) {
      const Uint160 point = probe.uniform_u160();
      const sim::ArcView arc = world.arc_covering(point);
      const std::size_t idx = view.cover(point);
      EXPECT_EQ(view.id_at(idx), arc.id)
          << "seed " << seed << " probe " << k;
      EXPECT_EQ(view.owner_at(idx), arc.owner);
    }
    // Exact boundaries: a vnode's own ID is covered by that vnode; one
    // past it belongs to the successor.
    for (std::size_t i = 0; i < view.size(); ++i) {
      EXPECT_EQ(view.cover(view.id_at(i)), i);
      const std::size_t succ = view.next(i);
      EXPECT_EQ(view.cover(view.id_at(i) + Uint160::pow2(0)), succ);
    }
  }
}

TEST(RingViewTest, RouteReachesCoverFromEveryOrigin) {
  support::Rng rng(42);
  sim::World world(small_params(), rng);
  const RingView view = RingView::freeze(world, 0);

  support::Rng probe(99);
  for (int k = 0; k < 300; ++k) {
    const Uint160 key = probe.uniform_u160();
    const std::size_t target = view.cover(key);
    const std::size_t origin =
        static_cast<std::size_t>(probe.below(view.size()));
    const RingView::Route route = view.route(key, origin);
    EXPECT_EQ(route.index, target);
    // Perfect fingers on an n-vnode ring: O(log n) hops, and never the
    // defensive cap.
    EXPECT_LE(route.hops, 20u);
  }
  // Routing from the target itself is free.
  const Uint160 key = probe.uniform_u160();
  const std::size_t target = view.cover(key);
  EXPECT_EQ(view.route(key, target).hops, 0u);
}

TEST(RingViewTest, RouteDifferentialAgainstSuccessorWalkOnSevenSeeds) {
  // The greedy finger route must land exactly where a plain clockwise
  // successor walk (the canonical Chord lookup on the frozen ring)
  // lands — never overshoot the covering vnode.
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u, 77u}) {
    support::Rng rng(seed);
    sim::World world(small_params(), rng);
    const RingView view = RingView::freeze(world, 0);

    support::Rng probe(support::mix_seed(seed, 0xD1FF));
    for (int k = 0; k < 200; ++k) {
      const Uint160 key = probe.uniform_u160();
      const std::size_t origin =
          static_cast<std::size_t>(probe.below(view.size()));
      // Successor walk: advance clockwise until the arc (pred, id]
      // covers the key.
      std::size_t walk = view.cover(key);
      const RingView::Route route = view.route(key, origin);
      EXPECT_EQ(route.index, walk) << "seed " << seed << " probe " << k;
    }
  }
}

TEST(RingViewTest, SnapshotIsolationUnderChurn) {
  support::Rng rng(1234);
  sim::World world(small_params(), rng);
  const RingView before = RingView::freeze(world, 1);
  const std::size_t size_before = before.size();
  std::vector<Uint160> ids_before;
  for (std::size_t i = 0; i < before.size(); ++i) {
    ids_before.push_back(before.id_at(i));
  }

  // Mutate the world hard: departures + joins reshape the ring.
  support::Rng churn_rng(5678);
  for (int i = 0; i < 10; ++i) {
    world.depart(world.alive_indices().front());
    world.join_from_pool(churn_rng);
  }

  // The frozen view is unaffected — reads keep answering from the old
  // ring (RCU semantics: readers never see a half-updated ring).
  ASSERT_EQ(before.size(), size_before);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before.id_at(i), ids_before[i]);
  }
  // And a fresh freeze sees the new ring.
  const RingView after = RingView::freeze(world, 2);
  EXPECT_EQ(after.size(), world.vnode_count());
}

}  // namespace
}  // namespace dhtlb::serve
