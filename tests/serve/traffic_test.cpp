// KeyStream: traffic-model parsing, distribution shape, and the
// determinism guarantees the serve goldens rest on.
#include "serve/traffic.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "support/ring_math.hpp"
#include "support/rng.hpp"

namespace dhtlb::serve {
namespace {

TEST(TrafficTest, ParseAndNameRoundTrip) {
  for (const Traffic t :
       {Traffic::kUniform, Traffic::kZipf, Traffic::kHotspot}) {
    const auto parsed = parse_traffic(traffic_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(parse_traffic("pareto").has_value());
  EXPECT_FALSE(parse_traffic("").has_value());
}

TEST(TrafficTest, DrawsAreDeterministicInSeedAndStream) {
  TrafficConfig config;
  config.key_universe = 1000;
  for (const Traffic t :
       {Traffic::kUniform, Traffic::kZipf, Traffic::kHotspot}) {
    const KeyStream a(t, config, 99);
    const KeyStream b(t, config, 99);
    support::Rng rng_a(7);
    support::Rng rng_b(7);
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(a.draw(rng_a), b.draw(rng_b));
    }
  }
}

TEST(TrafficTest, ZipfHeadDominates) {
  TrafficConfig config;
  config.key_universe = 1000;
  const KeyStream stream(Traffic::kZipf, config, 5);

  // Identify the rank-0 key: it is the single most frequent draw, with
  // probability 1/H(1000) ~ 13% — far above rank 999's 0.013%.
  support::Rng rng(11);
  std::map<Uint160, int> counts;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[stream.draw(rng)];
  int best = 0;
  for (const auto& [key, count] : counts) best = std::max(best, count);
  // Expected ~2670; allow wide slack, but it must dominate uniform's
  // draws/1000 = 20.
  EXPECT_GT(best, draws / 20);
  // The universe bound holds: never more than 1000 distinct keys.
  EXPECT_LE(counts.size(), 1000u);
}

TEST(TrafficTest, HotspotConcentratesInArc) {
  TrafficConfig config;
  config.hotspot_fraction = 0.9;
  config.hotspot_arc = 0.015625;
  const KeyStream stream(Traffic::kHotspot, config, 77);

  support::Rng rng(13);
  const int draws = 10000;
  int inside = 0;
  for (int i = 0; i < draws; ++i) {
    const Uint160 key = stream.draw(rng);
    if (support::in_open_arc(key, stream.hot_start(), stream.hot_end())) {
      ++inside;
    }
  }
  // ~90% + the ~1.6% of background mass that lands in the arc anyway.
  EXPECT_GT(inside, draws * 85 / 100);
  EXPECT_LT(inside, draws * 95 / 100);
}

TEST(TrafficTest, HotspotArcPositionDerivesFromRunSeed) {
  TrafficConfig config;
  const KeyStream a(Traffic::kHotspot, config, 1);
  const KeyStream b(Traffic::kHotspot, config, 1);
  const KeyStream c(Traffic::kHotspot, config, 2);
  EXPECT_EQ(a.hot_start(), b.hot_start());
  EXPECT_EQ(a.hot_end(), b.hot_end());
  EXPECT_NE(a.hot_start(), c.hot_start());
}

TEST(TrafficTest, UniformCoversTheRing) {
  const KeyStream stream(Traffic::kUniform, TrafficConfig{}, 3);
  support::Rng rng(17);
  // Bucket the top 3 bits: all 8 octants of the ring get draws.
  std::vector<int> octants(8, 0);
  for (int i = 0; i < 4000; ++i) {
    const Uint160 key = stream.draw(rng);
    ++octants[key.limbs()[0] >> 29];
  }
  for (const int n : octants) EXPECT_GT(n, 0);
}

}  // namespace
}  // namespace dhtlb::serve
