// ViewPublisher: RCU swap semantics and epoch reclamation accounting.
#include "serve/publisher.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "serve/ring_view.hpp"
#include "sim/params.hpp"
#include "sim/world.hpp"
#include "support/rng.hpp"

namespace dhtlb::serve {
namespace {

std::shared_ptr<const RingView> make_view(const sim::World& world,
                                          std::uint64_t tick) {
  return std::make_shared<const RingView>(RingView::freeze(world, tick));
}

class ViewPublisherTest : public ::testing::Test {
 protected:
  ViewPublisherTest() : rng_(5), world_(params(), rng_) {}

  static sim::Params params() {
    sim::Params p;
    p.initial_nodes = 16;
    p.total_tasks = 160;
    return p;
  }

  support::Rng rng_;
  sim::World world_;
  ViewPublisher publisher_;
};

TEST_F(ViewPublisherTest, AcquireReturnsLatestPublished) {
  EXPECT_EQ(publisher_.acquire(), nullptr);
  auto v1 = make_view(world_, 1);
  publisher_.publish(v1);
  EXPECT_EQ(publisher_.acquire().get(), v1.get());

  auto v2 = make_view(world_, 2);
  publisher_.publish(v2);
  EXPECT_EQ(publisher_.acquire().get(), v2.get());
  EXPECT_EQ(publisher_.acquire()->tick(), 2u);
}

TEST_F(ViewPublisherTest, QuiescentViewsReclaimImmediately) {
  // Publish without holding outside references: each publish retires
  // the previous view with use_count 1, so it reclaims on the spot.
  publisher_.publish(make_view(world_, 1));
  publisher_.publish(make_view(world_, 2));
  publisher_.publish(make_view(world_, 3));
  const ViewPublisher::Stats stats = publisher_.stats();
  EXPECT_EQ(stats.published, 3u);
  EXPECT_EQ(stats.reclaimed, 2u);
  EXPECT_EQ(stats.retired_pending, 0u);
  EXPECT_EQ(stats.retire_depth_max, 1u);
}

TEST_F(ViewPublisherTest, HeldViewDefersReclamation) {
  publisher_.publish(make_view(world_, 1));
  // A reader pins view 1 across two more publishes.
  std::shared_ptr<const RingView> held = publisher_.acquire();
  publisher_.publish(make_view(world_, 2));
  publisher_.publish(make_view(world_, 3));

  ViewPublisher::Stats stats = publisher_.stats();
  EXPECT_EQ(stats.published, 3u);
  // View 2 was quiescent and reclaimed; view 1 is pinned by `held`.
  EXPECT_EQ(stats.reclaimed, 1u);
  EXPECT_EQ(stats.retired_pending, 1u);
  EXPECT_EQ(held->tick(), 1u);  // the pinned epoch still answers reads

  // Releasing the reader makes the epoch quiescent; the next publish
  // sweeps it.
  held.reset();
  publisher_.publish(make_view(world_, 4));
  stats = publisher_.stats();
  EXPECT_EQ(stats.reclaimed, 3u);
  EXPECT_EQ(stats.retired_pending, 0u);
  EXPECT_GE(stats.retire_depth_max, 2u);
}

}  // namespace
}  // namespace dhtlb::serve
