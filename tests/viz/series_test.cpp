#include "viz/series.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dhtlb::viz {
namespace {

TEST(BucketMeans, ExactDivision) {
  const std::vector<std::uint64_t> s{1, 3, 5, 7, 9, 11};
  const auto means = bucket_means(s, 3);
  ASSERT_EQ(means.size(), 3u);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 6.0);
  EXPECT_DOUBLE_EQ(means[2], 10.0);
}

TEST(BucketMeans, UnevenDivisionCoversEverything) {
  const std::vector<std::uint64_t> s{1, 2, 3, 4, 5, 6, 7};
  const auto means = bucket_means(s, 3);
  ASSERT_EQ(means.size(), 3u);
  // Weighted recombination must reproduce the global mean exactly.
  double weighted = 0.0;
  const std::size_t edges[4] = {0, 7 / 3, 2 * 7 / 3, 7};
  for (std::size_t b = 0; b < 3; ++b) {
    weighted += means[b] * static_cast<double>(edges[b + 1] - edges[b]);
  }
  EXPECT_DOUBLE_EQ(weighted / 7.0, 4.0);
}

TEST(BucketMeans, MoreBucketsThanSamplesClamps) {
  const std::vector<std::uint64_t> s{10, 20};
  const auto means = bucket_means(s, 10);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_DOUBLE_EQ(means[0], 10.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
}

TEST(BucketMeans, EmptyInputsYieldEmpty) {
  EXPECT_TRUE(bucket_means({}, 5).empty());
  const std::vector<std::uint64_t> s{1};
  EXPECT_TRUE(bucket_means(s, 0).empty());
}

TEST(RenderSeries, ContainsScaleAndBars) {
  std::vector<std::uint64_t> s;
  for (int i = 0; i < 200; ++i) {
    s.push_back(static_cast<std::uint64_t>(i < 100 ? 1000 : 10));
  }
  SeriesRenderOptions opts;
  opts.title = "throughput";
  const std::string out = render_series(s, opts);
  EXPECT_NE(out.find("throughput"), std::string::npos);
  EXPECT_NE(out.find("1000.0"), std::string::npos) << "y scale shown";
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find("tick 1..200"), std::string::npos);
}

TEST(RenderSeries, EmptySeriesRendersTitleOnly) {
  SeriesRenderOptions opts;
  opts.title = "empty";
  EXPECT_EQ(render_series({}, opts), "empty\n");
}

TEST(RenderSeries, StepDownVisibleInColumns) {
  // First half tall, second half short: the top row must have bars in
  // the left half only.
  std::vector<std::uint64_t> s(100, 5);
  for (int i = 0; i < 50; ++i) s[static_cast<std::size_t>(i)] = 100;
  SeriesRenderOptions opts;
  opts.width = 10;
  opts.height = 4;
  const std::string out = render_series(s, opts);
  // Find the first plot row (contains the top-of-scale label "100.0").
  std::istringstream lines(out);
  std::string line;
  std::string top_row;
  while (std::getline(lines, line)) {
    if (line.find("100.0") != std::string::npos) {
      top_row = line;
      break;
    }
  }
  ASSERT_FALSE(top_row.empty());
  const std::string plot = top_row.substr(10);  // after the gutter
  EXPECT_NE(plot.find('#'), std::string::npos);
  EXPECT_EQ(plot.find('#', 5), std::string::npos)
      << "right half must be empty on the top row: '" << plot << "'";
}

TEST(RenderComparison, SharedScaleAcrossSeries) {
  std::vector<LabeledSeries> series{
      {"tall", std::vector<std::uint64_t>(50, 1000)},
      {"short", std::vector<std::uint64_t>(50, 10)},
  };
  const std::string out = render_series_comparison(series);
  EXPECT_NE(out.find("-- tall (50 ticks) --"), std::string::npos);
  EXPECT_NE(out.find("-- short (50 ticks) --"), std::string::npos);
  EXPECT_NE(out.find("shared y scale, max 1000.0"), std::string::npos);
}

}  // namespace
}  // namespace dhtlb::viz
