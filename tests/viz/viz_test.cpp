#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/histogram.hpp"
#include "viz/ascii_hist.hpp"
#include "viz/ring_layout.hpp"

namespace dhtlb::viz {
namespace {

using support::Uint160;

TEST(AsciiHist, RendersTitleAndBars) {
  stats::LinearHistogram h(0.0, 10.0, 2);
  for (int i = 0; i < 8; ++i) h.add(1.0);
  h.add(7.0);
  HistRenderOptions opts;
  opts.title = "my histogram";
  const std::string out = render_histogram(h.bins(), opts);
  EXPECT_NE(out.find("my histogram"), std::string::npos);
  EXPECT_NE(out.find("####"), std::string::npos);
  EXPECT_NE(out.find(" 8"), std::string::npos);
  EXPECT_NE(out.find("[0, 5)"), std::string::npos);
}

TEST(AsciiHist, NonzeroBinsAlwaysVisible) {
  stats::LinearHistogram h(0.0, 10.0, 2);
  for (int i = 0; i < 1000; ++i) h.add(1.0);
  h.add(7.0);  // 1 vs 1000: must still draw at least one '#'
  const std::string out = render_histogram(h.bins());
  std::istringstream lines(out);
  std::string line;
  int hash_lines = 0;
  while (std::getline(lines, line)) {
    if (line.find('#') != std::string::npos) ++hash_lines;
  }
  EXPECT_EQ(hash_lines, 2);
}

TEST(AsciiHist, PercentagesSumSensibly) {
  stats::LinearHistogram h(0.0, 4.0, 2);
  h.add(1.0);
  h.add(3.0);
  const std::string out = render_histogram(h.bins());
  EXPECT_NE(out.find("(50.0%)"), std::string::npos);
}

TEST(AsciiHist, EmptyBinsRenderTitleOnly) {
  HistRenderOptions opts;
  opts.title = "empty";
  EXPECT_EQ(render_histogram({}, opts), "empty\n");
}

TEST(AsciiHist, ComparisonShowsBothLabelsAndCounts) {
  stats::LinearHistogram a(0.0, 10.0, 2), b(0.0, 10.0, 2);
  a.add(1.0);
  a.add(2.0);
  b.add(8.0);
  const std::string out =
      render_comparison(a.bins(), "left-label", b.bins(), "right-label");
  EXPECT_NE(out.find("left-label"), std::string::npos);
  EXPECT_NE(out.find("right-label"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(RingLayout, PointsAreOnTheUnitCircle) {
  for (std::uint64_t i = 1; i < 50; ++i) {
    const RingPoint p = ring_point(Uint160{i * 1234567}, 'n');
    EXPECT_NEAR(p.x * p.x + p.y * p.y, 1.0, 1e-9);
  }
}

TEST(RingLayout, PaperCoordinateConvention) {
  // id = 0 => angle 0 => (sin 0, cos 0) = (0, 1): top of the circle.
  const RingPoint top = ring_point(Uint160::zero(), 'n');
  EXPECT_NEAR(top.x, 0.0, 1e-9);
  EXPECT_NEAR(top.y, 1.0, 1e-9);
  // id = 2^159 => halfway => (0, -1): bottom.
  const RingPoint bottom = ring_point(Uint160::pow2(159), 'n');
  EXPECT_NEAR(bottom.x, 0.0, 1e-9);
  EXPECT_NEAR(bottom.y, -1.0, 1e-9);
  // id = 2^158 => quarter => (1, 0): right (clockwise from the top).
  const RingPoint right = ring_point(Uint160::pow2(158), 'n');
  EXPECT_NEAR(right.x, 1.0, 1e-9);
  EXPECT_NEAR(right.y, 0.0, 1e-9);
}

TEST(RingLayout, RenderPlacesMarksOnGrid) {
  std::vector<RingPoint> points{ring_point(Uint160::zero(), 'n'),
                                ring_point(Uint160::pow2(159), 't')};
  const std::string grid = render_ring(points, 21);
  EXPECT_NE(grid.find('O'), std::string::npos);
  EXPECT_NE(grid.find('+'), std::string::npos);
}

TEST(RingLayout, NodesOverdrawTasks) {
  // Node and task at the same ID: the cell must show the node.
  std::vector<RingPoint> points{ring_point(Uint160::zero(), 't'),
                                ring_point(Uint160::zero(), 'n')};
  const std::string grid = render_ring(points, 21);
  EXPECT_NE(grid.find('O'), std::string::npos);
  EXPECT_EQ(grid.find('+'), std::string::npos);
}

TEST(RingLayout, CsvHasHeaderAndRows) {
  std::vector<RingPoint> points{ring_point(Uint160::zero(), 'n'),
                                ring_point(Uint160::pow2(158), 't')};
  const std::string csv = ring_csv(points);
  EXPECT_EQ(csv.substr(0, 12), "kind,id,x,y\n");
  EXPECT_NE(csv.find("node,"), std::string::npos);
  EXPECT_NE(csv.find("task,"), std::string::npos);
  EXPECT_NE(csv.find("1.000000"), std::string::npos);
}

}  // namespace
}  // namespace dhtlb::viz
