// Behavioral tests for the scenario VM: event semantics on both
// substrates, the drained-engine keep-alive path, conservation under
// mid-run injection, strategy hot-swap, seed precedence, and — the
// property the golden files rest on — bit-exact replayability of
// (script, seed).
#include "scenario/vm.hpp"

#include <gtest/gtest.h>

#include <string>

#include "harness/telemetry.hpp"
#include "scenario/script.hpp"

namespace dhtlb::scenario {
namespace {

Script parse(const std::string& text) {
  return Script::parse(text, "vm_test.scn");
}

double metric(const ScenarioResult& result, const std::string& name) {
  for (const auto& rec : result.records) {
    if (rec.metric == name) return rec.value;
  }
  ADD_FAILURE() << "metric not found: " << name;
  return -1.0;
}

std::string as_json(const ScenarioResult& r) {
  return bench::to_json(r.experiment, r.records);
}

TEST(ScenarioVm, ReplaysByteIdentically) {
  const Script s = parse(
      "name replay\nstrategy random-injection\nnodes 60\ntasks 2000\n"
      "churn 0.01\n"
      "at 5\n  join 10\n  inject-uniform 200\nend\n");
  const std::string a = as_json(run_scenario(s, 42));
  const std::string b = as_json(run_scenario(s, 42));
  EXPECT_EQ(a, b);
  // A different seed must reach a different trajectory (churn draws,
  // injected keys); equality here would mean the seed is ignored.
  const std::string c = as_json(run_scenario(s, 43));
  EXPECT_NE(a, c);
}

TEST(ScenarioVm, ScriptedJoinsGrowTheRing) {
  const Script s = parse(
      "name joins\nnodes 40\ntasks 400\n"
      "at 2\n  join 25\nend\n");
  const ScenarioResult r = run_scenario(s, 1);
  EXPECT_EQ(metric(r, "scripted_joins"), 25.0);
  EXPECT_EQ(metric(r, "final_alive"), 65.0);
  EXPECT_EQ(metric(r, "completed"), 1.0);
}

TEST(ScenarioVm, LeavesAndCrashesShrinkTheRing) {
  const Script s = parse(
      "name shrink\nnodes 50\ntasks 500\n"
      "at 2\n  leave 10\n  crash 5\nend\n");
  const ScenarioResult r = run_scenario(s, 1);
  EXPECT_EQ(metric(r, "scripted_leaves"), 10.0);
  EXPECT_EQ(metric(r, "scripted_crashes"), 5.0);
  EXPECT_EQ(metric(r, "final_alive"), 35.0);
  // Active backup: no tasks are lost to departures.
  EXPECT_EQ(metric(r, "completed"), 1.0);
  EXPECT_EQ(metric(r, "remaining_tasks"), 0.0);
}

TEST(ScenarioVm, DrainedEngineIdlesTowardFutureEvents) {
  // 500 tasks over 50 nodes drain in ~10 ticks; the injection at tick
  // 30 must still happen, so the engine has to keep ticking idle.
  const Script s = parse(
      "name revive\nnodes 50\ntasks 500\n"
      "at 30\n  inject-uniform 300\nend\n");
  const ScenarioResult r = run_scenario(s, 7);
  EXPECT_GE(metric(r, "ticks"), 30.0);
  EXPECT_EQ(metric(r, "injected_tasks"), 300.0);
  EXPECT_EQ(metric(r, "total_tasks"), 800.0);
  EXPECT_EQ(metric(r, "completed"), 1.0);
}

TEST(ScenarioVm, HotspotInjectionConserves) {
  const Script s = parse(
      "name hotspot\nnodes 40\ntasks 400\n"
      "every 5 from 5 until 20\n  inject-hotspot 100 0.02\nend\n");
  const ScenarioResult r = run_scenario(s, 3, /*audit=*/true);
  EXPECT_EQ(metric(r, "injected_tasks"), 400.0);  // 4 firings x 100
  EXPECT_EQ(metric(r, "total_tasks"), 800.0);
  EXPECT_EQ(metric(r, "completed"), 1.0);
}

TEST(ScenarioVm, SetChurnTakesEffectMidRun) {
  // churn starts at 0 (no churn events possible); after tick 5 it is
  // violent, so leaves can only come from the re-parameterization.
  const Script s = parse(
      "name churny\nnodes 30\ntasks 3000\nticks 20\n"
      "at 5\n  set churn 0.5\nend\n");
  const ScenarioResult r = run_scenario(s, 11);
  EXPECT_GT(metric(r, "churn_leaves"), 0.0);
}

TEST(ScenarioVm, StrategyHotSwapKeepsCounters) {
  const Script s = parse(
      "name swap\nstrategy random-injection\nnodes 40\ntasks 4000\n"
      "at 10\n  strategy none\nend\n");
  const ScenarioResult r = run_scenario(s, 5, /*audit=*/true);
  // The first 10 ticks run random injection (decisions at 5 and 10);
  // Sybils created then survive the swap in the counters.
  EXPECT_GT(metric(r, "sybils_created"), 0.0);
  EXPECT_EQ(metric(r, "completed"), 1.0);
}

TEST(ScenarioVm, ChordSubstrateRunsLookupsAndFaults) {
  // Crash and join on separate ticks: a joiner that picks up a
  // just-crashed successor before any maintenance round is stranded
  // forever (no predecessor, no fingers) — real Chord behavior that the
  // canned scenarios also avoid.
  const Script s = parse(
      "name chordy\nsubstrate chord\nnodes 20\nticks 30\n"
      "at 3\n  lookup 10\nend\n"
      "at 6\n  fault duplicate 1.0\nend\n"
      "at 10\n  lookup 10\n  crash 2\nend\n"
      "at 14\n  join 3\nend\n");
  const ScenarioResult r = run_scenario(s, 9);
  EXPECT_EQ(metric(r, "lookups"), 20.0);
  EXPECT_EQ(metric(r, "scripted_joins"), 3.0);
  EXPECT_EQ(metric(r, "scripted_crashes"), 2.0);
  EXPECT_EQ(metric(r, "final_nodes"), 21.0);
  EXPECT_GT(metric(r, "msgs_total"), 0.0);
  // Fault-free bootstrap + lazy healing converge by the horizon.
  EXPECT_EQ(metric(r, "ring_consistent"), 1.0);
  // Replayability holds on the chord substrate too (fault RNG included).
  EXPECT_EQ(as_json(run_scenario(s, 9)), as_json(r));
}

TEST(ScenarioVm, ChordLookupsAreCorrectOnAQuietRing) {
  const Script s = parse(
      "name quiet\nsubstrate chord\nnodes 25\nticks 10\n"
      "every 2 from 2 until 8\n  lookup 5\nend\n");
  const ScenarioResult r = run_scenario(s, 2);
  EXPECT_EQ(metric(r, "lookups"), 20.0);
  EXPECT_EQ(metric(r, "lookups_correct"), 20.0);
}

TEST(ScenarioVm, ResolveSeedPrecedence) {
  Script with_seed = parse("name a\nseed 123\nat 1\n  join 1\nend\n");
  Script without = parse("name b\nat 1\n  join 1\nend\n");
  EXPECT_EQ(resolve_seed(with_seed, true, 77, 999), 77u);   // CLI wins
  EXPECT_EQ(resolve_seed(with_seed, false, 0, 999), 123u);  // then script
  EXPECT_EQ(resolve_seed(without, false, 0, 999), 999u);    // then env
}

TEST(ScenarioVm, RecordsCarryExperimentNameAndFixedShape) {
  const Script s = parse("name shape\nnodes 30\ntasks 300\n"
                         "at 2\n  join 1\nend\n");
  const ScenarioResult r = run_scenario(s, 4);
  EXPECT_EQ(r.experiment, "scenario_shape");
  ASSERT_FALSE(r.records.empty());
  for (const auto& rec : r.records) {
    EXPECT_EQ(rec.experiment, "scenario_shape");
    EXPECT_EQ(rec.cell, "sim");
    EXPECT_EQ(rec.wall_ms, 0.0);  // goldens must not contain timings
    EXPECT_EQ(rec.trials, 1u);
    EXPECT_EQ(rec.seed, 4u);
  }
}

}  // namespace
}  // namespace dhtlb::scenario
