// Runs every canned scenario under the audited engine: the per-tick
// sim::InvariantAuditor vets the scenario mutation paths (mid-run
// joins, scripted departures, task injection, re-parameterization,
// strategy hot-swap) tick by tick, in any build flavor.  A violation
// aborts the process with the offending tick and seed.
//
// DHTLB_SCENARIO_DIR is injected by the build and points at the
// checked-in scenarios/ directory.
#include <gtest/gtest.h>

#include <string>

#include "scenario/script.hpp"
#include "scenario/vm.hpp"

namespace dhtlb::scenario {
namespace {

class CannedScenarioAudit : public ::testing::TestWithParam<const char*> {};

TEST_P(CannedScenarioAudit, RunsCleanUnderPerTickAudit) {
  const std::string path =
      std::string(DHTLB_SCENARIO_DIR) + "/" + GetParam() + ".scn";
  const Script script = Script::load(path);
  const std::uint64_t seed = resolve_seed(script, false, 0, 1);
  const ScenarioResult result = run_scenario(script, seed, /*audit=*/true);
  EXPECT_FALSE(result.records.empty());
  // Audited and unaudited runs must agree: the auditor observes, never
  // perturbs.
  const ScenarioResult plain = run_scenario(script, seed, /*audit=*/false);
  ASSERT_EQ(result.records.size(), plain.records.size());
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].metric, plain.records[i].metric);
    EXPECT_EQ(result.records[i].value, plain.records[i].value)
        << result.records[i].metric;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCanned, CannedScenarioAudit,
                         ::testing::Values("flash_crowd",
                                           "diurnal_churn_wave",
                                           "mass_failure",
                                           "hotspot_workload",
                                           "sybil_saturation",
                                           "lossy_network"));

}  // namespace
}  // namespace dhtlb::scenario
