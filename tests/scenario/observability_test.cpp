// End-to-end observability contract over every canned scenario:
//
//   1. Determinism — running the same (script, seed) twice with sinks
//      attached produces byte-identical trace and metrics output.  (The
//      scenario VM is single-threaded, so an in-process byte-compare is
//      exactly the DHTLB_THREADS=1-vs-4 guarantee; the shell-level
//      cross-process check lives in scripts/check_determinism.sh.)
//   2. Schema validity — the trace is a structurally well-formed Chrome
//      trace_event document (header, one event per line, required keys,
//      known phases, tick-monotone timestamps) and every metrics row is
//      a JSONL object with the documented keys in alphabetical order.
//   3. Null-sink no-op — attaching sinks never changes the
//      ScenarioResult, so committed goldens are observation-invariant.
//
// DHTLB_SCENARIO_DIR is injected by the build and points at the
// checked-in scenarios/ directory.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/script.hpp"
#include "scenario/vm.hpp"

namespace dhtlb::scenario {
namespace {

struct SinkOutput {
  std::string trace;
  std::string metrics;
  ScenarioResult result;
};

SinkOutput run_with_sinks(const Script& script, std::uint64_t seed) {
  std::ostringstream trace_out;
  std::ostringstream metrics_out;
  SinkOutput out;
  {
    obs::TraceSink trace(trace_out);
    obs::MetricsRegistry metrics(metrics_out);
    out.result =
        run_scenario(script, seed, /*audit=*/false, {&trace, &metrics});
    trace.close();
    metrics.flush();
  }
  out.trace = trace_out.str();
  out.metrics = metrics_out.str();
  return out;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

class CannedScenarioObservability
    : public ::testing::TestWithParam<const char*> {
 protected:
  Script load_script() const {
    return Script::load(std::string(DHTLB_SCENARIO_DIR) + "/" + GetParam() +
                        ".scn");
  }
};

TEST_P(CannedScenarioObservability, TraceAndMetricsAreByteDeterministic) {
  const Script script = load_script();
  const std::uint64_t seed = resolve_seed(script, false, 0, 1);
  const SinkOutput a = run_with_sinks(script, seed);
  const SinkOutput b = run_with_sinks(script, seed);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST_P(CannedScenarioObservability, TraceIsStructurallyValidChromeJson) {
  const Script script = load_script();
  const std::uint64_t seed = resolve_seed(script, false, 0, 1);
  const SinkOutput out = run_with_sinks(script, seed);

  const std::vector<std::string> lines = lines_of(out.trace);
  ASSERT_GE(lines.size(), 3u) << "header, >=1 event, footer";
  EXPECT_EQ(lines.front(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  EXPECT_EQ(lines.back(), "]}");

  std::uint64_t last_tick_us = 0;
  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    const std::string& line = lines[i];
    // Every event line: JSON object, optionally comma-continued.
    ASSERT_FALSE(line.empty()) << "line " << i;
    const std::string body =
        line.back() == ',' ? line.substr(0, line.size() - 1) : line;
    ASSERT_EQ(body.front(), '{') << "line " << i << ": " << line;
    ASSERT_EQ(body.back(), '}') << "line " << i << ": " << line;
    // Required keys, in the fixed emission order.
    const std::size_t name_pos = body.find("\"name\":\"");
    const std::size_t cat_pos = body.find("\"cat\":\"");
    const std::size_t ph_pos = body.find("\"ph\":\"");
    const std::size_t ts_pos = body.find("\"ts\":");
    ASSERT_NE(name_pos, std::string::npos) << line;
    ASSERT_NE(cat_pos, std::string::npos) << line;
    ASSERT_NE(ph_pos, std::string::npos) << line;
    ASSERT_NE(ts_pos, std::string::npos) << line;
    EXPECT_LT(name_pos, cat_pos);
    EXPECT_LT(cat_pos, ph_pos);
    EXPECT_LT(ph_pos, ts_pos);
    // Known phases only.
    const char phase = body[ph_pos + 6];
    EXPECT_TRUE(phase == 'i' || phase == 'X' || phase == 'C')
        << "unknown phase '" << phase << "' in " << line;
    // pid/tid close every event.
    EXPECT_NE(body.find("\"pid\":1,\"tid\":1}"), std::string::npos) << line;
    // Timestamps are tick-derived and never go backwards tick-to-tick:
    // check tick monotonicity at one-second granularity (complete spans
    // are stamped at the tick start, instants at tick + seq).
    const std::uint64_t ts = std::stoull(body.substr(ts_pos + 5));
    const std::uint64_t tick_us = ts / 1000000u * 1000000u;
    if (phase != 'X') {
      EXPECT_GE(tick_us, last_tick_us) << line;
    }
    last_tick_us = std::max(last_tick_us, tick_us);
  }
}

TEST_P(CannedScenarioObservability, MetricsRowsMatchTheDocumentedSchema) {
  const Script script = load_script();
  const std::uint64_t seed = resolve_seed(script, false, 0, 1);
  const SinkOutput out = run_with_sinks(script, seed);

  const std::vector<std::string> lines = lines_of(out.metrics);
  ASSERT_FALSE(lines.empty());
  std::uint64_t last_tick = 0;
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.back(), '}') << line;
    // Keys in alphabetical order: (le,) metric, tick, type, unit, value.
    const std::size_t le_pos = line.find("\"le\":");
    const std::size_t metric_pos = line.find("\"metric\":\"");
    const std::size_t tick_pos = line.find("\"tick\":");
    const std::size_t type_pos = line.find("\"type\":\"");
    const std::size_t unit_pos = line.find("\"unit\":\"");
    const std::size_t value_pos = line.find("\"value\":");
    ASSERT_NE(metric_pos, std::string::npos) << line;
    ASSERT_NE(tick_pos, std::string::npos) << line;
    ASSERT_NE(type_pos, std::string::npos) << line;
    ASSERT_NE(unit_pos, std::string::npos) << line;
    ASSERT_NE(value_pos, std::string::npos) << line;
    if (le_pos != std::string::npos) EXPECT_LT(le_pos, metric_pos) << line;
    EXPECT_LT(metric_pos, tick_pos);
    EXPECT_LT(tick_pos, type_pos);
    EXPECT_LT(type_pos, unit_pos);
    EXPECT_LT(unit_pos, value_pos);
    // type is one of the three instrument kinds; `le` only appears on
    // histogram bucket rows.
    const bool is_counter =
        line.find("\"type\":\"counter\"") != std::string::npos;
    const bool is_gauge = line.find("\"type\":\"gauge\"") != std::string::npos;
    const bool is_histogram =
        line.find("\"type\":\"histogram\"") != std::string::npos;
    EXPECT_TRUE(is_counter || is_gauge || is_histogram) << line;
    if (le_pos != std::string::npos) EXPECT_TRUE(is_histogram) << line;
    // Ticks are non-decreasing through the file (one block per tick).
    const std::uint64_t tick = std::stoull(line.substr(tick_pos + 7));
    EXPECT_GE(tick, last_tick) << line;
    last_tick = tick;
  }
}

TEST_P(CannedScenarioObservability, AttachingSinksNeverChangesResults) {
  const Script script = load_script();
  const std::uint64_t seed = resolve_seed(script, false, 0, 1);
  const ScenarioResult plain = run_scenario(script, seed);
  const SinkOutput observed = run_with_sinks(script, seed);
  ASSERT_EQ(plain.records.size(), observed.result.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    EXPECT_EQ(plain.records[i].metric, observed.result.records[i].metric);
    EXPECT_EQ(plain.records[i].value, observed.result.records[i].value)
        << plain.records[i].metric;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCanned, CannedScenarioObservability,
                         ::testing::Values("flash_crowd",
                                           "diurnal_churn_wave",
                                           "mass_failure",
                                           "hotspot_workload",
                                           "sybil_saturation",
                                           "lossy_network"));

}  // namespace
}  // namespace dhtlb::scenario
