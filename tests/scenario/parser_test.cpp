// Parser coverage for the scenario script format: the happy path and —
// load-bearing for usability — every diagnostic the format promises:
// line-numbered errors instead of crashes for unknown events,
// out-of-order `at` ticks, duplicate header keys, and trailing garbage.
#include "scenario/script.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dhtlb::scenario {
namespace {

Script parse(const std::string& text) {
  return Script::parse(text, "test.scn");
}

/// Asserts `text` fails to parse, reporting `line` and containing
/// `needle` in the message.
void expect_error(const std::string& text, int line,
                  const std::string& needle) {
  try {
    Script::parse(text, "test.scn");
    FAIL() << "expected ParseError containing '" << needle << "'";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
    // Diagnostics must be file:line-prefixed.
    EXPECT_EQ(std::string(e.what()).find("test.scn:" + std::to_string(line) +
                                         ":"),
              0u)
        << e.what();
  }
}

TEST(ScenarioParser, ParsesHeaderBlocksAndComments) {
  const Script s = parse(
      "# a comment\n"
      "name      demo\n"
      "strategy  random-injection\n"
      "nodes     100   # trailing comment\n"
      "tasks     5000\n"
      "churn     0.01\n"
      "ticks     50\n"
      "seed      99\n"
      "\n"
      "at 10\n"
      "  join 20\n"
      "  set churn 0.05\n"
      "end\n"
      "every 5 from 15 until 45\n"
      "  inject-uniform 100\n"
      "end\n");
  EXPECT_EQ(s.name, "demo");
  EXPECT_EQ(s.substrate, Substrate::kSim);
  EXPECT_EQ(s.strategy, "random-injection");
  EXPECT_EQ(s.params.initial_nodes, 100u);
  EXPECT_EQ(s.params.total_tasks, 5000u);
  EXPECT_DOUBLE_EQ(s.params.churn_rate, 0.01);
  EXPECT_EQ(s.horizon, 50u);
  EXPECT_EQ(s.seed, 99u);
  EXPECT_TRUE(s.seed_set);
  ASSERT_EQ(s.blocks.size(), 2u);
  EXPECT_FALSE(s.blocks[0].recurring);
  EXPECT_EQ(s.blocks[0].at, 10u);
  ASSERT_EQ(s.blocks[0].events.size(), 2u);
  EXPECT_EQ(s.blocks[0].events[0].kind, Event::Kind::kJoin);
  EXPECT_EQ(s.blocks[0].events[0].count, 20u);
  EXPECT_EQ(s.blocks[0].events[1].kind, Event::Kind::kSetChurn);
  EXPECT_DOUBLE_EQ(s.blocks[0].events[1].value, 0.05);
  EXPECT_TRUE(s.blocks[1].recurring);
  EXPECT_EQ(s.blocks[1].at, 5u);
  EXPECT_EQ(s.blocks[1].from, 15u);
  EXPECT_EQ(s.blocks[1].until, 45u);
}

TEST(ScenarioParser, OpenEndedEveryResolvesToHorizon) {
  const Script s = parse(
      "name x\nticks 80\n"
      "every 10\n  join 1\nend\n");
  ASSERT_EQ(s.blocks.size(), 1u);
  EXPECT_EQ(s.blocks[0].from, 1u);
  EXPECT_EQ(s.blocks[0].until, 80u);
}

TEST(ScenarioParser, ChordScenarioParses) {
  const Script s = parse(
      "name lossy\nsubstrate chord\nnodes 30\nticks 40\n"
      "at 5\n  fault drop 0.1\n  lookup 10\nend\n");
  EXPECT_EQ(s.substrate, Substrate::kChord);
  ASSERT_EQ(s.blocks[0].events.size(), 2u);
  EXPECT_EQ(s.blocks[0].events[0].kind, Event::Kind::kFault);
  EXPECT_EQ(s.blocks[0].events[0].text, "drop");
  EXPECT_DOUBLE_EQ(s.blocks[0].events[0].value, 0.1);
}

TEST(ScenarioParser, TraceAndMetricsHeaderKeys) {
  const Script s = parse(
      "name x\nticks 10\n"
      "trace out/x_trace.json\n"
      "metrics out/x_metrics.jsonl\n"
      "at 5\n  join 1\nend\n");
  EXPECT_EQ(s.trace_path, "out/x_trace.json");
  EXPECT_EQ(s.metrics_path, "out/x_metrics.jsonl");
}

TEST(ScenarioParser, TraceAndMetricsDefaultToDisabled) {
  const Script s = parse("name x\nticks 10\nat 5\n  join 1\nend\n");
  EXPECT_TRUE(s.trace_path.empty());
  EXPECT_TRUE(s.metrics_path.empty());
}

// --- the promised diagnostics -------------------------------------------

TEST(ScenarioParser, UnknownEventIsLineNumbered) {
  expect_error("name x\nat 5\n  explode 3\nend\n", 3, "unknown event");
}

TEST(ScenarioParser, OutOfOrderAtTicks) {
  expect_error(
      "name x\nat 20\n  join 1\nend\nat 10\n  join 1\nend\n", 5,
      "out-of-order 'at' tick 10");
}

TEST(ScenarioParser, DuplicateHeaderKey) {
  expect_error("name x\nnodes 10\nnodes 20\n", 3, "duplicate key 'nodes'");
}

TEST(ScenarioParser, DuplicateTraceKey) {
  expect_error("name x\ntrace a.json\ntrace b.json\n", 3,
               "duplicate key 'trace'");
}

TEST(ScenarioParser, TraceWithoutFileIsAnError) {
  expect_error("name x\ntrace\n", 2, "trace <file>");
}

TEST(ScenarioParser, TrailingGarbageOnEvent) {
  expect_error("name x\nat 5\n  join 3 banana\nend\n", 3,
               "trailing garbage 'banana'");
}

TEST(ScenarioParser, TrailingGarbageOnHeader) {
  expect_error("name x extra\n", 1, "trailing garbage 'extra'");
}

TEST(ScenarioParser, UnknownHeaderKey) {
  expect_error("name x\nflavor vanilla\n", 2, "unknown key 'flavor'");
}

TEST(ScenarioParser, UnterminatedBlock) {
  expect_error("name x\nat 5\n  join 1\n", 2, "unterminated");
}

TEST(ScenarioParser, EmptyBlock) {
  expect_error("name x\nat 5\nend\n", 3, "empty event block");
}

TEST(ScenarioParser, EndWithoutBlock) {
  expect_error("name x\nend\n", 2, "'end' without an open");
}

TEST(ScenarioParser, HeaderAfterBlock) {
  expect_error("name x\nat 5\n  join 1\nend\nnodes 50\n", 5,
               "after the first event block");
}

TEST(ScenarioParser, MissingName) {
  expect_error("nodes 10\n", 1, "missing required key 'name'");
}

TEST(ScenarioParser, AtTickZero) {
  expect_error("name x\nat 0\n  join 1\nend\n", 2, "must be >= 1");
}

TEST(ScenarioParser, BadInteger) {
  expect_error("name x\nnodes lots\n", 2, "expected an unsigned integer");
}

TEST(ScenarioParser, ChurnRateOutOfRange) {
  expect_error("name x\nchurn 1.5\n", 2, "must be in [0, 1]");
}

TEST(ScenarioParser, UnknownStrategyName) {
  expect_error("name x\nstrategy banana\n", 2, "unknown strategy 'banana'");
}

TEST(ScenarioParser, UnknownStrategyInEvent) {
  expect_error("name x\nat 5\n  strategy banana\nend\n", 3,
               "unknown strategy 'banana'");
}

TEST(ScenarioParser, SimEventOnChordSubstrate) {
  expect_error(
      "name x\nsubstrate chord\nticks 10\nat 5\n  inject-uniform 10\nend\n",
      5, "not valid on the chord substrate");
}

TEST(ScenarioParser, ChordEventOnSimSubstrate) {
  expect_error("name x\nat 5\n  fault drop 0.1\nend\n", 3,
               "not valid on the sim substrate");
}

TEST(ScenarioParser, SimOnlyHeaderKeyOnChord) {
  expect_error("name x\nsubstrate chord\nticks 10\nchurn 0.1\n", 4,
               "only applies to the sim substrate");
}

TEST(ScenarioParser, ChordNeedsHorizon) {
  expect_error("name x\nsubstrate chord\n", 2, "'ticks' horizon");
}

TEST(ScenarioParser, OpenEndedEveryNeedsHorizon) {
  expect_error("name x\nevery 10\n  join 1\nend\n", 2, "needs 'until'");
}

TEST(ScenarioParser, EveryUntilBeforeFrom) {
  expect_error("name x\nevery 5 from 50 until 20\n  join 1\nend\n", 2,
               "before it starts");
}

TEST(ScenarioParser, BlockBeyondHorizon) {
  expect_error("name x\nticks 30\nat 40\n  join 1\nend\n", 3,
               "beyond the ticks horizon");
}

TEST(ScenarioParser, FaultProbabilityOutOfRange) {
  expect_error(
      "name x\nsubstrate chord\nticks 10\nat 5\n  fault drop 2\nend\n", 5,
      "must be in [0, 1]");
}

TEST(ScenarioParser, HotspotFractionOutOfRange) {
  expect_error("name x\nat 5\n  inject-hotspot 100 0\nend\n", 3,
               "ring fraction must be in (0, 1]");
}

TEST(ScenarioParser, StreamedProvisioningKeys) {
  const Script s = parse(
      "name x\n"
      "provisioning streamed\n"
      "arrival-ticks 40\n"
      "tasks 1000\n");
  EXPECT_EQ(s.params.provisioning, sim::TaskProvisioning::kStreamed);
  EXPECT_EQ(s.params.arrival_ticks, 40u);
}

TEST(ScenarioParser, ProvisioningDefaultsToPreallocated) {
  const Script s = parse("name x\n");
  EXPECT_EQ(s.params.provisioning, sim::TaskProvisioning::kPreallocated);
  EXPECT_EQ(s.params.arrival_ticks, 0u);
}

TEST(ScenarioParser, UnknownProvisioningMode) {
  expect_error("name x\nprovisioning eager\n", 2,
               "expected preallocated or streamed");
}

TEST(ScenarioParser, ArrivalTicksRequiresStreamed) {
  // Params::validate() rejects the combination at end-of-parse.
  EXPECT_THROW(parse("name x\narrival-ticks 10\n"), ParseError);
}

TEST(ScenarioParser, ProvisioningIsSimOnly) {
  expect_error("name x\nsubstrate chord\nticks 10\nprovisioning streamed\n",
               4, "only applies to the sim substrate");
}

TEST(ScenarioParser, LoadMissingFileThrows) {
  EXPECT_THROW(Script::load("/nonexistent/path.scn"), std::runtime_error);
}

}  // namespace
}  // namespace dhtlb::scenario
