// Scenario-fuzzer unit suite: generator determinism, the
// generate → parse → re-emit byte-identity gate, per-profile event-kind
// coverage over a 100-seed sweep, shrinker convergence + predicate
// preservation, the `until 0` grammar fix, and the end-to-end
// injected-bug campaign (the runner must catch a corrupted world and
// shrink the failing script to <= 5 blocks).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "scenario/fuzz.hpp"
#include "scenario/script.hpp"

namespace dhtlb::scenario {
namespace {

using Kind = Event::Kind;

constexpr std::uint64_t kSweepSeeds = 100;

// The per-profile vocabulary the generator promises to draw from
// (src/scenario/fuzz.cpp profile_specs) — the coverage sweep asserts
// every kind actually appears, so a weight-table typo cannot silently
// drop an event family from the campaign.
std::set<Kind> expected_kinds(std::string_view profile) {
  if (profile == "churn-burst") {
    return {Kind::kSetChurn, Kind::kJoin, Kind::kLeave, Kind::kInjectUniform};
  }
  if (profile == "storm") {
    return {Kind::kJoin, Kind::kLeave, Kind::kCrash};
  }
  if (profile == "hotspot") {
    return {Kind::kInjectHotspot, Kind::kInjectUniform};
  }
  if (profile == "strategy-swap") {
    return {Kind::kSetStrategy, Kind::kSetThreshold, Kind::kJoin,
            Kind::kInjectUniform};
  }
  if (profile == "chord-faults") {
    return {Kind::kFault, Kind::kLookup, Kind::kJoin, Kind::kLeave,
            Kind::kCrash};
  }
  if (profile == "streamed") {
    return {Kind::kJoin, Kind::kLeave, Kind::kCrash, Kind::kInjectUniform,
            Kind::kInjectHotspot};
  }
  if (profile == "mixed") {
    return {Kind::kJoin,          Kind::kLeave,      Kind::kCrash,
            Kind::kInjectUniform, Kind::kInjectHotspot, Kind::kSetChurn,
            Kind::kSetThreshold,  Kind::kSetStrategy};
  }
  ADD_FAILURE() << "no expectation for profile " << profile;
  return {};
}

TEST(FuzzGenerator, ProfileListing) {
  const std::vector<std::string_view> profiles = fuzz_profiles();
  const std::vector<std::string_view> expected = {
      "churn-burst", "storm",    "hotspot", "strategy-swap",
      "chord-faults", "streamed", "mixed"};
  EXPECT_EQ(profiles, expected);
  for (const std::string_view profile : profiles) {
    EXPECT_TRUE(is_fuzz_profile(profile)) << profile;
  }
  EXPECT_FALSE(is_fuzz_profile("no-such-profile"));
  EXPECT_THROW(generate_script("no-such-profile", 1), std::invalid_argument);
}

// Same (profile, seed) → byte-identical text, every time; different
// seeds must not collapse onto one script.
TEST(FuzzGenerator, DeterministicFromProfileAndSeed) {
  for (const std::string_view profile : fuzz_profiles()) {
    const std::string once = emit_script(generate_script(profile, 7));
    const std::string twice = emit_script(generate_script(profile, 7));
    EXPECT_EQ(once, twice) << profile;
    EXPECT_NE(once, emit_script(generate_script(profile, 8))) << profile;
  }
}

// The tentpole grammar contract: canonical text parses, and re-emitting
// the parsed form reproduces the text byte for byte.  Any drift between
// generator, emitter and parser shows up here across the sweep.
TEST(FuzzGenerator, GenerateParseReEmitIsByteIdentical) {
  for (const std::string_view profile : fuzz_profiles()) {
    for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
      const Script script = generate_script(profile, seed);
      const std::string text = emit_script(script);
      Script parsed;
      ASSERT_NO_THROW(parsed = Script::parse(text, "<fuzz>"))
          << profile << " seed " << seed << "\n" << text;
      EXPECT_EQ(emit_script(parsed), text) << profile << " seed " << seed;
    }
  }
}

TEST(FuzzGenerator, EveryEventKindAppearsAcrossSweep) {
  for (const std::string_view profile : fuzz_profiles()) {
    std::set<Kind> seen;
    for (std::uint64_t seed = 0; seed < kSweepSeeds; ++seed) {
      for (const Block& block : generate_script(profile, seed).blocks) {
        for (const Event& event : block.events) seen.insert(event.kind);
      }
    }
    EXPECT_EQ(seen, expected_kinds(profile)) << profile;
  }
}

// Regression for the grammar-drift fix: `until 0` used to parse into
// the internal open-ended sentinel, silently turning a bounded block
// into a run-forever one.  It must now be a parse error.
TEST(FuzzGenerator, UntilZeroIsRejected) {
  const std::string text =
      "name until_zero\n"
      "nodes 8\n"
      "tasks 100\n"
      "ticks 20\n"
      "\n"
      "every 5 from 1 until 0\n"
      "  join 1\n"
      "end\n";
  EXPECT_THROW(Script::parse(text, "<test>"), ParseError);
}

// Shrinker contract on a synthetic failure: a marker event is planted
// in a generated script; the predicate "script still contains the
// marker" must survive shrinking, and the result must be the minimal
// one-block, one-event script.
TEST(FuzzShrinker, ConvergesAndPreservesPredicate) {
  Script script = generate_script("mixed", 3);
  ASSERT_GE(script.blocks.size(), 3u);
  Event marker;
  marker.kind = Kind::kInjectHotspot;
  marker.count = 777;
  marker.value = 0.25;
  script.blocks.back().events.push_back(marker);

  const auto has_marker = [](const Script& s) {
    for (const Block& block : s.blocks) {
      for (const Event& event : block.events) {
        if (event.kind == Kind::kInjectHotspot && event.count == 777) {
          return true;
        }
      }
    }
    return false;
  };
  ASSERT_TRUE(has_marker(script));

  const Script shrunk = shrink_script(script, has_marker);
  EXPECT_TRUE(has_marker(shrunk));
  ASSERT_EQ(shrunk.blocks.size(), 1u);
  ASSERT_EQ(shrunk.blocks[0].events.size(), 1u);
  EXPECT_EQ(shrunk.blocks[0].events[0].kind, Kind::kInjectHotspot);
  EXPECT_EQ(shrunk.blocks[0].events[0].count, 777u);
  // Every shrink candidate is revalidated through parse(emit(...)), so
  // the minimized script must itself round-trip.
  EXPECT_NO_THROW(Script::parse(emit_script(shrunk), "<shrunk>"));
}

// A predicate the input does not satisfy means there is nothing to
// shrink: the script comes back unchanged.
TEST(FuzzShrinker, ReturnsInputWhenPredicateRejectsIt) {
  const Script script = generate_script("storm", 5);
  const Script same =
      shrink_script(script, [](const Script&) { return false; });
  EXPECT_EQ(emit_script(same), emit_script(script));
}

// End-to-end campaign oracle: run the real dhtlb_fuzz binary with the
// test-only world corruptor armed (DHTLB_FUZZ_CORRUPT).  The batch must
// FAIL, and the minimized repro it writes must be <= 5 blocks — the
// acceptance bar for "an injected invariant bug is caught and shrunk".
TEST(FuzzCampaign, InjectedCorruptionIsCaughtAndShrunk) {
  namespace fs = std::filesystem;
  const fs::path out_dir =
      fs::path(::testing::TempDir()) / "dhtlb_fuzz_corruptor";
  fs::remove_all(out_dir);
  fs::create_directories(out_dir);

  const std::string cmd =
      std::string("DHTLB_FUZZ_CORRUPT=3 '") + DHTLB_FUZZ_BIN +
      "' --profile mixed --seed 99 --count 1 --audit --threads-matrix 1"
      " --quiet --out-dir '" +
      out_dir.string() + "' > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  EXPECT_NE(rc, 0) << "corrupted batch must fail";

  fs::path minimized;
  fs::path repro;
  for (const auto& entry : fs::directory_iterator(out_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".minimized.scn")) minimized = entry.path();
    if (name.ends_with(".REPRO.txt")) repro = entry.path();
  }
  ASSERT_FALSE(minimized.empty()) << "no minimized repro in " << out_dir;
  EXPECT_FALSE(repro.empty()) << "no repro note in " << out_dir;

  const Script script = Script::load(minimized.string());
  EXPECT_LE(script.blocks.size(), 5u)
      << "shrinker left " << script.blocks.size() << " blocks";
  fs::remove_all(out_dir);
}

}  // namespace
}  // namespace dhtlb::scenario
