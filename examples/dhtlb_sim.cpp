// dhtlb_sim — the general-purpose command-line driver: run any paper (or
// extension) configuration without writing C++, with multi-trial
// aggregation, workload snapshots, and CSV export.
//
// Examples:
//   dhtlb_sim --strategy random-injection --nodes 1000 --tasks 100000
//   dhtlb_sim --strategy churn --churn 0.01 --trials 20
//   dhtlb_sim --strategy invitation --het --work-measure strength
//             --snapshots 0,5,35 --csv results/invite   (one line)
//   dhtlb_sim --list-strategies
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "lb/factory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/script.hpp"
#include "scenario/vm.hpp"
#include "sim/engine.hpp"
#include "support/cli.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

/// Open observability sinks from --trace/--metrics.  Returns false (with
/// a message on stderr) when a file cannot be created.
struct CliSinks {
  std::ofstream trace_file;
  std::ofstream metrics_file;
  std::unique_ptr<dhtlb::obs::TraceSink> trace;
  std::unique_ptr<dhtlb::obs::MetricsRegistry> metrics;

  bool open(const std::string& trace_path, const std::string& metrics_path) {
    if (!trace_path.empty()) {
      trace_file.open(trace_path, std::ios::binary | std::ios::trunc);
      if (!trace_file) {
        std::fprintf(stderr, "error: cannot write trace file %s\n",
                     trace_path.c_str());
        return false;
      }
      trace = std::make_unique<dhtlb::obs::TraceSink>(trace_file);
    }
    if (!metrics_path.empty()) {
      metrics_file.open(metrics_path, std::ios::binary | std::ios::trunc);
      if (!metrics_file) {
        std::fprintf(stderr, "error: cannot write metrics file %s\n",
                     metrics_path.c_str());
        return false;
      }
      metrics = std::make_unique<dhtlb::obs::MetricsRegistry>(metrics_file);
    }
    return true;
  }

  void finish(const std::string& trace_path,
              const std::string& metrics_path) {
    if (trace) {
      trace->close();
      std::printf("wrote trace %s (%llu events; open in chrome://tracing)\n",
                  trace_path.c_str(),
                  static_cast<unsigned long long>(trace->event_count()));
    }
    if (metrics) {
      metrics->flush();
      std::printf("wrote metrics %s (%llu rows)\n", metrics_path.c_str(),
                  static_cast<unsigned long long>(metrics->rows_written()));
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dhtlb;

  support::CliParser cli;
  cli.add_flag("strategy", "name", "random-injection",
               "balancing strategy (see --list-strategies)");
  cli.add_flag("nodes", "n", "1000", "initial network size");
  cli.add_flag("tasks", "n", "100000", "job size in tasks");
  cli.add_flag("churn", "rate", "0", "per-tick leave/join probability");
  cli.add_flag("het", "", "", "heterogeneous strengths U{1..max-sybils}");
  cli.add_flag("work-measure", "one|strength", "one",
               "tasks consumed per tick");
  cli.add_flag("threshold", "tasks", "0", "sybilThreshold");
  cli.add_flag("successors", "k", "5", "successor/predecessor list size");
  cli.add_flag("max-sybils", "k", "5", "Sybil cap / strength ceiling");
  cli.add_flag("mark-failed-ranges", "", "",
               "neighbor injection: skip arcs that yielded nothing");
  cli.add_flag("trials", "n", "1", "independent trials to aggregate");
  cli.add_flag("seed", "s", "", "base seed (default: DHTLB_SEED)");
  cli.add_flag("snapshots", "t1,t2,...", "",
               "capture workload snapshots at these ticks (1 trial)");
  cli.add_flag("csv", "prefix", "",
               "write <prefix>_summary.csv (+ per-snapshot CSVs)");
  cli.add_flag("scenario", "file", "",
               "run a .scn scenario script instead of a single config "
               "(honors --seed; other flags come from the script)");
  cli.add_flag("trace", "file", "",
               "write a Chrome trace_event JSON (scenario runs trace "
               "directly; plain configs trace one extra trial at the "
               "base seed)");
  cli.add_flag("metrics", "file", "",
               "write per-tick metrics JSONL (same run selection as "
               "--trace)");
  cli.add_flag("list-strategies", "", "", "print strategy names and exit");
  cli.add_flag("help", "", "", "show this help");

  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n", cli.error().c_str());
    return 2;
  }
  if (cli.get_bool("help")) {
    std::printf("%s", cli.help("dhtlb_sim",
                               "Simulate autonomous DHT load balancing "
                               "(Rosen et al. 2021 reproduction).")
                          .c_str());
    return 0;
  }
  if (cli.get_bool("list-strategies")) {
    std::printf("paper strategies:\n");
    for (const auto name : lb::strategy_names()) {
      std::printf("  %s\n", std::string(name).c_str());
    }
    std::printf("extensions (SS VII future work):\n");
    for (const auto name : lb::extension_strategy_names()) {
      std::printf("  %s\n", std::string(name).c_str());
    }
    return 0;
  }

  if (!cli.get("scenario").empty()) {
    try {
      const auto script = scenario::Script::load(cli.get("scenario"));
      const std::uint64_t seed = scenario::resolve_seed(
          script, cli.has("seed"),
          cli.has("seed") ? cli.get_u64("seed") : 0, support::env_seed());
      const std::string trace_path =
          cli.has("trace") ? cli.get("trace") : script.trace_path;
      const std::string metrics_path =
          cli.has("metrics") ? cli.get("metrics") : script.metrics_path;
      CliSinks sinks;
      if (!sinks.open(trace_path, metrics_path)) return 1;
      const auto result = scenario::run_scenario(
          script, seed, false,
          {sinks.trace.get(), sinks.metrics.get()});
      std::printf("%s (seed %llu)\n", result.experiment.c_str(),
                  static_cast<unsigned long long>(seed));
      support::TextTable table({"metric", "value"});
      for (const auto& rec : result.records) {
        table.add_row({rec.metric, support::format_fixed(rec.value, 3)});
      }
      std::printf("%s", table.render().c_str());
      sinks.finish(trace_path, metrics_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    return 0;
  }

  sim::Params params;
  params.initial_nodes = cli.get_u64("nodes");
  params.total_tasks = cli.get_u64("tasks");
  params.churn_rate = cli.get_double("churn");
  params.heterogeneous = cli.get_bool("het");
  params.work_measure = cli.get("work-measure") == "strength"
                            ? sim::WorkMeasure::kStrengthPerTick
                            : sim::WorkMeasure::kOneTaskPerTick;
  params.sybil_threshold = cli.get_u64("threshold");
  params.num_successors = cli.get_u64("successors");
  params.max_sybils = static_cast<unsigned>(cli.get_u64("max-sybils"));
  params.mark_failed_ranges = cli.get_bool("mark-failed-ranges");

  const std::string strategy = cli.get("strategy");
  const std::uint64_t seed =
      cli.has("seed") ? cli.get_u64("seed") : support::env_seed();
  const std::size_t trials = cli.get_u64("trials");
  const auto snapshot_ticks = cli.get_u64_list("snapshots");

  try {
    params.validate();
    (void)lb::make_strategy(strategy);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("config: %s\nstrategy: %s, %zu trial(s), seed %llu\n\n",
              params.describe().c_str(), strategy.c_str(), trials,
              static_cast<unsigned long long>(seed));

  support::ThreadPool pool(support::env_threads());
  const exp::Aggregate agg =
      exp::run_trials(params, strategy, trials, seed, &pool);

  // Observability for plain configs: one dedicated single trial at the
  // base seed, instrumented.  Kept separate from the aggregate trials so
  // multi-threaded trial scheduling cannot interleave sink writes — the
  // output stays byte-deterministic at any DHTLB_THREADS.
  if (cli.has("trace") || cli.has("metrics")) {
    CliSinks sinks;
    if (!sinks.open(cli.get("trace"), cli.get("metrics"))) return 1;
    sim::Engine engine(params, seed, lb::make_strategy(strategy));
    engine.set_trace(sinks.trace.get());
    engine.set_metrics(sinks.metrics.get());
    (void)engine.run();
    sinks.finish(cli.get("trace"), cli.get("metrics"));
  }

  support::TextTable table({"metric", "value"});
  table.add_row({"runtime factor (mean)",
                 support::format_fixed(agg.runtime_factor.mean, 3)});
  table.add_row({"runtime factor (min..max)",
                 support::format_fixed(agg.runtime_factor.min, 3) + " .. " +
                     support::format_fixed(agg.runtime_factor.max, 3)});
  table.add_row(
      {"ticks (mean)", support::format_fixed(agg.ticks.mean, 1)});
  table.add_row({"completion rate",
                 support::format_fixed(agg.completion_rate * 100.0, 1) + "%"});
  table.add_row({"sybils/trial",
                 support::format_fixed(agg.mean_sybils_created, 1)});
  table.add_row({"leaves/trial", support::format_fixed(agg.mean_leaves, 1)});
  table.add_row({"queries/trial",
                 support::format_fixed(agg.mean_workload_queries, 1)});
  std::printf("%s", table.render().c_str());

  const std::string csv_prefix = cli.get("csv");
  if (!csv_prefix.empty()) {
    const auto row = exp::to_row("cli", params.describe(), agg);
    if (!exp::write_file(csv_prefix + "_summary.csv",
                         exp::rows_to_csv({row}))) {
      std::fprintf(stderr, "error: cannot write %s_summary.csv\n",
                   csv_prefix.c_str());
      return 1;
    }
    std::printf("\nwrote %s_summary.csv\n", csv_prefix.c_str());
  }

  if (!snapshot_ticks.empty()) {
    const auto run =
        exp::run_with_snapshots(params, strategy, seed, snapshot_ticks);
    for (const auto& snap : run.snapshots) {
      std::printf("\nsnapshot at tick %llu: %zu nodes, %llu tasks left\n",
                  static_cast<unsigned long long>(snap.tick),
                  snap.workloads.size(),
                  static_cast<unsigned long long>(snap.remaining_tasks));
      if (!csv_prefix.empty()) {
        const std::string path = csv_prefix + "_tick" +
                                 std::to_string(snap.tick) + ".csv";
        if (exp::write_file(path, exp::snapshot_to_csv(snap))) {
          std::printf("wrote %s\n", path.c_str());
        }
      }
    }
  }
  return 0;
}
