// P2P file-sharing scenario — the BitTorrent/IPFS-style use case from
// the paper's introduction, driven on the real Chord protocol substrate
// rather than the tick simulator.
//
// A swarm of peers stores file chunks keyed by SHA-1 of their names.
// Peers join and fail abruptly (churn) while lookups continue; the
// maintenance protocol keeps the ring consistent and we measure lookup
// cost and message traffic throughout.  Finally an under-loaded peer
// performs a Sybil placement (hash search, paper ref [21]) to take over
// part of a hot arc — the primitive behind every strategy in src/lb.
//
// Usage: filesharing_churn [peers] [chunks]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "chord/network.hpp"
#include "chord/sybil_placement.hpp"
#include "hashing/sha1.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace dhtlb;

  const std::size_t peers =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 64;
  const std::size_t chunks =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;
  support::Rng rng(support::env_seed());

  // Bootstrap the swarm.
  chord::Network net(5);
  const auto first = hashing::Sha1::hash_u64(rng());
  net.create(first);
  for (std::size_t i = 1; i < peers; ++i) {
    net.join(hashing::Sha1::hash_u64(rng()), first);
    net.stabilize(2);
  }
  net.stabilize(4);
  net.build_all_fingers();
  std::printf("swarm: %zu peers, ring consistent: %s\n", net.size(),
              net.ring_consistent() ? "yes" : "no");

  // Publish chunks: key = SHA1("<file>.part<i>"), owner = ring successor.
  std::map<chord::NodeId, std::uint64_t> stored;
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::string name =
        "ubuntu-24.04.iso.part" + std::to_string(i);
    const auto key = hashing::Sha1::hash_to_ring(name);
    ++stored[net.true_owner(key)];
  }
  std::uint64_t hottest = 0;
  chord::NodeId hot_peer;
  for (const auto& [peer, count] : stored) {
    if (count > hottest) {
      hottest = count;
      hot_peer = peer;
    }
  }
  std::printf("published %zu chunks; hottest peer %s stores %llu "
              "(fair share would be %llu)\n\n",
              chunks, hot_peer.to_short_hex().c_str(),
              static_cast<unsigned long long>(hottest),
              static_cast<unsigned long long>(chunks / peers));

  // Churn epochs: a few peers fail abruptly, a few join; lookups keep
  // resolving correctly after each maintenance settle.
  support::TextTable table({"epoch", "peers", "failed", "joined",
                            "mean hops", "messages", "lookups ok"});
  for (int epoch = 1; epoch <= 5; ++epoch) {
    auto ids = net.node_ids();
    std::size_t failed = 0, joined = 0;
    for (std::size_t i = 0; i < ids.size() / 16 + 1; ++i) {
      const auto victim = ids[rng.below(ids.size())];
      if (net.size() > 8 && net.contains(victim)) {
        net.fail(victim);
        ++failed;
      }
    }
    net.stabilize(6);
    for (std::size_t i = 0; i < failed; ++i) {
      const auto fresh = hashing::Sha1::hash_u64(rng());
      if (net.join(fresh, net.node_ids().front())) ++joined;
      net.stabilize(2);
    }
    net.stabilize(4);

    net.stats().reset();
    ids = net.node_ids();
    int ok = 0;
    double hops = 0.0;
    constexpr int kProbes = 200;
    for (int probe = 0; probe < kProbes; ++probe) {
      const auto key = hashing::Sha1::hash_to_ring(
          "ubuntu-24.04.iso.part" + std::to_string(rng.below(chunks)));
      const auto res = net.lookup(ids[rng.below(ids.size())], key);
      hops += res.hops;
      if (res.owner == net.true_owner(key)) ++ok;
    }
    table.add_row({std::to_string(epoch), std::to_string(net.size()),
                   std::to_string(failed), std::to_string(joined),
                   support::format_fixed(hops / kProbes, 2),
                   std::to_string(net.stats().total()),
                   std::to_string(ok) + "/" + std::to_string(kProbes)});
  }
  std::printf("%s\n", table.render().c_str());

  // Sybil placement into the hottest arc (if the hot peer survived the
  // churn epochs, otherwise into the current ring's widest visible arc).
  auto ids = net.node_ids();
  chord::NodeId target = net.contains(hot_peer) ? hot_peer : ids.back();
  // The arc of `target` is (predecessor, target]; find the predecessor
  // from ground truth ordering.
  auto it = std::find(ids.begin(), ids.end(), target);
  const chord::NodeId pred =
      it == ids.begin() ? ids.back() : *std::prev(it);
  const auto placement = chord::place_by_hash_search(pred, target, rng);
  if (placement) {
    std::printf("sybil placement into the hot arc took %llu SHA-1 draws "
                "(paper ref [21]: cheap)\n",
                static_cast<unsigned long long>(placement->attempts));
    net.join(placement->id, net.node_ids().front());
    net.stabilize(6);
    std::uint64_t relocated = 0;
    for (std::size_t i = 0; i < chunks; ++i) {
      const auto key = hashing::Sha1::hash_to_ring(
          "ubuntu-24.04.iso.part" + std::to_string(i));
      if (net.true_owner(key) == placement->id) ++relocated;
    }
    std::printf("the Sybil now serves %llu of the hot peer's chunks\n",
                static_cast<unsigned long long>(relocated));
  }
  return 0;
}
