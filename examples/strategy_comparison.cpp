// Compares all six balancing policies on the same network, averaged over
// several trials, and prints a paper-style results table plus the final
// workload-distribution comparison (the paper's Figure 9 view).
//
// Usage: strategy_comparison [nodes] [tasks] [trials]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "exp/experiment.hpp"
#include "lb/factory.hpp"
#include "stats/histogram.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "viz/ascii_hist.hpp"

int main(int argc, char** argv) {
  using namespace dhtlb;

  sim::Params params;
  params.initial_nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  params.total_tasks = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50'000;
  const std::size_t trials =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 10;
  const std::uint64_t seed = support::env_seed();

  support::ThreadPool pool(support::env_threads());
  std::printf("config: %s, %zu trials\n\n", params.describe().c_str(), trials);

  support::TextTable table({"strategy", "runtime factor (mean)", "min", "max",
                            "sybils/trial", "leaves/trial"});
  for (const auto name : lb::strategy_names()) {
    sim::Params p = params;
    if (name == "churn") p.churn_rate = 0.01;
    const exp::Aggregate agg = exp::run_trials(p, name, trials, seed, &pool);
    table.add_row({std::string(name),
                   support::format_fixed(agg.runtime_factor.mean, 3),
                   support::format_fixed(agg.runtime_factor.min, 3),
                   support::format_fixed(agg.runtime_factor.max, 3),
                   support::format_fixed(agg.mean_sybils_created, 0),
                   support::format_fixed(agg.mean_leaves, 0)});
  }
  std::printf("%s\n", table.render().c_str());

  // Side-by-side workload distribution after 35 ticks, no strategy vs
  // random injection — the comparison the paper's Figure 8 draws.
  const auto none =
      exp::run_with_snapshots(params, "none", seed, {35});
  const auto random_injection =
      exp::run_with_snapshots(params, "random-injection", seed, {35});
  if (!none.snapshots.empty() && !random_injection.snapshots.empty()) {
    const auto left =
        stats::workload_histogram(none.snapshots[0].workloads, 12).bins();
    const auto right =
        stats::workload_histogram(random_injection.snapshots[0].workloads, 12)
            .bins();
    std::printf("workload distribution after 35 ticks:\n%s\n",
                viz::render_comparison(left, "no strategy", right,
                                       "random injection")
                    .c_str());
  }
  return 0;
}
