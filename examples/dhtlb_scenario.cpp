// dhtlb_scenario: runs a .scn scenario file deterministically and emits
// its metrics through the bench telemetry writer.
//
//   dhtlb_scenario scenarios/flash_crowd.scn
//   dhtlb_scenario scenarios/lossy_network.scn --seed 7
//   dhtlb_scenario scenarios/mass_failure.scn --check scenarios/goldens/BENCH_scenario_mass_failure.json
//   dhtlb_scenario scenarios/flash_crowd.scn --trace=t.json --metrics=m.jsonl
//
// The JSON output (BENCH_scenario_<name>.json, honoring DHTLB_BENCH_DIR
// and DHTLB_BENCH_JSON=0) is byte-stable for a fixed (file, seed) pair
// at any DHTLB_THREADS setting; --check compares it against a committed
// golden and exits nonzero on any byte difference, which is how CI
// regression-tests the scenario engine.
//
// --trace writes a Chrome trace_event JSON (open in chrome://tracing);
// --metrics writes per-tick metrics JSONL.  Both are deterministic for a
// fixed (file, seed) and byte-identical at any DHTLB_THREADS; both
// override the script's `trace`/`metrics` header keys, and observation
// never changes the telemetry (see OBSERVABILITY.md).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/script.hpp"
#include "scenario/vm.hpp"
#include "support/cli.hpp"
#include "support/env.hpp"

namespace {

using namespace dhtlb;

int fail(const std::string& message) {
  std::cerr << "dhtlb_scenario: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli;
  cli.add_flag("seed", "N", "", "override the RNG seed (default: the "
               "script's `seed` header, then DHTLB_SEED)");
  cli.add_flag("audit", "", "",
               "run the per-tick invariant auditor (sim substrate)");
  cli.add_flag("check", "FILE", "",
               "compare the telemetry JSON against a golden file and exit "
               "nonzero on any byte difference (implies no file output)");
  cli.add_flag("trace", "FILE", "",
               "write a Chrome trace_event JSON of the run (overrides the "
               "script's `trace` header)");
  cli.add_flag("metrics", "FILE", "",
               "write per-tick metrics JSONL (overrides the script's "
               "`metrics` header)");
  cli.add_flag("quiet", "", "", "suppress the metric table on stdout");
  cli.add_flag("help", "", "", "show this help");

  if (!cli.parse(argc, argv)) return fail(cli.error());
  if (cli.get_bool("help")) {
    std::cout << cli.help("dhtlb_scenario <scenario.scn>",
                          "Run a scripted scenario deterministically and "
                          "emit BENCH_scenario_<name>.json telemetry.");
    return 0;
  }
  if (cli.positionals().size() != 1) {
    return fail("expected exactly one scenario file (see --help)");
  }

  scenario::Script script;
  try {
    script = scenario::Script::load(cli.positionals()[0]);
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  const std::uint64_t seed = scenario::resolve_seed(
      script, cli.has("seed"), cli.has("seed") ? cli.get_u64("seed") : 0,
      support::env_seed());

  // Observability sinks: CLI flag first, then the script header key.
  const std::string trace_path =
      cli.has("trace") ? cli.get("trace") : script.trace_path;
  const std::string metrics_path =
      cli.has("metrics") ? cli.get("metrics") : script.metrics_path;
  std::ofstream trace_file;
  std::ofstream metrics_file;
  std::unique_ptr<obs::TraceSink> trace;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  if (!trace_path.empty()) {
    trace_file.open(trace_path, std::ios::binary | std::ios::trunc);
    if (!trace_file) return fail("cannot write trace file: " + trace_path);
    trace = std::make_unique<obs::TraceSink>(trace_file);
  }
  if (!metrics_path.empty()) {
    metrics_file.open(metrics_path, std::ios::binary | std::ios::trunc);
    if (!metrics_file) {
      return fail("cannot write metrics file: " + metrics_path);
    }
    metrics = std::make_unique<obs::MetricsRegistry>(metrics_file);
  }
  const scenario::ObsSinks sinks{trace.get(), metrics.get(), {}};

  const scenario::ScenarioResult result =
      scenario::run_scenario(script, seed, cli.get_bool("audit"), sinks);
  if (trace) trace->close();
  if (metrics) metrics->flush();
  const std::string json = bench::to_json(result.experiment, result.records);

  if (!cli.get_bool("quiet")) {
    std::cout << result.experiment << " (seed " << seed << ")\n";
    for (const bench::Record& rec : result.records) {
      std::printf("  %-28s %.17g\n", rec.metric.c_str(), rec.value);
    }
    if (trace) {
      std::cout << "wrote trace " << trace_path << " (" << trace->event_count()
                << " events; open in chrome://tracing)\n";
    }
    if (metrics) {
      std::cout << "wrote metrics " << metrics_path << " ("
                << metrics->rows_written() << " rows)\n";
    }
  }

  if (cli.has("check") && !cli.get("check").empty()) {
    const std::string golden_path = cli.get("check");
    std::ifstream golden_file(golden_path, std::ios::binary);
    if (!golden_file) return fail("cannot open golden: " + golden_path);
    std::ostringstream golden;
    golden << golden_file.rdbuf();
    if (golden.str() != json) {
      std::cerr << "dhtlb_scenario: telemetry differs from golden "
                << golden_path << "\n--- golden ---\n"
                << golden.str() << "--- got ---\n"
                << json;
      return 1;
    }
    std::cout << "golden match: " << golden_path << "\n";
    return 0;
  }

  if (bench::Telemetry::json_enabled()) {
    const std::string dir = support::env_string("DHTLB_BENCH_DIR", ".");
    const std::string path =
        dir + "/BENCH_" + result.experiment + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out) return fail("cannot write " + path);
    out << json;
    if (!cli.get_bool("quiet")) std::cout << "wrote " << path << "\n";
  }
  return 0;
}
