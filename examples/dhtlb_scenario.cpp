// dhtlb_scenario: runs a .scn scenario file deterministically and emits
// its metrics through the bench telemetry writer.
//
//   dhtlb_scenario scenarios/flash_crowd.scn
//   dhtlb_scenario scenarios/lossy_network.scn --seed 7
//   dhtlb_scenario scenarios/mass_failure.scn --check scenarios/goldens/BENCH_scenario_mass_failure.json
//
// The JSON output (BENCH_scenario_<name>.json, honoring DHTLB_BENCH_DIR
// and DHTLB_BENCH_JSON=0) is byte-stable for a fixed (file, seed) pair
// at any DHTLB_THREADS setting; --check compares it against a committed
// golden and exits nonzero on any byte difference, which is how CI
// regression-tests the scenario engine.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "scenario/script.hpp"
#include "scenario/vm.hpp"
#include "support/cli.hpp"
#include "support/env.hpp"

namespace {

using namespace dhtlb;

int fail(const std::string& message) {
  std::cerr << "dhtlb_scenario: " << message << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli;
  cli.add_flag("seed", "N", "", "override the RNG seed (default: the "
               "script's `seed` header, then DHTLB_SEED)");
  cli.add_flag("audit", "", "",
               "run the per-tick invariant auditor (sim substrate)");
  cli.add_flag("check", "FILE", "",
               "compare the telemetry JSON against a golden file and exit "
               "nonzero on any byte difference (implies no file output)");
  cli.add_flag("quiet", "", "", "suppress the metric table on stdout");
  cli.add_flag("help", "", "", "show this help");

  if (!cli.parse(argc, argv)) return fail(cli.error());
  if (cli.get_bool("help")) {
    std::cout << cli.help("dhtlb_scenario <scenario.scn>",
                          "Run a scripted scenario deterministically and "
                          "emit BENCH_scenario_<name>.json telemetry.");
    return 0;
  }
  if (cli.positionals().size() != 1) {
    return fail("expected exactly one scenario file (see --help)");
  }

  scenario::Script script;
  try {
    script = scenario::Script::load(cli.positionals()[0]);
  } catch (const std::exception& e) {
    return fail(e.what());
  }

  const std::uint64_t seed = scenario::resolve_seed(
      script, cli.has("seed"), cli.has("seed") ? cli.get_u64("seed") : 0,
      support::env_seed());

  const scenario::ScenarioResult result =
      scenario::run_scenario(script, seed, cli.get_bool("audit"));
  const std::string json = bench::to_json(result.experiment, result.records);

  if (!cli.get_bool("quiet")) {
    std::cout << result.experiment << " (seed " << seed << ")\n";
    for (const bench::Record& rec : result.records) {
      std::printf("  %-28s %.17g\n", rec.metric.c_str(), rec.value);
    }
  }

  if (cli.has("check") && !cli.get("check").empty()) {
    const std::string golden_path = cli.get("check");
    std::ifstream golden_file(golden_path, std::ios::binary);
    if (!golden_file) return fail("cannot open golden: " + golden_path);
    std::ostringstream golden;
    golden << golden_file.rdbuf();
    if (golden.str() != json) {
      std::cerr << "dhtlb_scenario: telemetry differs from golden "
                << golden_path << "\n--- golden ---\n"
                << golden.str() << "--- got ---\n"
                << json;
      return 1;
    }
    std::cout << "golden match: " << golden_path << "\n";
    return 0;
  }

  if (bench::Telemetry::json_enabled()) {
    const std::string dir = support::env_string("DHTLB_BENCH_DIR", ".");
    const std::string path =
        dir + "/BENCH_" + result.experiment + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out) return fail("cannot write " + path);
    out << json;
    if (!cli.get_bool("quiet")) std::cout << "wrote " << path << "\n";
  }
  return 0;
}
