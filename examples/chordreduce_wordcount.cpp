// ChordReduce-style MapReduce word count — the paper's motivating use
// case (§II): a MapReduce job organized entirely by a DHT, with the
// map/shuffle/reduce phases timed on the tick simulator under different
// balancing strategies.
//
// The computation is real: a synthetic corpus is chunked, each chunk is
// keyed by SHA-1 (chunk key = map-task key), intermediate words hash to
// reducer keys, and the final counts are verified against a serial word
// count.  The *timing* of each phase comes from the simulator, where
// the chunk/reducer keys land on node arcs exactly as the data would.
//
// Usage: chordreduce_wordcount [nodes] [chunks]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "hashing/sha1.hpp"
#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace dhtlb;

// A tiny Zipf-flavored vocabulary: common words dominate, like real text.
std::string pick_word(support::Rng& rng) {
  static const char* kVocab[] = {
      "the",  "of",    "and",   "to",      "in",     "a",       "is",
      "that", "chord", "node",  "task",    "ring",   "key",     "hash",
      "load", "sybil", "churn", "balance", "worker", "overlay"};
  constexpr std::size_t kN = sizeof(kVocab) / sizeof(kVocab[0]);
  // P(word i) ~ 1/(i+1): sample by rejection on the harmonic envelope.
  for (;;) {
    const std::size_t i = static_cast<std::size_t>(rng.below(kN));
    if (rng.uniform() < 1.0 / static_cast<double>(i + 1)) return kVocab[i];
  }
}

sim::RunResult time_phase(std::size_t nodes, std::uint64_t tasks,
                          const char* strategy, std::uint64_t seed) {
  sim::Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  if (std::string_view(strategy) == "churn") p.churn_rate = 0.01;
  sim::Engine engine(p, seed, lb::make_strategy(strategy));
  return engine.run();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  const std::size_t chunks =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 20'000;
  const std::size_t words_per_chunk = 40;
  const std::size_t reducers = nodes * 4;
  const std::uint64_t seed = support::env_seed();

  std::printf("job: %zu chunks x %zu words over %zu nodes, %zu reducers\n\n",
              chunks, words_per_chunk, nodes, reducers);

  // --- the actual computation (verified) ---------------------------------
  support::Rng rng(seed);
  std::map<std::string, std::uint64_t> truth;       // serial word count
  std::map<std::string, std::uint64_t> mapreduced;  // via map/shuffle/reduce
  std::vector<std::map<std::string, std::uint64_t>> reducer_inbox(reducers);

  for (std::size_t c = 0; c < chunks; ++c) {
    // Map task: count words within the chunk.
    std::map<std::string, std::uint64_t> local;
    for (std::size_t w = 0; w < words_per_chunk; ++w) {
      const std::string word = pick_word(rng);
      ++truth[word];
      ++local[word];
    }
    // Shuffle: each word's counts go to the reducer owning SHA1(word).
    for (const auto& [word, count] : local) {
      const auto key = hashing::Sha1::hash_to_ring(word);
      reducer_inbox[static_cast<std::size_t>(key.low64() % reducers)]
          [word] += count;
    }
  }
  for (const auto& inbox : reducer_inbox) {
    for (const auto& [word, count] : inbox) mapreduced[word] += count;
  }
  const bool correct = truth == mapreduced;
  std::printf("map/shuffle/reduce result %s the serial word count "
              "(%zu distinct words, %llu total)\n\n",
              correct ? "MATCHES" : "DIFFERS FROM", truth.size(),
              static_cast<unsigned long long>(
                  static_cast<std::uint64_t>(chunks) * words_per_chunk));

  // --- phase timing on the DHT -------------------------------------------
  // Map phase: one task per chunk; reduce phase: one task per reducer
  // key group.  Both key sets are SHA-1 placed, so both phases suffer
  // the same arc skew — and both benefit from balancing.
  support::TextTable table({"strategy", "map ticks", "map factor",
                            "reduce ticks", "reduce factor",
                            "job speedup vs none"});
  double none_total = 0.0;
  for (const char* strategy :
       {"none", "churn", "random-injection", "invitation"}) {
    const auto map_phase =
        time_phase(nodes, chunks, strategy, support::mix_seed(seed, 1));
    const auto reduce_phase =
        time_phase(nodes, reducers, strategy, support::mix_seed(seed, 2));
    const double total =
        static_cast<double>(map_phase.ticks + reduce_phase.ticks);
    if (std::string_view(strategy) == "none") none_total = total;
    table.add_row(
        {strategy, std::to_string(map_phase.ticks),
         support::format_fixed(map_phase.runtime_factor, 2),
         std::to_string(reduce_phase.ticks),
         support::format_fixed(reduce_phase.runtime_factor, 2),
         support::format_fixed(none_total / total, 2) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(map phase dominates: %zu chunks vs %zu reducer groups; "
              "the churn row runs at rate 0.01 per tick, the §VI-A "
              "setting)\n",
              chunks, reducers);
  return correct ? 0 : 1;
}
