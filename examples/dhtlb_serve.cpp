// dhtlb_serve: replays a .scn scenario (sim substrate) with the serving
// plane attached — N reader threads resolving key lookups against RCU
// ring snapshots while the engine churns — and emits the serve
// telemetry through the bench JSON writer.
//
//   dhtlb_serve scenarios/serve_churn_soak.scn
//   dhtlb_serve scenarios/flash_crowd.scn --readers 8 --traffic hotspot
//   dhtlb_serve scenarios/serve_churn_soak.scn --qps 5000 --seed 7
//   dhtlb_serve scenarios/serve_churn_soak.scn --check scenarios/goldens/BENCH_serve_churn_soak.json
//
// The JSON output (BENCH_serve_<name>.json, honoring DHTLB_BENCH_DIR
// and DHTLB_BENCH_JSON=0) contains the serve-plane results: lookup and
// batch counts, hop-count statistics, Sybil-absorption fraction, the
// load-seen-by-traffic skew (gini / max-over-mean over owner hits),
// and view-lifecycle counters.  Every one of those values is a pure
// function of (scenario, seed, --traffic, --qps): --readers and
// DHTLB_THREADS are execution knobs that never change a byte
// (scripts/check_determinism.sh replays the matrix to prove it).  The
// only wall-derived rows — per-lookup latency percentiles and the run
// wall — are recorded under the metric name "wall_ms" (which the value
// gate in scripts/compare_bench.py skips) and zeroed in
// DHTLB_BENCH_DETERMINISTIC mode, where latency capture is disabled
// entirely.  Lookups/sec is printed on stdout only, never in the JSON.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "harness/telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/script.hpp"
#include "scenario/vm.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/env.hpp"

namespace {

using namespace dhtlb;

int fail(const std::string& message) {
  std::cerr << "dhtlb_serve: " << message << "\n";
  return 1;
}

void push(std::vector<bench::Record>& out, const std::string& experiment,
          const std::string& cell, const std::string& metric, double value,
          std::uint64_t seed, double wall_ms = 0.0) {
  bench::Record rec;
  rec.experiment = experiment;
  rec.cell = cell;
  rec.metric = metric;
  rec.value = value;
  rec.wall_ms = wall_ms;
  rec.seed = seed;
  rec.trials = 1;
  out.push_back(rec);
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli;
  cli.add_flag("readers", "N", "4",
               "reader worker threads serving lookups (execution knob: "
               "results are byte-identical at any setting)");
  cli.add_flag("traffic", "MODEL", "zipf",
               "key distribution: uniform | zipf | hotspot");
  cli.add_flag("qps", "N", "2000",
               "lookups per tick (one batch per published ring view)");
  cli.add_flag("keys", "N", "100000",
               "zipf key-universe size (zipf traffic only; <= 2^22)");
  cli.add_flag("seed", "N", "", "override the RNG seed (default: the "
               "script's `seed` header, then DHTLB_SEED)");
  cli.add_flag("audit", "", "", "run the per-tick invariant auditor");
  cli.add_flag("check", "FILE", "",
               "compare the telemetry JSON against a golden file and exit "
               "nonzero on any byte difference (implies no file output)");
  cli.add_flag("trace", "FILE", "",
               "write a Chrome trace_event JSON including the serve "
               "plane's view_publish instants and counter series");
  cli.add_flag("metrics", "FILE", "",
               "write per-tick metrics JSONL including the serve catalog "
               "(see OBSERVABILITY.md)");
  cli.add_flag("quiet", "", "", "suppress the metric table on stdout");
  cli.add_flag("help", "", "", "show this help");

  if (!cli.parse(argc, argv)) return fail(cli.error());
  if (cli.get_bool("help")) {
    std::cout << cli.help(
        "dhtlb_serve <scenario.scn>",
        "Replay a sim scenario with concurrent key-lookup serving over "
        "RCU ring snapshots; emit BENCH_serve_<name>.json telemetry.");
    return 0;
  }
  if (cli.positionals().size() != 1) {
    return fail("expected exactly one scenario file (see --help)");
  }

  scenario::Script script;
  try {
    script = scenario::Script::load(cli.positionals()[0]);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  if (script.substrate != scenario::Substrate::kSim) {
    return fail("the serving plane attaches to the sim substrate only "
                "(script declares `substrate chord`)");
  }

  serve::Config config;
  config.readers = cli.get_u64("readers");
  if (config.readers == 0) return fail("--readers must be >= 1");
  const auto traffic = serve::parse_traffic(cli.get("traffic"));
  if (!traffic) return fail("unknown --traffic: " + cli.get("traffic"));
  config.traffic = *traffic;
  config.lookups_per_tick = cli.get_u64("qps");
  config.traffic_config.key_universe = cli.get_u64("keys");
  // Latency needs a real clock; deterministic mode trades it for
  // byte-stable output (the latency rows stay, zeroed).
  config.measure_latency = !bench::Telemetry::deterministic();

  const std::uint64_t seed = scenario::resolve_seed(
      script, cli.has("seed"), cli.has("seed") ? cli.get_u64("seed") : 0,
      support::env_seed());

  const std::string trace_path =
      cli.has("trace") ? cli.get("trace") : script.trace_path;
  const std::string metrics_path =
      cli.has("metrics") ? cli.get("metrics") : script.metrics_path;
  std::ofstream trace_file;
  std::ofstream metrics_file;
  std::unique_ptr<obs::TraceSink> trace;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  if (!trace_path.empty()) {
    trace_file.open(trace_path, std::ios::binary | std::ios::trunc);
    if (!trace_file) return fail("cannot write trace file: " + trace_path);
    trace = std::make_unique<obs::TraceSink>(trace_file);
  }
  if (!metrics_path.empty()) {
    metrics_file.open(metrics_path, std::ios::binary | std::ios::trunc);
    if (!metrics_file) {
      return fail("cannot write metrics file: " + metrics_path);
    }
    metrics = std::make_unique<obs::MetricsRegistry>(metrics_file);
  }

  serve::Service service(config, seed);
  service.set_metrics(metrics.get());
  service.set_trace(trace.get());

  scenario::ObsSinks sinks;
  sinks.trace = trace.get();
  sinks.metrics = metrics.get();
  sinks.configure_engine = [&service](sim::Engine& engine) {
    service.attach(engine);
  };

  const bench::WallTimer timer;
  const scenario::ScenarioResult sim_result =
      scenario::run_scenario(script, seed, cli.get_bool("audit"), sinks);
  // The engine is gone; the final batch may still be in flight against
  // the last published view — drain() is the run's closing barrier.
  service.drain();
  const double wall_ms =
      bench::Telemetry::deterministic() ? 0.0 : timer.elapsed_ms();
  if (trace) trace->close();
  if (metrics) metrics->flush();

  const serve::Report rep = service.report();
  const std::string experiment = "serve_" + script.name;
  const std::string cell(serve::traffic_name(config.traffic));

  // NOTE: no record carries --readers or DHTLB_THREADS — the whole file
  // must byte-compare across the (threads x readers) matrix.
  std::vector<bench::Record> records;
  push(records, experiment, cell, "lookups",
       static_cast<double>(rep.lookups), seed);
  push(records, experiment, cell, "batches",
       static_cast<double>(rep.batches), seed);
  push(records, experiment, cell, "hops_mean", rep.hops_mean, seed);
  push(records, experiment, cell, "hops_p50", rep.hops_p50, seed);
  push(records, experiment, cell, "hops_p99", rep.hops_p99, seed);
  push(records, experiment, cell, "hops_max",
       static_cast<double>(rep.hops_max), seed);
  push(records, experiment, cell, "sybil_hit_fraction",
       rep.sybil_hit_fraction, seed);
  push(records, experiment, cell, "owners_hit",
       static_cast<double>(rep.owners_hit), seed);
  push(records, experiment, cell, "owner_hits_gini", rep.owner_hits_gini,
       seed);
  push(records, experiment, cell, "owner_hits_max_over_mean",
       rep.owner_hits_max_over_mean, seed);
  push(records, experiment, cell, "views_published",
       static_cast<double>(rep.views.published), seed);
  push(records, experiment, cell, "views_reclaimed",
       static_cast<double>(rep.views.reclaimed), seed);
  push(records, experiment, cell, "views_retire_depth_max",
       static_cast<double>(rep.views.retire_depth_max), seed);
  // Wall-derived rows: metric "wall_ms" so compare_bench.py's value
  // gate skips them; zero in deterministic mode.
  push(records, experiment, cell + "/latency_p50_ns", "wall_ms",
       rep.latency_p50_ns, seed, wall_ms);
  push(records, experiment, cell + "/latency_p99_ns", "wall_ms",
       rep.latency_p99_ns, seed, wall_ms);
  const std::string json = bench::to_json(experiment, records);

  if (!cli.get_bool("quiet")) {
    std::cout << experiment << " (seed " << seed << ", traffic " << cell
              << ", " << sim_result.experiment << ")\n";
    for (const bench::Record& rec : records) {
      std::printf("  %-28s %.17g\n",
                  (rec.metric == "wall_ms" ? rec.cell : rec.metric).c_str(),
                  rec.value);
    }
    if (wall_ms > 0.0) {
      std::printf("  %-28s %.0f\n", "lookups_per_sec",
                  static_cast<double>(rep.lookups) / (wall_ms / 1000.0));
      std::printf("  %-28s %.3f\n", "wall_ms", wall_ms);
    }
    if (trace) {
      std::cout << "wrote trace " << trace_path << " ("
                << trace->event_count()
                << " events; open in chrome://tracing)\n";
    }
    if (metrics) {
      std::cout << "wrote metrics " << metrics_path << " ("
                << metrics->rows_written() << " rows)\n";
    }
  }

  if (cli.has("check") && !cli.get("check").empty()) {
    const std::string golden_path = cli.get("check");
    std::ifstream golden_file(golden_path, std::ios::binary);
    if (!golden_file) return fail("cannot open golden: " + golden_path);
    std::ostringstream golden;
    golden << golden_file.rdbuf();
    if (golden.str() != json) {
      std::cerr << "dhtlb_serve: telemetry differs from golden "
                << golden_path << "\n--- golden ---\n"
                << golden.str() << "--- got ---\n"
                << json;
      return 1;
    }
    std::cout << "golden match: " << golden_path << "\n";
    return 0;
  }

  if (bench::Telemetry::json_enabled()) {
    const std::string dir = support::env_string("DHTLB_BENCH_DIR", ".");
    const std::string path = dir + "/BENCH_" + experiment + ".json";
    std::ofstream out(path, std::ios::binary);
    if (!out) return fail("cannot write " + path);
    out << json;
    if (!cli.get_bool("quiet")) std::cout << "wrote " << path << "\n";
  }
  return 0;
}
