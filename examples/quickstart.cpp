// Quickstart: simulate one distributed computation on a Chord DHT with
// and without autonomous load balancing, and print the speedup.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "sim/params.hpp"
#include "stats/load_metrics.hpp"

int main() {
  using namespace dhtlb;

  // A 1000-node network given a 100,000-task job — the configuration the
  // paper uses for its workload-distribution figures.
  sim::Params params;
  params.initial_nodes = 1000;
  params.total_tasks = 100'000;

  std::printf("network: %s\n", params.describe().c_str());
  std::printf("ideal runtime: %llu ticks\n\n",
              static_cast<unsigned long long>(params.total_tasks /
                                              params.initial_nodes));

  const std::uint64_t seed = 42;
  for (const char* strategy :
       {"none", "churn", "random-injection", "invitation"}) {
    sim::Params p = params;
    if (std::string_view(strategy) == "churn") p.churn_rate = 0.01;
    sim::Engine engine(p, seed, lb::make_strategy(strategy));

    // Peek at the starting imbalance (identical across strategies: the
    // same seed builds the same ring and task assignment).
    const auto initial = engine.world().alive_workloads();
    const sim::RunResult result = engine.run();

    std::printf("%-26s %6llu ticks   runtime factor %.3f", strategy,
                static_cast<unsigned long long>(result.ticks),
                result.runtime_factor);
    if (std::string_view(strategy) == "none") {
      std::printf("   (initial Gini %.3f, max/mean %.1f)",
                  stats::gini(initial), stats::max_over_mean(initial));
    }
    if (result.strategy_counters.sybils_created > 0) {
      std::printf("   (%llu sybils created)",
                  static_cast<unsigned long long>(
                      result.strategy_counters.sybils_created));
    }
    if (result.leaves > 0) {
      std::printf("   (%llu leaves, %llu joins)",
                  static_cast<unsigned long long>(result.leaves),
                  static_cast<unsigned long long>(result.joins));
    }
    std::printf("\n");
  }
  std::printf(
      "\nA runtime factor of 1.0 is the ideal (perfectly balanced) time.\n");
  return 0;
}
