// Heterogeneous volunteer-computing cluster — the Folding@Home-style
// scenario from the paper's introduction: machines of wildly different
// strength share one job, stronger machines consume more tasks per tick
// and may run more Sybils.
//
// Demonstrates: heterogeneous Params, strength-based work measurement,
// per-strength runtime contributions, and the paper's finding that
// balancing gains are smaller (and wide strength disparity hurts).
//
// Usage: heterogeneous_cluster [nodes] [tasks]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "stats/load_metrics.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace dhtlb;

  sim::Params params;
  params.initial_nodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 500;
  params.total_tasks =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100'000;
  params.heterogeneous = true;
  params.work_measure = sim::WorkMeasure::kStrengthPerTick;
  const std::uint64_t seed = support::env_seed();

  std::printf("cluster: %s\n\n", params.describe().c_str());

  // Strength census of this seed's population.
  {
    support::Rng probe_rng(seed);
    const sim::World w(params, probe_rng);
    std::map<unsigned, int> census;
    std::uint64_t capacity = 0;
    for (const auto idx : w.alive_indices()) {
      ++census[w.physical(idx).strength];
      capacity += w.work_per_tick(idx);
    }
    support::TextTable table({"strength", "machines", "tasks/tick each"});
    for (const auto& [strength, count] : census) {
      table.add_row({std::to_string(strength), std::to_string(count),
                     std::to_string(strength)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("aggregate capacity: %llu tasks/tick -> ideal %llu ticks\n\n",
                static_cast<unsigned long long>(capacity),
                static_cast<unsigned long long>(
                    (params.total_tasks + capacity - 1) / capacity));
  }

  // Run the job with each strategy and with narrow vs wide strength
  // disparity (maxSybils 5 vs 10) — the paper's §VI-B.1 finding.
  support::TextTable results({"strategy", "maxSybils (disparity)",
                              "ticks", "runtime factor", "final gini"});
  for (const unsigned disparity : {5u, 10u}) {
    for (const char* strategy : {"none", "random-injection", "invitation"}) {
      sim::Params p = params;
      p.max_sybils = disparity;
      sim::Engine engine(p, seed, lb::make_strategy(strategy));
      engine.request_snapshots({35});
      const auto r = engine.run();
      const double g = r.snapshots.empty()
                           ? 0.0
                           : stats::gini(r.snapshots[0].workloads);
      results.add_row({strategy, std::to_string(disparity),
                       std::to_string(r.ticks),
                       support::format_fixed(r.runtime_factor, 3),
                       support::format_fixed(g, 3)});
    }
  }
  std::printf("%s\n", results.render().c_str());
  std::printf(
      "Expected shape (paper SS VI-B): balancing still helps a heterogeneous\n"
      "cluster, but less than a homogeneous one, and the wider strength\n"
      "range (maxSybils 10) is slower than the narrow one.\n");
  return 0;
}
