// dhtlb_fuzz: the scenario-fuzzing campaign driver.
//
// Batch mode generates seeded scripts and runs each one in a child
// process per thread count, checking two oracles on every run: the
// per-tick invariant auditor (--audit) and cross-thread telemetry
// byte-identity.  On the first failure it ddmin-shrinks the script
// against the same child-run predicate and writes the failing + the
// minimized .scn next to a REPRO.txt into --out-dir, then exits 1.
//
//   dhtlb_fuzz --profile mixed --seed 1337 --count 100 --audit
//   dhtlb_fuzz --profile chord-faults --seed 7 --count 20
//       --threads-matrix 1,4 --out-dir fuzz-out
//   dhtlb_fuzz --profile storm --seed 3 --count 10 --emit-dir corpus
//       --emit-only          # corpus generation, no runs
//   dhtlb_fuzz --run-file corpus/fuzz_storm_123.scn --audit
//
// Scripts are pure functions of (profile, seed): script i of a batch
// uses seed mix_seed(--seed, --index + i), carries that seed in its
// header, and is byte-identical on every platform — so a REPRO.txt line
// like `--seed S --index i --count 1` replays the exact failure.
//
// Child runs isolate the parent from DHTLB_CHECK aborts (the auditor's
// failure mode) and give each thread count its own DHTLB_THREADS
// environment.  DHTLB_FUZZ_CORRUPT=<tick> arms a test-only world
// corruptor in --run-file mode (first post-tick at or after <tick>),
// which is how CI proves the lane catches and shrinks a real invariant
// break end to end.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/fuzz.hpp"
#include "scenario/script.hpp"
#include "scenario/vm.hpp"
#include "sim/engine.hpp"
#include "sim/world_corruptor.hpp"
#include "support/cli.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace {

using namespace dhtlb;
namespace fs = std::filesystem;

int fail(const std::string& message) {
  std::cerr << "dhtlb_fuzz: " << message << "\n";
  return 1;
}

bool write_file(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string shell_quote(const std::string& s) {
  std::string quoted = "'";
  for (const char c : s) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += "'";
  return quoted;
}

/// Path of this very binary (children re-invoke it in --run-file mode).
std::string self_exe(const char* argv0) {
  std::error_code ec;
  const fs::path proc = fs::read_symlink("/proc/self/exe", ec);
  if (!ec) return proc.string();
  return argv0;  // non-procfs fallback: argv[0] relative to the cwd
}

/// Runs one script file in a child at `threads` workers; returns the
/// child's exit status (nonzero = auditor abort or any other failure).
int run_child(const std::string& exe, const fs::path& scn, std::size_t threads,
              bool audit, const fs::path& telemetry_out,
              const fs::path& err_out) {
  std::string cmd = "DHTLB_THREADS=" + std::to_string(threads) + " " +
                    shell_quote(exe) + " --run-file " +
                    shell_quote(scn.string());
  if (audit) cmd += " --audit";
  cmd += " --telemetry-out " + shell_quote(telemetry_out.string());
  cmd += " > /dev/null 2> " + shell_quote(err_out.string());
  return std::system(cmd.c_str());
}

struct RunVerdict {
  bool failed = false;
  std::string reason;
};

/// The batch oracle: run `script` once per thread count; fail on any
/// nonzero child exit or any cross-thread telemetry byte difference.
RunVerdict run_across_matrix(const std::string& exe,
                             const scenario::Script& script,
                             const std::vector<std::uint64_t>& threads,
                             bool audit, const fs::path& scratch) {
  RunVerdict verdict;
  const fs::path scn = scratch / "candidate.scn";
  if (!write_file(scn, scenario::emit_script(script))) {
    verdict.failed = true;
    verdict.reason = "cannot write " + scn.string();
    return verdict;
  }
  std::string reference;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const fs::path out = scratch / ("telemetry_t" +
                                    std::to_string(threads[i]) + ".json");
    const fs::path err = scratch / "child.err";
    const int status = run_child(exe, scn, threads[i], audit, out, err);
    if (status != 0) {
      verdict.failed = true;
      verdict.reason = "child exited with status " + std::to_string(status) +
                       " at DHTLB_THREADS=" + std::to_string(threads[i]) +
                       "\n--- child stderr ---\n" + read_file(err);
      return verdict;
    }
    const std::string telemetry = read_file(out);
    if (i == 0) {
      reference = telemetry;
    } else if (telemetry != reference) {
      verdict.failed = true;
      verdict.reason = "telemetry differs between DHTLB_THREADS=" +
                       std::to_string(threads[0]) + " and " +
                       std::to_string(threads[i]);
      return verdict;
    }
  }
  return verdict;
}

int run_file_mode(const support::CliParser& cli) {
  scenario::Script script;
  try {
    script = scenario::Script::load(cli.get("run-file"));
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  const std::uint64_t seed = scenario::resolve_seed(
      script, cli.has("seed"), cli.has("seed") ? cli.get_u64("seed") : 0,
      support::env_seed());

  // Test-only fault injection: at the first tick barrier at or after
  // DHTLB_FUZZ_CORRUPT, bump the world's remaining-task counter behind
  // the engine's back.  The post-tick hook runs before the engine's
  // audit fold, so an armed run must abort the same tick — proving the
  // fuzz lane's oracle actually fires.
  scenario::ObsSinks sinks;
  const std::uint64_t corrupt_tick =
      support::env_u64("DHTLB_FUZZ_CORRUPT", 0);
  if (corrupt_tick != 0 && script.substrate == scenario::Substrate::kSim) {
    sinks.configure_engine = [corrupt_tick](sim::Engine& engine) {
      auto fired = std::make_shared<bool>(false);
      engine.set_post_tick_hook(
          [corrupt_tick, fired, &engine](std::uint64_t tick) {
            if (*fired || tick < corrupt_tick) return;
            *fired = true;
            sim::testing::WorldCorruptor::inflate_remaining(engine.world());
          });
    };
  }

  const scenario::ScenarioResult result =
      scenario::run_scenario(script, seed, cli.get_bool("audit"), sinks);
  const std::string json = bench::to_json(result.experiment, result.records);
  if (cli.has("telemetry-out") && !cli.get("telemetry-out").empty()) {
    if (!write_file(cli.get("telemetry-out"), json)) {
      return fail("cannot write " + cli.get("telemetry-out"));
    }
  } else {
    std::cout << json;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli;
  cli.add_flag("profile", "NAME", "mixed",
               "generator profile (see --list-profiles)");
  cli.add_flag("seed", "N", "", "batch base seed (default DHTLB_SEED); "
               "script i uses mix_seed(seed, index + i)");
  cli.add_flag("index", "N", "0", "first script index of the batch");
  cli.add_flag("count", "N", "1", "number of scripts to generate");
  cli.add_flag("audit", "", "",
               "run every script under the per-tick invariant auditor");
  cli.add_flag("threads-matrix", "LIST", "1,2,8",
               "comma-separated DHTLB_THREADS values; telemetry must be "
               "byte-identical across all of them");
  cli.add_flag("out-dir", "DIR", "fuzz-out",
               "scratch + failure-artifact directory");
  cli.add_flag("emit-dir", "DIR", "",
               "also write every generated .scn here (corpus)");
  cli.add_flag("emit-only", "", "",
               "generate and write scripts without running them "
               "(requires --emit-dir)");
  cli.add_flag("run-file", "FILE", "",
               "run one scenario file in-process (child mode)");
  cli.add_flag("telemetry-out", "FILE", "",
               "with --run-file: write the telemetry JSON here");
  cli.add_flag("list-profiles", "", "", "list generator profiles and exit");
  cli.add_flag("quiet", "", "", "suppress per-script progress lines");
  cli.add_flag("help", "", "", "show this help");

  if (!cli.parse(argc, argv)) return fail(cli.error());
  if (cli.get_bool("help")) {
    std::cout << cli.help(
        "dhtlb_fuzz [--profile P --seed S --count N | --run-file F]",
        "Seeded scenario fuzzer: generates .scn timelines, runs each "
        "under the invariant auditor across a thread matrix, and "
        "shrinks failures to a minimized repro.");
    return 0;
  }
  if (cli.get_bool("list-profiles")) {
    for (const std::string_view name : scenario::fuzz_profiles()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (cli.has("run-file") && !cli.get("run-file").empty()) {
    return run_file_mode(cli);
  }

  const std::string profile = cli.get("profile");
  if (!scenario::is_fuzz_profile(profile)) {
    return fail("unknown profile '" + profile +
                "' (see --list-profiles)");
  }
  const std::uint64_t base_seed =
      cli.has("seed") ? cli.get_u64("seed") : support::env_seed();
  const std::uint64_t first_index = cli.get_u64("index");
  const std::uint64_t count = cli.get_u64("count");
  const bool audit = cli.get_bool("audit");
  const bool quiet = cli.get_bool("quiet");
  const bool emit_only = cli.get_bool("emit-only");
  const std::vector<std::uint64_t> threads = cli.get_u64_list(
      "threads-matrix");
  if (threads.empty()) return fail("--threads-matrix must not be empty");
  if (emit_only && cli.get("emit-dir").empty()) {
    return fail("--emit-only requires --emit-dir");
  }

  const fs::path out_dir = cli.get("out-dir");
  const fs::path scratch = out_dir / "work";
  std::error_code ec;
  fs::create_directories(scratch, ec);
  if (ec) return fail("cannot create " + scratch.string());
  fs::path emit_dir;
  if (!cli.get("emit-dir").empty()) {
    emit_dir = cli.get("emit-dir");
    fs::create_directories(emit_dir, ec);
    if (ec) return fail("cannot create " + emit_dir.string());
  }

  const std::string exe = self_exe(argv[0]);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t index = first_index + i;
    const std::uint64_t script_seed = support::mix_seed(base_seed, index);
    const scenario::Script script =
        scenario::generate_script(profile, script_seed);
    const std::string text = scenario::emit_script(script);
    // Reproducibility self-check: the generator must be a pure function
    // of (profile, seed) — regenerate and byte-compare before trusting
    // any downstream repro line.
    if (scenario::emit_script(
            scenario::generate_script(profile, script_seed)) != text) {
      return fail("generator is not deterministic for seed " +
                  std::to_string(script_seed));
    }
    if (!emit_dir.empty() &&
        !write_file(emit_dir / (script.name + ".scn"), text)) {
      return fail("cannot write corpus file for " + script.name);
    }
    if (emit_only) {
      if (!quiet) std::cout << "[" << index << "] emitted " << script.name
                            << ".scn\n";
      continue;
    }

    const RunVerdict verdict =
        run_across_matrix(exe, script, threads, audit, scratch);
    if (!verdict.failed) {
      if (!quiet) std::cout << "[" << index << "] " << script.name
                            << " ok\n";
      continue;
    }

    std::cerr << "dhtlb_fuzz: FAILURE on " << script.name << ": "
              << verdict.reason << "\n";
    const scenario::Script minimized = scenario::shrink_script(
        script, [&](const scenario::Script& candidate) {
          return run_across_matrix(exe, candidate, threads, audit, scratch)
              .failed;
        });
    const fs::path failing = out_dir / (script.name + ".failing.scn");
    const fs::path min_path = out_dir / (script.name + ".minimized.scn");
    write_file(failing, text);
    write_file(min_path, scenario::emit_script(minimized));
    std::ostringstream repro;
    repro << "profile: " << profile << "\n"
          << "script seed: " << script_seed << " (base " << base_seed
          << ", index " << index << ")\n"
          << "failure: " << verdict.reason << "\n"
          << "minimized blocks: " << minimized.blocks.size() << "\n"
          << "repro (batch):  dhtlb_fuzz --profile " << profile << " --seed "
          << base_seed << " --index " << index << " --count 1"
          << (audit ? " --audit" : "") << " --threads-matrix ";
    for (std::size_t t = 0; t < threads.size(); ++t) {
      repro << (t ? "," : "") << threads[t];
    }
    repro << "\nrepro (single): dhtlb_fuzz --run-file " << min_path.string()
          << (audit ? " --audit" : "") << "\n";
    write_file(out_dir / (script.name + ".REPRO.txt"), repro.str());
    std::cerr << "dhtlb_fuzz: wrote " << failing.string() << ", "
              << min_path.string() << " (" << minimized.blocks.size()
              << " block(s)) and REPRO.txt\n";
    return 1;
  }
  if (!quiet) {
    std::cout << "dhtlb_fuzz: " << count << " script(s) "
              << (emit_only ? "emitted" : "passed") << " (profile "
              << profile << ", base seed " << base_seed << ")\n";
  }
  return 0;
}
