// Shared plumbing for the paper-reproduction binaries (table*/fig*).
//
// Each binary regenerates one table or figure from the paper and prints
// (a) the paper's reported numbers alongside ours, where the paper gives
// them, and (b) the same rows/series layout, so shapes are comparable at
// a glance.  Trial counts default to a laptop-friendly fraction of the
// paper's 100 and scale up via DHTLB_TRIALS (see EXPERIMENTS.md).
//
// Every binary opens a Session, which owns the thread pool AND the
// telemetry collector (harness/telemetry.hpp): each printed number is
// also recorded as a structured JSON record, so CI can diff the run
// against a committed baseline without parsing the text tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "harness/telemetry.hpp"
#include "sim/params.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace dhtlb::bench {

/// Prints the standard reproduction banner: what is being regenerated
/// and with how many trials.
inline void banner(const char* experiment_id, const char* description,
                   std::size_t trials) {
  std::printf("=== %s — %s ===\n", experiment_id, description);
  std::printf("trials per cell: %zu (override with DHTLB_TRIALS), seed %llu\n\n",
              trials,
              static_cast<unsigned long long>(support::env_seed()));
}

/// Base parameter set matching the paper's defaults (§V-B).
inline sim::Params paper_defaults(std::size_t nodes, std::uint64_t tasks) {
  sim::Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  return p;
}

/// One reproduction run: banner, trial count, thread pool, telemetry.
/// `file_id` names the JSON output (BENCH_<file_id>.json) and should
/// match the binary name; `experiment_id` is the human-facing label
/// ("Table II").
class Session {
 public:
  Session(const char* file_id, const char* experiment_id,
          const char* description, std::size_t default_trials)
      : trials_(support::env_trials(default_trials)),
        pool_(support::env_threads()),
        telemetry_(file_id) {
    banner(experiment_id, description, trials_);
  }

  ~Session() {
    if (telemetry_.flush()) {
      std::printf("[telemetry] wrote %s\n", telemetry_.output_path().c_str());
    }
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  std::size_t trials() const { return trials_; }
  support::ThreadPool& pool() { return pool_; }
  Telemetry& telemetry() { return telemetry_; }

  /// One mean-runtime-factor cell: runs the trials, records both the
  /// value and the wall time it took under `cell`.
  double mean_factor(const sim::Params& params, const char* strategy,
                     const std::string& cell) {
    const WallTimer timer;
    const double mean =
        exp::run_trials(params, strategy, trials_, support::env_seed(), &pool_)
            .runtime_factor.mean;
    telemetry_.record(cell, "runtime_factor_mean", mean, timer.elapsed_ms(),
                      trials_);
    return mean;
  }

  /// A whole grid of cells through ONE batched fan (exp::run_cells):
  /// threads drain the tail of one cell while starting the next, so the
  /// grid has a single pool barrier instead of one per cell.  Records
  /// each cell's mean runtime factor (wall_ms = 0: per-cell wall is not
  /// observable in a batched fan) plus one `__grid__`/wall_ms record
  /// for the whole fan, which is what CI's regression check tracks.
  std::vector<exp::Aggregate> run_grid(
      const std::vector<exp::CellSpec>& cells,
      const std::vector<std::string>& cell_labels,
      const std::string& grid_cell = "__grid__") {
    const WallTimer timer;
    auto aggs = exp::run_cells(cells, support::env_seed(), &pool_);
    // The grid record carries wall clock as its *value*, so it must be
    // zeroed in deterministic mode just like the wall_ms field.
    const double wall =
        Telemetry::deterministic() ? 0.0 : timer.elapsed_ms();
    for (std::size_t i = 0; i < aggs.size(); ++i) {
      telemetry_.record(cell_labels[i], "runtime_factor_mean",
                        aggs[i].runtime_factor.mean, 0.0, cells[i].trials);
    }
    telemetry_.record(grid_cell, "wall_ms", wall, wall, trials_);
    return aggs;
  }

  /// Records a value computed outside the helpers above (figure series
  /// points, message counts, ...).  wall_ms defaults to 0 for derived
  /// values that cost nothing to produce.
  void record(const std::string& cell, const std::string& metric,
              double value, double wall_ms = 0.0, std::uint64_t trials = 0) {
    telemetry_.record(cell, metric, value, wall_ms,
                      trials == 0 ? trials_ : trials);
  }

 private:
  std::size_t trials_;
  support::ThreadPool pool_;
  Telemetry telemetry_;
};

/// One mean-runtime-factor cell (legacy helper for callers that manage
/// their own pool; Session::mean_factor also records telemetry).
inline double mean_factor(const sim::Params& params, const char* strategy,
                          std::size_t trials, support::ThreadPool& pool) {
  return exp::run_trials(params, strategy, trials, support::env_seed(), &pool)
      .runtime_factor.mean;
}

}  // namespace dhtlb::bench
