// Shared plumbing for the paper-reproduction binaries (table*/fig*).
//
// Each binary regenerates one table or figure from the paper and prints
// (a) the paper's reported numbers alongside ours, where the paper gives
// them, and (b) the same rows/series layout, so shapes are comparable at
// a glance.  Trial counts default to a laptop-friendly fraction of the
// paper's 100 and scale up via DHTLB_TRIALS (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>

#include "exp/experiment.hpp"
#include "sim/params.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace dhtlb::bench {

/// Prints the standard reproduction banner: what is being regenerated
/// and with how many trials.
inline void banner(const char* experiment_id, const char* description,
                   std::size_t trials) {
  std::printf("=== %s — %s ===\n", experiment_id, description);
  std::printf("trials per cell: %zu (override with DHTLB_TRIALS), seed %llu\n\n",
              trials,
              static_cast<unsigned long long>(support::env_seed()));
}

/// Base parameter set matching the paper's defaults (§V-B).
inline sim::Params paper_defaults(std::size_t nodes, std::uint64_t tasks) {
  sim::Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  return p;
}

/// One mean-runtime-factor cell.
inline double mean_factor(const sim::Params& params, const char* strategy,
                          std::size_t trials, support::ThreadPool& pool) {
  return exp::run_trials(params, strategy, trials, support::env_seed(), &pool)
      .runtime_factor.mean;
}

}  // namespace dhtlb::bench
