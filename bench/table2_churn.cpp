// Reproduces Table II: runtime factor of the Induced Churn strategy over
// churn rates {0, 1e-4, 1e-3, 1e-2} and five (nodes, tasks) network
// configurations.  Homogeneous, one task per tick; each cell averages
// `trials` runs.
//
// Expected shape (paper): every column falls monotonically as churn
// rises; larger task counts gain more (the 100-node/1e6-task column
// reaches ~1.3 at churn 0.01).
#include <cstdio>
#include <vector>

#include "repro_util.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("table2_churn", "Table II",
                         "Induced Churn runtime factors", 8);

  struct Config {
    std::size_t nodes;
    std::uint64_t tasks;
    const char* label;
  };
  const std::vector<Config> configs = {
      {1000, 100'000, "1e3 n/1e5 t"},
      {1000, 1'000'000, "1e3 n/1e6 t"},
      {100, 10'000, "1e2 n/1e4 t"},
      {100, 100'000, "1e2 n/1e5 t"},
      {100, 1'000'000, "1e2 n/1e6 t"}};
  const double churn_rates[] = {0.0, 0.0001, 0.001, 0.01};

  // Paper's Table II, same cell order, for the side-by-side.
  const double paper[4][5] = {{7.476, 7.467, 5.043, 5.022, 5.016},
                              {7.122, 5.732, 4.934, 4.362, 3.077},
                              {6.047, 3.674, 4.391, 3.019, 1.863},
                              {3.721, 2.104, 3.076, 1.873, 1.309}};

  // The whole 4x5 grid goes through one batched fan: a single pool
  // barrier instead of twenty.
  std::vector<exp::CellSpec> cells;
  std::vector<std::string> labels;
  for (int r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      sim::Params p = bench::paper_defaults(configs[c].nodes,
                                            configs[c].tasks);
      p.churn_rate = churn_rates[r];
      cells.push_back({p, "churn", session.trials()});
      labels.push_back("churn=" + support::format_fixed(churn_rates[r], 4) +
                       "/" + configs[c].label);
    }
  }
  const auto aggs = session.run_grid(cells, labels);

  std::vector<std::string> header = {"Churn rate"};
  for (const auto& c : configs) header.push_back(c.label);
  support::TextTable table(header);

  for (int r = 0; r < 4; ++r) {
    std::vector<std::string> ours_row = {support::format_fixed(churn_rates[r], 4)};
    std::vector<std::string> paper_row = {"  (paper)"};
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const auto& agg = aggs[static_cast<std::size_t>(r) * configs.size() + c];
      ours_row.push_back(support::format_fixed(agg.runtime_factor.mean, 3));
      paper_row.push_back(support::format_fixed(paper[r][c], 3));
    }
    table.add_row(ours_row);
    table.add_row(paper_row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape checks: factors fall monotonically down every column; gains\n"
      "grow with the task count; smaller networks start from a lower base.\n");
  return 0;
}
