// Quantifies the §VI-A footnote: "One facet not captured by our
// simulations, but is significant, is the rising maintenance costs
// after that point.  This makes any amount of churn after a certain
// point prohibitively expensive."
//
// Using the explicit active-backup model (src/sim/backup), this bench
// measures the replica transfers per tick that each churn rate forces,
// next to the runtime-factor gain that same churn rate buys (Table II's
// 1000-node / 100k-task column).  The cross-over — gains flattening
// past 0.01 while repair traffic keeps climbing linearly — is the
// footnote's "certain point".
#include <cstdio>
#include <vector>

#include "hashing/sha1.hpp"
#include "repro_util.hpp"
#include "sim/backup.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace {

using namespace dhtlb;

/// Replica transfers per tick under sustained churn at `rate`, averaged
/// over `ticks` fail/join/repair cycles on an n-node ring with k keys.
double repair_traffic_per_tick(double rate, std::size_t n,
                               std::size_t keys, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<support::Uint160> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(hashing::Sha1::hash_u64(rng()));
  }
  sim::BackupRing ring(nodes, 5);
  for (std::size_t i = 0; i < keys; ++i) {
    ring.add_key(hashing::Sha1::hash_u64(rng()));
  }
  std::vector<support::Uint160> membership = nodes;
  std::uint64_t transfers = 0;
  constexpr int kTicks = 200;
  for (int tick = 0; tick < kTicks; ++tick) {
    // Binomial(n, rate) failures and joins, like the engine's churn step.
    for (std::size_t i = membership.size(); i-- > 0;) {
      if (membership.size() <= n / 2) break;
      if (rng.bernoulli(rate)) {
        ring.fail_node(membership[i]);
        membership.erase(membership.begin() +
                         static_cast<std::ptrdiff_t>(i));
      }
    }
    const std::size_t deficit =
        n > membership.size() ? n - membership.size() : 0;
    for (std::size_t i = 0; i < deficit; ++i) {
      const double join_p =
          rate * static_cast<double>(n) /
          static_cast<double>(std::max<std::size_t>(deficit, 1));
      if (!rng.bernoulli(join_p)) continue;
      const auto id = hashing::Sha1::hash_u64(rng());
      if (ring.join_node(id)) membership.push_back(id);
    }
    transfers += ring.repair();
  }
  return static_cast<double>(transfers) / kTicks;
}

}  // namespace

int main() {
  bench::Session session("tableB_backup_costs",
                         "Backup costs (SS VI-A footnote)",
                         "churn gains vs replica-repair traffic", 6);
  const double rates[] = {0.0, 0.0001, 0.001, 0.005, 0.01, 0.02, 0.05};

  support::TextTable table({"churn rate", "runtime factor",
                            "gain vs rate 0", "repair transfers/tick",
                            "transfers per saved tick"});
  double base_factor = 0.0;
  for (const double rate : rates) {
    sim::Params p = bench::paper_defaults(1000, 100'000);
    p.churn_rate = rate;
    const std::string cell = "churn=" + support::format_fixed(rate, 4);
    const double factor = session.mean_factor(p, "churn", cell);
    if (rate == 0.0) base_factor = factor;
    const double traffic =
        rate == 0.0 ? 0.0
                    : repair_traffic_per_tick(rate, 1000, 100'000,
                                              support::env_seed());
    session.record(cell, "repair_transfers_per_tick", traffic);
    const double gain_ticks = (base_factor - factor) * 100.0;  // ideal=100
    table.add_row(
        {support::format_fixed(rate, 4), support::format_fixed(factor, 3),
         support::format_fixed(base_factor - factor, 3),
         support::format_fixed(traffic, 0),
         gain_ticks > 1.0
             ? support::format_fixed(
                   traffic * (factor * 100.0) / gain_ticks, 0)
             : "-"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading guide: runtime gains saturate past ~0.01 (Table II's\n"
      "diminishing returns) while repair traffic grows ~linearly in the\n"
      "churn rate — the footnote's 'prohibitively expensive' regime is\n"
      "where the last column blows up.\n");
  return 0;
}
