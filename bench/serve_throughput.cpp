// serve_throughput — reader-scaling curve of the serving plane
// (DESIGN.md §9 "Serving plane"): batched key lookups over RCU ring
// snapshots while the sharded tick engine churns underneath.
//
// For each traffic model (uniform, zipf, hotspot) the same (params,
// seed) world is churned for a fixed number of ticks with the
// serve::Service attached at 1, 2, 4, and 8 reader threads.  The
// reader counts are set explicitly per cell — they are the curve being
// measured — while the engine itself stays single-threaded so the
// serve plane, not the shard fan, dominates the wall time.
//
// Telemetry per (traffic, readers) cell:
//   wall_ms        tick-loop + serve wall (gated vs baseline in CI)
//   speedup_vs_r1  wall(r1) / wall(rN); zeroed in deterministic mode
//                  and exempt from value checks (a ratio of clocks)
// plus per-traffic result rows (lookups, hop percentiles, Sybil
// absorption, owner-load skew, view lifecycle counts) recorded once —
// the binary aborts if any reader count produces different results, so
// every run is also a 1-vs-N serve determinism check, and the recorded
// values let compare_bench --check-values enforce identity against the
// committed baseline across machines.
#include <cstdint>
#include <cstdio>
#include <string>

#include "harness/telemetry.hpp"
#include "serve/service.hpp"
#include "sim/engine.hpp"
#include "sim/params.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace dhtlb;

/// Order-sensitive fold of every integer output of a serve run: one
/// extra lookup, a reordered fold, or a hop miscount changes it.
std::uint64_t fingerprint(const serve::Report& rep) {
  std::uint64_t h = support::mix_seed(rep.lookups, rep.batches);
  h = support::mix_seed(h, rep.hops_total);
  h = support::mix_seed(h, rep.hops_max);
  h = support::mix_seed(h, rep.owners_hit);
  h = support::mix_seed(h, rep.views.published);
  h = support::mix_seed(h, rep.views.reclaimed);
  return h;
}

}  // namespace

int main() {
  bench::Telemetry telemetry("serve_throughput");
  const std::uint64_t seed = support::env_seed();
  const int ticks = 30;

  sim::Params p;
  p.initial_nodes = 20'000;
  p.total_tasks = 40'000;
  p.churn_rate = 0.02;

  std::printf("=== serve_throughput — serving-plane reader scaling ===\n");
  std::printf("%zu vnodes, %d ticks, 20000 lookups/tick, seed %llu, "
              "%zu serve shards\n\n",
              static_cast<std::size_t>(p.initial_nodes), ticks,
              static_cast<unsigned long long>(seed), serve::kServeShards);

  support::TextTable table({"traffic", "readers", "wall ms", "klookups/s",
                            "speedup", "hops p99", "fingerprint"});

  for (const serve::Traffic traffic :
       {serve::Traffic::kUniform, serve::Traffic::kZipf,
        serve::Traffic::kHotspot}) {
    const std::string tname(serve::traffic_name(traffic));
    double wall_r1 = 0.0;
    std::uint64_t print_r1 = 0;
    serve::Report rep_r1;
    for (const std::size_t readers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      serve::Config config;
      config.traffic = traffic;
      config.readers = readers;
      config.lookups_per_tick = 20'000;

      sim::Engine engine(p, seed);
      engine.set_audit(false);
      engine.set_pre_tick_hook([ticks](std::uint64_t tick) {
        return tick <= static_cast<std::uint64_t>(ticks);
      });
      serve::Service service(config, seed);
      service.attach(engine);

      const bench::WallTimer timer;
      for (int t = 0; t < ticks; ++t) {
        if (!engine.step()) break;
      }
      service.drain();
      const double wall = timer.elapsed_ms();
      const serve::Report rep = service.report();
      const std::uint64_t print = fingerprint(rep);
      const std::uint64_t rss = bench::Telemetry::current_peak_rss_bytes();

      if (readers == 1) {
        wall_r1 = wall;
        print_r1 = print;
        rep_r1 = rep;
      }
      DHTLB_CHECK(print == print_r1,
                  "serve_throughput: results diverged at "
                      << readers << " readers (traffic " << tname
                      << ") — serve outputs depend on the reader count");

      const double speedup = wall > 0.0 ? wall_r1 / wall : 0.0;
      const double klps =
          wall > 0.0 ? static_cast<double>(rep.lookups) / wall : 0.0;
      const bool det = bench::Telemetry::deterministic();
      const std::string cell = tname + "/r" + std::to_string(readers);
      telemetry.record(cell, "wall_ms", det ? 0.0 : wall, wall, 1, rss);
      telemetry.record(cell, "speedup_vs_r1", det ? 0.0 : speedup, 0.0, 1);
      table.add_row({tname, std::to_string(readers),
                     support::format_fixed(wall, 1),
                     support::format_fixed(klps, 0),
                     support::format_fixed(speedup, 2),
                     support::format_fixed(rep.hops_p99, 0),
                     std::to_string(print & 0xFFFFFFFFFFFFFull)});
    }
    // Identical across reader counts (checked above): record the serve
    // results once per traffic model for --check-values.
    telemetry.record(tname, "lookups",
                     static_cast<double>(rep_r1.lookups), 0.0, 1);
    telemetry.record(tname, "hops_mean", rep_r1.hops_mean, 0.0, 1);
    telemetry.record(tname, "hops_p50", rep_r1.hops_p50, 0.0, 1);
    telemetry.record(tname, "hops_p99", rep_r1.hops_p99, 0.0, 1);
    telemetry.record(tname, "sybil_hit_fraction", rep_r1.sybil_hit_fraction,
                     0.0, 1);
    telemetry.record(tname, "owner_hits_gini", rep_r1.owner_hits_gini, 0.0,
                     1);
    telemetry.record(tname, "owner_hits_max_over_mean",
                     rep_r1.owner_hits_max_over_mean, 0.0, 1);
    telemetry.record(tname, "views_published",
                     static_cast<double>(rep_r1.views.published), 0.0, 1);
    telemetry.record(tname, "views_reclaimed",
                     static_cast<double>(rep_r1.views.reclaimed), 0.0, 1);
    telemetry.record(tname, "state_fingerprint",
                     static_cast<double>(print_r1 & 0x1FFFFFFFFFFFFFull),
                     0.0, 1);
  }
  std::printf("%s\n", table.render().c_str());

  if (telemetry.flush()) {
    std::printf("[telemetry] wrote %s\n", telemetry.output_path().c_str());
  }
  return 0;
}
