// fuzz_throughput — how fast the scenario-fuzz campaign machinery
// turns (profile, seed) pairs into generated, parsed and fully executed
// runs: the per-night script budget of the nightly scenario-fuzz lane
// is this number times the wall budget.
//
// Each cell generates `scripts` scenarios from one profile, pushes each
// through the canonical emit → parse round trip (the same validation
// gate the campaign applies), and runs it in-process through the
// scenario VM.  Generation counts (scripts, blocks, events, ticks) and
// an order-sensitive fold over every telemetry row are recorded as
// value records, so compare_bench --check-values pins the generator's
// output and the VM's run results bit-for-bit at the baseline seed,
// while wall_ms gates throughput regressions.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "harness/telemetry.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/script.hpp"
#include "scenario/vm.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace dhtlb;

// Order-sensitive fold over a run's telemetry rows: metric names and
// raw double bits both feed the accumulator, so any drift in row order,
// row set, or value shows up as a fold mismatch against the baseline.
std::uint64_t fold_result(std::uint64_t fold,
                          const scenario::ScenarioResult& result) {
  for (const bench::Record& record : result.records) {
    for (const char c : record.metric) {
      fold = support::mix_seed(fold, static_cast<std::uint64_t>(c));
    }
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(record.value));
    std::memcpy(&bits, &record.value, sizeof(bits));
    fold = support::mix_seed(fold, bits);
  }
  return fold;
}

}  // namespace

int main() {
  bench::Telemetry telemetry("fuzz_throughput");
  const std::uint64_t seed = support::env_seed();
  // 5 scripts per trial: DHTLB_TRIALS=2 (the smoke/baseline setting)
  // runs a 10-script campaign slice per profile.
  const std::uint64_t scripts =
      5 * static_cast<std::uint64_t>(support::env_trials(2));
  std::printf("=== fuzz_throughput — scenario-fuzz campaign rate ===\n");
  std::printf("seed %llu, %llu scripts per profile\n\n",
              static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(scripts));

  support::TextTable table({"profile", "scripts", "wall ms", "scripts/s",
                            "blocks", "events", "ticks", "fold"});

  // One sim-substrate profile from each end of the cost spectrum:
  // storm scripts are membership-heavy and cheap, mixed draws the whole
  // vocabulary (including streamed provisioning) and is the nightly
  // campaign's default workload.
  for (const std::string_view profile : {"storm", "mixed"}) {
    std::uint64_t blocks_total = 0;
    std::uint64_t events_total = 0;
    std::uint64_t ticks_total = 0;
    std::uint64_t fold = support::mix_seed(seed, scripts);
    const bench::WallTimer timer;
    for (std::uint64_t i = 0; i < scripts; ++i) {
      const scenario::Script script =
          scenario::generate_script(profile, support::mix_seed(seed, i));
      // The campaign's validation gate: canonical text must parse back.
      const scenario::Script parsed =
          scenario::Script::parse(scenario::emit_script(script), "<fuzz>");
      for (const scenario::Block& block : parsed.blocks) {
        blocks_total += 1;
        events_total += block.events.size();
      }
      ticks_total += parsed.horizon;
      const scenario::ScenarioResult result =
          scenario::run_scenario(parsed, parsed.seed);
      DHTLB_CHECK(!result.records.empty(),
                  "fuzz_throughput: empty telemetry from " << parsed.name);
      fold = fold_result(fold, result);
    }
    const double wall = timer.elapsed_ms();

    const std::uint64_t rss = bench::Telemetry::current_peak_rss_bytes();
    const bool det = bench::Telemetry::deterministic();
    const double per_s =
        wall > 0.0 ? 1000.0 * static_cast<double>(scripts) / wall : 0.0;
    const std::string name = std::string("profile=") + std::string(profile) +
                             "/scripts=" + std::to_string(scripts);
    telemetry.record(name, "wall_ms", det ? 0.0 : wall, wall, scripts, rss);
    telemetry.record(name, "scripts", static_cast<double>(scripts), 0.0,
                     scripts);
    telemetry.record(name, "blocks_total", static_cast<double>(blocks_total),
                     0.0, scripts);
    telemetry.record(name, "events_total", static_cast<double>(events_total),
                     0.0, scripts);
    telemetry.record(name, "ticks_total", static_cast<double>(ticks_total),
                     0.0, scripts);
    // Low 53 bits fit a double exactly, so the JSON round trip is
    // lossless and --check-values can demand bit-equality.
    telemetry.record(name, "telemetry_fold",
                     static_cast<double>(fold & 0x1FFFFFFFFFFFFFull), 0.0,
                     scripts);
    table.add_row({std::string(profile), std::to_string(scripts),
                   support::format_fixed(wall, 1),
                   support::format_fixed(per_s, 1),
                   std::to_string(blocks_total), std::to_string(events_total),
                   std::to_string(ticks_total),
                   std::to_string(fold & 0xFFFFFFFFFFFFFull)});
  }
  std::printf("%s\n", table.render().c_str());

  if (telemetry.flush()) {
    std::printf("[telemetry] wrote %s\n", telemetry.output_path().c_str());
  }
  return 0;
}
