// Reproduces Figure 10: workload distribution of HETEROGENEOUS networks
// after 35 ticks, random injection vs no strategy.  Node strengths are
// drawn U{1..maxSybils}; strength caps each node's Sybil count.
//
// Expected shape (paper): random injection still yields a clearly better
// distribution, though the runtime gains are smaller than in the
// homogeneous case.
#include <cstdio>

#include "exp/experiment.hpp"
#include "repro_util.hpp"
#include "stats/histogram.hpp"
#include "stats/load_metrics.hpp"
#include "support/env.hpp"
#include "viz/ascii_hist.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("fig10_heterogeneous", "Figure 10",
                         "heterogeneous networks at tick 35", 6);
  const std::size_t trials = session.trials();

  sim::Params params = bench::paper_defaults(1000, 100'000);
  params.heterogeneous = true;
  const auto seed = support::env_seed();

  const auto none = exp::run_with_snapshots(params, "none", seed, {35});
  const auto inj =
      exp::run_with_snapshots(params, "random-injection", seed, {35});

  const auto& ln = none.snapshots[0].workloads;
  const auto& li = inj.snapshots[0].workloads;
  std::printf("%s", viz::render_comparison(
                        stats::workload_histogram(ln, 12).bins(),
                        "no strategy (het)",
                        stats::workload_histogram(li, 12).bins(),
                        "random injection (het)")
                        .c_str());
  std::printf("\nidle: none %.3f vs injection %.3f | gini: %.3f vs %.3f\n",
              stats::idle_fraction(ln), stats::idle_fraction(li),
              stats::gini(ln), stats::gini(li));
  session.record("tick35/none", "gini", stats::gini(ln), 0.0, 1);
  session.record("tick35/random-injection", "gini", stats::gini(li), 0.0, 1);

  // Multi-trial runtime comparison: het gains exist but are smaller than
  // hom gains (§VI-B).
  sim::Params hom = bench::paper_defaults(1000, 100'000);
  const double het_inj =
      session.mean_factor(params, "random-injection", "het/random-injection");
  const double het_none = session.mean_factor(params, "none", "het/none");
  const double hom_inj =
      session.mean_factor(hom, "random-injection", "hom/random-injection");
  const double hom_none = session.mean_factor(hom, "none", "hom/none");
  std::printf("\nmean runtime factors (%zu trials):\n", trials);
  std::printf("  homogeneous:   none %.3f -> injection %.3f (gain %.3f)\n",
              hom_none, hom_inj, hom_none - hom_inj);
  std::printf("  heterogeneous: none %.3f -> injection %.3f (gain %.3f)\n",
              het_none, het_inj, het_none - het_inj);
  std::printf("shape check (paper): both gains positive; heterogeneous "
              "improvement is the weaker of the two.\n");
  return 0;
}
