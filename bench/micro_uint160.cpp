// Micro-benchmarks for 160-bit ring arithmetic — the inner loop of key
// assignment, arc splits and interval tests.
#include <benchmark/benchmark.h>

#include "harness/micro.hpp"

#include <vector>

#include "support/ring_math.hpp"
#include "support/rng.hpp"
#include "support/uint160.hpp"

namespace {

using dhtlb::support::Rng;
using dhtlb::support::Uint160;

std::vector<Uint160> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Uint160> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(rng.uniform_u160());
  return out;
}

void BM_U160Add(benchmark::State& state) {
  const auto vals = random_values(1024, 1);
  std::size_t i = 0;
  Uint160 acc;
  for (auto _ : state) {
    acc += vals[i++ & 1023];
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_U160Add);

void BM_U160Compare(benchmark::State& state) {
  const auto vals = random_values(1024, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vals[i & 1023] < vals[(i + 1) & 1023]);
    ++i;
  }
}
BENCHMARK(BM_U160Compare);

void BM_U160HalfOpenArcTest(benchmark::State& state) {
  const auto vals = random_values(3 * 1024, 3);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t b = (i % 1024) * 3;
    benchmark::DoNotOptimize(dhtlb::support::in_half_open_arc(
        vals[b], vals[b + 1], vals[b + 2]));
    ++i;
  }
}
BENCHMARK(BM_U160HalfOpenArcTest);

void BM_U160HexRoundTrip(benchmark::State& state) {
  const auto vals = random_values(64, 4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Uint160::from_hex(vals[i++ & 63].to_hex()));
  }
}
BENCHMARK(BM_U160HexRoundTrip);

void BM_RngUniformU160(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_u160());
  }
}
BENCHMARK(BM_RngUniformU160);

void BM_RngUniformInArc(benchmark::State& state) {
  Rng rng(6);
  const Uint160 lo{1000};
  const Uint160 hi = Uint160::pow2(140);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_in_arc(lo, hi));
  }
}
BENCHMARK(BM_RngUniformInArc);

}  // namespace

int main(int argc, char** argv) {
  return dhtlb::bench::micro_main("micro_uint160", argc, argv);
}
