// Micro-benchmarks for the tick simulator: world construction (SHA-1
// placement of nodes and tasks), steady-state tick throughput, Sybil
// creation (arc split) cost, and full-run cost per strategy.
#include <benchmark/benchmark.h>

#include "harness/micro.hpp"

#include <optional>

#include "lb/factory.hpp"
#include "sim/engine.hpp"
#include "sim/world.hpp"
#include "support/rng.hpp"

namespace {

using dhtlb::sim::Engine;
using dhtlb::sim::Params;
using dhtlb::sim::World;
using dhtlb::support::Rng;

Params make_params(std::size_t nodes, std::uint64_t tasks) {
  Params p;
  p.initial_nodes = nodes;
  p.total_tasks = tasks;
  return p;
}

void BM_WorldConstruction(benchmark::State& state) {
  const Params p = make_params(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::uint64_t>(state.range(1)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    World w(p, rng);
    benchmark::DoNotOptimize(w.remaining_tasks());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(1));
}
BENCHMARK(BM_WorldConstruction)
    ->Args({1000, 100'000})
    ->Args({1000, 1'000'000})
    ->Unit(benchmark::kMillisecond);

void BM_TickThroughput(benchmark::State& state) {
  // Steady-state tick cost on the paper's default network, no strategy.
  // Engine holds internal references, so rebuilds go through optional.
  std::optional<Engine> engine;
  engine.emplace(make_params(1000, 100'000), 7);
  for (auto _ : state) {
    if (!engine->step()) {
      state.PauseTiming();
      engine.emplace(make_params(1000, 100'000), 7);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_TickThroughput)->Unit(benchmark::kMicrosecond);

void BM_CreateSybil(benchmark::State& state) {
  // Arc-split cost at default load (~100 keys per arc).
  Rng rng(9);
  World w(make_params(1000, 100'000), rng);
  Rng id_rng(10);
  const auto idx = w.alive_indices().front();
  for (auto _ : state) {
    const auto id = id_rng.uniform_u160();
    benchmark::DoNotOptimize(w.create_sybil(idx, id));
    state.PauseTiming();
    w.remove_sybils(idx);  // keep the ring size stable
    state.ResumeTiming();
  }
}
BENCHMARK(BM_CreateSybil)->Unit(benchmark::kMicrosecond);

void BM_FullRunByStrategy(benchmark::State& state) {
  static const char* kNames[] = {"none", "churn", "random-injection",
                                 "neighbor-injection",
                                 "smart-neighbor-injection", "invitation"};
  const char* name = kNames[state.range(0)];
  Params p = make_params(500, 50'000);
  if (std::string_view(name) == "churn") p.churn_rate = 0.01;
  std::uint64_t seed = 11;
  double factor_sum = 0.0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Engine engine(p, seed++, dhtlb::lb::make_strategy(name));
    const auto r = engine.run();
    factor_sum += r.runtime_factor;
    ++runs;
    benchmark::DoNotOptimize(r.ticks);
  }
  state.SetLabel(name);
  state.counters["runtime_factor"] = benchmark::Counter(
      factor_sum / static_cast<double>(runs));
}
BENCHMARK(BM_FullRunByStrategy)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return dhtlb::bench::micro_main("micro_sim", argc, argv);
}
