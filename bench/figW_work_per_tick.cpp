// Reproduces the §V-C collected output the paper describes but does not
// plot: the work completed per tick over the lifetime of a job, per
// strategy.  This is the mechanism behind every runtime-factor result —
// the baseline's throughput collapses once most nodes idle, while the
// balancing strategies hold throughput near the network capacity until
// the job drains.
#include <cstdio>

#include "lb/factory.hpp"
#include "repro_util.hpp"
#include "sim/engine.hpp"
#include "support/env.hpp"
#include "viz/series.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("figW_work_per_tick", "Work per tick (SS V-C output)",
                         "throughput curves per strategy", 1);

  const auto params = bench::paper_defaults(1000, 100'000);
  const auto seed = support::env_seed();

  std::vector<viz::LabeledSeries> curves;
  support::TextTable table(
      {"strategy", "ticks", "mean work/tick", "capacity (= nodes)"});
  for (const char* strategy :
       {"none", "churn", "random-injection", "invitation"}) {
    sim::Params p = params;
    if (std::string_view(strategy) == "churn") p.churn_rate = 0.01;
    const bench::WallTimer timer;
    sim::Engine engine(p, seed, lb::make_strategy(strategy));
    engine.record_tick_series(true);
    const auto r = engine.run();
    session.record(strategy, "avg_work_per_tick", r.avg_work_per_tick,
                   timer.elapsed_ms(), 1);
    session.record(strategy, "ticks", static_cast<double>(r.ticks), 0.0, 1);
    table.add_row({strategy, std::to_string(r.ticks),
                   support::format_fixed(r.avg_work_per_tick, 1),
                   std::to_string(params.initial_nodes)});
    curves.push_back({strategy, r.work_per_tick});
  }
  std::printf("%s\n", table.render().c_str());

  viz::SeriesRenderOptions opts;
  opts.width = 70;
  opts.height = 10;
  std::printf("%s", viz::render_series_comparison(curves, opts).c_str());
  std::printf(
      "\nReading guide: 'none' plummets early (idle majority) and limps on\n"
      "a long tail; the balancing strategies hold throughput near 1000\n"
      "tasks/tick — that area difference IS the runtime-factor gap.\n");
  return 0;
}
