// Quantifies the paper's qualitative traffic claims on the REAL Chord
// protocol (src/chord/compute):
//   * "[random injection generates] churn from joining nodes ... either
//     neighbor injection strategy generates much less churn, since
//     nodes can create their Sybils in a greatly reduced range" — but
//     neighbor placement pays a hash search per Sybil.
//   * churn's hidden price: "rising maintenance costs ... makes any
//     amount of churn after a certain point prohibitively expensive"
//     (§VI-A footnote) — visible here as maintenance messages.
//
// Also cross-validates the tick simulator: runtime-factor ordering at
// protocol fidelity must match src/sim's ordering.
#include <cstdio>
#include <vector>

#include "chord/compute.hpp"
#include "repro_util.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("tableM_message_costs",
                         "Message costs (protocol-level ChordReduce)",
                         "runtime vs traffic per policy", 3);
  const std::size_t trials = session.trials();

  struct Row {
    const char* label;
    chord::ComputePolicy policy;
    double churn;
  };
  const std::vector<Row> rows = {
      {"none", chord::ComputePolicy::kNone, 0.0},
      {"churn 0.01", chord::ComputePolicy::kChurn, 0.01},
      {"churn 0.03", chord::ComputePolicy::kChurn, 0.03},
      {"random-injection", chord::ComputePolicy::kRandomInjection, 0.0},
      {"neighbor-injection", chord::ComputePolicy::kNeighborInjection, 0.0},
  };

  support::TextTable table({"policy", "runtime factor", "total msgs",
                            "maint msgs", "msgs/task", "sybils",
                            "sha1/sybil", "fail+join"});
  for (const Row& row : rows) {
    const bench::WallTimer timer;
    double factor = 0.0, total = 0.0, maint = 0.0, sybils = 0.0,
           hashes = 0.0, churn_events = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      chord::ComputeConfig cfg;
      cfg.nodes = 64;
      cfg.tasks = 6400;
      cfg.policy = row.policy;
      cfg.churn_rate = row.churn;
      cfg.seed = support::mix_seed(support::env_seed(), t);
      const auto r = chord::run_compute(cfg);
      factor += r.runtime_factor;
      total += static_cast<double>(r.messages.total());
      maint += static_cast<double>(r.maintenance_messages);
      sybils += static_cast<double>(r.sybils_created);
      hashes += static_cast<double>(r.sybil_search_hashes);
      churn_events += static_cast<double>(r.failures + r.joins);
    }
    const auto n = static_cast<double>(trials);
    session.record(row.label, "runtime_factor_mean", factor / n,
                   timer.elapsed_ms());
    session.record(row.label, "total_messages_mean", total / n);
    session.record(row.label, "maintenance_messages_mean", maint / n);
    table.add_row(
        {row.label, support::format_fixed(factor / n, 3),
         support::format_fixed(total / n, 0),
         support::format_fixed(maint / n, 0),
         support::format_fixed(total / n / 6400.0, 2),
         support::format_fixed(sybils / n, 0),
         sybils > 0 ? support::format_fixed(hashes / sybils, 1) : "-",
         support::format_fixed(churn_events / n, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading guide (paper claims made quantitative):\n"
      "  * higher churn => lower runtime factor but more maintenance\n"
      "    messages — the footnote's 'prohibitively expensive' regime.\n"
      "  * random injection places a Sybil with ONE hash; neighbor\n"
      "    injection pays a ~n-draw hash search but perturbs only its\n"
      "    own neighborhood.\n"
      "  * the runtime-factor ordering matches the tick simulator\n"
      "    (src/sim), validating its idealizations.\n");
  return 0;
}
