// Micro-benchmarks for the SHA-1 substrate: bulk throughput and the
// ID/key-generation primitive the simulator calls millions of times.
#include <benchmark/benchmark.h>

#include "harness/micro.hpp"

#include <string>
#include <vector>

#include "hashing/sha1.hpp"

namespace {

using dhtlb::hashing::Sha1;

void BM_Sha1Bulk(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Bulk)->Arg(64)->Arg(1024)->Arg(64 * 1024);

void BM_Sha1HashU64(benchmark::State& state) {
  std::uint64_t counter = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash_u64(counter++));
  }
}
BENCHMARK(BM_Sha1HashU64);

void BM_Sha1IncrementalChunks(benchmark::State& state) {
  const std::string chunk(256, 'y');
  for (auto _ : state) {
    Sha1 h;
    for (int i = 0; i < 16; ++i) h.update(chunk);
    benchmark::DoNotOptimize(h.finish());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256 * 16);
}
BENCHMARK(BM_Sha1IncrementalChunks);

}  // namespace

int main(int argc, char** argv) {
  return dhtlb::bench::micro_main("micro_sha1", argc, argv);
}
