// Scale sweep (Table S — ours, not the paper's): wall time and peak
// memory for building a world and running 100 churn ticks at 1k, 10k,
// 100k, and 1M vnodes.  The paper simulates 1000-node networks; this
// table tracks whether the flat-ring data layer keeps the simulator
// usable at the 100k..1M scales the roadmap targets.
//
// Every record's metric is "wall_ms" (value == wall time), so CI's
// value-equality gate skips these machine-dependent rows; the
// normalized wall-time gate and the peak_rss_bytes gate still apply.
// The audited-off tick loop matches how large worlds are actually run
// (the per-tick auditor is O(ring + tasks)).
//
// The sweep stops at DHTLB_SCALE_MAX_NODES (default 100k, the largest
// cell in the committed baseline); the nightly scale lane raises it to
// 1M to prove the top cell still builds and ticks.
#include <cstdio>

#include "harness/telemetry.hpp"
#include "sim/engine.hpp"
#include "sim/params.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

int main() {
  using namespace dhtlb;

  const std::uint64_t max_nodes =
      support::env_u64("DHTLB_SCALE_MAX_NODES", 100'000);
  std::printf("=== tableS_scale — flat-ring scale sweep ===\n");
  std::printf("cap: %llu nodes (override with DHTLB_SCALE_MAX_NODES), "
              "seed %llu\n\n",
              static_cast<unsigned long long>(max_nodes),
              static_cast<unsigned long long>(support::env_seed()));

  bench::Telemetry telemetry("tableS_scale");
  support::TextTable table(
      {"vnodes", "tasks", "construct ms", "100 ticks ms", "peak RSS MiB"});

  for (const std::size_t nodes :
       {std::size_t{1'000}, std::size_t{10'000}, std::size_t{100'000},
        std::size_t{1'000'000}}) {
    if (nodes > max_nodes) {
      std::printf("(skipping %zu vnodes: above DHTLB_SCALE_MAX_NODES)\n",
                  nodes);
      continue;
    }
    sim::Params p;
    p.initial_nodes = nodes;
    p.total_tasks = 2 * nodes;
    p.churn_rate = 0.01;  // ticks must exercise joins/departs, not idle

    const bench::WallTimer construct_timer;
    sim::Engine engine(p, support::env_seed());
    const double construct_ms = construct_timer.elapsed_ms();

    engine.set_audit(false);
    // The tick loop fans shard work across DHTLB_THREADS workers; the
    // recorded outputs are thread-count independent, only wall time moves.
    engine.set_threads(support::env_threads());
    // Keep ticking through the full 100 even if the (small) task load
    // drains early — churn keeps the ring mutating either way.
    engine.set_pre_tick_hook([](std::uint64_t tick) { return tick <= 100; });
    const bench::WallTimer tick_timer;
    for (int t = 0; t < 100; ++t) {
      if (!engine.step()) break;
    }
    const double ticks_ms = tick_timer.elapsed_ms();
    const std::uint64_t rss = bench::Telemetry::current_peak_rss_bytes();

    const std::string cell = "n=" + std::to_string(nodes);
    const bool det = bench::Telemetry::deterministic();
    telemetry.record(cell + "/construct", "wall_ms",
                     det ? 0.0 : construct_ms, construct_ms, 1, rss);
    telemetry.record(cell + "/ticks100", "wall_ms", det ? 0.0 : ticks_ms,
                     ticks_ms, 1, rss);

    table.add_row({std::to_string(nodes), std::to_string(2 * nodes),
                   support::format_fixed(construct_ms, 1),
                   support::format_fixed(ticks_ms, 1),
                   support::format_fixed(
                       static_cast<double>(rss) / (1024.0 * 1024.0), 1)});
  }
  std::printf("%s\n", table.render().c_str());

  if (telemetry.flush()) {
    std::printf("[telemetry] wrote %s\n", telemetry.output_path().c_str());
  }
  return 0;
}
