// tick_parallel — thread-scaling curve of the sharded parallel tick
// engine (DESIGN.md "Parallel tick engine").
//
// For each world size (100k vnodes always; 1M when DHTLB_SCALE_MAX_NODES
// allows, as in tableS_scale) the same (params, seed) world is churned
// for a fixed number of ticks at 1, 2, 4, and 8 worker threads.  The
// thread counts are set explicitly per cell — DHTLB_THREADS does not
// apply here — because the curve itself is the measurement.
//
// Telemetry per (n, threads) cell:
//   wall_ms        the tick-loop wall time (gated vs baseline in CI)
//   speedup_vs_t1  wall(t1) / wall(tN); zeroed in deterministic mode and
//                  exempt from value checks (it is a ratio of clocks).
//                  The nightly lane gates the best of these with
//                  compare_bench.py --min-speedup.
// plus one state_fingerprint per n: a fold of the post-run snapshot
// (workloads, remaining tasks, membership counts).  The binary aborts if
// any thread count produces a different fingerprint — every run of this
// bench is therefore also a 1-vs-N determinism check — and the recorded
// value lets compare_bench --check-values enforce the same identity
// against the committed baseline across machines.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/telemetry.hpp"
#include "sim/engine.hpp"
#include "sim/params.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace dhtlb;

/// Order-sensitive fold of everything a run changed in the world: any
/// divergence between thread counts — a reordered alive list, one extra
/// RNG draw, a task consumed by the wrong node — changes it.
std::uint64_t fingerprint(const sim::Engine& engine) {
  const sim::Snapshot snap = engine.capture(engine.current_tick());
  std::uint64_t h = support::mix_seed(snap.remaining_tasks, snap.tick);
  h = support::mix_seed(h, snap.vnode_count);
  h = support::mix_seed(h, snap.alive_count);
  for (const std::uint64_t load : snap.workloads) {
    h = support::mix_seed(h, load);
  }
  return h;
}

}  // namespace

int main() {
  bench::Telemetry telemetry("tick_parallel");
  const std::uint64_t seed = support::env_seed();
  const std::size_t max_nodes = static_cast<std::size_t>(
      support::env_u64("DHTLB_SCALE_MAX_NODES", 100'000));
  std::printf("=== tick_parallel — sharded tick engine thread scaling ===\n");
  std::printf("cap: %zu nodes (override with DHTLB_SCALE_MAX_NODES), "
              "seed %llu, %zu ring shards\n\n",
              max_nodes, static_cast<unsigned long long>(seed),
              sim::kTickShards);

  support::TextTable table(
      {"vnodes", "threads", "ticks", "wall ms", "speedup", "fingerprint"});

  for (const std::size_t nodes :
       {std::size_t{100'000}, std::size_t{1'000'000}}) {
    if (nodes > max_nodes) {
      std::printf("(skipping %zu vnodes: above DHTLB_SCALE_MAX_NODES)\n",
                  nodes);
      continue;
    }
    // Churn-heavy so every tick exercises the full shard pipeline:
    // parallel departure draws, the sequential cross-arc fold, joins
    // splitting foreign arcs, and parallel consumption.
    sim::Params p;
    p.initial_nodes = nodes;
    p.total_tasks = 2 * nodes;
    p.churn_rate = 0.02;
    const int ticks = nodes >= 1'000'000 ? 15 : 40;

    double wall_t1 = 0.0;
    std::uint64_t print_t1 = 0;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      sim::Engine engine(p, seed);
      engine.set_audit(false);
      engine.set_threads(threads);
      engine.set_pre_tick_hook(
          [ticks](std::uint64_t tick) {
            return tick <= static_cast<std::uint64_t>(ticks);
          });
      const bench::WallTimer timer;
      for (int t = 0; t < ticks; ++t) {
        if (!engine.step()) break;
      }
      const double wall = timer.elapsed_ms();
      const std::uint64_t print = fingerprint(engine);
      const std::uint64_t rss = bench::Telemetry::current_peak_rss_bytes();

      if (threads == 1) {
        wall_t1 = wall;
        print_t1 = print;
      }
      DHTLB_CHECK(print == print_t1,
                  "tick_parallel: state fingerprint diverged at "
                      << threads << " threads (n=" << nodes
                      << ") — the engine's outputs depend on thread count");

      const double speedup = wall > 0.0 ? wall_t1 / wall : 0.0;
      const bool det = bench::Telemetry::deterministic();
      const std::string cell =
          "n=" + std::to_string(nodes) + "/t" + std::to_string(threads);
      telemetry.record(cell, "wall_ms", det ? 0.0 : wall, wall, 1, rss);
      telemetry.record(cell, "speedup_vs_t1", det ? 0.0 : speedup, 0.0, 1);
      table.add_row({std::to_string(nodes), std::to_string(threads),
                     std::to_string(ticks),
                     support::format_fixed(wall, 1),
                     support::format_fixed(speedup, 2),
                     std::to_string(print & 0xFFFFFFFFFFFFFull)});
    }
    // The fingerprint is identical across thread counts (checked above);
    // record it once per world size.  The low 53 bits fit a double
    // exactly, so the JSON round-trip is lossless and --check-values can
    // require bit-equality against the committed baseline.
    telemetry.record("n=" + std::to_string(nodes), "state_fingerprint",
                     static_cast<double>(print_t1 & 0x1FFFFFFFFFFFFFull),
                     0.0, 1);
  }
  std::printf("%s\n", table.render().c_str());

  if (telemetry.flush()) {
    std::printf("[telemetry] wrote %s\n", telemetry.output_path().c_str());
  }
  return 0;
}
