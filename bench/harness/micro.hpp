// Telemetry bridge for the micro_* google-benchmark binaries.
//
// micro_main() replaces BENCHMARK_MAIN(): it runs the registered
// benchmarks through a reporter that keeps the normal console output
// AND forwards every run into a Telemetry collector, so microbenchmarks
// emit the same BENCH_<name>.json records as the reproduction binaries
// (cell = benchmark name, metric = "real_ns_per_iter").
#pragma once

namespace dhtlb::bench {

/// Drop-in main() body for a micro_* binary.
int micro_main(const char* experiment, int argc, char** argv);

}  // namespace dhtlb::bench
