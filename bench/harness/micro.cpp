#include "harness/micro.hpp"

#include <benchmark/benchmark.h>

#include "harness/telemetry.hpp"

namespace dhtlb::bench {

namespace {

// Keeps ConsoleReporter's human-readable table and tees each run into
// the telemetry collector.
class TelemetryReporter : public benchmark::ConsoleReporter {
 public:
  explicit TelemetryReporter(Telemetry& telemetry) : telemetry_(telemetry) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const auto iters = static_cast<double>(run.iterations);
      const double per_iter_ns =
          iters > 0 ? run.real_accumulated_time / iters * 1e9 : 0.0;
      telemetry_.record(run.benchmark_name(), "real_ns_per_iter",
                        per_iter_ns, run.real_accumulated_time * 1e3,
                        static_cast<std::uint64_t>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  Telemetry& telemetry_;
};

}  // namespace

int micro_main(const char* experiment, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  Telemetry telemetry(experiment);
  TelemetryReporter reporter(telemetry);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;  // telemetry flushes on destruction
}

}  // namespace dhtlb::bench
