// Machine-readable benchmark telemetry.
//
// Every bench/ binary — the four micro_* microbenchmarks and the
// table*/fig* paper reproductions — routes its measurements through a
// Telemetry collector, which mirrors the human-readable text output
// into a structured JSON file `BENCH_<experiment>.json`.  CI diffs
// these files against committed baselines (scripts/compare_bench.py)
// to catch both wall-time regressions and silent changes to the
// deterministic result values.
//
// Env knobs (alongside the existing DHTLB_TRIALS/SEED/THREADS):
//   DHTLB_BENCH_DIR           — output directory (default ".")
//   DHTLB_BENCH_JSON=0        — disable the JSON side channel entirely
//   DHTLB_BENCH_DETERMINISTIC — zero out wall_ms so files byte-compare
//                               across machines and thread counts
//
// The JSON schema is deliberately flat — one record per (cell, metric)
// pair, every record self-describing — so downstream tooling needs no
// joins:
//   {"schema_version": 1,
//    "experiment": "table2_churn",
//    "records": [
//      {"cell": "...", "experiment": "...", "metric": "...",
//       "seed": 123, "trials": 8, "value": 1.25, "wall_ms": 41.2}, ...]}
// Record keys are emitted in alphabetical order and floats with %.17g,
// so equal inputs produce byte-equal files.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "support/sync.hpp"

namespace dhtlb::bench {

/// One measurement: a (cell, metric) pair of an experiment.
struct Record {
  std::string experiment;
  std::string cell;     // grid cell label, e.g. "churn=0.01/1e3n-1e5t"
  std::string metric;   // what `value` is, e.g. "runtime_factor_mean"
  double value = 0.0;
  double wall_ms = 0.0;  // wall time spent producing this value
  std::uint64_t seed = 0;
  std::uint64_t trials = 0;
  // Process peak RSS observed after producing this value, or 0 when the
  // bench does not track memory.  Zero is "absent": the field is only
  // emitted when nonzero, so memory-blind benches keep byte-identical
  // output, and it is zeroed in deterministic mode like wall_ms.
  std::uint64_t peak_rss_bytes = 0;
};

/// Serializes records to the schema above.  Pure function of its inputs
/// (records are emitted in insertion order), so it is unit-testable and
/// byte-stable.
std::string to_json(const std::string& experiment,
                    const std::vector<Record>& records);

/// Times a fixed, repo-independent integer workload (a splitmix64
/// chain) and returns elapsed milliseconds.  compare_bench.py divides
/// wall_ms by this machine-speed yardstick before comparing against the
/// committed baseline, so a slower CI runner is not flagged as a
/// regression.
double calibrate_ms();

/// Wall-clock stopwatch for labelling records.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(d).count();
  }
  void reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Collects records for one experiment and writes
/// `<DHTLB_BENCH_DIR>/BENCH_<experiment>.json` on flush (or
/// destruction).  Honours the env knobs documented above.
///
/// Accumulation is guarded by an internal dhtlb::Mutex (checked by
/// Clang -Wthread-safety), so record() may be called from worker
/// threads of a parallel fan; JSON output order is still the exact
/// record() call order, which callers keep deterministic by recording
/// from the coordinating thread after each fan completes.
class Telemetry {
 public:
  explicit Telemetry(std::string experiment);
  ~Telemetry();  // flushes if not already flushed

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Appends one record.  `seed` defaults to support::env_seed();
  /// wall_ms (and peak_rss_bytes, when given) are zeroed when
  /// DHTLB_BENCH_DETERMINISTIC is set.
  void record(const std::string& cell, const std::string& metric,
              double value, double wall_ms, std::uint64_t trials,
              std::uint64_t peak_rss_bytes = 0) EXCLUDES(mu_);

  /// This process's peak resident set so far, in bytes (getrusage
  /// ru_maxrss), or 0 where the platform does not report it.  Scale
  /// benches pass this to record() so CI can gate memory regressions.
  static std::uint64_t current_peak_rss_bytes();

  /// Snapshot of the records accumulated so far.
  std::vector<Record> records() const EXCLUDES(mu_);
  std::string json() const EXCLUDES(mu_);

  /// Writes the JSON file (prepending a __calibration__ record unless
  /// in deterministic mode).  Returns false on I/O failure or when the
  /// JSON side channel is disabled.  Idempotent.
  bool flush() EXCLUDES(mu_);

  /// The path flush() writes to.
  std::string output_path() const;

  static bool json_enabled();    // DHTLB_BENCH_JSON != 0
  static bool deterministic();   // DHTLB_BENCH_DETERMINISTIC set

 private:
  std::string experiment_;
  mutable support::Mutex mu_;
  std::vector<Record> records_ GUARDED_BY(mu_);
  bool flushed_ GUARDED_BY(mu_) = false;
};

}  // namespace dhtlb::bench
