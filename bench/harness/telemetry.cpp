#include "harness/telemetry.hpp"

#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "support/env.hpp"
#include "support/json.hpp"

namespace dhtlb::bench {

// The byte-format contract (escaping, %.17g doubles) lives in
// support/json.hpp, shared with the observability writers.
using support::json_append_double;
using support::json_append_escaped;
using support::json_append_u64;

std::string to_json(const std::string& experiment,
                    const std::vector<Record>& records) {
  std::string out;
  out.reserve(128 + records.size() * 160);
  out += "{\n  \"schema_version\": 1,\n  \"experiment\": ";
  json_append_escaped(out, experiment);
  out += ",\n  \"records\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    out += (i == 0) ? "\n" : ",\n";
    // Keys in alphabetical order: cell, experiment, metric,
    // [peak_rss_bytes], seed, trials, value, wall_ms.  peak_rss_bytes
    // is only present when nonzero, so records that never measured
    // memory serialize exactly as they did before the field existed.
    out += "    {\"cell\": ";
    json_append_escaped(out, r.cell);
    out += ", \"experiment\": ";
    json_append_escaped(out, r.experiment);
    out += ", \"metric\": ";
    json_append_escaped(out, r.metric);
    if (r.peak_rss_bytes != 0) {
      out += ", \"peak_rss_bytes\": ";
      json_append_u64(out, r.peak_rss_bytes);
    }
    out += ", \"seed\": ";
    json_append_u64(out, r.seed);
    out += ", \"trials\": ";
    json_append_u64(out, r.trials);
    out += ", \"value\": ";
    json_append_double(out, r.value);
    out += ", \"wall_ms\": ";
    json_append_double(out, r.wall_ms);
    out += "}";
  }
  out += records.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

double calibrate_ms() {
  // A fixed splitmix64 chain: pure integer mixing, no repo code, so the
  // yardstick is unaffected by optimizations to the simulator itself.
  const WallTimer timer;
  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 20'000'000ULL; ++i) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    sink ^= z ^ (z >> 31);
  }
  // Fold the sink into an observable side effect so the loop cannot be
  // elided; the value itself is meaningless.
  volatile std::uint64_t keep = sink;
  (void)keep;
  return timer.elapsed_ms();
}

Telemetry::Telemetry(std::string experiment)
    : experiment_(std::move(experiment)) {}

Telemetry::~Telemetry() { flush(); }

void Telemetry::record(const std::string& cell, const std::string& metric,
                       double value, double wall_ms, std::uint64_t trials,
                       std::uint64_t peak_rss_bytes) {
  Record r;
  r.experiment = experiment_;
  r.cell = cell;
  r.metric = metric;
  r.value = value;
  r.wall_ms = deterministic() ? 0.0 : wall_ms;
  r.seed = support::env_seed();
  r.trials = trials;
  r.peak_rss_bytes = deterministic() ? 0 : peak_rss_bytes;
  support::MutexLock lock(mu_);
  records_.push_back(std::move(r));
}

std::vector<Record> Telemetry::records() const {
  support::MutexLock lock(mu_);
  return records_;
}

std::string Telemetry::json() const {
  support::MutexLock lock(mu_);
  return to_json(experiment_, records_);
}

std::uint64_t Telemetry::current_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

std::string Telemetry::output_path() const {
  return support::env_string("DHTLB_BENCH_DIR", ".") + "/BENCH_" +
         experiment_ + ".json";
}

bool Telemetry::flush() {
  std::vector<Record> out;
  {
    support::MutexLock lock(mu_);
    if (flushed_) return true;
    if (!json_enabled()) return false;
    flushed_ = true;
    out = records_;
  }
  // Serialization and the calibration run happen outside the lock:
  // calibrate_ms() deliberately burns ~10ms of CPU, and nothing below
  // touches guarded state.
  if (!deterministic()) {
    // Machine-speed yardstick, measured at flush so it reflects this
    // very run's conditions.
    Record cal;
    cal.experiment = experiment_;
    cal.cell = "__calibration__";
    cal.metric = "splitmix64_20m_ms";
    cal.value = calibrate_ms();
    cal.wall_ms = cal.value;
    cal.seed = support::env_seed();
    cal.trials = 1;
    out.insert(out.begin(), std::move(cal));
  }

  std::ofstream file(output_path(), std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << to_json(experiment_, out);
  return static_cast<bool>(file);
}

bool Telemetry::json_enabled() {
  return support::env_flag("DHTLB_BENCH_JSON", true);
}

bool Telemetry::deterministic() {
  return support::env_flag("DHTLB_BENCH_DETERMINISTIC", false);
}

}  // namespace dhtlb::bench
