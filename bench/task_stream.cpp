// task_stream — microbench of the streamed task provisioner
// (sim/task_stream.hpp): how fast the per-(tick, shard) arrival streams
// materialize exact SHA-1 keys, and a value-gated proof that the
// closed-form schedule matches what the draws actually deliver.
//
// Each cell drains one full schedule single-threaded, tick by tick and
// shard by shard in fold order — the same order the engine injects in —
// folding every key into an order-sensitive fingerprint.  The fold and
// the per-tick count identities are recorded as value records, so
// compare_bench --check-values pins the stream's key sequence (any
// change to the seed derivation, the shard split, or the SHA-1 path
// shows up as value drift against the committed baseline), while
// wall_ms gates draw throughput regressions.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/telemetry.hpp"
#include "sim/task_stream.hpp"
#include "sim/world.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace dhtlb;

}  // namespace

int main() {
  bench::Telemetry telemetry("task_stream");
  const std::uint64_t seed = support::env_seed();
  std::printf("=== task_stream — streamed provisioning draw throughput ===\n");
  std::printf("seed %llu, %zu ring shards\n\n",
              static_cast<unsigned long long>(seed), sim::kTickShards);

  support::TextTable table(
      {"tasks", "window", "wall ms", "keys/ms", "fingerprint"});

  struct Cell {
    std::uint64_t tasks;
    std::uint64_t window;
  };
  for (const Cell cell : {Cell{1'000'000, 1'000}, Cell{10'000'000, 1'000}}) {
    const sim::TaskStream stream(seed, cell.tasks, cell.window);

    std::vector<sim::TaskKey> keys;
    std::uint64_t fold = support::mix_seed(cell.tasks, cell.window);
    std::uint64_t delivered = 0;
    const bench::WallTimer timer;
    for (std::uint64_t tick = 1; tick <= cell.window; ++tick) {
      std::uint64_t tick_count = 0;
      for (std::size_t s = 0; s < sim::kTickShards; ++s) {
        keys.clear();
        stream.draw_shard(tick, s, keys);
        DHTLB_CHECK(keys.size() == stream.shard_count(tick, s),
                    "task_stream: shard draw size mismatch at tick "
                        << tick << ", shard " << s);
        for (const sim::TaskKey& key : keys) {
          fold = support::mix_seed(fold, key.low64());
        }
        tick_count += keys.size();
      }
      delivered += tick_count;
      DHTLB_CHECK(tick_count == stream.count_at(tick),
                  "task_stream: shard counts disagree with the tick "
                  "schedule at tick " << tick);
      DHTLB_CHECK(delivered == stream.cumulative(tick),
                  "task_stream: delivered total diverged from the "
                  "closed-form prefix sum at tick " << tick);
    }
    const double wall = timer.elapsed_ms();
    DHTLB_CHECK(delivered == cell.tasks && stream.exhausted_after(cell.window),
                "task_stream: schedule did not deliver the whole job");

    const std::uint64_t rss = bench::Telemetry::current_peak_rss_bytes();
    const bool det = bench::Telemetry::deterministic();
    const double keys_per_ms =
        wall > 0.0 ? static_cast<double>(delivered) / wall : 0.0;
    const std::string name = "tasks=" + std::to_string(cell.tasks) +
                             "/window=" + std::to_string(cell.window);
    // Throughput is implied by wall_ms at fixed work, so only wall_ms is
    // recorded — a keys/ms value record would trip --check-values on
    // machine noise (only wall_ms and speedup* metrics are exempt).
    telemetry.record(name, "wall_ms", det ? 0.0 : wall, wall, 1, rss);
    // Low 53 bits fit a double exactly — the JSON round-trip is lossless,
    // so --check-values can demand bit-equality (same trick as
    // tick_parallel's state_fingerprint).
    telemetry.record(name, "key_fold",
                     static_cast<double>(fold & 0x1FFFFFFFFFFFFFull), 0.0, 1);
    table.add_row({std::to_string(cell.tasks), std::to_string(cell.window),
                   support::format_fixed(wall, 1),
                   support::format_fixed(keys_per_ms, 0),
                   std::to_string(fold & 0xFFFFFFFFFFFFFull)});
  }
  std::printf("%s\n", table.render().c_str());

  if (telemetry.flush()) {
    std::printf("[telemetry] wrote %s\n", telemetry.output_path().c_str());
  }
  return 0;
}
