// Reproduces Figures 7-9: Random Injection vs no strategy at ticks 5 and
// 35 (Figures 7-8), and Random Injection vs churn 0.01 at tick 35
// (Figure 9), on the 1000-node / 100,000-task network.
//
// Expected shape (paper): by tick 5 a single balancing round already
// beats the initial distribution; by tick 35 the injected network has
// far fewer idle nodes than either alternative.
#include <cstdio>

#include "exp/experiment.hpp"
#include "repro_util.hpp"
#include "stats/histogram.hpp"
#include "stats/load_metrics.hpp"
#include "support/env.hpp"
#include "viz/ascii_hist.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("fig7_9_random_injection", "Figures 7-9",
                         "random injection vs none / churn", 1);

  const auto params = bench::paper_defaults(1000, 100'000);
  sim::Params churned = params;
  churned.churn_rate = 0.01;
  const auto seed = support::env_seed();

  const bench::WallTimer timer;
  const auto none = exp::run_with_snapshots(params, "none", seed, {5, 35});
  const auto inj =
      exp::run_with_snapshots(params, "random-injection", seed, {5, 35});
  const auto churn = exp::run_with_snapshots(churned, "churn", seed, {35});
  const double wall = timer.elapsed_ms();

  auto compare = [](const char* title,
                    const std::vector<std::uint64_t>& left,
                    const char* left_label,
                    const std::vector<std::uint64_t>& right,
                    const char* right_label) {
    std::printf("--- %s ---\n", title);
    std::printf("%s", viz::render_comparison(
                          stats::workload_histogram(left, 12).bins(),
                          left_label,
                          stats::workload_histogram(right, 12).bins(),
                          right_label)
                          .c_str());
    std::printf("idle: %s %.3f vs %s %.3f | gini: %.3f vs %.3f\n\n",
                left_label, stats::idle_fraction(left), right_label,
                stats::idle_fraction(right), stats::gini(left),
                stats::gini(right));
  };

  compare("Figure 7 (tick 5)", none.snapshots[0].workloads, "no strategy",
          inj.snapshots[0].workloads, "random injection");
  compare("Figure 8 (tick 35)", none.snapshots[1].workloads, "no strategy",
          inj.snapshots[1].workloads, "random injection");
  compare("Figure 9 (tick 35)", churn.snapshots[0].workloads, "churn 0.01",
          inj.snapshots[1].workloads, "random injection");

  std::printf("runtime factors: none %.2f | churn %.2f | random injection "
              "%.2f (paper: never > 1.7, best 1.36)\n",
              none.runtime_factor, churn.runtime_factor,
              inj.runtime_factor);
  session.record("run/none", "runtime_factor", none.runtime_factor, wall, 1);
  session.record("run/churn", "runtime_factor", churn.runtime_factor, 0.0, 1);
  session.record("run/random-injection", "runtime_factor",
                 inj.runtime_factor, 0.0, 1);
  session.record("tick35/none", "idle_fraction",
                 stats::idle_fraction(none.snapshots[1].workloads), 0.0, 1);
  session.record("tick35/random-injection", "idle_fraction",
                 stats::idle_fraction(inj.snapshots[1].workloads), 0.0, 1);
  return 0;
}
