// Reproduces the §VI-B.1 ablations ("Effects of Other Variables") plus
// the design-choice ablations DESIGN.md calls out:
//   * sybilThreshold: helps homogeneous low-ratio networks (~-0.1, and
//     ~-0.2 under strength consumption); no effect at 1000 tasks/node or
//     in heterogeneous networks
//   * churn layered under random injection: no positive impact; at 0.01
//     it *costs* ~0.06
//   * maxSybils 5 vs 10 in heterogeneous networks: bigger disparity is
//     worse (+0.3..1 depending on ratio); no effect homogeneous
//   * mark_failed_ranges (the paper's §IV-C suggestion): measured here
#include <cstdio>

#include "repro_util.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("tableA_ablations", "Ablations (SS VI-B.1, VI-C)",
                         "variable effects", 8);

  support::TextTable table({"ablation", "baseline", "variant", "delta",
                            "paper says"});

  auto ablate = [&](const char* label, sim::Params base_p,
                    sim::Params variant_p, const char* strategy,
                    const char* note) {
    const double base =
        session.mean_factor(base_p, strategy, std::string(label) + "/base");
    const double variant = session.mean_factor(
        variant_p, strategy, std::string(label) + "/variant");
    session.record(label, "ablation_delta", variant - base);
    table.add_row({label, support::format_fixed(base, 3),
                   support::format_fixed(variant, 3),
                   support::format_fixed(variant - base, 3), note});
  };

  // sybilThreshold on low-ratio homogeneous networks (100 tasks/node).
  {
    sim::Params base = bench::paper_defaults(1000, 100'000);
    sim::Params thresh = base;
    thresh.sybil_threshold = 5;
    ablate("threshold 0->5, 1e3n/1e5t hom", base, thresh, "random-injection",
           "-0.1 or better");
  }
  // sybilThreshold at high ratio: no effect.
  {
    sim::Params base = bench::paper_defaults(1000, 1'000'000);
    sim::Params thresh = base;
    thresh.sybil_threshold = 5;
    ablate("threshold 0->5, 1e3n/1e6t hom", base, thresh, "random-injection",
           "no effect");
  }
  // sybilThreshold in heterogeneous networks: no effect.
  {
    sim::Params base = bench::paper_defaults(1000, 100'000);
    base.heterogeneous = true;
    sim::Params thresh = base;
    thresh.sybil_threshold = 5;
    ablate("threshold 0->5, het", base, thresh, "random-injection",
           "no discernible effect");
  }
  // Churn layered under random injection.
  {
    sim::Params base = bench::paper_defaults(1000, 100'000);
    sim::Params churned = base;
    churned.churn_rate = 0.01;
    ablate("churn 0->0.01 under injection", base, churned,
           "random-injection", "+0.06 (no positive impact)");
  }
  // maxSybils in heterogeneous networks, low and high ratio.
  {
    sim::Params base = bench::paper_defaults(1000, 100'000);
    base.heterogeneous = true;
    base.work_measure = sim::WorkMeasure::kStrengthPerTick;
    sim::Params wide = base;
    wide.max_sybils = 10;
    ablate("het maxSybils 5->10, 100 t/n", base, wide, "random-injection",
           "+~1 (disparity hurts)");
  }
  {
    sim::Params base = bench::paper_defaults(1000, 1'000'000);
    base.heterogeneous = true;
    base.work_measure = sim::WorkMeasure::kStrengthPerTick;
    sim::Params wide = base;
    wide.max_sybils = 10;
    ablate("het maxSybils 5->10, 1000 t/n", base, wide, "random-injection",
           "+0.3..0.4");
  }
  // maxSybils in homogeneous networks: no noticeable effect (footnote 1).
  {
    sim::Params base = bench::paper_defaults(1000, 100'000);
    sim::Params wide = base;
    wide.max_sybils = 10;
    ablate("hom maxSybils 5->10", base, wide, "random-injection",
           "no benefit beyond 10");
  }
  // mark_failed_ranges for neighbor injection (§IV-C suggestion).
  {
    sim::Params base = bench::paper_defaults(1000, 100'000);
    sim::Params marked = base;
    marked.mark_failed_ranges = true;
    ablate("neighbor: mark failed ranges", base, marked,
           "neighbor-injection", "suggested, untested in paper");
  }

  std::printf("%s\n", table.render().c_str());
  return 0;
}
