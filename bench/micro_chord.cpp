// Micro-benchmarks for the Chord protocol substrate: lookup routing cost
// (hops and messages) as the network grows, join cost, maintenance-round
// cost, and the Sybil hash-search placement the paper's ref [21] claims
// is cheap.
#include <benchmark/benchmark.h>

#include "harness/micro.hpp"

#include "chord/network.hpp"
#include "chord/sybil_placement.hpp"
#include "hashing/sha1.hpp"
#include "support/rng.hpp"

namespace {

using dhtlb::chord::Network;
using dhtlb::chord::NodeId;
using dhtlb::hashing::Sha1;
using dhtlb::support::Rng;

Network build_network(std::size_t n, std::uint64_t seed) {
  Network net(5);
  Rng rng(seed);
  const NodeId first = Sha1::hash_u64(rng());
  net.create(first);
  for (std::size_t i = 1; i < n; ++i) {
    net.join(Sha1::hash_u64(rng()), first);
    net.stabilize(2);
  }
  net.stabilize(4);
  net.build_all_fingers();
  return net;
}

void BM_ChordLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Network net = build_network(n, 1);
  const auto ids = net.node_ids();
  Rng rng(2);
  std::uint64_t hops = 0, lookups = 0;
  for (auto _ : state) {
    const auto res =
        net.lookup(ids[rng.below(ids.size())], rng.uniform_u160());
    hops += static_cast<std::uint64_t>(res.hops);
    ++lookups;
    benchmark::DoNotOptimize(res.owner);
  }
  state.counters["hops/lookup"] = benchmark::Counter(
      static_cast<double>(hops) / static_cast<double>(lookups));
}
BENCHMARK(BM_ChordLookup)->Arg(32)->Arg(128)->Arg(512);

void BM_ChordMaintenanceRound(benchmark::State& state) {
  Network net = build_network(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    net.maintenance_round();
  }
}
BENCHMARK(BM_ChordMaintenanceRound)->Arg(64)->Arg(256);

void BM_ChordJoinAndSettle(benchmark::State& state) {
  // Cost of one node joining an existing ring and the ring re-settling.
  // The ring is built once and grows across iterations (the growth is
  // itself representative: join cost is O(log n) in the ring size).
  Rng rng(4);
  Network net = build_network(64, 5);
  const auto bootstrap = net.node_ids().front();
  for (auto _ : state) {
    const NodeId fresh = Sha1::hash_u64(rng());
    net.join(fresh, bootstrap);
    net.stabilize(3);
    benchmark::DoNotOptimize(net.size());
  }
  state.counters["final_ring"] =
      benchmark::Counter(static_cast<double>(net.size()));
}
BENCHMARK(BM_ChordJoinAndSettle)->Unit(benchmark::kMicrosecond);

void BM_SybilHashSearch(benchmark::State& state) {
  // Placement into a 1/n-sized gap: expected n hash evaluations.  The
  // paper (via ref [21]) treats this as negligible; measure it.
  const int gap_bits = static_cast<int>(state.range(0));
  Rng rng(6);
  const auto lo = dhtlb::support::Uint160{12345};
  const auto hi = lo + dhtlb::support::Uint160::pow2(160 - gap_bits);
  std::uint64_t attempts = 0, searches = 0;
  for (auto _ : state) {
    const auto res = dhtlb::chord::place_by_hash_search(lo, hi, rng);
    attempts += res ? res->attempts : 0;
    ++searches;
    benchmark::DoNotOptimize(res);
  }
  state.counters["sha1_calls/search"] = benchmark::Counter(
      static_cast<double>(attempts) / static_cast<double>(searches));
}
BENCHMARK(BM_SybilHashSearch)->Arg(8)->Arg(10)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  return dhtlb::bench::micro_main("micro_chord", argc, argv);
}
