// Reproduces Figure 1: the probability distribution of per-node workload
// in a DHT with 1000 nodes and 1,000,000 tasks, with the median marked.
// The paper's figure uses a log-scaled workload axis: most nodes hold
// fewer than 1000 tasks while a few unlucky ones exceed 10,000.
#include <cstdio>

#include "exp/experiment.hpp"
#include "repro_util.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "viz/ascii_hist.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("fig1_workload_pdf", "Figure 1",
                         "workload PDF, 1000 nodes / 1,000,000 tasks", 1);

  const bench::WallTimer timer;
  const auto loads =
      exp::initial_workloads(1000, 1'000'000, support::env_seed());
  std::vector<double> d(loads.begin(), loads.end());
  const auto summary = stats::summarize(d);
  session.record("1000n/1e6t", "median_workload", summary.median,
                 timer.elapsed_ms(), 1);
  session.record("1000n/1e6t", "mean_workload", summary.mean, 0.0, 1);
  session.record("1000n/1e6t", "max_workload", summary.max, 0.0, 1);

  // Log-spaced bins from 10 to ~20000 tasks, plus an underflow bin.
  stats::LogHistogram hist(10.0, 20'000.0, 22);
  for (const auto v : loads) hist.add_u64(v);

  viz::HistRenderOptions opts;
  opts.title = "P(workload) — log-spaced bins (paper Figure 1)";
  opts.bar_width = 50;
  std::printf("%s\n", viz::render_histogram(hist.bins(), opts).c_str());

  support::TextTable table({"statistic", "ours", "paper"});
  table.add_row({"median workload", support::format_fixed(summary.median, 1),
                 "~692 (Table I)"});
  table.add_row({"mean workload", support::format_fixed(summary.mean, 1),
                 "1000 (tasks/nodes)"});
  table.add_row({"max workload", support::format_fixed(summary.max, 0),
                 ">10,000 (\"a few unfortunate nodes\")"});
  std::printf("%s\n", table.render().c_str());
  std::printf("vertical-line check: median (%0.0f) < mean (%0.0f), i.e. over\n"
              "half the network holds less than the fair share.\n",
              summary.median, summary.mean);
  return 0;
}
