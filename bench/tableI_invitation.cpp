// Reproduces the §VI-D Invitation numbers quoted in the text:
//   * base factor 3.749 on 100 n / 1e5 t vs 5.673 on 1000 n / 1e5 t
//     (impact "closely tied to network size")
//   * heterogeneous + strength consumption is worse (paper: 6.097 on
//     1000 n / 1e5 t)
//   * invitation balances better than smart neighbor while sending far
//     fewer messages
#include <cstdio>

#include "repro_util.hpp"
#include "stats/load_metrics.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("tableI_invitation", "Table I' (SS VI-D text)",
                         "invitation strategy", 10);
  const std::size_t trials = session.trials();

  support::TextTable table({"configuration", "factor (ours)", "paper says"});

  auto row = [&](sim::Params p, const char* cfg, const char* note) {
    const bench::WallTimer timer;
    const auto agg = exp::run_trials(p, "invitation", trials,
                                     support::env_seed(), &session.pool());
    session.record(cfg, "runtime_factor_mean", agg.runtime_factor.mean,
                   timer.elapsed_ms());
    table.add_row({cfg, support::format_fixed(agg.runtime_factor.mean, 3),
                   note});
    return agg;
  };

  const auto small = row(bench::paper_defaults(100, 100'000),
                         "100 n / 1e5 t", "3.749 base");
  const auto large = row(bench::paper_defaults(1000, 100'000),
                         "1000 n / 1e5 t", "5.673 base");
  sim::Params het = bench::paper_defaults(1000, 100'000);
  het.heterogeneous = true;
  het.work_measure = sim::WorkMeasure::kStrengthPerTick;
  row(het, "het, strength/tick", "6.097 (worse than hom)");

  std::printf("%s\n", table.render().c_str());

  // Balance-vs-traffic comparison against smart neighbor (single run,
  // matching Figure 14's setting).
  const auto params = bench::paper_defaults(1000, 100'000);
  const auto seed = support::env_seed();
  const auto inv = exp::run_with_snapshots(params, "invitation", seed, {35});
  const auto smart = exp::run_with_snapshots(params,
                                             "smart-neighbor-injection",
                                             seed, {35});
  const double gini_inv = stats::gini(inv.snapshots[0].workloads);
  const double gini_smart = stats::gini(smart.snapshots[0].workloads);
  session.record("tick35/invitation", "gini", gini_inv, 0.0, 1);
  session.record("tick35/smart-neighbor", "gini", gini_smart, 0.0, 1);
  session.record("tick35/invitation", "messages",
                 static_cast<double>(inv.strategy_counters.invitations_sent +
                                     inv.strategy_counters.sybils_created),
                 0.0, 1);
  session.record("tick35/smart-neighbor", "messages",
                 static_cast<double>(smart.strategy_counters.workload_queries +
                                     smart.strategy_counters.sybils_created),
                 0.0, 1);
  std::printf("tick-35 gini: invitation %.3f vs smart %.3f "
              "(paper: invitation balances better)\n",
              gini_inv, gini_smart);
  std::printf("messages: invitation %llu announcements + %llu placements vs "
              "smart %llu queries + %llu placements\n",
              static_cast<unsigned long long>(
                  inv.strategy_counters.invitations_sent),
              static_cast<unsigned long long>(
                  inv.strategy_counters.sybils_created),
              static_cast<unsigned long long>(
                  smart.strategy_counters.workload_queries),
              static_cast<unsigned long long>(
                  smart.strategy_counters.sybils_created));
  std::printf("\nshape note: our invitation implements the paper's stated "
              "mechanism\n(threshold announce + least-loaded predecessor "
              "splits the heavy arc) and\nbalances more aggressively than "
              "the paper's reported factors; the\nnetwork-size dependence "
              "(smaller %.3f vs larger %.3f) is the shape check.\n",
              small.runtime_factor.mean, large.runtime_factor.mean);
  return 0;
}
