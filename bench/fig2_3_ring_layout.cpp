// Reproduces Figures 2 and 3: 10 nodes and 100 tasks on the Chord unit
// circle, first with SHA-1 node placement (clustered, uneven arcs) and
// then with evenly spaced nodes (tasks still cluster).  Prints an ASCII
// ring plus per-node ownership counts, and emits the exact (x, y) CSV
// the paper's plots use.
#include <cstdio>
#include <map>
#include <vector>

#include "hashing/sha1.hpp"
#include "repro_util.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/uint160.hpp"
#include "viz/ring_layout.hpp"

namespace {

using namespace dhtlb;
using support::Uint160;

void show(bench::Session& session, const char* cell, const char* title,
          const std::vector<Uint160>& nodes,
          const std::vector<Uint160>& tasks) {
  std::printf("--- %s ---\n", title);
  std::vector<viz::RingPoint> points;
  for (const auto& t : tasks) points.push_back(viz::ring_point(t, 't'));
  for (const auto& n : nodes) points.push_back(viz::ring_point(n, 'n'));
  std::printf("%s", viz::render_ring(points, 33).c_str());

  // Ownership: each node owns (pred, self]; count tasks per node.
  std::map<Uint160, int> owned;
  std::vector<Uint160> sorted_nodes = nodes;
  std::sort(sorted_nodes.begin(), sorted_nodes.end());
  for (const auto& t : tasks) {
    auto it = std::lower_bound(sorted_nodes.begin(), sorted_nodes.end(), t);
    if (it == sorted_nodes.end()) it = sorted_nodes.begin();
    ++owned[*it];
  }
  support::TextTable table({"node (id prefix)", "tasks owned"});
  int max_owned = 0;
  int min_owned = static_cast<int>(tasks.size());
  for (const auto& n : sorted_nodes) {
    table.add_row({n.to_short_hex(), std::to_string(owned[n])});
    max_owned = std::max(max_owned, owned[n]);
    min_owned = std::min(min_owned, owned[n]);
  }
  session.record(cell, "max_tasks_owned", max_owned, 0.0, 1);
  session.record(cell, "min_tasks_owned", min_owned, 0.0, 1);
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main() {
  bench::Session session("fig2_3_ring_layout", "Figures 2-3",
                         "10 nodes / 100 tasks on the unit circle", 1);

  support::Rng rng(support::env_seed());
  std::vector<Uint160> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back(hashing::Sha1::hash_u64(rng()));
  }

  // Figure 2: SHA-1 node IDs — nodes cluster, arcs are wildly uneven.
  std::vector<Uint160> sha_nodes;
  for (int i = 0; i < 10; ++i) {
    sha_nodes.push_back(hashing::Sha1::hash_u64(rng()));
  }
  show(session, "fig2/sha1-nodes",
       "Figure 2: SHA-1-placed nodes (O) and tasks (+)", sha_nodes, tasks);

  // Figure 3: evenly spaced node IDs — arcs equal, but tasks still skew.
  std::vector<Uint160> even_nodes;
  const Uint160 step = Uint160::max().div_small(10);
  Uint160 cursor;
  for (int i = 0; i < 10; ++i) {
    even_nodes.push_back(cursor);
    cursor += step;
  }
  show(session, "fig3/even-nodes",
       "Figure 3: evenly spaced nodes (O) and tasks (+)", even_nodes, tasks);

  // CSV for external plotting (both figures share the task set).
  std::vector<viz::RingPoint> csv_points;
  for (const auto& n : sha_nodes) csv_points.push_back(viz::ring_point(n, 'n'));
  for (const auto& t : tasks) csv_points.push_back(viz::ring_point(t, 't'));
  std::printf("--- Figure 2 CSV (first 5 rows) ---\n");
  const std::string csv = viz::ring_csv(csv_points);
  std::size_t pos = 0;
  for (int line = 0; line < 6 && pos != std::string::npos; ++line) {
    const auto next = csv.find('\n', pos);
    std::printf("%s\n", csv.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  std::printf("...\n");
  return 0;
}
