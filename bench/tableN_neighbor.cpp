// Reproduces the §VI-C Neighbor Injection numbers quoted in the text:
//   * base factor 5.033 on 1000 n / 1e5 t (2.4 below no strategy)
//   * base factor 3.006 on 100 n / 1e4 t (2 below no strategy)
//   * smart (query) variant improves the mean factor by ~1.2
//   * larger numSuccessors lowers the factor by ~0.3
//   * heterogeneous + strength consumption is WORSE, exacerbated by a
//     higher maxSybils
#include <cstdio>

#include "repro_util.hpp"

int main() {
  using namespace dhtlb;

  bench::Session session("tableN_neighbor", "Table N (SS VI-C text)",
                         "neighbor injection variants", 10);

  support::TextTable table({"configuration", "strategy", "factor (ours)",
                            "paper says"});

  auto row = [&](sim::Params p, const char* strategy, const char* cfg,
                 const char* note) {
    const double f =
        session.mean_factor(p, strategy, std::string(cfg) + "/" + strategy);
    table.add_row({cfg, strategy, support::format_fixed(f, 3), note});
    return f;
  };

  // Base vs no strategy, both network scales.
  sim::Params big = bench::paper_defaults(1000, 100'000);
  const double big_none = row(big, "none", "1000 n / 1e5 t", "7.476 base");
  const double big_est =
      row(big, "neighbor-injection", "1000 n / 1e5 t", "5.033 (-2.4)");
  sim::Params small = bench::paper_defaults(100, 10'000);
  const double small_none = row(small, "none", "100 n / 1e4 t", "~5.0 base");
  const double small_est =
      row(small, "neighbor-injection", "100 n / 1e4 t", "3.006 (-2.0)");

  // Smart variant.
  const double big_smart = row(big, "smart-neighbor-injection",
                               "1000 n / 1e5 t", "estimate - ~1.2");

  // numSuccessors sweep.
  sim::Params more_succ = big;
  more_succ.num_successors = 10;
  const double est10 = row(more_succ, "neighbor-injection",
                           "1000 n / 1e5 t, succ=10", "~0.3 lower than succ=5");

  // Heterogeneous with strength consumption, maxSybils 5 vs 10.
  sim::Params het5 = big;
  het5.heterogeneous = true;
  het5.work_measure = sim::WorkMeasure::kStrengthPerTick;
  const double h5 = row(het5, "neighbor-injection",
                        "het strength/tick, maxSybils=5", "worse than hom");
  sim::Params het10 = het5;
  het10.max_sybils = 10;
  const double h10 = row(het10, "neighbor-injection",
                         "het strength/tick, maxSybils=10",
                         "worse still (greater disparity)");

  std::printf("%s\n", table.render().c_str());
  std::printf("derived shape checks:\n");
  std::printf("  estimate improves on none: %.3f and %.3f (paper: 2.4, 2.0)\n",
              big_none - big_est, small_none - small_est);
  std::printf("  smart improves on estimate by %.3f (paper: ~1.2)\n",
              big_est - big_smart);
  std::printf("  successors 10 vs 5 changes factor by %.3f (paper: ~-0.3)\n",
              est10 - big_est);
  std::printf("  het maxSybils 10 vs 5: %+.3f (paper: positive => worse)\n",
              h10 - h5);
  return 0;
}
